(* Synthesis-as-a-service front end: [run] starts the persistent job
   server, the remaining subcommands are a thin client over the framed
   JSON protocol (lib/serve). A [submit] with [--report]/[-o] writes
   files byte-identical to a cold [lookahead_opt opt] run of the same
   job — that identity is enforced by bench/check_regression.sh. *)

open Cmdliner
module Cli = Serve.Cli
module Run = Serve.Run
module Msg = Serve.Msg
module Client = Serve.Client

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/lookahead_serve.sock"
    & info [ "s"; "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (ignored when $(b,--tcp) is given).")

let tcp_arg =
  Arg.(
    value
    & opt (some (pair ~sep:':' string int)) None
    & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Listen/connect over TCP instead.")

let listen_of socket tcp : Serve.Server.listen =
  match tcp with Some (h, p) -> `Tcp (h, p) | None -> `Unix socket

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logs.")

let run_cmd =
  let queue =
    Arg.(
      value & opt int 256
      & info [ "queue" ] ~docv:"N" ~doc:"Bound on queued (not running) jobs.")
  in
  let max_frame =
    Arg.(
      value
      & opt int Serve.Frame.max_frame_default
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Largest accepted request frame.")
  in
  let no_reuse =
    Arg.(
      value & flag
      & info [ "no-reuse" ]
          ~doc:
            "Disable warm state (BDD manager recycling and circuit \
             interning); every job then runs as cold as the one-shot CLI.")
  in
  let run socket tcp queue max_frame no_reuse jobs verbose =
    Cli.setup_logs verbose;
    Cli.setup_jobs jobs;
    let listen = listen_of socket tcp in
    (match listen with
    | `Unix path -> Logs.app (fun m -> m "listening on unix:%s" path)
    | `Tcp (h, p) -> Logs.app (fun m -> m "listening on tcp:%s:%d" h p));
    Serve.Server.run
      {
        Serve.Server.listen;
        queue_capacity = queue;
        max_frame;
        reuse_managers = not no_reuse;
      }
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run the persistent synthesis job server.")
    Term.(
      const run $ socket_arg $ tcp_arg $ queue $ max_frame $ no_reuse
      $ Cli.jobs_term $ verbose_arg)

let submit_cmd =
  let tool =
    Arg.(value & opt string "lookahead" & info [ "t"; "tool" ] ~docv:"TOOL"
           ~doc:"Optimizer: lookahead, sis, abc, dc, resub, mfs, or none.")
  in
  let nodes =
    Arg.(
      value & opt int 0
      & info [ "budget-nodes" ] ~docv:"N"
          ~doc:"Tenant BDD node ceiling (0 = library default).")
  in
  let sat =
    Arg.(
      value & opt int 0
      & info [ "budget-sat" ] ~docv:"N"
          ~doc:"Tenant SAT conflict ceiling per query (0 = unlimited).")
  in
  let sat_total =
    Arg.(
      value & opt int 0
      & info [ "budget-sat-total" ] ~docv:"N"
          ~doc:
            "Tenant cumulative SAT conflict budget across all of the job's \
             queries (0 = unlimited).")
  in
  let deadline =
    Arg.(
      value & opt float 0.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Tenant wall-clock budget for the job (0 = unbounded).")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ] ~doc:"Stream phase-completion events to stderr.")
  in
  let out_blif =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the optimized circuit as BLIF.")
  in
  let run socket tcp circuit blif bench adder tool nodes sat sat_total deadline
      inject time_limit progress out_blif report_file verbose =
    Cli.setup_logs verbose;
    let source =
      Cli.resolve_source
        ~default:(Cli.Adder ("ripple", 8))
        circuit blif bench adder
    in
    let spec =
      {
        (Msg.submit_defaults ~source:(Cli.msg_source_of_cli source) ~tool) with
        Msg.budget =
          {
            Msg.bdd_node_ceiling = nodes;
            sat_conflict_ceiling = sat;
            sat_conflict_budget = sat_total;
            deadline_s = deadline;
          };
        inject;
        time_limit_s = time_limit;
        progress;
        want_blif = out_blif <> None;
        want_report = report_file <> None;
      }
    in
    let c = Client.connect (listen_of socket tcp) in
    let on_progress ~phase ~seq =
      if progress then Fmt.epr "progress[%d]: %s@." seq phase
    in
    let _id, r = Client.submit_wait ~on_progress c spec in
    Client.close c;
    match r.Msg.state with
    | Msg.Done ->
      (match r.Msg.metrics with
      | Some m ->
        Fmt.pr "%a" (Run.pp_metrics ~circuit:r.Msg.circuit ~tool:r.Msg.tool) m
      | None -> ());
      if r.Msg.degraded then Fmt.epr "degraded: yes@.";
      (match (report_file, r.Msg.report) with
      | Some path, Some j -> Cli.write_file path (Obs.Json.to_string j ^ "\n")
      | _ -> ());
      (match (out_blif, r.Msg.blif) with
      | Some path, Some b -> Cli.write_file path b
      | _ -> ())
    | Msg.Failed ->
      Fmt.epr "job failed: %s@."
        (Option.value r.Msg.error ~default:"(no message)");
      exit 1
    | Msg.Cancelled ->
      Fmt.epr "job cancelled@.";
      exit 3
    | Msg.Queued | Msg.Running -> assert false
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit one job, wait for the result, print Table 2 metrics — the \
          served image of $(b,lookahead_opt opt).")
    Term.(
      const run $ socket_arg $ tcp_arg $ Cli.circuit_term $ Cli.blif_term
      $ Cli.bench_term $ Cli.adder_term $ tool $ nodes $ sat $ sat_total
      $ deadline
      $ Cli.inject_term $ Cli.time_limit_term $ progress $ out_blif
      $ Cli.report_term $ verbose_arg)

let id_arg =
  Arg.(required & pos 0 (some int) None & info [] ~docv:"ID" ~doc:"Job id.")

let print_status id state position =
  match position with
  | Some p -> Fmt.pr "job %d: %s (position %d)@." id (Msg.state_name state) p
  | None -> Fmt.pr "job %d: %s@." id (Msg.state_name state)

let simple_rpc socket tcp req handle =
  let c = Client.connect (listen_of socket tcp) in
  Client.send c req;
  let resp = Client.recv c in
  Client.close c;
  match resp with
  | Msg.Error_reply { code; message } ->
    Fmt.epr "error (%s): %s@." code message;
    exit 1
  | resp -> handle resp

let status_cmd =
  let run socket tcp id =
    simple_rpc socket tcp (Msg.Status id) (function
      | Msg.Job_status { id; state; position } -> print_status id state position
      | _ -> failwith "unexpected response")
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Query one job's state.")
    Term.(const run $ socket_arg $ tcp_arg $ id_arg)

let cancel_cmd =
  let run socket tcp id =
    simple_rpc socket tcp (Msg.Cancel id) (function
      | Msg.Job_status { id; state; position } -> print_status id state position
      | _ -> failwith "unexpected response")
  in
  Cmd.v
    (Cmd.info "cancel" ~doc:"Cancel one of this connection's jobs.")
    Term.(const run $ socket_arg $ tcp_arg $ id_arg)

let stats_cmd =
  let run socket tcp =
    let c = Client.connect (listen_of socket tcp) in
    let s = Client.stats c in
    Client.close c;
    Fmt.pr "submitted : %d@." s.Msg.submitted;
    Fmt.pr "completed : %d@." s.Msg.completed;
    Fmt.pr "failed    : %d@." s.Msg.failed;
    Fmt.pr "cancelled : %d@." s.Msg.cancelled;
    Fmt.pr "queued    : %d / %d@." s.Msg.queued s.Msg.queue_capacity;
    Fmt.pr "running   : %b@." s.Msg.running;
    Fmt.pr "uptime    : %.1f s@." s.Msg.uptime_s;
    Fmt.pr "warm      : %d circuits, %d managers@." s.Msg.interned_circuits
      s.Msg.pooled_managers
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print server statistics.")
    Term.(const run $ socket_arg $ tcp_arg)

let shutdown_cmd =
  let run socket tcp =
    let c = Client.connect (listen_of socket tcp) in
    Client.shutdown c;
    Client.close c
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Drain queued jobs and stop the server.")
    Term.(const run $ socket_arg $ tcp_arg)

let () =
  let info =
    Cmd.info "lookahead_serve" ~version:"1.0.0"
      ~doc:
        "Persistent multi-tenant synthesis job server (and its client) for \
         the DAC'09 lookahead reproduction."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; submit_cmd; status_cmd; cancel_cmd; stats_cmd;
            shutdown_cmd ]))
