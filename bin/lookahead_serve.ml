(* Synthesis-as-a-service front end: [run] starts the persistent job
   server, the remaining subcommands are a thin client over the framed
   JSON protocol (lib/serve). A [submit] with [--report]/[-o] writes
   files byte-identical to a cold [lookahead_opt opt] run of the same
   job — that identity is enforced by bench/check_regression.sh. *)

open Cmdliner
module Cli = Serve.Cli
module Run = Serve.Run
module Msg = Serve.Msg
module Client = Serve.Client

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/lookahead_serve.sock"
    & info [ "s"; "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (ignored when $(b,--tcp) is given).")

let tcp_arg =
  Arg.(
    value
    & opt (some (pair ~sep:':' string int)) None
    & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Listen/connect over TCP instead.")

let listen_of socket tcp : Serve.Server.listen =
  match tcp with Some (h, p) -> `Tcp (h, p) | None -> `Unix socket

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logs.")

let run_cmd =
  let queue =
    Arg.(
      value & opt int 256
      & info [ "queue" ] ~docv:"N" ~doc:"Bound on queued (not running) jobs.")
  in
  let max_frame =
    Arg.(
      value
      & opt int Serve.Frame.max_frame_default
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Largest accepted request frame.")
  in
  let no_reuse =
    Arg.(
      value & flag
      & info [ "no-reuse" ]
          ~doc:
            "Disable warm state (BDD manager recycling and circuit \
             interning); every job then runs as cold as the one-shot CLI.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append the structured job journal as JSONL (one event per \
             line; rotated to $(i,FILE).1 at $(b,--journal-max-bytes)).")
  in
  let journal_max_bytes =
    Arg.(
      value
      & opt int (8 * 1024 * 1024)
      & info [ "journal-max-bytes" ] ~docv:"BYTES"
          ~doc:"Journal file-sink rotation threshold.")
  in
  let slo =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo" ] ~docv:"SPEC"
          ~doc:
            "Per-size-class run-latency objectives, e.g. \
             $(b,xs=50,s=200,m=1000): jobs of that class exceeding the \
             objective (milliseconds) count as SLO breaches in $(b,stats), \
             $(b,metrics) and $(b,top).")
  in
  let run socket tcp queue max_frame no_reuse journal journal_max_bytes slo
      jobs verbose =
    Cli.setup_logs verbose;
    Cli.setup_jobs jobs;
    let slo =
      match slo with
      | None -> []
      | Some spec -> (
        match Serve.Telemetry.parse_slo spec with
        | Ok objectives -> objectives
        | Error msg ->
          Printf.eprintf "lookahead_serve: --slo: %s\n%!" msg;
          exit 2)
    in
    let listen = listen_of socket tcp in
    (match listen with
    | `Unix path -> Logs.app (fun m -> m "listening on unix:%s" path)
    | `Tcp (h, p) -> Logs.app (fun m -> m "listening on tcp:%s:%d" h p));
    Serve.Server.run
      {
        Serve.Server.listen;
        queue_capacity = queue;
        max_frame;
        reuse_managers = not no_reuse;
        journal;
        journal_max_bytes;
        slo;
      }
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run the persistent synthesis job server.")
    Term.(
      const run $ socket_arg $ tcp_arg $ queue $ max_frame $ no_reuse
      $ journal $ journal_max_bytes $ slo $ Cli.jobs_term $ verbose_arg)

let submit_cmd =
  let tool =
    Arg.(value & opt string "lookahead" & info [ "t"; "tool" ] ~docv:"TOOL"
           ~doc:"Optimizer: lookahead, sis, abc, dc, resub, mfs, none, \
                 egraph[:COST], or portfolio[:COST].")
  in
  let nodes =
    Arg.(
      value & opt int 0
      & info [ "budget-nodes" ] ~docv:"N"
          ~doc:"Tenant BDD node ceiling (0 = library default).")
  in
  let sat =
    Arg.(
      value & opt int 0
      & info [ "budget-sat" ] ~docv:"N"
          ~doc:"Tenant SAT conflict ceiling per query (0 = unlimited).")
  in
  let sat_total =
    Arg.(
      value & opt int 0
      & info [ "budget-sat-total" ] ~docv:"N"
          ~doc:
            "Tenant cumulative SAT conflict budget across all of the job's \
             queries (0 = unlimited).")
  in
  let deadline =
    Arg.(
      value & opt float 0.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Tenant wall-clock budget for the job (0 = unbounded).")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ] ~doc:"Stream phase-completion events to stderr.")
  in
  let out_blif =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the optimized circuit as BLIF.")
  in
  let run socket tcp circuit blif bench adder tool portfolio cost nodes sat
      sat_total deadline inject time_limit progress out_blif report_file
      verbose =
    Cli.setup_logs verbose;
    let tool = Cli.resolve_tool ~prog:"lookahead_serve" ~portfolio ~cost tool in
    let source =
      Cli.resolve_source
        ~default:(Cli.Adder ("ripple", 8))
        circuit blif bench adder
    in
    let spec =
      {
        (Msg.submit_defaults ~source:(Cli.msg_source_of_cli source) ~tool) with
        Msg.budget =
          {
            Msg.bdd_node_ceiling = nodes;
            sat_conflict_ceiling = sat;
            sat_conflict_budget = sat_total;
            deadline_s = deadline;
          };
        inject;
        time_limit_s = time_limit;
        progress;
        want_blif = out_blif <> None;
        want_report = report_file <> None;
      }
    in
    let c = Client.connect (listen_of socket tcp) in
    let on_progress ~phase ~seq =
      if progress then Fmt.epr "progress[%d]: %s@." seq phase
    in
    let _id, r = Client.submit_wait ~on_progress c spec in
    Client.close c;
    match r.Msg.state with
    | Msg.Done ->
      (match r.Msg.metrics with
      | Some m ->
        Fmt.pr "%a" (Run.pp_metrics ~circuit:r.Msg.circuit ~tool:r.Msg.tool) m
      | None -> ());
      if r.Msg.degraded then Fmt.epr "degraded: yes@.";
      (match (report_file, r.Msg.report) with
      | Some path, Some j -> Cli.write_file path (Obs.Json.to_string j ^ "\n")
      | _ -> ());
      (match (out_blif, r.Msg.blif) with
      | Some path, Some b -> Cli.write_file path b
      | _ -> ())
    | Msg.Failed ->
      Fmt.epr "job failed: %s@."
        (Option.value r.Msg.error ~default:"(no message)");
      exit 1
    | Msg.Cancelled ->
      Fmt.epr "job cancelled@.";
      exit 3
    | Msg.Queued | Msg.Running -> assert false
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit one job, wait for the result, print Table 2 metrics — the \
          served image of $(b,lookahead_opt opt).")
    Term.(
      const run $ socket_arg $ tcp_arg $ Cli.circuit_term $ Cli.blif_term
      $ Cli.bench_term $ Cli.adder_term $ tool $ Cli.portfolio_term
      $ Cli.cost_term $ nodes $ sat $ sat_total $ deadline
      $ Cli.inject_term $ Cli.time_limit_term $ progress $ out_blif
      $ Cli.report_term $ verbose_arg)

let id_arg =
  Arg.(required & pos 0 (some int) None & info [] ~docv:"ID" ~doc:"Job id.")

let print_status id state position =
  match position with
  | Some p -> Fmt.pr "job %d: %s (position %d)@." id (Msg.state_name state) p
  | None -> Fmt.pr "job %d: %s@." id (Msg.state_name state)

let simple_rpc socket tcp req handle =
  let c = Client.connect (listen_of socket tcp) in
  Client.send c req;
  let resp = Client.recv c in
  Client.close c;
  match resp with
  | Msg.Error_reply { code; message } ->
    Fmt.epr "error (%s): %s@." code message;
    exit 1
  | resp -> handle resp

let status_cmd =
  let run socket tcp id =
    simple_rpc socket tcp (Msg.Status id) (function
      | Msg.Job_status { id; state; position } -> print_status id state position
      | _ -> failwith "unexpected response")
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Query one job's state.")
    Term.(const run $ socket_arg $ tcp_arg $ id_arg)

let cancel_cmd =
  let run socket tcp id =
    simple_rpc socket tcp (Msg.Cancel id) (function
      | Msg.Job_status { id; state; position } -> print_status id state position
      | _ -> failwith "unexpected response")
  in
  Cmd.v
    (Cmd.info "cancel" ~doc:"Cancel one of this connection's jobs.")
    Term.(const run $ socket_arg $ tcp_arg $ id_arg)

(* Shared by [stats] and [top]: one line per size class that has seen
   jobs or carries an objective. *)
let pp_slo_table ppf (slo : Msg.slo_stat list) =
  if slo <> [] then begin
    Fmt.pf ppf "slo       : %-4s %6s %6s %8s %8s %8s %9s %7s@." "cls" "jobs"
      "objms" "p50ms" "p95ms" "p99ms" "breaches" "window";
    List.iter
      (fun (s : Msg.slo_stat) ->
        Fmt.pf ppf "            %-4s %6d %6s %8.1f %8.1f %8.1f %9d %4d/%-3d@."
          s.Msg.cls s.Msg.jobs
          (if s.Msg.objective_ms > 0.0 then
             Printf.sprintf "%.0f" s.Msg.objective_ms
           else "-")
          s.Msg.p50_ms s.Msg.p95_ms s.Msg.p99_ms s.Msg.breaches
          s.Msg.window_breaches s.Msg.window)
      slo
  end

let pp_stats ppf (s : Msg.server_stats) =
  Fmt.pf ppf "submitted : %d@." s.Msg.submitted;
  Fmt.pf ppf "completed : %d@." s.Msg.completed;
  Fmt.pf ppf "failed    : %d@." s.Msg.failed;
  Fmt.pf ppf "cancelled : %d@." s.Msg.cancelled;
  Fmt.pf ppf "rejected  : %d@." s.Msg.rejected;
  Fmt.pf ppf "queued    : %d / %d@." s.Msg.queued s.Msg.queue_capacity;
  Fmt.pf ppf "running   : %b@." s.Msg.running;
  Fmt.pf ppf "uptime    : %.1f s@." s.Msg.uptime_s;
  Fmt.pf ppf "warm      : %d circuits, %d managers@." s.Msg.interned_circuits
    s.Msg.pooled_managers;
  pp_slo_table ppf s.Msg.slo

let stats_cmd =
  let run socket tcp =
    let c = Client.connect (listen_of socket tcp) in
    let s = Client.stats c in
    Client.close c;
    Fmt.pr "%a" pp_stats s
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print server statistics.")
    Term.(const run $ socket_arg $ tcp_arg)

let out_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write to $(i,FILE) instead of stdout.")

let metrics_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the JSON mirror instead of the Prometheus-style text \
             exposition.")
  in
  let run socket tcp json out =
    let c = Client.connect (listen_of socket tcp) in
    let text, j = Client.metrics c in
    Client.close c;
    let payload =
      if json then Obs.Json.to_string j ^ "\n" else text
    in
    match out with
    | None -> print_string payload
    | Some path -> Cli.write_file path payload
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Scrape the live metrics endpoint (Prometheus-style text, or \
          $(b,--json)).")
    Term.(const run $ socket_arg $ tcp_arg $ json $ out_file_arg)

let trace_cmd =
  let run socket tcp id out =
    let c = Client.connect (listen_of socket tcp) in
    let tr = Client.job_trace c id in
    Client.close c;
    let payload = Obs.Json.to_string tr ^ "\n" in
    match out with
    | None -> print_string payload
    | Some path -> Cli.write_file path payload
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Fetch the retained Chrome-trace slice of a finished job (open in \
          Perfetto or chrome://tracing). The server keeps the last few \
          jobs only.")
    Term.(const run $ socket_arg $ tcp_arg $ id_arg $ out_file_arg)

let top_cmd =
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period.")
  in
  let iterations =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Stop after N refreshes (0 = run until interrupted).")
  in
  let run socket tcp interval iterations =
    let c = Client.connect (listen_of socket tcp) in
    let rec go i =
      let s = Client.stats c in
      (* Clear + home only when looping; a single iteration (CI) keeps
         plain, greppable output. *)
      if iterations <> 1 then print_string "\027[2J\027[H";
      Fmt.pr "lookahead_serve top — refresh %.1fs@." interval;
      Fmt.pr "%a%!" pp_stats s;
      if iterations = 0 || i < iterations then begin
        Unix.sleepf interval;
        go (i + 1)
      end
    in
    (try go 1 with Failure msg -> Fmt.epr "top: %s@." msg);
    Client.close c
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live server view: throughput counters and the per-size-class SLO \
          table, refreshed in place.")
    Term.(const run $ socket_arg $ tcp_arg $ interval $ iterations)

let shutdown_cmd =
  let run socket tcp =
    let c = Client.connect (listen_of socket tcp) in
    Client.shutdown c;
    Client.close c
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Drain queued jobs and stop the server.")
    Term.(const run $ socket_arg $ tcp_arg)

let () =
  let info =
    Cmd.info "lookahead_serve" ~version:"1.0.0"
      ~doc:
        "Persistent multi-tenant synthesis job server (and its client) for \
         the DAC'09 lookahead reproduction."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; submit_cmd; status_cmd; cancel_cmd; stats_cmd;
            metrics_cmd; trace_cmd; top_cmd; shutdown_cmd ]))
