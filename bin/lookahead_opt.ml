(* Command-line driver: optimize a circuit with any of the four tools and
   report the Table 2 metrics (AIG gates, AIG levels, mapped delay, power
   at 1 GHz). *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* Shared -j/--jobs flag: size of the lib/par domain pool used by the
   optimizer and the equivalence checker. 0 = automatic (LOOKAHEAD_JOBS
   env, else Domain.recommended_domain_count); 1 bypasses the pool
   entirely. Results are bit-identical at any value. *)
let jobs_arg =
  Cmdliner.Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel runtime (0 = automatic, from \
           $(b,LOOKAHEAD_JOBS) or the recommended domain count; 1 bypasses \
           the pool).")

let setup_jobs jobs =
  if jobs > 0 then Par.set_default_jobs jobs

(* Shared observation flags (lib/obs): any of them switches recording
   on; export happens once the work is done. *)
let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the observation summary (work counters, phase wall-clocks) \
           to stderr.")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:
          "Write the observation report as JSON. Its $(b,deterministic) \
           subtree is bit-identical at any $(b,-j) for deadline-free runs \
           (see $(b,--time-limit)).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event file (open in Perfetto or \
           chrome://tracing).")

let setup_obs stats report trace =
  if stats || report <> None || trace <> None then Obs.enable ()

(* Deterministic fault injection (lib/guard), for exercising the
   degradation ladder from the command line and the regression gates. *)
let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"SPEC"
        ~doc:
          "Arm deterministic fault injection: comma-separated rules \
           $(i,fault)@$(i,N)[:r][:$(i,site)] with $(i,fault) one of \
           $(b,bdd), $(b,sat) or $(b,deadline) — fire at the N-th guarded \
           call of that class per governed unit ($(b,:r) repeats at every \
           multiple). The run completes, degraded: each fired fault walks \
           the degradation ladder and is recorded under the \
           $(b,guard.injected.*) / $(b,guard.rung.*) report counters.")

let setup_inject = function
  | None -> ()
  | Some spec -> (
    match Guard.Inject.of_string spec with
    | Ok rules -> Guard.Inject.arm rules
    | Error msg ->
      Printf.eprintf "lookahead_opt: --inject: %s\n%!" msg;
      exit 2)

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let finish_obs stats report trace =
  if Obs.enabled () then begin
    let snap = Obs.snapshot () in
    (match report with
    | Some path ->
      write_file path (Obs.Json.to_string (Obs.report_json snap) ^ "\n")
    | None -> ());
    (match trace with
    | Some path ->
      write_file path (Obs.Json.to_string (Obs.trace_json snap) ^ "\n")
    | None -> ());
    if stats then Obs.pp_summary Format.err_formatter snap
  end

type source =
  | Named of string
  | Blif of string
  | Bench_file of string
  | Adder of string * int

let load = function
  | Named name -> Circuits.Suite.build name
  | Blif path ->
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    Aig.Io.read_blif text
  | Bench_file path ->
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    Aig.Io.read_bench text
  | Adder (kind, n) -> (
    match kind with
    | "ripple" -> Circuits.Adders.ripple_carry n
    | "cla" -> Circuits.Adders.carry_lookahead n
    | "select" -> Circuits.Adders.carry_select n
    | "skip" -> Circuits.Adders.carry_skip n
    | k -> invalid_arg (Printf.sprintf "unknown adder kind %s" k))

let tool_of_name ?time_limit = function
  | "lookahead" ->
    let options =
      match time_limit with
      | None -> Lookahead.Driver.default
      | Some s ->
        {
          Lookahead.Driver.default with
          time_limit_s = (if s <= 0.0 then infinity else s);
        }
    in
    fun g -> Lookahead.optimize ~options g
  | "resub" -> fun g -> Aig.Resub.run (Aig.Balance.run g)
  | "mfs" -> fun g -> Lookahead.Mfs.run g
  | "none" -> Fun.id
  | name -> (
    match Baselines.by_name name with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "unknown tool %s" name))

let report circuit_name tool_name g optimized =
  let netlist = Techmap.Mapper.map optimized in
  Fmt.pr "circuit   : %s@." circuit_name;
  Fmt.pr "tool      : %s@." tool_name;
  Fmt.pr "pi/po     : %d/%d@."
    (Aig.num_inputs optimized)
    (List.length (Aig.outputs optimized));
  Fmt.pr "aig gates : %d (was %d)@."
    (Aig.num_reachable_ands optimized)
    (Aig.num_reachable_ands g);
  Fmt.pr "aig levels: %d (was %d)@." (Aig.depth optimized) (Aig.depth g);
  Fmt.pr "mapped    : %d cells, area %.1f@."
    (Techmap.Mapper.num_gates netlist)
    (Techmap.Mapper.area netlist);
  Fmt.pr "delay     : %.1f ps@." (Techmap.Mapper.delay netlist);
  Fmt.pr "power     : %.3f mW @@ 1GHz@." (Techmap.Power.dynamic_mw netlist)

let opt_cmd =
  let circuit =
    Arg.(value & opt (some string) None & info [ "c"; "circuit" ] ~docv:"NAME"
           ~doc:"Benchmark stand-in from the Table 2 suite.")
  in
  let blif =
    Arg.(value & opt (some file) None & info [ "blif" ] ~docv:"FILE"
           ~doc:"Read the circuit from a BLIF file.")
  in
  let bench =
    Arg.(value & opt (some file) None & info [ "bench" ] ~docv:"FILE"
           ~doc:"Read the circuit from an ISCAS BENCH file.")
  in
  let adder =
    Arg.(value & opt (some (pair ~sep:':' string int)) None
         & info [ "adder" ] ~docv:"KIND:N"
             ~doc:"Generate an adder (ripple|cla|select|skip), e.g. ripple:16.")
  in
  let tool =
    Arg.(value & opt string "lookahead" & info [ "t"; "tool" ] ~docv:"TOOL"
           ~doc:"Optimizer: lookahead, sis, abc, dc, resub, mfs, or none.")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Run SAT equivalence checking against the input.")
  in
  let out_blif =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the optimized circuit as BLIF.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logs.") in
  let time_limit =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-limit" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget for the lookahead optimizer; 0 disables the \
             anytime deadline entirely. Default: the driver's built-in \
             budget. Identity-checked runs (comparing $(b,--report) output \
             across $(b,-j)) should pass 0 — a deadline cut depends on \
             scheduling.")
  in
  let run circuit blif bench adder tool check out_blif verbose jobs time_limit
      stats report_file trace inject =
    setup_logs verbose;
    setup_jobs jobs;
    setup_obs stats report_file trace;
    setup_inject inject;
    let source, name =
      match (circuit, blif, bench, adder) with
      | Some n, None, None, None -> (Named n, n)
      | None, Some f, None, None -> (Blif f, Filename.basename f)
      | None, None, Some f, None -> (Bench_file f, Filename.basename f)
      | None, None, None, Some (k, n) ->
        (Adder (k, n), Printf.sprintf "%s-adder-%d" k n)
      | None, None, None, None -> (Adder ("ripple", 8), "ripple-adder-8")
      | _ -> invalid_arg "choose exactly one circuit source"
    in
    let g = load source in
    let optimized = tool_of_name ?time_limit tool g in
    report name tool g optimized;
    finish_obs stats report_file trace;
    if check then begin
      match Aig.Cec.check g optimized with
      | Aig.Cec.Equivalent -> Fmt.pr "equivalence: PASS@."
      | Aig.Cec.Counterexample _ ->
        Fmt.pr "equivalence: FAIL@.";
        exit 1
    end;
    match out_blif with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Aig.Io.blif_to_string ~model:name optimized);
      close_out oc
  in
  Cmd.v
    (Cmd.info "opt" ~doc:"Optimize a circuit and report Table 2 metrics.")
    Term.(
      const run $ circuit $ blif $ bench $ adder $ tool $ check $ out_blif
      $ verbose $ jobs_arg $ time_limit $ stats_arg $ report_arg $ trace_arg
      $ inject_arg)

let timing_cmd =
  let circuit =
    Arg.(value & opt string "C432" & info [ "c"; "circuit" ] ~docv:"NAME"
           ~doc:"Benchmark stand-in to analyze.")
  in
  let tool =
    Arg.(value & opt string "lookahead" & info [ "t"; "tool" ] ~docv:"TOOL"
           ~doc:"Optimizer applied before timing analysis.")
  in
  let run circuit tool jobs stats report_file trace =
    setup_logs false;
    setup_jobs jobs;
    setup_obs stats report_file trace;
    let g = Circuits.Suite.build circuit in
    let optimized = tool_of_name tool g in
    let netlist = Techmap.Mapper.map optimized in
    let report = Techmap.Sta.analyze netlist in
    Fmt.pr "circuit: %s, tool: %s@." circuit tool;
    Techmap.Sta.pp_report Format.std_formatter (netlist, report);
    finish_obs stats report_file trace
  in
  Cmd.v
    (Cmd.info "timing" ~doc:"Map a circuit and print the STA report.")
    Term.(
      const run $ circuit $ tool $ jobs_arg $ stats_arg $ report_arg
      $ trace_arg)

let export_cmd =
  let circuit =
    Arg.(value & opt string "C432" & info [ "c"; "circuit" ] ~docv:"NAME"
           ~doc:"Benchmark stand-in to export.")
  in
  let fmt_arg =
    Arg.(value & opt string "blif" & info [ "f"; "format" ] ~docv:"FMT"
           ~doc:"Output format: blif, bench, aag, verilog, mapped-verilog.")
  in
  let run circuit fmt =
    setup_logs false;
    let g = Circuits.Suite.build circuit in
    match fmt with
    | "blif" -> print_string (Aig.Io.blif_to_string ~model:circuit g)
    | "bench" -> Aig.Io.write_bench Format.std_formatter g
    | "aag" -> print_string (Aig.Aiger.aag_to_string g)
    | "verilog" -> print_string (Aig.Verilog.to_string ~module_name:circuit g)
    | "mapped-verilog" ->
      print_string
        (Techmap.Verilog.to_string ~module_name:circuit (Techmap.Mapper.map g))
    | other -> invalid_arg (Printf.sprintf "unknown format %s" other)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a circuit in a standard format.")
    Term.(const run $ circuit $ fmt_arg)

let list_cmd =
  let run () =
    List.iter
      (fun (i : Circuits.Suite.info) ->
        Fmt.pr "%-24s %4d/%-4d %-9s %s%s@." i.Circuits.Suite.name
          i.Circuits.Suite.pi i.Circuits.Suite.po i.Circuits.Suite.family
          i.Circuits.Suite.description
          (if i.Circuits.Suite.po_estimated then " (PO count estimated)" else ""))
      Circuits.Suite.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the Table 2 benchmark stand-ins.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "lookahead_opt" ~version:"1.0.0"
      ~doc:
        "Timing-driven optimization using lookahead logic circuits (DAC'09 \
         reproduction)."
  in
  exit (Cmd.eval (Cmd.group info [ opt_cmd; timing_cmd; export_cmd; list_cmd ]))
