(* Command-line driver: optimize a circuit with any of the four tools and
   report the Table 2 metrics (AIG gates, AIG levels, mapped delay, power
   at 1 GHz). The flag plumbing and the execution sequence live in
   Serve.Cli / Serve.Run, shared with the job server and the bench
   harness, so the one-shot CLI and the warm server cannot drift. *)

open Cmdliner
module Cli = Serve.Cli
module Run = Serve.Run

let opt_cmd =
  let tool =
    Arg.(value & opt string "lookahead" & info [ "t"; "tool" ] ~docv:"TOOL"
           ~doc:"Optimizer: lookahead, sis, abc, dc, resub, mfs, none, \
                 egraph[:COST], or portfolio[:COST].")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Run SAT equivalence checking against the input.")
  in
  let out_blif =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the optimized circuit as BLIF.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logs.") in
  let run circuit blif bench adder tool portfolio cost check out_blif verbose
      jobs time_limit stats report_file trace journal inject =
    Cli.setup_logs verbose;
    Cli.setup_jobs jobs;
    let obs = { Cli.stats; report = report_file; trace; journal } in
    Cli.setup_obs obs;
    Cli.setup_inject ~prog:"lookahead_opt" inject;
    let tool = Cli.resolve_tool ~prog:"lookahead_opt" ~portfolio ~cost tool in
    let source =
      Cli.resolve_source
        ~default:(Cli.Adder ("ripple", 8))
        circuit blif bench adder
    in
    let name = Cli.source_cli_name source in
    let g = Cli.load_source_cli source in
    let options = Cli.driver_options ?time_limit () in
    let optimized = Run.tool ~options tool g in
    let metrics = Run.metrics ~original:g optimized in
    Fmt.pr "%a" (Run.pp_metrics ~circuit:name ~tool) metrics;
    Cli.finish_obs obs;
    if check then begin
      match Aig.Cec.check g optimized with
      | Aig.Cec.Equivalent -> Fmt.pr "equivalence: PASS@."
      | Aig.Cec.Counterexample _ ->
        Fmt.pr "equivalence: FAIL@.";
        exit 1
    end;
    match out_blif with
    | None -> ()
    | Some path -> Cli.write_file path (Run.blif_of ~name optimized)
  in
  Cmd.v
    (Cmd.info "opt" ~doc:"Optimize a circuit and report Table 2 metrics.")
    Term.(
      const run $ Cli.circuit_term $ Cli.blif_term $ Cli.bench_term
      $ Cli.adder_term $ tool $ Cli.portfolio_term $ Cli.cost_term $ check
      $ out_blif $ verbose $ Cli.jobs_term $ Cli.time_limit_term
      $ Cli.stats_term $ Cli.report_term $ Cli.trace_term $ Cli.journal_term
      $ Cli.inject_term)

let timing_cmd =
  let circuit =
    Arg.(value & opt string "C432" & info [ "c"; "circuit" ] ~docv:"NAME"
           ~doc:"Benchmark stand-in to analyze.")
  in
  let tool =
    Arg.(value & opt string "lookahead" & info [ "t"; "tool" ] ~docv:"TOOL"
           ~doc:"Optimizer applied before timing analysis.")
  in
  let run circuit tool jobs stats report_file trace =
    Cli.setup_logs false;
    Cli.setup_jobs jobs;
    let obs = { Cli.stats; report = report_file; trace; journal = None } in
    Cli.setup_obs obs;
    let g = Circuits.Suite.build circuit in
    let optimized = Run.tool ~options:(Cli.driver_options ()) tool g in
    let netlist = Techmap.Mapper.map optimized in
    let report = Techmap.Sta.analyze netlist in
    Fmt.pr "circuit: %s, tool: %s@." circuit tool;
    Techmap.Sta.pp_report Format.std_formatter (netlist, report);
    Cli.finish_obs obs
  in
  Cmd.v
    (Cmd.info "timing" ~doc:"Map a circuit and print the STA report.")
    Term.(
      const run $ circuit $ tool $ Cli.jobs_term $ Cli.stats_term
      $ Cli.report_term $ Cli.trace_term)

let export_cmd =
  let circuit =
    Arg.(value & opt string "C432" & info [ "c"; "circuit" ] ~docv:"NAME"
           ~doc:"Benchmark stand-in to export.")
  in
  let fmt_arg =
    Arg.(value & opt string "blif" & info [ "f"; "format" ] ~docv:"FMT"
           ~doc:"Output format: blif, bench, aag, verilog, mapped-verilog.")
  in
  let run circuit fmt =
    Cli.setup_logs false;
    let g = Circuits.Suite.build circuit in
    match fmt with
    | "blif" -> print_string (Aig.Io.blif_to_string ~model:circuit g)
    | "bench" -> Aig.Io.write_bench Format.std_formatter g
    | "aag" -> print_string (Aig.Aiger.aag_to_string g)
    | "verilog" -> print_string (Aig.Verilog.to_string ~module_name:circuit g)
    | "mapped-verilog" ->
      print_string
        (Techmap.Verilog.to_string ~module_name:circuit (Techmap.Mapper.map g))
    | other -> invalid_arg (Printf.sprintf "unknown format %s" other)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a circuit in a standard format.")
    Term.(const run $ circuit $ fmt_arg)

let list_cmd =
  let run () =
    List.iter
      (fun (i : Circuits.Suite.info) ->
        Fmt.pr "%-24s %4d/%-4d %-9s %s%s@." i.Circuits.Suite.name
          i.Circuits.Suite.pi i.Circuits.Suite.po i.Circuits.Suite.family
          i.Circuits.Suite.description
          (if i.Circuits.Suite.po_estimated then " (PO count estimated)" else ""))
      Circuits.Suite.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the Table 2 benchmark stand-ins.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "lookahead_opt" ~version:"1.0.0"
      ~doc:
        "Timing-driven optimization using lookahead logic circuits (DAC'09 \
         reproduction)."
  in
  exit (Cmd.eval (Cmd.group info [ opt_cmd; timing_cmd; export_cmd; list_cmd ]))
