.PHONY: all build test bench coverage coverage-clean clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe -- table1

# Coverage via bisect_ppx. Every library/executable carries an
# (instrumentation (backend bisect_ppx)) stanza, which is inert unless
# dune is invoked with --instrument-with, so regular builds never need
# the package. This target degrades gracefully where bisect_ppx is not
# installed (e.g. the pinned dev container): CI installs it and runs
# `make coverage` to publish the baseline recorded in EXPERIMENTS.md.
coverage:
	@if ! ocamlfind query bisect_ppx >/dev/null 2>&1; then \
	  echo "coverage: bisect_ppx not installed; skipping."; \
	  echo "coverage: install it (opam install bisect_ppx) and re-run."; \
	else \
	  rm -rf _coverage && mkdir -p _coverage; \
	  BISECT_FILE=$$(pwd)/_coverage/bisect \
	    dune runtest --force --instrument-with bisect_ppx && \
	  bisect-ppx-report html --coverage-path _coverage -o _coverage/html && \
	  bisect-ppx-report summary --coverage-path _coverage \
	    | tee _coverage/summary.txt; \
	  echo "coverage: report at _coverage/html/index.html"; \
	fi

coverage-clean:
	rm -rf _coverage

clean:
	dune clean
