(* Lookahead optimization of irregular control logic — the case the paper
   is actually about (Sec. 3: "in general multi-level logic circuits,
   identifying parallel computation ... is significantly more
   challenging").

   This example walks through the machinery explicitly on an interrupt
   priority controller: builds the technology-independent network,
   computes node levels (the paper's quantification), derives the SPCF of
   the critical output, and shows the discovered decomposition before
   running the full driver.

   Run with: dune exec examples/control_logic.exe *)

let () =
  let g = Circuits.Gen.priority_controller ~channels:12 ~po:6 in
  Format.printf "circuit: %a@." Aig.pp_stats g;

  (* Step 1: cluster into the technology-independent network T. *)
  let g = Aig.Balance.run g in
  let net = Network.of_aig ~k:6 g in
  Format.printf "network: %a@." Network.pp_stats net;

  (* Step 2: node levels per Sec. 3.1 (min-SOP AND/OR tree depths). *)
  let levels = Network.Levels.compute net in
  let outs = Network.outputs net in
  List.iter
    (fun (o : Network.output) ->
      Format.printf "  output %-4s level %d@." o.Network.name
        levels.(o.Network.node))
    outs;

  (* Step 3: SPCF of the deepest output. *)
  let crit =
    List.fold_left
      (fun acc (o : Network.output) ->
        match acc with
        | Some best when levels.(best.Network.node) >= levels.(o.Network.node) ->
          acc
        | _ -> Some o)
      None outs
  in
  let o = Option.get crit in
  let man = Bdd.create () in
  let globals = Network.Globals.of_net man net in
  let delta = levels.(o.Network.node) in
  let spcf = Timing.Spcf.approx man net globals ~levels ~out:o ~delta () in
  let nvars = Network.num_inputs net in
  Format.printf
    "SPCF of %s at delta=%d covers %.1f%% of the input space@." o.Network.name
    delta
    (100.0
     *. Bdd.satcount man ~nvars spcf
     /. (2.0 ** float_of_int nvars));

  (* Step 4: one primary simplification pass (Fig. 2) on a copy. *)
  let primary = Network.copy net in
  let analysis = Network.Analysis.create primary in
  let spcf_count = Bdd.satcount man ~nvars spcf in
  let outcome =
    Lookahead.Reduce.run man ~analysis ~globals ~spcf ~spcf_count primary ~out:o
      ~target:delta
  in
  Format.printf "primary simplification: %d node(s) edited, level %d -> %d@."
    (List.length outcome.Lookahead.Reduce.marked)
    delta outcome.Lookahead.Reduce.achieved_level;
  List.iter
    (fun (id, w) ->
      Format.printf "  node %d window keeps %d/%d local minterms@." id
        (Logic.Tt.count_ones w) (Logic.Tt.size w))
    outcome.Lookahead.Reduce.marked;

  (* Step 5: the full driver (decomposition + reconstruction + CEC). *)
  let optimized, stats = Lookahead.optimize_with_stats g in
  Format.printf "full flow: depth %d -> %d (%d output(s) decomposed)@."
    stats.Lookahead.Driver.initial_depth stats.Lookahead.Driver.final_depth
    stats.Lookahead.Driver.outputs_decomposed;
  let netlist = Techmap.Mapper.map optimized in
  Format.printf "mapped: %.1f ps, %.3f mW@."
    (Techmap.Mapper.delay netlist)
    (Techmap.Power.dynamic_mw netlist)
