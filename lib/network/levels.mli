(** Logic-level quantification for the technology-independent network
    (Sec. 3.1, "Quantifying logic levels in T").

    The level of a node is computed from the minimum SOP covers of its
    on-set and off-set: each prime-implicant cube contributes an optimal
    AND-tree depth over its literals' fanin levels; the cover contributes
    an optimal OR-tree over the cube depths; the node level is the
    smaller of the on-set and off-set values (the cheaper polarity).
    Optimal tree depth for a level multiset is obtained by always merging
    the two shallowest items (Huffman order). *)

(** [tree_depth levels] is the depth of an optimal binary tree whose
    leaves arrive at the given levels; [0] for the empty and singleton
    cases where no gate is needed. *)
val tree_depth : int list -> int

(** [sop_depth sop ~fanin_level] is the optimal OR-of-AND depth of a
    cover given the level of each SOP variable. *)
val sop_depth : Logic.Sop.t -> fanin_level:(int -> int) -> int

(** [node_level net ~levels id] is the level of node [id] given the
    levels of its fanins (read from [levels]). Inputs are level 0. *)
val node_level : Graph.t -> levels:int array -> int -> int

(** Levels of all nodes in topological order. *)
val compute : Graph.t -> int array

(** Incremental levels with dirty-region repair.

    After a {!Graph.set_func} edit, call {!Inc.invalidate} with the
    edited node; {!Inc.levels} then repairs only the transitive fanout
    of the dirty set (pruned where a recomputed level is unchanged) and
    returns an array identical to a from-scratch {!compute}.

    Contract: the wiring of the network must not change over the
    lifetime of an [Inc.t] (no [add_node] / [add_input]; [set_output]
    is fine — levels are per-node). The returned array is the engine's
    internal state: treat it as read-only, and re-fetch it after the
    next [invalidate]/[levels] cycle (repair mutates it in place). *)
module Inc : sig
  type t

  (** Fresh engine; computes the initial levels from scratch. *)
  val create : Graph.t -> t

  (** [of_levels net ~fanouts levels] adopts known-correct [levels]
      (copied) instead of recomputing — e.g. for a {!Graph.copy} whose
      functions are still identical to the network [levels] came from.
      [fanouts] may be shared across copies: it depends on wiring only. *)
  val of_levels : Graph.t -> fanouts:int list array -> int array -> t

  (** Mark a node whose function was edited. O(log dirty). *)
  val invalidate : t -> int -> unit

  (** Repaired levels of all nodes (see the contract above). *)
  val levels : t -> int array
end

(** Level of the deepest output. *)
val depth : Graph.t -> int

(** [output_level net ~levels] per-output levels. *)
val output_levels : Graph.t -> levels:int array -> (Graph.output * int) list

(** [critical_inputs net ~levels id] are the fanin positions whose level
    reduction is a necessary condition for reducing the node's level —
    operationally, the positions carrying the maximum fanin level. When
    every fanin is at level 0 (the node's own structure dominates) no
    input is critical. *)
val critical_inputs : Graph.t -> levels:int array -> int -> int list
