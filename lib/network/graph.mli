(** The technology-independent network [T] of the paper (Sec. 3):
    a DAG whose internal nodes carry complex Boolean functions (stored as
    truth tables over their fanins). The lookahead synthesis algorithm
    works by editing these node functions in place.

    Node ids are dense and topologically ordered at construction; edits
    never change the wiring, only the functions, so the order stays
    valid. New nodes (window logic, reconstruction muxes) are appended
    and may reference any existing node. *)

type t

type node = {
  fanins : int array;  (** node ids *)
  func : Logic.Tt.t;  (** over the fanins, in order *)
}

(** An output is a node with a polarity. *)
type output = { name : string; node : int; negated : bool }

val create : unit -> t

(** [add_input net] appends a primary input node and returns its id. *)
val add_input : ?name:string -> t -> int

(** [add_node net fanins func] appends an internal node.
    [Tt.num_vars func] must equal [Array.length fanins]. *)
val add_node : t -> int array -> Logic.Tt.t -> int

val add_output : t -> string -> ?negated:bool -> int -> unit

(** [set_output net i ~node ~negated] redirects output [i] (in
    {!outputs} order) to [node]. O(1): outputs are stored in a growable
    array. *)
val set_output : t -> int -> node:int -> negated:bool -> unit

val num_nodes : t -> int
val num_inputs : t -> int
val is_input : t -> int -> bool
val node : t -> int -> node
val outputs : t -> output list
val num_outputs : t -> int

(** [output net i] is the [i]-th output, in {!outputs} order. *)
val output : t -> int -> output
val inputs : t -> int list
val input_index : t -> int -> int

(** Replace the function of a node (fanins unchanged). *)
val set_func : t -> int -> Logic.Tt.t -> unit

(** Deep copy (functions are immutable, wiring arrays are copied). *)
val copy : t -> t

(** Ids in topological order (inputs first). *)
val topo_order : t -> int list

(** Ids of the transitive fanin cone of a node (node included),
    topological order. *)
val cone : t -> int -> int list

(** Fanout lists per node id. *)
val fanouts : t -> int list array

(** Evaluate the network on an input assignment; returns values for all
    nodes. *)
val eval_nodes : t -> bool array -> bool array

val eval : t -> bool array -> bool array

(** Convert an AIG into a network with one two-input AND node per AIG
    node — the trivial clustering. *)
val of_aig_direct : Aig.t -> t

(** [of_aig ~k aig] clusters the AIG into nodes with at most [k] inputs
    using depth-minimizing cut covering (the paper's `renode` step). *)
val of_aig : ?k:int -> Aig.t -> t

(** Factor every node function back into an AIG ({!Aig.Synth.of_tt}). *)
val to_aig : t -> Aig.t

val pp_stats : Format.formatter -> t -> unit
