(* Output-cone clustering for the partitioned BDD engine.

   Outputs whose cones share primary inputs want to share a BDD
   manager (shared support means shared subfunctions); outputs with
   disjoint support can be built in different managers with zero
   duplicated work. So: union-find over output indices, merging the
   outputs that share each primary input, subject to a cap on the
   merged cone size — the cap is what keeps partitions balanced enough
   to parallelize instead of collapsing into one giant cluster. Groups
   the cap kept apart are then bin-packed (first-fit in first-output
   order) into clusters, so many tiny independent cones still form a
   few worker-sized units.

   Everything here is a pure function of the network's wiring and the
   cap — no randomness, no scheduling input — so the partition (and
   with it the whole partitioned build) is deterministic at any -j.
   The cap never depends on the worker count for the same reason. *)

type cluster = { outputs : int list; nodes : int list }

let m_partitions = Obs.counter "partition.clusters"
let m_cluster_nodes = Obs.histogram "partition.cluster_nodes"
let m_cluster_outputs = Obs.histogram "partition.cluster_outputs"

let default_cap net =
  (* Aim for ~8 worker-sized clusters of the total (with multiplicity)
     cone work; the floor keeps toy circuits in one cluster. *)
  let total =
    List.fold_left
      (fun acc (o : Graph.output) ->
        acc + List.length (Graph.cone net o.Graph.node))
      0 (Graph.outputs net)
  in
  max 64 ((total + 7) / 8)

let compute ?cap net =
  let outs = Array.of_list (Graph.outputs net) in
  let m = Array.length outs in
  let cap = match cap with Some c -> max 1 c | None -> default_cap net in
  let cones =
    Array.map (fun (o : Graph.output) -> Graph.cone net o.Graph.node) outs
  in
  (* Union-find over output indices; each root carries its group's node
     set so the union size is exact, not an estimate. *)
  let parent = Array.init m (fun i -> i) in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let sets =
    Array.map
      (fun c ->
        let h = Hashtbl.create (2 * List.length c) in
        List.iter (fun id -> Hashtbl.replace h id ()) c;
        h)
      cones
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then begin
      let sa = sets.(ra) and sb = sets.(rb) in
      let rs, rl =
        if Hashtbl.length sa <= Hashtbl.length sb then (ra, rb) else (rb, ra)
      in
      let small = sets.(rs) and large = sets.(rl) in
      let extra =
        Hashtbl.fold
          (fun id () acc -> if Hashtbl.mem large id then acc else acc + 1)
          small 0
      in
      if Hashtbl.length large + extra <= cap then begin
        Hashtbl.iter (fun id () -> Hashtbl.replace large id ()) small;
        parent.(rs) <- rl
      end
    end
  in
  (* Outputs sharing a primary input are merge candidates; walking the
     inputs in id order keeps the merge sequence deterministic. *)
  let of_input = Hashtbl.create 64 in
  Array.iteri
    (fun i cone ->
      List.iter
        (fun id ->
          if Graph.is_input net id then
            Hashtbl.replace of_input id
              (i
              :: (match Hashtbl.find_opt of_input id with
                 | Some l -> l
                 | None -> [])))
        cone)
    cones;
  List.iter
    (fun iid ->
      match Hashtbl.find_opt of_input iid with
      | None | Some [] -> ()
      | Some (first :: rest) ->
        (* [of_input] lists are built in reverse output order; union is
           symmetric in result, and the pairing order is a function of
           the wiring only. *)
        List.iter (fun o -> union first o) rest)
    (Graph.inputs net);
  (* Group outputs by root, groups ordered by first (lowest) member. *)
  let group_of_root = Hashtbl.create 16 in
  let groups = ref [] in
  for i = m - 1 downto 0 do
    let r = find i in
    match Hashtbl.find_opt group_of_root r with
    | Some cell -> cell := i :: !cell
    | None ->
      let cell = ref [ i ] in
      Hashtbl.replace group_of_root r cell;
      groups := (r, cell) :: !groups
  done;
  let groups =
    List.sort
      (fun (_, a) (_, b) -> compare (List.hd !a) (List.hd !b))
      !groups
  in
  (* First-fit bin packing of the support-connected groups. Groups in
     one bin are support-disjoint only if the cap, not disjointness,
     kept them apart — summing their exact sizes over-approximates the
     union, which errs toward smaller (never larger) clusters. *)
  let bins = ref [] (* (size ref, member group roots ref), reversed *) in
  List.iter
    (fun (r, members) ->
      let size = Hashtbl.length sets.(r) in
      let rec place = function
        | [] ->
          bins := (ref size, ref [ (r, members) ]) :: !bins
        | (bsize, bmembers) :: rest ->
          if !bsize + size <= cap then begin
            bsize := !bsize + size;
            bmembers := (r, members) :: !bmembers
          end
          else place rest
      in
      place (List.rev !bins))
    groups;
  let n = Graph.num_nodes net in
  let order = Graph.topo_order net in
  let clusters =
    List.rev_map
      (fun (_, bmembers) ->
        let mark = Array.make n false in
        let outputs = ref [] in
        List.iter
          (fun (r, members) ->
            Hashtbl.iter (fun id () -> mark.(id) <- true) sets.(r);
            outputs := !members @ !outputs)
          !bmembers;
        {
          outputs = List.sort_uniq compare !outputs;
          nodes = List.filter (fun id -> mark.(id)) order;
        })
      !bins
    |> Array.of_list
  in
  Obs.add m_partitions (Array.length clusters);
  Array.iter
    (fun c ->
      Obs.observe m_cluster_nodes (List.length c.nodes);
      Obs.observe m_cluster_outputs (List.length c.outputs))
    clusters;
  clusters

let member net c =
  let mark = Array.make (Graph.num_nodes net) false in
  List.iter (fun id -> mark.(id) <- true) c.nodes;
  mark
