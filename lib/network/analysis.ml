(* Per-decomposition cache of network analyses.

   The decomposition inner loop only ever edits node *functions*
   ([Graph.set_func]) and output polarities ([Graph.set_output]) — the
   wiring is fixed once [of_aig] has clustered the round's network, and
   every working network is a [Graph.copy] of that one. Cones, fanouts
   and cone-support counts depend on wiring alone, so one cache serves
   the original and all of its copies ([for_copy]); levels depend on
   the functions and get a per-network incremental engine seeded from
   the parent's repaired array. *)

type wiring = {
  frozen_n : int; (* node count the caches were built for *)
  mutable fanouts : int list array option;
  cones : (int, int list) Hashtbl.t;
  supports : (int, int) Hashtbl.t; (* id -> #primary inputs in cone *)
}

type t = {
  net : Graph.t;
  wiring : wiring; (* shared across [for_copy] descendants *)
  mutable inc : Levels.Inc.t option; (* per-network, lazily created *)
}

(* The wiring cache is shared by every job a worker runs, so its
   hit/miss split depends on which jobs landed there — [Sched].
   [for_copy] seeding is per-job work — [Det]. *)
let m_cone_hits = Obs.counter ~stability:Obs.Sched "analysis.cone_hits"
let m_cone_misses = Obs.counter ~stability:Obs.Sched "analysis.cone_misses"
let m_support_hits = Obs.counter ~stability:Obs.Sched "analysis.support_hits"

let m_support_misses =
  Obs.counter ~stability:Obs.Sched "analysis.support_misses"

let m_copies_seeded = Obs.counter "analysis.copies_seeded"

let create net =
  {
    net;
    wiring =
      {
        frozen_n = Graph.num_nodes net;
        fanouts = None;
        cones = Hashtbl.create 16;
        supports = Hashtbl.create 16;
      };
    inc = None;
  }

let net t = t.net

let check_frozen t =
  (* Appending nodes would stale every wiring cache (and the shared
     tables of the other copies); the decomposition loop never does. *)
  assert (Graph.num_nodes t.net = t.wiring.frozen_n)

let fanouts t =
  check_frozen t;
  match t.wiring.fanouts with
  | Some fo -> fo
  | None ->
    let fo = Graph.fanouts t.net in
    t.wiring.fanouts <- Some fo;
    fo

let cone t id =
  check_frozen t;
  match Hashtbl.find_opt t.wiring.cones id with
  | Some c ->
    Obs.incr m_cone_hits;
    c
  | None ->
    Obs.incr m_cone_misses;
    let c = Graph.cone t.net id in
    Hashtbl.replace t.wiring.cones id c;
    c

let support_count t id =
  check_frozen t;
  match Hashtbl.find_opt t.wiring.supports id with
  | Some s ->
    Obs.incr m_support_hits;
    s
  | None ->
    Obs.incr m_support_misses;
    let s =
      List.fold_left
        (fun acc n -> if Graph.is_input t.net n then acc + 1 else acc)
        0 (cone t id)
    in
    Hashtbl.replace t.wiring.supports id s;
    s

let inc t =
  match t.inc with
  | Some i -> i
  | None ->
    let i = Levels.Inc.of_levels t.net ~fanouts:(fanouts t) (Levels.compute t.net) in
    t.inc <- Some i;
    i

let levels t = Levels.Inc.levels (inc t)
let invalidate t id = Levels.Inc.invalidate (inc t) id

let for_copy t net' =
  check_frozen t;
  Obs.incr m_copies_seeded;
  assert (Graph.num_nodes net' = t.wiring.frozen_n);
  (* Seed the copy's level engine from the parent's repaired levels:
     the copy is fresh, so its functions — and therefore its levels —
     are still the parent's. *)
  let inc' = Levels.Inc.of_levels net' ~fanouts:(fanouts t) (levels t) in
  { net = net'; wiring = t.wiring; inc = Some inc' }
