(** Output-cone clustering for the partitioned parallel BDD engine.

    Clusters the network's outputs into balanced partitions by
    union-find over shared primary-input support, subject to a size cap
    on the merged cone (in network nodes), then first-fit bin-packing
    of the resulting groups so many small independent cones still form
    a few worker-sized clusters. Outputs that share support land in one
    cluster whenever the cap allows, so the per-cluster BDD managers
    duplicate as little shared-subfunction work as possible.

    The partition is a pure function of the network wiring and the cap
    — never of the worker count or scheduling — which is what makes
    the partitioned build's merge order, and hence its results,
    identical at any [-j]. *)

(** One partition: its output indices (ascending, into
    {!Graph.outputs} order) and the fanin-closed union of their cones
    in topological order. Every output index appears in exactly one
    cluster. *)
type cluster = { outputs : int list; nodes : int list }

(** [compute ?cap net] clusters the outputs. [cap] bounds each
    cluster's node-set size (a support-connected single-output cone
    larger than [cap] still forms its own cluster); default
    {!default_cap}. Deterministic for fixed wiring and cap. *)
val compute : ?cap:int -> Graph.t -> cluster array

(** The default size cap: about an eighth of the total per-output cone
    work (with multiplicity), floored at 64 nodes, aiming for ~8
    balanced clusters on the paper's circuits. Independent of the
    worker count by design. *)
val default_cap : Graph.t -> int

(** Membership mask of a cluster's node set, indexed by node id —
    the [member] argument of {!Globals.update}. *)
val member : Graph.t -> cluster -> bool array
