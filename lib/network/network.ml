include Graph
module Levels = Levels
module Globals = Globals
module Analysis = Analysis
module Partition = Partition
