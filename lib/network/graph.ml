type node = { fanins : int array; func : Logic.Tt.t }
type output = { name : string; node : int; negated : bool }

type t = {
  mutable nodes : node array;
  mutable n : int;
  mutable input_ids : int list; (* reversed *)
  mutable num_inputs : int;
  mutable outs : output array; (* growable; first [num_outs] live *)
  mutable num_outs : int;
  names : (int, string) Hashtbl.t;
  input_pos : (int, int) Hashtbl.t;
}

let dummy_node = { fanins = [||]; func = Logic.Tt.const_false 0 }
let dummy_output = { name = ""; node = 0; negated = false }

let create () =
  {
    nodes = Array.make 16 dummy_node;
    n = 0;
    input_ids = [];
    num_inputs = 0;
    outs = Array.make 4 dummy_output;
    num_outs = 0;
    names = Hashtbl.create 16;
    input_pos = Hashtbl.create 16;
  }

let grow net =
  if net.n >= Array.length net.nodes then begin
    let a = Array.make (2 * Array.length net.nodes) dummy_node in
    Array.blit net.nodes 0 a 0 net.n;
    net.nodes <- a
  end

let add_input ?name net =
  grow net;
  let id = net.n in
  net.nodes.(id) <- dummy_node;
  net.n <- net.n + 1;
  net.input_ids <- id :: net.input_ids;
  Hashtbl.replace net.input_pos id net.num_inputs;
  net.num_inputs <- net.num_inputs + 1;
  (match name with Some s -> Hashtbl.replace net.names id s | None -> ());
  id

let is_input net id = Hashtbl.mem net.input_pos id

let add_node net fanins func =
  assert (Logic.Tt.num_vars func = Array.length fanins);
  Array.iter (fun f -> assert (f >= 0 && f < net.n)) fanins;
  grow net;
  let id = net.n in
  net.nodes.(id) <- { fanins = Array.copy fanins; func };
  net.n <- net.n + 1;
  id

let add_output net name ?(negated = false) id =
  assert (id >= 0 && id < net.n);
  if net.num_outs >= Array.length net.outs then begin
    let a = Array.make (2 * Array.length net.outs) dummy_output in
    Array.blit net.outs 0 a 0 net.num_outs;
    net.outs <- a
  end;
  net.outs.(net.num_outs) <- { name; node = id; negated };
  net.num_outs <- net.num_outs + 1

let set_output net i ~node ~negated =
  assert (i >= 0 && i < net.num_outs);
  net.outs.(i) <- { net.outs.(i) with node; negated }

let num_nodes net = net.n
let num_inputs net = net.num_inputs

let node net id =
  assert (id >= 0 && id < net.n);
  net.nodes.(id)

let outputs net = List.init net.num_outs (fun i -> net.outs.(i))
let num_outputs net = net.num_outs
let output net i =
  assert (i >= 0 && i < net.num_outs);
  net.outs.(i)
let inputs net = List.rev net.input_ids
let input_index net id = Hashtbl.find net.input_pos id

let set_func net id func =
  assert (not (is_input net id));
  let nd = net.nodes.(id) in
  assert (Logic.Tt.num_vars func = Array.length nd.fanins);
  net.nodes.(id) <- { nd with func }

let copy net =
  {
    nodes = Array.copy net.nodes;
    n = net.n;
    input_ids = net.input_ids;
    num_inputs = net.num_inputs;
    outs = Array.copy net.outs;
    num_outs = net.num_outs;
    names = Hashtbl.copy net.names;
    input_pos = Hashtbl.copy net.input_pos;
  }

let topo_order net = List.init net.n Fun.id

(* Ascending node ids are a topological order, so collecting the marked
   ids and sorting gives the cone in topological order without building
   (and filtering) the full [topo_order] list. *)
let cone net root =
  let mark = Array.make net.n false in
  let members = ref [] in
  let rec visit id =
    if not mark.(id) then begin
      mark.(id) <- true;
      members := id :: !members;
      if not (is_input net id) then Array.iter visit net.nodes.(id).fanins
    end
  in
  visit root;
  List.sort compare !members

let fanouts net =
  let fo = Array.make net.n [] in
  for id = 0 to net.n - 1 do
    if not (is_input net id) then
      Array.iter (fun f -> fo.(f) <- id :: fo.(f)) net.nodes.(id).fanins
  done;
  fo

let eval_nodes net bits =
  assert (Array.length bits = net.num_inputs);
  let values = Array.make net.n false in
  for id = 0 to net.n - 1 do
    if is_input net id then values.(id) <- bits.(input_index net id)
    else begin
      let nd = net.nodes.(id) in
      let m = ref 0 in
      Array.iteri (fun i f -> if values.(f) then m := !m lor (1 lsl i)) nd.fanins;
      values.(id) <- Logic.Tt.get_bit nd.func !m
    end
  done;
  values

let eval net bits =
  let values = eval_nodes net bits in
  Array.of_list
    (List.map
       (fun o -> if o.negated then not values.(o.node) else values.(o.node))
       (outputs net))

let input_name net id = Hashtbl.find_opt net.names id

let of_aig_direct g =
  let net = create () in
  let map = Hashtbl.create 256 in
  (* map: AIG node id -> (network node id). Complements are pushed into
     the consuming node functions. *)
  List.iter
    (fun l ->
      let id = Aig.node_of_lit l in
      Hashtbl.replace map id (add_input ?name:(Aig.input_name g id) net))
    (Aig.inputs g);
  let const_id = lazy (add_node net [||] (Logic.Tt.const_false 0)) in
  for id = 1 to Aig.num_nodes g - 1 do
    if Aig.is_and g id then begin
      let f0, f1 = Aig.fanins g id in
      let resolve l =
        let nid =
          if Aig.node_of_lit l = 0 then Lazy.force const_id
          else Hashtbl.find map (Aig.node_of_lit l)
        in
        (nid, Aig.is_complemented l)
      in
      let n0, c0 = resolve f0 and n1, c1 = resolve f1 in
      let v0 = Logic.Tt.var 2 0 and v1 = Logic.Tt.var 2 1 in
      let v0 = if c0 then Logic.Tt.lnot v0 else v0 in
      let v1 = if c1 then Logic.Tt.lnot v1 else v1 in
      let func = Logic.Tt.land_ v0 v1 in
      Hashtbl.replace map id (add_node net [| n0; n1 |] func)
    end
  done;
  List.iter
    (fun (name, l) ->
      let aid = Aig.node_of_lit l in
      let nid =
        if aid = 0 then Lazy.force const_id else Hashtbl.find map aid
      in
      add_output net name ~negated:(Aig.is_complemented l) nid)
    (Aig.outputs g);
  net

let of_aig ?(k = 6) g =
  let cuts = Aig.Cuts.enumerate g ~k ~per_node:8 in
  let nn = Aig.num_nodes g in
  (* Depth-oriented covering: arrival time with unit node delay. *)
  let arrival = Array.make nn 0 in
  let best_cut : Aig.Cuts.cut option array = Array.make nn None in
  for id = 1 to nn - 1 do
    if Aig.is_and g id then begin
      let eval_cut (c : Aig.Cuts.cut) =
        Array.fold_left (fun acc leaf -> max acc arrival.(leaf)) 0 c.leaves + 1
      in
      let candidates =
        List.filter (fun (c : Aig.Cuts.cut) -> c.leaves <> [| id |]) cuts.(id)
      in
      let best =
        List.fold_left
          (fun acc c ->
            let a = eval_cut c in
            match acc with
            | None -> Some (c, a)
            | Some (bc, ba) ->
              if
                a < ba
                || (a = ba && Array.length c.leaves < Array.length bc.leaves)
              then Some (c, a)
              else acc)
          None candidates
      in
      match best with
      | Some (c, a) ->
        arrival.(id) <- a;
        best_cut.(id) <- Some c
      | None -> assert false
    end
  done;
  (* Cover from the outputs. *)
  let net = create () in
  let map = Hashtbl.create 256 in
  List.iter
    (fun l ->
      let id = Aig.node_of_lit l in
      Hashtbl.replace map id (add_input ?name:(Aig.input_name g id) net))
    (Aig.inputs g);
  let const_id = lazy (add_node net [||] (Logic.Tt.const_false 0)) in
  let rec require id =
    if id = 0 then Lazy.force const_id
    else
      match Hashtbl.find_opt map id with
      | Some nid -> nid
      | None ->
        let c = match best_cut.(id) with Some c -> c | None -> assert false in
        let fanin_ids = Array.map require c.leaves in
        let nid = add_node net fanin_ids c.tt in
        Hashtbl.replace map id nid;
        nid
  in
  List.iter
    (fun (name, l) ->
      let nid = require (Aig.node_of_lit l) in
      add_output net name ~negated:(Aig.is_complemented l) nid)
    (Aig.outputs g);
  net

let to_aig net =
  let g = Aig.create () in
  let lev = Aig.Lev.create g in
  let map = Array.make net.n Aig.const_false in
  for id = 0 to net.n - 1 do
    if is_input net id then
      map.(id) <- Aig.add_input ?name:(input_name net id) g
    else begin
      let nd = net.nodes.(id) in
      if Array.length nd.fanins = 0 then
        map.(id) <-
          (if Logic.Tt.is_const_true nd.func then Aig.const_true
           else Aig.const_false)
      else
        map.(id) <-
          Aig.Synth.of_tt g lev nd.func ~leaf:(fun i -> map.(nd.fanins.(i)))
    end
  done;
  List.iter
    (fun o ->
      let l = map.(o.node) in
      Aig.add_output g o.name (if o.negated then Aig.bnot l else l))
    (outputs net);
  Aig.cleanup g

let pp_stats ppf net =
  let internal = net.n - net.num_inputs in
  Format.fprintf ppf "network: inputs=%d nodes=%d outputs=%d" net.num_inputs
    internal net.num_outs
