(* All [Det]: one build/update per decompose step of a deterministic
   job, and the affected set depends only on the edit, not on which
   worker runs it. *)
let m_builds = Obs.counter "globals.builds"
let m_updates = Obs.counter "globals.updates"
let m_recomputed = Obs.counter "globals.recomputed"
let m_reused = Obs.counter "globals.reused"
let m_dirty_region = Obs.histogram "globals.dirty_region"

let of_net ?(guard = Guard.none) man net =
  Obs.incr m_builds;
  let n = Graph.num_nodes net in
  let globals = Array.make n (Bdd.bfalse man) in
  List.iter
    (fun id ->
      (* Per-node cancellation point: a build over a wide cone is the
         longest uninterruptible stretch of a decompose job without it. *)
      Guard.check_deadline guard ~site:"globals.of_net";
      if Graph.is_input net id then
        globals.(id) <- Bdd.var man (Graph.input_index net id)
      else begin
        let nd = Graph.node net id in
        let args = Array.map (fun f -> globals.(f)) nd.Graph.fanins in
        globals.(id) <- Bdd.apply_tt man nd.Graph.func args
      end)
    (Graph.topo_order net);
  globals

(* Incremental rebuild: only nodes whose cone contains an edit can have
   changed global functions, so recompute the transitive fanout of the
   dirty set and reuse every other entry verbatim. Within one manager
   the result is bit-identical to [of_net] — BDDs are hash-consed, so
   an unchanged function is the same edge whether reused or rebuilt. *)
let update ?(guard = Guard.none) man globals net ~dirty ~fanouts =
  Obs.incr m_updates;
  let n = Graph.num_nodes net in
  assert (Array.length globals = n);
  let affected = Array.make n false in
  let rec mark id =
    if not affected.(id) then begin
      affected.(id) <- true;
      List.iter mark fanouts.(id)
    end
  in
  List.iter mark dirty;
  let fresh = Array.copy globals in
  let recomputed = ref 0 in
  for id = 0 to n - 1 do
    if affected.(id) && not (Graph.is_input net id) then begin
      Guard.check_deadline guard ~site:"globals.update";
      incr recomputed;
      let nd = Graph.node net id in
      let args = Array.map (fun f -> fresh.(f)) nd.Graph.fanins in
      fresh.(id) <- Bdd.apply_tt man nd.Graph.func args
    end
  done;
  Obs.add m_recomputed !recomputed;
  Obs.add m_reused (n - !recomputed);
  Obs.observe m_dirty_region !recomputed;
  fresh

let fanin_globals globals net id =
  let nd = Graph.node net id in
  Array.map (fun f -> globals.(f)) nd.Graph.fanins

let cube_image man globals net id cube =
  let args = fanin_globals globals net id in
  List.fold_left
    (fun acc (i, b) ->
      let gi = args.(i) in
      Bdd.band man acc (if b then gi else Bdd.bnot man gi))
    (Bdd.btrue man)
    (Logic.Cube.literals cube)

let minterm_image man globals net id m =
  let args = fanin_globals globals net id in
  let acc = ref (Bdd.btrue man) in
  Array.iteri
    (fun i gi ->
      let lit = if (m lsr i) land 1 = 1 then gi else Bdd.bnot man gi in
      acc := Bdd.band man !acc lit)
    args;
  !acc

(* Memoized per (node, window): the fanin globals of [id] are stable BDD
   edges, so [Bdd.apply_tt]'s per-(tt, args) manager memo makes every
   repeated image query — sigma products rebuild the same windows in
   [Driver] and [Reconstruct] — a table hit. *)
let tt_image man globals net id tt =
  let args = fanin_globals globals net id in
  Bdd.apply_tt man tt args
