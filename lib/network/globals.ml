(* All [Det]: one build/update per decompose step of a deterministic
   job, and the affected set depends only on the edit, not on which
   worker runs it. *)
let m_builds = Obs.counter "globals.builds"
let m_cluster_builds = Obs.counter "globals.cluster_builds"
let m_cluster_nodes = Obs.histogram "globals.cluster_build_nodes"
let m_updates = Obs.counter "globals.updates"
let m_recomputed = Obs.counter "globals.recomputed"
let m_reused = Obs.counter "globals.reused"
let m_dirty_region = Obs.histogram "globals.dirty_region"
let m_scratch_fallbacks = Obs.counter "globals.scratch_fallbacks"

(* Fill [globals] along [order] (any fanin-closed topological node
   sequence). The per-node deadline check is the cancellation point: a
   build over a wide cone is the longest uninterruptible stretch of a
   decompose job without it. *)
let build_into ~guard ~site man net globals order =
  List.iter
    (fun id ->
      Guard.check_deadline guard ~site;
      if Graph.is_input net id then
        globals.(id) <- Bdd.var man (Graph.input_index net id)
      else begin
        let nd = Graph.node net id in
        let args = Array.map (fun f -> globals.(f)) nd.Graph.fanins in
        globals.(id) <- Bdd.apply_tt man nd.Graph.func args
      end)
    order

let of_net ?(guard = Guard.none) man net =
  Obs.incr m_builds;
  let globals = Array.make (Graph.num_nodes net) (Bdd.bfalse man) in
  build_into ~guard ~site:"globals.of_net" man net globals
    (Graph.topo_order net);
  globals

let of_cluster ?(guard = Guard.none) man net ~nodes =
  Obs.incr m_cluster_builds;
  Obs.observe m_cluster_nodes (List.length nodes);
  let globals = Array.make (Graph.num_nodes net) (Bdd.bfalse man) in
  build_into ~guard ~site:"globals.of_cluster" man net globals nodes;
  globals

(* Incremental rebuild: only nodes whose cone contains an edit can have
   changed global functions, so recompute the transitive fanout of the
   dirty set and reuse every other entry verbatim. Within one manager
   the result is bit-identical to [of_net] — BDDs are hash-consed, so
   an unchanged function is the same edge whether reused or rebuilt. *)
let update ?(guard = Guard.none) ?member man globals net ~dirty ~fanouts =
  Obs.incr m_updates;
  let n = Graph.num_nodes net in
  assert (Array.length globals = n);
  let in_scope =
    match member with
    | None -> fun _ -> true
    | Some m ->
      assert (Array.length m = n);
      fun id -> m.(id)
  in
  let affected = Array.make n false in
  let rec mark id =
    if not affected.(id) then begin
      affected.(id) <- true;
      List.iter mark fanouts.(id)
    end
  in
  List.iter mark dirty;
  (* Dirty-fraction heuristic: when the transitive fanout covers most
     of the (in-scope) network, the per-node affected test buys nothing
     over a straight from-scratch pass — the same hash-consed edges
     come out either way, so only the bookkeeping differs. Rebuild
     everything in scope instead (the regression this fixes: dalu's
     near-global dirty regions made [update] slower than [of_net]). *)
  let scope_internal = ref 0 and affected_internal = ref 0 in
  for id = 0 to n - 1 do
    if in_scope id && not (Graph.is_input net id) then begin
      incr scope_internal;
      if affected.(id) then incr affected_internal
    end
  done;
  let rebuild_all = 2 * !affected_internal > !scope_internal in
  if rebuild_all then Obs.incr m_scratch_fallbacks;
  let fresh = Array.copy globals in
  let recomputed = ref 0 in
  for id = 0 to n - 1 do
    if
      in_scope id
      && (rebuild_all || affected.(id))
      && not (Graph.is_input net id)
    then begin
      Guard.check_deadline guard ~site:"globals.update";
      incr recomputed;
      let nd = Graph.node net id in
      let args = Array.map (fun f -> fresh.(f)) nd.Graph.fanins in
      fresh.(id) <- Bdd.apply_tt man nd.Graph.func args
    end
  done;
  Obs.add m_recomputed !recomputed;
  Obs.add m_reused (n - !recomputed);
  Obs.observe m_dirty_region !recomputed;
  fresh

let fanin_globals globals net id =
  let nd = Graph.node net id in
  Array.map (fun f -> globals.(f)) nd.Graph.fanins

let cube_image man globals net id cube =
  let args = fanin_globals globals net id in
  List.fold_left
    (fun acc (i, b) ->
      let gi = args.(i) in
      Bdd.band man acc (if b then gi else Bdd.bnot man gi))
    (Bdd.btrue man)
    (Logic.Cube.literals cube)

let minterm_image man globals net id m =
  let args = fanin_globals globals net id in
  let acc = ref (Bdd.btrue man) in
  Array.iteri
    (fun i gi ->
      let lit = if (m lsr i) land 1 = 1 then gi else Bdd.bnot man gi in
      acc := Bdd.band man !acc lit)
    args;
  !acc

(* Memoized per (node, window): the fanin globals of [id] are stable BDD
   edges, so [Bdd.apply_tt]'s per-(tt, args) manager memo makes every
   repeated image query — sigma products rebuild the same windows in
   [Driver] and [Reconstruct] — a table hit. *)
let tt_image man globals net id tt =
  let args = fanin_globals globals net id in
  Bdd.apply_tt man tt args
