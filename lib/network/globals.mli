(** Global node functions: the Boolean function each network node computes
    over the primary inputs, represented as BDDs. Used to globalize cubes
    of node-local functions (the [glob(c)] sets that weight cubes against
    the SPCF in the paper's [Simplify]). *)

(** Per-node global functions; BDD variable [i] is primary input [i].
    [guard] (default {!Guard.none}) adds a per-node deadline
    cancellation point, so a build over a wide cone can be abandoned
    mid-way (the partially filled array is garbage to the caller, who
    must discard it on {!Guard.Blowup}). *)
val of_net : ?guard:Guard.t -> Bdd.man -> Graph.t -> Bdd.t array

(** [of_cluster man net ~nodes] builds the global functions of the
    listed nodes only — [nodes] must be a fanin-closed subset in
    topological order (a {!Graph.cone}, or a {!Partition.cluster}'s
    node list). Entries outside [nodes] are unspecified and must not be
    read. Within one manager, every built entry is the same hash-consed
    edge {!of_net} would produce, at the cost of the cluster instead of
    the whole network — the per-output decomposition jobs and the
    partitioned parallel engine both build exactly the cones they
    read. *)
val of_cluster :
  ?guard:Guard.t -> Bdd.man -> Graph.t -> nodes:int list -> Bdd.t array

(** [update man globals net ~dirty ~fanouts] is [of_net man net] given
    that [globals] was computed (in the same manager) on a network that
    differed from [net] only in the functions of the [dirty] nodes:
    entries outside the transitive fanout of [dirty] are reused
    verbatim, the rest are recomputed. Returns a fresh array; [globals]
    is not mutated. Bit-identical to a from-scratch [of_net] (same
    hash-consed edges).

    [member] restricts the update to a fanin-closed node subset (the
    mask of the cone or cluster [globals] was built over, see
    {!of_cluster}): affected nodes outside the mask are skipped and
    their entries stay unspecified.

    When the affected region covers more than half of the (in-scope)
    internal nodes, the per-node affected test is dropped and every
    in-scope internal node is recomputed from scratch — hash-consing
    makes the result identical, and the straight pass is what
    [BENCH_incr] showed to be faster on near-global dirty regions
    (counted by the [Det] counter [globals.scratch_fallbacks]). *)
val update :
  ?guard:Guard.t ->
  ?member:bool array ->
  Bdd.man ->
  Bdd.t array ->
  Graph.t ->
  dirty:int list ->
  fanouts:int list array ->
  Bdd.t array

(** [cube_image man globals net id cube] is the set of primary-input
    minterms on which the fanin values of node [id] fall inside [cube]
    (a cube over the node's fanin positions). *)
val cube_image :
  Bdd.man -> Bdd.t array -> Graph.t -> int -> Logic.Cube.t -> Bdd.t

(** [minterm_image man globals net id m] is the image of a single local
    input vector [m] of node [id]. *)
val minterm_image : Bdd.man -> Bdd.t array -> Graph.t -> int -> int -> Bdd.t

(** [tt_image man globals net id tt] is the union of the images of the
    local minterms where [tt] is true (computed by applying [tt] to the
    fanin globals). Memoized per [(node, window)] through the manager's
    [apply_tt] memo, so recomputing an image is O(1). *)
val tt_image : Bdd.man -> Bdd.t array -> Graph.t -> int -> Logic.Tt.t -> Bdd.t
