(** Per-decomposition cache of network analyses: memoized cones,
    fanouts and cone-support counts (wiring-only, shared across
    {!Graph.copy} working copies) plus incremental levels
    ({!Levels.Inc}, per network).

    Invalidation contract: after every {!Graph.set_func} on a cached
    network, call {!invalidate} with the edited id before the next
    {!levels} query. Wiring caches never need invalidation — the graph
    API cannot rewire an existing node — but the node count is frozen
    at creation: appending nodes to a cached network is a programming
    error (asserted). {!Graph.set_output} needs no invalidation. *)

type t

(** Fresh cache for [net]. Cheap: everything is computed on demand. *)
val create : Graph.t -> t

(** [for_copy t net'] is a cache for [net'], a {e fresh, still
    unedited} [Graph.copy] of [t]'s network: the wiring caches are
    shared (cones, fanouts, support counts — valid because copies are
    never rewired), and the copy's level engine is seeded from the
    parent's repaired levels instead of recomputing from scratch. *)
val for_copy : t -> Graph.t -> t

(** The network this cache analyzes. *)
val net : t -> Graph.t

(** Cached {!Graph.cone}. *)
val cone : t -> int -> int list

(** Cached {!Graph.fanouts}. *)
val fanouts : t -> int list array

(** Number of primary inputs in the cone of a node (the output-support
    count the driver gates window sizes on). *)
val support_count : t -> int -> int

(** Repaired incremental levels — equals {!Levels.compute} on the
    current functions. Same aliasing rules as {!Levels.Inc.levels}. *)
val levels : t -> int array

(** Record a {!Graph.set_func} edit on this cache's network. *)
val invalidate : t -> int -> unit
