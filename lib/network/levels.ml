let tree_depth levels =
  let insert x l =
    let rec go = function
      | [] -> [ x ]
      | y :: rest -> if x <= y then x :: y :: rest else y :: go rest
    in
    go l
  in
  let sorted = List.sort compare levels in
  let rec reduce = function
    | [] -> 0
    | [ d ] -> d
    | a :: b :: rest -> reduce (insert (1 + max a b) rest)
  in
  reduce sorted

let cube_depth cube ~fanin_level =
  tree_depth (List.map (fun (i, _) -> fanin_level i) (Logic.Cube.literals cube))

let sop_depth (sop : Logic.Sop.t) ~fanin_level =
  match sop.Logic.Sop.cubes with
  | [] -> 0
  | cubes -> tree_depth (List.map (fun c -> cube_depth c ~fanin_level) cubes)

let node_level net ~levels id =
  if Graph.is_input net id then 0
  else begin
    let nd = Graph.node net id in
    if Array.length nd.Graph.fanins = 0 then 0
    else if
      Logic.Tt.is_const_false nd.Graph.func
      || Logic.Tt.is_const_true nd.Graph.func
    then 0
    else begin
      let fanin_level i = levels.(nd.Graph.fanins.(i)) in
      let on, off = Logic.Minimize.min_sops nd.Graph.func in
      min (sop_depth on ~fanin_level) (sop_depth off ~fanin_level)
    end
  end

(* From-scratch computes are [Sched]: the lazy per-worker analysis
   caches trigger one per worker domain that runs at least one job, so
   the count depends on scheduling. The incremental-repair counters
   below are [Det]: repairs run on per-job engines whose level values
   are bit-identical across schedules (PR 3 contract), so each job does
   the same repair work wherever it runs. *)
let m_scratch = Obs.counter ~stability:Obs.Sched "levels.scratch_computes"
let m_invalidations = Obs.counter "levels.invalidations"
let m_repair_visits = Obs.counter "levels.repair_visits"
let m_repaired = Obs.counter "levels.repaired"

let compute net =
  Obs.incr m_scratch;
  let levels = Array.make (Graph.num_nodes net) 0 in
  List.iter (fun id -> levels.(id) <- node_level net ~levels id) (Graph.topo_order net);
  levels

(* Incremental levels: a dirty-region repair engine over [compute].

   [set_func] edits are recorded with [invalidate]; [levels] repairs by
   recomputing dirty nodes in ascending id order (ids are topological)
   and propagating to fanouts only when a node's level actually changed,
   so a query after an edit costs the transitive fanout of the changed
   region instead of the whole array. The repaired array is — by
   induction over ids — identical to a from-scratch [compute]. *)
module Inc = struct
  type t = {
    net : Graph.t;
    fanouts : int list array;
    frozen_n : int; (* node count at creation: appends invalidate [t] *)
    levels : int array;
    dirty : bool array; (* [dirty.(id)]: queued in [heap] *)
    mutable heap : int array; (* binary min-heap of dirty ids *)
    mutable heap_len : int;
  }

  (* Minimal int min-heap. Propagation only ever pushes ids larger than
     the id being popped, so ascending-order processing is total. *)
  let push t id =
    if not t.dirty.(id) then begin
      t.dirty.(id) <- true;
      if t.heap_len >= Array.length t.heap then begin
        let a = Array.make (max 8 (2 * Array.length t.heap)) 0 in
        Array.blit t.heap 0 a 0 t.heap_len;
        t.heap <- a
      end;
      let i = ref t.heap_len in
      t.heap_len <- t.heap_len + 1;
      t.heap.(!i) <- id;
      while !i > 0 && t.heap.(((!i - 1) / 2)) > t.heap.(!i) do
        let p = (!i - 1) / 2 in
        let tmp = t.heap.(p) in
        t.heap.(p) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := p
      done
    end

  let pop t =
    let top = t.heap.(0) in
    t.heap_len <- t.heap_len - 1;
    t.heap.(0) <- t.heap.(t.heap_len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < t.heap_len && t.heap.(l) < t.heap.(!s) then s := l;
      if r < t.heap_len && t.heap.(r) < t.heap.(!s) then s := r;
      if !s = !i then continue := false
      else begin
        let tmp = t.heap.(!s) in
        t.heap.(!s) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !s
      end
    done;
    t.dirty.(top) <- false;
    top

  let of_levels net ~fanouts levels =
    assert (Array.length levels = Graph.num_nodes net);
    {
      net;
      fanouts;
      frozen_n = Graph.num_nodes net;
      levels = Array.copy levels;
      dirty = Array.make (Graph.num_nodes net) false;
      heap = Array.make 16 0;
      heap_len = 0;
    }

  let create net = of_levels net ~fanouts:(Graph.fanouts net) (compute net)

  let invalidate t id =
    Obs.incr m_invalidations;
    push t id

  let levels t =
    (* The wiring caches freeze the node count: appending nodes would
       silently stale [fanouts], so it is a programming error. *)
    assert (Graph.num_nodes t.net = t.frozen_n);
    if t.heap_len > 0 then begin
      let visits = ref 0 and repaired = ref 0 in
      while t.heap_len > 0 do
        incr visits;
        let id = pop t in
        let l = node_level t.net ~levels:t.levels id in
        if l <> t.levels.(id) then begin
          incr repaired;
          t.levels.(id) <- l;
          List.iter (fun f -> push t f) t.fanouts.(id)
        end
      done;
      Obs.add m_repair_visits !visits;
      Obs.add m_repaired !repaired
    end;
    t.levels
end

let depth net =
  let levels = compute net in
  List.fold_left
    (fun acc (o : Graph.output) -> max acc levels.(o.Graph.node))
    0 (Graph.outputs net)

let output_levels net ~levels =
  List.map (fun (o : Graph.output) -> (o, levels.(o.Graph.node))) (Graph.outputs net)

let critical_inputs net ~levels id =
  if Graph.is_input net id then []
  else begin
    let nd = Graph.node net id in
    let k = Array.length nd.Graph.fanins in
    if k = 0 then []
    else begin
      let maxlev =
        Array.fold_left (fun acc f -> max acc levels.(f)) 0 nd.Graph.fanins
      in
      if maxlev = 0 then []
      else
        List.filter
          (fun i -> levels.(nd.Graph.fanins.(i)) = maxlev)
          (List.init k Fun.id)
    end
  end
