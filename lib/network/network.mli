(** Technology-independent networks (the paper's [T]) and their analyses.

    The graph API is at the top level (see {!module:Graph}); {!Levels}
    implements the paper's logic-level quantification and critical-input
    computation, {!Globals} the BDD global functions and cube images,
    {!Analysis} the incremental per-decomposition cache of cones,
    fanouts, support counts and dirty-region levels. *)

include module type of struct
  include Graph
end

module Levels = Levels
module Globals = Globals
module Analysis = Analysis
module Partition = Partition
