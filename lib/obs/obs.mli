(** Deterministic instrumentation for the synthesis stack.

    [Obs] is the one window into where a run's time and work go: typed
    counters, gauges and histograms, timed phase spans, and three
    exports — a human summary table, a machine JSON report, and a
    Chrome trace-event file loadable in [chrome://tracing] / Perfetto.

    The two design contracts every instrumented module relies on:

    {b Zero cost when disabled.} Recording starts with a single atomic
    flag check and returns; the disabled path allocates nothing and
    touches no shared state, so leaving instrumentation compiled into
    the hot paths is free. Enable with {!enable} (the [--stats] /
    [--report] / [--trace] flags of [bin/lookahead_opt] and
    [bench/main.exe] do).

    {b Deterministic aggregates.} Every record lands in the recording
    domain's private sink (no lock, no contention); [lib/par] gives
    each submitted task its own transient sink and folds it into the
    awaiting context's sink {e in submission order} when the future is
    awaited. Integer counter, gauge-max and histogram merges are
    commutative, so given deterministic jobs the aggregate values are
    bit-identical at any [-j]. Metrics whose {e values} genuinely
    depend on scheduling (per-worker task counts, shared-cache hit
    rates warmed by whichever jobs a worker happened to run) are
    declared {!Sched} and quarantined, together with all wall-clock
    durations, in the report's ["runtime"] subtree; the
    ["deterministic"] subtree is byte-identical across runs and across
    [-j] values. *)

(** Monotonic wall-clock (CLOCK_MONOTONIC) — the same clock [lib/par]'s
    deadline uses; bench and production share it through {!time}. *)
module Clock : sig
  val now_ns : unit -> int64
  val now_s : unit -> float
end

(** [time f] runs [f] and returns its result with the elapsed monotonic
    seconds. Always measures, independent of {!enabled} — the shared
    timing scaffold of the bench harness. *)
val time : (unit -> 'a) -> 'a * float

(** {1 Master switch} *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** Zero every sink, drop all recorded trace events, restart the trace
    epoch. Call between independent measured runs. *)
val reset : unit -> unit

(** {1 Metrics}

    Metrics are registered once by name (idempotent: registering the
    same name twice returns the same metric; the kind and stability
    must match). Names are dotted paths, [layer.metric], e.g.
    ["bdd.ite_hits"]. *)

(** [Det] values are bit-identical at any [-j] (and across runs);
    [Sched] values depend on scheduling and are exported under the
    report's ["runtime"] subtree next to the durations. *)
type stability = Det | Sched

type counter

val counter : ?stability:stability -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit

(** Gauges merge by [max] (commutative, hence deterministic for
    deterministic recorded values): high-water marks. *)
type gauge

val gauge : ?stability:stability -> string -> gauge
val gauge_max : gauge -> int -> unit

(** Power-of-two-bucket histograms: value [v] lands in bucket
    [bits v] (0 for [v <= 0]), so bucket [b >= 1] covers
    [2^(b-1) .. 2^b - 1]. Count and sum ride along. *)
type histogram

val histogram : ?stability:stability -> string -> histogram
val observe : histogram -> int -> unit

(** {1 Spans}

    A span is a named timed phase. Each completed span records a
    duration (always {!Sched}-classified — wall clock is never
    deterministic) and one Chrome trace event on the recording
    domain's track. *)

type span

val span : string -> span

(** [with_span s f] times [f]; exceptions still close the span. The
    closure may allocate at the call site even when disabled — use
    {!span_begin}/{!span_end} in allocation-sensitive code. *)
val with_span : span -> (unit -> 'a) -> 'a

(** [span_begin s] is an opaque token ([-1] when disabled — the whole
    call is one flag check, no allocation). *)
val span_begin : span -> int

val span_end : span -> int -> unit

(** [set_span_listener (Some f)] invokes [f name duration_ns] on every
    completed span, on the recording domain, after the span lands in
    the domain's sink. For live progress streaming (a server forwarding
    phase completions to a client); advisory and scheduling-dependent —
    never part of the deterministic report, so arming or disarming it
    cannot change a [Det] subtree. [f] must be thread-safe. Costs one
    atomic load per span when unset. *)
val set_span_listener : (string -> int -> unit) option -> unit

(** {1 Trace correlation}

    One current trace id for the process, minted by the job engine at
    admission ([t<tenant>.j<id>]) and set around each job's execution.
    Every Chrome trace event records the trace id current at its
    completion (in its [args]), and every {!Journal} entry carries it,
    so spans, metrics and degradations are attributable to the job and
    tenant that caused them. Trace ids are scheduling-scoped data: they
    never enter a [Det] payload or the journal digest. *)

val set_trace : string -> unit

(** The current trace id ([""] when none is set). *)
val trace_id : unit -> string

(** {1 Sinks}

    One sink per domain is maintained automatically (domain-local, so
    recording never takes a lock). [lib/par] additionally gives every
    submitted task a transient sink via {!Sink.create}/{!Sink.absorb}
    so aggregates merge in submission order. *)

module Sink : sig
  type t

  (** A transient, unregistered sink (for per-task accounting). *)
  val create : unit -> t

  (** [with_current s f] runs [f] with [s] as the recording sink of
      this domain, restoring the previous sink afterwards. *)
  val with_current : t -> (unit -> 'a) -> 'a

  (** Fold [s] into the calling domain's current sink and empty [s].
      Counter/histogram/duration slots add, gauge slots take the max,
      trace events concatenate. *)
  val absorb : t -> unit
end

(** [register_probe f] records pull-model metrics: every {!snapshot}
    runs all probes (into a transient sink merged into that snapshot
    only), so cumulative values read from live structures — pool task
    counts, for instance — are not double-counted across snapshots. *)
val register_probe : (unit -> unit) -> unit

(** Register (once per process; later calls are no-ops) a pull-model
    probe recording [Gc.quick_stat] as [Sched] gauges —
    [gc.minor_collections], [gc.major_collections], [gc.compactions],
    [gc.heap_words], [gc.top_heap_words] — in the report's ["runtime"]
    subtree. *)
val register_gc_probe : unit -> unit

(** {1 Minimal JSON}

    Self-contained JSON tree with deterministic printing (object keys
    keep their construction order; floats print with enough digits to
    round-trip exactly), used by the report and trace exports and by
    the regression gate's validators. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val of_string : string -> t option

  (** Structural equality ([Int 1 <> Float 1.]). *)
  val equal : t -> t -> bool

  (** First binding of a key in an object; [None] otherwise. *)
  val member : string -> t -> t option
end

(** {1 Journal}

    A server-lifetime, bounded ring of typed lifecycle events (job
    admitted/started/finished, phase completions, guard degradations
    and injection firings) with an optional JSONL file sink. Unlike
    metric sinks, the journal survives {!reset} — it spans jobs.

    Each entry splits its payload: [det] holds data that is
    bit-identical across [-j] and warm/cold for deterministic
    workloads (circuit, tool, degradation rung, fault site); [sched]
    holds ids, wall-clock latencies and anything scheduling-shaped.
    Timestamps and trace ids ride alongside, outside both payloads.

    The determinism contract is checked through {!det_digest}: a
    commutative (count, sum, xor) combination of a 64-bit FNV-1a hash
    of each entry's [kind] and serialized [det] payload. Commutativity
    makes the digest independent of the order in which domains append;
    accumulating at record time makes it independent of ring eviction.
    Entries whose [det] payload is [Null] (cancellations, rejections,
    real deadline cuts — events that exist only because of scheduling
    or external action) are excluded from the digest. *)
module Journal : sig
  type entry = {
    seq : int;          (** monotonically increasing admission number *)
    ts_ns : int;        (** monotonic clock, Sched by nature *)
    trace : string;     (** trace id current at record time, [""] if none *)
    kind : string;      (** e.g. ["job.admitted"], ["guard.injected"] *)
    det : Json.t;       (** Det-classified payload ([Null] = sched-only) *)
    sched : Json.t;     (** Sched-classified payload ([Null] = none) *)
  }

  (** Start journaling. [capacity] bounds the in-memory ring (oldest
      entries are evicted); [file] appends one JSON object per line,
      rotated (renamed to [file ^ ".1"] and reopened) when it exceeds
      [file_max_bytes]. [journal_phases] names the spans whose
      completions are journaled as ["phase"] events (span counts are
      deterministic for deadline-free runs; see DESIGN.md §4j). Resets
      ring, digest and rotation state. *)
  val enable :
    ?capacity:int ->
    ?file:string ->
    ?file_max_bytes:int ->
    ?journal_phases:string list ->
    unit ->
    unit

  (** Stop journaling and close the file sink. *)
  val disable : unit -> unit

  val journaling : unit -> bool

  (** Append an event (no-op when disabled). Thread-safe. *)
  val record : kind:string -> ?det:Json.t -> ?sched:Json.t -> unit -> unit

  (** Ring contents, oldest first. *)
  val entries : unit -> entry list

  (** The JSONL line for an entry ([Null] payloads omitted). *)
  val entry_json : entry -> Json.t

  (** Events recorded since {!enable}/{!clear}, including evicted. *)
  val events_total : unit -> int

  (** File-sink rotations since {!enable}. *)
  val rotations : unit -> int

  (** ["<count>:<sum>:<xor>"] over the Det payload hashes — the
      telemetry identity contract (byte-identical across [-j] and
      warm/cold for deterministic workloads). *)
  val det_digest : unit -> string

  (** Empty the ring and zero the digest (keeps the configuration and
      file sink). For identity benches that compare runs. *)
  val clear : unit -> unit

  (** The spans journaled by default: the driver's top-level phases. *)
  val default_phases : string list
end

(** {1 Snapshots and exports}

    Take snapshots only at quiescent points (every future awaited, no
    pool task in flight) — merging does not synchronize with
    still-recording domains. *)

type snapshot

val snapshot : unit -> snapshot

(** Merged value of a counter (0 when never registered/recorded). *)
val counter_value : snapshot -> string -> int

(** All registered counters with their stability and merged value,
    sorted by name — the fold-friendly view a server uses to
    accumulate per-job snapshots into cumulative telemetry. *)
val counters : snapshot -> (string * stability * int) list

(** The machine report:
    [{"schema", "deterministic": {counters,gauges,histograms},
      "runtime": {counters,gauges,histograms,durations}}],
    metric names sorted, stable key order throughout. The
    ["deterministic"] subtree is the identity-check payload; every
    wall-clock duration and {!Sched} metric lives under ["runtime"]. *)
val report_json : snapshot -> Json.t

(** The ["deterministic"] subtree of a report ([Null] when absent) —
    the part that must be byte-identical across [-j] values. *)
val det_subtree : Json.t -> Json.t

(** Chrome trace-event JSON: one ["X"] (complete) event per recorded
    span on its recording domain's track ([tid] = domain id), with
    thread-name metadata per track. Loadable in [chrome://tracing] and
    Perfetto. *)
val trace_json : snapshot -> Json.t

(** Human summary table ([--stats]). *)
val pp_summary : Format.formatter -> snapshot -> unit
