module Clock = struct
  let now_ns () = Monotonic_clock.now ()
  let now_s () = Int64.to_float (now_ns ()) *. 1e-9
end

let time f =
  let t0 = Clock.now_s () in
  let r = f () in
  (r, Clock.now_s () -. t0)

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(*                                                                    *)
(* Metrics allocate fixed slot ranges in a single flat int space; a   *)
(* sink is just an int array indexed by slot plus a trace-event list. *)
(* Slot merge semantics live in [slot_max]: a slot merges by [max]    *)
(* (gauges) or by addition (everything else).                         *)
(* ------------------------------------------------------------------ *)

type stability = Det | Sched

type kind = Kcounter | Kgauge | Khistogram

type metric = {
  m_name : string;
  m_kind : kind;
  m_stab : stability;
  m_base : int;
}

(* Histogram layout: 64 power-of-two buckets, then count, then sum. *)
let hist_buckets = 64
let hist_slots = hist_buckets + 2

type span = { s_name : string; s_dur : int; s_cnt : int }

type event = {
  e_name : string;
  e_tid : int;
  e_ts : int;
  e_dur : int;
  e_trace : string;
}

type sink = { mutable slots : int array; mutable events : event list }

let new_sink () = { slots = [||]; events = [] }

let registry_mutex = Mutex.create ()
let metrics : (string, metric) Hashtbl.t = Hashtbl.create 64
let metric_order : metric list ref = ref []
let spans_tbl : (string, span) Hashtbl.t = Hashtbl.create 16
let span_order : span list ref = ref []
let next_slot = ref 0
let slot_max : bool array ref = ref (Array.make 64 false)
let sinks : sink list ref = ref []
let probes : (unit -> unit) list ref = ref []
let epoch_ns = ref (Clock.now_ns ())

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* Call with the registry mutex held. *)
let alloc_slots ~max_merge n =
  let base = !next_slot in
  next_slot := base + n;
  let cap = Array.length !slot_max in
  if !next_slot > cap then begin
    let bigger = Array.make (max (2 * cap) !next_slot) false in
    Array.blit !slot_max 0 bigger 0 cap;
    slot_max := bigger
  end;
  if max_merge then
    for i = base to base + n - 1 do
      !slot_max.(i) <- true
    done;
  base

let register_metric name kind stab n =
  locked (fun () ->
      match Hashtbl.find_opt metrics name with
      | Some m ->
        if m.m_kind <> kind || m.m_stab <> stab then
          invalid_arg ("Obs: metric re-registered with a different \
                        kind or stability: " ^ name);
        m
      | None ->
        let base = alloc_slots ~max_merge:(kind = Kgauge) n in
        let m = { m_name = name; m_kind = kind; m_stab = stab; m_base = base } in
        Hashtbl.replace metrics name m;
        metric_order := m :: !metric_order;
        m)

type counter = metric
type gauge = metric
type histogram = metric

let counter ?(stability = Det) name = register_metric name Kcounter stability 1
let gauge ?(stability = Det) name = register_metric name Kgauge stability 1

let histogram ?(stability = Det) name =
  register_metric name Khistogram stability hist_slots

let span name =
  locked (fun () ->
      match Hashtbl.find_opt spans_tbl name with
      | Some s -> s
      | None ->
        let dur = alloc_slots ~max_merge:false 2 in
        let s = { s_name = name; s_dur = dur; s_cnt = dur + 1 } in
        Hashtbl.replace spans_tbl name s;
        span_order := s :: !span_order;
        s)

let register_probe f = locked (fun () -> probes := f :: !probes)

(* ------------------------------------------------------------------ *)
(* Recording                                                          *)
(* ------------------------------------------------------------------ *)

let on = Atomic.make false
let enabled () = Atomic.get on

type dstate = { mutable current : sink }

let dstate_key =
  Domain.DLS.new_key (fun () ->
      let s = new_sink () in
      locked (fun () -> sinks := s :: !sinks);
      { current = s })

let current_sink () = (Domain.DLS.get dstate_key).current

let ensure_capacity s slot =
  let cap = Array.length s.slots in
  if slot >= cap then begin
    let want = locked (fun () -> !next_slot) in
    let bigger = Array.make (max want (slot + 1)) 0 in
    Array.blit s.slots 0 bigger 0 cap;
    s.slots <- bigger
  end

let slot_add slot v =
  let s = current_sink () in
  ensure_capacity s slot;
  s.slots.(slot) <- s.slots.(slot) + v

let slot_maximize slot v =
  let s = current_sink () in
  ensure_capacity s slot;
  if v > s.slots.(slot) then s.slots.(slot) <- v

let add c v = if Atomic.get on then slot_add c.m_base v
let incr c = if Atomic.get on then slot_add c.m_base 1
let gauge_max g v = if Atomic.get on then slot_maximize g.m_base v

(* Number of binary digits of [v]: bucket 0 holds v <= 0 (and 1 holds
   exactly 1, 2 holds 2..3, ...), capped at the last bucket. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      b := !b + 1;
      x := !x lsr 1
    done;
    min !b (hist_buckets - 1)
  end

let observe h v =
  if Atomic.get on then begin
    let s = current_sink () in
    ensure_capacity s (h.m_base + hist_slots - 1);
    let sl = s.slots in
    sl.(h.m_base + bucket_of v) <- sl.(h.m_base + bucket_of v) + 1;
    sl.(h.m_base + hist_buckets) <- sl.(h.m_base + hist_buckets) + 1;
    sl.(h.m_base + hist_buckets + 1) <- sl.(h.m_base + hist_buckets + 1) + v
  end

(* Optional span listener: a server streams phase progress to clients
   by observing span completions as they happen. Advisory and Sched by
   nature (which domain completes which span, and when, depends on
   scheduling) — never part of the deterministic report. One atomic
   load when unset; the callback may run on any recording domain and
   must be thread-safe. *)
let span_listener : (string -> int -> unit) option Atomic.t = Atomic.make None
let set_span_listener f = Atomic.set span_listener f

(* Trace correlation: one current trace id for the process (jobs run one
   at a time on the executor; worker domains inherit it by reading the
   same atomic). Stamped on every trace event; excluded from every Det
   payload because which spans record while a trace is set depends on
   scheduling only through the (deterministic) job boundaries. *)
let current_trace : string Atomic.t = Atomic.make ""
let set_trace id = Atomic.set current_trace id
let trace_id () = Atomic.get current_trace

(* Forward hook into [Journal] (defined below, after [Json]): when the
   journal is enabled with a phase set, completed spans whose name is in
   the set are journaled. One atomic load per span when off. *)
let journal_on = Atomic.make false
let journal_phase_hook : (string -> unit) ref = ref (fun _ -> ())

let span_begin _s =
  if Atomic.get on then Int64.to_int (Clock.now_ns ()) else -1

let span_end sp token =
  if token >= 0 && Atomic.get on then begin
    let now = Int64.to_int (Clock.now_ns ()) in
    let dur = now - token in
    let s = current_sink () in
    ensure_capacity s (sp.s_cnt + 1);
    s.slots.(sp.s_dur) <- s.slots.(sp.s_dur) + dur;
    s.slots.(sp.s_cnt) <- s.slots.(sp.s_cnt) + 1;
    s.events <-
      { e_name = sp.s_name;
        e_tid = (Domain.self () :> int);
        e_ts = token;
        e_dur = dur;
        e_trace = Atomic.get current_trace }
      :: s.events;
    if Atomic.get journal_on then !journal_phase_hook sp.s_name;
    match Atomic.get span_listener with
    | None -> ()
    | Some f -> f sp.s_name dur
  end

let with_span sp f =
  let token = span_begin sp in
  match f () with
  | r ->
    span_end sp token;
    r
  | exception e ->
    span_end sp token;
    raise e

(* ------------------------------------------------------------------ *)
(* Sinks                                                              *)
(* ------------------------------------------------------------------ *)

let ensure_capacity_raw s slot =
  let cap = Array.length s.slots in
  if slot >= cap then begin
    let bigger = Array.make (max (2 * max cap 16) (slot + 1)) 0 in
    Array.blit s.slots 0 bigger 0 cap;
    s.slots <- bigger
  end

let merge_into ~dst ~src =
  let n = Array.length src.slots in
  if n > 0 then begin
    ensure_capacity_raw dst (n - 1);
    let mx = !slot_max in
    for i = 0 to n - 1 do
      let v = src.slots.(i) in
      if v <> 0 then
        if i < Array.length mx && mx.(i) then begin
          if v > dst.slots.(i) then dst.slots.(i) <- v
        end
        else dst.slots.(i) <- dst.slots.(i) + v
    done
  end;
  dst.events <- src.events @ dst.events

module Sink = struct
  type t = sink

  let create () = new_sink ()

  let with_current s f =
    let d = Domain.DLS.get dstate_key in
    let prev = d.current in
    d.current <- s;
    Fun.protect ~finally:(fun () -> d.current <- prev) f

  let absorb s =
    let dst = current_sink () in
    merge_into ~dst ~src:s;
    s.slots <- [||];
    s.events <- []
end

(* GC probe: pull-model gauges from [Gc.quick_stat], registered at most
   once per process. Heap shape depends on scheduling and allocation
   interleaving, so everything is Sched and lands in the report's
   ["runtime"] subtree. *)
let gc_probe_registered = Atomic.make false

let register_gc_probe () =
  if not (Atomic.exchange gc_probe_registered true) then begin
    let minor = gauge ~stability:Sched "gc.minor_collections" in
    let major = gauge ~stability:Sched "gc.major_collections" in
    let compactions = gauge ~stability:Sched "gc.compactions" in
    let heap = gauge ~stability:Sched "gc.heap_words" in
    let top = gauge ~stability:Sched "gc.top_heap_words" in
    register_probe (fun () ->
        let s = Gc.quick_stat () in
        gauge_max minor s.Gc.minor_collections;
        gauge_max major s.Gc.major_collections;
        gauge_max compactions s.Gc.compactions;
        gauge_max heap s.Gc.heap_words;
        gauge_max top s.Gc.top_heap_words)
  end

let enable () =
  if not (Atomic.get on) then begin
    epoch_ns := Clock.now_ns ();
    Atomic.set on true
  end

let disable () = Atomic.set on false

let reset () =
  locked (fun () ->
      List.iter
        (fun s ->
          Array.fill s.slots 0 (Array.length s.slots) 0;
          s.events <- [])
        !sinks);
  epoch_ns := Clock.now_ns ()

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let float_repr f =
    (* Shortest decimal form that parses back to exactly [f]. *)
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* Keep it a JSON number that our parser reads back as Float. *)
    if String.contains s '.' || String.contains s 'e'
       || String.contains s 'n' (* inf/nan — not valid JSON, best effort *)
    then s
    else s ^ ".0"

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s -> escape b s
    | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape b k;
          Buffer.add_char b ':';
          write b v)
        kvs;
      Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 4096 in
    write b t;
    Buffer.contents b

  exception Bad

  let of_string str =
    let n = String.length str in
    let pos = ref 0 in
    let peek () = if !pos < n then str.[!pos] else '\255' in
    let advance () = pos := !pos + 1 in
    let skip_ws () =
      while
        !pos < n
        && (match str.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        pos := !pos + 1
      done
    in
    let expect c = if peek () = c then advance () else raise Bad in
    let literal word v =
      String.iter (fun c -> expect c) word;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise Bad;
        match str.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
           | '"' -> Buffer.add_char b '"'; advance ()
           | '\\' -> Buffer.add_char b '\\'; advance ()
           | '/' -> Buffer.add_char b '/'; advance ()
           | 'n' -> Buffer.add_char b '\n'; advance ()
           | 'r' -> Buffer.add_char b '\r'; advance ()
           | 't' -> Buffer.add_char b '\t'; advance ()
           | 'b' -> Buffer.add_char b '\b'; advance ()
           | 'f' -> Buffer.add_char b '\012'; advance ()
           | 'u' ->
             advance ();
             if !pos + 4 > n then raise Bad;
             let code =
               try int_of_string ("0x" ^ String.sub str !pos 4)
               with _ -> raise Bad
             in
             pos := !pos + 4;
             (* UTF-8 encode the BMP code point. *)
             if code < 0x80 then Buffer.add_char b (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char b
                 (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
             end
           | _ -> raise Bad);
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      if peek () = '-' then advance ();
      while (match peek () with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      let is_float = ref false in
      if peek () = '.' then begin
        is_float := true;
        advance ();
        while (match peek () with '0' .. '9' -> true | _ -> false) do
          advance ()
        done
      end;
      (match peek () with
       | 'e' | 'E' ->
         is_float := true;
         advance ();
         (match peek () with '+' | '-' -> advance () | _ -> ());
         while (match peek () with '0' .. '9' -> true | _ -> false) do
           advance ()
         done
       | _ -> ());
      let s = String.sub str start (!pos - start) in
      if s = "" || s = "-" then raise Bad;
      if !is_float then Float (float_of_string s)
      else
        match int_of_string_opt s with
        | Some i -> Int i
        | None -> Float (float_of_string s)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | 'n' -> literal "null" Null
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | '"' -> String (parse_string ())
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); items (v :: acc)
            | ']' -> advance (); List.rev (v :: acc)
            | _ -> raise Bad
          in
          List (items [])
        end
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec pairs acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); pairs ((k, v) :: acc)
            | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> raise Bad
          in
          pairs []
        end
      | _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then raise Bad;
      v
    with
    | v -> Some v
    | exception (Bad | Failure _) -> None

  let rec equal a b =
    match (a, b) with
    | Null, Null -> true
    | Bool x, Bool y -> x = y
    | Int x, Int y -> x = y
    | Float x, Float y -> x = y
    | String x, String y -> String.equal x y
    | List x, List y ->
      List.length x = List.length y && List.for_all2 equal x y
    | Obj x, Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
           x y
    | _ -> false

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Journal                                                            *)
(*                                                                    *)
(* A bounded ring of typed lifecycle events (job admitted / started /  *)
(* phase / degraded / cancelled / finished, injection firings) that    *)
(* outlives per-job [reset] calls: it is a server-lifetime subsystem.  *)
(* Each event splits its payload into a Det half (stable across -j and *)
(* warm/cold for deterministic workloads) and a Sched half (ids,       *)
(* timestamps, wall latencies). Identity is checked through a          *)
(* commutative digest over the Det halves only, so the scheduling-     *)
(* dependent ORDER in which domains append cannot break it, and ring   *)
(* eviction cannot either (the digest accumulates at record time).     *)
(* ------------------------------------------------------------------ *)

module Journal = struct
  type entry = {
    seq : int;
    ts_ns : int;
    trace : string;
    kind : string;
    det : Json.t;
    sched : Json.t;
  }

  let mutex = Mutex.create ()

  (* All mutable state below is guarded by [mutex]. *)
  let ring : entry option array ref = ref [||]
  let head = ref 0
  let total = ref 0
  let d_count = ref 0
  let d_sum = ref 0L
  let d_xor = ref 0L
  let out : out_channel option ref = ref None
  let out_path = ref ""
  let out_bytes = ref 0
  let out_max_bytes = ref (8 * 1024 * 1024)
  let n_rotations = ref 0
  let phases : string list Atomic.t = Atomic.make []

  let locked f =
    Mutex.lock mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

  (* FNV-1a 64-bit over the canonical serialization of the Det payload;
     combined order-insensitively (count, sum, xor) so any interleaving
     of the same multiset of Det events yields the same digest. *)
  let fnv1a64 s =
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h 0x100000001b3L)
      s;
    !h

  let entry_json e =
    Json.Obj
      ([ ("seq", Json.Int e.seq);
         ("ts_ns", Json.Int e.ts_ns);
         ("kind", Json.String e.kind) ]
       @ (if e.trace = "" then [] else [ ("trace", Json.String e.trace) ])
       @ (match e.det with Json.Null -> [] | d -> [ ("det", d) ])
       @ (match e.sched with Json.Null -> [] | s -> [ ("sched", s) ]))

  (* Call with [mutex] held. *)
  let rotate_locked oc =
    close_out oc;
    (try Sys.rename !out_path (!out_path ^ ".1") with Sys_error _ -> ());
    out := Some (open_out !out_path);
    out_bytes := 0;
    n_rotations := !n_rotations + 1

  let record ~kind ?(det = Json.Null) ?(sched = Json.Null) () =
    if Atomic.get journal_on then begin
      let ts = Int64.to_int (Clock.now_ns ()) in
      let trace = Atomic.get current_trace in
      locked (fun () ->
          let e =
            { seq = !total; ts_ns = ts; trace; kind; det; sched }
          in
          total := !total + 1;
          (match det with
           | Json.Null -> ()
           | d ->
             let h = fnv1a64 (kind ^ "\x00" ^ Json.to_string d) in
             d_count := !d_count + 1;
             d_sum := Int64.add !d_sum h;
             d_xor := Int64.logxor !d_xor h);
          let cap = Array.length !ring in
          if cap > 0 then begin
            !ring.(!head) <- Some e;
            head := (!head + 1) mod cap
          end;
          match !out with
          | None -> ()
          | Some oc ->
            let line = Json.to_string (entry_json e) in
            let len = String.length line + 1 in
            let oc =
              if !out_bytes > 0 && !out_bytes + len > !out_max_bytes then begin
                rotate_locked oc;
                Option.get !out
              end
              else oc
            in
            output_string oc line;
            output_char oc '\n';
            flush oc;
            out_bytes := !out_bytes + len)
    end

  let default_phases =
    [ "opt.round"; "opt.balance"; "opt.polish"; "opt.sat_sweep";
      "opt.final_cec" ]

  let phase_hook name =
    if List.mem name (Atomic.get phases) then
      record ~kind:"phase"
        ~det:(Json.Obj [ ("phase", Json.String name) ])
        ()

  let clear () =
    locked (fun () ->
        Array.fill !ring 0 (Array.length !ring) None;
        head := 0;
        total := 0;
        d_count := 0;
        d_sum := 0L;
        d_xor := 0L)

  let enable ?(capacity = 4096) ?file ?(file_max_bytes = 8 * 1024 * 1024)
      ?(journal_phases = default_phases) () =
    locked (fun () ->
        (match !out with Some oc -> close_out oc | None -> ());
        ring := Array.make (max 1 capacity) None;
        head := 0;
        total := 0;
        d_count := 0;
        d_sum := 0L;
        d_xor := 0L;
        n_rotations := 0;
        out_bytes := 0;
        out_max_bytes := max 4096 file_max_bytes;
        (match file with
         | None ->
           out := None;
           out_path := ""
         | Some path ->
           out_path := path;
           out := Some (open_out path)));
    Atomic.set phases journal_phases;
    journal_phase_hook := phase_hook;
    Atomic.set journal_on true

  let disable () =
    Atomic.set journal_on false;
    locked (fun () ->
        (match !out with Some oc -> close_out oc | None -> ());
        out := None;
        out_path := "")

  let journaling () = Atomic.get journal_on

  let entries () =
    locked (fun () ->
        let cap = Array.length !ring in
        let acc = ref [] in
        for i = 0 to cap - 1 do
          match !ring.((!head + cap - 1 - i) mod cap) with
          | Some e -> acc := e :: !acc
          | None -> ()
        done;
        !acc)

  let events_total () = locked (fun () -> !total)
  let rotations () = locked (fun () -> !n_rotations)

  let det_digest () =
    locked (fun () ->
        Printf.sprintf "%d:%016Lx:%016Lx" !d_count !d_sum !d_xor)
end

(* ------------------------------------------------------------------ *)
(* Snapshots and exports                                              *)
(* ------------------------------------------------------------------ *)

type snapshot = { snap : sink }

let snapshot () =
  let merged = new_sink () in
  let all, probe_fns =
    locked (fun () -> (!sinks, !probes))
  in
  (* Pull-model metrics record into a transient sink merged into this
     snapshot only, so cumulative probe values are never double-counted
     across snapshots. *)
  if Atomic.get on && probe_fns <> [] then begin
    let p = new_sink () in
    Sink.with_current p (fun () -> List.iter (fun f -> f ()) probe_fns);
    merge_into ~dst:merged ~src:p
  end;
  List.iter (fun s -> merge_into ~dst:merged ~src:s) all;
  { snap = merged }

let slot_value snap i =
  if i < Array.length snap.snap.slots then snap.snap.slots.(i) else 0

let counter_value snap name =
  match locked (fun () -> Hashtbl.find_opt metrics name) with
  | Some m when m.m_kind = Kcounter -> slot_value snap m.m_base
  | _ -> 0

let sorted_metrics () =
  locked (fun () -> !metric_order)
  |> List.sort (fun a b -> String.compare a.m_name b.m_name)

let counters snap =
  List.filter_map
    (fun m ->
      if m.m_kind = Kcounter then
        Some (m.m_name, m.m_stab, slot_value snap m.m_base)
      else None)
    (sorted_metrics ())

let sorted_spans () =
  locked (fun () -> !span_order)
  |> List.sort (fun a b -> String.compare a.s_name b.s_name)

let hist_json snap m =
  let buckets = ref [] in
  for b = hist_buckets - 1 downto 0 do
    let c = slot_value snap (m.m_base + b) in
    if c <> 0 then buckets := (string_of_int b, Json.Int c) :: !buckets
  done;
  Json.Obj
    [ ("count", Json.Int (slot_value snap (m.m_base + hist_buckets)));
      ("sum", Json.Int (slot_value snap (m.m_base + hist_buckets + 1)));
      ("buckets", Json.Obj !buckets) ]

let metric_section ~stab kind to_json =
  List.filter_map
    (fun m ->
      if m.m_kind = kind && m.m_stab = stab then Some (m.m_name, to_json m)
      else None)
    (sorted_metrics ())

let scalar snap m = Json.Int (slot_value snap m.m_base)

let subtree snap stab extra =
  Json.Obj
    ([ ("counters", Json.Obj (metric_section ~stab Kcounter (scalar snap)));
       ("gauges", Json.Obj (metric_section ~stab Kgauge (scalar snap)));
       ("histograms",
        Json.Obj (metric_section ~stab Khistogram (hist_json snap))) ]
     @ extra)

let durations_json snap =
  Json.Obj
    (List.map
       (fun s ->
         ( s.s_name,
           Json.Obj
             [ ("count", Json.Int (slot_value snap s.s_cnt));
               ("total_ns", Json.Int (slot_value snap s.s_dur)) ] ))
       (sorted_spans ()))

let schema_version = "lookahead-obs-report/1"

let report_json snap =
  Json.Obj
    [ ("schema", Json.String schema_version);
      ("deterministic", subtree snap Det []);
      ("runtime",
       subtree snap Sched [ ("durations", durations_json snap) ]) ]

let det_subtree j =
  match Json.member "deterministic" j with Some d -> d | None -> Json.Null

let trace_json snap =
  let epoch = Int64.to_int !epoch_ns in
  let events =
    List.sort
      (fun a b ->
        match compare a.e_ts b.e_ts with
        | 0 -> (
          match compare a.e_tid b.e_tid with
          | 0 -> String.compare a.e_name b.e_name
          | c -> c)
        | c -> c)
      snap.snap.events
  in
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.e_tid) events)
  in
  let meta =
    List.map
      (fun tid ->
        Json.Obj
          [ ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ("args",
             Json.Obj
               [ ("name", Json.String (Printf.sprintf "domain %d" tid)) ]) ])
      tids
  in
  let spans =
    List.map
      (fun e ->
        Json.Obj
          ([ ("name", Json.String e.e_name);
             ("ph", Json.String "X");
             ("ts", Json.Float (float_of_int (e.e_ts - epoch) /. 1e3));
             ("dur", Json.Float (float_of_int e.e_dur /. 1e3));
             ("pid", Json.Int 1);
             ("tid", Json.Int e.e_tid) ]
           @
           if e.e_trace = "" then []
           else
             [ ("args",
                Json.Obj [ ("trace", Json.String e.e_trace) ]) ]))
      events
  in
  Json.Obj
    [ ("traceEvents", Json.List (meta @ spans));
      ("displayTimeUnit", Json.String "ms") ]

let pp_summary fmt snap =
  let line = String.make 66 '-' in
  let header title =
    Format.fprintf fmt "%s@.%s@.%s@." line title line
  in
  let metric_rows stab kind =
    List.filter
      (fun m ->
        m.m_kind = kind && m.m_stab = stab
        &&
        match kind with
        | Khistogram -> slot_value snap (m.m_base + hist_buckets) <> 0
        | _ -> slot_value snap m.m_base <> 0)
      (sorted_metrics ())
  in
  let print_scalars title rows =
    if rows <> [] then begin
      header title;
      List.iter
        (fun m ->
          Format.fprintf fmt "  %-44s %17d@." m.m_name
            (slot_value snap m.m_base))
        rows
    end
  in
  print_scalars "counters (deterministic)" (metric_rows Det Kcounter);
  print_scalars "counters (runtime)" (metric_rows Sched Kcounter);
  print_scalars "gauges (max)" (metric_rows Det Kgauge @ metric_rows Sched Kgauge);
  let hists = metric_rows Det Khistogram @ metric_rows Sched Khistogram in
  if hists <> [] then begin
    header "histograms";
    Format.fprintf fmt "  %-34s %10s %13s %10s@." "" "count" "sum" "mean";
    List.iter
      (fun m ->
        let count = slot_value snap (m.m_base + hist_buckets) in
        let sum = slot_value snap (m.m_base + hist_buckets + 1) in
        Format.fprintf fmt "  %-34s %10d %13d %10.1f@." m.m_name count sum
          (float_of_int sum /. float_of_int (max 1 count)))
      hists
  end;
  let spans =
    List.filter (fun s -> slot_value snap s.s_cnt <> 0) (sorted_spans ())
  in
  if spans <> [] then begin
    header "phases (wall clock)";
    Format.fprintf fmt "  %-34s %10s %13s %10s@." "" "count" "total ms"
      "mean ms";
    List.iter
      (fun s ->
        let count = slot_value snap s.s_cnt in
        let ns = slot_value snap s.s_dur in
        Format.fprintf fmt "  %-34s %10d %13.2f %10.3f@." s.s_name count
          (float_of_int ns /. 1e6)
          (float_of_int ns /. 1e6 /. float_of_int (max 1 count)))
      spans
  end;
  Format.fprintf fmt "%s@." line
