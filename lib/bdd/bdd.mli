(** Hash-consed reduced ordered binary decision diagrams.

    The manager owns a flat array-of-ints node store, the
    open-addressing unique table, and bounded open-addressing operation
    caches. Edges carry a complement bit, so negation is O(1) and a
    function and its complement share one subgraph. Nodes from the same
    manager compare equal iff they represent the same function
    (canonicity), so {!equal} is constant time. Variable [0] is at the
    top of the order; the manager grows its variable count on demand.

    BDDs carry the global node functions of the technology-independent
    network and the speed-path characteristic function (SPCF); satisfying
    fractions computed here are the cube weights of the paper's
    [Simplify] procedure. *)

type man
type t

(** [create ?cache_size ?guard ()] makes a fresh manager. [cache_size]
    seeds the initial ite-cache capacity (rounded up to a power of two);
    all op caches grow by doubling under pressure up to a fixed cap.

    [guard] governs the manager: allocation past the budget's
    [bdd_node_ceiling] raises {!Guard.Blowup}[ Bdd_nodes] from the
    single allocation point, and every public operation ([ite] and the
    derived connectives, [restrict], [compose], [apply_tt]) is an
    injection tick site. A blowup leaves the manager internally
    consistent (every stored node is canonical), so the caller may
    discard results built from it and retry elsewhere. Default
    {!Guard.none}: unlimited, no ticks. *)
val create : ?cache_size:int -> ?guard:Guard.t -> unit -> man

(** The guard [create] was given ({!Guard.none} by default). *)
val guard : man -> Guard.t

val bfalse : man -> t
val btrue : man -> t

(** [var m i] is the projection of variable [i] (grows the manager). *)
val var : man -> int -> t

(** Number of variables the manager has seen. *)
val num_vars : man -> int

(** Total nodes ever allocated in this manager — a growth gauge used to
    bound BDD effort in the synthesis driver. Prefer {!stats} for richer
    live counters. *)
val allocated : man -> int

val bnot : man -> t -> t
val band : man -> t -> t -> t
val bor : man -> t -> t -> t
val bxor : man -> t -> t -> t
val bimp : man -> t -> t -> t
val beq : man -> t -> t -> t
val ite : man -> t -> t -> t -> t

(** Constant-time structural equality (valid within one manager). *)
val equal : t -> t -> bool

val is_false : man -> t -> bool
val is_true : man -> t -> bool

(** [implies m f g] decides [f <= g]. *)
val implies : man -> t -> t -> bool

(** [restrict m f i b] is the cofactor of [f] with [x_i = b]. *)
val restrict : man -> t -> int -> bool -> t

(** [compose m f i g] substitutes [g] for variable [i] in [f]. *)
val compose : man -> t -> int -> t -> t

(** [exists m vars f] quantifies the listed variables away. *)
val exists : man -> int list -> t -> t

(** [apply_tt m tt args] interprets truth table [tt] as a function applied
    to the argument BDDs: the global function of a network node whose
    fanins have global functions [args]. [Array.length args] must equal
    [Tt.num_vars tt]. Memoized per [(tt, args)] in the manager, so
    recomputing the image of the same window at the same node is O(1). *)
val apply_tt : man -> Logic.Tt.t -> t array -> t

(** [transfer ~src ~dst f] rebuilds [f] (an edge of [src]) inside [dst]
    and returns the resulting edge: the same function, re-hash-consed in
    the destination. The rebuild is structure-preserving, so
    [size dst (transfer ~src ~dst f) = size src f], complement edges are
    preserved, and — [dst] being canonical — transferring equal
    functions from any mix of source managers yields equal edges.
    Memoized per (source manager, source node) in [dst] (dropped by
    {!clear_caches}), so shared subgraphs of repeated transfers move
    once. [transfer ~src ~dst:src f] is [f]. Only [dst] is mutated;
    [src] is read-only. Allocation counts against [dst]'s guard ceiling,
    and each call ticks [dst]'s guard at site ["bdd.transfer"]. *)
val transfer : src:man -> dst:man -> t -> t

(** [satcount m ~nvars f] is the number of satisfying minterms of [f] over
    a space of [nvars] variables, as a float (spaces can exceed 2^62).
    Per-node satisfying fractions are memoized in a manager scratch table
    for the manager's lifetime. *)
val satcount : man -> nvars:int -> t -> float

(** Some satisfying assignment as [(var, value)] pairs on the variables the
    function depends on; [None] when the function is false. *)
val any_sat : man -> t -> (int * bool) list option

(** Variables the function depends on, ascending. *)
val support : man -> t -> int list

(** Number of internal nodes reachable from [f] (complement-shared nodes
    counted once). *)
val size : man -> t -> int

val pp : man -> Format.formatter -> t -> unit

(** Live counters for the node store and the operation caches. *)
type stats = {
  live_nodes : int;  (** internal nodes currently in the unique table *)
  total_allocated : int;  (** nodes ever allocated, terminal included *)
  unique_capacity : int;
  unique_growths : int;  (** unique-table doublings since [create] *)
  ite_cache_capacity : int;
  ite_lookups : int;
  ite_hits : int;
  ite_cache_growths : int;
  restrict_cache_capacity : int;
  restrict_lookups : int;
  restrict_hits : int;
  restrict_cache_growths : int;
  compose_cache_capacity : int;
  compose_lookups : int;
  compose_hits : int;
  compose_cache_growths : int;
  apply_memo_entries : int;
  transfer_lookups : int;  (** nodes visited by {!transfer} *)
  transfer_hits : int;  (** of which were already memoized *)
  transfer_sources : int;  (** distinct source managers memoized *)
  transfer_memo_entries : int;  (** memoized (source node -> edge) pairs *)
}

val stats : man -> stats

(** Drop every op-cache entry, the [apply_tt] memo, the {!transfer}
    memo, and the per-node [satcount] scratch (the node store and
    unique table are untouched, so existing edges stay valid). Frees
    every per-job memo a long-lived manager accumulates. *)
val clear_caches : man -> unit

(** [reset man] returns [man] to the observable state of a fresh
    {!create} — empty store, creation-capacity unique table and op
    caches, all counters zero, a {e fresh} [uid] (so stale {!transfer}
    memos held by other managers can never alias the new node space),
    and the given guard — while retaining the grown node-store arrays
    and hashtable buckets, whose capacity is not observable. Guarantee:
    every subsequent operation sequence yields bit-identical results
    {e and} bit-identical {!stats} to the same sequence on a fresh
    manager. All previously returned [t] values are invalidated. *)
val reset : ?cache_size:int -> ?guard:Guard.t -> man -> unit

(** A process-wide pool of recycled managers for warm servers: acquire
    instead of {!create}, release instead of dropping to the GC. An
    acquired manager is {!reset}, hence observationally fresh. Bounded
    (manager count and retained store size), thread-safe. Never release
    a manager that any live [t] still references. *)
module Pool : sig
  val acquire : ?cache_size:int -> ?guard:Guard.t -> unit -> man
  val release : man -> unit

  (** Number of managers currently pooled. *)
  val size : unit -> int

  val clear : unit -> unit
end

(** Whole-store canonical-form audit: no node with [lo = hi], no
    complement bit on a [hi] edge, variables strictly increasing along
    every edge. Intended for tests. *)
val check_canonical : man -> bool
