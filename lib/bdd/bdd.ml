(* CUDD-style hash-consed ROBDD manager with a flat node store and
   complement edges.

   Representation
   --------------
   An edge (the public [t]) is an int: [(node_id lsl 1) lor complement].
   Node 0 is the unique TRUE terminal, so [btrue = 0] and
   [bfalse = 1] (the complemented true edge); negation is one XOR.
   Internal nodes live in three growable int arrays indexed by node id
   ([var_], [lo_], [hi_]) instead of an algebraic tree type, so walking
   a BDD touches no boxed memory at all.

   Canonical form: no node has [lo = hi], and the complement bit never
   appears on a [hi] (then) edge — [mk] pushes it to the incoming edge,
   which keeps one canonical node per function-pair and makes [equal]
   one integer comparison.

   The unique table and the ite/restrict/compose caches are
   open-addressing tables over packed int keys (no tuple allocation on
   lookup). The op caches are lossy (overwrite on collision), bounded,
   power-of-two sized, and grow by doubling under pressure up to a cap;
   the unique table is exact (linear probing) and doubles at 50% load. *)

type t = int

(* ------------------------------------------------------------------ *)
(* Lossy open-addressing op cache over up-to-3-int keys.               *)
(* ------------------------------------------------------------------ *)

type cache = {
  mutable c_k1 : int array; (* -1 marks an empty slot *)
  mutable c_k2 : int array;
  mutable c_k3 : int array;
  mutable c_r : int array;
  mutable c_mask : int;
  mutable c_lookups : int;
  mutable c_hits : int;
  mutable c_inserts : int; (* since the last resize *)
  mutable c_grows : int;
  c_max_bits : int;
}

let cache_create bits max_bits =
  let n = 1 lsl bits in
  {
    c_k1 = Array.make n (-1);
    c_k2 = Array.make n 0;
    c_k3 = Array.make n 0;
    c_r = Array.make n 0;
    c_mask = n - 1;
    c_lookups = 0;
    c_hits = 0;
    c_inserts = 0;
    c_grows = 0;
    c_max_bits = max_bits;
  }

let[@inline] hash3 a b c =
  let h = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) lxor (c * 0xC2B2AE3D) in
  h lxor (h lsr 17)

let[@inline] cache_find c k1 k2 k3 =
  c.c_lookups <- c.c_lookups + 1;
  let i = hash3 k1 k2 k3 land c.c_mask in
  if c.c_k1.(i) = k1 && c.c_k2.(i) = k2 && c.c_k3.(i) = k3 then begin
    c.c_hits <- c.c_hits + 1;
    c.c_r.(i)
  end
  else -1

let cache_grow c =
  c.c_grows <- c.c_grows + 1;
  let old_k1 = c.c_k1 and old_k2 = c.c_k2 in
  let old_k3 = c.c_k3 and old_r = c.c_r in
  let n = 2 * (c.c_mask + 1) in
  c.c_k1 <- Array.make n (-1);
  c.c_k2 <- Array.make n 0;
  c.c_k3 <- Array.make n 0;
  c.c_r <- Array.make n 0;
  c.c_mask <- n - 1;
  c.c_inserts <- 0;
  Array.iteri
    (fun i k1 ->
      if k1 >= 0 then begin
        let j = hash3 k1 old_k2.(i) old_k3.(i) land c.c_mask in
        c.c_k1.(j) <- k1;
        c.c_k2.(j) <- old_k2.(i);
        c.c_k3.(j) <- old_k3.(i);
        c.c_r.(j) <- old_r.(i)
      end)
    old_k1

let[@inline] cache_put c k1 k2 k3 r =
  c.c_inserts <- c.c_inserts + 1;
  if c.c_inserts > 2 * (c.c_mask + 1) && c.c_mask + 1 < 1 lsl c.c_max_bits
  then cache_grow c;
  let i = hash3 k1 k2 k3 land c.c_mask in
  c.c_k1.(i) <- k1;
  c.c_k2.(i) <- k2;
  c.c_k3.(i) <- k3;
  c.c_r.(i) <- r

let cache_clear c =
  Array.fill c.c_k1 0 (Array.length c.c_k1) (-1);
  c.c_inserts <- 0

(* ------------------------------------------------------------------ *)
(* Manager.                                                            *)
(* ------------------------------------------------------------------ *)

type man = {
  (* Process-unique manager id. Used only as a key of the cross-manager
     transfer memo, so the id sequence never influences any computed
     function — determinism does not depend on creation order. Mutable
     because [reset] must issue a fresh identity: stale transfer memos
     in other managers are keyed by uid, and a recycled id would let
     them alias the new node space. *)
  mutable uid : int;
  mutable var_ : int array; (* var_.(0) = max_int: terminal sentinel *)
  mutable lo_ : int array; (* else-edge, may carry the complement bit *)
  mutable hi_ : int array; (* then-edge, always regular *)
  mutable next : int; (* next free node id *)
  mutable unique : int array; (* node ids; 0 = empty slot *)
  mutable unique_mask : int;
  mutable unique_count : int;
  mutable unique_grows : int;
  mutable nvars : int;
  ite_cache : cache;
  restrict_cache : cache;
  compose_cache : cache;
  apply_memo : (string, int) Hashtbl.t;
  apply_memo_max : int;
  (* Cross-manager transfer memo, held by the {e destination}: source
     uid -> (source node id -> edge here). Shared subgraphs of repeated
     transfers from the same source move once. *)
  transfer_memo : (int, (int, int) Hashtbl.t) Hashtbl.t;
  mutable transfer_lookups : int;
  mutable transfer_hits : int;
  (* Per-manager scratch tables so size/satcount queries allocate
     nothing. Satisfying fractions of a node never change, so sat_done
     is a sticky flag; reachability marks use an epoch counter. *)
  mutable sat_val : float array;
  mutable sat_done : Bytes.t;
  mutable mark : int array;
  mutable mark_epoch : int;
  (* Resource governance: [ceiling] is the guard budget's hard node
     ceiling snapshot ([max_int] when unguarded), checked at the single
     allocation point so every public operation becomes cancellable. *)
  mutable guard : Guard.t;
  mutable ceiling : int;
}

let uid_counter = Atomic.make 0

let create ?(cache_size = 1 lsl 14) ?(guard = Guard.none) () =
  let bits n = max 8 (int_of_float (ceil (log (float_of_int n) /. log 2.))) in
  let cap = 1024 in
  let var_ = Array.make cap 0 in
  var_.(0) <- max_int;
  {
    uid = Atomic.fetch_and_add uid_counter 1;
    var_;
    lo_ = Array.make cap 0;
    hi_ = Array.make cap 0;
    next = 1;
    unique = Array.make (1 lsl 12) 0;
    unique_mask = (1 lsl 12) - 1;
    unique_count = 0;
    unique_grows = 0;
    nvars = 0;
    ite_cache = cache_create (min (bits cache_size) 20) 20;
    restrict_cache = cache_create 10 18;
    compose_cache = cache_create 10 18;
    apply_memo = Hashtbl.create 256;
    apply_memo_max = 1 lsl 16;
    transfer_memo = Hashtbl.create 4;
    transfer_lookups = 0;
    transfer_hits = 0;
    sat_val = [||];
    sat_done = Bytes.empty;
    mark = [||];
    mark_epoch = 0;
    guard;
    ceiling = Guard.bdd_ceiling guard;
  }

let bfalse _ = 1
let btrue _ = 0
let equal (a : t) (b : t) = a = b
let is_false _ f = f = 1
let is_true _ f = f = 0
let num_vars man = man.nvars
let allocated man = man.next
let guard man = man.guard

let[@inline] topvar man e = man.var_.(e lsr 1)

(* ------------------------------------------------------------------ *)
(* Node store and unique table.                                        *)
(* ------------------------------------------------------------------ *)

let grow_nodes man =
  let cap = Array.length man.var_ in
  let ncap = 2 * cap in
  let g a fill =
    let b = Array.make ncap fill in
    Array.blit a 0 b 0 cap;
    b
  in
  man.var_ <- g man.var_ 0;
  man.lo_ <- g man.lo_ 0;
  man.hi_ <- g man.hi_ 0

let unique_grow man =
  man.unique_grows <- man.unique_grows + 1;
  let n = 2 * (man.unique_mask + 1) in
  let tbl = Array.make n 0 in
  let mask = n - 1 in
  for id = 1 to man.next - 1 do
    let i = ref (hash3 man.var_.(id) man.lo_.(id) man.hi_.(id) land mask) in
    while tbl.(!i) <> 0 do
      i := (!i + 1) land mask
    done;
    tbl.(!i) <- id
  done;
  man.unique <- tbl;
  man.unique_mask <- mask

(* Find-or-create the node (v, lo, hi); requires [lo <> hi] and [hi]
   regular. Returns the regular edge to it. *)
let mk_node man v lo hi =
  let mask = man.unique_mask in
  let tbl = man.unique in
  let i = ref (hash3 v lo hi land mask) in
  let res = ref (-1) in
  while !res < 0 do
    let id = tbl.(!i) in
    if id = 0 then begin
      if man.next >= man.ceiling then
        raise
          (Guard.Blowup
             { resource = Guard.Bdd_nodes; site = "bdd.mk_node";
               injected = false });
      if man.next >= Array.length man.var_ then grow_nodes man;
      let id = man.next in
      man.next <- id + 1;
      man.var_.(id) <- v;
      man.lo_.(id) <- lo;
      man.hi_.(id) <- hi;
      tbl.(!i) <- id;
      man.unique_count <- man.unique_count + 1;
      if 2 * man.unique_count > mask then unique_grow man;
      res := id
    end
    else if man.var_.(id) = v && man.lo_.(id) = lo && man.hi_.(id) = hi then
      res := id
    else i := (!i + 1) land mask
  done;
  !res lsl 1

let[@inline] mk man v lo hi =
  if lo = hi then lo
  else if hi land 1 = 1 then mk_node man v (lo lxor 1) (hi lxor 1) lxor 1
  else mk_node man v lo hi

let var man i =
  assert (i >= 0);
  if i >= man.nvars then man.nvars <- i + 1;
  mk man i 1 0

let bnot _ f = f lxor 1

(* Cofactors of edge [e] with respect to variable [v] (which must not be
   below [e]'s top variable). The complement bit distributes over both
   branches. *)
let[@inline] cof man v e =
  let id = e lsr 1 in
  if man.var_.(id) <> v then (e, e)
  else
    let c = e land 1 in
    (man.lo_.(id) lxor c, man.hi_.(id) lxor c)

(* ------------------------------------------------------------------ *)
(* ite and the derived connectives.                                    *)
(* ------------------------------------------------------------------ *)

let rec ite_rec man f g h =
  if f = 0 then g
  else if f = 1 then h
  else begin
    (* Arms equal to the selector collapse to constants. *)
    let g = if g = f then 0 else if g = f lxor 1 then 1 else g in
    let h = if h = f then 1 else if h = f lxor 1 then 0 else h in
    if g = h then g
    else if g = 0 && h = 1 then f
    else if g = 1 && h = 0 then f lxor 1
    else begin
      (* Canonicalize the triple: a regular selector (a complemented
         [f] swaps the arms), then a regular then-arm (a complemented
         [g] complements the whole result), so equivalent triples share
         one cache line and the cached result is always regular. *)
      let f, g, h = if f land 1 = 1 then (f lxor 1, h, g) else (f, g, h) in
      let compl_out = g land 1 in
      let g = g lxor compl_out and h = h lxor compl_out in
      let r = cache_find man.ite_cache f g h in
      if r >= 0 then r lxor compl_out
      else begin
        let v = min (topvar man f) (min (topvar man g) (topvar man h)) in
        let f0, f1 = cof man v f in
        let g0, g1 = cof man v g in
        let h0, h1 = cof man v h in
        let lo = ite_rec man f0 g0 h0 and hi = ite_rec man f1 g1 h1 in
        let r = mk man v lo hi in
        cache_put man.ite_cache f g h r;
        r lxor compl_out
      end
    end
  end

(* Public entry points tick the manager's guard once per call — the
   granularity at which injected faults land; the recursion stays
   tick-free so guarded and unguarded managers run the same code. *)
let ite man f g h =
  Guard.tick_bdd man.guard ~site:"bdd.ite";
  ite_rec man f g h

let band man f g = ite man f g 1
let bor man f g = ite man f 0 g
let bxor man f g = ite man f (g lxor 1) g
let bimp man f g = ite man f g 0
let beq man f g = ite man f g (g lxor 1)
let implies man f g = ite man f g 0 = 0

(* ------------------------------------------------------------------ *)
(* Cofactor, composition, quantification.                              *)
(* ------------------------------------------------------------------ *)

let restrict man f i b =
  Guard.tick_bdd man.guard ~site:"bdd.restrict";
  let bi = (i lsl 1) lor (if b then 1 else 0) in
  let rec go f =
    if f land lnot 1 = 0 then f
    else begin
      let id = f lsr 1 in
      let v = man.var_.(id) in
      if v > i then f
      else if v = i then
        (if b then man.hi_.(id) else man.lo_.(id)) lxor (f land 1)
      else begin
        let r = cache_find man.restrict_cache f bi 0 in
        if r >= 0 then r
        else begin
          let c = f land 1 in
          let lo = go (man.lo_.(id) lxor c) and hi = go (man.hi_.(id) lxor c) in
          let r = mk man v lo hi in
          cache_put man.restrict_cache f bi 0 r;
          r
        end
      end
    end
  in
  go f

let compose man f i g =
  Guard.tick_bdd man.guard ~site:"bdd.compose";
  let rec go f =
    if f land lnot 1 = 0 then f
    else begin
      let id = f lsr 1 in
      let v = man.var_.(id) in
      if v > i then f
      else begin
        let c = f land 1 in
        if v = i then ite_rec man g (man.hi_.(id) lxor c) (man.lo_.(id) lxor c)
        else begin
          let r = cache_find man.compose_cache f i g in
          if r >= 0 then r
          else begin
            let lo = go (man.lo_.(id) lxor c)
            and hi = go (man.hi_.(id) lxor c) in
            (* The substituted variable may rise above [v] in the order,
               so rebuild with ite on the branch variable. *)
            let xv = mk man v 1 0 in
            let r = ite_rec man xv hi lo in
            cache_put man.compose_cache f i g r;
            r
          end
        end
      end
    end
  in
  go f

let exists man vars f =
  List.fold_left
    (fun f i -> bor man (restrict man f i false) (restrict man f i true))
    f vars

(* ------------------------------------------------------------------ *)
(* Truth-table application.                                            *)
(* ------------------------------------------------------------------ *)

let apply_tt man tt args =
  assert (Array.length args = Logic.Tt.num_vars tt);
  Guard.tick_bdd man.guard ~site:"bdd.apply_tt";
  (* Memoized per (table, argument edges) in the manager: global node
     functions and window images are rebuilt with identical arguments
     throughout a decomposition, and every repeat is a table hit. *)
  let memo_key =
    let b = Buffer.create 64 in
    Buffer.add_string b (Logic.Tt.to_hex tt);
    Array.iter
      (fun a ->
        Buffer.add_char b '|';
        Buffer.add_string b (string_of_int a))
      args;
    Buffer.contents b
  in
  match Hashtbl.find_opt man.apply_memo memo_key with
  | Some r -> r
  | None ->
    (* Shannon-expand the truth table over its variables, binding each
       variable to the corresponding argument BDD. Memoized on the
       (sub-)table so shared subfunctions are built once. *)
    let cache = Hashtbl.create 64 in
    let rec go tt i =
      if Logic.Tt.is_const_false tt then 1
      else if Logic.Tt.is_const_true tt then 0
      else begin
        let key = (Logic.Tt.to_hex tt, i) in
        match Hashtbl.find_opt cache key with
        | Some r -> r
        | None ->
          let r =
            if not (Logic.Tt.depends_on tt i) then go tt (i + 1)
            else
              let f0 = go (Logic.Tt.cofactor tt i false) (i + 1) in
              let f1 = go (Logic.Tt.cofactor tt i true) (i + 1) in
              ite_rec man args.(i) f1 f0
          in
          Hashtbl.replace cache key r;
          r
      end
    in
    let r = go tt 0 in
    if Hashtbl.length man.apply_memo >= man.apply_memo_max then
      Hashtbl.reset man.apply_memo;
    Hashtbl.add man.apply_memo memo_key r;
    r

(* ------------------------------------------------------------------ *)
(* Cross-manager transfer.                                             *)
(* ------------------------------------------------------------------ *)

(* Structure-preserving rebuild of [f]'s subgraph inside [dst]: each
   source node (v, lo, hi) maps to [mk dst v lo' hi'], so the image is
   the same function and — [dst] being hash-consed — the same edge no
   matter how many managers it arrives from or in what order. The memo
   is per (source uid, source node id) and lives in [dst], so shared
   subgraphs of repeated transfers from one source move exactly once.
   Only [dst] is mutated; [src] is read-only, which is what lets a
   merge loop drain per-worker managers from the awaiting domain. *)
let transfer ~src ~dst f =
  if src == dst then f
  else begin
    Guard.tick_bdd dst.guard ~site:"bdd.transfer";
    let memo =
      match Hashtbl.find_opt dst.transfer_memo src.uid with
      | Some m -> m
      | None ->
        let m = Hashtbl.create 256 in
        Hashtbl.add dst.transfer_memo src.uid m;
        m
    in
    (* [go id] is the image of the regular edge to source node [id];
       the complement bit of each visited edge is re-applied outside,
       so a function and its negation share one memo entry. *)
    let rec go id =
      if id = 0 then 0
      else begin
        dst.transfer_lookups <- dst.transfer_lookups + 1;
        match Hashtbl.find_opt memo id with
        | Some e ->
          dst.transfer_hits <- dst.transfer_hits + 1;
          e
        | None ->
          let lo = src.lo_.(id) and hi = src.hi_.(id) in
          let lo' = go (lo lsr 1) lxor (lo land 1) in
          let hi' = go (hi lsr 1) in
          let v = src.var_.(id) in
          if v >= dst.nvars then dst.nvars <- v + 1;
          let e = mk dst v lo' hi' in
          Hashtbl.add memo id e;
          e
      end
    in
    go (f lsr 1) lxor (f land 1)
  end

(* ------------------------------------------------------------------ *)
(* Counting and inspection.                                            *)
(* ------------------------------------------------------------------ *)

let ensure_sat_scratch man =
  if Bytes.length man.sat_done < man.next then begin
    let cap = Array.length man.var_ in
    let v = Array.make cap 0.0 in
    let d = Bytes.make cap '\000' in
    Array.blit man.sat_val 0 v 0 (Array.length man.sat_val);
    Bytes.blit man.sat_done 0 d 0 (Bytes.length man.sat_done);
    man.sat_val <- v;
    man.sat_done <- d
  end

let satcount man ~nvars f =
  ensure_sat_scratch man;
  (* Satisfying fraction of the regular edge to [e]'s node, memoized for
     the manager's lifetime (node structure is immutable). *)
  let rec frac e =
    if e = 0 then 1.0
    else if e = 1 then 0.0
    else begin
      let id = e lsr 1 in
      let v =
        if Bytes.unsafe_get man.sat_done id = '\001' then man.sat_val.(id)
        else begin
          let r = 0.5 *. (frac man.lo_.(id) +. frac man.hi_.(id)) in
          man.sat_val.(id) <- r;
          Bytes.unsafe_set man.sat_done id '\001';
          r
        end
      in
      if e land 1 = 1 then 1.0 -. v else v
    end
  in
  frac f *. (2.0 ** float_of_int nvars)

let any_sat man f =
  let rec go e acc =
    if e = 0 then Some (List.rev acc)
    else if e = 1 then None
    else begin
      let id = e lsr 1 and c = e land 1 in
      let v = man.var_.(id) in
      match go (man.hi_.(id) lxor c) ((v, true) :: acc) with
      | Some r -> Some r
      | None -> go (man.lo_.(id) lxor c) ((v, false) :: acc)
    end
  in
  go f []

let ensure_mark man =
  if Array.length man.mark < man.next then begin
    let cap = Array.length man.var_ in
    let m = Array.make cap 0 in
    Array.blit man.mark 0 m 0 (Array.length man.mark);
    man.mark <- m
  end

let size man f =
  ensure_mark man;
  man.mark_epoch <- man.mark_epoch + 1;
  let ep = man.mark_epoch in
  let n = ref 0 in
  let rec go e =
    let id = e lsr 1 in
    if id <> 0 && man.mark.(id) <> ep then begin
      man.mark.(id) <- ep;
      incr n;
      go man.lo_.(id);
      go man.hi_.(id)
    end
  in
  go f;
  !n

let support man f =
  ensure_mark man;
  man.mark_epoch <- man.mark_epoch + 1;
  let ep = man.mark_epoch in
  let vars = Hashtbl.create 16 in
  let rec go e =
    let id = e lsr 1 in
    if id <> 0 && man.mark.(id) <> ep then begin
      man.mark.(id) <- ep;
      Hashtbl.replace vars man.var_.(id) ();
      go man.lo_.(id);
      go man.hi_.(id)
    end
  in
  go f;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let pp man ppf f =
  if f = 0 then Format.fprintf ppf "bdd:true"
  else if f = 1 then Format.fprintf ppf "bdd:false"
  else
    Format.fprintf ppf "bdd:node(id=%d%s,var=%d,size=%d)" (f lsr 1)
      (if f land 1 = 1 then "'" else "")
      (topvar man f) (size man f)

(* ------------------------------------------------------------------ *)
(* Stats, cache control, invariants.                                   *)
(* ------------------------------------------------------------------ *)

type stats = {
  live_nodes : int;
  total_allocated : int;
  unique_capacity : int;
  unique_growths : int;
  ite_cache_capacity : int;
  ite_lookups : int;
  ite_hits : int;
  ite_cache_growths : int;
  restrict_cache_capacity : int;
  restrict_lookups : int;
  restrict_hits : int;
  restrict_cache_growths : int;
  compose_cache_capacity : int;
  compose_lookups : int;
  compose_hits : int;
  compose_cache_growths : int;
  apply_memo_entries : int;
  transfer_lookups : int;
  transfer_hits : int;
  transfer_sources : int;
  transfer_memo_entries : int;
}

let stats man =
  {
    live_nodes = man.next - 1;
    total_allocated = man.next;
    unique_capacity = man.unique_mask + 1;
    unique_growths = man.unique_grows;
    ite_cache_capacity = man.ite_cache.c_mask + 1;
    ite_lookups = man.ite_cache.c_lookups;
    ite_hits = man.ite_cache.c_hits;
    ite_cache_growths = man.ite_cache.c_grows;
    restrict_cache_capacity = man.restrict_cache.c_mask + 1;
    restrict_lookups = man.restrict_cache.c_lookups;
    restrict_hits = man.restrict_cache.c_hits;
    restrict_cache_growths = man.restrict_cache.c_grows;
    compose_cache_capacity = man.compose_cache.c_mask + 1;
    compose_lookups = man.compose_cache.c_lookups;
    compose_hits = man.compose_cache.c_hits;
    compose_cache_growths = man.compose_cache.c_grows;
    apply_memo_entries = Hashtbl.length man.apply_memo;
    transfer_lookups = man.transfer_lookups;
    transfer_hits = man.transfer_hits;
    transfer_sources = Hashtbl.length man.transfer_memo;
    transfer_memo_entries =
      Hashtbl.fold (fun _ m acc -> acc + Hashtbl.length m) man.transfer_memo 0;
  }

let clear_caches man =
  cache_clear man.ite_cache;
  cache_clear man.restrict_cache;
  cache_clear man.compose_cache;
  Hashtbl.reset man.apply_memo;
  Hashtbl.reset man.transfer_memo;
  (* The satcount scratch is a per-node memo too: drop it (it rebuilds
     lazily at full store size), so long-lived managers don't carry one
     float per ever-allocated node across jobs. *)
  man.sat_val <- [||];
  man.sat_done <- Bytes.empty

(* Shrink-or-clear an op cache back to its creation capacity and zero
   its counters. Capacity matters for identity, not just memory: these
   caches are lossy, so a bigger table changes which lookups hit, and
   hit counts are exported as Det metrics. *)
let cache_reset c bits =
  let n = 1 lsl bits in
  if c.c_mask + 1 <> n then begin
    c.c_k1 <- Array.make n (-1);
    c.c_k2 <- Array.make n 0;
    c.c_k3 <- Array.make n 0;
    c.c_r <- Array.make n 0;
    c.c_mask <- n - 1
  end
  else cache_clear c;
  c.c_lookups <- 0;
  c.c_hits <- 0;
  c.c_inserts <- 0;
  c.c_grows <- 0

let reset ?(cache_size = 1 lsl 14) ?(guard = Guard.none) man =
  let bits n = max 8 (int_of_float (ceil (log (float_of_int n) /. log 2.))) in
  man.uid <- Atomic.fetch_and_add uid_counter 1;
  man.var_.(0) <- max_int;
  man.next <- 1;
  (* The unique table is exact, but its capacity feeds [unique_grows]
     (a Det counter downstream), so it must restart at the creation
     size; the node-store arrays have no observable capacity and stay
     grown — that retained capacity is the warmth. *)
  if man.unique_mask = (1 lsl 12) - 1 then
    Array.fill man.unique 0 (Array.length man.unique) 0
  else begin
    man.unique <- Array.make (1 lsl 12) 0;
    man.unique_mask <- (1 lsl 12) - 1
  end;
  man.unique_count <- 0;
  man.unique_grows <- 0;
  man.nvars <- 0;
  cache_reset man.ite_cache (min (bits cache_size) 20);
  cache_reset man.restrict_cache 10;
  cache_reset man.compose_cache 10;
  (* Hashtbl.clear keeps the grown bucket arrays (warm), unlike the
     Hashtbl.reset in [clear_caches]; only length is observable. *)
  Hashtbl.clear man.apply_memo;
  Hashtbl.clear man.transfer_memo;
  man.transfer_lookups <- 0;
  man.transfer_hits <- 0;
  man.sat_val <- [||];
  man.sat_done <- Bytes.empty;
  man.mark <- [||];
  man.mark_epoch <- 0;
  man.guard <- guard;
  man.ceiling <- Guard.bdd_ceiling guard

module Pool = struct
  (* Process-wide free list of recycled managers. Keeps the node-store
     arrays (the dominant allocation) warm across jobs in a long-lived
     server; [reset] at acquire restores fresh-manager observability.
     Bounded two ways so an adversarial job can't pin memory: at most
     [max_pooled] managers, and a manager whose store grew past
     [max_retained_nodes] ids is dropped to the GC instead. *)
  let lock = Mutex.create ()
  let free : man list ref = ref []
  let free_count = ref 0
  let max_pooled = 64
  let max_retained_nodes = 1 lsl 21

  let acquire ?cache_size ?(guard = Guard.none) () =
    let m =
      Mutex.protect lock (fun () ->
          match !free with
          | [] -> None
          | m :: tl ->
            free := tl;
            decr free_count;
            Some m)
    in
    match m with
    | Some m ->
      reset ?cache_size ~guard m;
      m
    | None -> create ?cache_size ~guard ()

  let release m =
    if Array.length m.var_ <= max_retained_nodes then
      Mutex.protect lock (fun () ->
          if !free_count < max_pooled then begin
            free := m :: !free;
            incr free_count
          end)

  let size () = Mutex.protect lock (fun () -> !free_count)

  let clear () =
    Mutex.protect lock (fun () ->
        free := [];
        free_count := 0)
end

let check_canonical man =
  let ok = ref true in
  for id = 1 to man.next - 1 do
    let v = man.var_.(id) and lo = man.lo_.(id) and hi = man.hi_.(id) in
    if lo = hi then ok := false;
    if hi land 1 = 1 then ok := false;
    if v >= man.var_.(lo lsr 1) || v >= man.var_.(hi lsr 1) then ok := false
  done;
  !ok
