(** Whole-circuit metric evaluation and node-local cost weights.

    The Table-2 reporting path ([Serve.Run.metrics]) and the e-graph's
    cost-generic extraction both need "map once, read the mapped
    numbers"; {!measure} is that sequence as one call, so the two
    cannot drift. The [and_*]/[inv_*] weights are per-node proxies for
    bottom-up extraction costs, derived from the {!Library} cells: they
    only have to rank candidate terms, the authoritative number is
    always {!measure} of the extracted circuit. *)

type summary = {
  cells : int;
  area : float;
  delay_ps : float;
  power_mw : float;
}

(** Map the AIG once ({!Mapper.map}) and read cell count, area, delay
    and dynamic power off the netlist — the exact calls, in the exact
    order, of the CLI's metric report. *)
val measure : Aig.t -> summary

(** {1 Node-local weights}

    AND2 / INV cell constants for per-node extraction costs: [area] is
    the cell area, [delay_ps] the intrinsic plus one fanout-of-one
    load, [power_mw] the dynamic power of the cell's input pins
    switching every cycle at the library clock. *)

val and_area : float
val inv_area : float
val and_delay_ps : float
val inv_delay_ps : float
val and_power_mw : float
val inv_power_mw : float
