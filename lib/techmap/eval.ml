(* See eval.mli. *)

type summary = {
  cells : int;
  area : float;
  delay_ps : float;
  power_mw : float;
}

let measure g =
  let netlist = Mapper.map g in
  {
    cells = Mapper.num_gates netlist;
    area = Mapper.area netlist;
    delay_ps = Mapper.delay netlist;
    power_mw = Power.dynamic_mw netlist;
  }

let and2 = Library.find "AND2"
let inv = Library.inverter

(* Intrinsic plus a fanout-of-one load of the cell's own input cap:
   the logical-effort delay of a gate driving one copy of itself. *)
let fo1_delay (c : Library.cell) = c.intrinsic +. (c.load_factor *. c.input_cap)

(* Dynamic power of the cell's input pins toggling every cycle:
   alpha * C * V^2 * f with alpha = 1, in mW (caps are fF). *)
let pin_power (c : Library.cell) =
  float_of_int c.arity *. c.input_cap *. 1e-15 *. Library.vdd *. Library.vdd
  *. Library.clock_hz *. 1e3

let and_area = and2.Library.area
let inv_area = inv.Library.area
let and_delay_ps = fo1_delay and2
let inv_delay_ps = fo1_delay inv
let and_power_mw = pin_power and2
let inv_power_mw = pin_power inv
