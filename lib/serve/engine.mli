(** The job engine: a bounded FIFO queue drained by one executor
    domain, with process-level warm state shared across jobs.

    {b Execution model.} Jobs run strictly one at a time, in admission
    order, on the executor domain; intra-job parallelism comes from the
    shared [Par] pool exactly as in the one-shot CLI. Sequential
    execution is what makes warm-server results byte-identical to cold
    runs: each job gets [Obs.reset] → run → snapshot with nothing else
    recording, and fault-injection arming is per-job global state that
    must not interleave.

    {b Warm state.} Generated circuits ([Named]/[Adder] sources) are
    interned in a process-level table (generation is deterministic and
    the optimizer never mutates its input, so sharing is
    identity-safe); BDD managers recycle through {!Bdd.Pool} when
    [reuse_managers] is set; [Obs] stays enabled across jobs with
    per-job [reset].

    {b Tenancy.} Every job belongs to a tenant (the server uses the
    connection id). Budgets and deadlines are per-job {!Guard}
    contexts, so one tenant's blowup degrades that tenant's job through
    the PR-5 ladder and cannot corrupt — only delay by queueing — any
    other job; {!drop_tenant} cancels everything a vanished tenant
    still owns, running job included, via {!Guard.Deadline.cancel}. *)

type config = {
  queue_capacity : int;  (** queued (not yet running) job bound *)
  reuse_managers : bool;  (** recycle BDD managers through {!Bdd.Pool} *)
}

val default_config : config

(** Engine → server notifications. [Job_done] fires on the executor
    domain; [Job_progress] fires on whichever domain completed the
    phase span. Callbacks must be thread-safe and quick. *)
type event =
  | Job_done of { tenant : int; result : Msg.result }
  | Job_progress of { tenant : int; id : int; phase : string; seq : int }

type t

(** [create ?on_event ?slo config] — [slo] maps size classes to
    run-latency objectives in milliseconds (see {!Telemetry.parse_slo})
    for the engine's cumulative telemetry. *)
val create :
  ?on_event:(event -> unit) -> ?slo:(string * float) list -> config -> t

(** Spawn the executor domain. Enables [Obs] recording (reports are
    part of the protocol) and installs the progress span listener. *)
val start : t -> unit

(** Stop accepting ({!submit} answers [shutting_down]), cancel every
    queued job, cancel the running job via its deadline, and join the
    executor. Idempotent. *)
val stop : t -> unit

(** Reject new submissions but let queued and running jobs finish —
    the graceful half of shutdown. *)
val begin_shutdown : t -> unit

(** [true] once the queue is empty and no job is running. *)
val idle : t -> bool

(** Admit a job. [Error (code, message)] when the queue is full, the
    engine is shutting down, or the spec is invalid (bad tool, bad
    inject spec, bad adder kind — checked at admission so the error is
    synchronous). On success, returns the job id and its 0-based queue
    position. *)
val submit :
  t -> tenant:int -> Msg.submit -> (int * int, string * string) result

val status : t -> int -> (Msg.job_state * int option) option

(** Cancel a job owned by [tenant] (the requesting connection may only
    cancel its own jobs). Queued jobs are marked cancelled and skipped;
    the running job has its deadline cancelled and winds down at the
    next guard cancellation point. Returns the state after the call. *)
val cancel :
  t -> tenant:int -> int -> (Msg.job_state, string * string) result

(** Cancel every live job of a tenant (client disconnect). *)
val drop_tenant : t -> int -> unit

val stats : t -> Msg.server_stats

(** Live telemetry: Prometheus-style text exposition plus its JSON
    mirror, combining the cumulative {!Telemetry} state with live
    engine gauges (queue depth, running-job age, warm-state sizes,
    journal counters). Safe from any thread. *)
val metrics : t -> string * Obs.Json.t

(** The retained Chrome-trace slice of a recently finished job (the
    engine keeps the last few), rendered at job completion; [None] for
    unknown or evicted ids. *)
val job_trace : t -> int -> Obs.Json.t option

(** Run a job cold on the calling domain: fresh circuit build (no
    intern), no manager reuse, per-run [Obs.reset] — the library-call
    image of one [bin/lookahead_opt] invocation. Used by the bench to
    prove warm ≡ cold in-process. Must not run concurrently with a
    started engine's jobs. *)
val run_cold : Msg.submit -> Msg.result
