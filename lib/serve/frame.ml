(* See frame.mli. The decoder is a three-state machine — reading a
   header, reading a body, discarding an oversized body — advanced
   byte-range by byte-range so no input chunking can confuse it. *)

let max_frame_default = 16 * 1024 * 1024

let encode payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let write buf payload =
  let n = String.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int n);
  Buffer.add_bytes buf hdr;
  Buffer.add_string buf payload

module Decoder = struct
  type event = Frame of string | Oversized of int | Corrupt of string

  type t = {
    max_frame : int;
    hdr : Bytes.t; (* 4-byte header accumulator *)
    mutable hdr_got : int;
    mutable body : Bytes.t; (* body accumulator, exact frame size *)
    mutable body_got : int;
    mutable body_len : int; (* -1 while reading a header *)
    mutable discard_left : int; (* > 0 while skipping an oversized body *)
    mutable poisoned : bool;
  }

  let create ?(max_frame = max_frame_default) () =
    {
      max_frame;
      hdr = Bytes.create 4;
      hdr_got = 0;
      body = Bytes.empty;
      body_got = 0;
      body_len = -1;
      discard_left = 0;
      poisoned = false;
    }

  let pending t =
    if t.body_len >= 0 then t.body_got else t.hdr_got

  let feed t src off len =
    if off < 0 || len < 0 || off + len > Bytes.length src then
      invalid_arg "Frame.Decoder.feed";
    let events = ref [] in
    let emit e = events := e :: !events in
    let pos = ref off in
    let stop = off + len in
    while !pos < stop && not t.poisoned do
      if t.discard_left > 0 then begin
        let n = min t.discard_left (stop - !pos) in
        t.discard_left <- t.discard_left - n;
        pos := !pos + n
      end
      else if t.body_len < 0 then begin
        let n = min (4 - t.hdr_got) (stop - !pos) in
        Bytes.blit src !pos t.hdr t.hdr_got n;
        t.hdr_got <- t.hdr_got + n;
        pos := !pos + n;
        if t.hdr_got = 4 then begin
          t.hdr_got <- 0;
          let l = Int32.to_int (Bytes.get_int32_be t.hdr 0) in
          if l < 0 then begin
            t.poisoned <- true;
            emit (Corrupt (Printf.sprintf "negative frame length %d" l))
          end
          else if l > t.max_frame then begin
            t.discard_left <- l;
            emit (Oversized l)
          end
          else if l = 0 then
            (* Complete already — emitting here, not on the next feed,
               keeps an empty frame at a chunk boundary from stalling. *)
            emit (Frame "")
          else begin
            t.body_len <- l;
            t.body_got <- 0;
            if Bytes.length t.body < l then t.body <- Bytes.create l
          end
        end
      end
      else begin
        let n = min (t.body_len - t.body_got) (stop - !pos) in
        Bytes.blit src !pos t.body t.body_got n;
        t.body_got <- t.body_got + n;
        pos := !pos + n;
        if t.body_got = t.body_len then begin
          emit (Frame (Bytes.sub_string t.body 0 t.body_len));
          t.body_len <- -1;
          t.body_got <- 0
        end
      end
    done;
    List.rev !events

  let feed_string t s =
    let b = Bytes.unsafe_of_string s in
    feed t b 0 (Bytes.length b)
end
