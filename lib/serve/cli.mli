(** Shared command-line plumbing for every binary in the project.

    [bin/lookahead_opt], [bin/lookahead_serve] and the bench harness
    all speak the same dialect: [-j]/[--jobs] (with the
    [LOOKAHEAD_JOBS] fallback inside [lib/par]), the observation trio
    [--stats]/[--report]/[--trace], deterministic fault injection
    [--inject], the lookahead [--time-limit], and a common way of
    naming a circuit source. This module is the single home for both
    the Cmdliner terms (for the real CLIs) and the argv strippers (for
    the bench harness, which parses by hand). *)

(** {1 Logging} *)

val setup_logs : bool -> unit

(** {1 Worker domains} *)

val jobs_term : int Cmdliner.Term.t

(** [setup_jobs n] sizes the shared pool when [n > 0]; [0] keeps the
    automatic default ([LOOKAHEAD_JOBS] or the recommended domain
    count). Call from the main domain, before any pool use. *)
val setup_jobs : int -> unit

(** {1 Observation}

    Any enabled flag switches recording on; export happens once, after
    the work. *)

type obs_flags = {
  stats : bool;
  report : string option;
  trace : string option;
  journal : string option;
}

val stats_term : bool Cmdliner.Term.t
val report_term : string option Cmdliner.Term.t
val trace_term : string option Cmdliner.Term.t
val journal_term : string option Cmdliner.Term.t

(** Any set flag enables recording plus the GC probe; [journal] also
    opens the JSONL journal sink. *)
val setup_obs : obs_flags -> unit

(** Snapshot and export per the flags (summary to stderr, report/trace
    JSON to their files). *)
val finish_obs : obs_flags -> unit

(** {1 Fault injection} *)

val inject_term : string option Cmdliner.Term.t

(** Arm the spec, or exit 2 with a [prog: --inject: reason] message on
    a parse error. [None] leaves injection untouched. *)
val setup_inject : prog:string -> string option -> unit

(** {1 Lookahead time limit} *)

val time_limit_term : float option Cmdliner.Term.t

(** Driver options with the [--time-limit] convention applied:
    [None] keeps the default budget, [Some 0.] (or negative) disables
    the anytime deadline, positive sets it. *)
val driver_options :
  ?time_limit:float -> unit -> Lookahead.Driver.options

(** {1 Portfolio mode} *)

val portfolio_term : bool Cmdliner.Term.t
val cost_term : string option Cmdliner.Term.t

(** Fold [--portfolio]/[--cost] into the [-t] tool name, yielding the
    canonical wire spec ([portfolio:delay], [egraph:area], ...); exits 2
    with a [prog: ...] message on an unknown cost, a cost that
    contradicts an inline [:COST] suffix, a [--cost] on a tool that
    takes none, or an unknown tool. *)
val resolve_tool :
  prog:string -> portfolio:bool -> cost:string option -> string -> string

(** {1 Circuit sources} *)

type source_cli =
  | Named of string
  | Blif_file of string
  | Bench_file of string
  | Adder of string * int

val circuit_term : string option Cmdliner.Term.t
val blif_term : string option Cmdliner.Term.t
val bench_term : string option Cmdliner.Term.t
val adder_term : (string * int) option Cmdliner.Term.t

(** Combine the four source flags; more than one raises
    [Invalid_argument]. [default] stands in when none is given. *)
val resolve_source :
  ?default:source_cli ->
  string option ->
  string option ->
  string option ->
  (string * int) option ->
  source_cli

val source_cli_name : source_cli -> string

(** Build the circuit locally (reads BLIF/BENCH files). *)
val load_source_cli : source_cli -> Aig.t

(** The wire form: file sources are read and inlined, so the server
    never needs the client's filesystem. *)
val msg_source_of_cli : source_cli -> Msg.source

(** {1 Argv strippers (bench harness)}

    Each consumes its flags anywhere in the argument list, applies the
    side effect, and returns the remaining arguments. Errors print
    [prog: ...] and exit 2 — the pre-existing bench behaviour. *)

val strip_jobs : prog:string -> string list -> string list
val strip_obs : prog:string -> string list -> string list * obs_flags
val strip_inject : prog:string -> string list -> string list

(** {1 Small helpers} *)

val write_file : string -> string -> unit
val read_file : string -> string
