(* Socket front end. See server.mli.

   Threading: this loop owns every connection structure; the engine's
   executor (and, for progress events, any Par worker) only touches the
   [outbox] — a mutex-protected list of (tenant, response) pairs — and
   then pokes the self-pipe so a blocked [select] wakes up and flushes.
   That keeps all socket I/O single-threaded with no locks on the hot
   read path. *)

type listen = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : listen;
  queue_capacity : int;
  max_frame : int;
  reuse_managers : bool;
  journal : string option;
  journal_max_bytes : int;
  slo : (string * float) list;
}

let default_config listen =
  {
    listen;
    queue_capacity = 256;
    max_frame = Frame.max_frame_default;
    reuse_managers = true;
    journal = None;
    journal_max_bytes = 8 * 1024 * 1024;
    slo = [];
  }

type conn = {
  fd : Unix.file_descr;
  tenant : int;
  decoder : Frame.Decoder.t;
  outbuf : Buffer.t;
  mutable out_off : int; (* bytes of [outbuf] already written *)
  mutable alive : bool;
}

type state = {
  config : config;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  conns : (int, conn) Hashtbl.t;
  mutable next_tenant : int;
  outbox_lock : Mutex.t;
  mutable outbox : (int * Msg.response) list; (* newest first *)
  mutable engine : Engine.t option;
  mutable draining : bool;
}

let log = Logs.Src.create "serve" ~doc:"synthesis job server"

module Log = (val Logs.src_log log)

(* --- engine -> loop hand-off ------------------------------------------ *)

let wake st =
  (* A full pipe already wakes the loop; ignore EAGAIN and races with
     shutdown. *)
  try ignore (Unix.write st.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

let post st tenant resp =
  Mutex.lock st.outbox_lock;
  st.outbox <- (tenant, resp) :: st.outbox;
  Mutex.unlock st.outbox_lock;
  wake st

let drain_outbox st =
  Mutex.lock st.outbox_lock;
  let pending = List.rev st.outbox in
  st.outbox <- [];
  Mutex.unlock st.outbox_lock;
  pending

(* --- per-connection output -------------------------------------------- *)

let queue_response conn resp =
  Frame.write conn.outbuf (Msg.encode_response resp)

let try_flush conn =
  let len = Buffer.length conn.outbuf - conn.out_off in
  if len > 0 then begin
    let chunk = Buffer.to_bytes conn.outbuf in
    match Unix.write conn.fd chunk conn.out_off len with
    | n ->
      conn.out_off <- conn.out_off + n;
      if conn.out_off = Buffer.length conn.outbuf then begin
        Buffer.clear conn.outbuf;
        conn.out_off <- 0
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ()
    | exception Unix.Unix_error _ -> conn.alive <- false
  end

let has_backlog conn = Buffer.length conn.outbuf > conn.out_off

(* --- request handling -------------------------------------------------- *)

let handle_request st conn (req : Msg.request) =
  let engine = Option.get st.engine in
  match req with
  | Msg.Submit spec -> (
    match Engine.submit engine ~tenant:conn.tenant spec with
    | Ok (id, position) -> queue_response conn (Msg.Submitted { id; position })
    | Error (code, message) ->
      queue_response conn (Msg.Error_reply { code; message }))
  | Msg.Status id -> (
    match Engine.status engine id with
    | Some (state, position) ->
      queue_response conn (Msg.Job_status { id; state; position })
    | None ->
      queue_response conn
        (Msg.Error_reply
           { code = "unknown_job"; message = Printf.sprintf "no job %d" id }))
  | Msg.Cancel id -> (
    match Engine.cancel engine ~tenant:conn.tenant id with
    | Ok state ->
      queue_response conn (Msg.Job_status { id; state; position = None })
    | Error (code, message) ->
      queue_response conn (Msg.Error_reply { code; message }))
  | Msg.Stats -> queue_response conn (Msg.Stats_reply (Engine.stats engine))
  | Msg.Metrics ->
    let text, json = Engine.metrics engine in
    queue_response conn (Msg.Metrics_reply { text; json })
  | Msg.Trace id -> (
    match Engine.job_trace engine id with
    | Some trace -> queue_response conn (Msg.Trace_reply { id; trace })
    | None ->
      queue_response conn
        (Msg.Error_reply
           {
             code = "no_trace";
             message =
               Printf.sprintf
                 "no retained trace for job %d (unknown or evicted)" id;
           }))
  | Msg.Shutdown ->
    Log.info (fun m -> m "shutdown requested by tenant %d" conn.tenant);
    st.draining <- true;
    Engine.begin_shutdown engine;
    queue_response conn Msg.Shutdown_ack

let handle_frame st conn = function
  | Frame.Decoder.Frame payload -> (
    match Msg.request_of_string payload with
    | Ok req -> handle_request st conn req
    | Error (code, message) ->
      queue_response conn (Msg.Error_reply { code; message }))
  | Frame.Decoder.Oversized n ->
    queue_response conn
      (Msg.Error_reply
         {
           code = "oversized";
           message =
             Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
               st.config.max_frame;
         })
  | Frame.Decoder.Corrupt message ->
    queue_response conn (Msg.Error_reply { code = "parse"; message });
    conn.alive <- false

(* --- connection lifecycle ---------------------------------------------- *)

let accept_conn st =
  match Unix.accept st.listen_fd with
  | fd, _ ->
    Unix.set_nonblock fd;
    let tenant = st.next_tenant in
    st.next_tenant <- tenant + 1;
    Hashtbl.replace st.conns tenant
      {
        fd;
        tenant;
        decoder = Frame.Decoder.create ~max_frame:st.config.max_frame ();
        outbuf = Buffer.create 4096;
        out_off = 0;
        alive = true;
      };
    Log.debug (fun m -> m "tenant %d connected" tenant)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let close_conn st conn =
  conn.alive <- false;
  Hashtbl.remove st.conns conn.tenant;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  (* The tenant is gone: cancel everything it still owns. The running
     job observes the cancelled deadline at its next guard check. *)
  Option.iter (fun e -> Engine.drop_tenant e conn.tenant) st.engine;
  Log.debug (fun m -> m "tenant %d disconnected" conn.tenant)

let read_buf = Bytes.create 65536

let handle_readable st conn =
  match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
  | 0 -> close_conn st conn
  | n ->
    List.iter (handle_frame st conn) (Frame.Decoder.feed conn.decoder read_buf 0 n);
    if not conn.alive then close_conn st conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn st conn

(* --- main loop ---------------------------------------------------------- *)

let bind_listen = function
  | `Unix path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | `Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let addr = (Unix.gethostbyname host).Unix.h_addr_list.(0) in
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64;
    fd

let run ?(ready = fun () -> ()) config =
  let listen_fd = bind_listen config.listen in
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  let st =
    {
      config;
      listen_fd;
      wake_r;
      wake_w;
      conns = Hashtbl.create 16;
      next_tenant = 1;
      outbox_lock = Mutex.create ();
      outbox = [];
      engine = None;
      draining = false;
    }
  in
  (* The journal is server-lifetime state: enabled before the engine
     starts so admission events of the very first job are captured. *)
  (match config.journal with
  | Some file ->
    Obs.Journal.enable ~file ~file_max_bytes:config.journal_max_bytes ()
  | None -> ());
  let engine =
    Engine.create
      ~on_event:(fun ev ->
        match ev with
        | Engine.Job_done { tenant; result } ->
          post st tenant (Msg.Result result)
        | Engine.Job_progress { tenant; id; phase; seq } ->
          post st tenant (Msg.Progress { id; phase; seq }))
      ~slo:config.slo
      {
        Engine.queue_capacity = config.queue_capacity;
        reuse_managers = config.reuse_managers;
      }
  in
  st.engine <- Some engine;
  Engine.start engine;
  ready ();
  let finished () =
    st.draining
    && Engine.idle engine
    && Hashtbl.fold (fun _ c acc -> acc && not (has_backlog c)) st.conns true
  in
  let drain_wake () =
    let b = Bytes.create 256 in
    let rec go () =
      match Unix.read st.wake_r b 0 256 with
      | 256 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
    in
    go ()
  in
  let rec loop () =
    if finished () then ()
    else begin
      let conns = Hashtbl.fold (fun _ c acc -> c :: acc) st.conns [] in
      let reads =
        st.wake_r :: st.listen_fd :: List.map (fun c -> c.fd) conns
      in
      let writes =
        List.filter_map
          (fun c -> if has_backlog c then Some c.fd else None)
          conns
      in
      (match Unix.select reads writes [] 1.0 with
      | rs, ws, _ ->
        if List.mem st.wake_r rs then drain_wake ();
        if List.mem st.listen_fd rs then accept_conn st;
        List.iter
          (fun c ->
            if c.alive && List.mem c.fd rs then handle_readable st c)
          conns;
        (* Engine events: route each response to its tenant's
           connection (silently dropped if the tenant vanished). *)
        List.iter
          (fun (tenant, resp) ->
            match Hashtbl.find_opt st.conns tenant with
            | Some c -> queue_response c resp
            | None -> ())
          (drain_outbox st);
        List.iter
          (fun c ->
            if c.alive && (List.mem c.fd ws || has_backlog c) then
              try_flush c)
          conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  Engine.stop engine;
  if config.journal <> None then Obs.Journal.disable ();
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    st.conns;
  Unix.close st.listen_fd;
  Unix.close st.wake_r;
  Unix.close st.wake_w;
  match config.listen with
  | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | `Tcp _ -> ()
