(* Shared CLI plumbing. See cli.mli. The terms are verbatim what
   bin/lookahead_opt.ml grew organically; the strippers are what
   bench/main.ml grew; both now live here so the server binary gets
   them for free and the three front ends cannot drift. *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

(* --- worker domains ------------------------------------------------- *)

let jobs_term =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel runtime (0 = automatic, from \
           $(b,LOOKAHEAD_JOBS) or the recommended domain count; 1 bypasses \
           the pool).")

let setup_jobs jobs = if jobs > 0 then Par.set_default_jobs jobs

(* --- observation ----------------------------------------------------- *)

type obs_flags = {
  stats : bool;
  report : string option;
  trace : string option;
  journal : string option;
}

let stats_term =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the observation summary (work counters, phase wall-clocks) \
           to stderr.")

let report_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:
          "Write the observation report as JSON. Its $(b,deterministic) \
           subtree is bit-identical at any $(b,-j) for deadline-free runs \
           (see $(b,--time-limit)).")

let trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event file (open in Perfetto or \
           chrome://tracing).")

let journal_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Append the structured job journal as JSONL (one event per \
           line, size-rotated; see $(b,Obs.Journal)). Implies recording.")

let setup_obs { stats; report; trace; journal } =
  if stats || report <> None || trace <> None || journal <> None then begin
    Obs.enable ();
    Obs.register_gc_probe ()
  end;
  match journal with
  | Some file -> Obs.Journal.enable ~file ()
  | None -> ()

let finish_obs { stats; report; trace; journal } =
  if journal <> None then Obs.Journal.disable ();
  if Obs.enabled () then begin
    let snap = Obs.snapshot () in
    (match report with
    | Some path ->
      write_file path (Obs.Json.to_string (Obs.report_json snap) ^ "\n")
    | None -> ());
    (match trace with
    | Some path ->
      write_file path (Obs.Json.to_string (Obs.trace_json snap) ^ "\n")
    | None -> ());
    if stats then Obs.pp_summary Format.err_formatter snap
  end

(* --- fault injection -------------------------------------------------- *)

let inject_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"SPEC"
        ~doc:
          "Arm deterministic fault injection: comma-separated rules \
           $(i,fault)@$(i,N)[:r][:$(i,site)] with $(i,fault) one of \
           $(b,bdd), $(b,sat) or $(b,deadline) — fire at the N-th guarded \
           call of that class per governed unit ($(b,:r) repeats at every \
           multiple). The run completes, degraded: each fired fault walks \
           the degradation ladder and is recorded under the \
           $(b,guard.injected.*) / $(b,guard.rung.*) report counters.")

let setup_inject ~prog = function
  | None -> ()
  | Some spec -> (
    match Guard.Inject.of_string spec with
    | Ok rules -> Guard.Inject.arm rules
    | Error msg ->
      Printf.eprintf "%s: --inject: %s\n%!" prog msg;
      exit 2)

(* --- lookahead time limit --------------------------------------------- *)

let time_limit_term =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-limit" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget for the lookahead optimizer; 0 disables the \
           anytime deadline entirely. Default: the driver's built-in \
           budget. Identity-checked runs (comparing $(b,--report) output \
           across $(b,-j)) should pass 0 — a deadline cut depends on \
           scheduling.")

let driver_options ?time_limit () =
  match time_limit with
  | None -> Lookahead.Driver.default
  | Some s ->
    {
      Lookahead.Driver.default with
      time_limit_s = (if s <= 0.0 then infinity else s);
    }

(* --- portfolio mode ---------------------------------------------------- *)

let portfolio_term =
  Arg.(
    value & flag
    & info [ "portfolio" ]
        ~doc:
          "Run every optimizer as a parallel arm (baselines, lookahead, \
           e-graph saturation) and keep the best result under \
           $(b,--cost); shorthand for $(b,-t portfolio[:COST]).")

let cost_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "cost" ] ~docv:"FN"
        ~doc:
          (Printf.sprintf
             "Cost function for $(b,--portfolio) and the $(b,egraph) tool: \
              one of %s. Default: levels."
             (String.concat ", " Egraph.Cost.names)))

let resolve_tool ~prog ~portfolio ~cost tool =
  let err fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "%s: %s\n%!" prog msg;
        exit 2)
      fmt
  in
  (match cost with
  | Some name when Egraph.Cost.of_name name = None ->
    err "--cost: unknown cost function %S (expected one of %s)" name
      (String.concat ", " Egraph.Cost.names)
  | _ -> ());
  let base, inline_cost = Run.split_tool tool in
  let base = if portfolio then "portfolio" else base in
  (match (cost, inline_cost) with
  | Some a, Some b when not (String.equal a b) ->
    err "--cost %s conflicts with tool suffix %S" a tool
  | _ -> ());
  let cost = match cost with Some _ -> cost | None -> inline_cost in
  let spec =
    match cost with
    | Some name when base = "portfolio" || base = "egraph" ->
      base ^ ":" ^ name
    | Some name -> err "--cost %s only applies to portfolio/egraph runs" name
    | None -> base
  in
  if not (Run.tool_known spec) then err "unknown tool %S" spec;
  spec

(* --- circuit sources --------------------------------------------------- *)

type source_cli =
  | Named of string
  | Blif_file of string
  | Bench_file of string
  | Adder of string * int

let circuit_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "c"; "circuit" ] ~docv:"NAME"
        ~doc:"Benchmark stand-in from the Table 2 suite.")

let blif_term =
  Arg.(
    value
    & opt (some file) None
    & info [ "blif" ] ~docv:"FILE" ~doc:"Read the circuit from a BLIF file.")

let bench_term =
  Arg.(
    value
    & opt (some file) None
    & info [ "bench" ] ~docv:"FILE"
        ~doc:"Read the circuit from an ISCAS BENCH file.")

let adder_term =
  Arg.(
    value
    & opt (some (pair ~sep:':' string int)) None
    & info [ "adder" ] ~docv:"KIND:N"
        ~doc:"Generate an adder (ripple|cla|select|skip), e.g. ripple:16.")

let resolve_source ?default circuit blif bench adder =
  match (circuit, blif, bench, adder, default) with
  | Some n, None, None, None, _ -> Named n
  | None, Some f, None, None, _ -> Blif_file f
  | None, None, Some f, None, _ -> Bench_file f
  | None, None, None, Some (k, n), _ -> Adder (k, n)
  | None, None, None, None, Some d -> d
  | None, None, None, None, None ->
    invalid_arg "a circuit source is required"
  | _ -> invalid_arg "choose exactly one circuit source"

let source_cli_name = function
  | Named n -> n
  | Blif_file f | Bench_file f -> Filename.basename f
  | Adder (k, n) -> Printf.sprintf "%s-adder-%d" k n

let build_adder kind n =
  match kind with
  | "ripple" -> Circuits.Adders.ripple_carry n
  | "cla" -> Circuits.Adders.carry_lookahead n
  | "select" -> Circuits.Adders.carry_select n
  | "skip" -> Circuits.Adders.carry_skip n
  | k -> invalid_arg (Printf.sprintf "unknown adder kind %s" k)

let load_source_cli = function
  | Named name -> Circuits.Suite.build name
  | Blif_file path -> Aig.Io.read_blif (read_file path)
  | Bench_file path -> Aig.Io.read_bench (read_file path)
  | Adder (kind, n) -> build_adder kind n

let msg_source_of_cli = function
  | Named n -> Msg.Named n
  | Blif_file path ->
    Msg.Blif { name = Filename.basename path; text = read_file path }
  | Bench_file path ->
    Msg.Bench { name = Filename.basename path; text = read_file path }
  | Adder (kind, n) -> Msg.Adder { kind; bits = n }

(* --- argv strippers (bench harness) ------------------------------------ *)

let strip_jobs ~prog args =
  let rec go = function
    | ("-j" | "--jobs") :: n :: rest -> (
      match int_of_string_opt n with
      | Some j ->
        Par.set_default_jobs j;
        go rest
      | None ->
        Printf.eprintf "%s: -j: invalid value '%s', expected an integer\n"
          prog n;
        exit 2)
    | [ ("-j" | "--jobs") ] ->
      Printf.eprintf "%s: -j requires a value\n" prog;
      exit 2
    | arg :: rest
      when String.length arg > 2
           && String.sub arg 0 2 = "-j"
           && int_of_string_opt (String.sub arg 2 (String.length arg - 2))
              <> None ->
      Par.set_default_jobs
        (int_of_string (String.sub arg 2 (String.length arg - 2)));
      go rest
    | arg :: rest -> arg :: go rest
    | [] -> []
  in
  go args

let strip_obs ~prog args =
  let stats = ref false in
  let report = ref None in
  let trace = ref None in
  let journal = ref None in
  let rec go = function
    | "--stats" :: rest ->
      stats := true;
      go rest
    | "--report" :: path :: rest ->
      report := Some path;
      go rest
    | "--trace" :: path :: rest ->
      trace := Some path;
      go rest
    | "--journal" :: path :: rest ->
      journal := Some path;
      go rest
    | [ ("--report" | "--trace" | "--journal") ] ->
      Printf.eprintf
        "%s: --report/--trace/--journal require a file argument\n" prog;
      exit 2
    | arg :: rest -> arg :: go rest
    | [] -> []
  in
  let rest = go args in
  ( rest,
    { stats = !stats; report = !report; trace = !trace; journal = !journal } )

let strip_inject ~prog args =
  let rec go = function
    | "--inject" :: spec :: rest -> (
      match Guard.Inject.of_string spec with
      | Ok rules ->
        Guard.Inject.arm rules;
        go rest
      | Error msg ->
        Printf.eprintf "%s: --inject: %s\n" prog msg;
        exit 2)
    | [ "--inject" ] ->
      Printf.eprintf "%s: --inject requires a spec argument\n" prog;
      exit 2
    | arg :: rest -> arg :: go rest
    | [] -> []
  in
  go args
