(** The socket front end: a single-threaded [select] loop speaking the
    {!Frame}/{!Msg} protocol over a Unix-domain or TCP socket, with the
    {!Engine} doing the work on its executor domain.

    One connection = one tenant. Responses to a connection's requests,
    progress events and results of its jobs are written back on that
    connection; a disconnect cancels every job the tenant still owns
    (queued jobs immediately, the running job via
    {!Guard.Deadline.cancel} at its next cancellation point).

    A [shutdown] request drains: no new submissions are admitted,
    queued and running jobs finish and deliver, then the server closes
    every connection and returns from {!run}. *)

type listen = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : listen;
  queue_capacity : int;
  max_frame : int;
  reuse_managers : bool;
  journal : string option;
      (** JSONL journal file ({!Obs.Journal}); [None] = journaling off *)
  journal_max_bytes : int;  (** file-sink rotation threshold *)
  slo : (string * float) list;
      (** per-size-class run-latency objectives, milliseconds *)
}

val default_config : listen -> config

(** Serve until a [shutdown] request completes. Binds the socket
    (unlinking a stale Unix path first), spawns the engine executor,
    and blocks. [ready] fires once the socket is listening — an
    in-process harness uses it to know when to connect. *)
val run : ?ready:(unit -> unit) -> config -> unit
