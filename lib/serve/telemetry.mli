(** Cumulative server telemetry for the synthesis job engine.

    One [t] lives for the lifetime of an {!Engine}: every admission,
    rejection, cancellation and completed job is recorded into
    size-classed log-bucketed latency histograms, per-tenant counters,
    a cumulative fold of per-job {!Obs} counters, and rolling SLO
    windows. {!exposition} renders it all as Prometheus-style text
    (plus a JSON mirror) for the [Metrics] protocol request.

    All of this is [Sched] data — wall-clock latencies and admission
    order are scheduling-shaped — so nothing here participates in the
    determinism contract. The {e renderer} is deterministic, though:
    given the same recorded observations, {!exposition} produces
    byte-identical text (the golden format test relies on this). *)

type t

(** [create ~slo ~window ()] — [slo] maps size classes to run-latency
    objectives in milliseconds (see {!parse_slo}); [window] is the
    rolling SLO window length in completed jobs (default 100). *)
val create : ?slo:(string * float) list -> ?window:int -> unit -> t

(** The five job size classes by reachable AND-gate count:
    [xs] < 64, [s] < 256, [m] < 1024, [l] < 4096, [xl] otherwise —
    the [BENCH_serve.json] workload mix spans all of them. *)
val size_class : gates:int -> string

val size_classes : string list

(** Parse an [--slo] spec, e.g. ["s=200,m=1000"] (class=milliseconds,
    comma-separated). *)
val parse_slo : string -> ((string * float) list, string) result

(** All recording is thread-safe (one mutex; recording is far off any
    hot path — once per job lifecycle event). *)

val record_admit : t -> tenant:int -> unit

val record_reject : t -> tenant:int -> unit

val record_cancel : t -> tenant:int -> unit

(** [record_result t ~cls ~state ~wait_ms ~run_ms] records a finished
    job: final state ([done]/[failed]/[cancelled]), queue wait and run
    latency. The SLO breach test applies the class objective to
    [run_ms]. *)
val record_result :
  t -> cls:string -> state:string -> wait_ms:float -> run_ms:float -> unit

(** Fold a finished job's counter values (from {!Obs.counters}) into
    the cumulative totals exposed as [lookahead_obs_total]. *)
val absorb_counters : t -> (string * int) list -> unit

(** Rolling SLO health per class, for [Stats_reply]. Classes with no
    jobs and no objective are omitted. *)
val slo_report : t -> Msg.slo_stat list

(** [exposition t ~gauges] renders the Prometheus-style text and its
    JSON mirror. [gauges] injects live engine values as
    [(name, help, value)] — each becomes a [lookahead_<name>] gauge
    family. *)
val exposition :
  t -> gauges:(string * string * float) list -> string * Obs.Json.t
