(* Cumulative server-side telemetry: size-classed latency histograms
   with interpolated quantiles, per-tenant admission outcomes, SLO
   burn tracking, and a Prometheus-style text exposition (plus a JSON
   mirror). See telemetry.mli.

   Everything here is Sched data — wall-clock latencies, admission
   order, tenant behaviour — so none of it participates in the
   determinism contract. What IS deterministic is the exposition
   builder itself: given the same recorded observations it produces
   byte-identical text (all iteration is over sorted keys), which is
   what the golden format test pins down. *)

module J = Obs.Json

(* --- size classes --------------------------------------------------- *)

let size_classes = [ "xs"; "s"; "m"; "l"; "xl" ]

let size_class ~gates =
  if gates < 64 then "xs"
  else if gates < 256 then "s"
  else if gates < 1024 then "m"
  else if gates < 4096 then "l"
  else "xl"

(* --- log-bucketed latency histograms ------------------------------- *)

(* Bucket [0] covers [0, 1] ms; bucket [i >= 1] covers (2^(i-1), 2^i];
   the last bucket is the +Inf overflow. 2^26 ms ≈ 18.6 h, far beyond
   any job this service runs. *)
let nbounds = 27

type hist = {
  buckets : int array; (* nbounds + 1 slots, last = overflow *)
  mutable count : int;
  mutable sum_ms : float;
}

let hist_create () =
  { buckets = Array.make (nbounds + 1) 0; count = 0; sum_ms = 0.0 }

let bound_ms i = float_of_int (1 lsl i)

let bucket_of_ms v =
  let rec go i =
    if i >= nbounds then nbounds else if v <= bound_ms i then i else go (i + 1)
  in
  go 0

let hist_observe h v =
  let v = if v < 0.0 then 0.0 else v in
  let i = bucket_of_ms v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.count <- h.count + 1;
  h.sum_ms <- h.sum_ms +. v

(* Linear interpolation inside the bucket holding rank [q * count].
   The estimate always lands in the same power-of-two bucket as the
   exact order statistic, so it is within a factor of 2 of it (and in
   practice much closer). *)
let quantile h q =
  if h.count = 0 then 0.0
  else begin
    let rank = q *. float_of_int h.count in
    let rec go i cum =
      if i > nbounds then bound_ms nbounds
      else
        let c = h.buckets.(i) in
        if c > 0 && float_of_int (cum + c) >= rank then begin
          let lo = if i = 0 then 0.0 else bound_ms (i - 1) in
          let hi = if i = nbounds then 2.0 *. lo else bound_ms i in
          lo +. ((hi -. lo) *. (rank -. float_of_int cum) /. float_of_int c)
        end
        else go (i + 1) (cum + c)
    in
    go 0 0
  end

(* --- SLO objectives ------------------------------------------------- *)

let parse_slo spec =
  let items = String.split_on_char ',' (String.trim spec) in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go acc rest
    | item :: rest -> (
      match String.index_opt item '=' with
      | None -> Error (Printf.sprintf "bad SLO item %S, want CLASS=MS" item)
      | Some eq ->
        let cls = String.trim (String.sub item 0 eq) in
        let v =
          String.trim
            (String.sub item (eq + 1) (String.length item - eq - 1))
        in
        if not (List.mem cls size_classes) then
          Error
            (Printf.sprintf "unknown size class %S (want %s)" cls
               (String.concat "|" size_classes))
        else
          match float_of_string_opt v with
          | Some ms when ms > 0.0 -> go ((cls, ms) :: acc) rest
          | _ -> Error (Printf.sprintf "bad SLO objective %S for %S" v cls))
  in
  go [] items

(* --- state ----------------------------------------------------------- *)

type class_state = {
  cs_cls : string;
  cs_objective_ms : float; (* 0 = no objective configured *)
  cs_run : hist;
  mutable cs_jobs : int;
  mutable cs_breaches : int;
  cs_window : bool array; (* rolling breach flags, newest overwrites *)
  mutable cs_w_idx : int;
  mutable cs_w_fill : int;
}

type tenant_state = {
  mutable t_admitted : int;
  mutable t_rejected : int;
  mutable t_cancelled : int;
}

type t = {
  lock : Mutex.t;
  classes : (string * class_state) list; (* fixed order: size_classes *)
  wait : hist;
  states : (string, int) Hashtbl.t;
  tenants : (int, tenant_state) Hashtbl.t;
  obs_totals : (string, int) Hashtbl.t;
}

let create ?(slo = []) ?(window = 100) () =
  let classes =
    List.map
      (fun cls ->
        ( cls,
          {
            cs_cls = cls;
            cs_objective_ms =
              (match List.assoc_opt cls slo with Some ms -> ms | None -> 0.0);
            cs_run = hist_create ();
            cs_jobs = 0;
            cs_breaches = 0;
            cs_window = Array.make (max 1 window) false;
            cs_w_idx = 0;
            cs_w_fill = 0;
          } ))
      size_classes
  in
  {
    lock = Mutex.create ();
    classes;
    wait = hist_create ();
    states = Hashtbl.create 8;
    tenants = Hashtbl.create 8;
    obs_totals = Hashtbl.create 64;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let tenant_state t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some ts -> ts
  | None ->
    let ts = { t_admitted = 0; t_rejected = 0; t_cancelled = 0 } in
    Hashtbl.replace t.tenants tenant ts;
    ts

let record_admit t ~tenant =
  locked t (fun () ->
      let ts = tenant_state t tenant in
      ts.t_admitted <- ts.t_admitted + 1)

let record_reject t ~tenant =
  locked t (fun () ->
      let ts = tenant_state t tenant in
      ts.t_rejected <- ts.t_rejected + 1)

let record_cancel t ~tenant =
  locked t (fun () ->
      let ts = tenant_state t tenant in
      ts.t_cancelled <- ts.t_cancelled + 1)

let record_result t ~cls ~state ~wait_ms ~run_ms =
  locked t (fun () ->
      Hashtbl.replace t.states state
        (1 + Option.value (Hashtbl.find_opt t.states state) ~default:0);
      hist_observe t.wait wait_ms;
      match List.assoc_opt cls t.classes with
      | None -> ()
      | Some cs ->
        cs.cs_jobs <- cs.cs_jobs + 1;
        hist_observe cs.cs_run run_ms;
        let breach =
          cs.cs_objective_ms > 0.0 && run_ms > cs.cs_objective_ms
        in
        if breach then cs.cs_breaches <- cs.cs_breaches + 1;
        let n = Array.length cs.cs_window in
        cs.cs_window.(cs.cs_w_idx) <- breach;
        cs.cs_w_idx <- (cs.cs_w_idx + 1) mod n;
        cs.cs_w_fill <- min (cs.cs_w_fill + 1) n)

let absorb_counters t counters =
  locked t (fun () ->
      List.iter
        (fun (name, v) ->
          if v <> 0 then
            Hashtbl.replace t.obs_totals name
              (v + Option.value (Hashtbl.find_opt t.obs_totals name) ~default:0))
        counters)

(* Call with the lock held. *)
let window_breaches_locked cs =
  let n = ref 0 in
  for i = 0 to cs.cs_w_fill - 1 do
    if cs.cs_window.(i) then n := !n + 1
  done;
  !n

let slo_report t =
  locked t (fun () ->
      List.filter_map
        (fun (_, cs) ->
          if cs.cs_jobs = 0 && cs.cs_objective_ms = 0.0 then None
          else
            Some
              {
                Msg.cls = cs.cs_cls;
                objective_ms = cs.cs_objective_ms;
                jobs = cs.cs_jobs;
                breaches = cs.cs_breaches;
                window = cs.cs_w_fill;
                window_breaches = window_breaches_locked cs;
                p50_ms = quantile cs.cs_run 0.50;
                p95_ms = quantile cs.cs_run 0.95;
                p99_ms = quantile cs.cs_run 0.99;
              })
        t.classes)

(* --- exposition ------------------------------------------------------ *)

(* Prometheus sample values: integers print bare, everything else in
   shortest-%g form — stable, locale-free, golden-testable. *)
let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let sorted_hashtbl tbl compare_key =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)

let render_labels = function
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) kvs)
    ^ "}"

let add_family b ~name ~help ~typ samples =
  if samples <> [] then begin
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ);
    List.iter
      (fun (labels, v) ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" name (render_labels labels) v))
      samples
  end

(* One Prometheus histogram family: [# TYPE name histogram], then per
   labeled series the cumulative [name_bucket{...,le=...}] samples up
   to the first bound that already covers every observation, the
   mandatory [le="+Inf"] bucket, and [name_sum] / [name_count]. *)
let add_hist b ~name ~help series =
  if series <> [] then begin
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" name);
    List.iter
      (fun (labels, h) ->
        let cum = ref 0 in
        let i = ref 0 in
        let continue = ref (h.count > 0) in
        while !continue && !i < nbounds do
          cum := !cum + h.buckets.(!i);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" name
               (render_labels (labels @ [ ("le", fnum (bound_ms !i)) ]))
               !cum);
          if !cum = h.count then continue := false;
          i := !i + 1
        done;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket%s %d\n" name
             (render_labels (labels @ [ ("le", "+Inf") ]))
             h.count);
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels)
             (fnum h.sum_ms));
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" name (render_labels labels)
             h.count))
      series
  end

let hist_json h =
  J.Obj
    [
      ("count", J.Int h.count);
      ("sum_ms", J.Float h.sum_ms);
      ("p50_ms", J.Float (quantile h 0.50));
      ("p95_ms", J.Float (quantile h 0.95));
      ("p99_ms", J.Float (quantile h 0.99));
    ]

let exposition t ~gauges =
  locked t (fun () ->
      let b = Buffer.create 4096 in
      (* Job outcomes. *)
      let states = sorted_hashtbl t.states String.compare in
      add_family b ~name:"lookahead_jobs_total"
        ~help:"Completed jobs by final state." ~typ:"counter"
        (List.map
           (fun (s, n) -> ([ ("state", s) ], string_of_int n))
           states);
      (* Per-tenant admission outcomes. *)
      let tenants = sorted_hashtbl t.tenants compare in
      add_family b ~name:"lookahead_tenant_jobs_total"
        ~help:"Per-tenant admission outcomes." ~typ:"counter"
        (List.concat_map
           (fun (tid, ts) ->
             let t = string_of_int tid in
             [
               ([ ("tenant", t); ("event", "admitted") ],
                string_of_int ts.t_admitted);
               ([ ("tenant", t); ("event", "rejected") ],
                string_of_int ts.t_rejected);
               ([ ("tenant", t); ("event", "cancelled") ],
                string_of_int ts.t_cancelled);
             ])
           tenants);
      (* Queue wait. *)
      if t.wait.count > 0 then
        add_hist b ~name:"lookahead_queue_wait_ms"
          ~help:"Queue wait, admission to start, milliseconds."
          [ ([], t.wait) ];
      (* Per-class run latency. *)
      let active =
        List.filter (fun (_, cs) -> cs.cs_jobs > 0) t.classes
      in
      add_hist b ~name:"lookahead_job_run_ms"
        ~help:"Job execution wall clock by size class, milliseconds."
        (List.map (fun (cls, cs) -> ([ ("class", cls) ], cs.cs_run)) active);
      add_family b ~name:"lookahead_job_run_ms_quantile"
        ~help:"Interpolated run-latency quantiles by size class."
        ~typ:"gauge"
        (List.concat_map
           (fun (cls, cs) ->
             List.map
               (fun (q, qv) ->
                 ([ ("class", cls); ("q", q) ], fnum (quantile cs.cs_run qv)))
               [ ("0.5", 0.50); ("0.95", 0.95); ("0.99", 0.99) ])
           active);
      (* SLO tracking. *)
      let tracked =
        List.filter (fun (_, cs) -> cs.cs_objective_ms > 0.0) t.classes
      in
      add_family b ~name:"lookahead_slo_objective_ms"
        ~help:"Configured run-latency objective by size class."
        ~typ:"gauge"
        (List.map
           (fun (cls, cs) -> ([ ("class", cls) ], fnum cs.cs_objective_ms))
           tracked);
      add_family b ~name:"lookahead_slo_breaches_total"
        ~help:"Jobs over their class objective since start." ~typ:"counter"
        (List.map
           (fun (cls, cs) -> ([ ("class", cls) ], string_of_int cs.cs_breaches))
           tracked);
      add_family b ~name:"lookahead_slo_window_jobs"
        ~help:"Completed jobs in the rolling SLO window." ~typ:"gauge"
        (List.map
           (fun (cls, cs) -> ([ ("class", cls) ], string_of_int cs.cs_w_fill))
           tracked);
      add_family b ~name:"lookahead_slo_window_breaches"
        ~help:"Objective breaches in the rolling SLO window." ~typ:"gauge"
        (List.map
           (fun (cls, cs) ->
             ([ ("class", cls) ], string_of_int (window_breaches_locked cs)))
           tracked);
      (* Cumulative Obs counters folded over per-job snapshots. *)
      let obs = sorted_hashtbl t.obs_totals String.compare in
      add_family b ~name:"lookahead_obs_total"
        ~help:"Cumulative Obs counters over all completed jobs."
        ~typ:"counter"
        (List.map
           (fun (name, v) -> ([ ("metric", name) ], string_of_int v))
           obs);
      (* Live engine gauges, injected by the caller. *)
      List.iter
        (fun (name, help, v) ->
          add_family b ~name:("lookahead_" ^ name) ~help ~typ:"gauge"
            [ ([], fnum v) ])
        gauges;
      let text = Buffer.contents b in
      let json =
        J.Obj
          [
            ("schema", J.String "lookahead-metrics/1");
            ("jobs",
             J.Obj (List.map (fun (s, n) -> (s, J.Int n)) states));
            ("tenants",
             J.Obj
               (List.map
                  (fun (tid, ts) ->
                    ( string_of_int tid,
                      J.Obj
                        [
                          ("admitted", J.Int ts.t_admitted);
                          ("rejected", J.Int ts.t_rejected);
                          ("cancelled", J.Int ts.t_cancelled);
                        ] ))
                  tenants));
            ("queue_wait_ms", hist_json t.wait);
            ("classes",
             J.Obj
               (List.filter_map
                  (fun (cls, cs) ->
                    if cs.cs_jobs = 0 && cs.cs_objective_ms = 0.0 then None
                    else
                      Some
                        ( cls,
                          J.Obj
                            [
                              ("run_ms", hist_json cs.cs_run);
                              ("objective_ms", J.Float cs.cs_objective_ms);
                              ("breaches", J.Int cs.cs_breaches);
                              ("window", J.Int cs.cs_w_fill);
                              ("window_breaches",
                               J.Int (window_breaches_locked cs));
                            ] ))
                  t.classes));
            ("obs",
             J.Obj (List.map (fun (name, v) -> (name, J.Int v)) obs));
            ("gauges",
             J.Obj
               (List.map (fun (name, _, v) -> (name, J.Float v)) gauges));
          ]
      in
      (text, json))
