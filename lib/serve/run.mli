(** Shared job-execution helpers: the exact operation sequence of a
    one-shot [bin/lookahead_opt] run, as library calls, so the warm
    server and the cold CLI cannot drift apart. Byte-identity between
    the two rests on both sides calling these. *)

(** Build the circuit of a wire source. Raises on unknown names, bad
    adder kinds, or unparsable BLIF/BENCH text. *)
val build_source : Msg.source -> Aig.t

(** The optimizer dispatch of the CLI's [-t] flag. [options] is used by
    the lookahead, egraph and portfolio tools (its budget/deadline
    govern their guards; the baselines take no knobs). [egraph] and
    [portfolio] accept an optional [:COST] suffix naming an
    {!Egraph.Cost} function ([levels] when omitted), e.g.
    ["portfolio:delay"]. Raises [Invalid_argument] on an unknown tool
    or cost name. *)
val tool : options:Lookahead.Driver.options -> string -> Aig.t -> Aig.t

val known_tools : string list

(** Split a tool spec into its base name and optional [:COST] suffix. *)
val split_tool : string -> string * string option

(** Validate a full tool spec — base name plus, for [egraph] and
    [portfolio] only, an optional known [:COST] suffix. This, not
    [List.mem … known_tools], is what {!Engine.validate} consults. *)
val tool_known : string -> bool

(** Measure the Table-2 metric set — same calls, same order, as the
    CLI's report printer. *)
val metrics : original:Aig.t -> Aig.t -> Msg.metrics

(** Pretty-print in the CLI's report format. *)
val pp_metrics :
  circuit:string -> tool:string -> Format.formatter -> Msg.metrics -> unit

(** Whether the snapshot records any degradation-ladder rung or
    injected fault — the "this job degraded" bit of a result. *)
val degraded : Obs.snapshot -> bool

(** Serialize as the CLI's [-o] flag would ([model] = circuit name). *)
val blif_of : name:string -> Aig.t -> string
