(* Job engine. See engine.mli for the model; the short version: one
   executor domain drains a bounded FIFO under a mutex, every job runs
   the exact cold-CLI operation sequence between an Obs.reset and a
   snapshot, and all warm state (interned circuits, pooled BDD
   managers, the enabled Obs runtime) is invisible in results by
   construction. *)

type config = {
  queue_capacity : int;
  reuse_managers : bool;
}

let default_config = { queue_capacity = 256; reuse_managers = true }

type event =
  | Job_done of { tenant : int; result : Msg.result }
  | Job_progress of { tenant : int; id : int; phase : string; seq : int }

type job = {
  id : int;
  tenant : int;
  trace : string; (* "t<tenant>.j<id>", minted at admission *)
  spec : Msg.submit;
  rules : Guard.Inject.rule list; (* [] = no injection *)
  (* Cancellation handle, live from admission. The runner tightens it
     to the job's wall budget via Deadline.bound (same flag), so a
     cancel during the queue wait and a cancel mid-run land the same
     way. *)
  cancel_handle : Guard.Deadline.t;
  enq_ns : int64;
  mutable state : Msg.job_state;
  mutable started_ns : int64;
}

let trace_of ~tenant ~id = Printf.sprintf "t%d.j%d" tenant id

(* How many finished jobs keep their Chrome-trace slice retrievable via
   the [Trace] request. Slices are rendered once, at job completion, on
   the executor domain — the request path only does a list lookup. *)
let trace_keep = 8

type t = {
  config : config;
  lock : Mutex.t;
  cond : Condition.t;
  queue : job Queue.t;
  jobs : (int, job) Hashtbl.t; (* under [lock] *)
  mutable next_id : int;
  mutable accepting : bool;
  mutable stopping : bool;
  mutable running : job option;
  mutable n_submitted : int;
  mutable n_completed : int;
  mutable n_failed : int;
  mutable n_cancelled : int;
  mutable n_rejected : int;
  mutable traces : (int * Obs.Json.t) list; (* newest first, <= trace_keep *)
  telemetry : Telemetry.t;
  mutable executor : unit Domain.t option;
  on_event : event -> unit;
  (* Interned generated circuits, executor-domain only. Safe to share
     with pool workers: generation is deterministic and no optimizer
     read path mutates or memoizes inside an Aig.t. *)
  intern : (string, Aig.t) Hashtbl.t;
  (* (id, tenant) of the running progress-streaming job, read by the
     span listener on any recording domain. *)
  current : (int * int) option Atomic.t;
  pseq : int Atomic.t;
  born_s : float;
}

let create ?(on_event = fun _ -> ()) ?(slo = []) config =
  {
    config;
    lock = Mutex.create ();
    cond = Condition.create ();
    queue = Queue.create ();
    jobs = Hashtbl.create 64;
    next_id = 1;
    accepting = true;
    stopping = false;
    running = None;
    n_submitted = 0;
    n_completed = 0;
    n_failed = 0;
    n_cancelled = 0;
    n_rejected = 0;
    traces = [];
    telemetry = Telemetry.create ~slo ();
    executor = None;
    on_event = (fun e -> on_event e);
    intern = Hashtbl.create 16;
    current = Atomic.make None;
    pseq = Atomic.make 0;
    born_s = Guard.Clock.now_s ();
  }

(* --- validation (synchronous, at admission) -------------------------- *)

let known_circuit name =
  List.exists
    (fun (i : Circuits.Suite.info) -> String.equal i.Circuits.Suite.name name)
    Circuits.Suite.all

let validate (spec : Msg.submit) =
  let ( let* ) = Result.bind in
  let* () =
    if Run.tool_known spec.tool then Ok ()
    else Error ("bad_request", Printf.sprintf "unknown tool %S" spec.tool)
  in
  let* () =
    (* Budget fields are "0 = default/unlimited"; negative values are
       always a client mistake, so reject them at admission instead of
       silently treating them as defaults. *)
    let b = spec.budget in
    if
      b.Msg.bdd_node_ceiling < 0
      || b.Msg.sat_conflict_ceiling < 0
      || b.Msg.sat_conflict_budget < 0
      || b.Msg.deadline_s < 0.0
    then Error ("bad_request", "budget fields must be non-negative")
    else Ok ()
  in
  let* () =
    match spec.source with
    | Msg.Named n ->
      if known_circuit n then Ok ()
      else Error ("bad_request", Printf.sprintf "unknown circuit %S" n)
    | Msg.Adder { kind; bits } ->
      if not (List.mem kind [ "ripple"; "cla"; "select"; "skip" ]) then
        Error ("bad_request", Printf.sprintf "unknown adder kind %S" kind)
      else if bits <= 0 || bits > 4096 then
        Error ("bad_request", "adder bits out of range")
      else Ok ()
    | Msg.Blif _ | Msg.Bench _ -> Ok ()
  in
  match spec.inject with
  | None -> Ok []
  | Some s -> (
    match Guard.Inject.of_string s with
    | Ok rules -> Ok rules
    | Error msg -> Error ("bad_request", "inject: " ^ msg))

(* --- execution -------------------------------------------------------- *)

let guard_budget_of (b : Msg.budget) =
  {
    Guard.Budget.bdd_node_ceiling =
      (if b.bdd_node_ceiling > 0 then b.bdd_node_ceiling
       else Guard.Budget.default.Guard.Budget.bdd_node_ceiling);
    sat_conflict_ceiling =
      (if b.sat_conflict_ceiling > 0 then b.sat_conflict_ceiling
       else Guard.Budget.default.Guard.Budget.sat_conflict_ceiling);
    sat_conflict_budget =
      (if b.sat_conflict_budget > 0 then b.sat_conflict_budget
       else Guard.Budget.default.Guard.Budget.sat_conflict_budget);
  }

(* The job's wall bound: the smaller of the driver's anytime budget
   (--time-limit convention: None = driver default, 0 = unbounded) and
   the tenant's deadline allowance. [infinity] = unbounded. *)
let wall_bound (spec : Msg.submit) =
  let tl =
    match spec.time_limit_s with
    | None -> Lookahead.Driver.default.Lookahead.Driver.time_limit_s
    | Some s when s <= 0.0 -> infinity
    | Some s -> s
  in
  let tenant =
    if spec.budget.Msg.deadline_s > 0.0 then spec.budget.Msg.deadline_s
    else infinity
  in
  Float.min tl tenant

let ms_of_ns ns = Int64.to_float ns *. 1e-6

(* Journal helpers. The Det half of a lifecycle payload holds only data
   that is a pure function of the job spec and its deterministic
   execution (circuit, tool, size class, final state, degradation);
   ids, tenants and wall latencies are Sched. Admission and execution
   emit identical Det payloads on the warm and cold paths, so the
   journal digest is part of the warm≡cold identity contract. *)
let journal_admitted (spec : Msg.submit) =
  Obs.Journal.record ~kind:"job.admitted"
    ~det:
      (Obs.Json.Obj
         [ ("circuit", Obs.Json.String (Msg.source_name spec.source));
           ("tool", Obs.Json.String spec.tool) ])
    ()

(* The cold-CLI operation sequence, verbatim: arm injection, reset
   observation, load, optimize, measure, snapshot, serialize. Returns a
   finished result (state Done/Failed/Cancelled) together with the
   job's Obs snapshot (when one was taken) and its size class. *)
let execute_ex ~intern ~reuse ~id ~trace (spec : Msg.submit) ~rules
    ~cancel_handle ~wait_ns =
  let t0 = Guard.Clock.now_ns () in
  (match rules with
  | [] -> Guard.Inject.disarm ()
  | rs -> Guard.Inject.arm rs);
  Obs.reset ();
  Obs.set_trace trace;
  let name = Msg.source_name spec.source in
  Obs.Journal.record ~kind:"job.started"
    ~det:
      (Obs.Json.Obj
         [ ("circuit", Obs.Json.String name);
           ("tool", Obs.Json.String spec.tool) ])
    ~sched:(Obs.Json.Obj [ ("id", Obs.Json.Int id) ])
    ();
  let finish state ~cls ~metrics ~degraded ~error ~blif ~report ~snap =
    Guard.Inject.disarm ();
    let r =
      {
        Msg.id;
        circuit = name;
        tool = spec.tool;
        state;
        metrics;
        degraded;
        error;
        blif;
        report;
        wait_ms = ms_of_ns wait_ns;
        run_ms = ms_of_ns (Int64.sub (Guard.Clock.now_ns ()) t0);
      }
    in
    Obs.Journal.record ~kind:"job.finished"
      ~det:
        (Obs.Json.Obj
           [ ("circuit", Obs.Json.String name);
             ("tool", Obs.Json.String spec.tool);
             ("class", Obs.Json.String cls);
             ("state", Obs.Json.String (Msg.state_name state));
             ("degraded", Obs.Json.Bool degraded) ])
      ~sched:
        (Obs.Json.Obj
           [ ("id", Obs.Json.Int id);
             ("wait_ms", Obs.Json.Float r.Msg.wait_ms);
             ("run_ms", Obs.Json.Float r.Msg.run_ms) ])
      ();
    Obs.set_trace "";
    (r, snap, cls)
  in
  match
    let g =
      match (intern, spec.source) with
      | Some tbl, (Msg.Named _ | Msg.Adder _) -> (
        let key = Msg.source_name spec.source in
        match Hashtbl.find_opt tbl key with
        | Some g -> g
        | None ->
          let g = Run.build_source spec.source in
          Hashtbl.add tbl key g;
          g)
      | _ -> Run.build_source spec.source
    in
    let cls = Telemetry.size_class ~gates:(Aig.num_reachable_ands g) in
    let bound = wall_bound spec in
    let deadline = Guard.Deadline.bound cancel_handle bound in
    let options =
      {
        Lookahead.Driver.default with
        time_limit_s = bound;
        guard_budget = guard_budget_of spec.budget;
        deadline = Some deadline;
        reuse_managers = reuse;
      }
    in
    let optimized = Run.tool ~options spec.tool g in
    let metrics = Run.metrics ~original:g optimized in
    let snap = Obs.snapshot () in
    (cls, optimized, metrics, snap)
  with
  | cls, optimized, metrics, snap ->
    if Guard.Deadline.cancelled cancel_handle then
      finish Msg.Cancelled ~cls ~metrics:None ~degraded:(Run.degraded snap)
        ~error:None ~blif:None ~report:None ~snap:(Some snap)
    else
      finish Msg.Done ~cls ~metrics:(Some metrics)
        ~degraded:(Run.degraded snap) ~error:None
        ~blif:
          (if spec.want_blif then Some (Run.blif_of ~name optimized)
           else None)
        ~report:
          (if spec.want_report then Some (Obs.report_json snap) else None)
        ~snap:(Some snap)
  | exception e ->
    let cancelled = Guard.Deadline.cancelled cancel_handle in
    let state = if cancelled then Msg.Cancelled else Msg.Failed in
    let error = if cancelled then None else Some (Printexc.to_string e) in
    finish state ~cls:"na" ~metrics:None ~degraded:false ~error ~blif:None
      ~report:None ~snap:None

let run_cold spec =
  if spec.Msg.want_report then Obs.enable ();
  match validate spec with
  | Error (code, msg) ->
    Obs.Journal.record ~kind:"job.rejected"
      ~sched:(Obs.Json.Obj [ ("code", Obs.Json.String code) ])
      ();
    {
      Msg.id = 0;
      circuit = Msg.source_name spec.Msg.source;
      tool = spec.Msg.tool;
      state = Msg.Failed;
      metrics = None;
      degraded = false;
      error = Some (code ^ ": " ^ msg);
      blif = None;
      report = None;
      wait_ms = 0.0;
      run_ms = 0.0;
    }
  | Ok rules ->
    journal_admitted spec;
    let r, _, _ =
      execute_ex ~intern:None ~reuse:false ~id:0
        ~trace:(trace_of ~tenant:0 ~id:0) spec ~rules
        ~cancel_handle:(Guard.Deadline.cancellable ()) ~wait_ns:0L
    in
    r

(* --- the executor domain ---------------------------------------------- *)

let cancelled_result (job : job) ~wait_ns =
  {
    Msg.id = job.id;
    circuit = Msg.source_name job.spec.Msg.source;
    tool = job.spec.Msg.tool;
    state = Msg.Cancelled;
    metrics = None;
    degraded = false;
    error = None;
    blif = None;
    report = None;
    wait_ms = ms_of_ns wait_ns;
    run_ms = 0.0;
  }

let rec executor_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.cond t.lock
  done;
  if Queue.is_empty t.queue then begin
    (* stopping && empty: drain complete *)
    Mutex.unlock t.lock;
    ()
  end
  else begin
    let job = Queue.pop t.queue in
    if job.state <> Msg.Queued then begin
      (* cancelled while queued; its result was emitted at cancel time *)
      Mutex.unlock t.lock;
      executor_loop t
    end
    else begin
      job.state <- Msg.Running;
      job.started_ns <- Guard.Clock.now_ns ();
      t.running <- Some job;
      Mutex.unlock t.lock;
      let wait_ns = Int64.sub job.started_ns job.enq_ns in
      if job.spec.Msg.progress then begin
        Atomic.set t.pseq 0;
        Atomic.set t.current (Some (job.id, job.tenant))
      end;
      let result, snap, cls =
        execute_ex
          ~intern:(Some t.intern)
          ~reuse:t.config.reuse_managers ~id:job.id ~trace:job.trace job.spec
          ~rules:job.rules ~cancel_handle:job.cancel_handle ~wait_ns
      in
      Atomic.set t.current None;
      (* Telemetry and the retained trace slice are built here, on the
         executor domain, so the Metrics/Trace request paths never touch
         job state. *)
      Telemetry.record_result t.telemetry ~cls
        ~state:(Msg.state_name result.Msg.state)
        ~wait_ms:result.Msg.wait_ms ~run_ms:result.Msg.run_ms;
      let trace_slice =
        match snap with
        | None -> None
        | Some snap ->
          Telemetry.absorb_counters t.telemetry
            (List.map (fun (n, _, v) -> (n, v)) (Obs.counters snap));
          Some (Obs.trace_json snap)
      in
      Mutex.lock t.lock;
      job.state <- result.Msg.state;
      t.running <- None;
      (match trace_slice with
      | Some tr ->
        t.traces <-
          (job.id, tr)
          :: (if List.length t.traces >= trace_keep then
                List.filteri (fun i _ -> i < trace_keep - 1) t.traces
              else t.traces)
      | None -> ());
      (match result.Msg.state with
      | Msg.Done -> t.n_completed <- t.n_completed + 1
      | Msg.Failed -> t.n_failed <- t.n_failed + 1
      | _ -> t.n_cancelled <- t.n_cancelled + 1);
      Mutex.unlock t.lock;
      t.on_event (Job_done { tenant = job.tenant; result });
      executor_loop t
    end
  end

(* Coarse phases worth streaming; forwarding every span would flood the
   connection with per-output decompose events. *)
let progress_phases =
  [ "opt.round"; "opt.balance"; "opt.polish"; "opt.sat_sweep";
    "opt.final_cec" ]

let start t =
  Obs.enable ();
  Obs.register_gc_probe ();
  Obs.set_span_listener
    (Some
       (fun phase _dur ->
         if List.mem phase progress_phases then
           match Atomic.get t.current with
           | Some (id, tenant) ->
             t.on_event
               (Job_progress
                  {
                    tenant;
                    id;
                    phase;
                    seq = Atomic.fetch_and_add t.pseq 1;
                  })
           | None -> ()));
  Mutex.lock t.lock;
  if t.executor = None then
    t.executor <- Some (Domain.spawn (fun () -> executor_loop t));
  Mutex.unlock t.lock

let begin_shutdown t =
  Mutex.lock t.lock;
  t.accepting <- false;
  Mutex.unlock t.lock

let idle t =
  Mutex.lock t.lock;
  let no_queued =
    Queue.fold (fun acc j -> acc && j.state <> Msg.Queued) true t.queue
  in
  let r = no_queued && t.running = None in
  Mutex.unlock t.lock;
  r

(* --- client-facing operations ----------------------------------------- *)

let queued_position t id =
  (* under [lock] *)
  let pos = ref 0 and found = ref None in
  Queue.iter
    (fun j ->
      if j.state = Msg.Queued then begin
        if j.id = id then found := Some !pos;
        incr pos
      end)
    t.queue;
  !found

let count_queued t =
  Queue.fold (fun acc j -> acc + if j.state = Msg.Queued then 1 else 0) 0
    t.queue

let reject t ~tenant code =
  Mutex.lock t.lock;
  t.n_rejected <- t.n_rejected + 1;
  Mutex.unlock t.lock;
  Telemetry.record_reject t.telemetry ~tenant;
  Obs.Journal.record ~kind:"job.rejected"
    ~sched:
      (Obs.Json.Obj
         [ ("tenant", Obs.Json.Int tenant);
           ("code", Obs.Json.String code) ])
    ()

let submit t ~tenant spec =
  match validate spec with
  | Error ((code, _) as e) ->
    reject t ~tenant code;
    Error e
  | Ok rules ->
    Mutex.lock t.lock;
    let r =
      if not t.accepting then Error ("shutting_down", "server is draining")
      else if count_queued t >= t.config.queue_capacity then
        Error
          ( "queue_full",
            Printf.sprintf "queue is at capacity (%d)"
              t.config.queue_capacity )
      else begin
        let id = t.next_id in
        t.next_id <- id + 1;
        let job =
          {
            id;
            tenant;
            trace = trace_of ~tenant ~id;
            spec;
            rules;
            cancel_handle = Guard.Deadline.cancellable ();
            enq_ns = Guard.Clock.now_ns ();
            state = Msg.Queued;
            started_ns = 0L;
          }
        in
        Queue.push job t.queue;
        Hashtbl.replace t.jobs id job;
        t.n_submitted <- t.n_submitted + 1;
        let position = count_queued t - 1 in
        Condition.signal t.cond;
        Ok (id, position)
      end
    in
    Mutex.unlock t.lock;
    (match r with
    | Ok (id, _) ->
      Telemetry.record_admit t.telemetry ~tenant;
      (* The admission event carries the job's trace id explicitly: the
         process-wide current trace belongs to whatever job is running
         on the executor right now. *)
      Obs.Journal.record ~kind:"job.admitted"
        ~det:
          (Obs.Json.Obj
             [ ("circuit", Obs.Json.String (Msg.source_name spec.Msg.source));
               ("tool", Obs.Json.String spec.Msg.tool) ])
        ~sched:
          (Obs.Json.Obj
             [ ("id", Obs.Json.Int id);
               ("tenant", Obs.Json.Int tenant);
               ("trace", Obs.Json.String (trace_of ~tenant ~id)) ])
        ()
    | Error (code, _) -> reject t ~tenant code);
    r

let status t id =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.jobs id with
    | None -> None
    | Some job ->
      let pos =
        if job.state = Msg.Queued then queued_position t id else None
      in
      Some (job.state, pos)
  in
  Mutex.unlock t.lock;
  r

(* Cancel one job; under [lock]. Emits the cancelled result for queued
   jobs (there will be no executor pass to do it); a running job winds
   down through its deadline and reports from the executor. *)
let journal_cancelled (job : job) =
  (* Cancellation is an external action — sched-only, no Det payload,
     excluded from the journal digest. *)
  Obs.Journal.record ~kind:"job.cancelled"
    ~sched:
      (Obs.Json.Obj
         [ ("id", Obs.Json.Int job.id);
           ("tenant", Obs.Json.Int job.tenant);
           ("trace", Obs.Json.String job.trace) ])
    ()

let cancel_job t (job : job) =
  match job.state with
  | Msg.Queued ->
    job.state <- Msg.Cancelled;
    t.n_cancelled <- t.n_cancelled + 1;
    Guard.Deadline.cancel job.cancel_handle;
    journal_cancelled job;
    Telemetry.record_cancel t.telemetry ~tenant:job.tenant;
    let wait_ns = Int64.sub (Guard.Clock.now_ns ()) job.enq_ns in
    Some (Job_done { tenant = job.tenant; result = cancelled_result job ~wait_ns })
  | Msg.Running ->
    Guard.Deadline.cancel job.cancel_handle;
    journal_cancelled job;
    Telemetry.record_cancel t.telemetry ~tenant:job.tenant;
    None
  | _ -> None

let cancel t ~tenant id =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.jobs id with
    | None -> Error ("unknown_job", Printf.sprintf "no job %d" id)
    | Some job when job.tenant <> tenant ->
      Error ("not_owner", "jobs may only be cancelled by their submitter")
    | Some job ->
      let ev = cancel_job t job in
      Ok (job.state, ev)
  in
  Mutex.unlock t.lock;
  match r with
  | Error e -> Error e
  | Ok (state, ev) ->
    Option.iter t.on_event ev;
    Ok state

let drop_tenant t tenant =
  Mutex.lock t.lock;
  let evs = ref [] in
  Hashtbl.iter
    (fun _ job ->
      if job.tenant = tenant then
        match cancel_job t job with
        | Some e -> evs := e :: !evs
        | None -> ())
    t.jobs;
  Mutex.unlock t.lock;
  List.iter t.on_event !evs

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      Msg.submitted = t.n_submitted;
      completed = t.n_completed;
      failed = t.n_failed;
      cancelled = t.n_cancelled;
      rejected = t.n_rejected;
      queued = count_queued t;
      running = t.running <> None;
      queue_capacity = t.config.queue_capacity;
      uptime_s = Guard.Clock.now_s () -. t.born_s;
      interned_circuits = Hashtbl.length t.intern;
      pooled_managers = Bdd.Pool.size ();
      slo = [];
    }
  in
  Mutex.unlock t.lock;
  { s with Msg.slo = Telemetry.slo_report t.telemetry }

let metrics t =
  Mutex.lock t.lock;
  let queued = count_queued t in
  let running_age_s =
    match t.running with
    | Some job when job.started_ns <> 0L ->
      Int64.to_float (Int64.sub (Guard.Clock.now_ns ()) job.started_ns)
      *. 1e-9
    | _ -> 0.0
  in
  let running = if t.running = None then 0.0 else 1.0 in
  let rejected = float_of_int t.n_rejected in
  let interned = float_of_int (Hashtbl.length t.intern) in
  Mutex.unlock t.lock;
  Telemetry.exposition t.telemetry
    ~gauges:
      [
        ("queue_depth", "Jobs waiting in the admission queue.",
         float_of_int queued);
        ("queue_capacity", "Admission queue capacity.",
         float_of_int t.config.queue_capacity);
        ("running_jobs", "Jobs currently executing (0 or 1).", running);
        ("running_job_age_s", "Wall-clock age of the running job.",
         running_age_s);
        ("rejected_total", "Admissions rejected since start.", rejected);
        ("uptime_s", "Engine uptime.", Guard.Clock.now_s () -. t.born_s);
        ("interned_circuits", "Warm interned circuit images.", interned);
        ("pooled_managers", "Recycled BDD managers in the pool.",
         float_of_int (Bdd.Pool.size ()));
        ("journal_events", "Journal events recorded since enable.",
         float_of_int (Obs.Journal.events_total ()));
        ("journal_rotations", "Journal file-sink rotations.",
         float_of_int (Obs.Journal.rotations ()));
      ]

let job_trace t id =
  Mutex.lock t.lock;
  let r = List.assoc_opt id t.traces in
  Mutex.unlock t.lock;
  r

let stop t =
  Mutex.lock t.lock;
  t.accepting <- false;
  t.stopping <- true;
  let evs = ref [] in
  Queue.iter
    (fun job ->
      if job.state = Msg.Queued then
        match cancel_job t job with
        | Some e -> evs := e :: !evs
        | None -> ())
    t.queue;
  (match t.running with
  | Some job -> Guard.Deadline.cancel job.cancel_handle
  | None -> ());
  Condition.broadcast t.cond;
  let ex = t.executor in
  t.executor <- None;
  Mutex.unlock t.lock;
  List.iter t.on_event !evs;
  Option.iter Domain.join ex;
  Obs.set_span_listener None
