(* Job engine. See engine.mli for the model; the short version: one
   executor domain drains a bounded FIFO under a mutex, every job runs
   the exact cold-CLI operation sequence between an Obs.reset and a
   snapshot, and all warm state (interned circuits, pooled BDD
   managers, the enabled Obs runtime) is invisible in results by
   construction. *)

type config = {
  queue_capacity : int;
  reuse_managers : bool;
}

let default_config = { queue_capacity = 256; reuse_managers = true }

type event =
  | Job_done of { tenant : int; result : Msg.result }
  | Job_progress of { tenant : int; id : int; phase : string; seq : int }

type job = {
  id : int;
  tenant : int;
  spec : Msg.submit;
  rules : Guard.Inject.rule list; (* [] = no injection *)
  (* Cancellation handle, live from admission. The runner tightens it
     to the job's wall budget via Deadline.bound (same flag), so a
     cancel during the queue wait and a cancel mid-run land the same
     way. *)
  cancel_handle : Guard.Deadline.t;
  enq_ns : int64;
  mutable state : Msg.job_state;
  mutable started_ns : int64;
}

type t = {
  config : config;
  lock : Mutex.t;
  cond : Condition.t;
  queue : job Queue.t;
  jobs : (int, job) Hashtbl.t; (* under [lock] *)
  mutable next_id : int;
  mutable accepting : bool;
  mutable stopping : bool;
  mutable running : job option;
  mutable n_submitted : int;
  mutable n_completed : int;
  mutable n_failed : int;
  mutable n_cancelled : int;
  mutable executor : unit Domain.t option;
  on_event : event -> unit;
  (* Interned generated circuits, executor-domain only. Safe to share
     with pool workers: generation is deterministic and no optimizer
     read path mutates or memoizes inside an Aig.t. *)
  intern : (string, Aig.t) Hashtbl.t;
  (* (id, tenant) of the running progress-streaming job, read by the
     span listener on any recording domain. *)
  current : (int * int) option Atomic.t;
  pseq : int Atomic.t;
  born_s : float;
}

let create ?(on_event = fun _ -> ()) config =
  {
    config;
    lock = Mutex.create ();
    cond = Condition.create ();
    queue = Queue.create ();
    jobs = Hashtbl.create 64;
    next_id = 1;
    accepting = true;
    stopping = false;
    running = None;
    n_submitted = 0;
    n_completed = 0;
    n_failed = 0;
    n_cancelled = 0;
    executor = None;
    on_event = (fun e -> on_event e);
    intern = Hashtbl.create 16;
    current = Atomic.make None;
    pseq = Atomic.make 0;
    born_s = Guard.Clock.now_s ();
  }

(* --- validation (synchronous, at admission) -------------------------- *)

let known_circuit name =
  List.exists
    (fun (i : Circuits.Suite.info) -> String.equal i.Circuits.Suite.name name)
    Circuits.Suite.all

let validate (spec : Msg.submit) =
  let ( let* ) = Result.bind in
  let* () =
    if List.mem spec.tool Run.known_tools then Ok ()
    else Error ("bad_request", Printf.sprintf "unknown tool %S" spec.tool)
  in
  let* () =
    (* Budget fields are "0 = default/unlimited"; negative values are
       always a client mistake, so reject them at admission instead of
       silently treating them as defaults. *)
    let b = spec.budget in
    if
      b.Msg.bdd_node_ceiling < 0
      || b.Msg.sat_conflict_ceiling < 0
      || b.Msg.sat_conflict_budget < 0
      || b.Msg.deadline_s < 0.0
    then Error ("bad_request", "budget fields must be non-negative")
    else Ok ()
  in
  let* () =
    match spec.source with
    | Msg.Named n ->
      if known_circuit n then Ok ()
      else Error ("bad_request", Printf.sprintf "unknown circuit %S" n)
    | Msg.Adder { kind; bits } ->
      if not (List.mem kind [ "ripple"; "cla"; "select"; "skip" ]) then
        Error ("bad_request", Printf.sprintf "unknown adder kind %S" kind)
      else if bits <= 0 || bits > 4096 then
        Error ("bad_request", "adder bits out of range")
      else Ok ()
    | Msg.Blif _ | Msg.Bench _ -> Ok ()
  in
  match spec.inject with
  | None -> Ok []
  | Some s -> (
    match Guard.Inject.of_string s with
    | Ok rules -> Ok rules
    | Error msg -> Error ("bad_request", "inject: " ^ msg))

(* --- execution -------------------------------------------------------- *)

let guard_budget_of (b : Msg.budget) =
  {
    Guard.Budget.bdd_node_ceiling =
      (if b.bdd_node_ceiling > 0 then b.bdd_node_ceiling
       else Guard.Budget.default.Guard.Budget.bdd_node_ceiling);
    sat_conflict_ceiling =
      (if b.sat_conflict_ceiling > 0 then b.sat_conflict_ceiling
       else Guard.Budget.default.Guard.Budget.sat_conflict_ceiling);
    sat_conflict_budget =
      (if b.sat_conflict_budget > 0 then b.sat_conflict_budget
       else Guard.Budget.default.Guard.Budget.sat_conflict_budget);
  }

(* The job's wall bound: the smaller of the driver's anytime budget
   (--time-limit convention: None = driver default, 0 = unbounded) and
   the tenant's deadline allowance. [infinity] = unbounded. *)
let wall_bound (spec : Msg.submit) =
  let tl =
    match spec.time_limit_s with
    | None -> Lookahead.Driver.default.Lookahead.Driver.time_limit_s
    | Some s when s <= 0.0 -> infinity
    | Some s -> s
  in
  let tenant =
    if spec.budget.Msg.deadline_s > 0.0 then spec.budget.Msg.deadline_s
    else infinity
  in
  Float.min tl tenant

let ms_of_ns ns = Int64.to_float ns *. 1e-6

(* The cold-CLI operation sequence, verbatim: arm injection, reset
   observation, load, optimize, measure, snapshot, serialize. Returns a
   finished result (state Done/Failed/Cancelled). *)
let execute ~intern ~reuse ~id (spec : Msg.submit) ~rules ~cancel_handle
    ~wait_ns =
  let t0 = Guard.Clock.now_ns () in
  (match rules with
  | [] -> Guard.Inject.disarm ()
  | rs -> Guard.Inject.arm rs);
  Obs.reset ();
  let name = Msg.source_name spec.source in
  let finish state ~metrics ~degraded ~error ~blif ~report =
    Guard.Inject.disarm ();
    {
      Msg.id;
      circuit = name;
      tool = spec.tool;
      state;
      metrics;
      degraded;
      error;
      blif;
      report;
      wait_ms = ms_of_ns wait_ns;
      run_ms = ms_of_ns (Int64.sub (Guard.Clock.now_ns ()) t0);
    }
  in
  match
    let g =
      match (intern, spec.source) with
      | Some tbl, (Msg.Named _ | Msg.Adder _) -> (
        let key = Msg.source_name spec.source in
        match Hashtbl.find_opt tbl key with
        | Some g -> g
        | None ->
          let g = Run.build_source spec.source in
          Hashtbl.add tbl key g;
          g)
      | _ -> Run.build_source spec.source
    in
    let bound = wall_bound spec in
    let deadline = Guard.Deadline.bound cancel_handle bound in
    let options =
      {
        Lookahead.Driver.default with
        time_limit_s = bound;
        guard_budget = guard_budget_of spec.budget;
        deadline = Some deadline;
        reuse_managers = reuse;
      }
    in
    let optimized = Run.tool ~options spec.tool g in
    let metrics = Run.metrics ~original:g optimized in
    let snap = Obs.snapshot () in
    (g, optimized, metrics, snap)
  with
  | _, optimized, metrics, snap ->
    if Guard.Deadline.cancelled cancel_handle then
      finish Msg.Cancelled ~metrics:None ~degraded:(Run.degraded snap)
        ~error:None ~blif:None ~report:None
    else
      finish Msg.Done ~metrics:(Some metrics) ~degraded:(Run.degraded snap)
        ~error:None
        ~blif:
          (if spec.want_blif then Some (Run.blif_of ~name optimized)
           else None)
        ~report:
          (if spec.want_report then Some (Obs.report_json snap) else None)
  | exception e ->
    let cancelled = Guard.Deadline.cancelled cancel_handle in
    let state = if cancelled then Msg.Cancelled else Msg.Failed in
    let error = if cancelled then None else Some (Printexc.to_string e) in
    finish state ~metrics:None ~degraded:false ~error ~blif:None ~report:None

let run_cold spec =
  if spec.Msg.want_report then Obs.enable ();
  match validate spec with
  | Error (code, msg) ->
    {
      Msg.id = 0;
      circuit = Msg.source_name spec.Msg.source;
      tool = spec.Msg.tool;
      state = Msg.Failed;
      metrics = None;
      degraded = false;
      error = Some (code ^ ": " ^ msg);
      blif = None;
      report = None;
      wait_ms = 0.0;
      run_ms = 0.0;
    }
  | Ok rules ->
    execute ~intern:None ~reuse:false ~id:0 spec ~rules
      ~cancel_handle:(Guard.Deadline.cancellable ()) ~wait_ns:0L

(* --- the executor domain ---------------------------------------------- *)

let cancelled_result (job : job) ~wait_ns =
  {
    Msg.id = job.id;
    circuit = Msg.source_name job.spec.Msg.source;
    tool = job.spec.Msg.tool;
    state = Msg.Cancelled;
    metrics = None;
    degraded = false;
    error = None;
    blif = None;
    report = None;
    wait_ms = ms_of_ns wait_ns;
    run_ms = 0.0;
  }

let rec executor_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.cond t.lock
  done;
  if Queue.is_empty t.queue then begin
    (* stopping && empty: drain complete *)
    Mutex.unlock t.lock;
    ()
  end
  else begin
    let job = Queue.pop t.queue in
    if job.state <> Msg.Queued then begin
      (* cancelled while queued; its result was emitted at cancel time *)
      Mutex.unlock t.lock;
      executor_loop t
    end
    else begin
      job.state <- Msg.Running;
      job.started_ns <- Guard.Clock.now_ns ();
      t.running <- Some job;
      Mutex.unlock t.lock;
      let wait_ns = Int64.sub job.started_ns job.enq_ns in
      if job.spec.Msg.progress then begin
        Atomic.set t.pseq 0;
        Atomic.set t.current (Some (job.id, job.tenant))
      end;
      let result =
        execute
          ~intern:(Some t.intern)
          ~reuse:t.config.reuse_managers ~id:job.id job.spec ~rules:job.rules
          ~cancel_handle:job.cancel_handle ~wait_ns
      in
      Atomic.set t.current None;
      Mutex.lock t.lock;
      job.state <- result.Msg.state;
      t.running <- None;
      (match result.Msg.state with
      | Msg.Done -> t.n_completed <- t.n_completed + 1
      | Msg.Failed -> t.n_failed <- t.n_failed + 1
      | _ -> t.n_cancelled <- t.n_cancelled + 1);
      Mutex.unlock t.lock;
      t.on_event (Job_done { tenant = job.tenant; result });
      executor_loop t
    end
  end

(* Coarse phases worth streaming; forwarding every span would flood the
   connection with per-output decompose events. *)
let progress_phases =
  [ "opt.round"; "opt.balance"; "opt.polish"; "opt.sat_sweep";
    "opt.final_cec" ]

let start t =
  Obs.enable ();
  Obs.set_span_listener
    (Some
       (fun phase _dur ->
         if List.mem phase progress_phases then
           match Atomic.get t.current with
           | Some (id, tenant) ->
             t.on_event
               (Job_progress
                  {
                    tenant;
                    id;
                    phase;
                    seq = Atomic.fetch_and_add t.pseq 1;
                  })
           | None -> ()));
  Mutex.lock t.lock;
  if t.executor = None then
    t.executor <- Some (Domain.spawn (fun () -> executor_loop t));
  Mutex.unlock t.lock

let begin_shutdown t =
  Mutex.lock t.lock;
  t.accepting <- false;
  Mutex.unlock t.lock

let idle t =
  Mutex.lock t.lock;
  let no_queued =
    Queue.fold (fun acc j -> acc && j.state <> Msg.Queued) true t.queue
  in
  let r = no_queued && t.running = None in
  Mutex.unlock t.lock;
  r

(* --- client-facing operations ----------------------------------------- *)

let queued_position t id =
  (* under [lock] *)
  let pos = ref 0 and found = ref None in
  Queue.iter
    (fun j ->
      if j.state = Msg.Queued then begin
        if j.id = id then found := Some !pos;
        incr pos
      end)
    t.queue;
  !found

let count_queued t =
  Queue.fold (fun acc j -> acc + if j.state = Msg.Queued then 1 else 0) 0
    t.queue

let submit t ~tenant spec =
  match validate spec with
  | Error e -> Error e
  | Ok rules ->
    Mutex.lock t.lock;
    let r =
      if not t.accepting then Error ("shutting_down", "server is draining")
      else if count_queued t >= t.config.queue_capacity then
        Error
          ( "queue_full",
            Printf.sprintf "queue is at capacity (%d)"
              t.config.queue_capacity )
      else begin
        let id = t.next_id in
        t.next_id <- id + 1;
        let job =
          {
            id;
            tenant;
            spec;
            rules;
            cancel_handle = Guard.Deadline.cancellable ();
            enq_ns = Guard.Clock.now_ns ();
            state = Msg.Queued;
            started_ns = 0L;
          }
        in
        Queue.push job t.queue;
        Hashtbl.replace t.jobs id job;
        t.n_submitted <- t.n_submitted + 1;
        let position = count_queued t - 1 in
        Condition.signal t.cond;
        Ok (id, position)
      end
    in
    Mutex.unlock t.lock;
    r

let status t id =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.jobs id with
    | None -> None
    | Some job ->
      let pos =
        if job.state = Msg.Queued then queued_position t id else None
      in
      Some (job.state, pos)
  in
  Mutex.unlock t.lock;
  r

(* Cancel one job; under [lock]. Emits the cancelled result for queued
   jobs (there will be no executor pass to do it); a running job winds
   down through its deadline and reports from the executor. *)
let cancel_job t (job : job) =
  match job.state with
  | Msg.Queued ->
    job.state <- Msg.Cancelled;
    t.n_cancelled <- t.n_cancelled + 1;
    Guard.Deadline.cancel job.cancel_handle;
    let wait_ns = Int64.sub (Guard.Clock.now_ns ()) job.enq_ns in
    Some (Job_done { tenant = job.tenant; result = cancelled_result job ~wait_ns })
  | Msg.Running ->
    Guard.Deadline.cancel job.cancel_handle;
    None
  | _ -> None

let cancel t ~tenant id =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.jobs id with
    | None -> Error ("unknown_job", Printf.sprintf "no job %d" id)
    | Some job when job.tenant <> tenant ->
      Error ("not_owner", "jobs may only be cancelled by their submitter")
    | Some job ->
      let ev = cancel_job t job in
      Ok (job.state, ev)
  in
  Mutex.unlock t.lock;
  match r with
  | Error e -> Error e
  | Ok (state, ev) ->
    Option.iter t.on_event ev;
    Ok state

let drop_tenant t tenant =
  Mutex.lock t.lock;
  let evs = ref [] in
  Hashtbl.iter
    (fun _ job ->
      if job.tenant = tenant then
        match cancel_job t job with
        | Some e -> evs := e :: !evs
        | None -> ())
    t.jobs;
  Mutex.unlock t.lock;
  List.iter t.on_event !evs

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      Msg.submitted = t.n_submitted;
      completed = t.n_completed;
      failed = t.n_failed;
      cancelled = t.n_cancelled;
      queued = count_queued t;
      running = t.running <> None;
      queue_capacity = t.config.queue_capacity;
      uptime_s = Guard.Clock.now_s () -. t.born_s;
      interned_circuits = Hashtbl.length t.intern;
      pooled_managers = Bdd.Pool.size ();
    }
  in
  Mutex.unlock t.lock;
  s

let stop t =
  Mutex.lock t.lock;
  t.accepting <- false;
  t.stopping <- true;
  let evs = ref [] in
  Queue.iter
    (fun job ->
      if job.state = Msg.Queued then
        match cancel_job t job with
        | Some e -> evs := e :: !evs
        | None -> ())
    t.queue;
  (match t.running with
  | Some job -> Guard.Deadline.cancel job.cancel_handle
  | None -> ());
  Condition.broadcast t.cond;
  let ex = t.executor in
  t.executor <- None;
  Mutex.unlock t.lock;
  List.iter t.on_event !evs;
  Option.iter Domain.join ex;
  Obs.set_span_listener None
