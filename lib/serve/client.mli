(** Blocking client for the {!Server} protocol: one connection, one
    tenant. Used by [lookahead_serve submit/...], the load bench and
    the tests; not thread-safe — one domain per client. *)

type t

val connect : Server.listen -> t
val close : t -> unit

(** Send one request frame. *)
val send : t -> Msg.request -> unit

(** Block until the next well-formed response arrives. Raises
    [Failure] on EOF, a corrupt frame, or an undecodable response. *)
val recv : t -> Msg.response

(** [submit_wait t spec] sends [spec] and blocks until that job's
    {!Msg.Result} arrives, feeding any of its progress events to
    [on_progress] and stashing interleaved responses for other jobs
    (they are delivered by later [recv]/[submit_wait] calls on this
    client). Returns the job id and the result. Raises [Failure] if
    the server answers the submission with an error. *)
val submit_wait :
  ?on_progress:(phase:string -> seq:int -> unit) ->
  t ->
  Msg.submit ->
  int * Msg.result

(** Convenience wrappers; each raises [Failure] on an error reply. *)
val stats : t -> Msg.server_stats

(** Scrape the live metrics endpoint: Prometheus-style text exposition
    plus its JSON mirror. *)
val metrics : t -> string * Obs.Json.t

(** Retrieve the retained Chrome-trace slice of a finished job. Raises
    [Failure] (code [no_trace]) for unknown or evicted ids. *)
val job_trace : t -> int -> Obs.Json.t

val shutdown : t -> unit
