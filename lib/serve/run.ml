(* See run.mli. *)

let build_adder kind n =
  match kind with
  | "ripple" -> Circuits.Adders.ripple_carry n
  | "cla" -> Circuits.Adders.carry_lookahead n
  | "select" -> Circuits.Adders.carry_select n
  | "skip" -> Circuits.Adders.carry_skip n
  | k -> invalid_arg (Printf.sprintf "unknown adder kind %s" k)

let build_source = function
  | Msg.Named name -> Circuits.Suite.build name
  | Msg.Blif { text; _ } -> Aig.Io.read_blif text
  | Msg.Bench { text; _ } -> Aig.Io.read_bench text
  | Msg.Adder { kind; bits } -> build_adder kind bits

let known_tools =
  [ "lookahead"; "resub"; "mfs"; "none"; "sis"; "abc"; "dc"; "egraph";
    "portfolio" ]

(* "egraph:delay" / "portfolio:area" — a tool name with an optional
   cost-function suffix. Plain names parse as (name, None). *)
let split_tool spec =
  match String.index_opt spec ':' with
  | None -> (spec, None)
  | Some i ->
    ( String.sub spec 0 i,
      Some (String.sub spec (i + 1) (String.length spec - i - 1)) )

let cost_of = function
  | None -> Some Egraph.Cost.levels
  | Some name -> Egraph.Cost.of_name name

let tool_known spec =
  let base, cost = split_tool spec in
  List.mem base known_tools
  && (cost = None || cost_of cost <> None)
  && (cost = None || base = "egraph" || base = "portfolio")

let tool ~options spec =
  let base, cost_name = split_tool spec in
  let cost () =
    match cost_of cost_name with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "unknown cost function in %s" spec)
  in
  match base with
  | "lookahead" -> fun g -> Lookahead.optimize ~options g
  | "resub" -> fun g -> Aig.Resub.run (Aig.Balance.run g)
  | "mfs" -> fun g -> Lookahead.Mfs.run g
  | "none" -> Fun.id
  | "egraph" ->
    let cost = cost () in
    fun g ->
      let deadline =
        match options.Lookahead.Driver.deadline with
        | Some d -> d
        | None ->
          if options.Lookahead.Driver.time_limit_s < infinity then
            Guard.Deadline.after options.Lookahead.Driver.time_limit_s
          else Guard.Deadline.never
      in
      let guard =
        Guard.create ~deadline options.Lookahead.Driver.guard_budget
      in
      Egraph.optimize ~guard ~cost g
  | "portfolio" ->
    let cost = cost () in
    fun g -> Egraph.Portfolio.run ~options ~cost g
  | name -> (
    match Baselines.by_name name with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "unknown tool %s" name))

let metrics ~original optimized =
  let m = Techmap.Eval.measure optimized in
  {
    Msg.pi = Aig.num_inputs optimized;
    po = List.length (Aig.outputs optimized);
    gates_before = Aig.num_reachable_ands original;
    gates = Aig.num_reachable_ands optimized;
    levels_before = Aig.depth original;
    levels = Aig.depth optimized;
    cells = m.Techmap.Eval.cells;
    area = m.Techmap.Eval.area;
    delay_ps = m.Techmap.Eval.delay_ps;
    power_mw = m.Techmap.Eval.power_mw;
  }

let pp_metrics ~circuit ~tool ppf (m : Msg.metrics) =
  Fmt.pf ppf "circuit   : %s@." circuit;
  Fmt.pf ppf "tool      : %s@." tool;
  Fmt.pf ppf "pi/po     : %d/%d@." m.pi m.po;
  Fmt.pf ppf "aig gates : %d (was %d)@." m.gates m.gates_before;
  Fmt.pf ppf "aig levels: %d (was %d)@." m.levels m.levels_before;
  Fmt.pf ppf "mapped    : %d cells, area %.1f@." m.cells m.area;
  Fmt.pf ppf "delay     : %.1f ps@." m.delay_ps;
  Fmt.pf ppf "power     : %.3f mW @@ 1GHz@." m.power_mw

(* A job "degraded" when any ladder rung was taken or any fault was
   injected — the same counters gate 5 watches. *)
let degraded snap =
  Obs.counter_value snap "guard.rung.approx_spcf"
  + Obs.counter_value snap "guard.rung.shrink_window"
  + Obs.counter_value snap "guard.rung.skip_output"
  + Obs.counter_value snap "guard.rung.egraph_best_so_far"
  + Obs.counter_value snap "guard.injected.bdd_blowup"
  + Obs.counter_value snap "guard.injected.sat_exhaust"
  + Obs.counter_value snap "guard.injected.deadline"
  > 0

let blif_of ~name g = Aig.Io.blif_to_string ~model:name g
