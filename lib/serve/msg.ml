(* Wire protocol codec. See msg.mli. All JSON goes through Obs.Json so
   printing stays deterministic (construction-ordered object keys). *)

module J = Obs.Json

type source =
  | Named of string
  | Blif of { name : string; text : string }
  | Bench of { name : string; text : string }
  | Adder of { kind : string; bits : int }

let source_name = function
  | Named n -> n
  | Blif { name; _ } | Bench { name; _ } -> name
  | Adder { kind; bits } -> Printf.sprintf "%s-adder-%d" kind bits

type budget = {
  bdd_node_ceiling : int;
  sat_conflict_ceiling : int;
  sat_conflict_budget : int;
  deadline_s : float;
}

let default_budget =
  {
    bdd_node_ceiling = 0;
    sat_conflict_ceiling = 0;
    sat_conflict_budget = 0;
    deadline_s = 0.0;
  }

type submit = {
  source : source;
  tool : string;
  budget : budget;
  inject : string option;
  time_limit_s : float option;
  progress : bool;
  want_blif : bool;
  want_report : bool;
}

let submit_defaults ~source ~tool =
  {
    source;
    tool;
    budget = default_budget;
    inject = None;
    time_limit_s = None;
    progress = false;
    want_blif = false;
    want_report = false;
  }

type request =
  | Submit of submit
  | Status of int
  | Cancel of int
  | Stats
  | Metrics
  | Trace of int
  | Shutdown

type job_state = Queued | Running | Done | Failed | Cancelled

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

let state_of_name = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "done" -> Some Done
  | "failed" -> Some Failed
  | "cancelled" -> Some Cancelled
  | _ -> None

type metrics = {
  pi : int;
  po : int;
  gates_before : int;
  gates : int;
  levels_before : int;
  levels : int;
  cells : int;
  area : float;
  delay_ps : float;
  power_mw : float;
}

type result = {
  id : int;
  circuit : string;
  tool : string;
  state : job_state;
  metrics : metrics option;
  degraded : bool;
  error : string option;
  blif : string option;
  report : J.t option;
  wait_ms : float;
  run_ms : float;
}

type slo_stat = {
  cls : string;
  objective_ms : float;
  jobs : int;
  breaches : int;
  window : int;
  window_breaches : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

type server_stats = {
  submitted : int;
  completed : int;
  failed : int;
  cancelled : int;
  rejected : int;
  queued : int;
  running : bool;
  queue_capacity : int;
  uptime_s : float;
  interned_circuits : int;
  pooled_managers : int;
  slo : slo_stat list;
}

type response =
  | Submitted of { id : int; position : int }
  | Job_status of { id : int; state : job_state; position : int option }
  | Progress of { id : int; phase : string; seq : int }
  | Result of result
  | Stats_reply of server_stats
  | Metrics_reply of { text : string; json : J.t }
  | Trace_reply of { id : int; trace : J.t }
  | Error_reply of { code : string; message : string }
  | Shutdown_ack

(* --- encoding ------------------------------------------------------- *)

let source_to_json = function
  | Named n -> J.Obj [ ("named", J.String n) ]
  | Blif { name; text } ->
    J.Obj [ ("blif", J.String text); ("name", J.String name) ]
  | Bench { name; text } ->
    J.Obj [ ("bench", J.String text); ("name", J.String name) ]
  | Adder { kind; bits } ->
    J.Obj [ ("adder", J.String kind); ("bits", J.Int bits) ]

let budget_to_json b =
  J.Obj
    [
      ("bdd_nodes", J.Int b.bdd_node_ceiling);
      ("sat_conflicts", J.Int b.sat_conflict_ceiling);
      ("sat_conflict_budget", J.Int b.sat_conflict_budget);
      ("deadline_s", J.Float b.deadline_s);
    ]

let opt field f = function None -> [] | Some v -> [ (field, f v) ]

let request_to_json = function
  | Submit s ->
    J.Obj
      ([
         ("type", J.String "submit");
         ("source", source_to_json s.source);
         ("tool", J.String s.tool);
         ("budget", budget_to_json s.budget);
       ]
      @ opt "inject" (fun i -> J.String i) s.inject
      @ opt "time_limit_s" (fun t -> J.Float t) s.time_limit_s
      @ [
          ("progress", J.Bool s.progress);
          ("want_blif", J.Bool s.want_blif);
          ("want_report", J.Bool s.want_report);
        ])
  | Status id -> J.Obj [ ("type", J.String "status"); ("id", J.Int id) ]
  | Cancel id -> J.Obj [ ("type", J.String "cancel"); ("id", J.Int id) ]
  | Stats -> J.Obj [ ("type", J.String "stats") ]
  | Metrics -> J.Obj [ ("type", J.String "metrics") ]
  | Trace id -> J.Obj [ ("type", J.String "trace"); ("id", J.Int id) ]
  | Shutdown -> J.Obj [ ("type", J.String "shutdown") ]

let metrics_to_json m =
  J.Obj
    [
      ("pi", J.Int m.pi);
      ("po", J.Int m.po);
      ("gates_before", J.Int m.gates_before);
      ("gates", J.Int m.gates);
      ("levels_before", J.Int m.levels_before);
      ("levels", J.Int m.levels);
      ("cells", J.Int m.cells);
      ("area", J.Float m.area);
      ("delay_ps", J.Float m.delay_ps);
      ("power_mw", J.Float m.power_mw);
    ]

let slo_to_json s =
  J.Obj
    [
      ("class", J.String s.cls);
      ("objective_ms", J.Float s.objective_ms);
      ("jobs", J.Int s.jobs);
      ("breaches", J.Int s.breaches);
      ("window", J.Int s.window);
      ("window_breaches", J.Int s.window_breaches);
      ("p50_ms", J.Float s.p50_ms);
      ("p95_ms", J.Float s.p95_ms);
      ("p99_ms", J.Float s.p99_ms);
    ]

let response_to_json = function
  | Submitted { id; position } ->
    J.Obj
      [
        ("type", J.String "submitted");
        ("id", J.Int id);
        ("position", J.Int position);
      ]
  | Job_status { id; state; position } ->
    J.Obj
      ([
         ("type", J.String "status");
         ("id", J.Int id);
         ("state", J.String (state_name state));
       ]
      @ opt "position" (fun p -> J.Int p) position)
  | Progress { id; phase; seq } ->
    J.Obj
      [
        ("type", J.String "progress");
        ("id", J.Int id);
        ("phase", J.String phase);
        ("seq", J.Int seq);
      ]
  | Result r ->
    J.Obj
      ([
         ("type", J.String "result");
         ("id", J.Int r.id);
         ("circuit", J.String r.circuit);
         ("tool", J.String r.tool);
         ("state", J.String (state_name r.state));
         ("degraded", J.Bool r.degraded);
       ]
      @ opt "metrics" metrics_to_json r.metrics
      @ opt "error" (fun e -> J.String e) r.error
      @ opt "blif" (fun b -> J.String b) r.blif
      @ opt "report" Fun.id r.report
      @ [ ("wait_ms", J.Float r.wait_ms); ("run_ms", J.Float r.run_ms) ])
  | Stats_reply s ->
    J.Obj
      [
        ("type", J.String "stats");
        ("submitted", J.Int s.submitted);
        ("completed", J.Int s.completed);
        ("failed", J.Int s.failed);
        ("cancelled", J.Int s.cancelled);
        ("rejected", J.Int s.rejected);
        ("queued", J.Int s.queued);
        ("running", J.Bool s.running);
        ("queue_capacity", J.Int s.queue_capacity);
        ("uptime_s", J.Float s.uptime_s);
        ("interned_circuits", J.Int s.interned_circuits);
        ("pooled_managers", J.Int s.pooled_managers);
        ("slo", J.List (List.map slo_to_json s.slo));
      ]
  | Metrics_reply { text; json } ->
    J.Obj
      [
        ("type", J.String "metrics");
        ("text", J.String text);
        ("json", json);
      ]
  | Trace_reply { id; trace } ->
    J.Obj
      [ ("type", J.String "trace"); ("id", J.Int id); ("trace", trace) ]
  | Error_reply { code; message } ->
    J.Obj
      [
        ("type", J.String "error");
        ("code", J.String code);
        ("message", J.String message);
      ]
  | Shutdown_ack -> J.Obj [ ("type", J.String "shutdown_ack") ]

(* --- decoding ------------------------------------------------------- *)

let bad fmt = Printf.ksprintf (fun m -> Error ("bad_request", m)) fmt

let str_field j name =
  match J.member name j with
  | Some (J.String s) -> Ok s
  | Some _ -> bad "field %S must be a string" name
  | None -> bad "missing field %S" name

let int_field j name =
  match J.member name j with
  | Some (J.Int i) -> Ok i
  | Some _ -> bad "field %S must be an integer" name
  | None -> bad "missing field %S" name

let opt_int_field j name ~default =
  match J.member name j with
  | Some (J.Int i) -> Ok i
  | None -> Ok default
  | Some _ -> bad "field %S must be an integer" name

let opt_bool_field j name ~default =
  match J.member name j with
  | Some (J.Bool b) -> Ok b
  | None -> Ok default
  | Some _ -> bad "field %S must be a boolean" name

let opt_float_field j name =
  match J.member name j with
  | Some (J.Float f) -> Ok (Some f)
  | Some (J.Int i) -> Ok (Some (float_of_int i))
  | None -> Ok None
  | Some _ -> bad "field %S must be a number" name

let opt_str_field j name =
  match J.member name j with
  | Some (J.String s) -> Ok (Some s)
  | None -> Ok None
  | Some _ -> bad "field %S must be a string" name

let ( let* ) = Result.bind

let source_of_json j =
  match
    (J.member "named" j, J.member "blif" j, J.member "bench" j,
     J.member "adder" j)
  with
  | Some (J.String n), None, None, None -> Ok (Named n)
  | None, Some (J.String text), None, None ->
    let* name = opt_str_field j "name" in
    Ok (Blif { name = Option.value name ~default:"blif-input"; text })
  | None, None, Some (J.String text), None ->
    let* name = opt_str_field j "name" in
    Ok (Bench { name = Option.value name ~default:"bench-input"; text })
  | None, None, None, Some (J.String kind) ->
    let* bits = int_field j "bits" in
    if bits <= 0 || bits > 4096 then bad "adder bits out of range"
    else Ok (Adder { kind; bits })
  | _ ->
    bad "source must have exactly one of \"named\", \"blif\", \"bench\", \
         \"adder\""

let budget_of_json = function
  | None -> Ok default_budget
  | Some j ->
    let* bdd_node_ceiling = opt_int_field j "bdd_nodes" ~default:0 in
    let* sat_conflict_ceiling = opt_int_field j "sat_conflicts" ~default:0 in
    let* sat_conflict_budget =
      opt_int_field j "sat_conflict_budget" ~default:0
    in
    let* deadline =
      match J.member "deadline_s" j with
      | Some (J.Float f) -> Ok f
      | Some (J.Int i) -> Ok (float_of_int i)
      | None -> Ok 0.0
      | Some _ -> bad "field \"deadline_s\" must be a number"
    in
    Ok
      {
        bdd_node_ceiling;
        sat_conflict_ceiling;
        sat_conflict_budget;
        deadline_s = deadline;
      }

let submit_of_json j =
  let* source =
    match J.member "source" j with
    | Some s -> source_of_json s
    | None -> bad "missing field \"source\""
  in
  let* tool = str_field j "tool" in
  let* budget = budget_of_json (J.member "budget" j) in
  let* inject = opt_str_field j "inject" in
  let* time_limit_s = opt_float_field j "time_limit_s" in
  let* progress = opt_bool_field j "progress" ~default:false in
  let* want_blif = opt_bool_field j "want_blif" ~default:false in
  let* want_report = opt_bool_field j "want_report" ~default:false in
  Ok
    (Submit
       {
         source;
         tool;
         budget;
         inject;
         time_limit_s;
         progress;
         want_blif;
         want_report;
       })

let request_of_json j =
  match j with
  | J.Obj _ -> (
    let* ty = str_field j "type" in
    match ty with
    | "submit" -> submit_of_json j
    | "status" ->
      let* id = int_field j "id" in
      Ok (Status id)
    | "cancel" ->
      let* id = int_field j "id" in
      Ok (Cancel id)
    | "stats" -> Ok Stats
    | "metrics" -> Ok Metrics
    | "trace" ->
      let* id = int_field j "id" in
      Ok (Trace id)
    | "shutdown" -> Ok Shutdown
    | other -> bad "unknown request type %S" other)
  | _ -> bad "request must be a JSON object"

let metrics_of_json j =
  let* pi = int_field j "pi" in
  let* po = int_field j "po" in
  let* gates_before = int_field j "gates_before" in
  let* gates = int_field j "gates" in
  let* levels_before = int_field j "levels_before" in
  let* levels = int_field j "levels" in
  let* cells = int_field j "cells" in
  let num name =
    match J.member name j with
    | Some (J.Float f) -> Ok f
    | Some (J.Int i) -> Ok (float_of_int i)
    | _ -> bad "field %S must be a number" name
  in
  let* area = num "area" in
  let* delay_ps = num "delay_ps" in
  let* power_mw = num "power_mw" in
  Ok
    {
      pi;
      po;
      gates_before;
      gates;
      levels_before;
      levels;
      cells;
      area;
      delay_ps;
      power_mw;
    }

let state_field j =
  let* s = str_field j "state" in
  match state_of_name s with
  | Some st -> Ok st
  | None -> bad "unknown job state %S" s

let num_field j name ~default =
  match J.member name j with
  | Some (J.Float f) -> Ok f
  | Some (J.Int i) -> Ok (float_of_int i)
  | None -> Ok default
  | Some _ -> bad "field %S must be a number" name

let slo_of_json j =
  let* cls = str_field j "class" in
  let* objective_ms = num_field j "objective_ms" ~default:0.0 in
  let* jobs = opt_int_field j "jobs" ~default:0 in
  let* breaches = opt_int_field j "breaches" ~default:0 in
  let* window = opt_int_field j "window" ~default:0 in
  let* window_breaches = opt_int_field j "window_breaches" ~default:0 in
  let* p50_ms = num_field j "p50_ms" ~default:0.0 in
  let* p95_ms = num_field j "p95_ms" ~default:0.0 in
  let* p99_ms = num_field j "p99_ms" ~default:0.0 in
  Ok
    {
      cls;
      objective_ms;
      jobs;
      breaches;
      window;
      window_breaches;
      p50_ms;
      p95_ms;
      p99_ms;
    }

let response_of_json j =
  match j with
  | J.Obj _ -> (
    let* ty = str_field j "type" in
    match ty with
    | "submitted" ->
      let* id = int_field j "id" in
      let* position = int_field j "position" in
      Ok (Submitted { id; position })
    | "status" ->
      let* id = int_field j "id" in
      let* state = state_field j in
      let* position =
        match J.member "position" j with
        | Some (J.Int p) -> Ok (Some p)
        | None -> Ok None
        | Some _ -> bad "field \"position\" must be an integer"
      in
      Ok (Job_status { id; state; position })
    | "progress" ->
      let* id = int_field j "id" in
      let* phase = str_field j "phase" in
      let* seq = int_field j "seq" in
      Ok (Progress { id; phase; seq })
    | "result" ->
      let* id = int_field j "id" in
      let* circuit = str_field j "circuit" in
      let* tool = str_field j "tool" in
      let* state = state_field j in
      let* degraded = opt_bool_field j "degraded" ~default:false in
      let* metrics =
        match J.member "metrics" j with
        | Some m ->
          let* m = metrics_of_json m in
          Ok (Some m)
        | None -> Ok None
      in
      let* error = opt_str_field j "error" in
      let* blif = opt_str_field j "blif" in
      let report = J.member "report" j in
      let* wait_ms = num_field j "wait_ms" ~default:0.0 in
      let* run_ms = num_field j "run_ms" ~default:0.0 in
      Ok
        (Result
           {
             id;
             circuit;
             tool;
             state;
             metrics;
             degraded;
             error;
             blif;
             report;
             wait_ms;
             run_ms;
           })
    | "stats" ->
      let* submitted = int_field j "submitted" in
      let* completed = int_field j "completed" in
      let* failed = int_field j "failed" in
      let* cancelled = int_field j "cancelled" in
      let* rejected = opt_int_field j "rejected" ~default:0 in
      let* queued = int_field j "queued" in
      let* running = opt_bool_field j "running" ~default:false in
      let* queue_capacity = int_field j "queue_capacity" in
      let* uptime_s = num_field j "uptime_s" ~default:0.0 in
      let* interned_circuits = int_field j "interned_circuits" in
      let* pooled_managers = int_field j "pooled_managers" in
      let* slo =
        match J.member "slo" j with
        | None -> Ok []
        | Some (J.List xs) ->
          List.fold_left
            (fun acc x ->
              let* acc = acc in
              let* s = slo_of_json x in
              Ok (s :: acc))
            (Ok []) xs
          |> Result.map List.rev
        | Some _ -> bad "field \"slo\" must be a list"
      in
      Ok
        (Stats_reply
           {
             submitted;
             completed;
             failed;
             cancelled;
             rejected;
             queued;
             running;
             queue_capacity;
             uptime_s;
             interned_circuits;
             pooled_managers;
             slo;
           })
    | "metrics" ->
      let* text = str_field j "text" in
      let json = Option.value (J.member "json" j) ~default:J.Null in
      Ok (Metrics_reply { text; json })
    | "trace" ->
      let* id = int_field j "id" in
      let trace = Option.value (J.member "trace" j) ~default:J.Null in
      Ok (Trace_reply { id; trace })
    | "error" ->
      let* code = str_field j "code" in
      let* message = str_field j "message" in
      Ok (Error_reply { code; message })
    | "shutdown_ack" -> Ok Shutdown_ack
    | other -> bad "unknown response type %S" other)
  | _ -> bad "response must be a JSON object"

let request_of_string s =
  match J.of_string s with
  | None -> Error ("parse", "malformed JSON payload")
  | Some j -> request_of_json j

let response_of_string s =
  match J.of_string s with
  | None -> Error ("parse", "malformed JSON payload")
  | Some j -> response_of_json j

let encode_request r = J.to_string (request_to_json r)
let encode_response r = J.to_string (response_to_json r)
