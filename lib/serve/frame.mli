(** Length-prefixed framing for the job-server wire protocol.

    A frame is a 4-byte big-endian unsigned payload length followed by
    that many payload bytes (one UTF-8 JSON document per frame — the
    "JSON lines" of the protocol, with an explicit length instead of a
    newline so payloads may contain anything). The decoder is fully
    incremental: feed it whatever chunks the socket yields and it emits
    complete frames in order, surviving partial headers, partial
    bodies, and many frames per chunk.

    Oversized frames are a flow-control error, not a framing error: the
    advertised length is still trusted, the body is consumed and
    discarded without buffering, and decoding resumes at the next
    frame, so a server can answer with a typed error instead of
    dropping the connection. A negative length is corruption — there is
    no way to resynchronize — and poisons the decoder. *)

(** Default maximum accepted payload size (16 MiB — comfortably above
    any BLIF in the suite). *)
val max_frame_default : int

(** [encode payload] is the framed wire image ([4 + length] bytes). *)
val encode : string -> string

(** Append [encode payload] to a buffer without the intermediate
    string. *)
val write : Buffer.t -> string -> unit

module Decoder : sig
  type t

  type event =
    | Frame of string  (** one complete payload *)
    | Oversized of int
        (** a frame advertised this many bytes (> max); its body is
            being discarded and decoding will resume after it *)
    | Corrupt of string
        (** unrecoverable stream corruption; the decoder rejects all
            further input *)

  val create : ?max_frame:int -> unit -> t

  (** [feed t buf off len] consumes [len] bytes and returns the events
      they complete, oldest first. *)
  val feed : t -> bytes -> int -> int -> event list

  (** [feed_string t s] is [feed] over all of [s]. *)
  val feed_string : t -> string -> event list

  (** Bytes currently buffered waiting for a complete frame. *)
  val pending : t -> int
end
