(** Wire protocol of the synthesis job server.

    Every frame payload (see {!Frame}) is one JSON object with a
    ["type"] discriminator. Requests flow client → server, responses
    server → client; a single request may be answered by several
    frames (progress events before the final result). Encoding uses
    {!Obs.Json}, whose printing is deterministic, so identical results
    have identical wire images.

    Decoding is total: any malformed payload yields a typed [Error]
    with a machine-readable code, never an exception. *)

(** Where the job's circuit comes from. File contents travel inline —
    the server never touches the client's filesystem. *)
type source =
  | Named of string  (** a [Circuits.Suite] benchmark stand-in *)
  | Blif of { name : string; text : string }
  | Bench of { name : string; text : string }
  | Adder of { kind : string; bits : int }
      (** generated adder, [kind] ∈ ripple|cla|select|skip *)

(** Human-readable circuit name, matching what the one-shot CLI would
    print for the same source. *)
val source_name : source -> string

(** Per-tenant resource budget, the wire form of {!Guard.Budget} plus
    a wall-clock allowance. [0] means "library default" for the
    ceilings and "unbounded" for the deadline. *)
type budget = {
  bdd_node_ceiling : int;
  sat_conflict_ceiling : int;
  sat_conflict_budget : int;
      (** cumulative conflicts across all of the job's SAT queries;
          [0] = unlimited (see [Guard.Budget.sat_conflict_budget]) *)
  deadline_s : float;
}

val default_budget : budget

type submit = {
  source : source;
  tool : string;
      (** lookahead | resub | mfs | none | sis | abc | dc |
          egraph[:COST] | portfolio[:COST] — COST one of
          {!Egraph.Cost.names} *)
  budget : budget;
  inject : string option;  (** fault-injection spec, [--inject] syntax *)
  time_limit_s : float option;
      (** anytime budget of the lookahead driver; [Some 0.] disables
          the deadline (the [--time-limit 0] of the CLI); [None] uses
          the driver default *)
  progress : bool;  (** stream coarse phase-completion events *)
  want_blif : bool;  (** include the optimized circuit as BLIF text *)
  want_report : bool;  (** include the [--report] observation JSON *)
}

val submit_defaults : source:source -> tool:string -> submit

type request =
  | Submit of submit
  | Status of int
  | Cancel of int
  | Stats
  | Metrics
      (** live telemetry: Prometheus-style text exposition plus a JSON
          mirror, built from cumulative per-job observations *)
  | Trace of int
      (** per-job Chrome-trace slice for a recently finished job id *)
  | Shutdown

type job_state = Queued | Running | Done | Failed | Cancelled

val state_name : job_state -> string

(** The Table-2 metric set the one-shot CLI prints, as data. *)
type metrics = {
  pi : int;
  po : int;
  gates_before : int;
  gates : int;
  levels_before : int;
  levels : int;
  cells : int;
  area : float;
  delay_ps : float;
  power_mw : float;
}

type result = {
  id : int;
  circuit : string;
  tool : string;
  state : job_state;  (** [Done], [Failed] or [Cancelled] *)
  metrics : metrics option;  (** present iff [Done] *)
  degraded : bool;
      (** at least one degradation-ladder rung or injected fault was
          recorded during the job *)
  error : string option;  (** present iff [Failed] *)
  blif : string option;
  report : Obs.Json.t option;
  wait_ms : float;  (** queue wait, admission → start *)
  run_ms : float;  (** execution wall clock *)
}

(** Rolling latency-objective health for one job size class (see
    {!Telemetry}): lifetime breach counts plus a bounded window of the
    most recent outcomes, and log-bucket-interpolated latency
    quantiles. *)
type slo_stat = {
  cls : string;  (** size class: xs | s | m | l | xl *)
  objective_ms : float;  (** 0 when the class has no objective *)
  jobs : int;
  breaches : int;
  window : int;  (** completed jobs currently in the rolling window *)
  window_breaches : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

type server_stats = {
  submitted : int;
  completed : int;
  failed : int;
  cancelled : int;
  rejected : int;
  queued : int;
  running : bool;
  queue_capacity : int;
  uptime_s : float;
  interned_circuits : int;
  pooled_managers : int;
  slo : slo_stat list;
}

type response =
  | Submitted of { id : int; position : int }
  | Job_status of { id : int; state : job_state; position : int option }
  | Progress of { id : int; phase : string; seq : int }
  | Result of result
  | Stats_reply of server_stats
  | Metrics_reply of { text : string; json : Obs.Json.t }
  | Trace_reply of { id : int; trace : Obs.Json.t }
  | Error_reply of { code : string; message : string }
      (** codes: [parse], [bad_request], [queue_full], [shutting_down],
          [unknown_job], [not_owner], [oversized], [no_trace] *)
  | Shutdown_ack

val request_to_json : request -> Obs.Json.t
val response_to_json : response -> Obs.Json.t

(** Total decoders: [Error (code, message)] on any malformed input. *)
val request_of_json : Obs.Json.t -> (request, string * string) Stdlib.result

val response_of_json : Obs.Json.t -> (response, string * string) Stdlib.result
val request_of_string : string -> (request, string * string) Stdlib.result
val response_of_string : string -> (response, string * string) Stdlib.result
val encode_request : request -> string
val encode_response : response -> string
