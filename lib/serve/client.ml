(* Blocking protocol client. See client.mli. *)

type t = {
  fd : Unix.file_descr;
  decoder : Frame.Decoder.t;
  mutable inbox : Msg.response list; (* decoded, undelivered; oldest first *)
  buf : Bytes.t;
}

let connect (listen : Server.listen) =
  let fd, addr =
    match listen with
    | `Unix path ->
      (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | `Tcp (host, port) ->
      let inet = (Unix.gethostbyname host).Unix.h_addr_list.(0) in
      (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0, Unix.ADDR_INET (inet, port))
  in
  Unix.connect fd addr;
  {
    fd;
    decoder = Frame.Decoder.create ();
    inbox = [];
    buf = Bytes.create 65536;
  }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let len = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off < len then go (off + Unix.write fd b off (len - off))
  in
  go 0

let send t req = write_all t.fd (Frame.encode (Msg.encode_request req))

let decode_event = function
  | Frame.Decoder.Frame payload -> (
    match Msg.response_of_string payload with
    | Ok resp -> resp
    | Error (code, msg) ->
      failwith (Printf.sprintf "undecodable response (%s): %s" code msg))
  | Frame.Decoder.Oversized n ->
    failwith (Printf.sprintf "oversized response frame (%d bytes)" n)
  | Frame.Decoder.Corrupt msg -> failwith ("corrupt response stream: " ^ msg)

let rec fill t =
  match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
  | 0 -> failwith "server closed the connection"
  | n ->
    let events = Frame.Decoder.feed t.decoder t.buf 0 n in
    t.inbox <- t.inbox @ List.map decode_event events;
    if t.inbox = [] then fill t
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill t

let recv t =
  if t.inbox = [] then fill t;
  match t.inbox with
  | r :: rest ->
    t.inbox <- rest;
    r
  | [] -> assert false

(* Wait for the first response satisfying [want]; anything else goes
   through [other] (which may stash it for later delivery). *)
let rec recv_where t want other =
  let r = recv t in
  match want r with
  | Some v -> v
  | None ->
    other r;
    recv_where t want other

let submit_wait ?(on_progress = fun ~phase:_ ~seq:_ -> ()) t spec =
  send t (Msg.Submit spec);
  let deferred = ref [] in
  let stash r = deferred := r :: !deferred in
  let id =
    recv_where t
      (function
        | Msg.Submitted { id; _ } -> Some id
        | Msg.Error_reply { code; message } ->
          failwith (Printf.sprintf "submit rejected (%s): %s" code message)
        | _ -> None)
      stash
  in
  let result =
    recv_where t
      (function
        | Msg.Result r when r.Msg.id = id -> Some r
        | _ -> None)
      (function
        | Msg.Progress { id = pid; phase; seq } when pid = id ->
          on_progress ~phase ~seq
        | r -> stash r)
  in
  t.inbox <- List.rev !deferred @ t.inbox;
  (id, result)

let stats t =
  send t Msg.Stats;
  let deferred = ref [] in
  let s =
    recv_where t
      (function
        | Msg.Stats_reply s -> Some s
        | Msg.Error_reply { code; message } ->
          failwith (Printf.sprintf "stats failed (%s): %s" code message)
        | _ -> None)
      (fun r -> deferred := r :: !deferred)
  in
  t.inbox <- List.rev !deferred @ t.inbox;
  s

let metrics t =
  send t Msg.Metrics;
  let deferred = ref [] in
  let m =
    recv_where t
      (function
        | Msg.Metrics_reply { text; json } -> Some (text, json)
        | Msg.Error_reply { code; message } ->
          failwith (Printf.sprintf "metrics failed (%s): %s" code message)
        | _ -> None)
      (fun r -> deferred := r :: !deferred)
  in
  t.inbox <- List.rev !deferred @ t.inbox;
  m

let job_trace t id =
  send t (Msg.Trace id);
  let deferred = ref [] in
  let tr =
    recv_where t
      (function
        | Msg.Trace_reply { id = rid; trace } when rid = id -> Some trace
        | Msg.Error_reply { code; message } ->
          failwith (Printf.sprintf "trace failed (%s): %s" code message)
        | _ -> None)
      (fun r -> deferred := r :: !deferred)
  in
  t.inbox <- List.rev !deferred @ t.inbox;
  tr

let shutdown t =
  send t Msg.Shutdown;
  let deferred = ref [] in
  recv_where t
    (function
      | Msg.Shutdown_ack -> Some ()
      | Msg.Error_reply { code; message } ->
        failwith (Printf.sprintf "shutdown failed (%s): %s" code message)
      | _ -> None)
    (fun r -> deferred := r :: !deferred);
  t.inbox <- List.rev !deferred @ t.inbox
