(* Partitioned parallel BDD engine for globals + SPCF.

   The whole-circuit analyses (global node functions, then one SPCF per
   output) dominate wall-clock on the paper's large circuits, and both
   funnel through a single BDD manager — the per-output job parallelism
   of the driver cannot help a caller that wants one circuit analyzed.
   This module splits the circuit's output cones into support-clustered
   partitions (Network.Partition), builds each partition's globals and
   SPCFs in a private manager on its own pool worker, and drains the
   per-partition results into the caller's manager with Bdd.transfer in
   fixed partition order.

   Determinism. The partition depends only on wiring and cap (never on
   -j); each partition manager's contents are a pure function of its
   cluster; and the merge transfers results in cluster order on the
   awaiting domain. Hence at any -j >= 2 the destination manager ends up
   with bit-identical edges. The -j 1 path skips partitioning entirely
   and builds into [dst] directly — the single-manager reference; its
   edges are value-identical (same functions) to the partitioned runs',
   which tests check by transferring both sides into one manager, where
   canonicity makes function equality an integer compare.

   Governance. The job guard's node ceiling is divided across the
   partitions (summing to the job budget); a partition that blows its
   share is retried sequentially at merge position with the undivided
   job guard — the per-partition rung of the degradation ladder — and
   only if that also blows does the failure propagate to the caller's
   ladder. *)

type result = { global : Bdd.t; spcf : Bdd.t }

(* [Det]: partition structure, retry decisions and transfer volumes are
   functions of (net, cap, budget) only; per-task counters are absorbed
   in submission order by Par. *)
let m_reference_runs = Obs.counter "bddpar.reference_runs"
let m_partitioned_runs = Obs.counter "bddpar.partitioned_runs"
let m_partition_retries = Obs.counter "bddpar.partition_retries"
let m_transferred_nodes = Obs.counter "bddpar.transferred_nodes"
let sp_analyze = Obs.span "bddpar.analyze"
let sp_partition_build = Obs.span "bddpar.partition_build"
let sp_merge = Obs.span "bddpar.merge"

(* Globals + one SPCF per listed output, over [nodes] only, into [man].
   Shared by the partition tasks, the sequential retry, and (with the
   full output list and topo order) the -j 1 reference. *)
let build_cluster ~guard man net ~analysis ~levels ~delta ~max_nodes ~nodes
    ~outputs =
  let globals = Network.Globals.of_cluster ~guard man net ~nodes in
  List.map
    (fun oi ->
      let out = Network.output net oi in
      let spcf =
        if Network.is_input net out.Network.node then Bdd.bfalse man
        else
          Timing.Spcf.approx ~guard man net globals ~levels ~out
            ~delta:(delta out) ~max_nodes ~analysis ()
      in
      (oi, globals.(out.Network.node), spcf))
    outputs

let analyze ?pool ?(guard = Guard.none) ?cap ?(max_nodes = 24) ?delta ~dst net
    =
  Obs.with_span sp_analyze @@ fun () ->
  let pool = match pool with Some p -> p | None -> Par.shared () in
  let levels = Network.Levels.compute net in
  let delta =
    match delta with
    | Some d -> d
    | None -> fun (o : Network.output) -> levels.(o.Network.node)
  in
  let nouts = Network.num_outputs net in
  let results =
    Array.make nouts { global = Bdd.bfalse dst; spcf = Bdd.bfalse dst }
  in
  let all_outputs = List.init nouts Fun.id in
  if Par.Pool.size pool <= 1 then begin
    (* Single-manager reference: everything straight into [dst]. *)
    Obs.incr m_reference_runs;
    let analysis = Network.Analysis.create net in
    List.iter
      (fun (oi, g, s) -> results.(oi) <- { global = g; spcf = s })
      (build_cluster ~guard dst net ~analysis ~levels ~delta ~max_nodes
         ~nodes:(Network.topo_order net) ~outputs:all_outputs)
  end
  else begin
    Obs.incr m_partitioned_runs;
    let clusters = Array.to_list (Network.Partition.compute ?cap net) in
    let guards = Array.of_list (Guard.divide guard (List.length clusters)) in
    let jobs =
      List.mapi (fun i (c : Network.Partition.cluster) -> (i, c)) clusters
    in
    let task (wnet, wanalysis) (i, (c : Network.Partition.cluster)) =
      Obs.with_span sp_partition_build @@ fun () ->
      let pguard = guards.(i) in
      let man = Bdd.create ~guard:pguard () in
      match
        build_cluster ~guard:pguard man wnet ~analysis:wanalysis ~levels
          ~delta ~max_nodes ~nodes:c.Network.Partition.nodes
          ~outputs:c.Network.Partition.outputs
      with
      | built -> Ok (man, built)
      | exception
          Guard.Blowup
            { resource = Guard.Bdd_nodes | Guard.Sat_conflicts; _ } ->
        (* This partition blew its divided share; the merge step retries
           it under the undivided job budget. Time blowups propagate —
           retrying cannot buy time back. *)
        Error ()
    in
    let drain src built =
      let before = (Bdd.stats dst).Bdd.transfer_memo_entries in
      List.iter
        (fun (oi, g, s) ->
          results.(oi) <-
            {
              global = Bdd.transfer ~src ~dst g;
              spcf = Bdd.transfer ~src ~dst s;
            })
        built;
      Obs.add m_transferred_nodes
        ((Bdd.stats dst).Bdd.transfer_memo_entries - before)
    in
    let analysis = lazy (Network.Analysis.create net) in
    Par.map_merge ~pool
      ~init:(fun () ->
        let w = Network.copy net in
        (w, Network.Analysis.create w))
      ~f:task
      ~merge:(fun () (_, c) outcome ->
        Obs.with_span sp_merge @@ fun () ->
        match outcome with
        | Ok (man, built) -> drain man built
        | Error () ->
          (* Per-partition degradation rung: sequential retry at merge
             position with the whole job budget. Deterministic — merge
             order is submission order. *)
          Obs.incr m_partition_retries;
          let man = Bdd.create ~guard () in
          drain man
            (build_cluster ~guard man net ~analysis:(Lazy.force analysis)
               ~levels ~delta ~max_nodes ~nodes:c.Network.Partition.nodes
               ~outputs:c.Network.Partition.outputs))
      () jobs
  end;
  results
