(** Partitioned parallel BDD engine for whole-circuit analyses.

    Builds, for every output of a network, its global function and its
    speed-path characteristic function (SPCF, {!Timing.Spcf.approx}),
    in parallel across support-clustered partitions of the output cones
    ({!Network.Partition}): each partition gets a private [Bdd.man]
    owned by one pool worker, and the per-partition results are drained
    into the caller's manager with {!Bdd.transfer} in fixed partition
    order.

    Determinism: the partition depends only on wiring and [cap]; merge
    order is submission order; so every [-j >= 2] run leaves
    bit-identical edges in [dst]. On a 1-job pool the engine skips
    partitioning and builds directly into [dst] — the single-manager
    reference, value-identical (same functions) to the partitioned
    runs. *)

(** Per-output result, as edges of the destination manager. *)
type result = { global : Bdd.t; spcf : Bdd.t }

(** [analyze ~dst net] returns per-output globals and SPCFs (indexed in
    {!Network.outputs} order), built in parallel on [pool] (default
    {!Par.shared}) and materialized in [dst].

    [guard] is the job budget: its node ceiling is {!Guard.divide}d
    across the partitions, a partition that blows its share is retried
    sequentially under the undivided budget (counted by
    [bddpar.partition_retries]), and only a second blowup — or a
    [Time] blowup, which retrying cannot cure — propagates to the
    caller. [dst] should be created with the same [guard] if the
    caller wants the merge governed too.

    [cap] is the partition size cap ({!Network.Partition.compute});
    [max_nodes] bounds each SPCF's late-node union (default 24);
    [delta] is the per-output SPCF threshold, defaulting to the
    output's own level (its critical paths). *)
val analyze :
  ?pool:Par.Pool.t ->
  ?guard:Guard.t ->
  ?cap:int ->
  ?max_nodes:int ->
  ?delta:(Network.output -> int) ->
  dst:Bdd.man ->
  Network.t ->
  result array
