(** Speed-path characteristic functions (Sec. 3.1 of the paper).

    For a threshold [delta], the SPCF of an output collects the input
    minterms that exercise paths of [delta] or more logic levels. Two
    engines are provided, mirroring the paper's discussion:

    - {!exact} computes, for small input counts, the floating-mode
      sensitizable delay of every minterm (controlling-value semantics on
      the AIG: a controlled AND answers as soon as its earliest
      controlling input arrives) and keeps the minterms at or above the
      threshold. This matches the exact, path-based engines of [7,19].
    - {!approx} is the computationally cheap node-based approximation in
      the spirit of [19-21] (telescopic units): the union, over
      late nodes of the technology-independent network, of the Boolean
      difference of the output with respect to the node — the minterms on
      which the output functionally depends on slow logic.

    The paper uses the SPCF only as a guiding metric, so the
    approximation is the default in the synthesis driver. *)

(** Sensitizable (floating-mode) delay of every output for one input
    assignment. Returns per-node delays; inputs are 0. *)
val floating_delays : Aig.t -> bool array -> int array

(** [exact g ~out ~delta] is the set of input minterms whose floating
    delay at output [out] (index into the outputs) is at least [delta].
    Requires [Aig.num_inputs g <= 16]. *)
val exact : Aig.t -> out:int -> delta:int -> Logic.Tt.t

(** [approx man net globals ~levels ~out ~delta ~max_nodes] over the
    technology-independent network. [levels] are the paper's node levels;
    [out] is the output record. At most [max_nodes] late nodes are
    unioned (deepest first).

    All late-node Boolean differences are computed in one shared
    backward substitution pass: single-fanout chain nodes extend the
    next node's altered output function by the chain rule (one
    [apply_tt] + one [compose] each, memoized along the chain), and
    only reconvergent nodes pay a forward altered-cone walk. One
    scratch BDD variable (index [Network.num_inputs net]) is reused by
    every query, so the manager's variable count stays bounded. The
    result is the same function — hence, BDDs being canonical, the same
    BDD — as a per-late-node union of {!boolean_difference}.

    [analysis] supplies cached cone/fanout queries; without it they are
    recomputed from the network. [guard] (default {!Guard.none}) adds a
    per-late-node deadline cancellation point; on {!Guard.Blowup} the
    partial union is lost and the caller falls back down the
    degradation ladder. *)
val approx :
  ?guard:Guard.t ->
  Bdd.man ->
  Network.t ->
  Bdd.t array ->
  levels:int array ->
  out:Network.output ->
  delta:int ->
  ?max_nodes:int ->
  ?analysis:Network.Analysis.t ->
  unit ->
  Bdd.t

(** The late-node set {!approx} unions over: internal cone nodes whose
    level plus level-weighted distance to the output reaches [delta],
    deepest first, at most [max_nodes]. Exposed so reference
    implementations (bench, tests) can reproduce {!approx} as a union
    of {!boolean_difference}s over the same nodes. *)
val late_nodes :
  Network.t ->
  levels:int array ->
  out:Network.output ->
  delta:int ->
  max_nodes:int ->
  int list

(** [boolean_difference man net globals ~wrt ~out] is the set of input
    minterms where the value of output [out] changes if node [wrt] is
    flipped (computed by re-deriving the cone above [wrt] with a scratch
    BDD variable substituted for it; the variable — index
    [Network.num_inputs net] — is shared by all queries on the
    manager). *)
val boolean_difference :
  Bdd.man -> Network.t -> Bdd.t array -> wrt:int -> out:Network.output -> Bdd.t
