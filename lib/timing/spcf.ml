(* All [Det]: every call happens inside one output's decomposition job
   (or the sequential MFS pass) and does the same work at any -j. *)
let m_approx_calls = Obs.counter "spcf.approx_calls"
let m_exact_calls = Obs.counter "spcf.exact_calls"
let m_late_nodes = Obs.histogram "spcf.late_nodes"
let m_chain_steps = Obs.counter "spcf.chain_steps"
let m_reconvergent = Obs.counter "spcf.reconvergent_walks"
let m_bool_diffs = Obs.counter "spcf.bool_diffs"

let floating_delays g bits =
  let words = Array.map (fun b -> if b then -1L else 0L) bits in
  let values = Aig.sim g words in
  let value_of l =
    let w = values.(Aig.node_of_lit l) in
    let b = Int64.logand w 1L = 1L in
    if Aig.is_complemented l then not b else b
  in
  let nn = Aig.num_nodes g in
  let delay = Array.make nn 0 in
  for id = 1 to nn - 1 do
    if Aig.is_and g id then begin
      let f0, f1 = Aig.fanins g id in
      let v0 = value_of f0 and v1 = value_of f1 in
      let d0 = delay.(Aig.node_of_lit f0) and d1 = delay.(Aig.node_of_lit f1) in
      delay.(id) <-
        (match (v0, v1) with
         | false, false -> 1 + min d0 d1
         | false, true -> 1 + d0
         | true, false -> 1 + d1
         | true, true -> 1 + max d0 d1)
    end
  done;
  delay

let exact g ~out ~delta =
  Obs.incr m_exact_calls;
  let ni = Aig.num_inputs g in
  assert (ni <= 16);
  let _, ol = List.nth (Aig.outputs g) out in
  let oid = Aig.node_of_lit ol in
  let minterms = ref [] in
  for m = 0 to (1 lsl ni) - 1 do
    let bits = Array.init ni (fun i -> (m lsr i) land 1 = 1) in
    let delay = floating_delays g bits in
    if delay.(oid) >= delta then minterms := m :: !minterms
  done;
  Logic.Tt.of_minterms ni !minterms

(* The scratch variable standing for "the value of node [wrt]". One
   fixed index per network — just below the primary-input block — so
   repeated SPCF queries reuse a single variable instead of growing the
   manager's variable count without bound. Every result is independent
   of the scratch variable (the final xor of cofactors eliminates it),
   so by BDD canonicity the choice of index does not change any
   returned function. *)
let scratch_var net = Network.num_inputs net

(* Forward altered-cone walk: the global function of [oid] over the
   primary inputs and the scratch variable [v] substituted for node
   [wrt]. [None] when the output's cone does not contain [wrt]. *)
let altered_global man net globals ~cone ~vid ~wrt ~oid =
  let v = Bdd.var man vid in
  let altered = Hashtbl.create 64 in
  Hashtbl.replace altered wrt v;
  List.iter
    (fun id ->
      if (not (Hashtbl.mem altered id)) && not (Network.is_input net id) then begin
        let nd = Network.node net id in
        if Array.exists (Hashtbl.mem altered) nd.Network.fanins then begin
          let args =
            Array.map
              (fun f ->
                match Hashtbl.find_opt altered f with
                | Some b -> b
                | None -> globals.(f))
              nd.Network.fanins
          in
          Hashtbl.replace altered id (Bdd.apply_tt man nd.Network.func args)
        end
      end)
    cone;
  Hashtbl.find_opt altered oid

let boolean_difference man net globals ~wrt ~out =
  Obs.incr m_bool_diffs;
  let oid = out.Network.node in
  let vid = scratch_var net in
  match
    altered_global man net globals ~cone:(Network.cone net oid) ~vid ~wrt ~oid
  with
  | None -> Bdd.bfalse man (* output does not depend on [wrt] *)
  | Some y ->
    Bdd.bxor man (Bdd.restrict man y vid false) (Bdd.restrict man y vid true)

(* Late-node selection: the internal cone nodes whose level plus
   level-weighted distance to the output reaches [delta], deepest
   first, capped at [max_nodes]. *)
let late_nodes_in net ~cone ~fanouts ~levels ~oid ~delta ~max_nodes =
  (* Longest level-weighted distance from each cone node to the output. *)
  let rdepth = Hashtbl.create 64 in
  Hashtbl.replace rdepth oid 0;
  List.iter
    (fun id ->
      if id <> oid then begin
        let best = ref min_int in
        List.iter
          (fun o ->
            match Hashtbl.find_opt rdepth o with
            | Some d -> best := max !best (d + max 0 (levels.(o) - levels.(id)))
            | None -> ())
          fanouts.(id);
        if !best > min_int then Hashtbl.replace rdepth id !best
      end)
    (List.rev cone);
  let late =
    List.filter
      (fun id ->
        (not (Network.is_input net id))
        &&
        match Hashtbl.find_opt rdepth id with
        | Some d -> levels.(id) + d >= delta
        | None -> false)
      cone
  in
  (* Deepest nodes first; cap the union for efficiency. *)
  let late = List.sort (fun a b -> compare levels.(b) levels.(a)) late in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: r -> x :: take (n - 1) r
  in
  take max_nodes late

let late_nodes net ~levels ~out ~delta ~max_nodes =
  let oid = out.Network.node in
  late_nodes_in net ~cone:(Network.cone net oid) ~fanouts:(Network.fanouts net)
    ~levels ~oid ~delta ~max_nodes

let approx ?(guard = Guard.none) man net globals ~levels ~out ~delta
    ?(max_nodes = 24) ?analysis () =
  let oid = out.Network.node in
  Obs.incr m_approx_calls;
  let cone, fanouts =
    match analysis with
    | Some a -> (Network.Analysis.cone a oid, Network.Analysis.fanouts a)
    | None -> (Network.cone net oid, Network.fanouts net)
  in
  let late = late_nodes_in net ~cone ~fanouts ~levels ~oid ~delta ~max_nodes in
  Obs.observe m_late_nodes (List.length late);
  (* All Boolean differences in one shared backward cofactor pass.

     [walk wrt] is the cofactor pair (y[wrt := 0], y[wrt := 1]) — the
     output with a constant substituted for node [wrt]. Along
     single-fanout chains — the shape of the critical region this
     procedure exists for — it is built backward by the chain rule:
     with [k]'s only cone fanout [k1] and (y0, y1) = [walk k1],

       y[k := b] = ite (f_k1(..., b at k's positions, ...)) y1 y0,

     two [apply_tt] plus two [ite] per chain node, and the memo shares
     the whole suffix between every late node below it. This is exact:
     all paths from [k] to the output run through [k1]. Reconvergent
     (multi-fanout) nodes fall back to a forward altered-cone walk per
     constant, also memoized. Working with cofactor pairs rather than
     one BDD over an extra scratch variable keeps every intermediate
     result a function of the primary inputs alone — roughly half the
     nodes per operand — which is what makes the pass cheap. The old
     code re-walked the full altered cone once per late node; the
     results here are the same functions, hence — BDDs being
     canonical — the same SPCF. *)
  let in_cone = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_cone id ()) cone;
  let cone_fanouts id =
    List.filter (fun f -> Hashtbl.mem in_cone f) fanouts.(id)
  in
  (* Forward walk of the altered cone with the constant [b] substituted
     for node [wrt]. *)
  let const_global b ~wrt =
    let altered = Hashtbl.create 64 in
    Hashtbl.replace altered wrt
      (if b then Bdd.btrue man else Bdd.bfalse man);
    List.iter
      (fun id ->
        if (not (Hashtbl.mem altered id)) && not (Network.is_input net id)
        then begin
          let nd = Network.node net id in
          if Array.exists (Hashtbl.mem altered) nd.Network.fanins then begin
            let args =
              Array.map
                (fun f ->
                  match Hashtbl.find_opt altered f with
                  | Some x -> x
                  | None -> globals.(f))
                nd.Network.fanins
            in
            Hashtbl.replace altered id (Bdd.apply_tt man nd.Network.func args)
          end
        end)
      cone;
    match Hashtbl.find_opt altered oid with
    | Some y -> y
    | None -> globals.(oid) (* unreachable: [wrt] is in the cone *)
  in
  let memo = Hashtbl.create 64 in
  let rec walk wrt =
    if wrt = oid then (Bdd.bfalse man, Bdd.btrue man)
    else
      match Hashtbl.find_opt memo wrt with
      | Some p -> p
      | None ->
        let p =
          match cone_fanouts wrt with
          | [ k1 ] ->
            Obs.incr m_chain_steps;
            let nd = Network.node net k1 in
            let args b =
              Array.map
                (fun f ->
                  if f = wrt then
                    if b then Bdd.btrue man else Bdd.bfalse man
                  else globals.(f))
                nd.Network.fanins
            in
            let h0 = Bdd.apply_tt man nd.Network.func (args false) in
            let h1 = Bdd.apply_tt man nd.Network.func (args true) in
            let y0, y1 = walk k1 in
            (Bdd.ite man h0 y1 y0, Bdd.ite man h1 y1 y0)
          | _ ->
            Obs.incr m_reconvergent;
            (const_global false ~wrt, const_global true ~wrt)
        in
        Hashtbl.replace memo wrt p;
        p
  in
  List.fold_left
    (fun acc id ->
      (* Per-late-node cancellation point: each walk can be the most
         expensive BDD work of a decompose step. *)
      Guard.check_deadline guard ~site:"spcf.approx";
      let y0, y1 = walk id in
      Bdd.bor man acc (Bdd.bxor man y0 y1))
    (Bdd.bfalse man) late
