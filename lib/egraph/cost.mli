(** Pluggable cost functions for e-graph extraction and the portfolio.

    A cost has two halves. [node_cost] drives the bottom-up fixpoint of
    extraction: given a node's {!shape} and the best costs of its
    children it returns the node's cost, and extraction picks the
    cheapest node of every e-class. [measure] is the whole-circuit
    number the portfolio compares arms by — for the mapped metrics it
    runs the real technology mapper ({!Techmap.Eval}), so the
    node-local proxy only has to rank candidates, never to be
    absolute.

    [node_cost] must be monotone (not decreasing in any child cost) and
    must yield strictly increasing costs along a [Conj] edge, which is
    what keeps the extraction fixpoint cycle-free; every built-in
    satisfies both. *)

(** The node shapes of the e-graph language, cost-wise: [Leaf] covers
    constants and primary inputs (no children), [Neg] a complement
    (one child), [Conj] a conjunction (two children). *)
type shape = Leaf | Neg | Conj

type t = {
  name : string;
  node_cost : shape -> float array -> float;
      (** children's best costs, in child order; [ [||] ] for [Leaf] *)
  measure : Aig.t -> float;
      (** whole-circuit cost of an extracted (or arm-produced) AIG *)
}

(** AIG depth: [Conj] is one level above its deepest child, complement
    edges are free. [measure] is {!Aig.depth}. *)
val levels : t

(** AIG node count ([Conj] nodes, tree-counted in the proxy).
    [measure] is {!Aig.num_reachable_ands}. *)
val gates : t

(** Mapped-delay proxy: AND2 fanout-of-one delay per [Conj] level;
    [measure] maps the circuit and reads the STA arrival. *)
val delay : t

(** Mapped-area proxy: AND2 cell area per [Conj]; [measure] maps and
    sums cell areas. *)
val area : t

(** Dynamic-power proxy: AND2 pin switching power per [Conj];
    [measure] maps and runs the library power model. *)
val power : t

(** The built-in cost names, in the order above. *)
val names : string list

(** Look a built-in up by name. *)
val of_name : string -> t option

(** A user-supplied cost function (the "user-supplied closures" of the
    cost-generic contract). *)
val custom :
  name:string ->
  node_cost:(shape -> float array -> float) ->
  measure:(Aig.t -> float) ->
  t
