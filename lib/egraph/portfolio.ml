(* See portfolio.mli. *)

type plan = Parallel of Guard.t list | Sequential

let plan parent n =
  if Guard.divide_overcommits parent n then Sequential
  else Parallel (Guard.divide parent n)

type report = {
  winner : string;
  winner_cost : float;
  arm_costs : (string * float) list;
  sequential : bool;
}

let m_sequential = Obs.counter "portfolio.sequential_fallback"

(* Arms in run / tie-break order. The input floor runs last so that an
   optimizer beating it on cost also wins cost ties against it. *)
let arms (options : Lookahead.Driver.options) ~(cost : Cost.t) :
    (string * (Guard.t -> Aig.t -> Aig.t)) list =
  List.map (fun (name, f) -> (name, fun _ctx g -> f g)) Baselines.all
  @ [
      ( "lookahead",
        fun ctx g ->
          Lookahead.optimize
            ~options:
              {
                options with
                guard_budget = Guard.budget ctx;
                deadline = Some (Guard.deadline ctx);
              }
            g );
      ("egraph", fun ctx g -> Graph.optimize ~guard:ctx ~cost g);
      ("none", fun _ctx g -> g);
    ]

let arm_names =
  List.map fst (arms Lookahead.Driver.default ~cost:Cost.levels)

let run_ex ?(options = Lookahead.Driver.default) ?pool ~(cost : Cost.t) g =
  let arms = arms options ~cost in
  let deadline =
    match options.deadline with
    | Some d -> d
    | None ->
      if options.time_limit_s < infinity then
        Guard.Deadline.after options.time_limit_s
      else Guard.Deadline.never
  in
  let parent = Guard.create ~deadline options.guard_budget in
  let run_arm name f ctx =
    Obs.with_span (Obs.span ("portfolio.arm." ^ name)) (fun () ->
        let out = try f ctx g with Guard.Blowup _ -> g in
        (out, cost.Cost.measure out))
  in
  let sequential, results =
    match plan parent (List.length arms) with
    | Sequential ->
      (* More arms than remaining node budget: a divided slice would
         overcommit (Guard.divide's floor of 1), so share the whole
         context one arm at a time instead. *)
      (true, List.map (fun (name, f) -> run_arm name f parent) arms)
    | Parallel ctxs ->
      ( false,
        Par.map_list ?pool
          (fun ((name, f), ctx) -> run_arm name f ctx)
          (List.combine arms ctxs) )
  in
  if sequential then Obs.incr m_sequential;
  let named =
    List.map2 (fun (name, _) (out, c) -> (name, out, c)) arms results
  in
  (* Det accounting, on the calling domain, in fixed arm order. Costs
     are scaled to milli-units so floats survive the int counters. *)
  List.iter
    (fun (name, _, c) ->
      Obs.add
        (Obs.counter ("portfolio.cost." ^ name))
        (int_of_float (Float.round (c *. 1000.))))
    named;
  (* Smallest cost wins, ties to the earliest arm; the winner must
     certify against the input or the next-best takes over. The "none"
     arm is the input itself, so the fold below always succeeds. *)
  let ranked =
    List.stable_sort (fun (_, _, a) (_, _, b) -> compare a b) named
  in
  let winner, output, winner_cost =
    let rec first_sound = function
      | [] -> ("none", g, cost.Cost.measure g)
      | (name, out, c) :: rest ->
        if Aig.Cec.equivalent g out then (name, out, c) else first_sound rest
    in
    first_sound ranked
  in
  Obs.incr (Obs.counter ("portfolio.winner." ^ winner));
  ( output,
    {
      winner;
      winner_cost;
      arm_costs = List.map (fun (name, _, c) -> (name, c)) named;
      sequential;
    } )

let run ?options ?pool ~cost g = fst (run_ex ?options ?pool ~cost g)
