(* E-graph core. See graph.mli for the model; the short version: egg's
   hash-cons + union-find + deferred congruence repair, over the AIG
   node language with sorted And children (commutativity by
   construction) and a canonical complement pairing (complement
   cancellation by construction). *)

module Tt = Logic.Tt

type id = int

type enode =
  | Const
  | Input of int
  | Not of id
  | And of id * id

type t = {
  guard : Guard.t;
  mutable parent : int array; (* union-find, parent.(i) = i at roots *)
  mutable n : int; (* classes allocated *)
  memo : (enode, id) Hashtbl.t; (* canonical enode -> class *)
  mutable nodes : enode list array; (* per root: the class's e-nodes *)
  mutable parents : (enode * id) list array;
      (* per root: e-nodes that reference this class, and their class *)
  neg : (id, id) Hashtbl.t;
      (* canonical complement pairing; keys live at class roots, values
         are find-corrected on read *)
  mutable worklist : id list;
  mutable n_enodes : int;
  false_ : id;
  true_ : id;
  mutable n_inputs : int;
  mutable input_names : string option array;
  mutable outputs : (string * id) list; (* in source output order *)
}

let m_enodes = Obs.counter "egraph.enodes"
let m_unions = Obs.counter "egraph.unions"
let m_iterations = Obs.counter "egraph.iterations"
let m_assoc_apps = Obs.counter "egraph.assoc_apps"
let m_window_apps = Obs.counter "egraph.window_apps"
let m_best_so_far = Lookahead.Driver.rung_counter "egraph_best_so_far"
let site_mk = "egraph.mk_enode"
let site_saturate = "egraph.saturate"

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let gp = t.parent.(p) in
    t.parent.(i) <- gp;
    find t gp
  end

let canon t = function
  | (Const | Input _) as n -> n
  | Not a -> Not (find t a)
  | And (a, b) ->
    let a = find t a and b = find t b in
    if a <= b then And (a, b) else And (b, a)

let neg_find t a =
  match Hashtbl.find_opt t.neg (find t a) with
  | Some b -> Some (find t b)
  | None -> None

let ensure t cap =
  if cap > Array.length t.parent then begin
    let len = max cap (2 * Array.length t.parent) in
    let parent = Array.init len (fun i -> i) in
    Array.blit t.parent 0 parent 0 t.n;
    let nodes = Array.make len [] in
    Array.blit t.nodes 0 nodes 0 t.n;
    let parents = Array.make len [] in
    Array.blit t.parents 0 parents 0 t.n;
    t.parent <- parent;
    t.nodes <- nodes;
    t.parents <- parents
  end

(* A fresh class holding exactly [n]; the caller has already ticked the
   guard, checked the ceiling and consulted memo. *)
let fresh_class t n =
  ensure t (t.n + 1);
  let id = t.n in
  t.n <- t.n + 1;
  t.parent.(id) <- id;
  t.nodes.(id) <- [ n ];
  t.parents.(id) <- [];
  Hashtbl.replace t.memo n id;
  t.n_enodes <- t.n_enodes + 1;
  id

let create ?(guard = Guard.none) () =
  let t =
    {
      guard;
      parent = Array.init 16 (fun i -> i);
      n = 0;
      memo = Hashtbl.create 256;
      nodes = Array.make 16 [];
      parents = Array.make 16 [];
      neg = Hashtbl.create 64;
      worklist = [];
      n_enodes = 0;
      false_ = 0;
      true_ = 1;
      n_inputs = 0;
      input_names = [||];
      outputs = [];
    }
  in
  (* The constant classes are free: no tick, no ceiling — a budget of 1
     should govern the circuit's nodes, not the two constants every
     e-graph contains. *)
  let f = fresh_class t Const in
  let tr = fresh_class t (Not f) in
  t.parents.(f) <- [ (Not f, tr) ];
  Hashtbl.replace t.neg f tr;
  Hashtbl.replace t.neg tr f;
  t

let false_id t = t.false_
let true_id t = t.true_

let rec union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    (* Smaller id wins: canonical ids are stable under any merge order,
       which keeps extraction tie-breaks deterministic. *)
    let r, c = if ra < rb then (ra, rb) else (rb, ra) in
    t.parent.(c) <- r;
    t.nodes.(r) <- t.nodes.(r) @ t.nodes.(c);
    t.nodes.(c) <- [];
    t.parents.(r) <- t.parents.(r) @ t.parents.(c);
    t.parents.(c) <- [];
    t.worklist <- r :: t.worklist;
    Obs.incr m_unions;
    let nc = Hashtbl.find_opt t.neg c in
    Hashtbl.remove t.neg c;
    (match (nc, Hashtbl.find_opt t.neg r) with
    | None, _ -> ()
    | Some nc, None -> Hashtbl.replace t.neg r nc
    | Some nc, Some nr ->
      (* a = b forces not(a) = not(b); stale back-pointers are fine,
         reads find-correct both key and value *)
      ignore (union t nc nr));
    true
  end

(* Constant, idempotence and complement folds: the reason the e-graph
   never materializes trivially-reducible nodes. *)
let fold t n =
  match n with
  | Const -> Some t.false_
  | Input _ -> None
  | Not a ->
    let a = find t a in
    if a = t.false_ then Some t.true_
    else if a = t.true_ then Some t.false_
    else neg_find t a (* hash-consing of Not, and not(not x) = x *)
  | And (a, b) ->
    let a = find t a and b = find t b in
    if a = t.false_ || b = t.false_ then Some t.false_
    else if a = t.true_ then Some b
    else if b = t.true_ then Some a
    else if a = b then Some a
    else if neg_find t a = Some b then Some t.false_
    else None

let add t n0 =
  let n = canon t n0 in
  match fold t n with
  | Some id -> find t id
  | None -> (
    match Hashtbl.find_opt t.memo n with
    | Some id -> find t id
    | None ->
      Guard.tick_bdd t.guard ~site:site_mk;
      if t.n_enodes >= Guard.bdd_ceiling t.guard then
        raise
          (Guard.Blowup
             { resource = Guard.Bdd_nodes; site = site_mk; injected = false });
      let id = fresh_class t n in
      Obs.incr m_enodes;
      (match n with
      | Const | Input _ -> ()
      | Not a ->
        let ra = find t a in
        t.parents.(ra) <- (n, id) :: t.parents.(ra);
        Hashtbl.replace t.neg ra id;
        Hashtbl.replace t.neg id ra
      | And (a, b) ->
        let ra = find t a in
        t.parents.(ra) <- (n, id) :: t.parents.(ra);
        let rb = find t b in
        if rb <> ra then t.parents.(rb) <- (n, id) :: t.parents.(rb));
      id)

(* Congruence repair of one touched class: re-canonicalize its parents,
   re-intern them, and union any that collide — either with an existing
   memo entry or with each other. Allocates no e-nodes. *)
let repair t r =
  let ps = t.parents.(find t r) in
  t.parents.(find t r) <- [];
  List.iter (fun (pn, _) -> Hashtbl.remove t.memo pn) ps;
  let fresh = Hashtbl.create (max 8 (2 * List.length ps)) in
  List.iter
    (fun (pn, pc) ->
      let pn = canon t pn in
      let pc = find t pc in
      (match Hashtbl.find_opt t.memo pn with
      | Some other when find t other <> pc -> ignore (union t pc other)
      | _ -> ());
      Hashtbl.replace t.memo pn (find t pc);
      match Hashtbl.find_opt fresh pn with
      | Some other when find t other <> find t pc ->
        ignore (union t other pc)
      | Some _ -> ()
      | None -> Hashtbl.replace fresh pn (find t pc))
    ps;
  let r = find t r in
  Hashtbl.iter
    (fun pn pc -> t.parents.(r) <- (pn, find t pc) :: t.parents.(r))
    fresh

let rebuild t =
  let dirty = t.worklist <> [] in
  while t.worklist <> [] do
    let todo = List.sort_uniq compare (List.map (find t) t.worklist) in
    t.worklist <- [];
    List.iter (fun r -> repair t r) todo
  done;
  (* A node sits on both children's parents lists, each holding the
     snapshot of its last repair. When repairs race through different
     snapshots, removal by the older one is a no-op and a superseded
     key lingers. Such keys are unreachable by canonical lookups (a
     merged id never becomes a root again, and repair always inserts
     the current canonical form), so sweeping them restores the strict
     all-keys-canonical invariant without touching live entries. *)
  if dirty then begin
    let stale =
      Hashtbl.fold
        (fun n _ acc -> if canon t n <> n then n :: acc else acc)
        t.memo []
    in
    List.iter (Hashtbl.remove t.memo) stale
  end

let num_enodes t = t.n_enodes

let classes t =
  let acc = ref [] in
  for c = t.n - 1 downto 0 do
    if find t c = c then acc := c :: !acc
  done;
  !acc

let num_classes t = List.length (classes t)
let nodes_of t c = t.nodes.(find t c)

let invariants_ok t =
  t.worklist = []
  && Hashtbl.fold
       (fun n id ok ->
         ok && canon t n = n
         &&
         match Hashtbl.find_opt t.memo (canon t n) with
         | Some id' -> find t id' = find t id
         | None -> false)
       t.memo true
  && List.for_all
       (fun r ->
         List.for_all
           (fun n ->
             match Hashtbl.find_opt t.memo (canon t n) with
             | Some id -> find t id = r
             | None -> false)
           t.nodes.(r))
       (classes t)

(* --- building from a circuit ------------------------------------------ *)

let of_aig ?guard g =
  let t = create ?guard () in
  t.n_inputs <- Aig.num_inputs g;
  t.input_names <- Array.init t.n_inputs (fun i -> Aig.input_name g i);
  let cls = Array.make (max 1 (Aig.num_nodes g)) (-1) in
  cls.(0) <- t.false_;
  let lit l =
    let c = cls.(Aig.node_of_lit l) in
    if Aig.is_complemented l then add t (Not c) else c
  in
  for node = 1 to Aig.num_nodes g - 1 do
    if Aig.is_input g node then
      cls.(node) <- add t (Input (Aig.input_index g node))
    else begin
      let fa, fb = Aig.fanins g node in
      cls.(node) <- add t (And (lit fa, lit fb))
    end
  done;
  t.outputs <- List.map (fun (name, l) -> (name, lit l)) (Aig.outputs g);
  t

(* --- extraction -------------------------------------------------------- *)

(* Bottom-up fixpoint: ascending class ids, nodes in insertion order,
   strictly-smaller cost to update — all deterministic, and the strict
   inequality keeps the chosen-best graph acyclic for any monotone cost
   (a cycle would need some node's cost to strictly drop when adopting
   an edge of equal cost). *)
let best_costs t (cost : Cost.t) =
  rebuild t;
  let n = t.n in
  let costs = Array.make n infinity in
  let best = Array.make n None in
  let node_cost = function
    | Const | Input _ -> cost.Cost.node_cost Cost.Leaf [||]
    | Not a ->
      let ca = costs.(find t a) in
      if ca = infinity then infinity else cost.Cost.node_cost Cost.Neg [| ca |]
    | And (a, b) ->
      let ca = costs.(find t a) and cb = costs.(find t b) in
      if ca = infinity || cb = infinity then infinity
      else cost.Cost.node_cost Cost.Conj [| ca; cb |]
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for c = 0 to n - 1 do
      if find t c = c then
        List.iter
          (fun nd ->
            let k = node_cost nd in
            if k < costs.(c) then begin
              costs.(c) <- k;
              best.(c) <- Some nd;
              changed := true
            end)
          t.nodes.(c)
    done
  done;
  (costs, best)

let best_cost t cost c =
  let costs, _ = best_costs t cost in
  costs.(find t c)

let build_best t best roots =
  let g = Aig.create () in
  let in_lits =
    Array.init t.n_inputs (fun i ->
        match t.input_names.(i) with
        | Some name -> Aig.add_input ~name g
        | None -> Aig.add_input g)
  in
  let memo = Hashtbl.create 256 in
  let rec build c =
    let c = find t c in
    match Hashtbl.find_opt memo c with
    | Some l -> l
    | None ->
      let l =
        match best.(c) with
        | None -> invalid_arg "Egraph.extract: class with no finite cost"
        | Some Const -> Aig.const_false
        | Some (Input i) -> in_lits.(i)
        | Some (Not a) -> Aig.bnot (build a)
        | Some (And (a, b)) -> Aig.band g (build a) (build b)
      in
      Hashtbl.replace memo c l;
      l
  in
  List.iter (fun (name, root) -> Aig.add_output g name (build root)) roots;
  g

let extract t cost =
  let _, best = best_costs t cost in
  build_best t best t.outputs

(* --- saturation -------------------------------------------------------- *)

(* Classes the current best extraction actually uses, from the output
   roots down — the ones worth spending window applications on. *)
let reachable_best t best =
  let seen = Hashtbl.create 256 in
  let rec go c =
    let c = find t c in
    if not (Hashtbl.mem seen c) then begin
      Hashtbl.replace seen c ();
      match best.(c) with
      | Some (Not a) -> go a
      | Some (And (a, b)) ->
        go a;
        go b
      | _ -> ()
    end
  in
  List.iter (fun (_, root) -> go root) t.outputs;
  seen

(* Truth table of a window: expand the chosen-best tree from [root],
   complement edges free, conjunctions until [depth] runs out; every
   frontier class becomes a leaf variable (at most [max_window] of
   them, else the window is rejected). A class may appear both expanded
   and as a leaf — the table is still exact on every consistent leaf
   valuation, which is the only kind substitution ever produces. *)
exception Too_wide

let window_tt t best ~max_window root =
  let leaves = ref [] in
  let n_leaves = ref 0 in
  let leaf_var c =
    match List.assoc_opt c !leaves with
    | Some v -> v
    | None ->
      if !n_leaves >= max_window then raise Too_wide;
      let v = !n_leaves in
      leaves := (c, v) :: !leaves;
      incr n_leaves;
      v
  in
  let rec ev c depth =
    let c = find t c in
    if c = t.false_ then Tt.const_false max_window
    else if c = t.true_ then Tt.const_true max_window
    else
      match best.(c) with
      | Some (Not a) when depth > 0 -> Tt.lnot (ev a (depth - 1))
      | Some (And (a, b)) when depth > 0 ->
        Tt.land_ (ev a (depth - 1)) (ev b (depth - 1))
      | Some (Input _) | Some Const | Some (Not _) | Some (And _) | None ->
        Tt.var max_window (leaf_var c)
  in
  match ev root (4 * max_window) with
  | tt ->
    let arr = Array.make !n_leaves t.false_ in
    List.iter (fun (c, v) -> arr.(v) <- c) !leaves;
    Some (arr, tt)
  | exception Too_wide -> None

(* Shannon resynthesis, latest-arriving leaf first: decompose on the
   support variable whose class sits deepest (max level, ties to the
   smaller leaf index), so the late signal ends up adjacent to the
   window output — the paper's lookahead selection, as a rule. *)
let rec synth_tt t levels_of leaves tt =
  if Tt.is_const_false tt then t.false_
  else if Tt.is_const_true tt then t.true_
  else begin
    let v =
      match Tt.support tt with
      | [] -> assert false
      | v0 :: rest ->
        List.fold_left
          (fun acc v -> if levels_of leaves.(v) > levels_of leaves.(acc) then v else acc)
          v0 rest
    in
    let x = leaves.(v) in
    let h1 = synth_tt t levels_of leaves (Tt.cofactor tt v true) in
    let h0 = synth_tt t levels_of leaves (Tt.cofactor tt v false) in
    (* x·h1 + ¬x·h0 as ¬(¬(x∧h1) ∧ ¬(¬x∧h0)); the folds collapse the
       degenerate cofactors (h1 = true, h0 = false, ...) for free *)
    let p = add t (And (x, h1)) in
    let q = add t (And (add t (Not x), h0)) in
    add t (Not (add t (And (add t (Not p), add t (Not q)))))
  end

(* One saturation iteration: collect matches read-only, then apply.
   Returns (unions performed, enodes created). *)
let iteration t ~max_apps ~max_window ~assoc_cap =
  let unions0 = ref 0 in
  let enodes0 = t.n_enodes in
  let note b = if b then incr unions0 in
  (* Rule 1 — associativity: c = (x·y)·q rebalances to x·(y·q). With
     sorted children this also yields the commuted shapes, and together
     with the idempotence fold it subsumes absorption. Matches are
     collected before any application so the match set is a function of
     the iteration's starting e-graph. *)
  let assoc = ref [] in
  let n_assoc = ref 0 in
  List.iter
    (fun c ->
      List.iter
        (fun nd ->
          match nd with
          | And (a, b) when !n_assoc < assoc_cap ->
            let try_child p q =
              List.iter
                (fun pn ->
                  match pn with
                  | And (x, y) when !n_assoc < assoc_cap ->
                    assoc := (c, x, y, q) :: !assoc;
                    incr n_assoc
                  | _ -> ())
                t.nodes.(find t p)
            in
            try_child a b;
            try_child b a
          | _ -> ())
        t.nodes.(c))
    (classes t);
  List.iter
    (fun (c, x, y, q) ->
      let inner = add t (And (y, q)) in
      let outer = add t (And (x, inner)) in
      note (union t c outer);
      Obs.incr m_assoc_apps)
    (List.rev !assoc);
  rebuild t;
  (* Rule 2 — the lookahead window rule, on the classes the current
     best extraction actually uses, deepest first: cut a ≤ max_window
     leaf window out of the chosen-best tree, compute its function, and
     resynthesize it by Shannon decomposition on the latest-arriving
     leaf. Unioning the resynthesis into the class is the paper's
     Σ-selection expressed as an equality. *)
  let costs, best = best_costs t Cost.levels in
  let reach = reachable_best t best in
  let candidates =
    List.filter
      (fun c ->
        Hashtbl.mem reach c
        && match best.(c) with Some (And _) -> true | _ -> false)
      (classes t)
  in
  let candidates =
    List.stable_sort
      (fun a b -> compare costs.(b) costs.(a))
      candidates
  in
  let levels_of c = costs.(find t c) in
  let applied = ref 0 in
  List.iter
    (fun c ->
      if !applied < max_apps then
        match window_tt t best ~max_window c with
        | Some (leaves, tt) when Array.length leaves >= 2 ->
          let r = synth_tt t levels_of leaves tt in
          note (union t c r);
          incr applied;
          Obs.incr m_window_apps
        | _ -> ())
    candidates;
  rebuild t;
  (!unions0, t.n_enodes - enodes0)

type outcome = Saturated | Iteration_limit | Degraded of Guard.resource

let saturate ?(max_iters = 8) ?(max_apps = 24) ?(max_window = 6)
    ?(max_enodes = 50_000) t =
  rebuild t;
  let outcome = ref Iteration_limit in
  (try
     let iters = ref 0 in
     let continue_ = ref true in
     while !continue_ && !iters < max_iters do
       Guard.check_deadline t.guard ~site:site_saturate;
       if t.n_enodes > max_enodes then continue_ := false
       else begin
         let unions, created = iteration t ~max_apps ~max_window ~assoc_cap:2048 in
         incr iters;
         Obs.incr m_iterations;
         if unions = 0 && created = 0 then begin
           outcome := Saturated;
           continue_ := false
         end
       end
     done
   with Guard.Blowup { resource; _ } ->
     (* Mid-iteration state is fine: rebuild allocates nothing, and the
        e-graph still contains everything learned so far. *)
     rebuild t;
     Obs.incr m_best_so_far;
     outcome := Degraded resource);
  !outcome

let optimize ?(guard = Guard.none) ?max_iters ?max_apps ?max_window ?max_enodes
    ~cost g =
  match of_aig ~guard g with
  | exception Guard.Blowup _ ->
    (* Not even the input fits under the ceiling: the only sound
       best-so-far is the input itself. *)
    Obs.incr m_best_so_far;
    g
  | t ->
    ignore (saturate ?max_iters ?max_apps ?max_window ?max_enodes t);
    extract t cost
