(** Cost-generic portfolio driver: run every optimizer the repo owns as
    a parallel arm and keep the best result under a pluggable cost.

    The arms, in fixed order, are the three baseline recipes
    ({!Baselines.all}: [sis], [abc], [dc]), the paper's lookahead flow,
    e-graph saturation ({!Graph.optimize} under the same cost), and the
    untouched input as a floor. Arms run on the {!Par} pool, each under
    its own {!Guard.divide} slice of the portfolio's budget, so a
    blowup in one arm cannot starve the others; an arm that blows up
    past its own degradation ladder contributes the input circuit.

    {b Winner selection} is deterministic: smallest [cost.measure],
    ties broken by the fixed arm order above. The winner is certified
    with {!Aig.Cec.equivalent} against the input; a failing arm is
    excluded and the next-best takes over (the input floor always
    passes), so the returned circuit is CEC-equal to the input by
    construction.

    {b Determinism across [-j].} Arm contexts are divided up front,
    results are collected in submission order, and every portfolio
    counter ([portfolio.cost.*], [portfolio.winner.*],
    [portfolio.sequential_fallback] — all [Det]) is recorded on the
    calling domain in fixed arm order after collection, so reports are
    bit-identical for any [-j]. *)

(** How to split the portfolio's guard context over [n] arms. *)
type plan =
  | Parallel of Guard.t list  (** one divided sub-context per arm *)
  | Sequential
      (** {!Guard.divide} would overcommit (the floor-1 path: more arms
          than remaining node budget) — run the arms one after another
          under the undivided parent context instead *)

(** [plan parent n] chooses {!Sequential} exactly when
    {!Guard.divide_overcommits}[ parent n]. *)
val plan : Guard.t -> int -> plan

(** Arm names, in run/tie-break order. *)
val arm_names : string list

type report = {
  winner : string;
  winner_cost : float;
  arm_costs : (string * float) list;  (** in arm order *)
  sequential : bool;  (** the {!Sequential} fallback was taken *)
}

(** Run the portfolio. [options] seeds the lookahead arm and supplies
    the shared budget/deadline ({!Lookahead.Driver.default} when
    omitted); [pool] defaults to the shared {!Par} pool. *)
val run_ex :
  ?options:Lookahead.Driver.options ->
  ?pool:Par.Pool.t ->
  cost:Cost.t ->
  Aig.t ->
  Aig.t * report

(** {!run_ex} without the report. *)
val run :
  ?options:Lookahead.Driver.options ->
  ?pool:Par.Pool.t ->
  cost:Cost.t ->
  Aig.t ->
  Aig.t
