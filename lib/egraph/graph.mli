(** An e-graph over the AIG node language, with equality saturation.

    The term language is the AIG's: the constant false, primary inputs,
    complement, and two-input conjunction — [And] children are kept
    sorted, so commutativity is a property of hash-consing rather than
    a rewrite rule. E-nodes are hash-consed into e-classes; {!union}
    merges classes and defers congruence repair to a worklist
    {!rebuild}, the egg algorithm. Saturation applies the transforms
    the rest of the stack already owns, as rules: associativity
    rebalancing, complement cancellation (structural, via a canonical
    complement pairing), and the lookahead window rule — resynthesize a
    small window's function by Shannon decomposition, latest-arriving
    leaf first, exactly the paper's [y = Σ·y1 + ¬Σ·y0] shape.

    {b Resource governance.} Every fresh e-node passes
    [Guard.tick_bdd ~site:"egraph.mk_enode"] and is checked against the
    context's node ceiling; each saturation iteration passes
    [Guard.check_deadline ~site:"egraph.saturate"]. A {!Guard.Blowup}
    (real or injected) degrades saturation to best-so-far extraction —
    the e-graph always contains the input circuit, so extraction under
    any cost never does worse than the input. Degradations are recorded
    on the [Det] counter [guard.rung.egraph_best_so_far].

    {b Determinism.} Saturation is sequential and all rule matching
    walks classes in ascending id order, so the e-graph — and hence the
    extracted circuit — is a pure function of the input AIG and the
    guard budget, independent of [-j]. *)

type t

(** E-class id. Always pass through {!find} before comparing. *)
type id = int

type enode =
  | Const  (** constant false *)
  | Input of int  (** primary input, by index *)
  | Not of id  (** complement of an e-class *)
  | And of id * id  (** conjunction; children kept sorted by class id *)

(** An empty e-graph (containing only the constant classes) under an
    optional guard context (default {!Guard.none}). *)
val create : ?guard:Guard.t -> unit -> t

(** Build the e-graph of a circuit: one class per AIG node plus [Not]
    wrappers for complemented literals; output roots are remembered for
    {!extract}. Raises {!Guard.Blowup} if the context's node ceiling
    cannot even hold the input (callers fall back to the input
    circuit — see {!optimize}). *)
val of_aig : ?guard:Guard.t -> Aig.t -> t

val false_id : t -> id
val true_id : t -> id

(** Hash-cons an e-node (children are canonicalized first; constant,
    idempotence and complement folds apply). Ticks the guard and
    raises {!Guard.Blowup} at ["egraph.mk_enode"] when a fresh node
    would cross the ceiling. *)
val add : t -> enode -> id

(** Merge two e-classes; [false] if already equal. Congruence repair is
    deferred — call {!rebuild} before reading the e-graph. *)
val union : t -> id -> id -> bool

val find : t -> id -> id

(** Drain the worklist: recanonicalize the parents of every touched
    class, re-intern them, and union any that became congruent.
    Allocates no new e-nodes, so it never ticks the guard — safe to
    call from a [Blowup] handler before best-so-far extraction. *)
val rebuild : t -> unit

val num_enodes : t -> int
val num_classes : t -> int

(** Canonical ids of all e-classes, ascending. *)
val classes : t -> id list

(** The e-nodes of a class (canonical forms after a {!rebuild}). *)
val nodes_of : t -> id -> enode list

(** Congruence invariant check (test hook): the worklist is empty,
    every memo key is canonical and maps to its class's root, and every
    node of every class re-canonicalizes to a memo entry of that same
    class — i.e. congruent nodes are never in different classes. *)
val invariants_ok : t -> bool

type outcome =
  | Saturated  (** a full iteration added no classes and no unions *)
  | Iteration_limit  (** iteration or soft node cap reached *)
  | Degraded of Guard.resource
      (** a guard blowup (node ceiling, deadline, or injected fault)
          stopped saturation; the e-graph holds everything learned so
          far and extraction proceeds best-so-far *)

(** Run equality saturation. [max_iters] bounds the iteration count
    (default 8), [max_apps] the window-rule applications per iteration
    (default 24), [max_window] the leaf count of a window (default 6),
    [max_enodes] a soft cap on e-graph growth below the guard's hard
    ceiling (default 50_000). Never raises: blowups are absorbed as
    {!Degraded}. *)
val saturate :
  ?max_iters:int ->
  ?max_apps:int ->
  ?max_window:int ->
  ?max_enodes:int ->
  t ->
  outcome

(** Best extraction cost of a class under a cost function, by the
    standard bottom-up fixpoint (runs {!rebuild} first). *)
val best_cost : t -> Cost.t -> id -> float

(** Extract the cheapest-by-[cost] circuit for the remembered output
    roots (only for {!of_aig}-built graphs). Input count, input names
    and output names match the source circuit. *)
val extract : t -> Cost.t -> Aig.t

(** The packaged tool: build, saturate, extract. A blowup while
    building returns the input unchanged (recorded on the best-so-far
    rung); one during saturation extracts best-so-far. *)
val optimize :
  ?guard:Guard.t ->
  ?max_iters:int ->
  ?max_apps:int ->
  ?max_window:int ->
  ?max_enodes:int ->
  cost:Cost.t ->
  Aig.t ->
  Aig.t
