(* See cost.mli. *)

type shape = Leaf | Neg | Conj

type t = {
  name : string;
  node_cost : shape -> float array -> float;
  measure : Aig.t -> float;
}

let levels =
  {
    name = "levels";
    node_cost =
      (fun shape c ->
        match shape with
        | Leaf -> 0.0
        | Neg -> c.(0)
        | Conj -> 1.0 +. Float.max c.(0) c.(1));
    measure = (fun g -> float_of_int (Aig.depth g));
  }

let gates =
  {
    name = "gates";
    node_cost =
      (fun shape c ->
        match shape with
        | Leaf -> 0.0
        | Neg -> c.(0)
        | Conj -> 1.0 +. c.(0) +. c.(1));
    measure = (fun g -> float_of_int (Aig.num_reachable_ands g));
  }

(* The mapped costs share one shape: a per-Conj weight from the AND2
   cell (complement edges are free in the AIG; the mapper absorbs most
   of them into NAND/NOR forms, so charging inverters in the proxy
   would mis-rank against what the mapper actually builds), and the
   real mapper as the measure. *)
let mapped name ~combine ~weight ~measure =
  {
    name;
    node_cost =
      (fun shape c ->
        match shape with
        | Leaf -> 0.0
        | Neg -> c.(0)
        | Conj -> weight +. combine c.(0) c.(1));
    measure;
  }

let delay =
  mapped "delay" ~combine:Float.max ~weight:Techmap.Eval.and_delay_ps
    ~measure:(fun g -> (Techmap.Eval.measure g).Techmap.Eval.delay_ps)

let area =
  mapped "area" ~combine:( +. ) ~weight:Techmap.Eval.and_area
    ~measure:(fun g -> (Techmap.Eval.measure g).Techmap.Eval.area)

let power =
  mapped "power" ~combine:( +. ) ~weight:Techmap.Eval.and_power_mw
    ~measure:(fun g -> (Techmap.Eval.measure g).Techmap.Eval.power_mw)

let all = [ levels; gates; delay; area; power ]
let names = List.map (fun c -> c.name) all
let of_name name = List.find_opt (fun c -> String.equal c.name name) all
let custom ~name ~node_cost ~measure = { name; node_cost; measure }
