(* Library root: the e-graph core at the top level, costs and the
   portfolio driver as submodules — mirrors lib/aig. *)

include Graph
module Cost = Cost
module Portfolio = Portfolio
