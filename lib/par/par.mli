(** Deterministic domain-pool parallel runtime.

    A fixed-size pool of OCaml 5 domains with a FIFO work queue and
    futures. The design contract, relied on by every caller in this
    repository, is {e order determinism}: {!map}, {!fork} and
    {!map_reduce} assemble results in submission order, so given a
    deterministic job function the output is bit-identical regardless of
    worker count or scheduling.

    Shared mutable state (the CUDD-style [Bdd] manager, [Network]s,
    growing [Aig]s) is single-domain; the isolation convention is that a
    job either builds all the state it mutates itself, or receives it
    from the [~init] callback of {!map}/{!fork}, which is invoked at most
    once per worker domain per call (fresh BDD managers, network copies,
    scratch buffers). Immutable or frozen structures (an [Aig.t] that is
    only read, truth tables) may be shared freely — no read path of those
    modules memoizes.

    {!await} {e helps}: while its future is pending it executes queued
    tasks instead of blocking, so jobs may submit sub-jobs to the same
    pool and await them without deadlock, and a 1-job pool (the [-j 1]
    debugging mode) runs everything in the calling domain with no
    domains spawned and no cross-domain scheduling at all. *)

(** Monotonic wall-clock (CLOCK_MONOTONIC), immune to system time
    adjustments — the only clock the synthesis deadline logic uses.
    Re-export of {!Guard.Clock}. *)
module Clock = Guard.Clock

(** A single absolute deadline, shareable across every worker of a run
    so a time budget means the same thing at [-j 1] and [-j 8].
    Re-export of {!Guard.Deadline}, where it now lives so the governed
    substrates can share the type without depending on the pool. *)
module Deadline = Guard.Deadline

module Pool : sig
  type t

  (** [create ?jobs ()] spawns [jobs - 1] worker domains (the submitting
      domain is the remaining worker, via helping {!await}). Default
      [jobs] is {!default_jobs}. [jobs = 1] spawns nothing. *)
  val create : ?jobs:int -> unit -> t

  (** Total parallelism ([jobs] of {!create}). *)
  val size : t -> int

  (** Pool introspection snapshot. [helped] counts the tasks executed
      inside a helping {!await} rather than a worker loop;
      [per_domain_completed] maps domain ids to tasks completed there,
      ascending. All values are scheduling-dependent (at [-j 1] {!map}
      bypasses the pool entirely, so nothing is ever submitted); the
      shared pool's numbers are exported through [Obs] probes as the
      [Sched]-class [par.*] metrics. *)
  type stats = {
    pool_size : int;
    submitted : int;
    completed : int;
    helped : int;
    per_domain_completed : (int * int) list;
  }

  val stats : t -> stats

  (** Drain the queue, join the worker domains. Idempotent. *)
  val shutdown : t -> unit
end

type 'a future

(** [submit pool f] enqueues [f]; exceptions raised by [f] are stored
    and re-raised (with their backtrace) by {!await}. *)
val submit : Pool.t -> (unit -> 'a) -> 'a future

(** Wait for a future, executing queued tasks while it is pending.
    When observation is enabled ([Obs.enable]), each task records into
    its own private sink, and [await] folds that sink into the awaiting
    context — so {!map}/{!fork} callers merge per-task metrics in
    submission order and aggregate counts are bit-identical at any
    [-j]. *)
val await : 'a future -> 'a

(** Jobs used when no explicit pool/size is given: the last positive
    {!set_default_jobs}, else [LOOKAHEAD_JOBS], else
    [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [set_default_jobs n] forces {!default_jobs} to [n] (the [-j] flag);
    [n <= 0] reverts to automatic. The shared pool is torn down and
    lazily re-created if its size changes. Call from the main domain
    only. *)
val set_default_jobs : int -> unit

(** The process-wide pool, created on first use with {!default_jobs}
    and shut down at exit. Nested use is safe: jobs that submit to the
    shared pool themselves are executed by helping {!await}. *)
val shared : unit -> Pool.t

(** [map ~init ~f xs] runs [f ctx x] for every [x], where [ctx] is the
    per-worker state from [init] (at most one [init] call per worker
    domain). Results are in submission order. On a 1-job pool this is
    [List.map (f (init ())) xs] in the calling domain. *)
val map :
  ?pool:Pool.t -> init:(unit -> 'w) -> f:('w -> 'a -> 'b) -> 'a list -> 'b list

(** Stateless {!map}. *)
val map_list : ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list

(** Like {!map} but returns the futures in submission order without
    awaiting, so the caller can merge results incrementally (and bound
    how much completed-but-unmerged state is live) while later jobs are
    still running. *)
val fork :
  ?pool:Pool.t ->
  init:(unit -> 'w) ->
  f:('w -> 'a -> 'b) ->
  'a list ->
  'b future list

(** [map_reduce ~init ~f ~combine acc xs] folds [combine] over the
    mapped results {e in submission order} — the reduction order, and
    hence any non-associative effects (floating-point sums), match the
    sequential run exactly. *)
val map_reduce :
  ?pool:Pool.t ->
  init:(unit -> 'w) ->
  f:('w -> 'a -> 'b) ->
  combine:('acc -> 'b -> 'acc) ->
  'acc ->
  'a list ->
  'acc

(** [map_merge ~init ~f ~merge acc xs] forks jobs in waves of [wave]
    (default [4 * pool size]) and folds [merge acc x (f ctx x)] {e in
    submission order} on the calling domain, so at most a wave of
    completed-but-unmerged results is live at once. This is the
    manager-affine submission primitive: state a job builds privately
    (a per-partition BDD manager) is touched by exactly one worker
    until its future is merged, and the merge — sequential, in
    submission order — is the only other reader. On a 1-job pool the
    whole call runs in the calling domain with a single [init], jobs
    interleaved with merges. An exception from a job or from [merge]
    propagates at its merge position; later jobs of the wave may still
    run but their results are dropped. *)
val map_merge :
  ?pool:Pool.t ->
  ?wave:int ->
  init:(unit -> 'w) ->
  f:('w -> 'a -> 'b) ->
  merge:('acc -> 'a -> 'b -> 'acc) ->
  'acc ->
  'a list ->
  'acc
