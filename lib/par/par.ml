(* Deterministic domain-pool parallel runtime. See par.mli for the
   contract; the two load-bearing pieces are the FIFO queue (submission
   order is execution order up to worker count, which keeps the -j 1
   pool bit-identical in both results and interleaving to the old
   sequential loops) and the helping [await] (no blocking while work is
   queued, which makes nested submission deadlock-free). *)

(* Clock and Deadline moved into [Guard] (PR 5) so the substrates below
   the runtime (bdd, sat, timing) can share the deadline type without
   depending on the pool; re-exported here to keep every call site. *)
module Clock = Guard.Clock
module Deadline = Guard.Deadline

let env_jobs () =
  match Sys.getenv_opt "LOOKAHEAD_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

let forced_jobs = ref None

let default_jobs () =
  match !forced_jobs with
  | Some n -> n
  | None -> (
    match env_jobs () with
    | Some n -> n
    | None -> Domain.recommended_domain_count ())

module Pool = struct
  type t = {
    mutex : Mutex.t;
    (* One condition for everything — new work, completions, shutdown.
       Broadcast is cheap at pool scale and keeps helping awaiters from
       missing tasks their own pending future depends on. *)
    wake : Condition.t;
    queue : (unit -> unit) Queue.t;
    mutable closed : bool;
    mutable workers : unit Domain.t list;
    size : int;
    (* Introspection, all mutated with [mutex] held. [per_domain] maps
       a domain id to the tasks it completed; [n_helped] counts the
       subset executed inside a helping [await]. *)
    mutable n_submitted : int;
    mutable n_completed : int;
    mutable n_helped : int;
    per_domain : (int, int) Hashtbl.t;
  }

  let worker_loop pool =
    let running = ref true in
    while !running do
      Mutex.lock pool.mutex;
      while Queue.is_empty pool.queue && not pool.closed do
        Condition.wait pool.wake pool.mutex
      done;
      if Queue.is_empty pool.queue then begin
        (* closed, and the queue is drained *)
        running := false;
        Mutex.unlock pool.mutex
      end
      else begin
        let task = Queue.pop pool.queue in
        Mutex.unlock pool.mutex;
        task ()
      end
    done

  let create ?jobs () =
    let size = match jobs with Some j -> max 1 j | None -> default_jobs () in
    let pool =
      {
        mutex = Mutex.create ();
        wake = Condition.create ();
        queue = Queue.create ();
        closed = false;
        workers = [];
        size;
        n_submitted = 0;
        n_completed = 0;
        n_helped = 0;
        per_domain = Hashtbl.create 8;
      }
    in
    pool.workers <-
      List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
    pool

  let size pool = pool.size

  type stats = {
    pool_size : int;
    submitted : int;
    completed : int;
    helped : int;
    per_domain_completed : (int * int) list;
  }

  let stats pool =
    Mutex.lock pool.mutex;
    let per =
      Hashtbl.fold (fun d n acc -> (d, n) :: acc) pool.per_domain []
      |> List.sort compare
    in
    let s =
      {
        pool_size = pool.size;
        submitted = pool.n_submitted;
        completed = pool.n_completed;
        helped = pool.n_helped;
        per_domain_completed = per;
      }
    in
    Mutex.unlock pool.mutex;
    s

  let shutdown pool =
    Mutex.lock pool.mutex;
    if pool.closed then Mutex.unlock pool.mutex
    else begin
      pool.closed <- true;
      Condition.broadcast pool.wake;
      Mutex.unlock pool.mutex;
      List.iter Domain.join pool.workers;
      pool.workers <- []
    end
end

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  pool : Pool.t;
  mutable state : 'a state;
  (* The task's private Obs sink (observation enabled only); taken by
     [await] under the pool mutex and absorbed into the awaiting
     context, so aggregates merge in submission order. *)
  mutable fsink : Obs.Sink.t option;
}

let submit (pool : Pool.t) f =
  let fut = { pool; state = Pending; fsink = None } in
  let task () =
    let sink = if Obs.enabled () then Some (Obs.Sink.create ()) else None in
    let run () =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    let result =
      match sink with None -> run () | Some s -> Obs.Sink.with_current s run
    in
    Mutex.lock pool.mutex;
    fut.fsink <- sink;
    fut.state <- result;
    pool.n_completed <- pool.n_completed + 1;
    (let d = (Domain.self () :> int) in
     Hashtbl.replace pool.per_domain d
       (1 + Option.value ~default:0 (Hashtbl.find_opt pool.per_domain d)));
    Condition.broadcast pool.wake;
    Mutex.unlock pool.mutex
  in
  Mutex.lock pool.mutex;
  if pool.closed then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Par.submit: pool is shut down"
  end;
  pool.n_submitted <- pool.n_submitted + 1;
  Queue.push task pool.queue;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.mutex;
  fut

let await fut =
  let pool = fut.pool in
  (* Runs with the pool mutex held; releases it around task execution. *)
  let rec resolve () =
    match fut.state with
    | Pending ->
      if not (Queue.is_empty pool.Pool.queue) then begin
        let task = Queue.pop pool.Pool.queue in
        pool.Pool.n_helped <- pool.Pool.n_helped + 1;
        Mutex.unlock pool.Pool.mutex;
        task ();
        Mutex.lock pool.Pool.mutex;
        resolve ()
      end
      else begin
        (* Pending and not queued: some other worker is executing it (or
           a task it transitively needs); its completion broadcasts. *)
        Condition.wait pool.Pool.wake pool.Pool.mutex;
        resolve ()
      end
    | (Done _ | Failed _) as r -> r
  in
  Mutex.lock pool.Pool.mutex;
  let r = resolve () in
  let sink = fut.fsink in
  fut.fsink <- None;
  Mutex.unlock pool.Pool.mutex;
  (* Outside the mutex: absorb touches only domain-local state, and the
     None above makes a second await of the same future a no-op. *)
  (match sink with Some s -> Obs.Sink.absorb s | None -> ());
  match r with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

(* ------------------------------------------------------------------ *)
(* Shared pool                                                         *)
(* ------------------------------------------------------------------ *)

let shared_pool : Pool.t option ref = ref None

let shared () =
  match !shared_pool with
  | Some p -> p
  | None ->
    let p = Pool.create () in
    shared_pool := Some p;
    p

let set_default_jobs n =
  forced_jobs := (if n <= 0 then None else Some (max 1 n));
  match !shared_pool with
  | Some p when Pool.size p <> default_jobs () ->
    Pool.shutdown p;
    shared_pool := None
  | _ -> ()

let () =
  at_exit (fun () ->
      match !shared_pool with
      | Some p ->
        shared_pool := None;
        Pool.shutdown p
      | None -> ())

(* Pool introspection, surfaced as a pull-model Obs probe reading the
   live shared pool at snapshot time. Every value is scheduling-
   dependent — at -j 1 [map] bypasses the pool and submits nothing at
   all — hence [Sched]. *)
let m_pool_size = Obs.gauge ~stability:Sched "par.pool_size"
let m_submitted = Obs.counter ~stability:Sched "par.tasks_submitted"
let m_completed = Obs.counter ~stability:Sched "par.tasks_completed"
let m_helped = Obs.counter ~stability:Sched "par.await_helped"

let m_per_domain =
  Obs.histogram ~stability:Sched "par.tasks_per_domain"

let () =
  Obs.register_probe (fun () ->
      match !shared_pool with
      | None -> ()
      | Some p ->
        let s = Pool.stats p in
        Obs.gauge_max m_pool_size s.Pool.pool_size;
        Obs.add m_submitted s.Pool.submitted;
        Obs.add m_completed s.Pool.completed;
        Obs.add m_helped s.Pool.helped;
        List.iter
          (fun (_, n) -> Obs.observe m_per_domain n)
          s.Pool.per_domain_completed)

(* ------------------------------------------------------------------ *)
(* Deterministic map / fork / map_reduce                               *)
(* ------------------------------------------------------------------ *)

(* Per-call context store: one [init ()] per worker domain that executes
   at least one item of this call (the helping caller included). *)
type 'w ctx_store = {
  cm : Mutex.t;
  tbl : (int, 'w) Hashtbl.t;
  cinit : unit -> 'w;
}

let ctx_get store =
  let id = (Domain.self () :> int) in
  Mutex.lock store.cm;
  match Hashtbl.find_opt store.tbl id with
  | Some c ->
    Mutex.unlock store.cm;
    c
  | None ->
    (* Init outside the lock: a slow init (a network copy, a fresh BDD
       manager) must not serialize the other workers' first items. The
       domain id is unique to this domain, so no double insert. *)
    Mutex.unlock store.cm;
    let c = store.cinit () in
    Mutex.lock store.cm;
    Hashtbl.add store.tbl id c;
    Mutex.unlock store.cm;
    c

let resolve_pool = function Some p -> p | None -> shared ()

let fork ?pool ~init ~f xs =
  let pool = resolve_pool pool in
  let store = { cm = Mutex.create (); tbl = Hashtbl.create 8; cinit = init } in
  List.map (fun x -> submit pool (fun () -> f (ctx_get store) x)) xs

let map ?pool ~init ~f xs =
  let pool = resolve_pool pool in
  if Pool.size pool <= 1 then begin
    (* -j 1: bypass the pool entirely — no queueing, no domains. *)
    match xs with
    | [] -> []
    | xs ->
      let ctx = init () in
      List.map (f ctx) xs
  end
  else List.map await (fork ~pool ~init ~f xs)

let map_list ?pool f xs = map ?pool ~init:(fun () -> ()) ~f:(fun () x -> f x) xs

let map_reduce ?pool ~init ~f ~combine acc xs =
  List.fold_left combine acc (map ?pool ~init ~f xs)

(* Bounded-wave fork + submission-order merge. The affinity contract
   this encodes: any state a job builds privately (a per-job or
   per-partition BDD manager, say) is touched by exactly one worker
   domain until its future is awaited, after which the merge callback —
   always on the calling domain, always in submission order — is the
   only reader. The wave bound caps how many completed-but-unmerged
   results are live at once. *)
let map_merge ?pool ?wave ~init ~f ~merge acc xs =
  let pool = resolve_pool pool in
  if Pool.size pool <= 1 then begin
    (* -j 1: bypass the pool entirely (like [map]); one [init] for the
       whole call, jobs interleaved with merges in submission order. *)
    match xs with
    | [] -> acc
    | xs ->
      let ctx = init () in
      List.fold_left (fun acc x -> merge acc x (f ctx x)) acc xs
  end
  else begin
    let wave =
      match wave with Some w -> max 1 w | None -> max 1 (4 * Pool.size pool)
    in
    let rec split k = function
      | x :: tl when k > 0 ->
        let a, b = split (k - 1) tl in
        (x :: a, b)
      | tl -> ([], tl)
    in
    let rec waves acc = function
      | [] -> acc
      | xs ->
        let this, rest = split wave xs in
        let futs = fork ~pool ~init ~f this in
        let acc =
          List.fold_left2
            (fun acc x fut -> merge acc x (await fut))
            acc this futs
        in
        waves acc rest
    in
    waves acc xs
  end
