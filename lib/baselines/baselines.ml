(* SIS script.delay / speed_up: algebraic restructuring with tree-height
   reduction. Realized as: cluster into a technology-independent network,
   refactor node functions (which performs the algebraic division of
   [speed_up]'s partial collapse), rebuild, and balance. Two passes, as
   the SIS scripts iterate a small fixed number of times. *)
let sis_like g =
  let pass g =
    let net = Network.of_aig ~k:8 g in
    let g = Network.to_aig net in
    Aig.Balance.run (Aig.Rewrite.run ~k:4 ~per_node:4 ~objective:`Delay g)
  in
  Aig.Sweep.cleanup (pass (pass g))

(* ABC resyn2rs: "b; rs -K 6; rw; rs -K 6 -N 2; rf; rs -K 8; b; ..." —
   an area-recovery script. Balancing appears only as a prelude to the
   area moves; rewriting accepts zero-cost and area-improving moves, so
   depth is incidental. Reproduced as area-objective rewriting and SAT
   sweeping without any delay-oriented pass at the end. *)
let abc_like g =
  (* Area moves are only kept when they actually recover area, like the
     zero-cost acceptance of the real script. *)
  let keep_smaller before after =
    if Aig.num_reachable_ands after <= Aig.num_reachable_ands before then after
    else before
  in
  let g0 = Aig.Sweep.cleanup g in
  let g1 = keep_smaller g0 (Aig.Balance.run g0) in
  let g2 = keep_smaller g1 (Aig.Rewrite.run ~k:5 ~per_node:6 ~objective:`Area g1) in
  let g3 = keep_smaller g2 (Aig.Sweep.sat_sweep g2) in
  let g4 = keep_smaller g3 (Aig.Rewrite.run ~k:4 ~per_node:6 ~objective:`Area g3) in
  Aig.Sweep.cleanup g4

(* Synopsys DC at high map/area effort: the strongest conventional
   baseline. Iterate delay-oriented rewriting + balancing to a fixpoint
   (bounded), then recover area with SAT sweeping and one zero-cost
   area pass that must not degrade depth. *)
let dc_like g =
  let step g =
    Aig.Balance.run (Aig.Rewrite.run ~k:6 ~per_node:8 ~objective:`Delay g)
  in
  let rec fixpoint i g =
    if i = 0 then g
    else begin
      let g' = step g in
      if
        Aig.depth g' < Aig.depth g
        || (Aig.depth g' = Aig.depth g
            && Aig.num_reachable_ands g' < Aig.num_reachable_ands g)
      then fixpoint (i - 1) g'
      else g
    end
  in
  let g = fixpoint 6 (step g) in
  let swept = Aig.Sweep.sat_sweep g in
  let swept = if Aig.depth swept <= Aig.depth g then swept else g in
  let area = Aig.Rewrite.run ~k:5 ~per_node:6 ~objective:`Area swept in
  if Aig.depth area <= Aig.depth swept then area else swept

let all = [ ("sis", sis_like); ("abc", abc_like); ("dc", dc_like) ]
let by_name name = List.assoc_opt name all
