(** Stand-ins for the three comparison tools of the paper's evaluation.

    The real binaries (SIS, ABC, Synopsys Design Compiler) are
    unavailable in this environment; each function implements the
    documented content of the script the paper ran, over the same AIG
    substrate (see DESIGN.md, "Substitutions"):

    - {!sis_like} — SIS [script.delay] / [speed_up]: algebraic
      restructuring and tree-height reduction with partial collapsing of
      critical regions;
    - {!abc_like} — ABC [resyn2rs]: the area-recovery resynthesis loop
      (balance / resubstitute / rewrite with zero-cost moves). This
      script does not optimize depth, which is why ABC trails every
      other tool in the paper's Table 2 — a property the stand-in
      reproduces by construction;
    - {!dc_like} — Synopsys DC [-map_effort high -area_effort high]:
      the strongest baseline; iterated delay-oriented rewriting,
      balancing and SAT sweeping until a fixpoint.

    All three return functionally equivalent circuits (checked in the
    test suite). *)

val sis_like : Aig.t -> Aig.t
val abc_like : Aig.t -> Aig.t
val dc_like : Aig.t -> Aig.t

(** The three baselines in fixed [sis; abc; dc] order — the order the
    portfolio driver runs them as arms and breaks cost ties by. *)
val all : (string * (Aig.t -> Aig.t)) list

(** [by_name "sis" | "abc" | "dc"] — lookup used by the CLI and the
    benchmark harness. *)
val by_name : string -> (Aig.t -> Aig.t) option
