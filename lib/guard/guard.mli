(** Resource governance for every bounded operation in the stack.

    The synthesis flow is full of substrates that can run out of road:
    window BDDs and exact SPCF blow up on wide cones, SAT budgets
    exhaust mid-sweep, and the anytime deadline can expire between any
    two steps. [Guard] turns each of those events into a {e typed,
    recoverable outcome} — a single {!Blowup} exception carrying the
    exhausted resource and the site that hit it — instead of an ad-hoc
    bail scattered through the callers. The driver catches {!Blowup}
    and walks a deterministic degradation ladder (exact SPCF →
    approximate SPCF → smaller window → skip the output), each rung
    logged as a [Det]-classified {!Obs} counter.

    {b Contexts.} A {!t} is a per-governed-unit context: one per
    decomposition job, one per MFS run, one per driver run for the
    final sweep/CEC. Tick counts live in the context, so the sequence
    of guarded calls inside a unit is a pure function of that unit's
    input — never of scheduling — which is what keeps fault injection
    (and hence degraded runs) bit-identical at any [-j].

    {b Zero cost when off.} Like [Obs], the fast path of every hook is
    a couple of loads: {!none} contexts never tick, never expire and
    never fire, and armed-injection checks are behind a single
    [Atomic.get]. *)

(** Monotonic wall-clock (CLOCK_MONOTONIC), immune to system time
    adjustments — the only clock deadline logic uses. *)
module Clock : sig
  val now_ns : unit -> int64
  val now_s : unit -> float
end

(** A single absolute deadline, shareable across every worker of a run
    so a time budget means the same thing at [-j 1] and [-j 8].
    (Moved here from [Par], which re-exports it.) *)
module Deadline : sig
  type t

  (** [after s] expires [s] seconds from now; [s <= 0] or infinite
      never expires. *)
  val after : float -> t

  val never : t

  (** A deadline with no time bound that can still be {!cancel}led —
      what a server attaches to a job so a client disconnect can expire
      it. Each call returns a fresh, independently cancellable value. *)
  val cancellable : unit -> t

  (** [bound t s] expires in [s] seconds (or at [t]'s own instant,
      whichever is sooner) and shares [t]'s cancellation flag:
      cancelling either expires both. [s <= 0] or infinite returns [t]
      unchanged. *)
  val bound : t -> float -> t

  (** Expire [t] now, from any domain. Every {!expired} poll — i.e.
      every [Guard.check_deadline] cancellation point in the stack —
      observes it and raises {!Blowup}[ Time]. No-op on {!never}. *)
  val cancel : t -> unit

  val cancelled : t -> bool
  val expired : t -> bool

  (** Seconds left; [infinity] for {!never}, [0.] once cancelled. *)
  val remaining_s : t -> float
end

(** The resource classes a guarded operation can exhaust. *)
type resource = Bdd_nodes | Sat_conflicts | Time

val resource_name : resource -> string

(** Raised by a guarded operation when its budget is exhausted (or a
    matching injected fault fires — [injected] distinguishes the two).
    Always recoverable: the raising substrate leaves no dangling shared
    state, so the catcher may retry with a smaller configuration or
    skip the unit of work entirely. *)
exception Blowup of { resource : resource; site : string; injected : bool }

module Budget : sig
  type t = {
    bdd_node_ceiling : int;
        (** Hard ceiling on total allocated nodes of a guarded BDD
            manager; crossing it raises {!Blowup}[ Bdd_nodes]. [<= 0]
            means unlimited. Distinct from the driver's soft
            [bdd_node_limit], which stops decomposition gracefully
            long before this fires. *)
    sat_conflict_ceiling : int;
        (** Caps the [conflict_limit] of every guarded
            [Sat.Solver.solve_limited] call. [<= 0] means the caller's
            own limit stands. *)
    sat_conflict_budget : int;
        (** Cumulative conflict budget across {e all} guarded SAT calls
            of a context's lifetime (one sweep, one job): each call
            reports its conflicts back via {!sat_spend}, {!sat_limit}
            tightens per-call limits to the remainder, and once spent
            ({!sat_exhausted}) further calls return no verdict. [<= 0]
            means unlimited. Unlike [sat_conflict_ceiling], this bounds
            a sweep of thousands of cheap queries in aggregate. *)
  }

  (** 48M BDD nodes, no SAT cap — far above anything the paper's
      workloads allocate, so default-budget runs are byte-identical to
      unguarded ones. *)
  val default : t

  val unlimited : t
end

type t

(** The unguarded context: never ticks, never fires, no deadline. *)
val none : t

val create : ?deadline:Deadline.t -> Budget.t -> t
val budget : t -> Budget.t
val deadline : t -> Deadline.t

(** [divide t n] splits [t] into [n] sub-contexts for partitioned work:
    the BDD node ceilings of the parts sum to [t]'s (remainder on the
    first parts; floor 1 per part, so for [n] greater than the ceiling
    the sum exceeds it slightly rather than any part becoming
    unlimited), an unlimited ceiling stays unlimited, the deadline is
    shared, and the SAT ceiling is replicated. Each part has fresh
    injection hit counters, so armed faults land per-partition — a
    function of that partition's work only, never of scheduling.
    [divide none n] is [n] copies of {!none}. *)
val divide : t -> int -> t list

(** [divide_overcommits t n] is [true] exactly when {!divide}[ t n]
    would take the floor-1 path: [t] is guarded with a positive BDD
    node ceiling smaller than [n], so the parts' ceilings sum beyond
    the whole. Callers that can serialize their parts (the portfolio
    arm splitter) use this to run them sequentially under the undivided
    context instead of over-committing. Raises [Invalid_argument] for
    [n <= 0], like {!divide}. *)
val divide_overcommits : t -> int -> bool

(** Deterministic fault injection. Rules are global (armed once, before
    workers start) but fire against per-context tick counts, so where a
    fault lands is independent of scheduling. Disabled, the hooks cost
    one atomic load — the [Obs] pattern. *)
module Inject : sig
  type fault = Bdd_blowup | Sat_exhaust | Deadline_expire

  type rule = {
    fault : fault;
    at : int;
        (** Fire at the [at]-th matching guarded call of each context.
            A rule with a [site] counts only calls at that site, so
            ["deadline@2:driver.decompose"] means "the second
            decompose-loop check of each job". *)
    repeat : bool;  (** Re-fire at every further multiple of [at]. *)
    site : string option;  (** Restrict to one site; [None] = any. *)
  }

  val arm : rule list -> unit
  val disarm : unit -> unit
  val armed : unit -> bool

  (** Parse a spec like ["bdd@500,sat@3:r,deadline@7:driver.decompose"]:
      comma-separated rules, each [fault@N] with optional [:r] (repeat)
      and [:site] suffixes; fault is [bdd], [sat] or [deadline]. *)
  val of_string : string -> (rule list, string) result

  val to_string : rule list -> string

  (** Deterministic pseudo-random rule list for fuzzing: same seed,
      same rules. *)
  val seeded : seed:int -> rule list
end

(** [tick_bdd t ~site] marks one guarded BDD entry point call. Raises
    an [injected] {!Blowup}[ Bdd_nodes] when an armed rule fires. *)
val tick_bdd : t -> site:string -> unit

(** Ceiling for a manager built on this context; [max_int] when
    unlimited. *)
val bdd_ceiling : t -> int

(** [tick_sat t ~site] marks one guarded bounded-SAT call; [true]
    means an armed rule fired and the caller must report budget
    exhaustion (return [None]) without touching the solver. *)
val tick_sat : t -> site:string -> bool

(** Effective conflict limit: the caller's [requested] capped by the
    budget's per-call ceiling and by what remains of the cumulative
    budget ([<= 0] on any side meaning unlimited; the cumulative
    remainder is floored at 1 — see {!sat_exhausted}). *)
val sat_limit : t -> requested:int -> int

(** [true] once a positive cumulative [sat_conflict_budget] is fully
    spent: the caller must report "no verdict" ([None]) without running
    the query. Always [false] for {!none} or an unlimited budget. *)
val sat_exhausted : t -> bool

(** Report [conflicts] consumed by a guarded SAT call back to the
    context's cumulative spend. No-op on {!none}. *)
val sat_spend : t -> conflicts:int -> unit

(** Cumulative conflicts reported so far (diagnostics / tests). *)
val sat_spent : t -> int

(** [check_deadline t ~site] raises {!Blowup}[ Time] when the context's
    deadline has expired (real, [injected = false]) or an armed
    deadline rule fires ([injected = true]). Cancellation points are
    placed so the catcher can always discard the unit's private state
    and fall back to the pre-edit cone. *)
val check_deadline : t -> site:string -> unit
