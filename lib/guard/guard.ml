(* Resource governance: typed budgets + deterministic fault injection.
   See guard.mli for the contract. The layering constraint is that this
   module sits below bdd/sat/network/timing, so it may depend only on
   obs and the monotonic clock. *)

module Clock = struct
  let now_ns () = Monotonic_clock.now ()
  let now_s () = Int64.to_float (now_ns ()) *. 1e-9
end

module Deadline = struct
  (* [at] is an absolute CLOCK_MONOTONIC instant in ns ([max_int] means
     no time bound); [cancelled] lets an external agent (a server whose
     client hung up) expire the deadline early. Cancellation shares the
     Blowup[Time] path, so every existing cancellation point in the
     stack doubles as a cancel point for free. *)
  type t = { at : int64; cancelled : bool Atomic.t }

  let never : t = { at = Int64.max_int; cancelled = Atomic.make false }
  let cancellable () = { at = Int64.max_int; cancelled = Atomic.make false }

  let after s =
    if s <= 0.0 || s >= Int64.to_float Int64.max_int *. 1e-9 then never
    else
      {
        at = Int64.add (Clock.now_ns ()) (Int64.of_float (s *. 1e9));
        cancelled = Atomic.make false;
      }

  (* A time-bounded view sharing [t]'s cancellation flag, so a handle
     created when a job is admitted keeps working after the runner
     tightens it to the job's wall budget at start. *)
  let bound t s =
    if s <= 0.0 || s >= Int64.to_float Int64.max_int *. 1e-9 then t
    else
      {
        at =
          Int64.min t.at
            (Int64.add (Clock.now_ns ()) (Int64.of_float (s *. 1e9)));
        cancelled = t.cancelled;
      }

  (* The shared [never] must stay immune: cancelling it would expire
     every context built without an explicit deadline, process-wide. *)
  let cancel t = if t != never then Atomic.set t.cancelled true
  let cancelled t = Atomic.get t.cancelled

  let expired t =
    Atomic.get t.cancelled
    || ((not (Int64.equal t.at Int64.max_int)) && Clock.now_ns () > t.at)

  let remaining_s t =
    if Atomic.get t.cancelled then 0.0
    else if Int64.equal t.at Int64.max_int then infinity
    else Int64.to_float (Int64.sub t.at (Clock.now_ns ())) *. 1e-9
end

type resource = Bdd_nodes | Sat_conflicts | Time

let resource_name = function
  | Bdd_nodes -> "bdd-nodes"
  | Sat_conflicts -> "sat-conflicts"
  | Time -> "time"

exception Blowup of { resource : resource; site : string; injected : bool }

let () =
  Printexc.register_printer (function
    | Blowup { resource; site; injected } ->
      Some
        (Printf.sprintf "Guard.Blowup(%s at %s%s)" (resource_name resource)
           site
           (if injected then ", injected" else ""))
    | _ -> None)

module Budget = struct
  type t = {
    bdd_node_ceiling : int;
    sat_conflict_ceiling : int;
    sat_conflict_budget : int;
  }

  let default =
    {
      bdd_node_ceiling = 48_000_000;
      sat_conflict_ceiling = 0;
      sat_conflict_budget = 0;
    }

  let unlimited =
    { bdd_node_ceiling = 0; sat_conflict_ceiling = 0; sat_conflict_budget = 0 }
end

(* Hit counters are per-context, per-rule mutable state. Contexts are
   single-domain by construction (one per decomposition job / MFS run /
   driver run), so plain mutation is race-free, and the counts are a
   pure function of the unit's input — the determinism anchor for
   injection. [hits] is indexed by armed-rule position and grown lazily
   so arming after context creation still works. *)
type t = {
  guarded : bool;
  budget : Budget.t;
  deadline : Deadline.t;
  mutable hits : int array;
  mutable sat_spent : int;
      (* cumulative conflicts reported by guarded SAT calls; only
         mutated on guarded contexts so the shared [none] stays pure *)
}

let none =
  {
    guarded = false;
    budget = Budget.unlimited;
    deadline = Deadline.never;
    hits = [||];
    sat_spent = 0;
  }

let create ?(deadline = Deadline.never) budget =
  { guarded = true; budget; deadline; hits = [||]; sat_spent = 0 }

let budget t = t.budget
let deadline t = t.deadline

(* Partition a context's node budget into [n] sub-contexts whose
   ceilings sum to the whole (remainder spread over the first parts,
   floor 1 so a tiny budget never turns into an unlimited 0). Each part
   gets fresh hit counters: injection rules fire against per-partition
   tick counts, which depend only on that partition's work — the same
   determinism anchor as per-job contexts. The deadline is shared (time
   is not divisible) and the SAT ceiling is replicated (partitioned
   work is BDD-only; a partition never runs more SAT than the job). *)
let divide t n =
  if n <= 0 then invalid_arg "Guard.divide: n must be positive";
  if not t.guarded then List.init n (fun _ -> none)
  else
    List.init n (fun i ->
        let split whole =
          if whole <= 0 then whole (* unlimited stays unlimited *)
          else max 1 ((whole / n) + if i < whole mod n then 1 else 0)
        in
        {
          guarded = true;
          budget =
            {
              t.budget with
              Budget.bdd_node_ceiling = split t.budget.Budget.bdd_node_ceiling;
              Budget.sat_conflict_budget =
                split t.budget.Budget.sat_conflict_budget;
            };
          deadline = t.deadline;
          hits = [||];
          sat_spent = 0;
        })

(* The floor-1 rule above means [divide t n] with [n] greater than the
   node ceiling hands out [n] parts of ceiling 1 — their sum exceeds
   the whole. Callers that can serialize instead (the portfolio arm
   splitter) probe this predicate and keep the undivided context. *)
let divide_overcommits t n =
  if n <= 0 then invalid_arg "Guard.divide_overcommits: n must be positive";
  t.guarded
  && t.budget.Budget.bdd_node_ceiling > 0
  && t.budget.Budget.bdd_node_ceiling < n

module Inject = struct
  type fault = Bdd_blowup | Sat_exhaust | Deadline_expire

  type rule = {
    fault : fault;
    at : int;
    repeat : bool;
    site : string option;
  }

  (* Publication protocol: [rules] is written before the [on] flag is
     raised and cleared only after it is lowered, so any domain that
     observes [on] (an SC atomic) sees the fully written rule list. *)
  let on = Atomic.make false
  let rules : rule list ref = ref []

  let arm rs =
    rules := rs;
    Atomic.set on (rs <> [])

  let disarm () =
    Atomic.set on false;
    rules := []

  let armed () = Atomic.get on

  let fault_name = function
    | Bdd_blowup -> "bdd"
    | Sat_exhaust -> "sat"
    | Deadline_expire -> "deadline"

  let fault_of_name = function
    | "bdd" -> Some Bdd_blowup
    | "sat" -> Some Sat_exhaust
    | "deadline" -> Some Deadline_expire
    | _ -> None

  let to_string rs =
    String.concat ","
      (List.map
         (fun r ->
           Printf.sprintf "%s@%d%s%s" (fault_name r.fault) r.at
             (if r.repeat then ":r" else "")
             (match r.site with None -> "" | Some s -> ":" ^ s))
         rs)

  let parse_rule tok =
    match String.index_opt tok '@' with
    | None -> Error (Printf.sprintf "rule %S: expected fault@N" tok)
    | Some i -> (
      let fname = String.sub tok 0 i in
      let rest = String.sub tok (i + 1) (String.length tok - i - 1) in
      match fault_of_name fname with
      | None ->
        Error
          (Printf.sprintf "rule %S: unknown fault %S (bdd|sat|deadline)" tok
             fname)
      | Some fault -> (
        match String.split_on_char ':' rest with
        | [] -> Error (Printf.sprintf "rule %S: missing count" tok)
        | n :: flags -> (
          match int_of_string_opt n with
          | None | Some 0 ->
            Error (Printf.sprintf "rule %S: count must be a positive int" tok)
          | Some at when at < 0 ->
            Error (Printf.sprintf "rule %S: count must be a positive int" tok)
          | Some at -> (
            let repeat = List.mem "r" flags in
            match List.filter (fun f -> not (String.equal f "r")) flags with
            | [] -> Ok { fault; at; repeat; site = None }
            | [ s ] -> Ok { fault; at; repeat; site = Some s }
            | _ ->
              Error (Printf.sprintf "rule %S: too many ':' fields" tok)))))

  let of_string s =
    let toks =
      String.split_on_char ',' (String.trim s)
      |> List.map String.trim
      |> List.filter (fun t -> t <> "")
    in
    if toks = [] then Error "empty injection spec"
    else
      List.fold_left
        (fun acc tok ->
          match (acc, parse_rule tok) with
          | Error _, _ -> acc
          | Ok rs, Ok r -> Ok (r :: rs)
          | Ok _, Error e -> Error e)
        (Ok []) toks
      |> Result.map List.rev

  (* Splitmix64: deterministic, seed-indexed rule derivation for the
     fuzzer. Same seed, same rules, on every platform. *)
  let seeded ~seed =
    let state = ref (Int64.of_int (seed + 0x632be59)) in
    let next () =
      state := Int64.add !state 0x9E3779B97F4A7C15L;
      let z = !state in
      let z =
        Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
          0xBF58476D1CE4E5B9L
      in
      let z =
        Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
          0x94D049BB133111EBL
      in
      Int64.to_int (Int64.shift_right_logical z 33)
    in
    let faults = [| Bdd_blowup; Sat_exhaust; Deadline_expire |] in
    let n = 1 + (next () mod 2) in
    List.init n (fun _ ->
        {
          fault = faults.(next () mod 3);
          at = 1 + (next () mod 300);
          repeat = next () mod 2 = 0;
          site = None;
        })
end

(* One Det counter per fault class: the injection record in a report is
   part of the deterministic subtree, so a faulted -j 1 / -j 4 pair must
   agree on it exactly. *)
let m_injected_bdd = Obs.counter "guard.injected.bdd_blowup"
let m_injected_sat = Obs.counter "guard.injected.sat_exhaust"
let m_injected_deadline = Obs.counter "guard.injected.deadline"

(* Advance every matching rule's per-context hit count and report
   whether any fired. A site-filtered rule counts only calls at its
   site, so [deadline@2:driver.decompose] means "the second
   decompose-loop check of each job", not "a deadline tick that happens
   to be the context's second overall". *)
let fires t fault site =
  let rs = !Inject.rules in
  let n = List.length rs in
  if Array.length t.hits < n then begin
    let h = Array.make n 0 in
    Array.blit t.hits 0 h 0 (Array.length t.hits);
    t.hits <- h
  end;
  let fired = ref false in
  List.iteri
    (fun i (r : Inject.rule) ->
      if
        r.fault = fault
        && match r.site with None -> true | Some s -> String.equal s site
      then begin
        t.hits.(i) <- t.hits.(i) + 1;
        let c = t.hits.(i) in
        if (if r.repeat then c >= r.at && c mod r.at = 0 else c = r.at) then
          fired := true
      end)
    rs;
  !fired

(* Injection firings are deterministic (per-context tick counters), so
   the journal payload is Det: the same faults fire at the same sites
   in the same multiset at any [-j] and warm or cold. *)
let journal_injected ~fault ~site =
  Obs.Journal.record ~kind:"guard.injected"
    ~det:
      (Obs.Json.Obj
         [ ("fault", Obs.Json.String fault);
           ("site", Obs.Json.String site) ])
    ()

let tick_bdd t ~site =
  if t.guarded && Atomic.get Inject.on && fires t Inject.Bdd_blowup site
  then begin
    Obs.incr m_injected_bdd;
    journal_injected ~fault:"bdd_blowup" ~site;
    raise (Blowup { resource = Bdd_nodes; site; injected = true })
  end

let bdd_ceiling t =
  if t.budget.Budget.bdd_node_ceiling <= 0 then max_int
  else t.budget.Budget.bdd_node_ceiling

let tick_sat t ~site =
  if t.guarded && Atomic.get Inject.on && fires t Inject.Sat_exhaust site
  then begin
    Obs.incr m_injected_sat;
    journal_injected ~fault:"sat_exhaust" ~site;
    true
  end
  else false

(* The per-call ceiling and the cumulative budget compose by taking the
   tightest positive bound; [<= 0] on any side means "no opinion". The
   cumulative remainder is floored at 1 so a nearly spent budget still
   caps the last call instead of reading as unlimited — full exhaustion
   is [sat_exhausted], checked by the caller before the call. *)
let sat_limit t ~requested =
  let cap v limit =
    if limit <= 0 then v else if v <= 0 then limit else min v limit
  in
  let v = cap requested t.budget.Budget.sat_conflict_ceiling in
  let b = t.budget.Budget.sat_conflict_budget in
  if b <= 0 then v else cap v (max 1 (b - t.sat_spent))

let sat_exhausted t =
  t.guarded
  && t.budget.Budget.sat_conflict_budget > 0
  && t.sat_spent >= t.budget.Budget.sat_conflict_budget

let sat_spend t ~conflicts =
  if t.guarded && conflicts > 0 then t.sat_spent <- t.sat_spent + conflicts

let sat_spent t = t.sat_spent

let check_deadline t ~site =
  if t.guarded then begin
    if Atomic.get Inject.on && fires t Inject.Deadline_expire site then begin
      Obs.incr m_injected_deadline;
      journal_injected ~fault:"deadline_expire" ~site;
      raise (Blowup { resource = Time; site; injected = true })
    end;
    if Deadline.expired t.deadline then begin
      (* Real expiry is pure scheduling: sched-only, excluded from the
         journal's Det digest. *)
      Obs.Journal.record ~kind:"guard.deadline"
        ~sched:(Obs.Json.Obj [ ("site", Obs.Json.String site) ])
        ();
      raise (Blowup { resource = Time; site; injected = false })
    end
  end
