type level = {
  residue : Network.t;
  residue_globals : Bdd.t array;
  primary : Network.t;
  windows : (int * Logic.Tt.t) list;
}

type pieces = {
  levels : level list;
  final_residue : Network.t;
  out : Network.output;
}

let emit_node dst lev cache net ~input_map id =
  let rec go id =
    match Hashtbl.find_opt cache id with
    | Some l -> l
    | None ->
      let l =
        if Network.is_input net id then input_map (Network.input_index net id)
        else begin
          let nd = Network.node net id in
          if Array.length nd.Network.fanins = 0 then
            if Logic.Tt.is_const_true nd.Network.func then Aig.const_true
            else Aig.const_false
          else
            Aig.Synth.of_tt dst lev nd.Network.func ~leaf:(fun i ->
                go nd.Network.fanins.(i))
        end
      in
      Hashtbl.add cache id l;
      l
  in
  go id

(* BDD and AIG realizations of one level's pieces. *)
type piece_values = {
  sigma_bdd : Bdd.t;
  y0_bdd : Bdd.t;
  sigma_lit : Aig.lit Lazy.t;
  y0_lit : Aig.lit Lazy.t;
}

let level_values man dst lev ~input_map ~oid l =
  let sigma_bdd =
    List.fold_left
      (fun acc (id, w) ->
        Bdd.band man acc
          (Network.Globals.tt_image man l.residue_globals l.residue id w))
      (Bdd.btrue man) l.windows
  in
  (* [primary] is [residue] with exactly the windowed nodes re-expressed
     (same wiring), so the residue's globals plus a dirty-region update
     give the same hash-consed BDDs as a full rebuild. The update is
     restricted to the output's cone: the only entry read is [oid]'s,
     and [residue_globals] may itself be cone-restricted (the windowed
     nodes are in the cone, but their fanout can leave it). *)
  let prim_member = Array.make (Network.num_nodes l.primary) false in
  List.iter
    (fun id -> prim_member.(id) <- true)
    (Network.cone l.primary oid);
  let prim_globals =
    Network.Globals.update ~member:prim_member man l.residue_globals l.primary
      ~dirty:(List.map fst l.windows)
      ~fanouts:(Network.fanouts l.primary)
  in
  let cache_res = Hashtbl.create 64 and cache_prim = Hashtbl.create 64 in
  let sigma_lit =
    lazy
      (let parts =
         List.map
           (fun (id, w) ->
             let nd = Network.node l.residue id in
             Aig.Synth.of_tt dst lev w ~leaf:(fun i ->
                 emit_node dst lev cache_res l.residue ~input_map
                   nd.Network.fanins.(i)))
           l.windows
       in
       Aig.Synth.and_tree dst lev parts)
  in
  let y0_lit =
    lazy (emit_node dst lev cache_prim l.primary ~input_map oid)
  in
  { sigma_bdd; y0_bdd = prim_globals.(oid); sigma_lit; y0_lit }

(* Single-level implication-rule form enumeration. *)
let single_level_forms man dst v ~res_bdd ~res_lit =
  let bnot = Bdd.bnot man and band = Bdd.band man and bor = Bdd.bor man in
  let s = v.sigma_bdd and y0 = v.y0_bdd and y1 = res_bdd in
  let sl () = Lazy.force v.sigma_lit
  and l0 () = Lazy.force v.y0_lit
  and l1 () = Lazy.force res_lit in
  [
    ((lazy y0), fun () -> l0 ());
    ((lazy y1), fun () -> l1 ());
    ( lazy (bor (band s y0) (band (bnot s) y1)),
      fun () -> Aig.mux dst ~sel:(sl ()) ~t:(l0 ()) ~f:(l1 ()) );
    ( lazy (bor y0 (band (bnot s) y1)),
      fun () -> Aig.bor dst (l0 ()) (Aig.band dst (Aig.bnot (sl ())) (l1 ())) );
    ( lazy (bor y1 (band s y0)),
      fun () -> Aig.bor dst (l1 ()) (Aig.band dst (sl ()) (l0 ())) );
    ( lazy (band (bor (bnot s) y0) (bor s y1)),
      fun () ->
        Aig.band dst
          (Aig.bor dst (Aig.bnot (sl ())) (l0 ()))
          (Aig.bor dst (sl ()) (l1 ())) );
    ( lazy (band y0 (bor s y1)),
      fun () -> Aig.band dst (l0 ()) (Aig.bor dst (sl ()) (l1 ())) );
    ( lazy (band y1 (bor (bnot s) y0)),
      fun () -> Aig.band dst (l1 ()) (Aig.bor dst (Aig.bnot (sl ())) (l0 ())) );
    ( lazy (bor y0 y1),
      fun () -> Aig.bor dst (l0 ()) (l1 ()) );
    ( lazy (band y0 y1),
      fun () -> Aig.band dst (l0 ()) (l1 ()) );
    (* Constant-arm special cases (0/1-approximations of the paper's
       implication rules). *)
    ( lazy (band (bnot s) y1),
      fun () -> Aig.band dst (Aig.bnot (sl ())) (l1 ()) );
    ( lazy (band s y0),
      fun () -> Aig.band dst (sl ()) (l0 ()) );
    ( lazy (bor s y1),
      fun () -> Aig.bor dst (sl ()) (l1 ()) );
    ( lazy (bor (bnot s) y0),
      fun () -> Aig.bor dst (Aig.bnot (sl ())) (l0 ()) );
  ]

let build man ~y_bdd dst lev ~input_map p =
  let oid = p.out.Network.node in
  let values =
    List.map (level_values man dst lev ~input_map ~oid) p.levels
  in
  (* Only the output's entry is read, so build its cone, not the net. *)
  let res_globals =
    Network.Globals.of_cluster man p.final_residue
      ~nodes:(Network.cone p.final_residue oid)
  in
  let res_bdd = res_globals.(oid) in
  let cache_final = Hashtbl.create 64 in
  let res_lit =
    lazy (emit_node dst lev cache_final p.final_residue ~input_map oid)
  in
  (* Flattened Eqn. 2 value, for validation. *)
  let flattened_bdd =
    List.fold_right
      (fun v inner ->
        Bdd.bor man
          (Bdd.band man v.sigma_bdd v.y0_bdd)
          (Bdd.band man (Bdd.bnot man v.sigma_bdd) inner))
      values res_bdd
  in
  if not (Bdd.equal flattened_bdd y_bdd) then None
  else begin
    let finish l = Some (if p.out.Network.negated then Aig.bnot l else l) in
    match values with
    | [] -> finish (Lazy.force res_lit)
    | [ v ] ->
      (* Enumerate the implication-rule forms and keep the shallowest
         valid one. *)
      let best = ref None in
      List.iter
        (fun (form_bdd, builder) ->
          if Bdd.equal (Lazy.force form_bdd) y_bdd then begin
            let l = builder () in
            let d = Aig.Lev.level lev l in
            match !best with
            | Some (_, bd) when bd <= d -> ()
            | _ -> best := Some (l, d)
          end)
        (single_level_forms man dst v ~res_bdd ~res_lit);
      (match !best with None -> None | Some (l, _) -> finish l)
    | _ ->
      (* Flattened sum of prefix products with balanced trees:
         y = Σ1 y1 + ¬Σ1 Σ2 y2 + ... + ¬Σ1..¬Σl y_res. *)
      let terms = ref [] in
      let prefix = ref [] in
      List.iter
        (fun v ->
          let s = Lazy.force v.sigma_lit in
          let term =
            Aig.Synth.and_tree dst lev (s :: Lazy.force v.y0_lit :: !prefix)
          in
          terms := term :: !terms;
          prefix := Aig.bnot s :: !prefix)
        values;
      let last = Aig.Synth.and_tree dst lev (Lazy.force res_lit :: !prefix) in
      terms := last :: !terms;
      finish (Aig.Synth.or_tree dst lev !terms)
  end
