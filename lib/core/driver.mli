(** Top-level lookahead optimization flow (Sec. 3.1, applied iteratively).

    One round performs one level of timing-driven decomposition on every
    critical output: cluster the AIG into a technology-independent
    network (`renode`), compute global functions and the SPCF, run
    primary and secondary simplification, reconstruct
    [y = Σ·y0 + ¬Σ·y1] with implication-rule selection, and rebuild the
    AIG. Rounds repeat while the depth improves (producing the multi-level
    decomposition Σ1…Σl of Eqn. 2); area recovery
    ({!Aig.Sweep.sat_sweep}) runs at the end, as in the paper. *)

type options = {
  cluster_k : int;  (** max fanins of a network node (renode k) *)
  max_rounds : int;  (** decomposition levels attempted *)
  max_decomp_levels : int;
      (** recursion depth of the per-output peeling (Σ1…Σl of Eqn. 2) *)
  spcf_max_nodes : int;  (** late nodes unioned into the SPCF *)
  max_cone_inputs : int;  (** skip outputs with larger input support *)
  bdd_node_limit : int;
      (** stop peeling an output once its BDD manager has allocated this
          many nodes *)
  time_limit_s : float;
      (** wall-clock budget: once exceeded, remaining outputs and rounds
          fall back to conventional rewriting (anytime behaviour) *)
  use_exact_spcf : bool;
      (** use the exact floating-mode SPCF when the circuit is small
          enough (otherwise the node-based approximation) *)
  balance_first : bool;  (** run {!Aig.Balance} before decomposing *)
  guard_budget : Guard.Budget.t;
      (** hard resource ceilings for every governed substrate. One
          {!Guard} context is created per decomposition job (shared
          across the rungs of its degradation ladder) and one for the
          run's finishing passes; on exhaustion the driver walks
          exact SPCF → approximate SPCF → smaller window → skip the
          output, each descent recorded as a [Det] [guard.rung.*]
          counter, so degraded runs stay bit-identical at any [-j].
          The default ceilings sit far above the paper's workloads, so
          unfaulted default runs match the ungoverned flow exactly. *)
  deadline : Guard.Deadline.t option;
      (** run under this externally owned deadline instead of deriving
          one from [time_limit_s] — a server passes a
          {!Guard.Deadline.cancellable} value here so a client
          disconnect can expire the job; [None] (the default)
          preserves the one-shot behaviour. *)
  reuse_managers : bool;
      (** acquire per-attempt BDD managers from {!Bdd.Pool} instead of
          creating and dropping them. [Bdd.reset] guarantees recycled
          managers are observationally fresh, so results and [Det]
          stats are bit-identical either way; a warm server enables
          this to amortize the large array allocations across jobs.
          Default [false]. *)
}

val default : options

(** Statistics of one optimization run. *)
type stats = {
  rounds_run : int;
  outputs_decomposed : int;
  initial_depth : int;
  final_depth : int;
}

(** [optimize ?options g] returns the optimized circuit. The result is
    guaranteed equivalent: every accepted reconstruction is validated
    against the original global functions, and a final SAT equivalence
    check is asserted. *)
val optimize : ?options:options -> Aig.t -> Aig.t

(** Same, also returning run statistics. *)
val optimize_with_stats : ?options:options -> Aig.t -> Aig.t * stats

(** Fold a manager's {!Bdd.stats} into the [bdd.*] observation counters
    (managers, nodes allocated, peak live nodes, growths, and per-cache
    lookups/hits/misses). The driver calls this once per decomposition
    job; other sequential passes that own a private manager ({!Mfs})
    call it too. No-op while observation is disabled. *)
val record_bdd_stats : Bdd.man -> unit

(** [rung_counter name] is the [Det] counter ["guard.rung." ^ name] —
    the degradation-ladder accounting idiom. Every governed optimizer
    records its rung descents through this so the names stay in one
    dotted family (the driver's [approx_spcf]/[shrink_window]/
    [skip_output] rungs, the e-graph engine's [egraph_best_so_far]).
    Metrics are registered once by name, so repeated calls return the
    same counter. *)
val rung_counter : string -> Obs.counter
