let run man ~globals ~care net ~analysis ~out =
  let oid = out.Network.node in
  let cone = Network.Analysis.cone analysis oid in
  (* Levels are deliberately read once, before any edit: each node is
     re-minimized against the level landscape of the unedited network
     (matching the from-scratch behaviour this pass always had). The
     copy decouples the snapshot from the analysis engine's in-place
     repair. *)
  let levels = Array.copy (Network.Analysis.levels analysis) in
  let edited = ref [] in
  List.iter
    (fun id ->
      if not (Network.is_input net id) then begin
        let nd = Network.node net id in
        let k = Array.length nd.Network.fanins in
        if k > 0 && k <= 10 then begin
          (* Local don't-cares: minterms of the node's input space whose
             image never intersects the care set. *)
          let dc = ref (Logic.Tt.const_false k) in
          for m = 0 to (1 lsl k) - 1 do
            let image = Network.Globals.minterm_image man globals net id m in
            if Bdd.is_false man (Bdd.band man image care) then
              dc := Logic.Tt.lor_ !dc (Logic.Tt.of_minterms k [ m ])
          done;
          if not (Logic.Tt.is_const_false !dc) then begin
            let on = nd.Network.func in
            let lower = Logic.Tt.land_ on (Logic.Tt.lnot !dc) in
            let upper = Logic.Tt.lor_ on !dc in
            let fanin_level i = levels.(nd.Network.fanins.(i)) in
            let depth_of sop = Network.Levels.sop_depth sop ~fanin_level in
            (* Pick the cheaper polarity of the minimized cover. *)
            let pos = Logic.Minimize.isop ~lower ~upper in
            let neg =
              Logic.Minimize.isop ~lower:(Logic.Tt.lnot upper)
                ~upper:(Logic.Tt.lnot lower)
            in
            let func =
              if depth_of pos <= depth_of neg then Logic.Sop.to_tt pos
              else Logic.Tt.lnot (Logic.Sop.to_tt neg)
            in
            if not (Logic.Tt.equal func nd.Network.func) then begin
              Network.set_func net id func;
              Network.Analysis.invalidate analysis id;
              edited := id :: !edited
            end
          end
        end
      end)
    cone;
  List.rev !edited
