(** Don't-care-based network simplification ("mfs"-style), the classic
    function-based optimization the paper builds on (its reference [5]
    performs partial collapsing + node simplification).

    Each node of the technology-independent network is re-minimized
    against its complete don't-care set:

    - {e satisfiability} don't-cares — local input vectors whose global
      image is empty (the fanins can never produce them);
    - {e observability} don't-cares — input minterms on which no primary
      output is sensitive to the node (complement of the union of Boolean
      differences).

    The node function is re-covered with two-level minimization choosing
    the cheaper polarity. Sound for the same reason the lookahead
    secondary simplification is: a node only changes on minterms no
    output can observe. *)

(** [run ?k g] clusters, simplifies every node, and rebuilds.
    Result is equivalent (SAT-checked internally). The pass runs under
    a default-budget {!Guard}; on {!Guard.Blowup} (real or injected)
    the half-simplified network is discarded whole and [g] is returned
    unchanged, with the [guard.mfs_degraded] counter recording the
    degradation. *)
val run : ?k:int -> Aig.t -> Aig.t

(** Network-level entry point used by [run] and the tests: simplifies
    [net] in place against its own outputs. May raise {!Guard.Blowup}
    when [guard]'s budget is exhausted; [net] is then half-simplified
    but still equivalent (every applied edit was individually sound),
    though callers normally discard it. *)
val simplify_network : guard:Guard.t -> Bdd.man -> Network.t -> unit
