type outcome = { marked : (int * Logic.Tt.t) list; achieved_level : int }

let run man ~analysis ~globals ~spcf ~spcf_count net ~out ~target =
  let oid = out.Network.node in
  (* Levels come from the per-network incremental engine: each accepted
     edit invalidates one node and the next query repairs only its
     transitive fanout — the contents always equal a from-scratch
     [Levels.compute]. *)
  let levels () = Network.Analysis.levels analysis in
  let marked = Hashtbl.create 16 in
  let windows = ref [] in
  let cone = Network.Analysis.cone analysis oid in
  (* Deepest unmarked internal node of the cone — the walk's entry point
     each time a descent bottoms out. *)
  let deepest_unmarked () =
    let levels = levels () in
    List.fold_left
      (fun acc id ->
        if Network.is_input net id || Hashtbl.mem marked id then acc
        else
          match acc with
          | Some best when levels.(best) >= levels.(id) -> acc
          | _ -> Some id)
      None cone
  in
  let simplify_node id =
    Hashtbl.replace marked id ();
    let r =
      Simplify.run man ~globals ~spcf ~spcf_count net ~levels:(levels ()) id
    in
    if r.Simplify.changed then begin
      Network.set_func net id r.Simplify.func;
      Network.Analysis.invalidate analysis id;
      windows := (id, r.Simplify.window) :: !windows
    end
  in
  (* Among the critical fanins of [id], the deepest unmarked internal
     node, if any. *)
  let next_candidate id =
    let nd = Network.node net id in
    let levels = levels () in
    let crit = Network.Levels.critical_inputs net ~levels id in
    List.fold_left
      (fun acc pos ->
        let f = nd.Network.fanins.(pos) in
        if Network.is_input net f || Hashtbl.mem marked f then acc
        else
          match acc with
          | Some best when levels.(best) >= levels.(f) -> acc
          | _ -> Some f)
      None crit
  in
  let budget = ref (2 * List.length cone) in
  let rec descend id =
    if (levels ()).(oid) >= target && !budget > 0 then begin
      decr budget;
      simplify_node id;
      if (levels ()).(oid) >= target then begin
        match next_candidate id with
        | Some f -> descend f
        | None -> (
          (* Chain exhausted; restart from the deepest unmarked node so
             parallel critical paths are also attacked. *)
          match deepest_unmarked () with
          | Some f -> descend f
          | None -> ())
      end
    end
  in
  (match deepest_unmarked () with Some id -> descend id | None -> ());
  { marked = List.rev !windows; achieved_level = (levels ()).(oid) }
