(** Primary simplification of the technology-independent network —
    Fig. 2 of the paper.

    Starting at the deepest node of a critical output's fanin cone, nodes
    are simplified ({!Simplify}) and the walk descends through critical
    fanins until the output level drops below the network level (or no
    candidates remain). The edited network computes [y0]; the returned
    windows define the window function [Σ1]. *)

type outcome = {
  marked : (int * Logic.Tt.t) list;
      (** simplified node ids with their agreement windows *)
  achieved_level : int;  (** level of the output after simplification *)
}

(** [run man ~analysis ~globals ~spcf ~spcf_count net ~out ~target]
    edits [net] in place (node functions only). [analysis] is the cache
    for [net]: node levels are read through its incremental engine and
    every accepted edit is recorded with
    {!Network.Analysis.invalidate}, so the repeated level queries of
    the walk repair dirty regions instead of recomputing the full
    array. [globals] are the global functions of the original network;
    [target] is the level the output must drop below (the paper's
    [l_T]). *)
val run :
  Bdd.man ->
  analysis:Network.Analysis.t ->
  globals:Bdd.t array ->
  spcf:Bdd.t ->
  spcf_count:float ->
  Network.t ->
  out:Network.output ->
  target:int ->
  outcome
