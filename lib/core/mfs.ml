let sp_mfs = Obs.span "opt.mfs"

(* [Det]: the pass is sequential, so whether its guard blows up depends
   only on the input circuit (or an injected fault's tick count). *)
let m_mfs_degraded = Obs.counter "guard.mfs_degraded"

let simplify_network ~guard man net =
  let globals = Network.Globals.of_net ~guard man net in
  let fanouts = Network.fanouts net in
  let levels = Network.Levels.compute net in
  let outs = Network.outputs net in
  List.iter
    (fun id ->
      if not (Network.is_input net id) then begin
        let nd = Network.node net id in
        let k = Array.length nd.Network.fanins in
        if k > 0 && k <= 8 then begin
          (* Observability: where some output sees the node. *)
          let observable =
            List.fold_left
              (fun acc (o : Network.output) ->
                Bdd.bor man acc
                  (Timing.Spcf.boolean_difference man net globals ~wrt:id
                     ~out:o))
              (Bdd.bfalse man) outs
          in
          let dc = ref (Logic.Tt.const_false k) in
          for m = 0 to (1 lsl k) - 1 do
            let image = Network.Globals.minterm_image man globals net id m in
            (* Satisfiability dc: image empty. Observability dc: image
               never observable. *)
            if Bdd.is_false man (Bdd.band man image observable) then
              dc := Logic.Tt.lor_ !dc (Logic.Tt.of_minterms k [ m ])
          done;
          if not (Logic.Tt.is_const_false !dc) then begin
            let on = nd.Network.func in
            let lower = Logic.Tt.land_ on (Logic.Tt.lnot !dc) in
            let upper = Logic.Tt.lor_ on !dc in
            let fanin_level i = levels.(nd.Network.fanins.(i)) in
            let cost sop =
              (Network.Levels.sop_depth sop ~fanin_level, Logic.Sop.num_literals sop)
            in
            let pos = Logic.Minimize.isop ~lower ~upper in
            let neg =
              Logic.Minimize.isop ~lower:(Logic.Tt.lnot upper)
                ~upper:(Logic.Tt.lnot lower)
            in
            let func =
              if cost pos <= cost neg then Logic.Sop.to_tt pos
              else Logic.Tt.lnot (Logic.Sop.to_tt neg)
            in
            if not (Logic.Tt.equal func nd.Network.func) then begin
              Network.set_func net id func;
              (* Later nodes must see the updated global functions: a
                 change inside the ODC of the *original* network could
                 otherwise compose unsoundly with a second change. Only
                 the edited node's transitive fanout can differ. *)
              let fresh =
                Network.Globals.update ~guard man globals net ~dirty:[ id ]
                  ~fanouts
              in
              Array.blit fresh 0 globals 0 (Array.length globals)
            end
          end
        end
      end)
    (Network.topo_order net)

let run ?(k = 6) g =
  Obs.with_span sp_mfs @@ fun () ->
  let net = Network.of_aig ~k g in
  (* Deadline-free guard: the pass is an optional polish, so the
     recovery for any blowup (real or injected) is simply to return the
     input unchanged — [net] is discarded whole, never half-applied. *)
  let guard = Guard.create Guard.Budget.default in
  let man = Bdd.create ~guard () in
  match simplify_network ~guard man net with
  | () -> (
    Driver.record_bdd_stats man;
    let out = Aig.cleanup (Network.to_aig net) in
    match Aig.Cec.check g out with
    | Aig.Cec.Equivalent -> out
    | Aig.Cec.Counterexample _ ->
      invalid_arg "Lookahead.Mfs.run: internal equivalence failure")
  | exception Guard.Blowup _ ->
    Driver.record_bdd_stats man;
    Obs.incr m_mfs_degraded;
    g
