(** Secondary simplification (Sec. 3.1): derive the network for [y1].

    With the window function fixed by the primary pass, the circuit only
    has to be correct on the complement of the window. Every node of the
    output's cone is re-minimized against that care set: a local minterm
    whose global image misses the care set becomes a don't-care, and the
    node function is re-covered by two-level minimization. The only
    objective is level reduction (the paper: "the Boolean function of
    every node is simplified and all cubes with weight equal to zero are
    replaced with a don't care"). *)

(** [run man ~globals ~care net ~analysis ~out] edits [net] (a fresh
    copy of the original) in place and returns the ids of the nodes it
    changed, in cone order. [globals] are the original global functions
    — the wiring of [net] must be identical to the network they were
    computed on. [analysis] is the cache for [net]; every edit is
    recorded there with {!Network.Analysis.invalidate}, so the caller's
    next level query repairs only the dirty region. *)
val run :
  Bdd.man ->
  globals:Bdd.t array ->
  care:Bdd.t ->
  Network.t ->
  analysis:Network.Analysis.t ->
  out:Network.output ->
  int list
