type options = {
  cluster_k : int;
  max_rounds : int;
  max_decomp_levels : int;
  spcf_max_nodes : int;
  max_cone_inputs : int;
  bdd_node_limit : int;
  time_limit_s : float;
  use_exact_spcf : bool;
  balance_first : bool;
  guard_budget : Guard.Budget.t;
  deadline : Guard.Deadline.t option;
  reuse_managers : bool;
}

let default =
  {
    cluster_k = 6;
    max_rounds = 12;
    max_decomp_levels = 24;
    spcf_max_nodes = 24;
    max_cone_inputs = 64;
    bdd_node_limit = 12_000_000;
    time_limit_s = 90.0;
    use_exact_spcf = false;
    balance_first = true;
    guard_budget = Guard.Budget.default;
    deadline = None;
    reuse_managers = false;
  }

type stats = {
  rounds_run : int;
  outputs_decomposed : int;
  initial_depth : int;
  final_depth : int;
}

let log = Logs.Src.create "lookahead" ~doc:"lookahead synthesis driver"

module Log = (val Logs.src_log log)

(* --- observation ---------------------------------------------------- *)

(* Work counters are [Det] — identical at any -j for a deadline-free
   run (an expired time budget cuts work at a wall-clock instant, so
   deadline-cut runs are inherently schedule-dependent; the regression
   gate and the -j identity tests disable the time limit). *)
let m_rounds = Obs.counter "opt.rounds"
let m_outputs_decomposed = Obs.counter "opt.outputs_decomposed"
let m_windows = Obs.counter "opt.windows_marked"
let m_decomp_levels = Obs.histogram "opt.decomp_levels"
let m_skip_support = Obs.counter "opt.jobs_skipped_support"

let m_skip_deadline =
  Obs.counter ~stability:Obs.Sched "opt.jobs_skipped_deadline"

(* Degradation-ladder counters: one per rung descent, recording where
   each governed blowup landed. [Det] because every blowup that is not
   a real wall-clock expiry fires on a per-job tick count, which
   depends only on the job's input — never on scheduling. Real deadline
   cuts are inherently schedule-dependent and quarantined as [Sched]. *)
let rung_counter name = Obs.counter ("guard.rung." ^ name)
let m_rung_approx = rung_counter "approx_spcf"
let m_rung_shrink = rung_counter "shrink_window"
let m_rung_skip = rung_counter "skip_output"
let m_reconstruct_fallback = Obs.counter "guard.reconstruct_fallbacks"

let m_guard_deadline_cut =
  Obs.counter ~stability:Obs.Sched "guard.deadline_cuts"

let sp_round = Obs.span "opt.round"
let sp_decompose = Obs.span "opt.decompose"
let sp_spcf = Obs.span "opt.spcf"
let sp_window = Obs.span "opt.window"
let sp_secondary = Obs.span "opt.secondary"
let sp_reconstruct = Obs.span "opt.reconstruct"
let sp_balance = Obs.span "opt.balance"
let sp_polish = Obs.span "opt.polish"
let sp_sat_sweep = Obs.span "opt.sat_sweep"
let sp_final_cec = Obs.span "opt.final_cec"

(* Per-manager counters, recorded once per decomposition job (and by
   [Mfs]); each job's fresh manager does identical work at any -j, so
   the sums are [Det]. Misses are recorded explicitly so report
   validators can check hits + misses = lookups. *)
let m_bdd_managers = Obs.counter "bdd.managers"
let m_bdd_nodes = Obs.counter "bdd.nodes_allocated"
let g_bdd_peak = Obs.gauge "bdd.peak_live_nodes"
let m_bdd_unique_growths = Obs.counter "bdd.unique_growths"
let m_bdd_cache_growths = Obs.counter "bdd.cache_growths"
let m_ite_lookups = Obs.counter "bdd.ite_lookups"
let m_ite_hits = Obs.counter "bdd.ite_hits"
let m_ite_misses = Obs.counter "bdd.ite_misses"
let m_restrict_lookups = Obs.counter "bdd.restrict_lookups"
let m_restrict_hits = Obs.counter "bdd.restrict_hits"
let m_restrict_misses = Obs.counter "bdd.restrict_misses"
let m_compose_lookups = Obs.counter "bdd.compose_lookups"
let m_compose_hits = Obs.counter "bdd.compose_hits"
let m_compose_misses = Obs.counter "bdd.compose_misses"

let record_bdd_stats man =
  if Obs.enabled () then begin
    let s = Bdd.stats man in
    Obs.incr m_bdd_managers;
    Obs.add m_bdd_nodes s.Bdd.total_allocated;
    Obs.gauge_max g_bdd_peak s.Bdd.live_nodes;
    Obs.add m_bdd_unique_growths s.Bdd.unique_growths;
    Obs.add m_bdd_cache_growths
      (s.Bdd.ite_cache_growths + s.Bdd.restrict_cache_growths
     + s.Bdd.compose_cache_growths);
    Obs.add m_ite_lookups s.Bdd.ite_lookups;
    Obs.add m_ite_hits s.Bdd.ite_hits;
    Obs.add m_ite_misses (s.Bdd.ite_lookups - s.Bdd.ite_hits);
    Obs.add m_restrict_lookups s.Bdd.restrict_lookups;
    Obs.add m_restrict_hits s.Bdd.restrict_hits;
    Obs.add m_restrict_misses (s.Bdd.restrict_lookups - s.Bdd.restrict_hits);
    Obs.add m_compose_lookups s.Bdd.compose_lookups;
    Obs.add m_compose_hits s.Bdd.compose_hits;
    Obs.add m_compose_misses (s.Bdd.compose_lookups - s.Bdd.compose_hits)
  end

(* The exact SPCF is eligible only on narrow cones; the same predicate
   decides the degradation ladder's entry rung, so keep it shared. *)
let exact_spcf_eligible opts net =
  opts.use_exact_spcf && Network.num_inputs net <= 14

let spcf_of opts ~guard man net globals ~analysis ~levels ~out ~delta g
    ~aig_depth out_index =
  Obs.with_span sp_spcf @@ fun () ->
  if exact_spcf_eligible opts net then begin
    (* Exact floating-mode SPCF on the AIG (unit-delay threshold at the
       AIG depth), converted to a BDD over the primary inputs. *)
    let tt = Timing.Spcf.exact g ~out:out_index ~delta:aig_depth in
    Bdd.apply_tt man tt
      (Array.init (Network.num_inputs net) (fun i -> Bdd.var man i))
  end
  else
    Timing.Spcf.approx ~guard man net globals ~levels ~out ~delta
      ~max_nodes:opts.spcf_max_nodes ~analysis ()

(* Recursive multi-level decomposition of one output: peel a window off
   the current residue network, then recurse into the secondary circuit.
   Returns the decomposition levels (outermost first) and the final
   residue. *)
let decompose_output opts ~guard ~member man g out_index (o : Network.output)
    net0 analysis0 globals0 ~aig_depth =
  let oid = o.Network.node in
  let rec go net analysis globals depth_left ~stalls acc =
    (* Cancellation point at every decomposition level: a deadline that
       expires between secondary simplification and reconstruction must
       abandon the whole output (the caller falls back to the pre-edit
       cone), never hand a partially rewired residue to [merge]. *)
    Guard.check_deadline guard ~site:"driver.decompose";
    if depth_left = 0 || (Bdd.stats man).Bdd.live_nodes > opts.bdd_node_limit
    then
      (List.rev acc, net)
    else begin
      let levels = Network.Analysis.levels analysis in
      let l_out = levels.(oid) in
      if l_out <= 1 then (List.rev acc, net)
      else begin
        let spcf =
          spcf_of opts ~guard man net globals ~analysis ~levels ~out:o
            ~delta:l_out g ~aig_depth out_index
        in
        if Bdd.is_false man spcf then (List.rev acc, net)
        else begin
          let spcf_count =
            Bdd.satcount man ~nvars:(Network.num_inputs net) spcf
          in
          let primary = Network.copy net in
          let primary_analysis = Network.Analysis.for_copy analysis primary in
          let outcome =
            Obs.with_span sp_window @@ fun () ->
            Reduce.run man ~analysis:primary_analysis ~globals ~spcf
              ~spcf_count primary ~out:o ~target:l_out
          in
          Obs.add m_windows (List.length outcome.Reduce.marked);
          if outcome.Reduce.marked = [] then begin
            Log.debug (fun m ->
                m "decompose %s: stop (no simplification at level %d)"
                  o.Network.name l_out);
            (List.rev acc, net)
          end
          else begin
            let sigma =
              List.fold_left
                (fun s (id, w) ->
                  Bdd.band man s (Network.Globals.tt_image man globals net id w))
                (Bdd.btrue man) outcome.Reduce.marked
            in
            Log.debug (fun m ->
                m "decompose %s: residue level %d, %d node(s) marked, sigma size %d"
                  o.Network.name l_out
                  (List.length outcome.Reduce.marked)
                  (Bdd.size man sigma));
            if Bdd.is_false man sigma then (List.rev acc, net)
            else begin
              let level =
                {
                  Reconstruct.residue = net;
                  residue_globals = globals;
                  primary;
                  windows = outcome.Reduce.marked;
                }
              in
              if Bdd.is_true man sigma then
                (* The simplified circuit is valid everywhere: the windows
                   are vacuous and the primary replaces the output. *)
                (List.rev (level :: acc), primary)
              else begin
                let secondary = Network.copy net in
                let sec_analysis =
                  Network.Analysis.for_copy analysis secondary
                in
                let edited =
                  Obs.with_span sp_secondary @@ fun () ->
                  Secondary.run man ~globals ~care:(Bdd.bnot man sigma)
                    secondary ~analysis:sec_analysis ~out:o
                in
                let sec_levels = Network.Analysis.levels sec_analysis in
                let residue_changed = edited <> [] in
                let stalled = sec_levels.(oid) >= l_out in
                if stalled && ((not residue_changed) || stalls >= 1) then begin
                  (* The residue stopped making progress: keep this level
                     and stop. A few stalled-but-changed iterations are
                     allowed — the next window often needs the fresh
                     don't-cares to cut through — but not unboundedly. *)
                  Log.debug (fun m ->
                      m "decompose %s: stop (residue stalled at level %d)"
                        o.Network.name sec_levels.(oid));
                  (List.rev (level :: acc), secondary)
                end
                else begin
                  (* Only the cones that contain an edit changed: reuse
                     every other output's global BDD verbatim. *)
                  let sec_globals =
                    Network.Globals.update ~guard ~member man globals secondary
                      ~dirty:edited
                      ~fanouts:(Network.Analysis.fanouts sec_analysis)
                  in
                  go secondary sec_analysis sec_globals (depth_left - 1)
                    ~stalls:(if stalled then stalls + 1 else 0)
                    (level :: acc)
                end
              end
            end
          end
        end
      end
    end
  in
  go net0 analysis0 globals0 opts.max_decomp_levels ~stalls:0 []

(* Result of the parallel per-output decomposition phase. The manager is
   carried to the (sequential) reconstruction phase: the decomposition's
   BDDs live in it, and they all die with it once the output is merged. *)
type decomposed = {
  man : Bdd.man;
  y_bdd : Bdd.t;
  pieces : Reconstruct.pieces;
}

(* One optimization round over all critical outputs. Returns the new
   graph and the number of outputs reconstructed. [deadline] makes the
   flow an anytime algorithm: outputs past the budget fall back to their
   original cones.

   Parallel structure: each output's decomposition is an independent job
   on the shared pool — per the lib/par isolation convention every
   worker reads its own [Network.copy] of the round's network ([~init])
   and every job builds a fresh BDD manager, so nothing mutable crosses
   domains. Reconstruction into the shared destination AIG stays
   sequential, in output order, which makes the round's result
   bit-identical to the -j 1 run (decomposition never reads [dst], and
   reconstruction decisions depend only on structural levels, not on
   what else has been strashed in). Jobs are forked in waves and merged
   future-by-future so at most a wave of completed-but-unmerged BDD
   managers is live at once. *)
let one_round opts ~deadline g =
  let net = Network.of_aig ~k:opts.cluster_k g in
  let levels = Network.Levels.compute net in
  let outs = Network.outputs net in
  let l_t =
    List.fold_left
      (fun acc (o : Network.output) -> max acc levels.(o.Network.node))
      0 outs
  in
  if l_t = 0 then (g, 0)
  else begin
    let old_levels = Aig.levels g in
    let old_outputs = Array.of_list (Aig.outputs g) in
    (* Destination graph shared by all outputs so common logic strashes. *)
    let dst = Aig.create () in
    let lev = Aig.Lev.create dst in
    let in_lits =
      Array.of_list
        (List.map
           (fun l ->
             Aig.add_input ?name:(Aig.input_name g (Aig.node_of_lit l)) dst)
           (Aig.inputs g))
    in
    let input_map i = in_lits.(i) in
    let copy_memo = Hashtbl.create 256 in
    let copy_original l =
      Aig.copy_cone ~dst ~src:g
        ~map:(fun id -> in_lits.(Aig.input_index g id))
        ~memo:copy_memo l
    in
    let decomposed = ref 0 in
    let aig_depth = Aig.depth g in
    (* [wstate] is per worker (lib/par [~init]): one network copy and
       one wiring/levels cache shared by every job the worker runs —
       cones, fanouts and support counts are computed once per worker,
       not once per output (the round never edits [wnet] itself). *)
    let decompose_job (wnet, wanalysis)
        (out_index, (o : Network.output), old_level) =
      if old_level < aig_depth then None
      else if Network.is_input wnet o.Network.node then None
      else if
        Network.Analysis.support_count wanalysis o.Network.node
        > opts.max_cone_inputs
      then begin
        Obs.incr m_skip_support;
        Log.debug (fun m ->
            m "skip %s: cone support exceeds %d" o.Network.name
              opts.max_cone_inputs);
        None
      end
      else if Par.Deadline.expired deadline then begin
        Obs.incr m_skip_deadline;
        Log.debug (fun m ->
            m "skip %s: optimization time budget exhausted" o.Network.name);
        None
      end
      else begin
        Obs.with_span sp_decompose @@ fun () ->
        (* One guard context per output job, shared across every rung of
           the degradation ladder: tick counts carry over between rungs,
           so a single-shot injected fault fires once per job (the
           descent), not once per rung, and both budgets and injections
           land identically at any -j — the tick sequence depends only
           on the job's input. *)
        let guard = Guard.create ~deadline opts.guard_budget in
        (* The job only ever reads global functions of nodes inside the
           output's cone (SPCF walks, window images, secondary
           simplification and reconstruction are all cone-local), so it
           builds exactly that cone instead of the whole network. The
           cone is wiring-based and every copy shares the round's
           wiring, so one mask serves every decomposition level. *)
        let cone = Network.Analysis.cone wanalysis o.Network.node in
        let member = Array.make (Network.num_nodes wnet) false in
        List.iter (fun id -> member.(id) <- true) cone;
        let attempt rung =
          let opts_r =
            match rung with
            | `Exact -> opts
            | `Approx -> { opts with use_exact_spcf = false }
            | `Shrunk ->
              {
                opts with
                use_exact_spcf = false;
                spcf_max_nodes = max 4 (opts.spcf_max_nodes / 2);
                max_decomp_levels = max 1 (opts.max_decomp_levels / 2);
              }
          in
          (* A fresh (or reset-recycled) BDD manager per attempt keeps
             memory bounded: all BDDs of one attempt die with its
             manager, and a blown-up attempt leaves no state behind for
             the next rung. [reuse_managers] swaps create/drop for the
             process-wide pool — Bdd.reset guarantees a recycled
             manager is observationally fresh, so results and stats are
             unchanged; a warm server sets it to skip the large array
             allocations on every job. *)
          let man =
            if opts.reuse_managers then Bdd.Pool.acquire ~guard ()
            else Bdd.create ~guard ()
          in
          let release () = if opts.reuse_managers then Bdd.Pool.release man in
          match
            let globals =
              Network.Globals.of_cluster ~guard man wnet ~nodes:cone
            in
            let decomp_levels, final_residue =
              decompose_output opts_r ~guard ~member man g out_index o wnet
                wanalysis globals ~aig_depth
            in
            (globals, decomp_levels, final_residue)
          with
          | globals, decomp_levels, final_residue ->
            Obs.observe m_decomp_levels (List.length decomp_levels);
            if decomp_levels = [] then begin
              (* Managers that never reach [merge] are still accounted
                 for. *)
              record_bdd_stats man;
              release ();
              Ok None
            end
            else
              Ok
                (Some
                   {
                     man;
                     y_bdd = globals.(o.Network.node);
                     pieces =
                       {
                         Reconstruct.levels = decomp_levels;
                         final_residue;
                         out = o;
                       };
                   })
          | exception Guard.Blowup { resource; injected; site = _ } ->
            record_bdd_stats man;
            release ();
            Error (resource, injected)
        in
        (* The deterministic degradation ladder: exact SPCF → approximate
           SPCF → smaller window/depth → skip the output. Time faults
           jump straight to the terminal rung — retrying cannot buy time
           back — with injected expiry counted [Det] (it fires on a tick
           count) and real expiry quarantined as [Sched]. *)
        let journal_degrade rung =
          (* Which output lands on which rung is a pure function of the
             job (budgets and injected tick counts are Det), so the
             payload is Det — the identity bench hashes it. *)
          Obs.Journal.record ~kind:"guard.degrade"
            ~det:
              (Obs.Json.Obj
                 [ ("rung", Obs.Json.String rung);
                   ("output", Obs.Json.String o.Network.name) ])
            ()
        in
        let rec ladder rung =
          match attempt rung with
          | Ok r -> r
          | Error (Guard.Time, injected) ->
            if injected then begin
              Obs.incr m_rung_skip;
              journal_degrade "skip_output"
            end
            else begin
              Obs.incr m_guard_deadline_cut;
              Obs.Journal.record ~kind:"guard.deadline_cut"
                ~sched:
                  (Obs.Json.Obj
                     [ ("output", Obs.Json.String o.Network.name) ])
                ();
              Log.debug (fun m ->
                  m "skip %s: deadline expired mid-decomposition"
                    o.Network.name)
            end;
            None
          | Error ((Guard.Bdd_nodes | Guard.Sat_conflicts), _) -> (
            match rung with
            | `Exact ->
              Obs.incr m_rung_approx;
              journal_degrade "approx_spcf";
              ladder `Approx
            | `Approx ->
              Obs.incr m_rung_shrink;
              journal_degrade "shrink_window";
              ladder `Shrunk
            | `Shrunk ->
              Obs.incr m_rung_skip;
              journal_degrade "skip_output";
              None)
        in
        ladder (if exact_spcf_eligible opts wnet then `Exact else `Approx)
      end
    in
    let merge result (out_index, (o : Network.output), old_level) =
      Obs.with_span sp_reconstruct @@ fun () ->
      let _, old_lit = old_outputs.(out_index) in
      let fallback () = copy_original old_lit in
      let lit =
        match result with
        | None -> fallback ()
        | Some { man; y_bdd; pieces } -> (
          match Reconstruct.build man ~y_bdd dst lev ~input_map pieces with
          | Some l when Aig.Lev.level lev l < old_level ->
            incr decomposed;
            Log.debug (fun m ->
                m "output %s: %d decomposition level(s), level %d -> %d"
                  o.Network.name
                  (List.length pieces.Reconstruct.levels)
                  old_level (Aig.Lev.level lev l));
            l
          | Some l ->
            Log.debug (fun m ->
                m "output %s: reconstruction level %d >= old %d, rejected"
                  o.Network.name (Aig.Lev.level lev l) old_level);
            fallback ()
          | None ->
            Log.debug (fun m ->
                m "output %s: no valid reconstruction form" o.Network.name);
            fallback ()
          | exception Guard.Blowup _ ->
            (* Reconstruction keeps ticking the job's manager, so a
               budget crossed (or fault injected) this late lands here:
               drop the half-built form and restore the pre-edit cone.
               [dst] is unharmed — [Reconstruct.build] only adds nodes,
               and unreferenced ones die in the final cleanup. *)
            Obs.incr m_reconstruct_fallback;
            Log.debug (fun m ->
                m "output %s: blowup during reconstruction, restored"
                  o.Network.name);
            fallback ())
      in
      (* After [Reconstruct.build] so its manager traffic is included;
         [merge] runs sequentially in submission order, so the sums
         stay deterministic. *)
      (match result with
      | Some { man; _ } ->
        record_bdd_stats man;
        if opts.reuse_managers then Bdd.Pool.release man
      | None -> ());
      Aig.add_output dst o.Network.name lit
    in
    let jobs =
      List.mapi
        (fun out_index (o : Network.output) ->
          let _, old_lit = old_outputs.(out_index) in
          (out_index, o, old_levels.(Aig.node_of_lit old_lit)))
        outs
    in
    (* Manager-affine fan-out: each job's fresh BDD manager is touched
       by one worker until its future is merged on this domain, and the
       wave bound caps completed-but-unmerged managers (Par.map_merge
       generalizes the hand-rolled wave loop this replaced). *)
    Par.map_merge ~pool:(Par.shared ())
      ~init:(fun () ->
        let w = Network.copy net in
        (w, Network.Analysis.create w))
      ~f:decompose_job
      ~merge:(fun () job result -> merge result job)
      () jobs;
    (Aig.cleanup dst, !decomposed)
  end

(* Conventional delay-oriented cleanup (balance + cut rewriting to a
   bounded fixpoint). The paper's technique complements standard logic
   optimization — it was run inside ABC on conventionally optimized
   circuits — so the driver applies the same polish before and after the
   decomposition rounds. *)
let polish g =
  Obs.with_span sp_polish @@ fun () ->
  let step g =
    Aig.Balance.run (Aig.Rewrite.run ~k:6 ~per_node:8 ~objective:`Delay g)
  in
  let rec fixpoint i g =
    if i = 0 then g
    else begin
      let g' = step g in
      if
        Aig.depth g' < Aig.depth g
        || (Aig.depth g' = Aig.depth g
            && Aig.num_reachable_ands g' < Aig.num_reachable_ands g)
      then fixpoint (i - 1) g'
      else g
    end
  in
  fixpoint 6 (step g)

let balance g = Obs.with_span sp_balance (fun () -> Aig.Balance.run g)

let optimize_with_stats ?(options = default) g0 =
  let g = if options.balance_first then balance g0 else g0 in
  let initial_depth = Aig.depth g0 in
  (* One monotonic deadline shared by the whole run — every worker of
     every round checks the same absolute instant, so the time budget
     means the same thing at -j 1 and -j 8 and is immune to wall-clock
     adjustments. *)
  let deadline =
    match options.deadline with
    | Some d -> d
    | None -> Par.Deadline.after options.time_limit_s
  in
  (* Run-level guard context for the sequential finishing passes (SAT
     sweep, final CEC); per-output decomposition jobs get their own.
     Deliberately deadline-free — the finishing passes always run to
     completion, like the existing flow. *)
  let run_guard = Guard.create options.guard_budget in
  (* Inner loop: decomposition rounds while the depth improves. *)
  let rec rounds i g touched =
    if i >= options.max_rounds || Par.Deadline.expired deadline then
      (g, i, touched)
    else begin
      let g', n =
        Obs.with_span sp_round (fun () -> one_round options ~deadline g)
      in
      Obs.incr m_rounds;
      Obs.add m_outputs_decomposed n;
      let g' = balance g' in
      Log.debug (fun m ->
          m "round %d: depth %d -> %d (%d output(s) reconstructed)" (i + 1)
            (Aig.depth g) (Aig.depth g') n);
      if Aig.depth g' < Aig.depth g then rounds (i + 1) g' (touched + n)
      else (g, i, touched)
    end
  in
  (* Outer loop: alternate decomposition with conventional delay
     rewriting. Decomposition must come first — rewriting can obscure the
     regular structure the window search exploits. *)
  let rec outer budget g rr touched =
    let g1, r, n = rounds 0 g 0 in
    let g2 = polish g1 in
    let g' = if Aig.depth g2 <= Aig.depth g1 then g2 else g1 in
    if budget > 0 && Aig.depth g' < Aig.depth g
       && not (Par.Deadline.expired deadline)
    then outer (budget - 1) g' (rr + r) (touched + n)
    else (g', rr + r, touched + n)
  in
  let best, rounds_run, outputs_decomposed = outer 3 g 0 0 in
  (* Never lose to plain conventional rewriting: when no useful
     decomposition exists, fall back to the polished circuit. *)
  let conventional = polish g in
  let best =
    if
      Aig.depth conventional < Aig.depth best
      || (Aig.depth conventional = Aig.depth best
          && Aig.num_reachable_ands conventional < Aig.num_reachable_ands best)
    then conventional
    else best
  in
  let best =
    Obs.with_span sp_sat_sweep (fun () ->
        Aig.Sweep.sat_sweep ~guard:run_guard best)
  in
  (* The paper performs an equivalence check after optimization; a failed
     check would indicate a bug, so enforce it. The guard can only
     reduce the check's merge effort, never its soundness. *)
  (match
     Obs.with_span sp_final_cec (fun () ->
         Aig.Cec.check ~guard:run_guard g0 best)
   with
   | Aig.Cec.Equivalent -> ()
   | Aig.Cec.Counterexample _ ->
     invalid_arg "Lookahead.Driver.optimize: internal equivalence failure");
  ( best,
    {
      rounds_run;
      outputs_decomposed;
      initial_depth;
      final_depth = Aig.depth best;
    } )

let optimize ?options g = fst (optimize_with_stats ?options g)
