type verdict = Equivalent | Counterexample of bool array

type stats = {
  sim_rounds : int;
  sat_calls : int;
  merges : int;
  budget_exhausted : int;
}

(* Running totals for one [check]. *)
type acc = {
  mutable a_sim : int;
  mutable a_sat : int;
  mutable a_merge : int;
  mutable a_budget : int;
}

let m_checks = Obs.counter "cec.checks"
let m_sim_rounds = Obs.counter "cec.sim_rounds"
let m_sat_calls = Obs.counter "cec.sat_calls"
let m_merges = Obs.counter "cec.fraig_merges"
let m_budget = Obs.counter "cec.budget_exhausted"
let m_sim_refuted = Obs.counter "cec.sim_refutations"
let m_sat_conflicts = Obs.counter "sat.conflicts"
let m_sat_decisions = Obs.counter "sat.decisions"
let m_sat_propagations = Obs.counter "sat.propagations"
let m_sat_restarts = Obs.counter "sat.restarts"
let m_sat_reductions = Obs.counter "sat.reductions"
let m_sat_learnts_deleted = Obs.counter "sat.learnts_deleted"
let m_sat_minimized = Obs.counter "sat.minimized_lits"
let m_sat_vivified = Obs.counter "sat.vivified_lits"
let g_sat_learnts_live = Obs.gauge "sat.learnts_live"
let g_sat_arena_peak = Obs.gauge "sat.arena_peak_words"
let sp_check = Obs.span "cec.check"

(* Each [check]/sweep uses a fresh solver, so its cumulative stats are
   this unit's deltas; counters add across units, gauges keep the
   per-run peak. All Det-classified: the solver is single-threaded and
   free of randomness, so these are identical at any [-j]. *)
let record_solver_stats solver =
  let s = Sat.Solver.stats solver in
  Obs.add m_sat_conflicts s.Sat.Solver.conflicts;
  Obs.add m_sat_decisions s.Sat.Solver.decisions;
  Obs.add m_sat_propagations s.Sat.Solver.propagations;
  Obs.add m_sat_restarts s.Sat.Solver.restarts;
  Obs.add m_sat_reductions s.Sat.Solver.reductions;
  Obs.add m_sat_learnts_deleted s.Sat.Solver.learnts_deleted;
  Obs.add m_sat_minimized s.Sat.Solver.minimized_lits;
  Obs.add m_sat_vivified s.Sat.Solver.vivified_lits;
  Obs.gauge_max g_sat_learnts_live s.Sat.Solver.learnts_live;
  Obs.gauge_max g_sat_arena_peak s.Sat.Solver.arena_peak_words

(* Build a miter graph: shared inputs, one XOR literal per output pair.
   Strashing makes structurally identical cones collapse, so many pairs
   reduce to constant false without any SAT work. *)
let miter a b =
  assert (Graph.num_inputs a = Graph.num_inputs b);
  let la = Graph.outputs a and lb = Graph.outputs b in
  assert (List.length la = List.length lb);
  let g = Graph.create () in
  let ins =
    Array.init (Graph.num_inputs a) (fun i ->
        Graph.add_input ~name:(Printf.sprintf "i%d" i) g)
  in
  let map_for src id = ins.(Graph.input_index src id) in
  let memo_a = Hashtbl.create 256 and memo_b = Hashtbl.create 256 in
  let diffs =
    List.map2
      (fun (_, oa) (_, ob) ->
        let ca = Graph.copy_cone ~dst:g ~src:a ~map:(map_for a) ~memo:memo_a oa in
        let cb = Graph.copy_cone ~dst:g ~src:b ~map:(map_for b) ~memo:memo_b ob in
        Graph.bxor g ca cb)
      la lb
  in
  (g, diffs)

(* Random simulation on the miter: any set bit of any diff word is a
   counterexample. The stimuli are drawn sequentially up front (the RNG
   stream order is part of the deterministic contract) and the rounds
   simulate on the domain pool — each round reads the frozen miter and
   writes only its own value array. Verdicts are scanned in round order,
   so the counterexample found is the one the sequential loop reports. *)
let random_counterexample g diffs rounds =
  let ni = Graph.num_inputs g in
  let st = Random.State.make [| 0x5eed; ni |] in
  let stimuli =
    let rec draw r acc =
      if r = 0 then List.rev acc
      else
        draw (r - 1)
          (Array.init ni (fun _ -> Random.State.int64 st Int64.max_int) :: acc)
    in
    draw rounds []
  in
  let sims = Par.map_list (fun words -> (words, Graph.sim g words)) stimuli in
  let cex_of (words, values) =
    let value_of l =
      let w = values.(Graph.node_of_lit l) in
      if Graph.is_complemented l then Int64.lognot w else w
    in
    let hit =
      List.fold_left (fun acc d -> Int64.logor acc (value_of d)) 0L diffs
    in
    if hit = 0L then None
    else begin
      let rec bit i =
        if Int64.logand (Int64.shift_right_logical hit i) 1L = 1L then i
        else bit (i + 1)
      in
      let k = bit 0 in
      Some
        (Array.init ni (fun i ->
             Int64.logand (Int64.shift_right_logical words.(i) k) 1L = 1L))
    end
  in
  List.find_map cex_of sims

(* Fraig-style sweep of the miter: prove internal equivalences bottom-up
   and substitute, so each remaining diff output collapses to constant
   false structurally instead of being handed to the solver as one
   monolithic query. Simulation signatures propose candidate pairs; a
   shared incremental solver proves or refutes them, and every refutation
   contributes its model as a fresh simulation pattern that sharpens the
   signatures. XOR-heavy miters (the error-correcting benchmarks) are
   intractable for monolithic CDCL but fall apart this way: every proof
   is local to two small structurally-close cones. *)
let sweep_check ~guard acc g live =
  let nn = Graph.num_nodes g in
  let ni = Graph.num_inputs g in
  let st = Random.State.make [| 0xf4a16; nn |] in
  (* Simulation rounds, newest first; each is one per-node word array.
     The eight seed rounds are independent full-graph simulations of the
     frozen miter, so they run on the domain pool; results land in the
     same list order as the old sequential loop, keeping the signature
     classes (and hence every downstream merge and SAT query)
     bit-identical at any -j. Later counterexample rounds stay
     sequential — each depends on the previous solver refutation. *)
  let rounds = ref [] in
  let add_round words =
    acc.a_sim <- acc.a_sim + 1;
    rounds := Graph.sim g words :: !rounds
  in
  let seed_stimuli =
    let rec draw r acc =
      if r = 0 then List.rev acc
      else
        draw (r - 1)
          (Array.init ni (fun _ -> Random.State.int64 st Int64.max_int) :: acc)
    in
    draw 8 []
  in
  List.iter
    (fun values ->
      acc.a_sim <- acc.a_sim + 1;
      rounds := values :: !rounds)
    (Par.map_list (fun words -> Graph.sim g words) seed_stimuli);
  (* A refuting model becomes bit 0 of a fresh round; the remaining 63
     bits stay random so every refutation also buys generic coverage. *)
  let add_cex_round pat =
    add_round
      (Array.init ni (fun i ->
           let r = Random.State.int64 st Int64.max_int in
           Int64.logor
             (Int64.logand r (-2L))
             (if pat.(i) then 1L else 0L)))
  in
  let equal_sig a b =
    List.for_all (fun r -> Int64.equal r.(a) r.(b)) !rounds
  in
  let compl_sig a b =
    List.for_all (fun r -> Int64.equal r.(a) (Int64.lognot r.(b))) !rounds
  in
  (* Candidate classes, bucketed by polarity-canonical signature over the
     initial rounds. Buckets are over-approximations: the pair scan
     re-checks signatures against all current rounds, so refinement after
     a refutation is free — no bucket splitting. *)
  let base = Array.of_list (List.rev !rounds) in
  let bucket_key id =
    let flip = Int64.logand base.(0).(id) 1L = 1L in
    let b = Buffer.create (8 * Array.length base) in
    Array.iter
      (fun r ->
        Buffer.add_int64_le b (if flip then Int64.lognot r.(id) else r.(id)))
      base;
    Buffer.contents b
  in
  let buckets : (string, int list ref) Hashtbl.t = Hashtbl.create 1024 in
  let bucket_of id =
    let key = bucket_key id in
    match Hashtbl.find_opt buckets key with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add buckets key r;
      r
  in
  (* Constant and inputs included: a node proven constant or equal to an
     input merges just the same. *)
  for id = 0 to nn - 1 do
    let b = bucket_of id in
    b := id :: !b (* descending id order *)
  done;
  (* Image of each miter node in a fresh strashed graph; proven-equal
     nodes share one image literal, so downstream structure collapses. *)
  let dst = Graph.create () in
  let dst_in = Array.init ni (fun _ -> Graph.add_input dst) in
  let image = Array.make nn Graph.const_false in
  let image_of_lit l =
    let b = image.(Graph.node_of_lit l) in
    if Graph.is_complemented l then Graph.bnot b else b
  in
  (* Lazy Tseitin encoding of [dst] into one shared incremental solver. *)
  let solver = Sat.Solver.create () in
  let var_of : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let rec sat_var id =
    match Hashtbl.find_opt var_of id with
    | Some v -> v
    | None ->
      let v = Sat.Solver.new_var solver in
      Hashtbl.add var_of id v;
      if id = 0 then Sat.Solver.add_clause solver [ -v ]
      else if Graph.is_and dst id then begin
        let f0, f1 = Graph.fanins dst id in
        let a = sat_lit f0 and b = sat_lit f1 in
        Sat.Solver.add_clause solver [ -v; a ];
        Sat.Solver.add_clause solver [ -v; b ];
        Sat.Solver.add_clause solver [ v; -a; -b ]
      end;
      v
  and sat_lit l =
    let v = sat_var (Graph.node_of_lit l) in
    if Graph.is_complemented l then -v else v
  in
  let cex_pattern () =
    Array.init ni (fun i ->
        match Hashtbl.find_opt var_of (Graph.node_of_lit dst_in.(i)) with
        | Some v -> Sat.Solver.value solver v
        | None -> false)
  in
  (* Prove [x == y] (literals in dst) with a bounded budget. *)
  let limit = 4000 in
  let solve_bounded assumptions =
    acc.a_sat <- acc.a_sat + 1;
    match
      Sat.Solver.solve_limited ~guard ~assumptions ~conflict_limit:limit solver
    with
    | None ->
      acc.a_budget <- acc.a_budget + 1;
      None
    | r -> r
  in
  (* One batched miter query per candidate pair: a fresh selector [t]
     implies the disequality ([t -> x <> y], two clauses), and the query
     assumes [t]. Unsat under [t] proves [x == y]; Sat hands back a
     refuting model. Compared to the two directional queries
     ([x && not y], then [not x && y]) this derives the shared
     propagations once, and a retired selector is free: unasserted, its
     clauses are satisfied by the saved-phase default [t = false]. *)
  let prove_equal x y =
    let lx = sat_lit x and ly = sat_lit y in
    let t = Sat.Solver.new_var solver in
    Sat.Solver.add_clause solver [ -t; lx; ly ];
    Sat.Solver.add_clause solver [ -t; -lx; -ly ];
    match solve_bounded [ t ] with
    | Some Sat.Solver.Sat -> `Refuted (cex_pattern ())
    | None -> `Unknown
    | Some Sat.Solver.Unsat -> `Proved
  in
  let try_merge id =
    let members = List.rev !(bucket_of id) in
    (* Re-scan after every refutation: the new round disqualifies the
       refuted candidate, so each retry makes progress. Bounded for
       safety; in practice a handful of retries suffice. *)
    let rec attempt tries =
      if tries > 0 then begin
        let candidate =
          List.find_opt
            (fun rep ->
              rep < id
              && Graph.node_of_lit image.(rep)
                 <> Graph.node_of_lit image.(id)
              && (equal_sig rep id || compl_sig rep id))
            members
        in
        match candidate with
        | None -> ()
        | Some rep ->
          let rep_lit =
            if equal_sig rep id then image.(rep)
            else Graph.bnot image.(rep)
          in
          (match prove_equal image.(id) rep_lit with
           | `Proved ->
             acc.a_merge <- acc.a_merge + 1;
             image.(id) <- rep_lit
           | `Unknown -> ()
           | `Refuted pat ->
             add_cex_round pat;
             attempt (tries - 1))
      end
    in
    attempt 16
  in
  for id = 1 to nn - 1 do
    if Graph.is_input g id then
      image.(id) <- dst_in.(Graph.input_index g id)
    else begin
      let f0, f1 = Graph.fanins g id in
      image.(id) <- Graph.band dst (image_of_lit f0) (image_of_lit f1);
      try_merge id
    end
  done;
  (* Every diff whose image survived the sweep gets a final unbounded
     query on the swept (much smaller) structure. Deliberately not
     guarded: the verdict must stay sound under any budget or injected
     fault — only the merge-proof effort above is governable. *)
  let rec finish = function
    | [] -> Equivalent
    | d :: rest -> (
      let im = image_of_lit d in
      if im = Graph.const_false then finish rest
      else begin
        acc.a_sat <- acc.a_sat + 1;
        match Sat.Solver.solve ~assumptions:[ sat_lit im ] solver with
        | Sat.Solver.Unsat -> finish rest
        | Sat.Solver.Sat -> Counterexample (cex_pattern ())
      end)
  in
  let verdict = finish live in
  record_solver_stats solver;
  verdict

let check_with_stats ?(guard = Guard.none) a b =
  let tok = Obs.span_begin sp_check in
  Obs.incr m_checks;
  let acc = { a_sim = 0; a_sat = 0; a_merge = 0; a_budget = 0 } in
  let g, diffs = miter a b in
  let live = List.filter (fun d -> d <> Graph.const_false) diffs in
  let verdict =
    if live = [] then Equivalent
    else begin
      acc.a_sim <- acc.a_sim + 16;
      match random_counterexample g live 16 with
      | Some cex ->
        Obs.incr m_sim_refuted;
        Counterexample cex
      | None -> sweep_check ~guard acc g live
    end
  in
  Obs.add m_sim_rounds acc.a_sim;
  Obs.add m_sat_calls acc.a_sat;
  Obs.add m_merges acc.a_merge;
  Obs.add m_budget acc.a_budget;
  Obs.span_end sp_check tok;
  ( verdict,
    { sim_rounds = acc.a_sim;
      sat_calls = acc.a_sat;
      merges = acc.a_merge;
      budget_exhausted = acc.a_budget } )

let check ?guard a b = fst (check_with_stats ?guard a b)

let equivalent ?guard a b =
  match check ?guard a b with Equivalent -> true | Counterexample _ -> false
