(** Combinational equivalence checking.

    The paper verifies every optimized circuit against the original
    ("an equivalence check is performed after optimization", Sec. 5); this
    module provides that check: random simulation for fast refutation
    followed by SAT on a miter. *)

type verdict =
  | Equivalent
  | Counterexample of bool array  (** input assignment where outputs differ *)

(** [check ?guard a b] compares two circuits with the same number of
    inputs and outputs (matched positionally). [guard] (default
    {!Guard.none}) governs only the bounded merge-proof queries of the
    fraig sweep — a budget or injected fault can make the sweep merge
    less, never change the verdict, because the final per-diff queries
    are unbounded and unguarded. *)
val check : ?guard:Guard.t -> Graph.t -> Graph.t -> verdict

val equivalent : ?guard:Guard.t -> Graph.t -> Graph.t -> bool

(** Work counters for one check: simulation rounds run (seed,
    refutation-refinement, and miter-level), SAT queries issued, fraig
    merges proven, and bounded queries that exhausted their conflict
    budget. Deterministic for a given input pair at any [-j]. *)
type stats = {
  sim_rounds : int;
  sat_calls : int;
  merges : int;
  budget_exhausted : int;
}

(** [check] plus the sweep's work counters (also recorded under the
    [cec.*] and [sat.*] [Obs] metrics when observation is enabled). *)
val check_with_stats : ?guard:Guard.t -> Graph.t -> Graph.t -> verdict * stats
