(** Redundancy elimination — the paper's area-recovery step.

    [sat_sweep] detects functionally equivalent internal nodes (up to
    complementation) with random simulation and proves candidate merges
    with the SAT solver before rewiring; [cleanup] removes dangling and
    structurally duplicate logic. *)

(** Structural cleanup ({!Graph.cleanup}). *)
val cleanup : Graph.t -> Graph.t

(** [sat_sweep ?guard ?rounds ?max_pairs g] merges proven-equivalent
    nodes. [rounds] is the number of 64-bit random simulation rounds
    used to partition candidates; [max_pairs] bounds SAT effort.
    [guard] (default {!Guard.none}) governs the per-pair proof queries:
    an exhausted or injected budget skips the merge (always sound). *)
val sat_sweep :
  ?guard:Guard.t -> ?rounds:int -> ?max_pairs:int -> Graph.t -> Graph.t
