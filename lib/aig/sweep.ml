let cleanup = Graph.cleanup

let m_pairs = Obs.counter "sweep.candidate_pairs"
let m_sat_calls = Obs.counter "sweep.sat_calls"
let m_merges = Obs.counter "sweep.merges"

(* Shared with [Cec] (same names; registration is idempotent). *)
let m_sat_conflicts = Obs.counter "sat.conflicts"
let m_sat_decisions = Obs.counter "sat.decisions"
let m_sat_propagations = Obs.counter "sat.propagations"
let m_sat_restarts = Obs.counter "sat.restarts"
let m_sat_reductions = Obs.counter "sat.reductions"
let m_sat_learnts_deleted = Obs.counter "sat.learnts_deleted"
let m_sat_minimized = Obs.counter "sat.minimized_lits"
let m_sat_vivified = Obs.counter "sat.vivified_lits"
let g_sat_learnts_live = Obs.gauge "sat.learnts_live"
let g_sat_arena_peak = Obs.gauge "sat.arena_peak_words"

let sat_sweep ?(guard = Guard.none) ?(rounds = 8) ?(max_pairs = 2000) g =
  let nn = Graph.num_nodes g in
  let ni = Graph.num_inputs g in
  if ni = 0 then Graph.cleanup g
  else begin
    (* Signatures from several simulation rounds; canonical polarity keeps
       a node and its complement in one class. *)
    let st = Random.State.make [| 0xcafe; nn |] in
    let sigs = Array.make nn [] in
    for _ = 1 to rounds do
      let words = Array.init ni (fun _ -> Random.State.int64 st Int64.max_int) in
      let values = Graph.sim g words in
      for id = 0 to nn - 1 do
        sigs.(id) <- values.(id) :: sigs.(id)
      done
    done;
    let canon s =
      let flipped = List.map Int64.lognot s in
      if s <= flipped then (s, false) else (flipped, true)
    in
    let classes = Hashtbl.create 256 in
    for id = 0 to nn - 1 do
      if id = 0 || Graph.is_and g id then begin
        let key, flip = canon sigs.(id) in
        let prev = try Hashtbl.find classes key with Not_found -> [] in
        Hashtbl.replace classes key ((id, flip) :: prev)
      end
    done;
    (* Candidate pairs: each class member against the class representative.
       The representative is the shallowest member (then the smallest id)
       so merging never increases the depth of the circuit. *)
    let lv = Graph.levels g in
    let pairs = ref [] in
    Hashtbl.iter
      (fun _ members ->
        let ordered =
          List.sort
            (fun (a, _) (b, _) -> compare (lv.(a), a) (lv.(b), b))
            members
        in
        match ordered with
        | [] | [ _ ] -> ()
        | (rep, rep_flip) :: rest ->
          List.iter
            (fun (id, flip) ->
              if id > rep then pairs := (rep, id, rep_flip <> flip) :: !pairs)
            rest)
      classes;
    let pairs =
      let sorted = List.sort compare !pairs in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: r -> x :: take (n - 1) r
      in
      take max_pairs sorted
    in
    Obs.add m_pairs (List.length pairs);
    if pairs = [] then Graph.cleanup g
    else begin
      let solver = Sat.Solver.create () in
      let sat_lit = Cnf.encode solver g in
      let subst = Hashtbl.create 64 in
      (* subst: node id -> replacement literal in the ORIGINAL graph *)
      let resolve id =
        let rec go l =
          let i = Graph.node_of_lit l in
          match Hashtbl.find_opt subst i with
          | None -> l
          | Some l' ->
            let r = go l' in
            if Graph.is_complemented l then Graph.bnot r else r
        in
        go (Graph.lit_of_node id false)
      in
      List.iter
        (fun (rep, id, flipped) ->
          if not (Hashtbl.mem subst id) then begin
            let rep_lit = resolve rep in
            (* Avoid cyclic substitutions through an already-replaced rep. *)
            if Graph.node_of_lit rep_lit <> id then begin
              let a = sat_lit (Graph.lit_of_node id false) in
              let b = sat_lit (if flipped then Graph.bnot rep_lit else rep_lit) in
              Obs.incr m_sat_calls;
              (* One batched miter query per pair: a fresh selector [t]
                 implies the disequality ([t -> a <> b]), assumed for
                 this query only. Unsat proves [a == b] in one solve
                 instead of the two directional queries. Guarded with
                 limit 0 (= unlimited unless the budget caps it):
                 [None] simply skips the merge, which is always sound.
                 A retired selector costs nothing — unasserted, its
                 clauses are satisfied by the default phase [t = false]. *)
              let t = Sat.Solver.new_var solver in
              Sat.Solver.add_clause solver [ -t; a; b ];
              Sat.Solver.add_clause solver [ -t; -a; -b ];
              let ne =
                Sat.Solver.solve_limited ~guard ~assumptions:[ t ]
                  ~conflict_limit:0 solver
              in
              if ne = Some Sat.Solver.Unsat then begin
                Obs.incr m_merges;
                Hashtbl.replace subst id
                  (if flipped then Graph.bnot rep_lit else rep_lit)
              end
            end
          end)
        pairs;
      (let s = Sat.Solver.stats solver in
       Obs.add m_sat_conflicts s.Sat.Solver.conflicts;
       Obs.add m_sat_decisions s.Sat.Solver.decisions;
       Obs.add m_sat_propagations s.Sat.Solver.propagations;
       Obs.add m_sat_restarts s.Sat.Solver.restarts;
       Obs.add m_sat_reductions s.Sat.Solver.reductions;
       Obs.add m_sat_learnts_deleted s.Sat.Solver.learnts_deleted;
       Obs.add m_sat_minimized s.Sat.Solver.minimized_lits;
       Obs.add m_sat_vivified s.Sat.Solver.vivified_lits;
       Obs.gauge_max g_sat_learnts_live s.Sat.Solver.learnts_live;
       Obs.gauge_max g_sat_arena_peak s.Sat.Solver.arena_peak_words);
      if Hashtbl.length subst = 0 then Graph.cleanup g
      else begin
        (* Rebuild with substitutions applied. *)
        let dst = Graph.create () in
        let map = Hashtbl.create 256 in
        List.iter
          (fun l ->
            let id = Graph.node_of_lit l in
            Hashtbl.replace map id
              (Graph.add_input ?name:(Graph.input_name g id) dst))
          (Graph.inputs g);
        Hashtbl.replace map 0 Graph.const_false;
        let rec build l =
          let id = Graph.node_of_lit l in
          let via_subst = resolve id in
          let base =
            if Graph.node_of_lit via_subst <> id then begin
              let b = build via_subst in
              b
            end
            else
              match Hashtbl.find_opt map id with
              | Some b -> b
              | None ->
                let f0, f1 = Graph.fanins g id in
                let b = Graph.band dst (build f0) (build f1) in
                Hashtbl.replace map id b;
                b
          in
          if Graph.is_complemented l then Graph.bnot base else base
        in
        List.iter
          (fun (name, l) -> Graph.add_output dst name (build l))
          (Graph.outputs g);
        dst
      end
    end
  end
