(** A small CDCL SAT solver (watched literals, first-UIP learning, VSIDS
    style activities, geometric restarts).

    Variables are positive integers starting at 1; a literal is a non-zero
    integer whose sign selects the polarity (DIMACS convention). The solver
    backs the combinational equivalence checks that the paper performs
    after every optimization run, and the redundancy-elimination pass used
    for area recovery. *)

type t

type result = Sat | Unsat

val create : unit -> t

(** Ensure variables up to [v] exist; returns [v] for convenience. *)
val ensure_var : t -> int -> int

(** Fresh variable. *)
val new_var : t -> int

(** Add a clause of literals. Adding the empty clause makes the instance
    trivially unsatisfiable. *)
val add_clause : t -> int list -> unit

(** [solve ?assumptions s] decides satisfiability under the optional
    assumption literals. The solver state stays usable afterwards
    (incremental). *)
val solve : ?assumptions:int list -> t -> result

(** Like {!solve}, but gives up and returns [None] after [conflict_limit]
    conflicts (a non-positive limit means no limit). Used by SAT sweeping
    to bound the effort per candidate equivalence; the solver stays
    usable either way.

    [guard] (default {!Guard.none}) makes the query governable: the
    budget's [sat_conflict_ceiling] caps [conflict_limit], and an armed
    injection rule can force [None] without touching the solver —
    callers must already treat [None] as "no verdict". *)
val solve_limited :
  ?guard:Guard.t ->
  ?assumptions:int list ->
  conflict_limit:int ->
  t ->
  result option

(** After [Sat]: model value of a variable. *)
val value : t -> int -> bool

val num_vars : t -> int
val num_clauses : t -> int

(** Number of conflicts in the last [solve] call, for diagnostics. *)
val last_conflicts : t -> int

(** Cumulative search statistics since [create]. Deterministic for a
    deterministic sequence of [add_clause]/[solve] calls — the solver has
    no randomization — so callers may record deltas of these into
    deterministic [Obs] counters. *)
type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
}

val stats : t -> stats
