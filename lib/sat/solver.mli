(** A modern incremental CDCL SAT solver: flat clause-arena storage,
    watched literals with blocker caching, first-UIP learning with
    recursive (self-subsuming) learnt-clause minimization, VSIDS
    activities, phase saving, Luby restarts, and LBD-driven clause
    database reduction with optional bounded vivification of retained
    learnts.

    Variables are positive integers starting at 1; a literal is a non-zero
    integer whose sign selects the polarity (DIMACS convention). The solver
    backs the combinational equivalence checks that the paper performs
    after every optimization run, and the redundancy-elimination pass used
    for area recovery.

    The solver is single-threaded and free of randomness and clocks:
    every decision — including when the learnt database is reduced,
    which is triggered purely by cumulative conflict counts — depends
    only on the sequence of [add_clause]/[solve] calls, so all
    statistics are deterministic and independent of [-j]. *)

type t

type result = Sat | Unsat

(** [create ()] builds an empty solver. [vivify] (default [true])
    enables bounded vivification of retained learnt clauses at database
    reduction points. [reduce_base] (default 300) is the cumulative
    conflict count of the first database reduction; the interval to
    each subsequent reduction grows by the same amount. Both knobs
    exist for tests; production call sites use the defaults. *)
val create : ?vivify:bool -> ?reduce_base:int -> unit -> t

(** Ensure variables up to [v] exist; returns [v] for convenience. *)
val ensure_var : t -> int -> int

(** Fresh variable. *)
val new_var : t -> int

(** Add a clause of literals. Adding the empty clause makes the instance
    trivially unsatisfiable. *)
val add_clause : t -> int list -> unit

(** [solve ?assumptions s] decides satisfiability under the optional
    assumption literals. The solver state stays usable afterwards
    (incremental). *)
val solve : ?assumptions:int list -> t -> result

(** Like {!solve}, but gives up and returns [None] after [conflict_limit]
    conflicts (a non-positive limit means no limit). Used by SAT sweeping
    to bound the effort per candidate equivalence; the solver stays
    usable either way.

    [guard] (default {!Guard.none}) makes the query governable: the
    budget's [sat_conflict_ceiling] caps [conflict_limit] per call, the
    cumulative [sat_conflict_budget] bounds the aggregate conflicts a
    guard's whole lifetime may spend (each call reports its conflicts
    back via [Guard.sat_spend], and an exhausted budget makes further
    calls return [None] immediately), and an armed injection rule can
    force [None] without touching the solver — callers must already
    treat [None] as "no verdict". *)
val solve_limited :
  ?guard:Guard.t ->
  ?assumptions:int list ->
  conflict_limit:int ->
  t ->
  result option

(** After [Sat]: model value of a variable. *)
val value : t -> int -> bool

val num_vars : t -> int
val num_clauses : t -> int

(** Number of conflicts in the last [solve] call, for diagnostics. *)
val last_conflicts : t -> int

(** Cumulative search statistics since [create]. Deterministic for a
    deterministic sequence of [add_clause]/[solve] calls — the solver has
    no randomization — so callers may record deltas of these into
    deterministic [Obs] counters.

    [learnts_live] is the current learnt-clause count (not cumulative);
    [arena_words] the words currently used by the clause arena and
    [arena_peak_words] its lifetime peak; [minimized_lits] counts
    literals removed from learnt clauses by self-subsuming minimization,
    [vivified_lits] those removed by vivification at reduction points. *)
type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  reductions : int;
  learnts_live : int;
  learnts_deleted : int;
  minimized_lits : int;
  vivified_lits : int;
  arena_words : int;
  arena_peak_words : int;
}

val stats : t -> stats
