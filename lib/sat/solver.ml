(* CDCL solver. Internal literal encoding: variable v (1-based) yields
   literals 2v (positive) and 2v+1 (negative); [neg l = l lxor 1].
   Assignment values: 0 = false, 1 = true, -1 = unassigned (per variable).

   Branching is VSIDS over an indexed binary max-heap (constant-time
   lookup of the highest-activity unassigned variable instead of a linear
   scan), with phase saving: a variable re-decided after backtracking
   keeps its last assigned polarity, which preserves partial assignments
   across restarts. *)

type clause = { lits : int array; mutable learnt : bool; mutable act : float }

type t = {
  mutable nvars : int;
  mutable clauses : clause list;
  mutable learnts : clause list;
  mutable watches : clause list array; (* indexed by internal literal *)
  mutable assign : int array; (* per variable *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable var_inc : float;
  mutable trail : int array; (* internal literals, in assignment order *)
  mutable trail_size : int;
  mutable trail_lim : int list; (* trail sizes at decision points *)
  mutable qhead : int;
  mutable ok : bool;
  mutable conflicts : int;
  mutable last_conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable seen : bool array;
  mutable phase : Bytes.t; (* saved polarity per variable: 0 false, 1 true *)
  mutable heap : int array; (* binary max-heap of variables by activity *)
  mutable heap_pos : int array; (* var -> index in heap, -1 if absent *)
  mutable heap_size : int;
}

let create () =
  {
    nvars = 0;
    clauses = [];
    learnts = [];
    watches = Array.make 4 [];
    assign = Array.make 2 (-1);
    level = Array.make 2 0;
    reason = Array.make 2 None;
    activity = Array.make 2 0.0;
    var_inc = 1.0;
    trail = Array.make 16 0;
    trail_size = 0;
    trail_lim = [];
    qhead = 0;
    ok = true;
    conflicts = 0;
    last_conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    seen = Array.make 2 false;
    phase = Bytes.make 2 '\000';
    heap = Array.make 16 0;
    heap_pos = Array.make 2 (-1);
    heap_size = 0;
  }

let grow_array a n default =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) default in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* --- activity heap ---------------------------------------------------- *)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(b) <- i;
  s.heap_pos.(a) <- j

let rec sift_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if s.activity.(s.heap.(i)) > s.activity.(s.heap.(p)) then begin
      heap_swap s i p;
      sift_up s p
    end
  end

let rec sift_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < s.heap_size && s.activity.(s.heap.(l)) > s.activity.(s.heap.(!m))
  then m := l;
  if r < s.heap_size && s.activity.(s.heap.(r)) > s.activity.(s.heap.(!m))
  then m := r;
  if !m <> i then begin
    heap_swap s i !m;
    sift_down s !m
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    if s.heap_size >= Array.length s.heap then begin
      let b = Array.make (2 * Array.length s.heap) 0 in
      Array.blit s.heap 0 b 0 s.heap_size;
      s.heap <- b
    end;
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    sift_up s (s.heap_size - 1)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  if s.heap_size > 0 then begin
    let last = s.heap.(s.heap_size) in
    s.heap.(0) <- last;
    s.heap_pos.(last) <- 0;
    sift_down s 0
  end;
  s.heap_pos.(v) <- -1;
  v

(* ---------------------------------------------------------------------- *)

let ensure_var s v =
  assert (v > 0);
  if v > s.nvars then begin
    let old = s.nvars in
    s.nvars <- v;
    s.assign <- grow_array s.assign (v + 1) (-1);
    s.level <- grow_array s.level (v + 1) 0;
    s.reason <- grow_array s.reason (v + 1) None;
    s.activity <- grow_array s.activity (v + 1) 0.0;
    s.seen <- grow_array s.seen (v + 1) false;
    s.watches <- grow_array s.watches (2 * v + 2) [];
    if Bytes.length s.phase < v + 1 then begin
      let b = Bytes.make (max (v + 1) (2 * Bytes.length s.phase)) '\000' in
      Bytes.blit s.phase 0 b 0 (Bytes.length s.phase);
      s.phase <- b
    end;
    s.heap_pos <- grow_array s.heap_pos (v + 1) (-1);
    for u = old + 1 to v do
      heap_insert s u
    done
  end;
  v

let new_var s = ensure_var s (s.nvars + 1)
let num_vars s = s.nvars
let num_clauses s = List.length s.clauses
let last_conflicts s = s.last_conflicts

let to_internal l =
  assert (l <> 0);
  if l > 0 then 2 * l else (2 * -l) + 1

let var_of l = l lsr 1
let neg l = l lxor 1

(* Value of an internal literal: 1 true, 0 false, -1 unassigned. *)
let lit_value s l =
  let a = s.assign.(var_of l) in
  if a < 0 then -1 else a lxor (l land 1)

let push_trail s l =
  if s.trail_size >= Array.length s.trail then begin
    let b = Array.make (2 * Array.length s.trail) 0 in
    Array.blit s.trail 0 b 0 s.trail_size;
    s.trail <- b
  end;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let decision_level s = List.length s.trail_lim

let enqueue s l reason =
  s.assign.(var_of l) <- 1 lxor (l land 1);
  s.level.(var_of l) <- decision_level s;
  s.reason.(var_of l) <- reason;
  push_trail s l

let watch s l c = s.watches.(l) <- c :: s.watches.(l)

let attach_clause s c =
  watch s (neg c.lits.(0)) c;
  watch s (neg c.lits.(1)) c

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  (* Rescaling preserves the heap order; a bump only moves [v] up. *)
  if s.heap_pos.(v) >= 0 then sift_up s s.heap_pos.(v)

(* Propagate all enqueued assignments; return the conflicting clause if a
   conflict arises. *)
let propagate s =
  let conflict = ref None in
  while !conflict = None && s.qhead < s.trail_size do
    let l = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    (* l became true; visit clauses watching (neg l). *)
    let cs = s.watches.(l) in
    s.watches.(l) <- [];
    let rec process = function
      | [] -> ()
      | c :: rest -> (
        (* Ensure the false literal is lits.(1). *)
        if c.lits.(0) = neg l then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- neg l
        end;
        if lit_value s c.lits.(0) = 1 then begin
          (* Clause already satisfied; keep watching. *)
          s.watches.(l) <- c :: s.watches.(l);
          process rest
        end
        else begin
          (* Search a new watch. *)
          let found = ref false in
          let i = ref 2 in
          while (not !found) && !i < Array.length c.lits do
            if lit_value s c.lits.(!i) <> 0 then begin
              let tmp = c.lits.(1) in
              c.lits.(1) <- c.lits.(!i);
              c.lits.(!i) <- tmp;
              watch s (neg c.lits.(1)) c;
              found := true
            end;
            incr i
          done;
          if !found then process rest
          else begin
            (* Unit or conflicting. *)
            s.watches.(l) <- c :: s.watches.(l);
            if lit_value s c.lits.(0) = 0 then begin
              conflict := Some c;
              (* Restore remaining watches untouched. *)
              List.iter (fun c' -> s.watches.(l) <- c' :: s.watches.(l)) rest
            end
            else begin
              enqueue s c.lits.(0) (Some c);
              process rest
            end
          end
        end)
    in
    process cs
  done;
  !conflict

let add_clause s lits =
  if s.ok then begin
    List.iter (fun l -> ignore (ensure_var s (abs l))) lits;
    let lits = List.sort_uniq compare lits in
    let tautology = List.exists (fun l -> List.mem (-l) lits) lits in
    if not tautology then begin
      (* Remove literals already false at level 0; stop if satisfied. *)
      let lits =
        List.filter
          (fun l ->
            not (s.level.(abs l) = 0 && lit_value s (to_internal l) = 0))
          lits
      in
      let satisfied =
        List.exists
          (fun l -> s.level.(abs l) = 0 && lit_value s (to_internal l) = 1)
          lits
      in
      if not satisfied then
        match lits with
        | [] -> s.ok <- false
        | [ l ] ->
          let il = to_internal l in
          (match lit_value s il with
           | 1 -> ()
           | 0 -> s.ok <- false
           | _ ->
             enqueue s il None;
             if propagate s <> None then s.ok <- false)
        | _ ->
          let c =
            { lits = Array.of_list (List.map to_internal lits);
              learnt = false; act = 0.0 }
          in
          s.clauses <- c :: s.clauses;
          attach_clause s c
    end
  end

let backtrack s target =
  if decision_level s > target then begin
    (* trail_lim head is the trail size recorded at the most recent
       decision; popping [drop] levels leaves the size recorded at the
       oldest popped one. *)
    let drop = decision_level s - target in
    let rec drop_lims lims k last =
      match (lims, k) with
      | lims, 0 -> (lims, last)
      | x :: rest, k -> drop_lims rest (k - 1) x
      | [], _ -> ([], last)
    in
    let lims, boundary = drop_lims s.trail_lim drop s.trail_size in
    for i = s.trail_size - 1 downto boundary do
      let v = var_of s.trail.(i) in
      Bytes.unsafe_set s.phase v (Char.unsafe_chr s.assign.(v));
      s.assign.(v) <- -1;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    s.trail_size <- boundary;
    s.qhead <- boundary;
    s.trail_lim <- lims
  end

(* First-UIP conflict analysis. Returns (learnt clause lits, backtrack
   level). learnt.(0) is the asserting literal. *)
let analyze s confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref 0 in
  let btlevel = ref 0 in
  let index = ref (s.trail_size - 1) in
  let reason_lits c skip =
    Array.to_list c.lits |> List.filter (fun l -> l <> skip)
  in
  let cur = ref (reason_lits confl (-1)) in
  let continue = ref true in
  while !continue do
    List.iter
      (fun q ->
        let v = var_of q in
        if (not s.seen.(v)) && s.level.(v) > 0 then begin
          s.seen.(v) <- true;
          bump_var s v;
          if s.level.(v) >= decision_level s then incr counter
          else begin
            learnt := q :: !learnt;
            if s.level.(v) > !btlevel then btlevel := s.level.(v)
          end
        end)
      !cur;
    (* Pick the next trail literal marked seen. *)
    let rec find i = if s.seen.(var_of s.trail.(i)) then i else find (i - 1) in
    index := find !index;
    p := s.trail.(!index);
    s.seen.(var_of !p) <- false;
    decr counter;
    index := !index - 1;
    if !counter = 0 then continue := false
    else
      cur :=
        (match s.reason.(var_of !p) with
         | Some c -> reason_lits c !p
         | None -> [])
  done;
  let lits = neg !p :: !learnt in
  List.iter (fun q -> s.seen.(var_of q) <- false) !learnt;
  (lits, !btlevel)

(* Highest-activity unassigned variable, or 0 when all are assigned.
   Variables popped while assigned are re-inserted on backtrack (they sit
   on the trail), so the heap is a superset of the unassigned set. *)
let rec pick_branch s =
  if s.heap_size = 0 then 0
  else begin
    let v = heap_pop s in
    if s.assign.(v) < 0 then v else pick_branch s
  end

type result = Sat | Unsat

let record_learnt s lits =
  match lits with
  | [] -> s.ok <- false
  | [ l ] -> enqueue s l None
  | l0 :: _ ->
    (* Watch the asserting literal and a literal from the backtrack
       level (the second-highest level literal must be at position 1). *)
    let arr = Array.of_list lits in
    (* Move a max-level literal (other than position 0) to slot 1. *)
    let besti = ref 1 in
    for i = 2 to Array.length arr - 1 do
      if s.level.(var_of arr.(i)) > s.level.(var_of arr.(!besti)) then besti := i
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!besti);
    arr.(!besti) <- tmp;
    let c = { lits = arr; learnt = true; act = 0.0 } in
    s.learnts <- c :: s.learnts;
    attach_clause s c;
    enqueue s l0 (Some c)

(* [solve_internal] returns [None] when the conflict limit was exhausted
   before a verdict; the solver is left at decision level 0 and stays
   usable. [conflict_limit <= 0] means no limit. *)
let solve_internal ?(assumptions = []) ~conflict_limit s =
  s.last_conflicts <- 0;
  if not s.ok then Some Unsat
  else begin
    let result = ref None in
    let out_of_budget = ref false in
    backtrack s 0;
    (* Plant assumptions as decisions; a conflict inside them is Unsat. *)
    let assumption_level = ref 0 in
    (try
       List.iter
         (fun l ->
           ignore (ensure_var s (abs l));
           let il = to_internal l in
           match lit_value s il with
           | 1 -> ()
           | 0 -> raise Exit
           | _ ->
             s.trail_lim <- s.trail_size :: s.trail_lim;
             enqueue s il None;
             if propagate s <> None then raise Exit)
         assumptions;
       assumption_level := decision_level s
     with Exit -> result := Some Unsat);
    let restart_budget = ref 100 in
    while !result = None && not !out_of_budget do
      match propagate s with
      | Some confl ->
        s.conflicts <- s.conflicts + 1;
        s.last_conflicts <- s.last_conflicts + 1;
        s.var_inc <- s.var_inc *. 1.052;
        if decision_level s <= !assumption_level then result := Some Unsat
        else if conflict_limit > 0 && s.last_conflicts >= conflict_limit then
          out_of_budget := true
        else begin
          let lits, btlevel = analyze s confl in
          let btlevel = max btlevel !assumption_level in
          backtrack s btlevel;
          record_learnt s lits;
          decr restart_budget;
          if !restart_budget <= 0 then begin
            restart_budget := 100 + (s.conflicts / 10);
            s.restarts <- s.restarts + 1;
            backtrack s !assumption_level
          end
        end
      | None ->
        let v = pick_branch s in
        if v = 0 then result := Some Sat
        else begin
          s.decisions <- s.decisions + 1;
          s.trail_lim <- s.trail_size :: s.trail_lim;
          (* Saved phase (false for never-assigned variables). *)
          let pos = Bytes.unsafe_get s.phase v = '\001' in
          enqueue s ((2 * v) + if pos then 0 else 1) None
        end
    done;
    (match !result with
     | Some Sat -> () (* keep trail so [value] can read the model *)
     | Some Unsat | None -> backtrack s 0);
    !result
  end

let solve ?assumptions s =
  match solve_internal ?assumptions ~conflict_limit:0 s with
  | Some r -> r
  | None -> assert false

(* The guard hook makes every bounded query governable: an injected
   exhaustion returns [None] without touching the solver state (callers
   already treat [None] as "no verdict", which is always sound), and the
   budget's conflict ceiling caps the caller's own limit. *)
let solve_limited ?(guard = Guard.none) ?assumptions ~conflict_limit s =
  if Guard.tick_sat guard ~site:"sat.solve_limited" then None
  else
    solve_internal ?assumptions
      ~conflict_limit:(Guard.sat_limit guard ~requested:conflict_limit)
      s

let value s v =
  assert (v > 0 && v <= s.nvars);
  s.assign.(v) = 1

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
}

let stats (s : t) =
  {
    conflicts = s.conflicts;
    decisions = s.decisions;
    propagations = s.propagations;
    restarts = s.restarts;
  }
