(* CDCL solver. Internal literal encoding: variable v (1-based) yields
   literals 2v (positive) and 2v+1 (negative); [neg l = l lxor 1].
   Assignment values: 0 = false, 1 = true, -1 = unassigned (per variable).

   Clauses live in a flat int-array arena. A clause at [cref] is
   [header] words followed by its literals:

     arena.(cref)     = size (number of literals)
     arena.(cref + 1) = flags: bit 0 = learnt, bits 1.. = LBD
     arena.(cref + 2) = activity (use count in conflict analysis)

   Watch lists are paired (cref, blocker) int arrays per literal: the
   blocker is some other literal of the clause, checked before touching
   the clause itself, so most satisfied-clause visits cost one array
   read. Branching is VSIDS over an indexed binary max-heap with phase
   saving. Learnt clauses get a glue level (LBD: distinct decision
   levels at learning time) and are minimized by self-subsuming
   resolution against reason clauses before being stored.

   The database is reduced periodically — at conflict counts fixed per
   solver lifetime, so behaviour never depends on wall clock or [-j]:
   glue clauses (LBD <= 2) are kept unconditionally, the rest are
   sorted by LBD then activity and the worst half is dropped, then the
   arena is compacted and the watch lists rebuilt. Retained learnts are
   optionally vivified (re-propagated literal by literal under a
   propagation budget) while the solver sits at level 0. *)

let header = 3
let no_reason = -1

type t = {
  mutable nvars : int;
  mutable arena : int array;
  mutable arena_size : int; (* words in use *)
  mutable arena_peak : int;
  mutable clauses_vec : int array; (* crefs of problem clauses *)
  mutable n_clauses : int;
  mutable learnts_vec : int array; (* crefs of learnt clauses *)
  mutable n_learnts : int;
  mutable watch : int array array; (* per literal: (cref, blocker) pairs *)
  mutable wlen : int array; (* ints in use per watch list *)
  mutable assign : int array; (* per variable *)
  mutable level : int array;
  mutable reason : int array; (* cref, or [no_reason] *)
  mutable activity : float array;
  mutable var_inc : float;
  mutable trail : int array; (* internal literals, in assignment order *)
  mutable trail_size : int;
  mutable trail_lim : int list; (* trail sizes at decision points *)
  mutable qhead : int;
  mutable ok : bool;
  mutable conflicts : int;
  mutable last_conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable reductions : int;
  mutable learnts_deleted : int;
  mutable minimized_lits : int;
  mutable vivified_lits : int;
  mutable next_reduce : int; (* cumulative conflict count of next reduction *)
  mutable reduce_interval : int;
  vivify : bool;
  mutable seen : bool array;
  mutable phase : Bytes.t; (* saved polarity per variable: 0 false, 1 true *)
  mutable level_stamp : int array; (* per decision level, for LBD *)
  mutable stamp : int;
  mutable heap : int array; (* binary max-heap of variables by activity *)
  mutable heap_pos : int array; (* var -> index in heap, -1 if absent *)
  mutable heap_size : int;
}

let default_reduce_base = 300
let reduce_interval_growth = 300
let restart_base = 100
let vivify_max_clauses = 32
let vivify_max_size = 40
let vivify_prop_budget = 8_000

let create ?(vivify = true) ?(reduce_base = default_reduce_base) () =
  {
    nvars = 0;
    arena = Array.make 1024 0;
    arena_size = 0;
    arena_peak = 0;
    clauses_vec = Array.make 16 0;
    n_clauses = 0;
    learnts_vec = Array.make 16 0;
    n_learnts = 0;
    watch = Array.make 4 [||];
    wlen = Array.make 4 0;
    assign = Array.make 2 (-1);
    level = Array.make 2 0;
    reason = Array.make 2 no_reason;
    activity = Array.make 2 0.0;
    var_inc = 1.0;
    trail = Array.make 16 0;
    trail_size = 0;
    trail_lim = [];
    qhead = 0;
    ok = true;
    conflicts = 0;
    last_conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    reductions = 0;
    learnts_deleted = 0;
    minimized_lits = 0;
    vivified_lits = 0;
    next_reduce = max 1 reduce_base;
    reduce_interval = max 1 reduce_base;
    vivify;
    seen = Array.make 2 false;
    phase = Bytes.make 2 '\000';
    level_stamp = Array.make 2 0;
    stamp = 0;
    heap = Array.make 16 0;
    heap_pos = Array.make 2 (-1);
    heap_size = 0;
  }

let grow_array a n default =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) default in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* --- activity heap ---------------------------------------------------- *)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(b) <- i;
  s.heap_pos.(a) <- j

let rec sift_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if s.activity.(s.heap.(i)) > s.activity.(s.heap.(p)) then begin
      heap_swap s i p;
      sift_up s p
    end
  end

let rec sift_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < s.heap_size && s.activity.(s.heap.(l)) > s.activity.(s.heap.(!m))
  then m := l;
  if r < s.heap_size && s.activity.(s.heap.(r)) > s.activity.(s.heap.(!m))
  then m := r;
  if !m <> i then begin
    heap_swap s i !m;
    sift_down s !m
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    if s.heap_size >= Array.length s.heap then begin
      let b = Array.make (2 * Array.length s.heap) 0 in
      Array.blit s.heap 0 b 0 s.heap_size;
      s.heap <- b
    end;
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    sift_up s (s.heap_size - 1)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  if s.heap_size > 0 then begin
    let last = s.heap.(s.heap_size) in
    s.heap.(0) <- last;
    s.heap_pos.(last) <- 0;
    sift_down s 0
  end;
  s.heap_pos.(v) <- -1;
  v

(* ---------------------------------------------------------------------- *)

let ensure_var s v =
  assert (v > 0);
  if v > s.nvars then begin
    let old = s.nvars in
    s.nvars <- v;
    s.assign <- grow_array s.assign (v + 1) (-1);
    s.level <- grow_array s.level (v + 1) 0;
    s.reason <- grow_array s.reason (v + 1) no_reason;
    s.activity <- grow_array s.activity (v + 1) 0.0;
    s.seen <- grow_array s.seen (v + 1) false;
    s.level_stamp <- grow_array s.level_stamp (v + 2) 0;
    s.watch <- grow_array s.watch ((2 * v) + 2) [||];
    s.wlen <- grow_array s.wlen ((2 * v) + 2) 0;
    if Bytes.length s.phase < v + 1 then begin
      let b = Bytes.make (max (v + 1) (2 * Bytes.length s.phase)) '\000' in
      Bytes.blit s.phase 0 b 0 (Bytes.length s.phase);
      s.phase <- b
    end;
    s.heap_pos <- grow_array s.heap_pos (v + 1) (-1);
    for u = old + 1 to v do
      heap_insert s u
    done
  end;
  v

let new_var s = ensure_var s (s.nvars + 1)
let num_vars s = s.nvars
let num_clauses s = s.n_clauses
let last_conflicts s = s.last_conflicts

let to_internal l =
  assert (l <> 0);
  if l > 0 then 2 * l else (2 * -l) + 1

let var_of l = l lsr 1
let neg l = l lxor 1

(* Value of an internal literal: 1 true, 0 false, -1 unassigned. *)
let lit_value s l =
  let a = s.assign.(var_of l) in
  if a < 0 then -1 else a lxor (l land 1)

let push_trail s l =
  if s.trail_size >= Array.length s.trail then begin
    let b = Array.make (2 * Array.length s.trail) 0 in
    Array.blit s.trail 0 b 0 s.trail_size;
    s.trail <- b
  end;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let decision_level s = List.length s.trail_lim

let enqueue s l reason =
  s.assign.(var_of l) <- 1 lxor (l land 1);
  s.level.(var_of l) <- decision_level s;
  s.reason.(var_of l) <- reason;
  push_trail s l

(* --- clause arena ------------------------------------------------------ *)

let clause_size s cref = s.arena.(cref)
let clause_lbd s cref = s.arena.(cref + 1) lsr 1
let clause_act s cref = s.arena.(cref + 2)
let clause_lit s cref i = s.arena.(cref + header + i)

let alloc_clause s lits learnt lbd =
  let size = Array.length lits in
  let need = s.arena_size + header + size in
  if need > Array.length s.arena then begin
    let b = Array.make (max need (2 * Array.length s.arena)) 0 in
    Array.blit s.arena 0 b 0 s.arena_size;
    s.arena <- b
  end;
  let cref = s.arena_size in
  s.arena.(cref) <- size;
  s.arena.(cref + 1) <- (lbd lsl 1) lor (if learnt then 1 else 0);
  s.arena.(cref + 2) <- 0;
  Array.blit lits 0 s.arena (cref + header) size;
  s.arena_size <- need;
  if need > s.arena_peak then s.arena_peak <- need;
  cref

let push_vec vec n x =
  let vec = if n >= Array.length vec then grow_array vec (n + 1) 0 else vec in
  vec.(n) <- x;
  vec

let watch_push s l cref blocker =
  let a = s.watch.(l) in
  let n = s.wlen.(l) in
  let a =
    if n + 2 > Array.length a then begin
      let b = Array.make (max 8 (2 * Array.length a)) 0 in
      Array.blit a 0 b 0 n;
      s.watch.(l) <- b;
      b
    end
    else a
  in
  a.(n) <- cref;
  a.(n + 1) <- blocker;
  s.wlen.(l) <- n + 2

let attach_clause s cref =
  let l0 = clause_lit s cref 0 and l1 = clause_lit s cref 1 in
  watch_push s (neg l0) cref l1;
  watch_push s (neg l1) cref l0

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  (* Rescaling preserves the heap order; a bump only moves [v] up. *)
  if s.heap_pos.(v) >= 0 then sift_up s s.heap_pos.(v)

(* Propagate all enqueued assignments; return the conflicting clause's
   cref, or [no_reason]. Watch lists are compacted in place: a visit
   first checks the blocker literal, then the other watched literal,
   and only then scans the clause body for a replacement watch. *)
let propagate s =
  let conflict = ref no_reason in
  while !conflict = no_reason && s.qhead < s.trail_size do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    (* p became true; visit clauses watching (neg p). *)
    let ws = s.watch.(p) in
    let n = s.wlen.(p) in
    let i = ref 0 and j = ref 0 in
    let arena = s.arena in
    while !i < n do
      let cref = ws.(!i) and blocker = ws.(!i + 1) in
      if lit_value s blocker = 1 then begin
        ws.(!j) <- cref;
        ws.(!j + 1) <- blocker;
        j := !j + 2;
        i := !i + 2
      end
      else begin
        let base = cref + header in
        let size = arena.(cref) in
        (* Ensure the false literal sits at slot 1. *)
        if arena.(base) = neg p then begin
          arena.(base) <- arena.(base + 1);
          arena.(base + 1) <- neg p
        end;
        let first = arena.(base) in
        if first <> blocker && lit_value s first = 1 then begin
          ws.(!j) <- cref;
          ws.(!j + 1) <- first;
          j := !j + 2;
          i := !i + 2
        end
        else begin
          (* Search a new watch among the tail literals. *)
          let k = ref 2 in
          while !k < size && lit_value s arena.(base + !k) = 0 do
            incr k
          done;
          if !k < size then begin
            let l = arena.(base + !k) in
            arena.(base + !k) <- arena.(base + 1);
            arena.(base + 1) <- l;
            watch_push s (neg l) cref first;
            i := !i + 2
          end
          else begin
            (* Unit or conflicting; keep the watch either way. *)
            ws.(!j) <- cref;
            ws.(!j + 1) <- first;
            j := !j + 2;
            i := !i + 2;
            if lit_value s first = 0 then begin
              conflict := cref;
              (* Copy the remaining watches untouched. *)
              while !i < n do
                ws.(!j) <- ws.(!i);
                ws.(!j + 1) <- ws.(!i + 1);
                i := !i + 2;
                j := !j + 2
              done
            end
            else enqueue s first cref
          end
        end
      end
    done;
    s.wlen.(p) <- !j
  done;
  !conflict

let backtrack s target =
  if decision_level s > target then begin
    (* trail_lim head is the trail size recorded at the most recent
       decision; popping [drop] levels leaves the size recorded at the
       oldest popped one. *)
    let drop = decision_level s - target in
    let rec drop_lims lims k last =
      match (lims, k) with
      | lims, 0 -> (lims, last)
      | x :: rest, k -> drop_lims rest (k - 1) x
      | [], _ -> ([], last)
    in
    let lims, boundary = drop_lims s.trail_lim drop s.trail_size in
    for i = s.trail_size - 1 downto boundary do
      let v = var_of s.trail.(i) in
      Bytes.unsafe_set s.phase v (Char.unsafe_chr s.assign.(v));
      s.assign.(v) <- -1;
      s.reason.(v) <- no_reason;
      heap_insert s v
    done;
    s.trail_size <- boundary;
    s.qhead <- boundary;
    s.trail_lim <- lims
  end

let add_clause s lits =
  if s.ok then begin
    (* Normalize at level 0 so root-satisfied/falsified literals can be
       resolved away. Callers only read models immediately after [Sat],
       so dropping a leftover model trail here is safe. *)
    backtrack s 0;
    List.iter (fun l -> ignore (ensure_var s (abs l))) lits;
    let lits = List.sort_uniq compare lits in
    let tautology = List.exists (fun l -> List.mem (-l) lits) lits in
    if not tautology then begin
      (* Remove literals already false at level 0; stop if satisfied. *)
      let lits =
        List.filter (fun l -> lit_value s (to_internal l) <> 0) lits
      in
      let satisfied =
        List.exists (fun l -> lit_value s (to_internal l) = 1) lits
      in
      if not satisfied then
        match lits with
        | [] -> s.ok <- false
        | [ l ] ->
          let il = to_internal l in
          enqueue s il no_reason;
          if propagate s <> no_reason then s.ok <- false
        | _ ->
          let arr = Array.of_list (List.map to_internal lits) in
          let cref = alloc_clause s arr false 0 in
          s.clauses_vec <- push_vec s.clauses_vec s.n_clauses cref;
          s.n_clauses <- s.n_clauses + 1;
          attach_clause s cref
    end
  end

(* --- conflict analysis ------------------------------------------------- *)

(* LBD: number of distinct decision levels among [lits]. *)
let compute_lbd s lits =
  s.stamp <- s.stamp + 1;
  let n = ref 0 in
  List.iter
    (fun l ->
      let lv = s.level.(var_of l) in
      if s.level_stamp.(lv) <> s.stamp then begin
        s.level_stamp.(lv) <- s.stamp;
        incr n
      end)
    lits;
  !n

let abstract_level s v = 1 lsl (s.level.(v) land 31)

(* MiniSat-style redundancy test: [l] is redundant in the learnt clause
   if every path from its reason to a decision stays inside variables
   already seen (i.e. in the clause or resolved over). [toclear]
   collects every variable whose [seen] bit this walk sets, so the
   caller can reset them; on failure the bits set since entry are
   rolled back. Iterative to keep the stack shallow. *)
let lit_redundant s toclear l0 abstract =
  let stack = ref [ l0 ] in
  let added = ref [] in
  let ok = ref true in
  while !ok && !stack <> [] do
    let l =
      match !stack with
      | x :: rest ->
        stack := rest;
        x
      | [] -> assert false
    in
    let cref = s.reason.(var_of l) in
    let size = clause_size s cref in
    let k = ref 1 in
    while !ok && !k < size do
      let q = clause_lit s cref !k in
      let v = var_of q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        if s.reason.(v) <> no_reason && abstract_level s v land abstract <> 0
        then begin
          s.seen.(v) <- true;
          stack := q :: !stack;
          added := v :: !added
        end
        else ok := false
      end;
      incr k
    done
  done;
  if !ok then toclear := List.rev_append !added !toclear
  else List.iter (fun v -> s.seen.(v) <- false) !added;
  !ok

(* First-UIP conflict analysis with recursive learnt-clause
   minimization. Returns (learnt lits, backtrack level, lbd); the
   asserting literal is first. *)
let analyze s confl =
  let learnt = ref [] in
  let toclear = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (s.trail_size - 1) in
  let cref = ref confl in
  let continue = ref true in
  while !continue do
    s.arena.(!cref + 2) <- s.arena.(!cref + 2) + 1;
    let size = clause_size s !cref in
    (* Skip slot 0 when resolving a reason clause: propagation leaves
       the propagated literal there. *)
    let start = if !p < 0 then 0 else 1 in
    for k = start to size - 1 do
      let q = clause_lit s !cref k in
      let v = var_of q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        toclear := v :: !toclear;
        bump_var s v;
        if s.level.(v) >= decision_level s then incr counter
        else learnt := q :: !learnt
      end
    done;
    (* Pick the next trail literal marked seen. *)
    let rec find i = if s.seen.(var_of s.trail.(i)) then i else find (i - 1) in
    index := find !index;
    p := s.trail.(!index);
    s.seen.(var_of !p) <- false;
    decr counter;
    index := !index - 1;
    if !counter = 0 then continue := false else cref := s.reason.(var_of !p)
  done;
  (* Self-subsuming resolution: drop any literal whose reason graph is
     confined to levels already present in the clause. *)
  let abstract =
    List.fold_left (fun a q -> a lor abstract_level s (var_of q)) 0 !learnt
  in
  let kept =
    List.filter
      (fun q ->
        s.reason.(var_of q) = no_reason
        || not (lit_redundant s toclear q abstract))
      !learnt
  in
  s.minimized_lits <-
    s.minimized_lits + (List.length !learnt - List.length kept);
  List.iter (fun v -> s.seen.(v) <- false) !toclear;
  let btlevel =
    List.fold_left (fun b q -> max b s.level.(var_of q)) 0 kept
  in
  let lits = neg !p :: kept in
  (lits, btlevel, compute_lbd s lits)

(* Highest-activity unassigned variable, or 0 when all are assigned.
   Variables popped while assigned are re-inserted on backtrack (they sit
   on the trail), so the heap is a superset of the unassigned set. *)
let rec pick_branch s =
  if s.heap_size = 0 then 0
  else begin
    let v = heap_pop s in
    if s.assign.(v) < 0 then v else pick_branch s
  end

type result = Sat | Unsat

let record_learnt s lits lbd =
  match lits with
  | [] -> s.ok <- false
  | [ _ ] -> assert false (* units are handled by the caller at level 0 *)
  | l0 :: _ ->
    (* Watch the asserting literal and a literal from the backtrack
       level (the second-highest level literal must be at position 1). *)
    let arr = Array.of_list lits in
    let besti = ref 1 in
    for i = 2 to Array.length arr - 1 do
      if s.level.(var_of arr.(i)) > s.level.(var_of arr.(!besti)) then
        besti := i
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!besti);
    arr.(!besti) <- tmp;
    let cref = alloc_clause s arr true lbd in
    s.learnts_vec <- push_vec s.learnts_vec s.n_learnts cref;
    s.n_learnts <- s.n_learnts + 1;
    attach_clause s cref;
    enqueue s l0 cref

(* --- clause database reduction and vivification ------------------------ *)

(* Move every live clause to the front of a fresh arena of the same
   capacity, updating the clause vectors. Reasons must have been
   cleared (the solver is at level 0, where no reason is ever
   dereferenced) and watch lists are rebuilt by the caller. *)
let compact_arena s =
  let b = Array.make (Array.length s.arena) 0 in
  let pos = ref 0 in
  let move cref =
    let len = header + s.arena.(cref) in
    Array.blit s.arena cref b !pos len;
    let nc = !pos in
    pos := !pos + len;
    nc
  in
  for i = 0 to s.n_clauses - 1 do
    s.clauses_vec.(i) <- move s.clauses_vec.(i)
  done;
  for i = 0 to s.n_learnts - 1 do
    s.learnts_vec.(i) <- move s.learnts_vec.(i)
  done;
  s.arena <- b;
  s.arena_size <- !pos

let clause_satisfied_at_root s cref =
  let size = clause_size s cref in
  let sat = ref false in
  for i = 0 to size - 1 do
    if lit_value s (clause_lit s cref i) = 1 then sat := true
  done;
  !sat

(* Re-derive one retained learnt clause by propagating the negations of
   its literals in order while the clause itself is detached: literals
   false under the partial assignment are dropped, and a propagated
   (or conflicting) prefix truncates the clause. Runs at level 0; the
   [frozen] switch stops making further decisions once the caller's
   propagation budget is spent, copying the tail verbatim (always
   sound). Returns the clause's fate. *)
type vivify_fate = Viv_kept | Viv_removed | Viv_contradiction

let vivify_clause s cref frozen =
  let base = cref + header in
  let size = s.arena.(cref) in
  let out = Array.make size 0 in
  let n_out = ref 0 in
  let closed = ref false in
  let i = ref 0 in
  while (not !closed) && !i < size do
    let l = s.arena.(base + !i) in
    (if frozen () && decision_level s = 0 then begin
       (* Budget spent before any decision: keep the tail as is. *)
       for k = !i to size - 1 do
         out.(!n_out) <- s.arena.(base + k);
         incr n_out
       done;
       closed := true
     end
     else
       match lit_value s l with
       | 1 ->
         (* Prefix implies l: the clause is subsumed by prefix @ [l]. *)
         out.(!n_out) <- l;
         incr n_out;
         closed := true
       | 0 -> () (* prefix implies (not l): drop l *)
       | _ ->
         out.(!n_out) <- l;
         incr n_out;
         s.trail_lim <- s.trail_size :: s.trail_lim;
         enqueue s (neg l) no_reason;
         if propagate s <> no_reason then closed := true);
    incr i
  done;
  backtrack s 0;
  let n = !n_out in
  if n = size then begin
    attach_clause s cref;
    Viv_kept
  end
  else begin
    s.vivified_lits <- s.vivified_lits + (size - n);
    if n = 0 then begin
      s.ok <- false;
      Viv_contradiction
    end
    else if n = 1 then begin
      match lit_value s out.(0) with
      | 1 -> Viv_removed (* already a root fact *)
      | 0 ->
        s.ok <- false;
        Viv_contradiction
      | _ ->
        enqueue s out.(0) no_reason;
        if propagate s <> no_reason then begin
          s.ok <- false;
          Viv_contradiction
        end
        else Viv_removed
    end
    else begin
      s.arena.(cref) <- n;
      Array.blit out 0 s.arena base n;
      let lbd = min (clause_lbd s cref) n in
      s.arena.(cref + 1) <- (lbd lsl 1) lor (s.arena.(cref + 1) land 1);
      attach_clause s cref;
      Viv_kept
    end
  end

(* Reduce the learnt database. Must be called at decision level 0.
   Keeps glue clauses (LBD <= 2), drops root-satisfied learnts and the
   worst half of the rest by (LBD, activity), compacts the arena,
   rebuilds every watch list, and vivifies a bounded prefix of the
   retained learnts. May set [ok] to false if vivification refutes the
   instance. *)
let reduce_db s =
  s.reductions <- s.reductions + 1;
  (* All trail entries are level 0 here and level-0 reasons are never
     dereferenced, so clearing them unlocks every clause. *)
  for i = 0 to s.trail_size - 1 do
    s.reason.(var_of s.trail.(i)) <- no_reason
  done;
  (* Partition learnts: root-satisfied -> drop; glue -> keep; rest are
     candidates ranked by LBD then activity (then cref, for a total
     deterministic order). *)
  let glue = ref [] and cands = ref [] in
  let dropped = ref 0 in
  for i = 0 to s.n_learnts - 1 do
    let cref = s.learnts_vec.(i) in
    if clause_satisfied_at_root s cref then incr dropped
    else if clause_lbd s cref <= 2 then glue := cref :: !glue
    else cands := cref :: !cands
  done;
  let cands = Array.of_list (List.rev !cands) in
  Array.sort
    (fun a b ->
      let c = compare (clause_lbd s a) (clause_lbd s b) in
      if c <> 0 then c
      else
        let c = compare (clause_act s b) (clause_act s a) in
        if c <> 0 then c else compare a b)
    cands;
  let n_cands = Array.length cands in
  let keep_cands = n_cands - (n_cands / 2) in
  dropped := !dropped + (n_cands - keep_cands);
  s.learnts_deleted <- s.learnts_deleted + !dropped;
  let kept = List.rev !glue @ Array.to_list (Array.sub cands 0 keep_cands) in
  s.n_learnts <- 0;
  List.iter
    (fun cref ->
      s.learnts_vec <- push_vec s.learnts_vec s.n_learnts cref;
      s.n_learnts <- s.n_learnts + 1)
    kept;
  compact_arena s;
  (* Rebuild watches; vivification candidates are attached one by one
     after their own pass so propagation never sees a clause that is
     being rewritten. *)
  Array.fill s.wlen 0 (Array.length s.wlen) 0;
  for i = 0 to s.n_clauses - 1 do
    attach_clause s s.clauses_vec.(i)
  done;
  let viv = Array.make s.n_learnts false in
  if s.vivify then begin
    let picked = ref 0 in
    for i = 0 to s.n_learnts - 1 do
      if
        !picked < vivify_max_clauses
        && clause_size s s.learnts_vec.(i) <= vivify_max_size
      then begin
        viv.(i) <- true;
        incr picked
      end
    done
  end;
  for i = 0 to s.n_learnts - 1 do
    if not viv.(i) then attach_clause s s.learnts_vec.(i)
  done;
  if s.vivify then begin
    let props0 = s.propagations in
    let frozen () = s.propagations - props0 > vivify_prop_budget in
    let n = s.n_learnts in
    let out = ref [] in
    (* Iterate in index order; removed clauses are pruned afterwards. *)
    for i = 0 to n - 1 do
      let cref = s.learnts_vec.(i) in
      if not viv.(i) then out := cref :: !out
      else if not s.ok then () (* an earlier candidate refuted the instance *)
      else begin
        match vivify_clause s cref frozen with
        | Viv_kept -> out := cref :: !out
        | Viv_removed -> s.learnts_deleted <- s.learnts_deleted + 1
        | Viv_contradiction -> ()
      end
    done;
    let kept = List.rev !out in
    s.n_learnts <- 0;
    List.iter
      (fun cref ->
        s.learnts_vec <- push_vec s.learnts_vec s.n_learnts cref;
        s.n_learnts <- s.n_learnts + 1)
      kept
  end

(* --- search ------------------------------------------------------------ *)

(* Luby sequence (1 1 2 1 1 2 4 ...), 0-indexed. *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

(* [solve_internal] returns [None] when the conflict limit was exhausted
   before a verdict; the solver is left at decision level 0 and stays
   usable. [conflict_limit <= 0] means no limit. *)
let solve_internal ?(assumptions = []) ~conflict_limit s =
  s.last_conflicts <- 0;
  if not s.ok then Some Unsat
  else begin
    let result = ref None in
    let out_of_budget = ref false in
    backtrack s 0;
    List.iter (fun l -> ignore (ensure_var s (abs l))) assumptions;
    let assumption_lits = List.map to_internal assumptions in
    (* Plant assumptions as decisions; a conflict inside them is Unsat.
       Re-planting after a database reduction must succeed the same way
       or the instance is Unsat under the assumptions. *)
    let assumption_level = ref 0 in
    let plant () =
      try
        List.iter
          (fun il ->
            match lit_value s il with
            | 1 -> ()
            | 0 -> raise Exit
            | _ ->
              s.trail_lim <- s.trail_size :: s.trail_lim;
              enqueue s il no_reason;
              if propagate s <> no_reason then raise Exit)
          assumption_lits;
        assumption_level := decision_level s;
        true
      with Exit -> false
    in
    if not (plant ()) then result := Some Unsat;
    let restart_idx = ref 0 in
    let restart_limit = ref (luby 0 * restart_base) in
    let since_restart = ref 0 in
    while !result = None && not !out_of_budget do
      let confl = propagate s in
      if confl <> no_reason then begin
        s.conflicts <- s.conflicts + 1;
        s.last_conflicts <- s.last_conflicts + 1;
        incr since_restart;
        s.var_inc <- s.var_inc *. 1.052;
        if decision_level s <= !assumption_level then begin
          if decision_level s = 0 then s.ok <- false;
          result := Some Unsat
        end
        else if conflict_limit > 0 && s.last_conflicts >= conflict_limit then
          out_of_budget := true
        else begin
          let lits, btlevel, lbd = analyze s confl in
          (match lits with
          | [] ->
            s.ok <- false;
            result := Some Unsat
          | [ l ] ->
            (* Unit learnt: a root fact. Commit it at level 0 so it
               survives every later backtrack, then re-plant. *)
            backtrack s 0;
            (match lit_value s l with
            | 1 -> ()
            | 0 ->
              s.ok <- false;
              result := Some Unsat
            | _ ->
              enqueue s l no_reason;
              if propagate s <> no_reason then begin
                s.ok <- false;
                result := Some Unsat
              end);
            if !result = None && not (plant ()) then result := Some Unsat
          | _ ->
            let btlevel = max btlevel !assumption_level in
            backtrack s btlevel;
            record_learnt s lits lbd);
          (* Periodic reduction, triggered purely by the cumulative
             conflict count so the schedule is deterministic and
             independent of wall clock or [-j]. *)
          if !result = None && s.conflicts >= s.next_reduce then begin
            s.reduce_interval <- s.reduce_interval + reduce_interval_growth;
            s.next_reduce <- s.conflicts + s.reduce_interval;
            backtrack s 0;
            reduce_db s;
            if not s.ok then result := Some Unsat
            else if propagate s <> no_reason then begin
              s.ok <- false;
              result := Some Unsat
            end
            else if not (plant ()) then result := Some Unsat
          end;
          if !result = None && !since_restart >= !restart_limit then begin
            incr restart_idx;
            restart_limit := luby !restart_idx * restart_base;
            since_restart := 0;
            s.restarts <- s.restarts + 1;
            backtrack s !assumption_level
          end
        end
      end
      else begin
        let v = pick_branch s in
        if v = 0 then result := Some Sat
        else begin
          s.decisions <- s.decisions + 1;
          s.trail_lim <- s.trail_size :: s.trail_lim;
          (* Saved phase (false for never-assigned variables). *)
          let pos = Bytes.unsafe_get s.phase v = '\001' in
          enqueue s ((2 * v) + if pos then 0 else 1) no_reason
        end
      end
    done;
    (match !result with
    | Some Sat -> () (* keep trail so [value] can read the model *)
    | Some Unsat | None -> backtrack s 0);
    !result
  end

let solve ?assumptions s =
  match solve_internal ?assumptions ~conflict_limit:0 s with
  | Some r -> r
  | None -> assert false

(* The guard hook makes every bounded query governable: an injected
   exhaustion returns [None] without touching the solver state (callers
   already treat [None] as "no verdict", which is always sound), the
   budget's conflict ceiling caps the caller's own limit, and the
   cumulative budget both tightens the cap to what remains and refuses
   outright once spent. Conflicts consumed are reported back so the
   aggregate spend is tracked across calls. *)
let solve_limited ?(guard = Guard.none) ?assumptions ~conflict_limit s =
  if Guard.tick_sat guard ~site:"sat.solve_limited" then None
  else if Guard.sat_exhausted guard then None
  else begin
    let r =
      solve_internal ?assumptions
        ~conflict_limit:(Guard.sat_limit guard ~requested:conflict_limit)
        s
    in
    Guard.sat_spend guard ~conflicts:s.last_conflicts;
    r
  end

let value s v =
  assert (v > 0 && v <= s.nvars);
  s.assign.(v) = 1

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  reductions : int;
  learnts_live : int;
  learnts_deleted : int;
  minimized_lits : int;
  vivified_lits : int;
  arena_words : int;
  arena_peak_words : int;
}

let stats (s : t) =
  {
    conflicts = s.conflicts;
    decisions = s.decisions;
    propagations = s.propagations;
    restarts = s.restarts;
    reductions = s.reductions;
    learnts_live = s.n_learnts;
    learnts_deleted = s.learnts_deleted;
    minimized_lits = s.minimized_lits;
    vivified_lits = s.vivified_lits;
    arena_words = s.arena_size;
    arena_peak_words = s.arena_peak;
  }
