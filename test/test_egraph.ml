(* E-graph core and portfolio tests: congruence under random
   merge/rebuild interleavings, saturation-equivalence by CEC,
   extraction optimality against brute-force enumeration on small
   graphs, cost-monotonicity of levels extraction, the floor-1 arm
   splitter, and the table1 differential portfolio run across -j. *)

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let random_aig ?(inputs = 5) ?(gates = 20) ?(outputs = 2) seed =
  let st = Random.State.make [| seed; inputs; gates |] in
  let g = Aig.create () in
  let ins =
    Array.init inputs (fun i ->
        Aig.add_input ~name:(Printf.sprintf "x%d" i) g)
  in
  let pool = ref (Array.to_list ins) in
  let pick () =
    let l = List.nth !pool (Random.State.int st (List.length !pool)) in
    if Random.State.bool st then Aig.bnot l else l
  in
  for _ = 1 to gates do
    pool := Aig.band g (pick ()) (pick ()) :: !pool
  done;
  for i = 0 to outputs - 1 do
    Aig.add_output g (Printf.sprintf "y%d" i) (pick ())
  done;
  g

(* ------------------------------------------------------------------ *)
(* Basics                                                              *)
(* ------------------------------------------------------------------ *)

let test_folds () =
  let t = Egraph.create () in
  let f = Egraph.false_id t and tr = Egraph.true_id t in
  let x = Egraph.add t (Egraph.Input 0) in
  let nx = Egraph.add t (Egraph.Not x) in
  Alcotest.(check int) "x and false is false" f
    (Egraph.add t (Egraph.And (x, f)));
  Alcotest.(check int) "x and true is x" x (Egraph.add t (Egraph.And (x, tr)));
  Alcotest.(check int) "x and x is x" x (Egraph.add t (Egraph.And (x, x)));
  Alcotest.(check int) "x and not x is false" f
    (Egraph.add t (Egraph.And (x, nx)));
  Alcotest.(check int) "not not x is x" x (Egraph.add t (Egraph.Not nx));
  Alcotest.(check int) "sorted children hash-cons commutes"
    (Egraph.add t (Egraph.And (x, nx)))
    (Egraph.add t (Egraph.And (nx, x)));
  Alcotest.(check bool) "invariants" true (Egraph.invariants_ok t)

let test_congruence_basic () =
  let t = Egraph.create () in
  let a = Egraph.add t (Egraph.Input 0) in
  let b = Egraph.add t (Egraph.Input 1) in
  let c = Egraph.add t (Egraph.Input 2) in
  let ac = Egraph.add t (Egraph.And (a, c)) in
  let bc = Egraph.add t (Egraph.And (b, c)) in
  Alcotest.(check bool) "distinct before union" true
    (Egraph.find t ac <> Egraph.find t bc);
  ignore (Egraph.union t a b);
  Egraph.rebuild t;
  Alcotest.(check int) "congruent parents merged" (Egraph.find t ac)
    (Egraph.find t bc);
  Alcotest.(check bool) "invariants" true (Egraph.invariants_ok t)

(* Merging a class with its own complement's conjunction partner must
   also propagate through the not-table: a = b forces ¬a = ¬b. *)
let test_not_congruence () =
  let t = Egraph.create () in
  let a = Egraph.add t (Egraph.Input 0) in
  let b = Egraph.add t (Egraph.Input 1) in
  let na = Egraph.add t (Egraph.Not a) in
  let nb = Egraph.add t (Egraph.Not b) in
  ignore (Egraph.union t a b);
  Egraph.rebuild t;
  Alcotest.(check int) "complements merged" (Egraph.find t na)
    (Egraph.find t nb);
  Alcotest.(check bool) "invariants" true (Egraph.invariants_ok t)

(* ------------------------------------------------------------------ *)
(* Congruence under random merge/rebuild interleavings                 *)
(* ------------------------------------------------------------------ *)

let gen_interleaving =
  QCheck.make
    ~print:(fun (seed, ops) ->
      Printf.sprintf "seed=%d ops=[%s]" seed
        (String.concat ";"
           (List.map
              (fun (i, j, r) -> Printf.sprintf "%d,%d,%b" i j r)
              ops)))
    QCheck.Gen.(
      pair (int_bound 100000)
        (list_size (int_range 1 30) (triple (int_bound 1000) (int_bound 1000) bool)))

let prop_congruence =
  qtest ~count:100 "congruence invariant survives merge/rebuild interleavings"
    gen_interleaving (fun (seed, ops) ->
      let t = Egraph.of_aig (random_aig ~gates:25 seed) in
      let pick k =
        let cs = Egraph.classes t in
        List.nth cs (k mod List.length cs)
      in
      List.iter
        (fun (i, j, rebuild_now) ->
          ignore (Egraph.union t (pick i) (pick j));
          if rebuild_now then Egraph.rebuild t)
        ops;
      Egraph.rebuild t;
      Egraph.invariants_ok t)

(* ------------------------------------------------------------------ *)
(* Saturation: equivalence and determinism                             *)
(* ------------------------------------------------------------------ *)

let prop_saturation_equivalent =
  qtest ~count:60 "every extracted term is CEC-equivalent to the input"
    QCheck.(int_bound 100000)
    (fun seed ->
      let g = random_aig ~gates:25 seed in
      let t = Egraph.of_aig g in
      ignore (Egraph.saturate ~max_iters:3 t);
      List.for_all
        (fun cost -> Aig.Cec.equivalent g (Egraph.extract t cost))
        [ Egraph.Cost.levels; Egraph.Cost.gates; Egraph.Cost.delay ])

let prop_cost_monotone =
  qtest ~count:60 "levels extraction never exceeds the input's depth"
    QCheck.(int_bound 100000)
    (fun seed ->
      let g = random_aig ~gates:30 seed in
      let out = Egraph.optimize ~cost:Egraph.Cost.levels g in
      Aig.depth out <= Aig.depth g)

(* ------------------------------------------------------------------ *)
(* Extraction optimality vs brute force                                *)
(* ------------------------------------------------------------------ *)

(* Brute force: enumerate every per-class choice of e-node (the
   cartesian product over classes), cost each acyclic selection
   bottom-up, and take the minimum at the root. Exponential, so only
   run on graphs small enough to enumerate. *)
let brute_force_best t (cost : Egraph.Cost.t) root =
  let classes = Egraph.classes t in
  let arity = List.map (fun c -> List.length (Egraph.nodes_of t c)) classes in
  let combos = List.fold_left (fun acc n -> acc * n) 1 arity in
  if combos > 20_000 then None
  else begin
    let best = ref infinity in
    let choice = Hashtbl.create 16 in
    let rec assignments = function
      | [] ->
        (* cost this selection; cycles cost infinity *)
        let memo = Hashtbl.create 16 in
        let rec eval c =
          let c = Egraph.find t c in
          match Hashtbl.find_opt memo c with
          | Some v -> v
          | None ->
            Hashtbl.replace memo c infinity (* cycle sentinel *)
            ;
            let v =
              match Hashtbl.find_opt choice c with
              | None -> infinity
              | Some node -> (
                match (node : Egraph.enode) with
                | Egraph.Const | Egraph.Input _ ->
                  cost.Egraph.Cost.node_cost Egraph.Cost.Leaf [||]
                | Egraph.Not a ->
                  let ca = eval a in
                  if ca = infinity then infinity
                  else cost.Egraph.Cost.node_cost Egraph.Cost.Neg [| ca |]
                | Egraph.And (a, b) ->
                  let ca = eval a and cb = eval b in
                  if ca = infinity || cb = infinity then infinity
                  else cost.Egraph.Cost.node_cost Egraph.Cost.Conj [| ca; cb |])
            in
            Hashtbl.replace memo c v;
            v
        in
        let v = eval root in
        if v < !best then best := v
      | c :: rest ->
        List.iter
          (fun node ->
            Hashtbl.replace choice c node;
            assignments rest)
          (Egraph.nodes_of t c)
    in
    assignments classes;
    Some !best
  end

let prop_extraction_optimal =
  qtest ~count:60 "fixpoint extraction matches brute force on small graphs"
    QCheck.(int_bound 100000)
    (fun seed ->
      let g = random_aig ~inputs:3 ~gates:5 ~outputs:1 seed in
      let t = Egraph.of_aig g in
      ignore (Egraph.saturate ~max_iters:2 ~max_apps:4 ~max_window:4 t);
      List.for_all
        (fun cost ->
          List.for_all
            (fun c ->
              match brute_force_best t cost c with
              | None -> true (* too large to enumerate — vacuous *)
              | Some bf -> Float.equal (Egraph.best_cost t cost c) bf)
            (Egraph.classes t))
        [ Egraph.Cost.levels; Egraph.Cost.gates ])

(* ------------------------------------------------------------------ *)
(* Portfolio                                                           *)
(* ------------------------------------------------------------------ *)

let test_plan_floor1 () =
  let mk ceiling =
    Guard.create
      {
        Guard.Budget.bdd_node_ceiling = ceiling;
        sat_conflict_ceiling = 0;
        sat_conflict_budget = 0;
      }
  in
  (match Egraph.Portfolio.plan (mk 3) 8 with
  | Egraph.Portfolio.Sequential -> ()
  | Egraph.Portfolio.Parallel _ ->
    Alcotest.fail "floor-1 over-commit must serialize");
  (match Egraph.Portfolio.plan (mk 1000) 8 with
  | Egraph.Portfolio.Parallel ctxs ->
    Alcotest.(check int) "one context per arm" 8 (List.length ctxs)
  | Egraph.Portfolio.Sequential -> Alcotest.fail "ample budget must divide");
  match Egraph.Portfolio.plan Guard.none 8 with
  | Egraph.Portfolio.Parallel ctxs ->
    Alcotest.(check int) "ungoverned divides into inert shares" 8
      (List.length ctxs)
  | Egraph.Portfolio.Sequential -> Alcotest.fail "none must divide"

(* A portfolio under a node budget smaller than the arm count must take
   the sequential fallback — and still return a CEC-sound circuit. *)
let test_portfolio_sequential_fallback () =
  let g = Circuits.Adders.ripple_carry 4 in
  let options =
    {
      Lookahead.Driver.default with
      Lookahead.Driver.time_limit_s = infinity;
      guard_budget =
        {
          Guard.Budget.default with
          Guard.Budget.bdd_node_ceiling = List.length Egraph.Portfolio.arm_names - 1;
        };
    }
  in
  let out, r =
    Egraph.Portfolio.run_ex ~options ~cost:Egraph.Cost.levels g
  in
  Alcotest.(check bool) "sequential fallback taken" true
    r.Egraph.Portfolio.sequential;
  Alcotest.(check bool) "still equivalent" true (Aig.Cec.equivalent g out)

(* The differential satellite: on the table1 adders, the portfolio
   winner is CEC-equal to the input, its cost is no worse than any arm
   run standalone, and the winner choice and the output BLIF are
   byte-identical across -j 1/2/4. *)
let nolimit =
  { Lookahead.Driver.default with Lookahead.Driver.time_limit_s = infinity }

let standalone_arms g cost =
  List.map (fun (name, f) -> (name, f g)) Baselines.all
  @ [
      ("lookahead", Lookahead.optimize ~options:nolimit g);
      ("egraph", Egraph.optimize ~cost g);
      ("none", g);
    ]

let portfolio_at jobs cost g =
  Par.set_default_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Par.set_default_jobs 0)
    (fun () ->
      let out, r = Egraph.Portfolio.run_ex ~options:nolimit ~cost g in
      (Aig.Io.blif_to_string ~model:"portfolio" out, r))

let test_portfolio_differential () =
  let cost = Egraph.Cost.levels in
  List.iter
    (fun (kind, build) ->
      let g = build 8 in
      let blif1, r1 = portfolio_at 1 cost g in
      let out1 = Aig.Io.read_blif blif1 in
      Alcotest.(check bool)
        (kind ^ ": winner equivalent to input")
        true
        (Aig.Cec.equivalent g out1);
      let floor =
        List.fold_left
          (fun acc (_, out) -> Float.min acc (cost.Egraph.Cost.measure out))
          infinity (standalone_arms g cost)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: cost %.0f <= best standalone arm %.0f" kind
           r1.Egraph.Portfolio.winner_cost floor)
        true
        (r1.Egraph.Portfolio.winner_cost <= floor);
      List.iter
        (fun jobs ->
          let blif, r = portfolio_at jobs cost g in
          Alcotest.(check string)
            (Printf.sprintf "%s: same winner at -j%d" kind jobs)
            r1.Egraph.Portfolio.winner r.Egraph.Portfolio.winner;
          Alcotest.(check string)
            (Printf.sprintf "%s: identical BLIF at -j%d" kind jobs)
            blif1 blif)
        [ 2; 4 ])
    [
      ("ripple", Circuits.Adders.ripple_carry);
      ("cla", Circuits.Adders.carry_lookahead);
      ("skip", fun n -> Circuits.Adders.carry_skip n);
    ]

let () =
  Alcotest.run "egraph"
    [
      ( "core",
        [
          Alcotest.test_case "constant/complement folds" `Quick test_folds;
          Alcotest.test_case "congruence closure" `Quick test_congruence_basic;
          Alcotest.test_case "complement congruence" `Quick test_not_congruence;
          prop_congruence;
        ] );
      ( "saturation",
        [ prop_saturation_equivalent; prop_cost_monotone ] );
      ("extraction", [ prop_extraction_optimal ]);
      ( "portfolio",
        [
          Alcotest.test_case "floor-1 plan serializes" `Quick test_plan_floor1;
          Alcotest.test_case "sequential fallback stays sound" `Quick
            test_portfolio_sequential_fallback;
          Alcotest.test_case "table1 differential across -j" `Slow
            test_portfolio_differential;
        ] );
    ]
