(* Tests for the CDCL SAT solver, including a brute-force cross-check on
   random 3-CNF instances. *)

module Solver = Sat.Solver

let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let test_trivial () =
  let s = Solver.create () in
  Solver.add_clause s [ 1 ];
  Alcotest.(check bool) "unit sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "model" true (Solver.value s 1);
  Solver.add_clause s [ -1 ];
  Alcotest.(check bool) "contradiction" true (Solver.solve s = Solver.Unsat)

let test_simple_implications () =
  let s = Solver.create () in
  (* (x1 -> x2) and (x2 -> x3) and x1 *)
  Solver.add_clause s [ -1; 2 ];
  Solver.add_clause s [ -2; 3 ];
  Solver.add_clause s [ 1 ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "x3 forced" true (Solver.value s 3)

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: unsatisfiable. Variable p_ij = pigeon i in hole j. *)
  let s = Solver.create () in
  let v i j = (i * 2) + j + 1 in
  for i = 0 to 2 do
    Solver.add_clause s [ v i 0; v i 1 ]
  done;
  for j = 0 to 1 do
    for i = 0 to 2 do
      for k = i + 1 to 2 do
        Solver.add_clause s [ -v i j; -v k j ]
      done
    done
  done;
  Alcotest.(check bool) "php(3,2) unsat" true (Solver.solve s = Solver.Unsat)

let test_assumptions () =
  let s = Solver.create () in
  Solver.add_clause s [ -1; 2 ];
  Solver.add_clause s [ -2; -3 ];
  Alcotest.(check bool) "sat under x1 x3... no wait"
    true
    (Solver.solve ~assumptions:[ 1; 3 ] s = Solver.Unsat);
  Alcotest.(check bool) "sat under x1" true
    (Solver.solve ~assumptions:[ 1 ] s = Solver.Sat);
  Alcotest.(check bool) "still incremental" true
    (Solver.solve ~assumptions:[ 3 ] s = Solver.Sat)

let gen_cnf =
  let open QCheck.Gen in
  let lit nvars = map2 (fun v s -> if s then v else -v) (int_range 1 nvars) bool in
  let clause nvars = list_size (int_range 1 3) (lit nvars) in
  let cnf =
    int_range 1 8 >>= fun nvars ->
    list_size (int_range 1 25) (clause nvars) >>= fun cls ->
    return (nvars, cls)
  in
  QCheck.make
    ~print:(fun (n, cls) ->
      Printf.sprintf "nvars=%d cnf=%s" n
        (String.concat " & "
           (List.map
              (fun c -> "(" ^ String.concat "|" (List.map string_of_int c) ^ ")")
              cls)))
    cnf

let brute_force_sat nvars cls =
  let eval_clause asn c =
    List.exists (fun l -> if l > 0 then asn.(l - 1) else not asn.(-l - 1)) c
  in
  let rec loop m =
    if m >= 1 lsl nvars then false
    else
      let asn = Array.init nvars (fun i -> (m lsr i) land 1 = 1) in
      if List.for_all (eval_clause asn) cls then true else loop (m + 1)
  in
  loop 0

let prop_random_cnf =
  qtest ~count:400 "solver agrees with brute force" gen_cnf (fun (nvars, cls) ->
      let s = Solver.create () in
      List.iter (Solver.add_clause s) cls;
      let expected = brute_force_sat nvars cls in
      let got = Solver.solve s = Solver.Sat in
      (* When SAT, also validate the model. *)
      (if got then
         let ok =
           List.for_all
             (fun c ->
               List.exists
                 (fun l ->
                   if l > 0 then Solver.value s l else not (Solver.value s (-l)))
                 c)
             cls
         in
         if not ok then QCheck.Test.fail_report "invalid model");
      got = expected)

let prop_incremental =
  qtest ~count:100 "incremental solving is consistent" gen_cnf
    (fun (nvars, cls) ->
      let s = Solver.create () in
      List.iter (Solver.add_clause s) cls;
      let r1 = Solver.solve s in
      let r2 = Solver.solve s in
      ignore nvars;
      r1 = r2)

(* ------------------------------------------------------------------ *)
(* Assumptions vs brute force, vivification modes                      *)
(* ------------------------------------------------------------------ *)

let gen_cnf_with_assumptions =
  let open QCheck.Gen in
  let lit nvars = map2 (fun v s -> if s then v else -v) (int_range 1 nvars) bool in
  let clause nvars = list_size (int_range 1 3) (lit nvars) in
  let g =
    int_range 1 8 >>= fun nvars ->
    list_size (int_range 1 25) (clause nvars) >>= fun cls ->
    list_size (int_range 0 3) (lit nvars) >>= fun assumptions ->
    return (nvars, cls, assumptions)
  in
  QCheck.make
    ~print:(fun (n, cls, assumptions) ->
      Printf.sprintf "nvars=%d cnf=%s assume=[%s]" n
        (String.concat " & "
           (List.map
              (fun c -> "(" ^ String.concat "|" (List.map string_of_int c) ^ ")")
              cls))
        (String.concat ";" (List.map string_of_int assumptions)))
    g

let prop_assumptions_vs_brute_force =
  (* Assumptions must behave exactly like temporary unit clauses: the
     verdict matches a brute-force run with the units added, a SAT model
     satisfies both the clauses and the assumptions, and — because the
     same solver answers all the queries of one instance back to back —
     the incremental reuse path is exercised on every sample. *)
  qtest ~count:400 "assumptions behave as temporary unit clauses"
    gen_cnf_with_assumptions (fun (nvars, cls, assumptions) ->
      let s = Solver.create ~reduce_base:20 () in
      List.iter (Solver.add_clause s) cls;
      let expected =
        brute_force_sat nvars (List.map (fun l -> [ l ]) assumptions @ cls)
      in
      let got = Solver.solve ~assumptions s = Solver.Sat in
      (if got then
         let holds l =
           if l > 0 then Solver.value s l else not (Solver.value s (-l))
         in
         if
           not
             (List.for_all (fun c -> List.exists holds c) cls
             && List.for_all holds assumptions)
         then QCheck.Test.fail_report "model violates clauses or assumptions");
      (* The assumptions must not stick: solving the base formula again
         must agree with brute force on the clauses alone. *)
      let base = Solver.solve s = Solver.Sat in
      got = expected && base = brute_force_sat nvars cls)

let prop_vivify_modes_agree =
  qtest ~count:200 "vivification on/off gives the same verdicts" gen_cnf
    (fun (nvars, cls) ->
      let on = Solver.create ~vivify:true ~reduce_base:20 () in
      let off = Solver.create ~vivify:false ~reduce_base:20 () in
      List.iter (Solver.add_clause on) cls;
      List.iter (Solver.add_clause off) cls;
      let expected = brute_force_sat nvars cls in
      Solver.solve on = Solver.Sat = expected
      && Solver.solve off = Solver.Sat = expected)

(* ------------------------------------------------------------------ *)
(* Reduction determinism and assumption reuse across reductions        *)
(* ------------------------------------------------------------------ *)

(* Pigeonhole clauses for [n] pigeons in [holes] holes over variables
   starting at [base + 1]; unsatisfiable when [n > holes], with enough
   conflicts to push a small [reduce_base] through several reductions. *)
let pigeonhole_clauses ?(base = 0) n holes =
  let v i j = base + (i * holes) + j + 1 in
  let at_least = List.init n (fun i -> List.init holes (fun j -> v i j)) in
  let at_most = ref [] in
  for j = 0 to holes - 1 do
    for i = 0 to n - 1 do
      for k = i + 1 to n - 1 do
        at_most := [ -v i j; -v k j ] :: !at_most
      done
    done
  done;
  at_least @ List.rev !at_most

let solve_php_stats () =
  let s = Solver.create ~reduce_base:50 () in
  List.iter (Solver.add_clause s) (pigeonhole_clauses 6 5);
  let r = Solver.solve s in
  (r, Solver.stats s)

let test_reduction_determinism () =
  (* Reduction points are indexed by conflict count, never by time or
     scheduling, so a fresh solver on the same formula must produce
     bit-identical statistics no matter what pool it runs under. *)
  let reference = solve_php_stats () in
  let r, st = reference in
  Alcotest.(check bool) "php(6,5) unsat" true (r = Solver.Unsat);
  Alcotest.(check bool) "reductions fired" true (st.Solver.reductions > 0);
  Alcotest.(check bool)
    "learnts deleted" true
    (st.Solver.learnts_deleted > 0);
  List.iter
    (fun jobs ->
      let pool = Par.Pool.create ~jobs () in
      Fun.protect
        ~finally:(fun () -> Par.Pool.shutdown pool)
        (fun () ->
          let runs =
            Par.map_list ~pool
              (fun _ -> solve_php_stats ())
              (List.init jobs (fun i -> i))
          in
          List.iter
            (fun run ->
              Alcotest.(check bool)
                (Printf.sprintf "stats identical at -j %d" jobs)
                true (run = reference))
            runs))
    [ 1; 2; 4 ]

let test_assumptions_across_reduction () =
  (* A relaxed pigeonhole: selector [r] added positively to every
     clause, so [~assumptions:[-r]] poses the hard unsat instance and
     [~assumptions:[r]] is trivially satisfiable. The hard query drives
     the conflict count through several reduction points; the later
     queries reuse the same solver — and its surviving learnts — across
     those reductions and must still answer correctly. *)
  let r = 31 in
  let s = Solver.create ~reduce_base:50 () in
  List.iter
    (fun c -> Solver.add_clause s (r :: c))
    (pigeonhole_clauses 6 5);
  Alcotest.(check bool)
    "hard branch unsat" true
    (Solver.solve ~assumptions:[ -r ] s = Solver.Unsat);
  let st = Solver.stats s in
  Alcotest.(check bool) "reductions fired" true (st.Solver.reductions > 0);
  Alcotest.(check bool)
    "relaxed branch sat" true
    (Solver.solve ~assumptions:[ r ] s = Solver.Sat);
  Alcotest.(check bool) "model sets r" true (Solver.value s r);
  Alcotest.(check bool)
    "hard branch still unsat" true
    (Solver.solve ~assumptions:[ -r ] s = Solver.Unsat);
  Alcotest.(check bool)
    "formula without assumptions sat" true
    (Solver.solve s = Solver.Sat)

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "implication chain" `Quick test_simple_implications;
          Alcotest.test_case "pigeonhole 3-2" `Quick test_pigeonhole_3_2;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          prop_random_cnf;
          prop_incremental;
        ] );
      ( "cdcl",
        [
          prop_assumptions_vs_brute_force;
          prop_vivify_modes_agree;
          Alcotest.test_case "reduction stats identical at -j 1/2/4" `Quick
            test_reduction_determinism;
          Alcotest.test_case "assumption reuse across reductions" `Quick
            test_assumptions_across_reduction;
        ] );
    ]
