(* Tests for the partitioned parallel BDD engine: partition invariants
   (exact output cover, fanin closure, -j independence) and the headline
   contract — Bddpar.analyze produces the same functions at every pool
   size, checked on C432 and a 16-bit ripple-carry adder by transferring
   every run's results into one comparison manager. *)

let with_pool jobs f =
  let pool = Par.Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

let nets =
  lazy
    [
      ("C432", Network.of_aig ~k:6 (Circuits.Suite.build "C432"));
      ("adder16", Network.of_aig ~k:6 (Circuits.Adders.ripple_carry 16));
    ]

(* ------------------------------------------------------------------ *)
(* Partition invariants                                                *)
(* ------------------------------------------------------------------ *)

let test_partition_invariants () =
  List.iter
    (fun (name, net) ->
      let parts = Network.Partition.compute net in
      (* Every output appears in exactly one cluster. *)
      let seen = Array.make (Network.num_outputs net) 0 in
      Array.iter
        (fun (c : Network.Partition.cluster) ->
          List.iter (fun oi -> seen.(oi) <- seen.(oi) + 1) c.outputs)
        parts;
      Alcotest.(check bool)
        (name ^ ": outputs covered exactly once")
        true
        (Array.for_all (fun n -> n = 1) seen);
      Array.iter
        (fun (c : Network.Partition.cluster) ->
          let member = Network.Partition.member net c in
          (* Fanin-closed: every fanin of a member is a member. *)
          List.iter
            (fun id ->
              Array.iter
                (fun fi ->
                  Alcotest.(check bool)
                    (name ^ ": fanin closed")
                    true member.(fi))
                (Network.node net id).Network.fanins)
            c.nodes;
          (* Each cluster covers its outputs' cones. *)
          List.iter
            (fun oi ->
              Alcotest.(check bool)
                (name ^ ": output node in cluster")
                true
                member.((Network.output net oi).Network.node))
            c.outputs)
        parts)
    (Lazy.force nets)

let test_partition_deterministic () =
  List.iter
    (fun (name, net) ->
      let a = Network.Partition.compute net in
      let b = Network.Partition.compute net in
      Alcotest.(check bool)
        (name ^ ": identical across calls")
        true (a = b);
      (* The cap, not the pool size, shapes the partition: a different
         cap is allowed to differ, but the default is a pure function
         of the wiring. *)
      Alcotest.(check bool)
        (name ^ ": default cap stable")
        true
        (Network.Partition.default_cap net = Network.Partition.default_cap net))
    (Lazy.force nets)

(* ------------------------------------------------------------------ *)
(* Cross -j identity                                                   *)
(* ------------------------------------------------------------------ *)

let test_cross_j_identity () =
  List.iter
    (fun (name, net) ->
      (* SPCF late-node cap kept small: the point is identity, not
         approximation quality, and C432 SPCFs get expensive fast. *)
      let max_nodes = 6 in
      let cmp = Bdd.create () in
      let run jobs =
        with_pool jobs (fun pool ->
            let dst = Bdd.create () in
            let results = Bddpar.analyze ~pool ~max_nodes ~dst net in
            Array.map
              (fun (r : Bddpar.result) ->
                ( Bdd.transfer ~src:dst ~dst:cmp r.Bddpar.global,
                  Bdd.transfer ~src:dst ~dst:cmp r.Bddpar.spcf ))
              results)
      in
      let reference = run 1 in
      List.iter
        (fun jobs ->
          let got = run jobs in
          Alcotest.(check bool)
            (Printf.sprintf "%s: -j %d equals -j 1" name jobs)
            true
            (Array.for_all2
               (fun (rg, rs) (g, s) -> Bdd.equal rg g && Bdd.equal rs s)
               reference got))
        [ 2; 4; 8 ];
      Alcotest.(check bool)
        (name ^ ": comparison manager canonical")
        true (Bdd.check_canonical cmp))
    (Lazy.force nets)

let test_partitioned_counters () =
  (* A >=2-job pool must actually take the partitioned path, and the
     reference path must be taken at 1 job. *)
  Obs.enable ();
  let net = List.assoc "adder16" (Lazy.force nets) in
  let value name = Obs.counter_value (Obs.snapshot ()) name in
  let p0 = value "bddpar.partitioned_runs" in
  let r0 = value "bddpar.reference_runs" in
  with_pool 2 (fun pool ->
      ignore (Bddpar.analyze ~pool ~max_nodes:4 ~dst:(Bdd.create ()) net));
  Alcotest.(check bool)
    "partitioned path taken" true
    (value "bddpar.partitioned_runs" > p0);
  with_pool 1 (fun pool ->
      ignore (Bddpar.analyze ~pool ~max_nodes:4 ~dst:(Bdd.create ()) net));
  Alcotest.(check bool)
    "reference path taken" true
    (value "bddpar.reference_runs" > r0)

(* ------------------------------------------------------------------ *)
(* Governance: divided budgets degrade per-partition, then recover      *)
(* ------------------------------------------------------------------ *)

let test_divided_budget_retry () =
  (* A budget comfortable undivided but tight per-partition must take
     the sequential-retry rung and still produce the same functions as
     an ungoverned run. The window exists for any >= 2 partitions: with
     ceiling C and max partition need M, the retry succeeds iff C >= M
     while the divided share blows iff C/n < M, i.e. for all
     C in [M, n*M). Doubling C from a failing start necessarily lands
     the first completing run in that window: the preceding failure
     means M > C/2, hence C < 2*M <= n*M. *)
  let net = List.assoc "adder16" (Lazy.force nets) in
  let cap = 24 in
  Alcotest.(check bool)
    "several partitions at this cap" true
    (Array.length (Network.Partition.compute ~cap net) >= 2);
  let cmp = Bdd.create () in
  let run ?guard dst =
    with_pool 2 (fun pool ->
        Array.map
          (fun (r : Bddpar.result) ->
            Bdd.transfer ~src:dst ~dst:cmp r.Bddpar.global)
          (Bddpar.analyze ~pool ?guard ~cap ~max_nodes:4 ~dst net))
  in
  let free = run (Bdd.create ()) in
  Obs.enable ();
  let retries () =
    Obs.counter_value (Obs.snapshot ()) "bddpar.partition_retries"
  in
  let rec search c failed_before =
    if c > 1 lsl 22 then Alcotest.fail "no completing ceiling found"
    else
      let guard =
        Guard.create
          {
            Guard.Budget.bdd_node_ceiling = c;
            sat_conflict_ceiling = 0;
            sat_conflict_budget = 0;
          }
      in
      let before = retries () in
      match run ~guard (Bdd.create ()) with
      | governed -> (governed, failed_before, retries () - before)
      | exception Guard.Blowup _ -> search (2 * c) true
  in
  let governed, failed_before, retries_in_final = search 8 false in
  Alcotest.(check bool) "search started below the need" true failed_before;
  Alcotest.(check bool)
    "completing run used the retry rung" true (retries_in_final > 0);
  Alcotest.(check bool)
    "governed run equals free run" true
    (Array.for_all2 Bdd.equal free governed)

let () =
  Alcotest.run "bddpar"
    [
      ( "partition",
        [
          Alcotest.test_case "cover + fanin closure" `Quick
            test_partition_invariants;
          Alcotest.test_case "deterministic" `Quick
            test_partition_deterministic;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "identical at -j 1/2/4/8" `Slow
            test_cross_j_identity;
          Alcotest.test_case "path counters" `Quick test_partitioned_counters;
          Alcotest.test_case "divided budget: retry rung" `Quick
            test_divided_budget_retry;
        ] );
    ]
