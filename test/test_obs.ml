(* Tests for the lib/obs instrumentation subsystem: the disabled path
   records nothing, aggregate counters are bit-identical at any pool
   size, report/trace JSON round-trips through the bundled parser, the
   deterministic subtree is stable across identical runs, and the
   counters newly exposed by Sat.Solver / Aig.Cec / Par.Pool behave. *)

let qtest ?(count = 20) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let random_aig ?(inputs = 6) ?(gates = 40) ?(outputs = 2) seed =
  let st = Random.State.make [| seed; inputs; gates |] in
  let g = Aig.create () in
  let ins = Array.init inputs (fun _ -> Aig.add_input g) in
  let pool = ref (Array.to_list ins) in
  let pick () =
    let l = List.nth !pool (Random.State.int st (List.length !pool)) in
    if Random.State.bool st then Aig.bnot l else l
  in
  for _ = 1 to gates do
    pool := Aig.band g (pick ()) (pick ()) :: !pool
  done;
  for i = 0 to outputs - 1 do
    Aig.add_output g (Printf.sprintf "y%d" i) (pick ())
  done;
  g

(* Every test leaves observation off, the journal closed and the sinks
   empty so tests are order-independent. *)
let quiesce () =
  Obs.Journal.disable ();
  Obs.disable ();
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Disabled path                                                       *)
(* ------------------------------------------------------------------ *)

let test_disabled_records_nothing () =
  quiesce ();
  let c = Obs.counter "test.disabled_counter" in
  let h = Obs.histogram "test.disabled_hist" in
  let g = Obs.gauge "test.disabled_gauge" in
  let sp = Obs.span "test.disabled_span" in
  Obs.incr c;
  Obs.add c 41;
  Obs.observe h 7;
  Obs.gauge_max g 9;
  Alcotest.(check int) "span_begin is -1 when disabled" (-1)
    (Obs.span_begin sp);
  Obs.span_end sp (-1);
  Alcotest.(check int) "with_span still runs f" 5
    (Obs.with_span sp (fun () -> 5));
  let snap = Obs.snapshot () in
  Alcotest.(check int) "counter stayed 0" 0
    (Obs.counter_value snap "test.disabled_counter");
  (* The report must show only zeros for everything just recorded. *)
  let det = Obs.det_subtree (Obs.report_json snap) in
  (match Obs.Json.member "counters" det with
  | Some (Obs.Json.Obj kvs) ->
    List.iter
      (fun (k, v) ->
        if k = "test.disabled_counter" then
          Alcotest.(check bool) "report value 0" true (v = Obs.Json.Int 0))
      kvs
  | _ -> Alcotest.fail "no deterministic counters object");
  quiesce ()

let test_enable_disable () =
  quiesce ();
  let c = Obs.counter "test.switch_counter" in
  Obs.incr c;
  Obs.enable ();
  Obs.incr c;
  Obs.incr c;
  Obs.disable ();
  Obs.incr c;
  Alcotest.(check int) "only enabled increments counted" 2
    (Obs.counter_value (Obs.snapshot ()) "test.switch_counter");
  quiesce ()

(* ------------------------------------------------------------------ *)
(* Determinism across pool sizes                                       *)
(* ------------------------------------------------------------------ *)

let test_jobs_identity () =
  quiesce ();
  let g = random_aig ~inputs:6 ~gates:40 ~outputs:2 4242 in
  (* The anytime deadline is the one legitimately scheduling-dependent
     input; disable it so the deterministic contract is total. *)
  let options =
    { Lookahead.Driver.default with Lookahead.Driver.time_limit_s = infinity }
  in
  let run j =
    Par.set_default_jobs j;
    Obs.reset ();
    Obs.enable ();
    let o = Lookahead.Driver.optimize ~options g in
    let snap = Obs.snapshot () in
    Obs.disable ();
    (Aig.depth o, Obs.counter_value snap "opt.rounds",
     Obs.det_subtree (Obs.report_json snap))
  in
  let d1, rounds1, det1 = run 1 in
  Alcotest.(check bool) "workload actually recorded" true (rounds1 > 0);
  Alcotest.(check bool) "det subtree present" true (det1 <> Obs.Json.Null);
  List.iter
    (fun j ->
      let dj, _, detj = run j in
      Alcotest.(check int) (Printf.sprintf "depth identical at -j %d" j) d1 dj;
      Alcotest.(check bool)
        (Printf.sprintf "det subtree identical at -j %d" j)
        true
        (Obs.Json.equal det1 detj))
    [ 2; 4; 8 ];
  Par.set_default_jobs 0;
  quiesce ()

let test_det_across_runs () =
  quiesce ();
  let g = random_aig ~inputs:5 ~gates:25 ~outputs:2 77 in
  let options =
    { Lookahead.Driver.default with Lookahead.Driver.time_limit_s = infinity }
  in
  let run () =
    Obs.reset ();
    Obs.enable ();
    ignore (Lookahead.Driver.optimize ~options g);
    let det = Obs.det_subtree (Obs.report_json (Obs.snapshot ())) in
    Obs.disable ();
    det
  in
  let a = run () in
  let b = run () in
  Alcotest.(check bool) "identical across runs" true (Obs.Json.equal a b);
  quiesce ()

(* ------------------------------------------------------------------ *)
(* Report / trace JSON                                                 *)
(* ------------------------------------------------------------------ *)

let test_report_shape () =
  quiesce ();
  Obs.enable ();
  let c = Obs.counter "test.shape_counter" in
  let sched = Obs.counter ~stability:Obs.Sched "test.shape_sched" in
  let sp = Obs.span "test.shape_span" in
  Obs.add c 3;
  Obs.incr sched;
  Obs.with_span sp (fun () -> ());
  let report = Obs.report_json (Obs.snapshot ()) in
  Obs.disable ();
  (* Sched metrics and durations are quarantined under "runtime". *)
  let det = Obs.det_subtree report in
  let runtime =
    match Obs.Json.member "runtime" report with
    | Some r -> r
    | None -> Alcotest.fail "no runtime subtree"
  in
  let has sub section key =
    match Obs.Json.member section sub with
    | Some (Obs.Json.Obj kvs) -> List.mem_assoc key kvs
    | _ -> false
  in
  Alcotest.(check bool) "det counter in det" true
    (has det "counters" "test.shape_counter");
  Alcotest.(check bool) "sched counter not in det" false
    (has det "counters" "test.shape_sched");
  Alcotest.(check bool) "sched counter in runtime" true
    (has runtime "counters" "test.shape_sched");
  Alcotest.(check bool) "duration in runtime" true
    (has runtime "durations" "test.shape_span");
  Alcotest.(check bool) "duration not in det" false
    (has det "durations" "test.shape_span");
  quiesce ()

let test_trace_events () =
  quiesce ();
  Obs.enable ();
  let sp = Obs.span "test.trace_span" in
  Obs.with_span sp (fun () -> ());
  Obs.with_span sp (fun () -> ());
  let trace = Obs.trace_json (Obs.snapshot ()) in
  Obs.disable ();
  (match Obs.Json.member "traceEvents" trace with
  | Some (Obs.Json.List events) ->
    let spans =
      List.filter
        (fun e ->
          Obs.Json.member "ph" e = Some (Obs.Json.String "X")
          && Obs.Json.member "name" e
             = Some (Obs.Json.String "test.trace_span"))
        events
    in
    Alcotest.(check int) "two complete events" 2 (List.length spans);
    List.iter
      (fun e ->
        match (Obs.Json.member "ts" e, Obs.Json.member "dur" e) with
        | Some (Obs.Json.Float ts), Some (Obs.Json.Float dur) ->
          Alcotest.(check bool) "non-negative ts/dur" true
            (ts >= 0.0 && dur >= 0.0)
        | _ -> Alcotest.fail "event without float ts/dur")
      spans
  | _ -> Alcotest.fail "no traceEvents");
  (match Obs.Json.of_string (Obs.Json.to_string trace) with
  | Some parsed ->
    Alcotest.(check bool) "trace round-trips" true (Obs.Json.equal trace parsed)
  | None -> Alcotest.fail "trace does not reparse");
  quiesce ()

let prop_report_roundtrip =
  qtest ~count:50 "report round-trips; det subtree run-stable"
    QCheck.(small_list (pair small_nat small_nat))
    (fun vals ->
      quiesce ();
      Obs.enable ();
      let c = Obs.counter "test.prop_counter" in
      let h = Obs.histogram "test.prop_hist" in
      let g = Obs.gauge "test.prop_gauge" in
      let record () =
        List.iter
          (fun (a, b) ->
            Obs.add c a;
            Obs.observe h b;
            Obs.gauge_max g (a + b))
          vals
      in
      record ();
      let r1 = Obs.report_json (Obs.snapshot ()) in
      Obs.reset ();
      record ();
      let r2 = Obs.report_json (Obs.snapshot ()) in
      quiesce ();
      let roundtrips r =
        match Obs.Json.of_string (Obs.Json.to_string r) with
        | Some p -> Obs.Json.equal p r
        | None -> false
      in
      roundtrips r1 && roundtrips r2
      && Obs.Json.equal (Obs.det_subtree r1) (Obs.det_subtree r2))

(* ------------------------------------------------------------------ *)
(* Newly exposed layer counters                                        *)
(* ------------------------------------------------------------------ *)

let test_solver_stats () =
  let s = Sat.Solver.create () in
  let v1 = Sat.Solver.new_var s in
  let v2 = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ v1; v2 ];
  Sat.Solver.add_clause s [ -v1 ];
  (match Sat.Solver.solve s with
  | Sat.Solver.Sat -> ()
  | _ -> Alcotest.fail "satisfiable instance reported unsat");
  let st = Sat.Solver.stats s in
  Alcotest.(check bool) "propagations happened" true
    (st.Sat.Solver.propagations > 0);
  Alcotest.(check bool) "non-negative fields" true
    (st.Sat.Solver.conflicts >= 0
    && st.Sat.Solver.decisions >= 0
    && st.Sat.Solver.restarts >= 0)

let test_cec_stats () =
  quiesce ();
  let a = random_aig ~inputs:5 ~gates:30 ~outputs:2 9001 in
  (* Balanced copy: same functions, different structure, so the check
     cannot shortcut on structural identity. *)
  let b = Aig.Balance.run a in
  let verdict, st = Aig.Cec.check_with_stats a b in
  Alcotest.(check bool) "equivalent" true (verdict = Aig.Cec.Equivalent);
  Alcotest.(check bool) "sane counters" true
    (st.Aig.Cec.sim_rounds >= 0
    && st.Aig.Cec.sat_calls >= 0
    && st.Aig.Cec.merges >= 0
    && st.Aig.Cec.budget_exhausted <= st.Aig.Cec.sat_calls);
  (* An inequivalent pair must be refuted, and refutation needs at
     least one simulation round. *)
  let c = random_aig ~inputs:5 ~gates:30 ~outputs:2 9002 in
  let verdict2, st2 = Aig.Cec.check_with_stats a c in
  (match verdict2 with
  | Aig.Cec.Counterexample _ -> ()
  | Aig.Cec.Equivalent -> Alcotest.fail "distinct random circuits matched");
  Alcotest.(check bool) "sim ran on refutation" true
    (st2.Aig.Cec.sim_rounds > 0);
  quiesce ()

let test_pool_stats () =
  let pool = Par.Pool.create ~jobs:3 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      let futs = List.init 20 (fun i -> Par.submit pool (fun () -> i * i)) in
      let sum = List.fold_left (fun acc f -> acc + Par.await f) 0 futs in
      Alcotest.(check int) "results" (List.fold_left ( + ) 0
        (List.init 20 (fun i -> i * i))) sum;
      let st = Par.Pool.stats pool in
      Alcotest.(check int) "pool size" 3 st.Par.Pool.pool_size;
      Alcotest.(check int) "submitted" 20 st.Par.Pool.submitted;
      Alcotest.(check int) "completed" 20 st.Par.Pool.completed;
      Alcotest.(check int) "per-domain counts sum to completed" 20
        (List.fold_left (fun acc (_, n) -> acc + n) 0
           st.Par.Pool.per_domain_completed))

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let test_journal_ring () =
  quiesce ();
  Obs.Journal.enable ~capacity:4 ();
  for i = 0 to 5 do
    Obs.Journal.record ~kind:"test.ev"
      ~det:(Obs.Json.Obj [ ("i", Obs.Json.Int i) ])
      ()
  done;
  let es = Obs.Journal.entries () in
  Alcotest.(check int) "ring keeps capacity entries" 4 (List.length es);
  Alcotest.(check int) "events_total counts evicted too" 6
    (Obs.Journal.events_total ());
  Alcotest.(check (list int)) "oldest-first, eviction dropped 0 and 1"
    [ 2; 3; 4; 5 ]
    (List.map (fun e -> e.Obs.Journal.seq) es);
  quiesce ()

let test_journal_digest () =
  quiesce ();
  let a = Obs.Json.Obj [ ("x", Obs.Json.Int 1) ] in
  let b = Obs.Json.Obj [ ("x", Obs.Json.Int 2) ] in
  Obs.Journal.enable ();
  Obs.Journal.record ~kind:"k" ~det:a ();
  Obs.Journal.record ~kind:"k" ~det:b ();
  let d_ab = Obs.Journal.det_digest () in
  (* Order-insensitive: any interleaving of the same Det multiset. *)
  Obs.Journal.enable ();
  Obs.Journal.record ~kind:"k" ~det:b ();
  Obs.Journal.record ~kind:"k" ~det:a ();
  Alcotest.(check string) "digest order-insensitive" d_ab
    (Obs.Journal.det_digest ());
  (* Sched-only events must not contribute. *)
  Obs.Journal.record ~kind:"k.sched"
    ~sched:(Obs.Json.Obj [ ("wall_ms", Obs.Json.Float 3.5) ])
    ();
  Alcotest.(check string) "sched-only event excluded" d_ab
    (Obs.Journal.det_digest ());
  (* The kind participates: same payload under another kind differs. *)
  Obs.Journal.enable ();
  Obs.Journal.record ~kind:"other" ~det:a ();
  Obs.Journal.record ~kind:"k" ~det:b ();
  Alcotest.(check bool) "kind is part of the digest" false
    (String.equal d_ab (Obs.Journal.det_digest ()));
  (* Eviction cannot lose digest contributions. *)
  Obs.Journal.enable ~capacity:2 ();
  Obs.Journal.record ~kind:"k" ~det:a ();
  Obs.Journal.record ~kind:"k" ~det:b ();
  Obs.Journal.record ~kind:"k.sched" ~sched:a ();
  Obs.Journal.record ~kind:"k.sched" ~sched:b ();
  Alcotest.(check string) "digest survives ring eviction" d_ab
    (Obs.Journal.det_digest ());
  quiesce ()

let test_journal_file_rotation () =
  quiesce ();
  let path =
    Filename.temp_file "lookahead_test_journal" ".jsonl"
  in
  (* file_max_bytes is clamped to >= 4096, so write enough to roll. *)
  Obs.Journal.enable ~file:path ~file_max_bytes:4096 ();
  for i = 0 to 99 do
    Obs.Journal.record ~kind:"test.fill"
      ~det:
        (Obs.Json.Obj
           [ ("i", Obs.Json.Int i);
             ("pad", Obs.Json.String (String.make 64 'x')) ])
      ()
  done;
  Obs.Journal.disable ();
  Alcotest.(check bool) "rotation happened" true
    (Obs.Journal.rotations () > 0);
  Alcotest.(check bool) "rotated file exists" true
    (Sys.file_exists (path ^ ".1"));
  let lines p =
    let ic = open_in p in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         (match Obs.Json.of_string line with
         | Some _ -> ()
         | None -> Alcotest.fail "journal line does not parse as JSON");
         incr n
       done
     with End_of_file -> close_in ic);
    !n
  in
  Alcotest.(check bool) "current file non-empty" true (lines path > 0);
  Alcotest.(check bool) "rotated file non-empty" true
    (lines (path ^ ".1") > 0);
  Sys.remove path;
  Sys.remove (path ^ ".1");
  quiesce ()

let test_journal_phase_hook () =
  quiesce ();
  Obs.enable ();
  Obs.Journal.enable ();
  let phase = Obs.span "opt.round" in
  let other = Obs.span "test.not_a_phase" in
  Obs.with_span phase (fun () -> ());
  Obs.with_span other (fun () -> ());
  let kinds =
    List.filter_map
      (fun e ->
        if e.Obs.Journal.kind = "phase" then
          Obs.Json.member "phase" e.Obs.Journal.det
        else None)
      (Obs.Journal.entries ())
  in
  Alcotest.(check bool) "listed phase span journaled" true
    (List.mem (Obs.Json.String "opt.round") kinds);
  Alcotest.(check int) "unlisted span not journaled" 1 (List.length kinds);
  quiesce ()

(* The journal's Det digest must be invariant under the pool size: the
   same optimizer run journals the same multiset of Det payloads at any
   -j, even though domain interleaving reorders them. *)
let test_journal_jobs_identity () =
  quiesce ();
  let g = random_aig ~inputs:6 ~gates:40 ~outputs:2 9321 in
  let options =
    { Lookahead.Driver.default with Lookahead.Driver.time_limit_s = infinity }
  in
  let run j =
    Par.set_default_jobs j;
    Obs.reset ();
    Obs.enable ();
    Obs.Journal.enable ();
    ignore (Lookahead.Driver.optimize ~options g);
    let d = Obs.Journal.det_digest () in
    Obs.Journal.disable ();
    Obs.disable ();
    d
  in
  let d1 = run 1 in
  Alcotest.(check bool) "journal saw Det events" true
    (String.length d1 > 0 && d1.[0] <> '0');
  List.iter
    (fun j ->
      Alcotest.(check string)
        (Printf.sprintf "journal digest identical at -j %d" j)
        d1 (run j))
    [ 2; 4 ];
  Par.set_default_jobs 0;
  quiesce ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "disabled",
        [
          Alcotest.test_case "records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "enable/disable boundary" `Quick
            test_enable_disable;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "counters identical at -j 1/2/4/8" `Slow
            test_jobs_identity;
          Alcotest.test_case "det subtree stable across runs" `Quick
            test_det_across_runs;
        ] );
      ( "exports",
        [
          Alcotest.test_case "report shape / quarantine" `Quick
            test_report_shape;
          Alcotest.test_case "trace events well-formed" `Quick
            test_trace_events;
          prop_report_roundtrip;
        ] );
      ( "layer counters",
        [
          Alcotest.test_case "Sat.Solver.stats" `Quick test_solver_stats;
          Alcotest.test_case "Aig.Cec.check_with_stats" `Quick test_cec_stats;
          Alcotest.test_case "Par.Pool.stats" `Quick test_pool_stats;
        ] );
      ( "journal",
        [
          Alcotest.test_case "bounded ring + eviction" `Quick
            test_journal_ring;
          Alcotest.test_case "Det digest semantics" `Quick
            test_journal_digest;
          Alcotest.test_case "file sink rotation" `Quick
            test_journal_file_rotation;
          Alcotest.test_case "phase hook" `Quick test_journal_phase_hook;
          Alcotest.test_case "digest identical at -j 1/2/4" `Slow
            test_journal_jobs_identity;
        ] );
    ]
