(* Tests for the BDD manager: algebra laws, canonicity, and a cross-check
   against truth tables on random functions. *)

module Tt = Logic.Tt

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let gen_tt n =
  QCheck.make
    ~print:(fun t -> Tt.to_hex t)
    (QCheck.Gen.map
       (fun seed -> Tt.random (Random.State.make [| seed |]) n)
       QCheck.Gen.int)

(* Build the BDD of a truth table by applying it to the projection vars. *)
let bdd_of_tt man tt =
  let n = Tt.num_vars tt in
  Bdd.apply_tt man tt (Array.init n (fun i -> Bdd.var man i))

let test_canonicity () =
  let man = Bdd.create () in
  let x = Bdd.var man 0 and y = Bdd.var man 1 in
  let a = Bdd.bor man x y in
  let b = Bdd.bnot man (Bdd.band man (Bdd.bnot man x) (Bdd.bnot man y)) in
  Alcotest.(check bool) "or = demorgan" true (Bdd.equal a b);
  let c = Bdd.bxor man x x in
  Alcotest.(check bool) "x xor x = false" true (Bdd.is_false man c)

let test_restrict_compose () =
  let man = Bdd.create () in
  let x = Bdd.var man 0 and y = Bdd.var man 1 and z = Bdd.var man 2 in
  let f = Bdd.bor man (Bdd.band man x y) z in
  Alcotest.(check bool) "f|x=0 = z... no, = z or nothing" true
    (Bdd.equal (Bdd.restrict man f 0 false) z);
  Alcotest.(check bool) "f|x=1 = y or z" true
    (Bdd.equal (Bdd.restrict man f 0 true) (Bdd.bor man y z));
  let g = Bdd.compose man f 0 z in
  Alcotest.(check bool) "compose x:=z" true
    (Bdd.equal g (Bdd.bor man (Bdd.band man z y) z))

let test_satcount () =
  let man = Bdd.create () in
  let x = Bdd.var man 0 and y = Bdd.var man 1 in
  Alcotest.(check (float 1e-9)) "x over 2 vars" 2.0
    (Bdd.satcount man ~nvars:2 x);
  Alcotest.(check (float 1e-9)) "x&y over 3 vars" 2.0
    (Bdd.satcount man ~nvars:3 (Bdd.band man x y));
  Alcotest.(check (float 1e-9)) "true over 10" 1024.0
    (Bdd.satcount man ~nvars:10 (Bdd.btrue man))

let test_any_sat () =
  let man = Bdd.create () in
  let x = Bdd.var man 0 and y = Bdd.var man 1 in
  let f = Bdd.band man (Bdd.bnot man x) y in
  (match Bdd.any_sat man f with
   | Some asn ->
     Alcotest.(check bool) "x false" true (List.assoc 0 asn = false);
     Alcotest.(check bool) "y true" true (List.assoc 1 asn = true)
   | None -> Alcotest.fail "expected sat");
  Alcotest.(check bool) "false has no sat" true
    (Bdd.any_sat man (Bdd.bfalse man) = None)

let prop_tt_crosscheck =
  qtest "bdd matches tt through all ops" (QCheck.pair (gen_tt 7) (gen_tt 7))
    (fun (a, b) ->
      let man = Bdd.create () in
      let fa = bdd_of_tt man a and fb = bdd_of_tt man b in
      let pairs =
        [ (Tt.land_ a b, Bdd.band man fa fb);
          (Tt.lor_ a b, Bdd.bor man fa fb);
          (Tt.lxor_ a b, Bdd.bxor man fa fb);
          (Tt.lnot a, Bdd.bnot man fa) ]
      in
      List.for_all (fun (tt, bdd) -> Bdd.equal (bdd_of_tt man tt) bdd) pairs)

let prop_satcount_matches =
  qtest "satcount matches count_ones" (gen_tt 8) (fun t ->
      let man = Bdd.create () in
      let f = bdd_of_tt man t in
      (* The manager may have fewer live vars; count over exactly 8. *)
      let n = List.length (List.init 8 Fun.id) in
      abs_float
        (Bdd.satcount man ~nvars:n f -. float_of_int (Tt.count_ones t))
      < 0.5)

let prop_support =
  qtest "support matches tt" (gen_tt 6) (fun t ->
      let man = Bdd.create () in
      let f = bdd_of_tt man t in
      Bdd.support man f = Tt.support t)

let prop_exists =
  qtest "exists matches tt" (gen_tt 6) (fun t ->
      let man = Bdd.create () in
      let f = bdd_of_tt man t in
      Bdd.equal (Bdd.exists man [ 2; 4 ] f)
        (bdd_of_tt man (Tt.exists (Tt.exists t 2) 4)))

let prop_implies =
  qtest "implies decision" (QCheck.pair (gen_tt 6) (gen_tt 6)) (fun (a, b) ->
      let man = Bdd.create () in
      let fa = bdd_of_tt man a and fb = bdd_of_tt man b in
      Bdd.implies man fa fb
      = Tt.is_const_false (Tt.land_ a (Tt.lnot b)))

(* ------------------------------------------------------------------ *)
(* Random formula trees over 8 variables, cross-checked against         *)
(* brute-force truth-table evaluation, plus canonical-form invariants.  *)
(* ------------------------------------------------------------------ *)

type formula =
  | Var of int
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Xor of formula * formula
  | Ite of formula * formula * formula

let nvars_formula = 8

let gen_formula =
  let open QCheck.Gen in
  let rec gen depth =
    if depth = 0 then map (fun i -> Var i) (int_bound (nvars_formula - 1))
    else
      frequency
        [
          (2, map (fun i -> Var i) (int_bound (nvars_formula - 1)));
          (1, map (fun f -> Not f) (gen (depth - 1)));
          (2, map2 (fun a b -> And (a, b)) (gen (depth - 1)) (gen (depth - 1)));
          (2, map2 (fun a b -> Or (a, b)) (gen (depth - 1)) (gen (depth - 1)));
          (2, map2 (fun a b -> Xor (a, b)) (gen (depth - 1)) (gen (depth - 1)));
          ( 1,
            map3
              (fun a b c -> Ite (a, b, c))
              (gen (depth - 1))
              (gen (depth - 1))
              (gen (depth - 1)) );
        ]
  in
  gen 5

let rec formula_print = function
  | Var i -> Printf.sprintf "x%d" i
  | Not f -> Printf.sprintf "~%s" (formula_print f)
  | And (a, b) -> Printf.sprintf "(%s & %s)" (formula_print a) (formula_print b)
  | Or (a, b) -> Printf.sprintf "(%s | %s)" (formula_print a) (formula_print b)
  | Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (formula_print a) (formula_print b)
  | Ite (a, b, c) ->
    Printf.sprintf "ite(%s,%s,%s)" (formula_print a) (formula_print b)
      (formula_print c)

let arb_formula = QCheck.make ~print:formula_print gen_formula

let rec formula_bdd man = function
  | Var i -> Bdd.var man i
  | Not f -> Bdd.bnot man (formula_bdd man f)
  | And (a, b) -> Bdd.band man (formula_bdd man a) (formula_bdd man b)
  | Or (a, b) -> Bdd.bor man (formula_bdd man a) (formula_bdd man b)
  | Xor (a, b) -> Bdd.bxor man (formula_bdd man a) (formula_bdd man b)
  | Ite (a, b, c) ->
    Bdd.ite man (formula_bdd man a) (formula_bdd man b) (formula_bdd man c)

let rec formula_tt = function
  | Var i -> Tt.var nvars_formula i
  | Not f -> Tt.lnot (formula_tt f)
  | And (a, b) -> Tt.land_ (formula_tt a) (formula_tt b)
  | Or (a, b) -> Tt.lor_ (formula_tt a) (formula_tt b)
  | Xor (a, b) -> Tt.lxor_ (formula_tt a) (formula_tt b)
  | Ite (a, b, c) ->
    let ta = formula_tt a in
    Tt.lor_
      (Tt.land_ ta (formula_tt b))
      (Tt.land_ (Tt.lnot ta) (formula_tt c))

let prop_formula_crosscheck =
  qtest "formula tree: bdd = brute-force tt" ~count:300 arb_formula (fun fm ->
      let man = Bdd.create () in
      let f = formula_bdd man fm in
      Bdd.equal f (bdd_of_tt man (formula_tt fm)))

let prop_formula_ite_band_bxor =
  qtest "formula tree: ite/band/bxor vs tt"
    (QCheck.triple arb_formula arb_formula arb_formula)
    (fun (fa, fb, fc) ->
      let man = Bdd.create () in
      let a = formula_bdd man fa
      and b = formula_bdd man fb
      and c = formula_bdd man fc in
      let ta = formula_tt fa and tb = formula_tt fb and tc = formula_tt fc in
      let agree tt bdd = Bdd.equal (bdd_of_tt man tt) bdd in
      agree (Tt.land_ ta tb) (Bdd.band man a b)
      && agree (Tt.lxor_ tb tc) (Bdd.bxor man b c)
      && agree
           (Tt.lor_ (Tt.land_ ta tb) (Tt.land_ (Tt.lnot ta) tc))
           (Bdd.ite man a b c))

let prop_formula_exists =
  qtest "formula tree: exists vs tt" arb_formula (fun fm ->
      let man = Bdd.create () in
      let f = formula_bdd man fm in
      let t = formula_tt fm in
      Bdd.equal
        (Bdd.exists man [ 1; 3; 6 ] f)
        (bdd_of_tt man (Tt.exists (Tt.exists (Tt.exists t 1) 3) 6)))

let prop_formula_satcount =
  qtest "formula tree: satcount = tt popcount" arb_formula (fun fm ->
      let man = Bdd.create () in
      let f = formula_bdd man fm in
      let t = formula_tt fm in
      abs_float
        (Bdd.satcount man ~nvars:nvars_formula f
        -. float_of_int (Tt.count_ones t))
      < 0.5)

let prop_canonical_invariant =
  qtest "formula tree: canonical node store" arb_formula (fun fm ->
      let man = Bdd.create () in
      let _ = formula_bdd man fm in
      (* No node with lo = hi, complement bit never on a hi edge,
         variables strictly increasing along every edge. *)
      Bdd.check_canonical man)

(* ------------------------------------------------------------------ *)
(* Cross-manager transfer.                                             *)
(* ------------------------------------------------------------------ *)

let prop_transfer_value =
  qtest "transfer: same function in the destination" ~count:300 arb_formula
    (fun fm ->
      let src = Bdd.create () and dst = Bdd.create () in
      let f = formula_bdd src fm in
      let f' = Bdd.transfer ~src ~dst f in
      (* Canonicity: rebuilding the formula natively in [dst] must land
         on the very same edge the transfer produced. *)
      Bdd.equal f' (formula_bdd dst fm)
      && Bdd.equal f' (bdd_of_tt dst (formula_tt fm))
      && Bdd.check_canonical dst)

let prop_transfer_complement_and_size =
  qtest "transfer: preserves complement and node count" arb_formula (fun fm ->
      let src = Bdd.create () and dst = Bdd.create () in
      let f = formula_bdd src fm in
      let nf = Bdd.bnot src f in
      let f' = Bdd.transfer ~src ~dst f in
      Bdd.equal (Bdd.transfer ~src ~dst nf) (Bdd.bnot dst f')
      && Bdd.size dst f' = Bdd.size src f)

let prop_transfer_idempotent =
  qtest "transfer: memoized and idempotent" arb_formula (fun fm ->
      let src = Bdd.create () and dst = Bdd.create () in
      let f = formula_bdd src fm in
      let f1 = Bdd.transfer ~src ~dst f in
      let live = (Bdd.stats dst).Bdd.live_nodes in
      let f2 = Bdd.transfer ~src ~dst f in
      (* Second transfer is a pure memo walk: same edge, no allocation;
         and a same-manager transfer is the identity. *)
      Bdd.equal f1 f2
      && (Bdd.stats dst).Bdd.live_nodes = live
      && Bdd.transfer ~src ~dst:src f = f)

let prop_transfer_many_sources =
  qtest "transfer: merging two sources preserves algebra" ~count:100
    (QCheck.pair arb_formula arb_formula) (fun (fa, fb) ->
      (* The bddpar merge pattern: results built in separate managers,
         drained into one, then combined there. *)
      let m1 = Bdd.create () and m2 = Bdd.create () and dst = Bdd.create () in
      let a = Bdd.transfer ~src:m1 ~dst (formula_bdd m1 fa) in
      let b = Bdd.transfer ~src:m2 ~dst (formula_bdd m2 fb) in
      Bdd.equal (Bdd.band dst a b)
        (bdd_of_tt dst (Tt.land_ (formula_tt fa) (formula_tt fb)))
      && Bdd.check_canonical dst)

let test_stats_and_caches () =
  let man = Bdd.create () in
  let x = Bdd.var man 0 and y = Bdd.var man 1 and z = Bdd.var man 2 in
  let f = Bdd.bor man (Bdd.band man x y) (Bdd.bxor man y z) in
  let s = Bdd.stats man in
  Alcotest.(check bool) "live nodes positive" true (s.Bdd.live_nodes > 0);
  Alcotest.(check bool)
    "live <= allocated" true
    (s.Bdd.live_nodes < s.Bdd.total_allocated);
  Alcotest.(check bool)
    "unique capacity is a power of two" true
    (s.Bdd.unique_capacity land (s.Bdd.unique_capacity - 1) = 0);
  Alcotest.(check bool)
    "ite cache capacity is a power of two" true
    (s.Bdd.ite_cache_capacity land (s.Bdd.ite_cache_capacity - 1) = 0);
  (* Exercise the satcount and transfer memos so clearing has work. *)
  ignore (Bdd.satcount man ~nvars:3 f);
  let other = Bdd.create () in
  let _ = Bdd.transfer ~src:other ~dst:man (Bdd.var other 1) in
  Alcotest.(check bool)
    "transfer memo populated" true
    ((Bdd.stats man).Bdd.transfer_memo_entries > 0);
  (* Clearing the caches must not change any function. *)
  Bdd.clear_caches man;
  let s' = Bdd.stats man in
  Alcotest.(check int) "apply memo cleared" 0 s'.Bdd.apply_memo_entries;
  Alcotest.(check int) "transfer memo cleared" 0 s'.Bdd.transfer_memo_entries;
  Alcotest.(check int) "transfer sources cleared" 0 s'.Bdd.transfer_sources;
  Alcotest.(check bool)
    "f unchanged after clear" true
    (Bdd.equal f (Bdd.bor man (Bdd.band man x y) (Bdd.bxor man y z)));
  Alcotest.(check bool) "still canonical" true (Bdd.check_canonical man)

let test_complement_sharing () =
  (* With complement edges, f and ~f must not duplicate the subgraph:
     negation allocates nothing. *)
  let man = Bdd.create () in
  let x = Bdd.var man 0 and y = Bdd.var man 1 and z = Bdd.var man 2 in
  let f = Bdd.bor man (Bdd.band man x y) z in
  let before = (Bdd.stats man).Bdd.live_nodes in
  let g = Bdd.bnot man f in
  let after = (Bdd.stats man).Bdd.live_nodes in
  Alcotest.(check int) "bnot allocates no nodes" before after;
  Alcotest.(check int) "same graph size" (Bdd.size man f) (Bdd.size man g);
  Alcotest.(check bool) "double negation" true
    (Bdd.equal f (Bdd.bnot man g))

let () =
  Alcotest.run "bdd"
    [
      ( "bdd",
        [
          Alcotest.test_case "canonicity" `Quick test_canonicity;
          Alcotest.test_case "restrict/compose" `Quick test_restrict_compose;
          Alcotest.test_case "satcount" `Quick test_satcount;
          Alcotest.test_case "any_sat" `Quick test_any_sat;
          Alcotest.test_case "stats and cache clearing" `Quick
            test_stats_and_caches;
          Alcotest.test_case "complement-edge sharing" `Quick
            test_complement_sharing;
          prop_tt_crosscheck;
          prop_satcount_matches;
          prop_support;
          prop_exists;
          prop_implies;
          prop_formula_crosscheck;
          prop_formula_ite_band_bxor;
          prop_formula_exists;
          prop_formula_satcount;
          prop_canonical_invariant;
          prop_transfer_value;
          prop_transfer_complement_and_size;
          prop_transfer_idempotent;
          prop_transfer_many_sources;
        ] );
    ]
