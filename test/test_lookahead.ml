(* Tests for the lookahead synthesis core: Simplify/Reduce soundness,
   window semantics, secondary simplification, reconstruction validity,
   and end-to-end optimization. *)

module Tt = Logic.Tt

let qtest ?(count = 20) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let gen_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000)

let random_aig ?(inputs = 6) ?(gates = 40) ?(outputs = 2) seed =
  let st = Random.State.make [| seed; inputs; gates |] in
  let g = Aig.create () in
  let ins = Array.init inputs (fun _ -> Aig.add_input g) in
  let pool = ref (Array.to_list ins) in
  let pick () =
    let l = List.nth !pool (Random.State.int st (List.length !pool)) in
    if Random.State.bool st then Aig.bnot l else l
  in
  for _ = 1 to gates do
    pool := Aig.band g (pick ()) (pick ()) :: !pool
  done;
  for i = 0 to outputs - 1 do
    Aig.add_output g (Printf.sprintf "y%d" i) (pick ())
  done;
  g

(* Run one primary simplification pass on the deepest output of a random
   circuit and return the machinery's pieces for property checks. *)
let setup_decomposition seed =
  let g = Aig.Balance.run (random_aig seed) in
  let net = Network.of_aig ~k:5 g in
  let levels = Network.Levels.compute net in
  let outs = Network.outputs net in
  let o =
    List.fold_left
      (fun acc (o : Network.output) ->
        match acc with
        | Some b when levels.(b.Network.node) >= levels.(o.Network.node) -> acc
        | _ -> Some o)
      None outs
  in
  match o with
  | None -> None
  | Some o when levels.(o.Network.node) <= 1 -> None
  | Some o ->
    let man = Bdd.create () in
    let globals = Network.Globals.of_net man net in
    let delta = levels.(o.Network.node) in
    let spcf =
      Timing.Spcf.approx man net globals ~levels ~out:o ~delta ()
    in
    if Bdd.is_false man spcf then None
    else begin
      let spcf_count = Bdd.satcount man ~nvars:6 spcf in
      let primary = Network.copy net in
      let analysis = Network.Analysis.create primary in
      let outcome =
        Lookahead.Reduce.run man ~analysis ~globals ~spcf ~spcf_count primary
          ~out:o ~target:delta
      in
      Some (g, net, primary, o, man, globals, outcome)
    end

(* The heart of the soundness argument: y0 must equal y on the window. *)
let prop_primary_sound =
  qtest ~count:60 "y0 agrees with y on the window" gen_seed (fun seed ->
      match setup_decomposition seed with
      | None -> true
      | Some (_, net, primary, o, man, globals, outcome) ->
        if outcome.Lookahead.Reduce.marked = [] then true
        else begin
          let sigma =
            List.fold_left
              (fun s (id, w) ->
                Bdd.band man s
                  (Network.Globals.tt_image man globals net id w))
              (Bdd.btrue man) outcome.Lookahead.Reduce.marked
          in
          (* Check pointwise over the 64 input minterms. *)
          List.for_all
            (fun m ->
              let bits = Array.init 6 (fun i -> (m lsr i) land 1 = 1) in
              let in_window =
                Bdd.is_true man
                  (List.fold_left
                     (fun acc i -> Bdd.restrict man acc i bits.(i))
                     sigma
                     (List.init 6 Fun.id))
              in
              (not in_window)
              ||
              let v = Network.eval_nodes net bits in
              let v' = Network.eval_nodes primary bits in
              v.(o.Network.node) = v'.(o.Network.node))
            (List.init 64 Fun.id)
        end)

let prop_secondary_sound =
  qtest ~count:60 "y1 agrees with y off the window" gen_seed (fun seed ->
      match setup_decomposition seed with
      | None -> true
      | Some (_, net, _, o, man, globals, outcome) ->
        if outcome.Lookahead.Reduce.marked = [] then true
        else begin
          let sigma =
            List.fold_left
              (fun s (id, w) ->
                Bdd.band man s
                  (Network.Globals.tt_image man globals net id w))
              (Bdd.btrue man) outcome.Lookahead.Reduce.marked
          in
          let care = Bdd.bnot man sigma in
          let secondary = Network.copy net in
          let sec_analysis = Network.Analysis.create secondary in
          let (_ : int list) =
            Lookahead.Secondary.run man ~globals ~care secondary
              ~analysis:sec_analysis ~out:o
          in
          List.for_all
            (fun m ->
              let bits = Array.init 6 (fun i -> (m lsr i) land 1 = 1) in
              let in_care =
                Bdd.is_true man
                  (List.fold_left
                     (fun acc i -> Bdd.restrict man acc i bits.(i))
                     care
                     (List.init 6 Fun.id))
              in
              (not in_care)
              ||
              let v = Network.eval_nodes net bits in
              let v' = Network.eval_nodes secondary bits in
              v.(o.Network.node) = v'.(o.Network.node))
            (List.init 64 Fun.id)
        end)

let prop_simplify_reduces_level =
  qtest ~count:60 "simplify strictly reduces the node level" gen_seed
    (fun seed ->
      match setup_decomposition seed with
      | None -> true
      | Some (_, net, _, _, man, globals, _) ->
        let levels = Network.Levels.compute net in
        let spcf = Bdd.btrue man in
        List.for_all
          (fun id ->
            Network.is_input net id
            ||
            let r =
              Lookahead.Simplify.run man ~globals ~spcf ~spcf_count:64.0 net
                ~levels id
            in
            (not r.Lookahead.Simplify.changed)
            ||
            let saved = Network.node net id in
            Network.set_func net id r.Lookahead.Simplify.func;
            let l' = Network.Levels.node_level net ~levels id in
            Network.set_func net id saved.Network.func;
            l' < Network.Levels.node_level net ~levels id)
          (Network.topo_order net))

let prop_window_excludes_disagreement =
  qtest ~count:60 "window never contains changed minterms" gen_seed
    (fun seed ->
      match setup_decomposition seed with
      | None -> true
      | Some (_, net, primary, _, _, _, outcome) ->
        List.for_all
          (fun (id, w) ->
            let orig = (Network.node net id).Network.func in
            let simplified = (Network.node primary id).Network.func in
            (* window => orig == simplified *)
            Tt.is_const_false
              (Tt.land_ w (Tt.lxor_ orig simplified)))
          outcome.Lookahead.Reduce.marked)

(* --- end-to-end ----------------------------------------------------------- *)

let prop_optimize_equivalent =
  qtest ~count:15 "optimize preserves function (random logic)" gen_seed
    (fun seed ->
      let g = random_aig ~gates:30 seed in
      (* optimize asserts CEC internally; reaching here means it passed. *)
      let opt = Lookahead.optimize g in
      Aig.depth opt <= max 1 (Aig.depth g))

let test_optimize_adders () =
  (* Table 1's headline: the lookahead flow turns ripple-carry adders into
     logarithmic-depth structures. *)
  let rca = Circuits.Adders.ripple_carry 8 in
  let opt, stats = Lookahead.optimize_with_stats rca in
  Alcotest.(check bool) "depth at most 10" true (Aig.depth opt <= 10);
  Alcotest.(check bool) "stats consistent" true
    (stats.Lookahead.Driver.final_depth = Aig.depth opt);
  Alcotest.(check bool) "still an adder" true
    (Aig.Cec.equivalent rca opt)

let test_golden_adders () =
  (* Bit-identity pin: at -j 1 with no time budget the flow is fully
     deterministic, so the optimized adders must land on exactly these
     depth/size pairs. Any analysis "optimization" that changes a single
     acceptance decision shows up here before it shows up in the paper
     tables. *)
  Par.set_default_jobs 1;
  Fun.protect
    ~finally:(fun () -> Par.set_default_jobs 0)
    (fun () ->
      let golden =
        [ (2, (5, 19)); (3, (7, 32)); (4, (7, 41)); (6, (9, 78)); (8, (9, 274)) ]
      in
      List.iter
        (fun (n, (depth, ands)) ->
          let g = Circuits.Adders.ripple_carry n in
          let o =
            Lookahead.optimize
              ~options:
                { Lookahead.Driver.default with time_limit_s = infinity }
              g
          in
          Alcotest.(check (pair int int))
            (Printf.sprintf "adder-%d (depth, ands)" n)
            (depth, ands)
            (Aig.depth o, Aig.num_reachable_ands o))
        golden)

let test_optimize_quickstart_chain () =
  (* The serial token chain of the quickstart example must collapse. *)
  let g = Aig.create () in
  let r = Array.init 8 (fun _ -> Aig.add_input g) in
  let p = Array.init 8 (fun _ -> Aig.add_input g) in
  let token = ref (Aig.band g r.(0) p.(0)) in
  for i = 1 to 7 do
    token := Aig.bor g r.(i) (Aig.band g p.(i) !token)
  done;
  Aig.add_output g "t" !token;
  let opt = Lookahead.optimize g in
  Alcotest.(check bool)
    (Printf.sprintf "chain depth %d -> %d halves" (Aig.depth g) (Aig.depth opt))
    true
    (Aig.depth opt * 2 <= Aig.depth g)

let prop_mfs_equivalent =
  qtest ~count:20 "mfs preserves function" gen_seed (fun seed ->
      let g = random_aig ~gates:30 seed in
      (* run asserts internal equivalence; also check size never grows
         unreasonably. *)
      let o = Lookahead.Mfs.run g in
      Aig.num_reachable_ands o <= 2 * max 1 (Aig.num_reachable_ands g))

let test_mfs_removes_unobservable () =
  (* y = (a & b) | (a & ~b & c & ~c) : the second branch is vacuous and
     an observability-aware pass must fold it away. *)
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g and c = Aig.add_input g in
  let dead = Aig.band g (Aig.band g a (Aig.bnot b)) (Aig.band g c (Aig.bnot c)) in
  Aig.add_output g "y" (Aig.bor g (Aig.band g a b) dead);
  let o = Lookahead.Mfs.run g in
  Alcotest.(check bool) "equivalent" true (Aig.Cec.equivalent g o);
  Alcotest.(check bool) "only the live AND remains" true (Aig.num_reachable_ands o <= 1)

let test_optimize_idempotent_on_shallow () =
  let g = Circuits.Adders.carry_lookahead 4 in
  let opt = Lookahead.optimize g in
  Alcotest.(check bool) "no depth regression" true (Aig.depth opt <= Aig.depth g)

(* --- tt_image memoization -------------------------------------------------- *)

let test_tt_image_memoized () =
  (* A full driver run on the 8-bit ripple-carry adder exercises the
     (node, window) image memo throughout decomposition; the result must
     still be the correct circuit. *)
  let rca = Circuits.Adders.ripple_carry 8 in
  let opt = Lookahead.optimize rca in
  Alcotest.(check bool) "driver run with memo is sound" true
    (Aig.Cec.equivalent rca opt);
  (* Cached vs uncached image values on the same network: the memoized
     tt_image must match a reference computed minterm by minterm, stay
     stable across repeated queries, and survive a cache flush. *)
  let net = Network.of_aig ~k:6 rca in
  let man = Bdd.create () in
  let globals = Network.Globals.of_net man net in
  let st = Random.State.make [| 42 |] in
  List.iter
    (fun id ->
      if not (Network.is_input net id) then begin
        let nd = Network.node net id in
        let k = Array.length nd.Network.fanins in
        if k > 0 && k <= 6 then begin
          let windows =
            [ nd.Network.func; Tt.random st k; Tt.random st k ]
          in
          List.iter
            (fun w ->
              let cached = Network.Globals.tt_image man globals net id w in
              let again = Network.Globals.tt_image man globals net id w in
              Alcotest.(check bool) "repeat query identical" true
                (Bdd.equal cached again);
              let uncached =
                List.fold_left
                  (fun acc m ->
                    Bdd.bor man acc
                      (Network.Globals.minterm_image man globals net id m))
                  (Bdd.bfalse man) (Tt.minterms w)
              in
              Alcotest.(check bool) "cached = uncached reference" true
                (Bdd.equal cached uncached);
              Bdd.clear_caches man;
              let fresh = Network.Globals.tt_image man globals net id w in
              Alcotest.(check bool) "identical after cache flush" true
                (Bdd.equal cached fresh))
            windows
        end
      end)
    (Network.topo_order net)

let () =
  Alcotest.run "lookahead"
    [
      ( "soundness",
        [
          prop_primary_sound;
          prop_secondary_sound;
          prop_simplify_reduces_level;
          prop_window_excludes_disagreement;
        ] );
      ( "end-to-end",
        [
          prop_optimize_equivalent;
          Alcotest.test_case "adders" `Slow test_optimize_adders;
          Alcotest.test_case "golden adders (-j 1)" `Slow test_golden_adders;
          Alcotest.test_case "token chain" `Quick test_optimize_quickstart_chain;
          Alcotest.test_case "shallow input" `Quick test_optimize_idempotent_on_shallow;
        ] );
      ( "mfs",
        [
          prop_mfs_equivalent;
          Alcotest.test_case "unobservable logic" `Quick test_mfs_removes_unobservable;
        ] );
      ( "globals-memo",
        [ Alcotest.test_case "tt_image memoization" `Slow test_tt_image_memoized ] );
    ]
