(* Tests for the deterministic domain-pool runtime: submission-order
   determinism, exception propagation out of workers, nested submission
   without deadlock, per-worker init, the monotonic deadline, and a
   parallel-vs-sequential bit-identity check of the table1 adder flow. *)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Burn a little CPU so scheduling actually interleaves. *)
let spin seed =
  let x = ref seed in
  for _ = 1 to 1000 + (seed mod 997) do
    x := (!x * 1103515245) + 12345
  done;
  !x

let with_pool jobs f =
  let pool = Par.Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let test_map_order () =
  with_pool 4 (fun pool ->
      let xs = List.init 200 Fun.id in
      let f x =
        ignore (spin x);
        (x * 2) + 1
      in
      let expected = List.map f xs in
      for _ = 1 to 5 do
        Alcotest.(check (list int)) "submission order" expected
          (Par.map_list ~pool f xs)
      done)

let test_map_reduce_order () =
  (* Floating-point addition is non-associative, so getting the exact
     same sum as the sequential fold means the reduction really runs in
     submission order. *)
  let xs = List.init 500 (fun i -> 1.0 /. float_of_int (i + 1)) in
  let seq = List.fold_left ( +. ) 0.0 xs in
  with_pool 3 (fun pool ->
      let par =
        Par.map_reduce ~pool
          ~init:(fun () -> ())
          ~f:(fun () x ->
            ignore (spin (int_of_float (x *. 1e6)));
            x)
          ~combine:( +. ) 0.0 xs
      in
      Alcotest.(check (float 0.0)) "bit-equal float sum" seq par)

let test_map_merge_order () =
  (* merge must run on the calling domain in submission order; building
     a list and a non-associative float sum detects any reordering. *)
  let xs = List.init 300 Fun.id in
  let seq =
    List.fold_left
      (fun (order, sum) x ->
        (x :: order, sum +. (1.0 /. float_of_int (x + 1))))
      ([], 0.0) xs
  in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          let par =
            Par.map_merge ~pool
              ~init:(fun () -> ())
              ~f:(fun () x ->
                ignore (spin x);
                1.0 /. float_of_int (x + 1))
              ~merge:(fun (order, sum) x y -> (x :: order, sum +. y))
              ([], 0.0) xs
          in
          Alcotest.(check (list int))
            (Printf.sprintf "merge order at -j %d" jobs)
            (fst seq) (fst par);
          Alcotest.(check (float 0.0))
            (Printf.sprintf "bit-equal merge sum at -j %d" jobs)
            (snd seq) (snd par)))
    [ 1; 2; 4 ]

let prop_map_matches_sequential =
  qtest "Par.map = List.map (any pool size)"
    QCheck.(pair (int_range 1 6) (small_list small_int))
    (fun (jobs, xs) ->
      let f x = spin x land 0xffff in
      with_pool jobs (fun pool -> Par.map_list ~pool f xs = List.map f xs))

(* ------------------------------------------------------------------ *)
(* Exceptions                                                          *)
(* ------------------------------------------------------------------ *)

exception Boom of int

let test_exception_propagation () =
  with_pool 3 (fun pool ->
      let fut = Par.submit pool (fun () -> raise (Boom 42)) in
      (match Par.await fut with
       | _ -> Alcotest.fail "expected Boom"
       | exception Boom n -> Alcotest.(check int) "payload" 42 n);
      (* The pool survives a failed job. *)
      Alcotest.(check int) "pool still works" 7
        (Par.await (Par.submit pool (fun () -> 7)));
      match
        Par.map_list ~pool
          (fun x -> if x = 5 then raise (Boom x) else x)
          [ 1; 2; 5; 9 ]
      with
      | _ -> Alcotest.fail "expected Boom from map"
      | exception Boom n -> Alcotest.(check int) "map payload" 5 n)

(* ------------------------------------------------------------------ *)
(* Nested submission                                                   *)
(* ------------------------------------------------------------------ *)

let nested_sum pool i =
  let inner = Par.map_list ~pool (fun j -> (i * 10) + j) [ 0; 1; 2 ] in
  List.fold_left ( + ) 0 inner

let test_nested_no_deadlock () =
  (* Jobs submit sub-jobs to the same pool and await them; the helping
     await must execute queued work instead of blocking, even when the
     pool is smaller than the live await chain. *)
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          let outer =
            Par.map_list ~pool (fun i -> nested_sum pool i) (List.init 8 Fun.id)
          in
          Alcotest.(check (list int))
            (Printf.sprintf "nested at %d job(s)" jobs)
            (List.init 8 (fun i -> (i * 30) + 3))
            outer))
    [ 1; 2; 4 ]

let test_deeply_nested () =
  with_pool 2 (fun pool ->
      let rec tree depth =
        if depth = 0 then 1
        else
          let kids = Par.map_list ~pool (fun _ -> tree (depth - 1)) [ (); () ] in
          List.fold_left ( + ) 0 kids
      in
      Alcotest.(check int) "2^5 leaves" 32 (tree 5))

(* ------------------------------------------------------------------ *)
(* Per-worker init                                                     *)
(* ------------------------------------------------------------------ *)

let test_init_per_worker () =
  let jobs = 3 in
  with_pool jobs (fun pool ->
      let inits = Atomic.make 0 in
      let results =
        Par.map ~pool
          ~init:(fun () ->
            Atomic.incr inits;
            Buffer.create 16)
          ~f:(fun buf x ->
            (* The context is privately mutable per worker. *)
            Buffer.clear buf;
            Buffer.add_string buf (string_of_int x);
            int_of_string (Buffer.contents buf) * 3)
          (List.init 50 Fun.id)
      in
      Alcotest.(check (list int)) "results" (List.init 50 (fun x -> x * 3))
        results;
      (* At most one init per worker domain: jobs - 1 spawned workers
         plus the helping caller. *)
      Alcotest.(check bool) "init calls bounded by pool size" true
        (Atomic.get inits >= 1 && Atomic.get inits <= jobs))

(* ------------------------------------------------------------------ *)
(* Deadline                                                            *)
(* ------------------------------------------------------------------ *)

let test_deadline () =
  let d = Par.Deadline.after 0.05 in
  Alcotest.(check bool) "fresh deadline not expired" false
    (Par.Deadline.expired d);
  Alcotest.(check bool) "remaining positive" true
    (Par.Deadline.remaining_s d > 0.0);
  let stop = Par.Clock.now_s () +. 0.08 in
  while Par.Clock.now_s () < stop do
    ignore (spin 1)
  done;
  Alcotest.(check bool) "expired after sleeping past it" true
    (Par.Deadline.expired d);
  Alcotest.(check bool) "never never expires" false
    (Par.Deadline.expired Par.Deadline.never);
  Alcotest.(check bool) "never has infinite slack" true
    (Par.Deadline.remaining_s Par.Deadline.never = infinity)

(* ------------------------------------------------------------------ *)
(* Parallel vs sequential bit-identity of the table1 adder flow        *)
(* ------------------------------------------------------------------ *)

let optimize_at jobs n =
  Par.set_default_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Par.set_default_jobs 0)
    (fun () ->
      let g = Lookahead.optimize (Circuits.Adders.ripple_carry n) in
      Aig.Io.blif_to_string ~model:"adder" g)

let test_table1_bit_identity () =
  List.iter
    (fun n ->
      let seq = optimize_at 1 n in
      let par = optimize_at 4 n in
      Alcotest.(check string)
        (Printf.sprintf "ripple:%d identical at -j1/-j4" n)
        seq par)
    [ 4; 8 ]

let () =
  Alcotest.run "par"
    [
      ( "determinism",
        [
          Alcotest.test_case "map submission order" `Quick test_map_order;
          Alcotest.test_case "map_merge merge order" `Quick
            test_map_merge_order;
          Alcotest.test_case "map_reduce fold order" `Quick
            test_map_reduce_order;
          prop_map_matches_sequential;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "propagate out of workers" `Quick
            test_exception_propagation;
        ] );
      ( "nesting",
        [
          Alcotest.test_case "nested submission" `Quick test_nested_no_deadlock;
          Alcotest.test_case "deep nesting" `Quick test_deeply_nested;
        ] );
      ( "state",
        [ Alcotest.test_case "per-worker init" `Quick test_init_per_worker ] );
      ("deadline", [ Alcotest.test_case "monotonic deadline" `Quick test_deadline ]);
      ( "lookahead",
        [
          Alcotest.test_case "adder optimize identical at -j1/-j4" `Slow
            test_table1_bit_identity;
        ] );
    ]
