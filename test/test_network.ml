(* Tests for the technology-independent network: clustering, level
   quantification, globals, and AIG round trips. *)

module Tt = Logic.Tt

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let random_aig ?(inputs = 6) ?(gates = 40) ?(outputs = 3) seed =
  let st = Random.State.make [| seed; inputs; gates |] in
  let g = Aig.create () in
  let ins = Array.init inputs (fun i -> Aig.add_input ~name:(Printf.sprintf "x%d" i) g) in
  let pool = ref (Array.to_list ins) in
  let pick () =
    let l = List.nth !pool (Random.State.int st (List.length !pool)) in
    if Random.State.bool st then Aig.bnot l else l
  in
  for _ = 1 to gates do
    pool := Aig.band g (pick ()) (pick ()) :: !pool
  done;
  for i = 0 to outputs - 1 do
    Aig.add_output g (Printf.sprintf "y%d" i) (pick ())
  done;
  g

let gen_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000)

(* --- structure ---------------------------------------------------------- *)

let test_build_eval () =
  let net = Network.create () in
  let a = Network.add_input ~name:"a" net in
  let b = Network.add_input ~name:"b" net in
  let c = Network.add_input ~name:"c" net in
  (* n = (a & b) | c as a single 3-input node *)
  let f =
    Tt.lor_ (Tt.land_ (Tt.var 3 0) (Tt.var 3 1)) (Tt.var 3 2)
  in
  let n = Network.add_node net [| a; b; c |] f in
  Network.add_output net "o" n;
  Network.add_output net "no" ~negated:true n;
  let out = Network.eval net [| true; true; false |] in
  Alcotest.(check bool) "o" true out.(0);
  Alcotest.(check bool) "no" false out.(1);
  let out = Network.eval net [| true; false; false |] in
  Alcotest.(check bool) "o2" false out.(0)

let prop_of_aig_direct =
  qtest "of_aig_direct preserves function" gen_seed (fun seed ->
      let g = random_aig seed in
      let net = Network.of_aig_direct g in
      List.for_all
        (fun m ->
          let bits = Array.init 6 (fun i -> (m lsr i) land 1 = 1) in
          Network.eval net bits = Aig.eval g bits)
        (List.init 64 Fun.id))

let prop_of_aig_clustered =
  qtest "of_aig (renode) preserves function" gen_seed (fun seed ->
      let g = random_aig seed in
      let net = Network.of_aig ~k:5 g in
      List.for_all
        (fun m ->
          let bits = Array.init 6 (fun i -> (m lsr i) land 1 = 1) in
          Network.eval net bits = Aig.eval g bits)
        (List.init 64 Fun.id))

let prop_roundtrip =
  qtest "of_aig |> to_aig is equivalent" gen_seed (fun seed ->
      let g = random_aig seed in
      let g' = Network.to_aig (Network.of_aig ~k:6 g) in
      Aig.Cec.equivalent g g')

let prop_cluster_bound =
  qtest "renode respects the fanin bound" gen_seed (fun seed ->
      let g = random_aig ~gates:60 seed in
      let k = 4 in
      let net = Network.of_aig ~k g in
      List.for_all
        (fun id ->
          Network.is_input net id
          || Array.length (Network.node net id).Network.fanins <= k)
        (Network.topo_order net))

(* --- levels (Sec. 3.1 quantification) ----------------------------------- *)

let test_tree_depth () =
  Alcotest.(check int) "empty" 0 (Network.Levels.tree_depth []);
  Alcotest.(check int) "singleton" 3 (Network.Levels.tree_depth [ 3 ]);
  Alcotest.(check int) "four zeros" 2 (Network.Levels.tree_depth [ 0; 0; 0; 0 ]);
  (* Huffman order: merging the two shallow leaves first wins. *)
  Alcotest.(check int) "skewed" 4 (Network.Levels.tree_depth [ 3; 0; 0 ]);
  Alcotest.(check int) "ripple chain" 4 (Network.Levels.tree_depth [ 0; 1; 2; 3 ])

let test_node_level_example () =
  (* The paper's carry node: c = g + p*cin with level(g)=level(p)=1 and a
     deep carry input. *)
  let net = Network.create () in
  let a = Network.add_input net and b = Network.add_input net in
  let deep = Network.add_input net in
  ignore (a, b);
  let gt = Tt.land_ (Tt.var 2 0) (Tt.var 2 1) in
  let pt = Tt.lor_ (Tt.var 2 0) (Tt.var 2 1) in
  let gn = Network.add_node net [| a; b |] gt in
  let pn = Network.add_node net [| a; b |] pt in
  let carry =
    (* c = g + p * cin over fanins [g; p; cin] *)
    Tt.lor_ (Tt.var 3 0) (Tt.land_ (Tt.var 3 1) (Tt.var 3 2))
  in
  let cn = Network.add_node net [| gn; pn; deep |] carry in
  Network.add_output net "c" cn;
  let levels = Network.Levels.compute net in
  Alcotest.(check int) "g level" 1 levels.(gn);
  Alcotest.(check int) "p level" 1 levels.(pn);
  (* deep input is level 0 here, so c = or(g, and(p, cin)) is 2 deep with
     the or absorbing the shallow g first. *)
  Alcotest.(check int) "carry level" 3 levels.(cn);
  let crit = Network.Levels.critical_inputs net ~levels cn in
  Alcotest.(check (list int)) "critical inputs are g and p" [ 0; 1 ] crit

let prop_levels_bound_aig_depth =
  qtest "direct-network levels match AIG depth growth" gen_seed (fun seed ->
      let g = random_aig seed in
      let net = Network.of_aig_direct g in
      (* With one AND per node, the network level of each node is at most
         the AIG level (min-SOP may see through to a cheaper polarity). *)
      let levels = Network.Levels.compute net in
      let depth_net =
        List.fold_left
          (fun acc (o : Network.output) -> max acc levels.(o.Network.node))
          0 (Network.outputs net)
      in
      depth_net <= Aig.depth g)

(* --- globals ------------------------------------------------------------ *)

let prop_globals =
  qtest "global BDDs match simulation" gen_seed (fun seed ->
      let g = random_aig ~inputs:5 ~gates:25 seed in
      let net = Network.of_aig ~k:4 g in
      let man = Bdd.create () in
      let globals = Network.Globals.of_net man net in
      let outs = Network.outputs net in
      List.for_all
        (fun m ->
          let bits = Array.init 5 (fun i -> (m lsr i) land 1 = 1) in
          let values = Network.eval_nodes net bits in
          List.for_all
            (fun (o : Network.output) ->
              let bdd = globals.(o.Network.node) in
              let restricted =
                List.fold_left
                  (fun acc i -> Bdd.restrict man acc i bits.(i))
                  bdd
                  (List.init 5 Fun.id)
              in
              Bdd.is_true man restricted = values.(o.Network.node))
            outs)
        (List.init 32 Fun.id))

let prop_cube_image =
  qtest ~count:25 "cube images are exact" gen_seed (fun seed ->
      let g = random_aig ~inputs:5 ~gates:20 seed in
      let net = Network.of_aig ~k:4 g in
      let man = Bdd.create () in
      let globals = Network.Globals.of_net man net in
      (* For every internal node and a sample cube, the image must contain
         exactly the inputs driving the fanins into the cube. *)
      List.for_all
        (fun id ->
          Network.is_input net id
          ||
          let nd = Network.node net id in
          let k = Array.length nd.Network.fanins in
          k = 0
          ||
          let cube = Logic.Cube.of_literals [ (0, true) ] in
          let image = Network.Globals.cube_image man globals net id cube in
          List.for_all
            (fun m ->
              let bits = Array.init 5 (fun i -> (m lsr i) land 1 = 1) in
              let values = Network.eval_nodes net bits in
              let inside = values.(nd.Network.fanins.(0)) in
              let in_image =
                Bdd.is_true man
                  (List.fold_left
                     (fun acc i -> Bdd.restrict man acc i bits.(i))
                     image
                     (List.init 5 Fun.id))
              in
              in_image = inside)
            (List.init 32 Fun.id))
        (Network.topo_order net))

(* --- incremental analyses ----------------------------------------------- *)

(* Random truth table of arity [k]. *)
let random_tt st k =
  let tt = ref (Tt.const_false k) in
  for m = 0 to (1 lsl k) - 1 do
    if Random.State.bool st then tt := Tt.lor_ !tt (Tt.of_minterms k [ m ])
  done;
  !tt

(* One random edit session: bursts of [set_func] edits (reported through
   [invalidate]) and [set_output] rewires (levels are per-node, so these
   must not need invalidation), with [check] called after each burst. *)
let edit_session ~seed ~rounds net ~invalidate ~check =
  let st = Random.State.make [| seed; 0x1e7e15 |] in
  let internal =
    Array.of_list
      (List.filter (fun id -> not (Network.is_input net id))
         (Network.topo_order net))
  in
  let ok = ref true in
  (* A degenerate draw (every output cone a bare input) has nothing to
     edit; the property holds vacuously instead of crashing Random.int. *)
  if Array.length internal = 0 then true
  else begin
  for _ = 1 to rounds do
    let dirty = ref [] in
    for _ = 1 to 1 + Random.State.int st 3 do
      let id = internal.(Random.State.int st (Array.length internal)) in
      let k = Array.length (Network.node net id).Network.fanins in
      Network.set_func net id (random_tt st k);
      invalidate id;
      dirty := id :: !dirty
    done;
    if Random.State.bool st then begin
      let i = Random.State.int st (Network.num_outputs net) in
      let id = internal.(Random.State.int st (Array.length internal)) in
      Network.set_output net i ~node:id ~negated:(Random.State.bool st)
    end;
    if not (check !dirty) then ok := false
  done;
  !ok
  end

let prop_inc_levels =
  qtest ~count:40 "incremental levels equal from-scratch under edits" gen_seed
    (fun seed ->
      let g = random_aig ~inputs:6 ~gates:40 seed in
      let net = Network.of_aig ~k:4 g in
      let inc = Network.Levels.Inc.create net in
      edit_session ~seed ~rounds:10 net
        ~invalidate:(Network.Levels.Inc.invalidate inc)
        ~check:(fun _ ->
          Network.Levels.Inc.levels inc = Network.Levels.compute net))

let prop_inc_globals =
  qtest ~count:25 "Globals.update equals of_net under edits" gen_seed
    (fun seed ->
      let g = random_aig ~inputs:5 ~gates:30 seed in
      let net = Network.of_aig ~k:4 g in
      let man = Bdd.create () in
      let fanouts = Network.fanouts net in
      let globals = ref (Network.Globals.of_net man net) in
      edit_session ~seed ~rounds:8 net
        ~invalidate:(fun _ -> ())
        ~check:(fun dirty ->
          let fresh = Network.Globals.update man !globals net ~dirty ~fanouts in
          globals := fresh;
          let scratch = Network.Globals.of_net man net in
          (* Hash consing: equal functions are pointer-equal edges. *)
          Array.for_all2 Bdd.equal fresh scratch))

let prop_inc_globals_member =
  qtest ~count:25 "Globals.update ~member equals of_net inside the cone"
    gen_seed (fun seed ->
      let g = random_aig ~inputs:5 ~gates:30 seed in
      let net = Network.of_aig ~k:4 g in
      let man = Bdd.create () in
      let fanouts = Network.fanouts net in
      (* Work inside one output's fanin cone, the bddpar / driver
         pattern: globals built with of_cluster, edits confined to the
         cone, updates masked to it. Out-of-mask entries are
         unspecified, so only in-cone entries are compared. *)
      let o = Network.output net 0 in
      let cone = Network.cone net o.Network.node in
      let member = Array.make (Network.num_nodes net) false in
      List.iter (fun id -> member.(id) <- true) cone;
      let editable =
        Array.of_list
          (List.filter (fun id -> not (Network.is_input net id)) cone)
      in
      Array.length editable = 0
      ||
      let globals = ref (Network.Globals.of_cluster man net ~nodes:cone) in
      let st = Random.State.make [| seed; 0x5c0e |] in
      let ok = ref true in
      for _ = 1 to 8 do
        let dirty = ref [] in
        for _ = 1 to 1 + Random.State.int st 3 do
          let id = editable.(Random.State.int st (Array.length editable)) in
          let k = Array.length (Network.node net id).Network.fanins in
          Network.set_func net id (random_tt st k);
          dirty := id :: !dirty
        done;
        globals :=
          Network.Globals.update man !globals net ~member ~dirty:!dirty
            ~fanouts;
        let scratch = Network.Globals.of_cluster man net ~nodes:cone in
        if
          not
            (List.for_all
               (fun id -> Bdd.equal !globals.(id) scratch.(id))
               cone)
        then ok := false
      done;
      !ok)

let test_globals_scratch_fallback () =
  (* Dirtying more than half of a scope must take the rebuild-all path
     (counted by globals.scratch_fallbacks) and still agree with a
     from-scratch build. *)
  let g = random_aig ~inputs:5 ~gates:30 7 in
  let net = Network.of_aig ~k:4 g in
  let man = Bdd.create () in
  let fanouts = Network.fanouts net in
  let internal =
    List.filter (fun id -> not (Network.is_input net id))
      (Network.topo_order net)
  in
  let globals = Network.Globals.of_net man net in
  let st = Random.State.make [| 0xfa11 |] in
  List.iter
    (fun id ->
      let k = Array.length (Network.node net id).Network.fanins in
      Network.set_func net id (random_tt st k))
    internal;
  Obs.enable ();
  let before =
    Obs.counter_value (Obs.snapshot ()) "globals.scratch_fallbacks"
  in
  let fresh =
    Network.Globals.update man globals net ~dirty:internal ~fanouts
  in
  let after =
    Obs.counter_value (Obs.snapshot ()) "globals.scratch_fallbacks"
  in
  Alcotest.(check bool) "fallback fired" true (after > before);
  Alcotest.(check bool)
    "fallback result equals from-scratch" true
    (Array.for_all2 Bdd.equal fresh (Network.Globals.of_net man net))

let prop_analysis_cache =
  qtest ~count:25 "Analysis agrees with from-scratch under edits" gen_seed
    (fun seed ->
      let g = random_aig ~inputs:6 ~gates:35 seed in
      let net = Network.of_aig ~k:4 g in
      let analysis = Network.Analysis.create net in
      let wiring_ok =
        Network.Analysis.fanouts analysis = Network.fanouts net
        && List.for_all
             (fun id ->
               Network.Analysis.cone analysis id = Network.cone net id
               && Network.Analysis.support_count analysis id
                  = List.length
                      (List.filter (Network.is_input net)
                         (Network.cone net id)))
             (Network.topo_order net)
      in
      wiring_ok
      && edit_session ~seed ~rounds:8 net
           ~invalidate:(Network.Analysis.invalidate analysis)
           ~check:(fun _ ->
             Network.Analysis.levels analysis = Network.Levels.compute net)
      (* Wiring caches survive the edits: functions don't change cones. *)
      && Network.Analysis.cone analysis (Network.num_nodes net - 1)
         = Network.cone net (Network.num_nodes net - 1))

let prop_analysis_for_copy =
  qtest ~count:25 "Analysis.for_copy seeds a correct child cache" gen_seed
    (fun seed ->
      let g = random_aig ~inputs:6 ~gates:35 seed in
      let net = Network.of_aig ~k:4 g in
      let analysis = Network.Analysis.create net in
      (* Edit the parent a little first so the child is seeded from
         repaired (not pristine) levels. *)
      let parent_ok =
        edit_session ~seed ~rounds:3 net
          ~invalidate:(Network.Analysis.invalidate analysis)
          ~check:(fun _ ->
            Network.Analysis.levels analysis = Network.Levels.compute net)
      in
      let copy = Network.copy net in
      let child = Network.Analysis.for_copy analysis copy in
      let child_ok =
        edit_session ~seed:(seed + 1) ~rounds:6 copy
          ~invalidate:(Network.Analysis.invalidate child)
          ~check:(fun _ ->
            Network.Analysis.levels child = Network.Levels.compute copy)
      in
      (* The parent cache is unaffected by the child's edits. *)
      parent_ok && child_ok
      && Network.Analysis.levels analysis = Network.Levels.compute net)

let () =
  Alcotest.run "network"
    [
      ( "structure",
        [
          Alcotest.test_case "build and eval" `Quick test_build_eval;
          prop_of_aig_direct;
          prop_of_aig_clustered;
          prop_roundtrip;
          prop_cluster_bound;
        ] );
      ( "levels",
        [
          Alcotest.test_case "tree_depth" `Quick test_tree_depth;
          Alcotest.test_case "carry node example" `Quick test_node_level_example;
          prop_levels_bound_aig_depth;
        ] );
      ( "globals", [ prop_globals; prop_cube_image ] );
      ( "incremental",
        [
          prop_inc_levels;
          prop_inc_globals;
          prop_inc_globals_member;
          Alcotest.test_case "scratch fallback on majority-dirty scope"
            `Quick test_globals_scratch_fallback;
          prop_analysis_cache;
          prop_analysis_for_copy;
        ] );
    ]
