(* Tests for lib/guard: the injection spec language, the budget hooks,
   and — the point of the subsystem — the driver's degradation ladder:
   for every fault class an injected fault yields a run that completes,
   stays CEC-equivalent to its input, and records exactly the injected
   rungs in the [Det] Obs counters, bit-identically at any -j.

   Every optimization here runs deadline-free (time_limit_s = infinity)
   unless the test is specifically about wall-clock expiry, so the only
   blowups are the injected ones and the counters are exact. *)

let options =
  { Lookahead.Driver.default with Lookahead.Driver.time_limit_s = infinity }

(* Every test leaves observation off, the sinks empty and injection
   disarmed, so tests are order-independent. *)
let quiesce () =
  Guard.Inject.disarm ();
  Obs.disable ();
  Obs.reset ()

(* Run [f] with [rules] armed; always disarm, even on failure. *)
let with_inject rules f =
  Guard.Inject.arm rules;
  Fun.protect ~finally:Guard.Inject.disarm f

let counters_of_run ?(options = options) spec g =
  Obs.reset ();
  Obs.enable ();
  let o =
    with_inject
      (Result.get_ok (Guard.Inject.of_string spec))
      (fun () -> Lookahead.Driver.optimize ~options g)
  in
  let snap = Obs.snapshot () in
  Obs.disable ();
  Alcotest.(check bool) "run stays CEC-equivalent" true
    (Aig.Cec.equivalent g o);
  (o, fun name -> Obs.counter_value snap name)

(* ------------------------------------------------------------------ *)
(* Injection spec language                                             *)
(* ------------------------------------------------------------------ *)

let test_spec_roundtrip () =
  quiesce ();
  let spec = "bdd@500,sat@3:r,deadline@7:driver.decompose" in
  let rules = Result.get_ok (Guard.Inject.of_string spec) in
  Alcotest.(check int) "three rules" 3 (List.length rules);
  Alcotest.(check string) "roundtrips" spec (Guard.Inject.to_string rules);
  let r = List.nth rules 2 in
  Alcotest.(check bool) "fault parsed" true
    (r.Guard.Inject.fault = Guard.Inject.Deadline_expire);
  Alcotest.(check int) "count parsed" 7 r.Guard.Inject.at;
  Alcotest.(check (option string)) "site parsed"
    (Some "driver.decompose") r.Guard.Inject.site;
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" bad)
        true
        (Result.is_error (Guard.Inject.of_string bad)))
    [ ""; "bdd"; "bdd@"; "bdd@x"; "bdd@0"; "frob@3"; "bdd@3:r:a:b" ]

let test_spec_seeded () =
  quiesce ();
  let a = Guard.Inject.seeded ~seed:42 in
  let b = Guard.Inject.seeded ~seed:42 in
  let c = Guard.Inject.seeded ~seed:43 in
  Alcotest.(check string) "same seed, same rules"
    (Guard.Inject.to_string a) (Guard.Inject.to_string b);
  Alcotest.(check bool) "rules non-empty" true (a <> []);
  (* Not a hard guarantee for every pair, but 42/43 differ. *)
  Alcotest.(check bool) "different seed, different rules" true
    (Guard.Inject.to_string a <> Guard.Inject.to_string c)

(* ------------------------------------------------------------------ *)
(* Budget hooks                                                        *)
(* ------------------------------------------------------------------ *)

let test_budget_limits () =
  quiesce ();
  Alcotest.(check int) "none is unlimited" max_int
    (Guard.bdd_ceiling Guard.none);
  let t =
    Guard.create
      { Guard.Budget.bdd_node_ceiling = 100; sat_conflict_ceiling = 5; sat_conflict_budget = 0 }
  in
  Alcotest.(check int) "bdd ceiling" 100 (Guard.bdd_ceiling t);
  Alcotest.(check int) "sat cap caps" 5 (Guard.sat_limit t ~requested:4000);
  Alcotest.(check int) "sat cap applies to unlimited" 5
    (Guard.sat_limit t ~requested:0);
  Alcotest.(check int) "smaller request stands" 3
    (Guard.sat_limit t ~requested:3);
  Alcotest.(check int) "no cap, request stands" 4000
    (Guard.sat_limit Guard.none ~requested:4000)

let test_divide () =
  quiesce ();
  let t =
    Guard.create
      { Guard.Budget.bdd_node_ceiling = 100; sat_conflict_ceiling = 5; sat_conflict_budget = 0 }
  in
  let parts = Guard.divide t 3 in
  Alcotest.(check int) "three parts" 3 (List.length parts);
  Alcotest.(check int) "shares sum to the total" 100
    (List.fold_left (fun acc p -> acc + Guard.bdd_ceiling p) 0 parts);
  List.iter
    (fun p ->
      Alcotest.(check int) "sat ceiling replicated, not divided" 5
        (Guard.sat_limit p ~requested:4000))
    parts;
  (* More parts than nodes: every share keeps the floor of 1, even
     though that over-commits the total. *)
  let tiny =
    Guard.create
      { Guard.Budget.bdd_node_ceiling = 2; sat_conflict_ceiling = 0; sat_conflict_budget = 0 }
  in
  List.iter
    (fun p -> Alcotest.(check int) "floor of one node" 1 (Guard.bdd_ceiling p))
    (Guard.divide tiny 5);
  (* Unlimited stays unlimited; [none] divides into inert guards. *)
  let unl =
    Guard.create
      { Guard.Budget.bdd_node_ceiling = 0; sat_conflict_ceiling = 0; sat_conflict_budget = 0 }
  in
  List.iter
    (fun p ->
      Alcotest.(check int) "unlimited share" max_int (Guard.bdd_ceiling p))
    (Guard.divide unl 4);
  List.iter
    (fun p ->
      Alcotest.(check int) "none share" max_int (Guard.bdd_ceiling p))
    (Guard.divide Guard.none 4);
  Alcotest.(check bool) "n = 0 rejected" true
    (try
       ignore (Guard.divide t 0);
       false
     with Invalid_argument _ -> true)

(* The floor-1 path spelled out: when the arms outnumber the node
   budget, every share is the 1-node floor and the shares over-commit
   the whole — [divide] documents this, and [divide_overcommits] is how
   a caller that can serialize instead (the portfolio arm splitter)
   detects it up front. *)
let test_divide_overcommit () =
  quiesce ();
  let mk ceiling =
    Guard.create
      {
        Guard.Budget.bdd_node_ceiling = ceiling;
        sat_conflict_ceiling = 0;
        sat_conflict_budget = 0;
      }
  in
  let t = mk 3 in
  let parts = Guard.divide t 8 in
  Alcotest.(check int) "eight parts" 8 (List.length parts);
  List.iter
    (fun p -> Alcotest.(check int) "each part is the floor" 1 (Guard.bdd_ceiling p))
    parts;
  Alcotest.(check int) "shares over-commit the 3-node whole" 8
    (List.fold_left (fun acc p -> acc + Guard.bdd_ceiling p) 0 parts);
  Alcotest.(check bool) "overcommit predicted" true
    (Guard.divide_overcommits t 8);
  Alcotest.(check bool) "n = ceiling still exact" false
    (Guard.divide_overcommits t 3);
  Alcotest.(check bool) "n < ceiling fine" false (Guard.divide_overcommits t 2);
  Alcotest.(check bool) "unlimited never over-commits" false
    (Guard.divide_overcommits (mk 0) 64);
  Alcotest.(check bool) "ungoverned never over-commits" false
    (Guard.divide_overcommits Guard.none 64);
  Alcotest.(check bool) "n = 0 rejected" true
    (try
       ignore (Guard.divide_overcommits t 0);
       false
     with Invalid_argument _ -> true)

let test_cumulative_sat_budget () =
  quiesce ();
  let t =
    Guard.create
      { Guard.Budget.bdd_node_ceiling = 0; sat_conflict_ceiling = 0;
        sat_conflict_budget = 10 }
  in
  (* The remainder caps every request; spending shrinks the remainder. *)
  Alcotest.(check int) "fresh budget caps request" 10
    (Guard.sat_limit t ~requested:4000);
  Guard.sat_spend t ~conflicts:7;
  Alcotest.(check int) "spend recorded" 7 (Guard.sat_spent t);
  Alcotest.(check int) "remainder caps request" 3
    (Guard.sat_limit t ~requested:4000);
  Alcotest.(check int) "smaller request stands" 2
    (Guard.sat_limit t ~requested:2);
  Alcotest.(check bool) "not yet exhausted" false (Guard.sat_exhausted t);
  Guard.sat_spend t ~conflicts:3;
  Alcotest.(check bool) "exhausted at the budget" true (Guard.sat_exhausted t);
  (* Overspend (a query granted the floor of 1 may overshoot) is benign. *)
  Guard.sat_spend t ~conflicts:5;
  Alcotest.(check bool) "still exhausted" true (Guard.sat_exhausted t);
  (* The per-query ceiling composes with the remainder: min wins. *)
  let both =
    Guard.create
      { Guard.Budget.bdd_node_ceiling = 0; sat_conflict_ceiling = 4;
        sat_conflict_budget = 10 }
  in
  Alcotest.(check int) "ceiling tighter than remainder" 4
    (Guard.sat_limit both ~requested:4000);
  Guard.sat_spend both ~conflicts:8;
  Alcotest.(check int) "remainder tighter than ceiling" 2
    (Guard.sat_limit both ~requested:4000);
  (* Inert guards never track spend and never exhaust. *)
  Guard.sat_spend Guard.none ~conflicts:1000;
  Alcotest.(check int) "none never spends" 0 (Guard.sat_spent Guard.none);
  Alcotest.(check bool) "none never exhausts" false
    (Guard.sat_exhausted Guard.none)

let test_cumulative_sat_budget_solver () =
  quiesce ();
  (* An exhausted budget makes [solve_limited] return [None] without
     touching the solver, exactly like an exhausted per-query cap. *)
  let t =
    Guard.create
      { Guard.Budget.bdd_node_ceiling = 0; sat_conflict_ceiling = 0;
        sat_conflict_budget = 5 }
  in
  let s = Sat.Solver.create () in
  Sat.Solver.add_clause s [ 1; 2 ];
  Sat.Solver.add_clause s [ -1; 2 ];
  Alcotest.(check bool) "first query answers" true
    (Sat.Solver.solve_limited ~guard:t ~conflict_limit:0 s
    = Some Sat.Solver.Sat);
  (* Drain the budget by hand (the easy queries above conflict little). *)
  Guard.sat_spend t ~conflicts:5;
  Alcotest.(check bool) "exhausted query yields no verdict" true
    (Sat.Solver.solve_limited ~guard:t ~conflict_limit:0 s = None);
  Alcotest.(check bool) "unguarded solver still answers" true
    (Sat.Solver.solve_limited ~conflict_limit:0 s = Some Sat.Solver.Sat)

let test_divide_splits_sat_budget () =
  quiesce ();
  let t =
    Guard.create
      { Guard.Budget.bdd_node_ceiling = 0; sat_conflict_ceiling = 0;
        sat_conflict_budget = 10 }
  in
  Guard.sat_spend t ~conflicts:4;
  let parts = Guard.divide t 3 in
  Alcotest.(check int) "shares sum to the whole budget" 10
    (List.fold_left (fun acc p -> acc + Guard.sat_limit p ~requested:0) 0 parts);
  List.iter
    (fun p ->
      Alcotest.(check int) "shares start unspent" 0 (Guard.sat_spent p))
    parts;
  (* Unlimited budgets divide into unlimited shares. *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "unlimited share" true
        (Guard.sat_limit p ~requested:0 = 0 || Guard.sat_limit p ~requested:0 > 1000))
    (Guard.divide Guard.none 4)

let test_bdd_real_ceiling () =
  quiesce ();
  (* A genuinely exhausted node budget raises a non-injected Blowup
     from the allocation point, with no injection armed at all. *)
  let guard =
    Guard.create
      { Guard.Budget.bdd_node_ceiling = 40; sat_conflict_ceiling = 0; sat_conflict_budget = 0 }
  in
  let man = Bdd.create ~guard () in
  let blown =
    try
      let acc = ref (Bdd.btrue man) in
      for i = 0 to 30 do
        acc := Bdd.bxor man !acc (Bdd.var man i)
      done;
      false
    with
    | Guard.Blowup { resource = Guard.Bdd_nodes; injected = false; _ } -> true
  in
  Alcotest.(check bool) "ceiling raises typed Blowup" true blown

let test_sat_injected_exhaustion () =
  quiesce ();
  let s = Sat.Solver.create () in
  Sat.Solver.add_clause s [ 1; 2 ];
  Sat.Solver.add_clause s [ -1; 2 ];
  let guard = Guard.create Guard.Budget.default in
  with_inject
    [ { Guard.Inject.fault = Guard.Inject.Sat_exhaust; at = 1; repeat = false;
        site = None } ]
    (fun () ->
      Alcotest.(check bool) "injected call exhausts" true
        (Sat.Solver.solve_limited ~guard ~conflict_limit:0 s = None);
      Alcotest.(check bool) "next call answers" true
        (Sat.Solver.solve_limited ~guard ~conflict_limit:0 s
        = Some Sat.Solver.Sat);
      Alcotest.(check bool) "unguarded call unaffected" true
        (Sat.Solver.solve_limited ~conflict_limit:0 s = Some Sat.Solver.Sat))

(* ------------------------------------------------------------------ *)
(* Degradation ladder, rung by rung                                    *)
(* ------------------------------------------------------------------ *)

(* Single-shot BDD fault, approximate entry rung (the default): every
   fire lands either on the ladder's approx→shrink descent or, for a
   job whose decomposition stayed under the trigger count, during
   reconstruction — and nowhere else. *)
let test_rung_shrink () =
  quiesce ();
  let g = Circuits.Adders.ripple_carry 8 in
  let _, c = counters_of_run "bdd@100" g in
  let injected = c "guard.injected.bdd_blowup" in
  Alcotest.(check bool) "fault actually fired" true (injected > 0);
  Alcotest.(check int) "every fire is a shrink or a reconstruct fallback"
    injected
    (c "guard.rung.shrink_window" + c "guard.reconstruct_fallbacks");
  Alcotest.(check int) "no approx rung from approx entry" 0
    (c "guard.rung.approx_spcf");
  Alcotest.(check int) "single-shot never reaches skip" 0
    (c "guard.rung.skip_output")

(* Single-shot BDD fault with the exact-SPCF entry rung: first (and
   only) fire per job lands on exact→approx. *)
let test_rung_exact_to_approx () =
  quiesce ();
  let g = Circuits.Adders.ripple_carry 4 in
  let options =
    { options with Lookahead.Driver.use_exact_spcf = true }
  in
  let _, c = counters_of_run ~options "bdd@25" g in
  let injected = c "guard.injected.bdd_blowup" in
  Alcotest.(check bool) "fault actually fired" true (injected > 0);
  Alcotest.(check int) "every fire is exact→approx or a late fallback"
    injected
    (c "guard.rung.approx_spcf" + c "guard.reconstruct_fallbacks");
  Alcotest.(check int) "shrink needs a second fire" 0
    (c "guard.rung.shrink_window");
  Alcotest.(check int) "skip needs a third fire" 0
    (c "guard.rung.skip_output")

(* Repeating BDD fault: jobs descend the whole ladder to the terminal
   skip rung and the run still completes, equivalent. *)
let test_rung_skip () =
  quiesce ();
  let g = Circuits.Adders.ripple_carry 16 in
  let _, c = counters_of_run "bdd@60:r" g in
  Alcotest.(check bool) "shrink rung recorded" true
    (c "guard.rung.shrink_window" > 0);
  Alcotest.(check bool) "terminal skip rung recorded" true
    (c "guard.rung.skip_output" > 0);
  Alcotest.(check bool) "skips cannot outnumber shrinks" true
    (c "guard.rung.skip_output" <= c "guard.rung.shrink_window")

(* Injected deadline expiry jumps straight to the terminal rung; the
   skipped outputs fall back to their pre-edit cones (that is what the
   equivalence check in [counters_of_run] pins down). *)
let test_rung_deadline_skip () =
  quiesce ();
  let g = Circuits.Adders.ripple_carry 8 in
  let _, c = counters_of_run "deadline@5" g in
  let injected = c "guard.injected.deadline" in
  Alcotest.(check bool) "fault actually fired" true (injected > 0);
  Alcotest.(check int) "every expiry is a skip" injected
    (c "guard.rung.skip_output");
  Alcotest.(check int) "no real deadline cut recorded" 0
    (c "guard.deadline_cuts")

(* Regression (PR 5): a deadline expiring between secondary
   simplification and reconstruction used to be able to hand a
   partially rewired residue onward. The site-filtered rule fires at
   the second decompose-loop check — i.e. after one full level of
   window + secondary editing, before reconstruction — and the output
   must come out restored to its pre-edit cone. *)
let test_deadline_mid_decompose_restores () =
  quiesce ();
  let g = Circuits.Adders.ripple_carry 8 in
  let _, c = counters_of_run "deadline@2:driver.decompose" g in
  Alcotest.(check bool) "mid-decompose expiry fired" true
    (c "guard.injected.deadline" > 0);
  Alcotest.(check int) "abandoned outputs were skipped whole"
    (c "guard.injected.deadline")
    (c "guard.rung.skip_output")

(* SAT budget exhaustion: the sweep merges less and the final check
   falls back to unbounded queries; verdicts are unaffected. *)
let test_sat_exhaustion_run () =
  quiesce ();
  let g = Circuits.Adders.ripple_carry 8 in
  let _, c = counters_of_run "sat@1:r" g in
  Alcotest.(check bool) "exhaustions recorded" true
    (c "guard.injected.sat_exhaust" > 0);
  Alcotest.(check int) "no ladder descent from sat faults" 0
    (c "guard.rung.skip_output")

(* A real (non-injected) wall-clock expiry mid-run: completion and
   equivalence still hold; counters are scheduling-dependent, so they
   are not asserted. *)
let test_real_deadline_cut () =
  quiesce ();
  let g = Circuits.Adders.ripple_carry 16 in
  let options =
    { options with Lookahead.Driver.time_limit_s = 0.02 }
  in
  let o = Lookahead.Driver.optimize ~options g in
  Alcotest.(check bool) "cut run stays CEC-equivalent" true
    (Aig.Cec.equivalent g o)

(* Mfs degrades whole: a blowup mid-pass returns the input unchanged. *)
let test_mfs_degrades () =
  quiesce ();
  Obs.reset ();
  Obs.enable ();
  let g = Circuits.Adders.ripple_carry 8 in
  let o =
    with_inject
      [ { Guard.Inject.fault = Guard.Inject.Bdd_blowup; at = 10; repeat = true;
          site = None } ]
      (fun () -> Lookahead.Mfs.run g)
  in
  let snap = Obs.snapshot () in
  Obs.disable ();
  Alcotest.(check int) "pass degraded exactly once" 1
    (Obs.counter_value snap "guard.mfs_degraded");
  Alcotest.(check bool) "input returned unchanged" true (o == g)

(* ------------------------------------------------------------------ *)
(* Fast-subset circuit: all three fault classes in one governed run    *)
(* ------------------------------------------------------------------ *)

let test_c432_all_faults () =
  quiesce ();
  let g = Circuits.Suite.build "C432" in
  (* One governed run per fault class — a combined spec would let the
     deadline rule kill each job before the BDD rule's threshold. The
     real limit only bounds the test; injection drives the faults. *)
  let options =
    { options with Lookahead.Driver.time_limit_s = 10.0 }
  in
  List.iter
    (fun (spec, counter) ->
      let _, c = counters_of_run ~options spec g in
      Alcotest.(check bool) (spec ^ " fired") true (c counter > 0))
    [
      ("bdd@150:r", "guard.injected.bdd_blowup");
      ("sat@1:r", "guard.injected.sat_exhaust");
      ("deadline@5", "guard.injected.deadline");
    ]

(* ------------------------------------------------------------------ *)
(* Bit-identity across -j with faults enabled                          *)
(* ------------------------------------------------------------------ *)

let test_jobs_identity_with_faults () =
  quiesce ();
  let g = Circuits.Adders.ripple_carry 16 in
  let rules =
    Result.get_ok (Guard.Inject.of_string "bdd@60:r,deadline@9")
  in
  let run j =
    Par.set_default_jobs j;
    Obs.reset ();
    Obs.enable ();
    let o =
      with_inject rules (fun () -> Lookahead.Driver.optimize ~options g)
    in
    let snap = Obs.snapshot () in
    Obs.disable ();
    (Aig.Io.blif_to_string o, Obs.det_subtree (Obs.report_json snap))
  in
  let blif1, det1 = run 1 in
  (match Obs.Json.member "counters" det1 with
  | Some (Obs.Json.Obj kvs) ->
    Alcotest.(check bool) "faulted run recorded degradations" true
      (List.exists
         (fun (k, v) ->
           String.length k >= 5
           && String.sub k 0 5 = "guard"
           && v <> Obs.Json.Int 0)
         kvs)
  | _ -> Alcotest.fail "det counters missing");
  let blif4, det4 = run 4 in
  Par.set_default_jobs 0;
  Alcotest.(check bool) "faulted circuit identical at -j 4" true
    (String.equal blif1 blif4);
  Alcotest.(check bool) "faulted det subtree identical at -j 4" true
    (Obs.Json.equal det1 det4);
  quiesce ()

let () =
  Alcotest.run "guard"
    [
      ( "inject spec",
        [
          Alcotest.test_case "parse / print roundtrip" `Quick
            test_spec_roundtrip;
          Alcotest.test_case "seeded rules deterministic" `Quick
            test_spec_seeded;
        ] );
      ( "budget hooks",
        [
          Alcotest.test_case "ceilings and caps" `Quick test_budget_limits;
          Alcotest.test_case "divide splits node budget" `Quick test_divide;
          Alcotest.test_case "divide floor-1 over-commit detected" `Quick
            test_divide_overcommit;
          Alcotest.test_case "cumulative sat budget" `Quick
            test_cumulative_sat_budget;
          Alcotest.test_case "cumulative budget gates the solver" `Quick
            test_cumulative_sat_budget_solver;
          Alcotest.test_case "divide splits sat budget" `Quick
            test_divide_splits_sat_budget;
          Alcotest.test_case "real bdd ceiling blows up typed" `Quick
            test_bdd_real_ceiling;
          Alcotest.test_case "injected sat exhaustion" `Quick
            test_sat_injected_exhaustion;
        ] );
      ( "degradation ladder",
        [
          Alcotest.test_case "bdd fault: approx→shrink rung" `Quick
            test_rung_shrink;
          Alcotest.test_case "bdd fault: exact→approx rung" `Quick
            test_rung_exact_to_approx;
          Alcotest.test_case "repeated bdd fault: terminal skip rung" `Quick
            test_rung_skip;
          Alcotest.test_case "injected deadline: skip rung" `Quick
            test_rung_deadline_skip;
          Alcotest.test_case "deadline mid-decompose restores cone" `Quick
            test_deadline_mid_decompose_restores;
          Alcotest.test_case "sat exhaustion run" `Quick
            test_sat_exhaustion_run;
          Alcotest.test_case "real deadline cut stays sound" `Quick
            test_real_deadline_cut;
          Alcotest.test_case "mfs degrades whole" `Quick test_mfs_degrades;
        ] );
      ( "fast subset",
        [
          Alcotest.test_case "C432: all fault classes, one run" `Slow
            test_c432_all_faults;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "-j identity with faults enabled" `Quick
            test_jobs_identity_with_faults;
        ] );
    ]
