(* Differential fuzzing across the whole pass pipeline: random circuits
   are pushed through random sequences of transformations and format
   round trips; every step must preserve the function (checked by CEC)
   and basic structural invariants. *)

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let random_aig ?(inputs = 6) ?(gates = 45) ?(outputs = 3) seed =
  let st = Random.State.make [| seed; inputs; gates |] in
  let g = Aig.create () in
  let ins = Array.init inputs (fun i -> Aig.add_input ~name:(Printf.sprintf "x%d" i) g) in
  let pool = ref (Array.to_list ins) in
  let pick () =
    let l = List.nth !pool (Random.State.int st (List.length !pool)) in
    if Random.State.bool st then Aig.bnot l else l
  in
  for _ = 1 to gates do
    pool := Aig.band g (pick ()) (pick ()) :: !pool
  done;
  for i = 0 to outputs - 1 do
    Aig.add_output g (Printf.sprintf "y%d" i) (pick ())
  done;
  g

(* Pool of transformations, all of which must be semantics-preserving. *)
let passes : (string * (Aig.t -> Aig.t)) list =
  [
    ("balance", Aig.Balance.run);
    ("rewrite-delay", fun g -> Aig.Rewrite.run ~objective:`Delay g);
    ("rewrite-area", fun g -> Aig.Rewrite.run ~objective:`Area g);
    ("sweep", fun g -> Aig.Sweep.sat_sweep g);
    ("resub", fun g -> Aig.Resub.run g);
    ("cleanup", Aig.cleanup);
    ("blif", fun g -> Aig.Io.read_blif (Aig.Io.blif_to_string g));
    ("aag", fun g -> Aig.Aiger.read_aag (Aig.Aiger.aag_to_string g));
    ("renode", fun g -> Network.to_aig (Network.of_aig ~k:5 g));
    ("egraph", fun g -> Egraph.optimize ~max_iters:2 ~cost:Egraph.Cost.levels g);
  ]

let gen_scenario =
  QCheck.make
    ~print:(fun (seed, picks) ->
      Printf.sprintf "seed=%d passes=[%s]" seed
        (String.concat ";"
           (List.map (fun i -> fst (List.nth passes i)) picks)))
    QCheck.Gen.(
      pair int
        (list_size (int_range 1 4) (int_bound (List.length passes - 1))))

let prop_pipeline =
  qtest ~count:120 "random pass pipelines preserve the function" gen_scenario
    (fun (seed, picks) ->
      let g = random_aig (abs seed mod 100000) in
      let result =
        List.fold_left
          (fun acc i ->
            let _, f = List.nth passes i in
            f acc)
          g picks
      in
      Aig.Cec.equivalent g result
      && Aig.num_inputs result = Aig.num_inputs g
      && List.length (Aig.outputs result) = List.length (Aig.outputs g))

let prop_pipeline_then_map =
  qtest ~count:30 "pipelines then mapping stays correct" gen_scenario
    (fun (seed, picks) ->
      let g = random_aig (abs seed mod 100000) in
      let result =
        List.fold_left
          (fun acc i -> (snd (List.nth passes i)) acc)
          g picks
      in
      Techmap.Mapper.check (Techmap.Mapper.map result))

let prop_optimize_after_pipeline =
  qtest ~count:10 "lookahead after arbitrary preprocessing" gen_scenario
    (fun (seed, picks) ->
      let g = random_aig ~gates:25 (abs seed mod 100000) in
      let pre =
        List.fold_left
          (fun acc i -> (snd (List.nth passes i)) acc)
          g picks
      in
      (* optimize asserts equivalence against its own input; also check
         against the original circuit. *)
      let opt = Lookahead.optimize pre in
      Aig.Cec.equivalent g opt)

(* Fault-randomizing mode: the same optimize-under-CEC property, but
   with a seeded random injection rule set armed — random fault class,
   site, trigger count and repetition. Whatever lands, the governed run
   must complete and stay equivalent; the degradation ladder is the
   only acceptable response to resource exhaustion. *)

let optimize_under_faults ~inject_seed g =
  Guard.Inject.arm (Guard.Inject.seeded ~seed:inject_seed);
  let opt =
    Fun.protect ~finally:Guard.Inject.disarm (fun () ->
        let options =
          {
            Lookahead.Driver.default with
            Lookahead.Driver.time_limit_s = infinity;
          }
        in
        Lookahead.Driver.optimize ~options g)
  in
  (* The verdict check runs unguarded, immune to any armed rules. *)
  Aig.Cec.equivalent g opt

let gen_faulted =
  QCheck.make
    ~print:(fun (seed, inject_seed) ->
      Printf.sprintf "seed=%d inject=%S" seed
        (Guard.Inject.to_string (Guard.Inject.seeded ~seed:inject_seed)))
    QCheck.Gen.(pair int (int_bound 100000))

let prop_optimize_under_faults =
  qtest ~count:25 "injected faults never break optimize" gen_faulted
    (fun (seed, inject_seed) ->
      optimize_under_faults ~inject_seed
        (random_aig ~gates:30 (abs seed mod 100000)))

(* Deterministic smoke subset for CI: a handful of pinned
   circuit/injection seeds, plus one MFS run under a repeating BDD
   fault (MFS degrades whole rather than rung by rung). *)
let test_faulted_smoke () =
  List.iter
    (fun (seed, inject_seed) ->
      Alcotest.(check bool)
        (Printf.sprintf "seed=%d inject_seed=%d" seed inject_seed)
        true
        (optimize_under_faults ~inject_seed (random_aig ~gates:30 seed)))
    [ (1, 11); (2, 23); (3, 37); (4, 59); (5, 73) ];
  let g = random_aig ~gates:30 6 in
  Guard.Inject.arm (Guard.Inject.seeded ~seed:97);
  let o = Fun.protect ~finally:Guard.Inject.disarm (fun () -> Lookahead.Mfs.run g) in
  Alcotest.(check bool) "mfs under faults stays equivalent" true
    (Aig.Cec.equivalent g o)

(* E-graph fault injection: a blowup at egraph.mk_enode or an injected
   deadline at egraph.saturate must land on the degrade-to-best-so-far
   rung — the run completes, stays equivalent, and the rung counter
   records the descent. *)

let egraph_faulted ~spec g =
  Obs.reset ();
  Obs.enable ();
  let out =
    Guard.Inject.arm (Result.get_ok (Guard.Inject.of_string spec));
    Fun.protect ~finally:Guard.Inject.disarm (fun () ->
        Egraph.optimize
          ~guard:(Guard.create Guard.Budget.default)
          ~cost:Egraph.Cost.levels g)
  in
  let snap = Obs.snapshot () in
  Obs.disable ();
  Obs.reset ();
  (out, fun name -> Obs.counter_value snap name)

let test_egraph_fault_rung () =
  List.iter
    (fun (spec, fired) ->
      let g = random_aig ~gates:30 7 in
      let out, c = egraph_faulted ~spec g in
      Alcotest.(check bool) (spec ^ ": fault fired") true (c fired > 0);
      Alcotest.(check bool) (spec ^ ": best-so-far rung taken") true
        (c "guard.rung.egraph_best_so_far" > 0);
      Alcotest.(check bool) (spec ^ ": stays equivalent") true
        (Aig.Cec.equivalent g out))
    [
      ("bdd@20:egraph.mk_enode", "guard.injected.bdd_blowup");
      ("deadline@1:egraph.saturate", "guard.injected.deadline");
    ]

(* Randomized variant: any seeded rule set, the governed e-graph run
   must complete and stay equivalent. *)
let prop_egraph_under_faults =
  qtest ~count:25 "injected faults never break the e-graph" gen_faulted
    (fun (seed, inject_seed) ->
      let g = random_aig ~gates:30 (abs seed mod 100000) in
      Guard.Inject.arm (Guard.Inject.seeded ~seed:inject_seed);
      let out =
        Fun.protect ~finally:Guard.Inject.disarm (fun () ->
            Egraph.optimize
              ~guard:(Guard.create Guard.Budget.default)
              ~cost:Egraph.Cost.levels g)
      in
      Aig.Cec.equivalent g out)

(* Faulted portfolio runs must stay bit-identical across -j: arm
   contexts are divided up front with private hit counters, so the same
   rule fires at the same tick no matter the schedule. *)
let portfolio_faulted_at jobs ~spec g =
  Par.set_default_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Par.set_default_jobs 0)
    (fun () ->
      Guard.Inject.arm (Result.get_ok (Guard.Inject.of_string spec));
      Fun.protect ~finally:Guard.Inject.disarm (fun () ->
          let out =
            Egraph.Portfolio.run
              ~options:
                {
                  Lookahead.Driver.default with
                  Lookahead.Driver.time_limit_s = infinity;
                }
              ~cost:Egraph.Cost.levels g
          in
          Aig.Io.blif_to_string ~model:"faulted" out))

let test_egraph_fault_det () =
  let g = random_aig ~gates:35 11 in
  List.iter
    (fun spec ->
      let seq = portfolio_faulted_at 1 ~spec g in
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "%s: identical at -j1/-j%d" spec jobs)
            seq
            (portfolio_faulted_at jobs ~spec g))
        [ 2; 4 ])
    [ "bdd@20:egraph.mk_enode"; "deadline@1:egraph.saturate" ]

let () =
  Alcotest.run "fuzz"
    [
      ( "pipelines",
        [ prop_pipeline; prop_pipeline_then_map; prop_optimize_after_pipeline ] );
      ( "faults",
        [
          prop_optimize_under_faults;
          Alcotest.test_case "fixed-seed faulted smoke subset" `Quick
            test_faulted_smoke;
        ] );
      ( "egraph faults",
        [
          Alcotest.test_case "injected blowup/deadline land on best-so-far"
            `Quick test_egraph_fault_rung;
          prop_egraph_under_faults;
          Alcotest.test_case "faulted portfolio identical across -j" `Slow
            test_egraph_fault_det;
        ] );
    ]
