(* Tests for lib/serve: protocol framing (partial reads, oversized and
   corrupt frames), codec totality, cancellable deadlines, BDD manager
   recycling (Bdd.reset / Bdd.Pool), per-job Obs.reset identity, the
   job engine end to end, and the socket server including
   disconnect-mid-job cancellation.

   Every optimization runs deadline-free (time_limit_s = Some 0.) so
   results cannot depend on wall-clock scheduling — the same convention
   as the identity gates. *)

module Frame = Serve.Frame
module Msg = Serve.Msg
module Engine = Serve.Engine

(* Every test leaves observation off, the sinks empty, injection
   disarmed and the manager pool drained, so tests are
   order-independent. *)
let quiesce () =
  Guard.Inject.disarm ();
  Obs.set_span_listener None;
  Obs.Journal.disable ();
  Obs.set_trace "";
  Obs.disable ();
  Obs.reset ();
  Bdd.Pool.clear ()

(* ------------------------------------------------------------------ *)
(* Framing                                                            *)
(* ------------------------------------------------------------------ *)

let frame_payload = function
  | Frame.Decoder.Frame p -> p
  | _ -> Alcotest.fail "expected a complete frame"

let test_frame_roundtrip () =
  List.iter
    (fun p ->
      let d = Frame.Decoder.create () in
      match Frame.Decoder.feed_string d (Frame.encode p) with
      | [ Frame.Decoder.Frame got ] ->
        Alcotest.(check string) "payload survives framing" p got
      | evs ->
        Alcotest.failf "expected exactly one frame, got %d events"
          (List.length evs))
    [ ""; "x"; "{\"type\":\"stats\"}"; String.make 100_000 'z';
      "newlines\nand\x00nulls" ]

let test_frame_roundtrip_qcheck =
  QCheck.Test.make ~count:200 ~name:"framing round-trips any payload"
    QCheck.(small_list string)
    (fun payloads ->
      let d = Frame.Decoder.create () in
      let wire = String.concat "" (List.map Frame.encode payloads) in
      let got = List.map frame_payload (Frame.Decoder.feed_string d wire) in
      got = payloads)

let test_frame_byte_at_a_time () =
  let payloads = [ "alpha"; ""; "gamma-gamma" ] in
  let wire = String.concat "" (List.map Frame.encode payloads) in
  let d = Frame.Decoder.create () in
  let got = ref [] in
  String.iter
    (fun c ->
      let b = Bytes.make 1 c in
      List.iter
        (fun e -> got := frame_payload e :: !got)
        (Frame.Decoder.feed d b 0 1))
    wire;
  Alcotest.(check (list string))
    "1-byte feeds reassemble every frame" payloads (List.rev !got)

let test_frame_split_header () =
  let wire = Frame.encode "hello" in
  let d = Frame.Decoder.create () in
  let part n m = Bytes.of_string (String.sub wire n m) in
  Alcotest.(check int)
    "no event on a partial header" 0
    (List.length (Frame.Decoder.feed d (part 0 2) 0 2));
  Alcotest.(check int) "two header bytes pending" 2 (Frame.Decoder.pending d);
  let rest = String.length wire - 2 in
  match Frame.Decoder.feed d (part 2 rest) 0 rest with
  | [ Frame.Decoder.Frame "hello" ] -> ()
  | _ -> Alcotest.fail "frame did not complete after the header arrived"

let test_frame_oversized_resumes () =
  let d = Frame.Decoder.create ~max_frame:8 () in
  let wire = Frame.encode (String.make 20 'a') ^ Frame.encode "ok" in
  (match Frame.Decoder.feed_string d wire with
  | [ Frame.Decoder.Oversized 20; Frame.Decoder.Frame "ok" ] -> ()
  | _ -> Alcotest.fail "oversized frame must be skipped, then resume");
  (* and the discard state must survive chunking too *)
  let d = Frame.Decoder.create ~max_frame:8 () in
  let evs = ref [] in
  String.iter
    (fun c ->
      let b = Bytes.make 1 c in
      evs := !evs @ Frame.Decoder.feed d b 0 1)
    wire;
  match !evs with
  | [ Frame.Decoder.Oversized 20; Frame.Decoder.Frame "ok" ] -> ()
  | _ -> Alcotest.fail "oversized skip must survive 1-byte chunking"

let test_frame_corrupt_poisons () =
  let d = Frame.Decoder.create () in
  let bad = Bytes.make 4 '\xff' in
  (match Frame.Decoder.feed d bad 0 4 with
  | [ Frame.Decoder.Corrupt _ ] -> ()
  | _ -> Alcotest.fail "negative length must be Corrupt");
  Alcotest.(check int)
    "poisoned decoder rejects further input" 0
    (List.length (Frame.Decoder.feed_string d (Frame.encode "x")))

(* ------------------------------------------------------------------ *)
(* Protocol codec                                                     *)
(* ------------------------------------------------------------------ *)

let submit_spec =
  {
    (Msg.submit_defaults
       ~source:(Msg.Adder { kind = "cla"; bits = 8 })
       ~tool:"lookahead")
    with
    Msg.budget =
      {
        Msg.bdd_node_ceiling = 1000;
        sat_conflict_ceiling = 7;
        sat_conflict_budget = 0;
        deadline_s = 2.5;
      };
    inject = Some "bdd@500:r";
    time_limit_s = Some 0.0;
    progress = true;
    want_blif = true;
    want_report = true;
  }

let requests =
  [
    Msg.Submit submit_spec;
    Msg.Submit
      (Msg.submit_defaults
         ~source:(Msg.Blif { name = "c17.blif"; text = ".model c17\n.end\n" })
         ~tool:"none");
    Msg.Submit
      (Msg.submit_defaults
         ~source:(Msg.Bench { name = "c17.bench"; text = "INPUT(a)\n" })
         ~tool:"resub");
    Msg.Submit (Msg.submit_defaults ~source:(Msg.Named "C432") ~tool:"mfs");
    Msg.Status 42;
    Msg.Cancel 7;
    Msg.Stats;
    Msg.Metrics;
    Msg.Trace 3;
    Msg.Shutdown;
  ]

let responses =
  [
    Msg.Submitted { id = 3; position = 1 };
    Msg.Job_status { id = 3; state = Msg.Queued; position = Some 0 };
    Msg.Job_status { id = 3; state = Msg.Running; position = None };
    Msg.Progress { id = 3; phase = "opt.round"; seq = 2 };
    Msg.Result
      {
        Msg.id = 3;
        circuit = "cla-adder-8";
        tool = "lookahead";
        state = Msg.Done;
        metrics =
          Some
            {
              Msg.pi = 17;
              po = 9;
              gates_before = 100;
              gates = 90;
              levels_before = 12;
              levels = 9;
              cells = 110;
              area = 123.5;
              delay_ps = 456.25;
              power_mw = 0.125;
            };
        degraded = true;
        error = None;
        blif = Some ".model x\n.end\n";
        report = Some (Obs.Json.Obj [ ("schema", Obs.Json.String "s") ]);
        wait_ms = 1.5;
        run_ms = 250.0;
      };
    Msg.Result
      {
        Msg.id = 4;
        circuit = "C432";
        tool = "sis";
        state = Msg.Failed;
        metrics = None;
        degraded = false;
        error = Some "boom";
        blif = None;
        report = None;
        wait_ms = 0.0;
        run_ms = 1.0;
      };
    Msg.Stats_reply
      {
        Msg.submitted = 10;
        completed = 7;
        failed = 1;
        cancelled = 2;
        rejected = 4;
        queued = 0;
        running = false;
        queue_capacity = 256;
        uptime_s = 12.25;
        interned_circuits = 3;
        pooled_managers = 2;
        slo =
          [
            {
              Msg.cls = "xs";
              objective_ms = 50.0;
              jobs = 6;
              breaches = 1;
              window = 100;
              window_breaches = 1;
              p50_ms = 12.5;
              p95_ms = 48.0;
              p99_ms = 61.25;
            };
            {
              Msg.cls = "s";
              objective_ms = 0.0;
              jobs = 1;
              breaches = 0;
              window = 100;
              window_breaches = 0;
              p50_ms = 200.0;
              p95_ms = 200.0;
              p99_ms = 200.0;
            };
          ];
      };
    Msg.Metrics_reply
      {
        text = "# TYPE lookahead_jobs_total counter\n";
        json = Obs.Json.Obj [ ("schema", Obs.Json.String "m") ];
      };
    Msg.Trace_reply
      {
        id = 3;
        trace = Obs.Json.Obj [ ("traceEvents", Obs.Json.List []) ];
      };
    Msg.Error_reply { code = "queue_full"; message = "full" };
    Msg.Shutdown_ack;
  ]

let test_request_roundtrip () =
  List.iter
    (fun r ->
      match Msg.request_of_string (Msg.encode_request r) with
      | Ok r' ->
        Alcotest.(check bool) "request survives the wire" true (r = r')
      | Error (c, m) -> Alcotest.failf "decode failed: %s: %s" c m)
    requests

let test_response_roundtrip () =
  List.iter
    (fun r ->
      match Msg.response_of_string (Msg.encode_response r) with
      | Ok r' ->
        Alcotest.(check bool) "response survives the wire" true (r = r')
      | Error (c, m) -> Alcotest.failf "decode failed: %s: %s" c m)
    responses

let test_malformed_payloads () =
  let check_err what input =
    match Msg.request_of_string input with
    | Ok _ -> Alcotest.failf "%s must not decode" what
    | Error (code, _) ->
      Alcotest.(check bool)
        (what ^ " yields a typed error code")
        true
        (String.length code > 0)
  in
  check_err "non-JSON" "{not json at all";
  check_err "JSON non-object" "[1,2,3]";
  check_err "missing type" "{\"id\": 3}";
  check_err "unknown type" "{\"type\": \"frobnicate\"}";
  check_err "bad field type" "{\"type\": \"status\", \"id\": \"three\"}";
  match Msg.request_of_string "{not json" with
  | Error ("parse", _) -> ()
  | _ -> Alcotest.fail "unparsable payloads must use the parse code"

(* ------------------------------------------------------------------ *)
(* Cancellable deadlines                                              *)
(* ------------------------------------------------------------------ *)

let test_deadline_cancel () =
  let d = Guard.Deadline.cancellable () in
  Alcotest.(check bool) "fresh handle alive" false (Guard.Deadline.expired d);
  Alcotest.(check bool)
    "fresh handle unbounded" true
    (Guard.Deadline.remaining_s d = infinity);
  Guard.Deadline.cancel d;
  Alcotest.(check bool) "cancel expires" true (Guard.Deadline.expired d);
  Alcotest.(check bool) "cancelled flag set" true (Guard.Deadline.cancelled d);
  Alcotest.(check (float 0.0))
    "no time remains" 0.0
    (Guard.Deadline.remaining_s d)

let test_deadline_bound_shares_cancel () =
  let d = Guard.Deadline.cancellable () in
  let b = Guard.Deadline.bound d 3600.0 in
  Alcotest.(check bool)
    "bound view has a finite allowance" true
    (Guard.Deadline.remaining_s b < infinity);
  Guard.Deadline.cancel d;
  Alcotest.(check bool)
    "cancelling the handle expires the bound view" true
    (Guard.Deadline.expired b);
  let d2 = Guard.Deadline.cancellable () in
  Alcotest.(check bool)
    "bound with no allowance is the handle itself" true
    (Guard.Deadline.bound d2 0.0 == d2)

let test_deadline_never_immune () =
  Guard.Deadline.cancel Guard.Deadline.never;
  Alcotest.(check bool)
    "the shared never deadline cannot be cancelled" false
    (Guard.Deadline.expired Guard.Deadline.never)

(* ------------------------------------------------------------------ *)
(* Manager recycling                                                  *)
(* ------------------------------------------------------------------ *)

(* A deterministic workload whose results and Det-relevant counters can
   be compared between a fresh and a recycled manager. *)
let bdd_workload m =
  let v i = Bdd.var m i in
  let x =
    List.fold_left (Bdd.band m) (Bdd.btrue m)
      (List.init 8 (fun i -> Bdd.bor m (v i) (v ((i + 3) mod 11))))
  in
  let y = Bdd.bxor m x (Bdd.ite m (v 9) x (v 10)) in
  let s = Bdd.stats m in
  ( Bdd.satcount m ~nvars:11 y,
    Bdd.size m y,
    s.Bdd.live_nodes,
    s.Bdd.ite_lookups,
    s.Bdd.ite_hits,
    s.Bdd.unique_growths )

let test_reset_restores_baseline () =
  let m = Bdd.create () in
  let _ = bdd_workload m in
  Bdd.reset m;
  let s = Bdd.stats m in
  Alcotest.(check int) "live nodes back to zero" 0 s.Bdd.live_nodes;
  Alcotest.(check int) "ite lookups zeroed" 0 s.Bdd.ite_lookups;
  Alcotest.(check int) "unique growths zeroed" 0 s.Bdd.unique_growths;
  Alcotest.(check int)
    "unique capacity back to creation size" (1 lsl 12) s.Bdd.unique_capacity;
  Alcotest.(check int) "transfer memo drained" 0 s.Bdd.transfer_memo_entries

let test_recycled_equals_fresh () =
  let fresh = bdd_workload (Bdd.create ()) in
  let m = Bdd.create () in
  (* Grow the manager with unrelated work, including enough conjuncts
     to force unique-table growth, then recycle. *)
  let junk =
    List.fold_left (Bdd.band m) (Bdd.btrue m)
      (List.init 40 (fun i ->
           Bdd.bxor m (Bdd.var m i) (Bdd.var m ((i * 7) mod 41))))
  in
  ignore (Bdd.size m junk);
  Bdd.reset m;
  let recycled = bdd_workload m in
  Alcotest.(check bool)
    "recycled manager reproduces the fresh run exactly (values and \
     Det counters)"
    true (fresh = recycled)

let test_pool_recycles () =
  Bdd.Pool.clear ();
  let m = Bdd.Pool.acquire () in
  let _ = bdd_workload m in
  Alcotest.(check int) "pool empty while in use" 0 (Bdd.Pool.size ());
  Bdd.Pool.release m;
  Alcotest.(check int) "released manager pooled" 1 (Bdd.Pool.size ());
  let m2 = Bdd.Pool.acquire () in
  Alcotest.(check bool) "acquire returns the pooled manager" true (m == m2);
  let s = Bdd.stats m2 in
  Alcotest.(check int) "recycled manager starts clean" 0 s.Bdd.live_nodes;
  Bdd.Pool.release m2;
  Bdd.Pool.clear ();
  Alcotest.(check int) "clear drains the pool" 0 (Bdd.Pool.size ())

let test_reset_invalidates_transfer_memo () =
  let a = Bdd.create () in
  let b = Bdd.create () in
  let x = Bdd.band a (Bdd.var a 0) (Bdd.var a 1) in
  let _ = Bdd.transfer ~src:a ~dst:b x in
  Bdd.reset a;
  (* After the reset [a] has a fresh uid, so [b]'s memo of the old
     incarnation cannot alias the new nodes. *)
  let y = Bdd.bor a (Bdd.var a 0) (Bdd.var a 2) in
  let y' = Bdd.transfer ~src:a ~dst:b y in
  Alcotest.(check (list int))
    "post-reset transfer is semantically correct" [ 0; 2 ]
    (Bdd.support b y');
  Alcotest.(check (float 0.0))
    "satcount agrees across the transfer" (Bdd.satcount a ~nvars:3 y)
    (Bdd.satcount b ~nvars:3 y')

(* ------------------------------------------------------------------ *)
(* Per-job observation reset                                          *)
(* ------------------------------------------------------------------ *)

let det_of_small_run () =
  Obs.reset ();
  Obs.enable ();
  let g = Circuits.Adders.carry_lookahead 8 in
  let options =
    { Lookahead.Driver.default with Lookahead.Driver.time_limit_s = infinity }
  in
  let o = Lookahead.optimize ~options g in
  let d = Obs.det_subtree (Obs.report_json (Obs.snapshot ())) in
  (o, d)

let test_obs_reset_back_to_back () =
  quiesce ();
  let o1, d1 = det_of_small_run () in
  let o2, d2 = det_of_small_run () in
  quiesce ();
  Alcotest.(check bool)
    "back-to-back runs yield identical circuits" true
    (Aig.Io.blif_to_string ~model:"m" o1 = Aig.Io.blif_to_string ~model:"m" o2);
  Alcotest.(check bool) "det subtree is non-trivial" true (d1 <> Obs.Json.Null);
  Alcotest.(check bool)
    "Obs.reset restores a fresh-process Det subtree" true
    (Obs.Json.equal d1 d2)

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

type sink = {
  m : Mutex.t;
  c : Condition.t;
  mutable events : Engine.event list; (* oldest first *)
}

let sink () = { m = Mutex.create (); c = Condition.create (); events = [] }

let sink_push s e =
  Mutex.lock s.m;
  s.events <- s.events @ [ e ];
  Condition.signal s.c;
  Mutex.unlock s.m

let wait_result s id =
  Mutex.lock s.m;
  let find () =
    List.find_map
      (function
        | Engine.Job_done { result; _ } when result.Msg.id = id -> Some result
        | _ -> None)
      s.events
  in
  let rec go () =
    match find () with
    | Some r -> r
    | None ->
      Condition.wait s.c s.m;
      go ()
  in
  let r = go () in
  Mutex.unlock s.m;
  r

let progress_count s id =
  Mutex.lock s.m;
  let n =
    List.length
      (List.filter
         (function
           | Engine.Job_progress { id = pid; _ } -> pid = id
           | _ -> false)
         s.events)
  in
  Mutex.unlock s.m;
  n

let small_job =
  {
    (Msg.submit_defaults
       ~source:(Msg.Adder { kind = "cla"; bits = 8 })
       ~tool:"lookahead")
    with
    Msg.time_limit_s = Some 0.0;
    want_blif = true;
    want_report = true;
  }

let test_engine_validation () =
  quiesce ();
  let e = Engine.create Engine.default_config in
  let bad spec what code =
    match Engine.submit e ~tenant:1 spec with
    | Error (c, _) -> Alcotest.(check string) what code c
    | Ok _ -> Alcotest.failf "%s must be rejected" what
  in
  bad { small_job with Msg.tool = "zap" } "unknown tool" "bad_request";
  bad
    { small_job with Msg.source = Msg.Named "nonesuch" }
    "unknown circuit" "bad_request";
  bad
    { small_job with Msg.source = Msg.Adder { kind = "weird"; bits = 8 } }
    "unknown adder kind" "bad_request";
  bad
    { small_job with Msg.inject = Some "gremlin@3" }
    "bad inject spec" "bad_request";
  bad
    { small_job with
      Msg.budget = { Msg.default_budget with Msg.sat_conflict_budget = -5 }
    }
    "negative sat budget" "bad_request";
  bad
    { small_job with
      Msg.budget = { Msg.default_budget with Msg.bdd_node_ceiling = -1 }
    }
    "negative node ceiling" "bad_request"

let test_engine_queue_full () =
  quiesce ();
  let e =
    Engine.create { Engine.queue_capacity = 1; reuse_managers = false }
  in
  (match Engine.submit e ~tenant:1 small_job with
  | Ok (id, 0) -> Alcotest.(check int) "first id" 1 id
  | _ -> Alcotest.fail "first submission must be admitted at position 0");
  match Engine.submit e ~tenant:1 small_job with
  | Error ("queue_full", _) -> ()
  | _ -> Alcotest.fail "second submission must hit queue_full"

let test_engine_queued_cancel () =
  quiesce ();
  let s = sink () in
  (* never started: the job stays queued, so cancel takes the
     queued-job path deterministically *)
  let e =
    Engine.create ~on_event:(sink_push s)
      { Engine.queue_capacity = 4; reuse_managers = false }
  in
  let id =
    match Engine.submit e ~tenant:7 small_job with
    | Ok (id, _) -> id
    | Error (c, m) -> Alcotest.failf "submit failed: %s: %s" c m
  in
  (match Engine.cancel e ~tenant:8 id with
  | Error ("not_owner", _) -> ()
  | _ -> Alcotest.fail "foreign tenants must not cancel the job");
  (match Engine.cancel e ~tenant:7 id with
  | Ok Msg.Cancelled -> ()
  | _ -> Alcotest.fail "owner cancel of a queued job must report Cancelled");
  (match Engine.status e id with
  | Some (Msg.Cancelled, None) -> ()
  | _ -> Alcotest.fail "status must show Cancelled");
  let r = wait_result s id in
  Alcotest.(check bool)
    "cancelled result delivered" true
    (r.Msg.state = Msg.Cancelled)

let test_engine_warm_identity () =
  quiesce ();
  let s = sink () in
  let e =
    Engine.create ~on_event:(sink_push s)
      { Engine.queue_capacity = 16; reuse_managers = true }
  in
  Engine.start e;
  let submit spec =
    match Engine.submit e ~tenant:1 spec with
    | Ok (id, _) -> id
    | Error (c, m) -> Alcotest.failf "submit failed: %s: %s" c m
  in
  let id1 = submit { small_job with Msg.progress = true } in
  let id2 = submit small_job in
  let r1 = wait_result s id1 in
  let r2 = wait_result s id2 in
  let st = Engine.stats e in
  Engine.stop e;
  (* cold after stop: nothing else records between reset and snapshot *)
  let cold = Engine.run_cold small_job in
  quiesce ();
  Alcotest.(check bool) "job 1 done" true (r1.Msg.state = Msg.Done);
  Alcotest.(check bool) "job 2 done" true (r2.Msg.state = Msg.Done);
  Alcotest.(check bool) "cold run done" true (cold.Msg.state = Msg.Done);
  Alcotest.(check bool)
    "progress events streamed for job 1" true
    (progress_count s id1 > 0);
  Alcotest.(check bool)
    "no progress events for job 2" true
    (progress_count s id2 = 0);
  Alcotest.(check bool)
    "warm jobs agree on the BLIF" true
    (r1.Msg.blif = r2.Msg.blif);
  Alcotest.(check bool)
    "warm BLIF identical to cold" true
    (r2.Msg.blif = cold.Msg.blif && r2.Msg.blif <> None);
  Alcotest.(check bool)
    "warm metrics identical to cold" true
    (r2.Msg.metrics = cold.Msg.metrics && r2.Msg.metrics <> None);
  let det r =
    match r.Msg.report with
    | Some j -> Obs.det_subtree j
    | None -> Obs.Json.Null
  in
  Alcotest.(check bool) "reports present" true (det r2 <> Obs.Json.Null);
  Alcotest.(check bool)
    "warm Det subtrees identical across back-to-back jobs" true
    (Obs.Json.equal (det r1) (det r2));
  Alcotest.(check bool)
    "warm Det subtree identical to cold" true
    (Obs.Json.equal (det r2) (det cold));
  Alcotest.(check bool)
    "completed stat counts both jobs" true (st.Msg.completed = 2);
  Alcotest.(check bool)
    "a manager was pooled" true
    (st.Msg.pooled_managers > 0);
  Alcotest.(check bool)
    "the generated circuit was interned" true
    (st.Msg.interned_circuits = 1)

let test_engine_faulted_warm_identity () =
  quiesce ();
  let faulted =
    {
      small_job with
      Msg.inject = Some "bdd@500:r";
      budget = { Msg.default_budget with Msg.bdd_node_ceiling = 30_000 };
    }
  in
  let s = sink () in
  let e =
    Engine.create ~on_event:(sink_push s)
      { Engine.queue_capacity = 16; reuse_managers = true }
  in
  Engine.start e;
  let id1 =
    match Engine.submit e ~tenant:1 faulted with
    | Ok (id, _) -> id
    | Error (c, m) -> Alcotest.failf "submit failed: %s: %s" c m
  in
  let id2 =
    match Engine.submit e ~tenant:1 small_job with
    | Ok (id, _) -> id
    | Error (c, m) -> Alcotest.failf "submit failed: %s: %s" c m
  in
  let r1 = wait_result s id1 in
  let r2 = wait_result s id2 in
  Engine.stop e;
  let cold_f = Engine.run_cold faulted in
  let cold_c = Engine.run_cold small_job in
  quiesce ();
  Alcotest.(check bool) "faulted job completes" true (r1.Msg.state = Msg.Done);
  Alcotest.(check bool) "faulted job degraded" true r1.Msg.degraded;
  Alcotest.(check bool)
    "faulted warm BLIF identical to faulted cold" true
    (r1.Msg.blif = cold_f.Msg.blif && r1.Msg.blif <> None);
  Alcotest.(check bool)
    "clean job after a faulted one is unpolluted" true
    (r2.Msg.blif = cold_c.Msg.blif && not r2.Msg.degraded);
  let det r =
    match r.Msg.report with
    | Some j -> Obs.det_subtree j
    | None -> Obs.Json.Null
  in
  Alcotest.(check bool)
    "faulted Det subtree identical warm vs cold" true
    (Obs.Json.equal (det r1) (det cold_f))

(* ------------------------------------------------------------------ *)
(* Telemetry                                                          *)
(* ------------------------------------------------------------------ *)

module Telemetry = Serve.Telemetry

(* Deterministic pseudo-random latencies spanning many buckets, all
   > 1 ms so none lands in the [0, 1] bucket whose lower edge is 0
   (where the factor-2 bound below would be vacuous). *)
let quantile_workload n =
  let state = ref 0x2545F491 in
  List.init n (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      1.5
      +. float_of_int (!state mod 4999)
      +. (float_of_int (!state mod 997) /. 1000.))

(* The interpolated estimate lands in the same power-of-two bucket as
   the exact order statistic, so it is within a factor of 2 of it. *)
let test_telemetry_quantiles () =
  let n = 200 in
  let values = quantile_workload n in
  let t = Telemetry.create () in
  List.iter
    (fun v ->
      Telemetry.record_result t ~cls:"m" ~state:"done" ~wait_ms:0.0 ~run_ms:v)
    values;
  let sorted = Array.of_list values in
  Array.sort compare sorted;
  let exact q =
    let rank = q *. float_of_int n in
    sorted.(max 0 (int_of_float (ceil rank) - 1))
  in
  let report =
    match
      List.find_opt (fun s -> s.Msg.cls = "m") (Telemetry.slo_report t)
    with
    | Some s -> s
    | None -> Alcotest.fail "class m missing from the SLO report"
  in
  Alcotest.(check int) "jobs recorded" n report.Msg.jobs;
  let close what est q =
    let ex = exact q in
    if not (est <= 2.0 *. ex && ex <= 2.0 *. est) then
      Alcotest.failf "%s estimate %g not within 2x of exact %g" what est ex
  in
  close "p50" report.Msg.p50_ms 0.50;
  close "p95" report.Msg.p95_ms 0.95;
  close "p99" report.Msg.p99_ms 0.99;
  Alcotest.(check bool)
    "quantile estimates are monotone" true
    (report.Msg.p50_ms <= report.Msg.p95_ms
    && report.Msg.p95_ms <= report.Msg.p99_ms)

(* Golden exposition text: a fixed set of observations must render to
   byte-identical Prometheus text (sorted iteration, %g floats). *)
let test_telemetry_exposition_golden () =
  let t = Telemetry.create ~slo:[ ("xs", 50.0) ] () in
  Telemetry.record_admit t ~tenant:1;
  Telemetry.record_admit t ~tenant:1;
  Telemetry.record_admit t ~tenant:2;
  Telemetry.record_reject t ~tenant:2;
  Telemetry.record_cancel t ~tenant:1;
  Telemetry.record_result t ~cls:"xs" ~state:"done" ~wait_ms:0.5 ~run_ms:3.0;
  Telemetry.record_result t ~cls:"xs" ~state:"done" ~wait_ms:2.0 ~run_ms:96.0;
  Telemetry.record_result t ~cls:"s" ~state:"failed" ~wait_ms:1.0 ~run_ms:12.0;
  Telemetry.absorb_counters t [ ("bdd.nodes", 100) ];
  let text, json =
    Telemetry.exposition t
      ~gauges:[ ("queue_depth", "Jobs waiting in the queue.", 2.0) ]
  in
  let golden =
    String.concat "\n"
      [
        "# HELP lookahead_jobs_total Completed jobs by final state.";
        "# TYPE lookahead_jobs_total counter";
        "lookahead_jobs_total{state=\"done\"} 2";
        "lookahead_jobs_total{state=\"failed\"} 1";
        "# HELP lookahead_tenant_jobs_total Per-tenant admission outcomes.";
        "# TYPE lookahead_tenant_jobs_total counter";
        "lookahead_tenant_jobs_total{tenant=\"1\",event=\"admitted\"} 2";
        "lookahead_tenant_jobs_total{tenant=\"1\",event=\"rejected\"} 0";
        "lookahead_tenant_jobs_total{tenant=\"1\",event=\"cancelled\"} 1";
        "lookahead_tenant_jobs_total{tenant=\"2\",event=\"admitted\"} 1";
        "lookahead_tenant_jobs_total{tenant=\"2\",event=\"rejected\"} 1";
        "lookahead_tenant_jobs_total{tenant=\"2\",event=\"cancelled\"} 0";
        "# HELP lookahead_queue_wait_ms Queue wait, admission to start, \
         milliseconds.";
        "# TYPE lookahead_queue_wait_ms histogram";
        "lookahead_queue_wait_ms_bucket{le=\"1\"} 2";
        "lookahead_queue_wait_ms_bucket{le=\"2\"} 3";
        "lookahead_queue_wait_ms_bucket{le=\"+Inf\"} 3";
        "lookahead_queue_wait_ms_sum 3.5";
        "lookahead_queue_wait_ms_count 3";
        "# HELP lookahead_job_run_ms Job execution wall clock by size class, \
         milliseconds.";
        "# TYPE lookahead_job_run_ms histogram";
        "lookahead_job_run_ms_bucket{class=\"xs\",le=\"1\"} 0";
        "lookahead_job_run_ms_bucket{class=\"xs\",le=\"2\"} 0";
        "lookahead_job_run_ms_bucket{class=\"xs\",le=\"4\"} 1";
        "lookahead_job_run_ms_bucket{class=\"xs\",le=\"8\"} 1";
        "lookahead_job_run_ms_bucket{class=\"xs\",le=\"16\"} 1";
        "lookahead_job_run_ms_bucket{class=\"xs\",le=\"32\"} 1";
        "lookahead_job_run_ms_bucket{class=\"xs\",le=\"64\"} 1";
        "lookahead_job_run_ms_bucket{class=\"xs\",le=\"128\"} 2";
        "lookahead_job_run_ms_bucket{class=\"xs\",le=\"+Inf\"} 2";
        "lookahead_job_run_ms_sum{class=\"xs\"} 99";
        "lookahead_job_run_ms_count{class=\"xs\"} 2";
        "lookahead_job_run_ms_bucket{class=\"s\",le=\"1\"} 0";
        "lookahead_job_run_ms_bucket{class=\"s\",le=\"2\"} 0";
        "lookahead_job_run_ms_bucket{class=\"s\",le=\"4\"} 0";
        "lookahead_job_run_ms_bucket{class=\"s\",le=\"8\"} 0";
        "lookahead_job_run_ms_bucket{class=\"s\",le=\"16\"} 1";
        "lookahead_job_run_ms_bucket{class=\"s\",le=\"+Inf\"} 1";
        "lookahead_job_run_ms_sum{class=\"s\"} 12";
        "lookahead_job_run_ms_count{class=\"s\"} 1";
        "# HELP lookahead_job_run_ms_quantile Interpolated run-latency \
         quantiles by size class.";
        "# TYPE lookahead_job_run_ms_quantile gauge";
        "lookahead_job_run_ms_quantile{class=\"xs\",q=\"0.5\"} 4";
        "lookahead_job_run_ms_quantile{class=\"xs\",q=\"0.95\"} 121.6";
        "lookahead_job_run_ms_quantile{class=\"xs\",q=\"0.99\"} 126.72";
        "lookahead_job_run_ms_quantile{class=\"s\",q=\"0.5\"} 12";
        "lookahead_job_run_ms_quantile{class=\"s\",q=\"0.95\"} 15.6";
        "lookahead_job_run_ms_quantile{class=\"s\",q=\"0.99\"} 15.92";
        "# HELP lookahead_slo_objective_ms Configured run-latency objective \
         by size class.";
        "# TYPE lookahead_slo_objective_ms gauge";
        "lookahead_slo_objective_ms{class=\"xs\"} 50";
        "# HELP lookahead_slo_breaches_total Jobs over their class objective \
         since start.";
        "# TYPE lookahead_slo_breaches_total counter";
        "lookahead_slo_breaches_total{class=\"xs\"} 1";
        "# HELP lookahead_slo_window_jobs Completed jobs in the rolling SLO \
         window.";
        "# TYPE lookahead_slo_window_jobs gauge";
        "lookahead_slo_window_jobs{class=\"xs\"} 2";
        "# HELP lookahead_slo_window_breaches Objective breaches in the \
         rolling SLO window.";
        "# TYPE lookahead_slo_window_breaches gauge";
        "lookahead_slo_window_breaches{class=\"xs\"} 1";
        "# HELP lookahead_obs_total Cumulative Obs counters over all \
         completed jobs.";
        "# TYPE lookahead_obs_total counter";
        "lookahead_obs_total{metric=\"bdd.nodes\"} 100";
        "# HELP lookahead_queue_depth Jobs waiting in the queue.";
        "# TYPE lookahead_queue_depth gauge";
        "lookahead_queue_depth 2";
        "";
      ]
  in
  Alcotest.(check string) "golden exposition text" golden text;
  match json with
  | Obs.Json.Obj fields ->
    Alcotest.(check bool)
      "JSON mirror carries the schema tag" true
      (List.assoc_opt "schema" fields
      = Some (Obs.Json.String "lookahead-metrics/1"))
  | _ -> Alcotest.fail "JSON mirror is not an object"

(* A fault-injected job must carry its trace id ("t<tenant>.j<id>")
   through the guard blowup site into the journal, and its Chrome-trace
   slice must be retrievable from the engine afterwards. *)
let test_trace_propagation () =
  quiesce ();
  let faulted =
    {
      small_job with
      Msg.inject = Some "bdd@500:r";
      budget = { Msg.default_budget with Msg.bdd_node_ceiling = 30_000 };
    }
  in
  let s = sink () in
  let e =
    Engine.create ~on_event:(sink_push s)
      { Engine.queue_capacity = 4; reuse_managers = true }
  in
  Obs.Journal.enable ();
  Engine.start e;
  let id =
    match Engine.submit e ~tenant:1 faulted with
    | Ok (id, _) -> id
    | Error (c, m) -> Alcotest.failf "submit failed: %s: %s" c m
  in
  let r = wait_result s id in
  Engine.stop e;
  let entries = Obs.Journal.entries () in
  let tr = Engine.job_trace e id in
  quiesce ();
  Alcotest.(check bool) "faulted job completes" true (r.Msg.state = Msg.Done);
  Alcotest.(check bool) "faulted job degraded" true r.Msg.degraded;
  let trace_id = Printf.sprintf "t%d.j%d" 1 id in
  let of_kind k = List.filter (fun e -> e.Obs.Journal.kind = k) entries in
  (match of_kind "guard.injected" with
  | [] -> Alcotest.fail "no guard.injected journal entry"
  | es ->
    List.iter
      (fun e ->
        Alcotest.(check string)
          "injection firing carries the job trace id" trace_id
          e.Obs.Journal.trace)
      es);
  List.iter
    (fun kind ->
      match of_kind kind with
      | [ e ] ->
        Alcotest.(check string)
          (kind ^ " carries the job trace id")
          trace_id e.Obs.Journal.trace
      | es ->
        Alcotest.failf "expected exactly one %s entry, got %d" kind
          (List.length es))
    [ "job.started"; "job.finished" ];
  (* Admission happens off the executor, so its entry carries the trace
     in the Sched payload rather than the (executor-owned) trace slot. *)
  (match of_kind "job.admitted" with
  | [ e ] -> (
    match e.Obs.Journal.sched with
    | Obs.Json.Obj fields ->
      Alcotest.(check bool)
        "admission Sched payload names the trace id" true
        (List.assoc_opt "trace" fields = Some (Obs.Json.String trace_id))
    | _ -> Alcotest.fail "admission entry has no Sched payload")
  | es ->
    Alcotest.failf "expected exactly one job.admitted entry, got %d"
      (List.length es));
  match tr with
  | Some (Obs.Json.Obj fields) -> (
    match List.assoc_opt "traceEvents" fields with
    | Some (Obs.Json.List evs) ->
      Alcotest.(check bool)
        "retained Chrome trace has events" true
        (List.length evs > 0)
    | _ -> Alcotest.fail "trace JSON lacks traceEvents")
  | _ -> Alcotest.fail "job_trace returned no trace for the finished job"

(* ------------------------------------------------------------------ *)
(* Socket server                                                      *)
(* ------------------------------------------------------------------ *)

let with_server f =
  quiesce ();
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve_test_%d_%d.sock" (Unix.getpid ()) (Random.int 100000))
  in
  let listening = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Serve.Server.run
          ~ready:(fun () -> Atomic.set listening true)
          (Serve.Server.default_config (`Unix sock)))
  in
  while not (Atomic.get listening) do
    Unix.sleepf 0.002
  done;
  Fun.protect
    ~finally:(fun () ->
      (* shut the server down if the test did not *)
      (try
         let c = Serve.Client.connect (`Unix sock) in
         Serve.Client.shutdown c;
         Serve.Client.close c
       with _ -> ());
      Domain.join server;
      quiesce ())
    (fun () -> f sock)

let test_server_end_to_end () =
  with_server (fun sock ->
      let c = Serve.Client.connect (`Unix sock) in
      let spec =
        {
          (Msg.submit_defaults
             ~source:(Msg.Adder { kind = "ripple"; bits = 8 })
             ~tool:"none")
          with
          Msg.time_limit_s = Some 0.0;
          want_blif = true;
        }
      in
      let _, r = Serve.Client.submit_wait c spec in
      Alcotest.(check bool) "job done over the socket" true
        (r.Msg.state = Msg.Done);
      Alcotest.(check bool) "metrics delivered" true (r.Msg.metrics <> None);
      Alcotest.(check bool) "blif delivered" true (r.Msg.blif <> None);
      let st = Serve.Client.stats c in
      Alcotest.(check int) "one job submitted" 1 st.Msg.submitted;
      Alcotest.(check int) "one job completed" 1 st.Msg.completed;
      (* protocol-level error: unknown tool *)
      Serve.Client.send c
        (Msg.Submit { spec with Msg.tool = "zap" });
      (match Serve.Client.recv c with
      | Msg.Error_reply { code = "bad_request"; _ } -> ()
      | _ -> Alcotest.fail "bad tool must answer bad_request");
      (* malformed JSON in a well-formed frame: typed parse error *)
      Serve.Client.send c Msg.Stats;
      ignore (Serve.Client.recv c);
      Serve.Client.close c)

let test_server_disconnect_cancels () =
  with_server (fun sock ->
      let a = Serve.Client.connect (`Unix sock) in
      let slow =
        {
          (Msg.submit_defaults
             ~source:(Msg.Adder { kind = "cla"; bits = 16 })
             ~tool:"lookahead")
          with
          Msg.time_limit_s = Some 0.0;
        }
      in
      Serve.Client.send a (Msg.Submit slow);
      Serve.Client.send a (Msg.Submit slow);
      let id_of () =
        match Serve.Client.recv a with
        | Msg.Submitted { id; _ } -> id
        | _ -> Alcotest.fail "expected Submitted"
      in
      let id1 = id_of () in
      let id2 = id_of () in
      (* vanish with one job running and one queued *)
      Serve.Client.close a;
      let b = Serve.Client.connect (`Unix sock) in
      let state_of id =
        Serve.Client.send b (Msg.Status id);
        match Serve.Client.recv b with
        | Msg.Job_status { state; _ } -> state
        | r ->
          Alcotest.failf "expected status, got %s"
            (Obs.Json.to_string (Msg.response_to_json r))
      in
      (* the queued job must be cancelled promptly *)
      let rec await_queued_cancel tries =
        match state_of id2 with
        | Msg.Cancelled -> ()
        | Msg.Queued when tries > 0 ->
          Unix.sleepf 0.01;
          await_queued_cancel (tries - 1)
        | st ->
          Alcotest.failf "queued job of a vanished tenant is %s"
            (Msg.state_name st)
      in
      await_queued_cancel 100;
      (* the running job winds down at its next cancellation point
         (or may already have finished — both are acceptable ends) *)
      let rec await_settled tries =
        match state_of id1 with
        | Msg.Cancelled | Msg.Done -> ()
        | (Msg.Running | Msg.Queued) when tries > 0 ->
          Unix.sleepf 0.05;
          await_settled (tries - 1)
        | st -> Alcotest.failf "running job stuck in %s" (Msg.state_name st)
      in
      await_settled 600;
      Serve.Client.close b)

(* ------------------------------------------------------------------ *)

let () =
  Random.self_init ();
  Alcotest.run "serve"
    [
      ( "frame",
        [
          Alcotest.test_case "round-trip" `Quick test_frame_roundtrip;
          QCheck_alcotest.to_alcotest test_frame_roundtrip_qcheck;
          Alcotest.test_case "byte-at-a-time" `Quick test_frame_byte_at_a_time;
          Alcotest.test_case "split header" `Quick test_frame_split_header;
          Alcotest.test_case "oversized resumes" `Quick
            test_frame_oversized_resumes;
          Alcotest.test_case "corrupt poisons" `Quick
            test_frame_corrupt_poisons;
        ] );
      ( "msg",
        [
          Alcotest.test_case "request round-trip" `Quick
            test_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "malformed payloads" `Quick
            test_malformed_payloads;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "cancel" `Quick test_deadline_cancel;
          Alcotest.test_case "bound shares cancellation" `Quick
            test_deadline_bound_shares_cancel;
          Alcotest.test_case "never immune" `Quick test_deadline_never_immune;
        ] );
      ( "bdd-recycling",
        [
          Alcotest.test_case "reset restores baseline" `Quick
            test_reset_restores_baseline;
          Alcotest.test_case "recycled equals fresh" `Quick
            test_recycled_equals_fresh;
          Alcotest.test_case "pool recycles" `Quick test_pool_recycles;
          Alcotest.test_case "reset invalidates transfer memo" `Quick
            test_reset_invalidates_transfer_memo;
        ] );
      ( "obs-reset",
        [
          Alcotest.test_case "back-to-back identical" `Slow
            test_obs_reset_back_to_back;
        ] );
      ( "engine",
        [
          Alcotest.test_case "validation" `Quick test_engine_validation;
          Alcotest.test_case "queue full" `Quick test_engine_queue_full;
          Alcotest.test_case "queued cancel" `Quick test_engine_queued_cancel;
          Alcotest.test_case "warm identity" `Slow test_engine_warm_identity;
          Alcotest.test_case "faulted warm identity" `Slow
            test_engine_faulted_warm_identity;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "quantiles vs exact" `Quick
            test_telemetry_quantiles;
          Alcotest.test_case "golden exposition" `Quick
            test_telemetry_exposition_golden;
          Alcotest.test_case "trace propagation" `Slow test_trace_propagation;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end" `Slow test_server_end_to_end;
          Alcotest.test_case "disconnect cancels" `Slow
            test_server_disconnect_cancels;
        ] );
    ]
