(* Benchmark harness: regenerates every table of the paper's evaluation
   and provides Bechamel micro-benchmarks for the synthesis kernels.

   Usage:
     dune exec bench/main.exe                 -- regenerate all tables (fast set)
     dune exec bench/main.exe table1          -- Table 1 only
     dune exec bench/main.exe table2          -- Table 2 (fast subset)
     dune exec bench/main.exe table2-full     -- Table 2, all 15 circuits
     dune exec bench/main.exe ablation        -- design-choice ablations
     dune exec bench/main.exe bechamel        -- wall-clock micro-benchmarks
     dune exec bench/main.exe bdd             -- BDD manager kernels + JSON
                                                 (BENCH_bdd.json / $BENCH_BDD_OUT)
     dune exec bench/main.exe egraph          -- portfolio vs each fixed
                                                 optimizer on the fast subset
                                                 minus C432, per-arm costs +
                                                 winner-BLIF md5, all-Det JSON
                                                 (BENCH_egraph.json /
                                                  $BENCH_EGRAPH_OUT)
     dune exec bench/main.exe profile         -- per-phase wall-clock breakdown
     dune exec bench/main.exe par             -- parallel-runtime scaling + JSON
                                                 (BENCH_par.json / $BENCH_PAR_OUT,
                                                  domain counts: $BENCH_PAR_JOBS)
     dune exec bench/main.exe incr            -- incremental analyses vs
                                                 from-scratch + JSON
                                                 (BENCH_incr.json / $BENCH_INCR_OUT)
     dune exec bench/main.exe bddpar          -- partitioned BDD engine vs
                                                 single-manager reference + JSON
                                                 (BENCH_bddpar.json /
                                                  $BENCH_BDDPAR_OUT; knobs:
                                                  $BENCH_BDDPAR_JOBS,
                                                  $BENCH_BDDPAR_CIRCUITS,
                                                  $BENCH_BDDPAR_MAX_NODES)
     dune exec bench/main.exe sat             -- incremental SAT core: the
                                                 sweep kernel (3x sat_sweep +
                                                 cec, Det stats + swept-BLIF
                                                 md5 vs the seed solver) and
                                                 SAT-bound cross-architecture
                                                 miters with before/after
                                                 speedups + JSON
                                                 (BENCH_sat.json /
                                                  $BENCH_SAT_OUT; knob:
                                                  $BENCH_SAT_MITERS)
     dune exec bench/main.exe serve           -- load-bench the job server:
                                                 mixed clean/faulted jobs over
                                                 one socket, p50/p95/p99 + a
                                                 warm-vs-cold identity sample
                                                 (BENCH_serve.json /
                                                  $BENCH_SERVE_OUT; knobs:
                                                  $BENCH_SERVE_JOBS,
                                                  $BENCH_SERVE_WINDOW,
                                                  $BENCH_SERVE_FAULT_EVERY)
     dune exec bench/main.exe obs             -- telemetry cost + journal
                                                 determinism: engine runs with
                                                 journaling off vs on (+ live
                                                 Metrics scrapes), then the
                                                 journal Det digest across
                                                 -j 1/4 and warm/cold
                                                 (BENCH_obs.json /
                                                  $BENCH_OBS_OUT; knobs:
                                                  $BENCH_OBS_JOBS,
                                                  $BENCH_OBS_ID_JOBS,
                                                  $BENCH_OBS_REPS)
     dune exec bench/main.exe all             -- everything (fast table2)

   Observation (lib/obs) plumbing:
     --stats / --report FILE / --trace FILE   -- record counters + phase spans
                                                 while running the targets and
                                                 export them at the end
     check-report FILE                        -- validate a --report JSON file
                                                 (schema, types, invariants)
     check-trace FILE                         -- validate a --trace JSON file
     check-exposition FILE                    -- validate a Prometheus-style
                                                 metrics exposition (the
                                                 server's `metrics` output)
     check-journal FILE                       -- validate a JSONL job journal
                                                 (--journal / Obs.Journal)
     compare-reports A B                      -- compare the deterministic
                                                 subtrees of two reports

   `-j N` (or `--jobs N`, or LOOKAHEAD_JOBS=N) sets the domain-pool
   size for every target; `-j 1` bypasses the pool entirely. Tables are
   bit-identical at any -j: every (circuit x tool) cell is an
   independent pool job that builds its circuit itself, and results are
   assembled in submission order (see lib/par). The one exception is
   the anytime deadline (Driver.options.time_limit_s): a run the
   deadline cuts short is a function of wall-clock scheduling by
   construction, so the `par` identity workload disables the deadline
   and drops the one fast-subset circuit (C432) whose run is only
   bounded by it.

   Absolute numbers differ from the paper (synthetic substrates, see
   DESIGN.md); the shape — which tool wins, by roughly what factor — is
   the reproduction target and is recorded in EXPERIMENTS.md. *)

let tools : (string * (Aig.t -> Aig.t)) list =
  [
    ("SIS", Baselines.sis_like);
    ("ABC", Baselines.abc_like);
    ("DC", Baselines.dc_like);
    ("Lookahead", fun g -> Lookahead.optimize g);
  ]

(* The same four tools with the lookahead anytime deadline disabled.
   The deadline makes cut-short results depend on wall-clock
   scheduling, so the cross-[-j] identity check in [par_bench] must run
   a workload where it can never fire. The driver terminates without it
   (the round loops are depth-improvement fixpoints with bounded
   budgets); the deadline only matters for circuits like C432 where
   convergence is slower than anyone wants to wait. *)
let tools_nolimit : (string * (Aig.t -> Aig.t)) list =
  List.map
    (fun (name, f) ->
      if String.equal name "Lookahead" then
        ( name,
          fun g ->
            Lookahead.optimize
              ~options:
                { Lookahead.Driver.default with time_limit_s = infinity }
              g )
      else (name, f))
    tools

type metrics = { gates : int; levels : int; delay : float; power : float }

let measure g =
  let netlist = Techmap.Mapper.map g in
  {
    gates = Aig.num_reachable_ands g;
    levels = Aig.depth g;
    delay = Techmap.Mapper.delay netlist;
    power = Techmap.Power.dynamic_mw netlist;
  }

(* ------------------------------------------------------------------ *)
(* Table 1: best AIG levels for n-bit ripple-carry adders.             *)
(* ------------------------------------------------------------------ *)

let table1 ?(tools = tools) () =
  print_endline
    "== Table 1: AIG levels after timing optimization, n-bit adders ==";
  Printf.printf "%-4s %-8s %-6s %-6s %-6s %-10s\n" "n" "Optimum" "SIS" "ABC"
    "DC" "Lookahead";
  let ns = [ 2; 4; 8; 16 ] in
  (* Every (adder size x tool) cell is one pool job. The job rebuilds
     its adder instead of sharing one graph across domains (generation
     is deterministic, so the results are unchanged); the CEC assert
     rides in the job and its failure propagates out of the await. *)
  let cells =
    Par.map_list
      (fun (n, (_, f)) ->
        let rca = Circuits.Adders.ripple_carry n in
        let o = f rca in
        assert (Aig.Cec.equivalent rca o);
        Aig.depth o)
      (List.concat_map (fun n -> List.map (fun t -> (n, t)) tools) ns)
  in
  List.iteri
    (fun i n ->
      let optimum = Circuits.Adders.optimum_levels n in
      match List.filteri (fun j _ -> j / List.length tools = i) cells with
      | [ sis; abc; dc; la ] ->
        Printf.printf "%-4d %-8d %-6d %-6d %-6d %-10d\n%!" n optimum sis abc
          dc la
      | _ -> assert false)
    ns;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Table 2: the 15-circuit comparison.                                 *)
(* ------------------------------------------------------------------ *)

let fast_subset =
  [
    "dalu"; "C432"; "C880"; "C1355"; "C1908"; "sparc_tlu_intctl_flat";
    "lsu_stb_ctl_flat";
  ]

let table2 ?(tools = tools) ?names ~full () =
  Printf.printf
    "== Table 2: comparison with the best SIS / ABC / DC results%s ==\n"
    (if full then "" else " (fast subset; use table2-full for all 15)");
  Printf.printf "%-24s %-7s | %25s | %25s | %25s | %25s\n" "" "" "SIS" "ABC"
    "DC" "Lookahead";
  Printf.printf
    "%-24s %-7s | %5s %4s %7s %6s | %5s %4s %7s %6s | %5s %4s %7s %6s | %5s %4s %7s %6s\n"
    "Name" "PI/PO" "gates" "lev" "delay" "power" "gates" "lev" "delay" "power"
    "gates" "lev" "delay" "power" "gates" "lev" "delay" "power";
  let names =
    match names with
    | Some ns -> ns
    | None ->
      if full then
        List.map
          (fun (i : Circuits.Suite.info) -> i.Circuits.Suite.name)
          Circuits.Suite.all
      else fast_subset
  in
  let sums = Hashtbl.create 8 in
  let add tool field v =
    let key = (tool, field) in
    let prev = try Hashtbl.find sums key with Not_found -> 0.0 in
    Hashtbl.replace sums key (prev +. v)
  in
  (* Fan out the (circuit x tool) cells on the pool. Each job builds
     its own circuit (Suite.build is deterministic), optimizes, checks
     equivalence and maps — nothing is shared across domains. Printing
     and the float accumulations stay sequential in submission order, so
     the table (sums included, addition order and all) is bit-identical
     at any -j. *)
  let cells =
    Par.map_list
      (fun (name, (_tool, f)) ->
        let g = Circuits.Suite.build name in
        let o = f g in
        assert (Aig.Cec.equivalent g o);
        measure o)
      (List.concat_map (fun n -> List.map (fun t -> (n, t)) tools) names)
  in
  List.iteri
    (fun i name ->
      let info = Circuits.Suite.find name in
      let row =
        List.filteri (fun j _ -> j / List.length tools = i) cells
      in
      List.iter2
        (fun (tool, _) m ->
          add tool "gates" (float_of_int m.gates);
          add tool "levels" (float_of_int m.levels);
          add tool "delay" m.delay;
          add tool "power" m.power)
        tools row;
      Printf.printf "%-24s %3d/%-3d" name info.Circuits.Suite.pi
        info.Circuits.Suite.po;
      List.iter
        (fun m ->
          Printf.printf " | %5d %4d %7.1f %6.3f" m.gates m.levels m.delay
            m.power)
        row;
      print_newline ();
      flush stdout)
    names;
  let n = float_of_int (List.length names) in
  Printf.printf "%-24s %7s" "Average" "";
  List.iter
    (fun (tool, _) ->
      Printf.printf " | %5.0f %4.1f %7.1f %6.3f"
        (Hashtbl.find sums (tool, "gates") /. n)
        (Hashtbl.find sums (tool, "levels") /. n)
        (Hashtbl.find sums (tool, "delay") /. n)
        (Hashtbl.find sums (tool, "power") /. n))
    tools;
  print_newline ();
  (* Headline reductions, paper Sec. 5: levels -40/-56/-22 %,
     mapped delay -21/-56/-10 %, power +10 % vs DC. *)
  let avg tool field = Hashtbl.find sums (tool, field) /. n in
  let reduction field against =
    100.0 *. (avg against field -. avg "Lookahead" field) /. avg against field
  in
  Printf.printf
    "\nLookahead level reduction: %+.0f%% vs SIS, %+.0f%% vs ABC, %+.0f%% vs \
     DC (paper: 40/56/22)\n"
    (reduction "levels" "SIS")
    (reduction "levels" "ABC")
    (reduction "levels" "DC");
  Printf.printf
    "Lookahead delay reduction: %+.0f%% vs SIS, %+.0f%% vs ABC, %+.0f%% vs DC \
     (paper: 21/56/10)\n"
    (reduction "delay" "SIS")
    (reduction "delay" "ABC")
    (reduction "delay" "DC");
  Printf.printf "Lookahead power vs DC    : %+.0f%% (paper: +10%%)\n\n"
    (100.0
    *. (avg "Lookahead" "power" -. avg "DC" "power")
    /. avg "DC" "power")

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices called out in DESIGN.md.            *)
(* ------------------------------------------------------------------ *)

let ablation () =
  print_endline "== Ablations (lookahead design choices) ==";
  let base = Lookahead.Driver.default in
  let variants =
    [
      ("default", base);
      ( "single-level (no Eqn.2 flattening)",
        { base with Lookahead.Driver.max_decomp_levels = 1 } );
      ("cluster k=4", { base with Lookahead.Driver.cluster_k = 4 });
      ("cluster k=8", { base with Lookahead.Driver.cluster_k = 8 });
      ( "exact SPCF (small circuits)",
        { base with Lookahead.Driver.use_exact_spcf = true } );
      ("one round", { base with Lookahead.Driver.max_rounds = 1 });
    ]
  in
  let circuits =
    [
      ("adder-6", Circuits.Adders.ripple_carry 6);
      ("adder-12", Circuits.Adders.ripple_carry 12);
      ("C432", Circuits.Suite.build "C432");
    ]
  in
  Printf.printf "%-36s" "variant";
  List.iter (fun (n, _) -> Printf.printf " %10s" n) circuits;
  print_newline ();
  List.iter
    (fun (vname, options) ->
      Printf.printf "%-36s" vname;
      List.iter
        (fun (_, g) ->
          let o = Lookahead.optimize ~options g in
          Printf.printf " %6d lev" (Aig.depth o))
        circuits;
      print_newline ();
      flush stdout)
    variants;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Extension experiments beyond the paper: other serial-prefix shapes.  *)
(* ------------------------------------------------------------------ *)

let extension () =
  print_endline
    "== Extension: lookahead on other serial-prefix structures ==";
  Printf.printf "%-18s %8s %10s %10s %10s\n" "circuit" "orig" "DC" "Lookahead"
    "reference";
  let cases =
    [
      ( "mult-array-4",
        Circuits.Arith.multiplier_array 4,
        Some (Aig.depth (Circuits.Arith.multiplier_wallace 4)) );
      ( "mult-array-6",
        Circuits.Arith.multiplier_array 6,
        Some (Aig.depth (Circuits.Arith.multiplier_wallace 6)) );
      ("comparator-16", Circuits.Arith.comparator 16, None);
      ("comparator-32", Circuits.Arith.comparator 32, None);
      ("parity-24", Circuits.Arith.parity_chain 24, None);
    ]
  in
  List.iter
    (fun (name, g, reference) ->
      let dc = Baselines.dc_like g in
      let la = Lookahead.optimize g in
      assert (Aig.Cec.equivalent g la);
      Printf.printf "%-18s %8d %10d %10d %10s\n%!" name (Aig.depth g)
        (Aig.depth dc) (Aig.depth la)
        (match reference with Some d -> string_of_int d | None -> "-"))
    cases;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* BDD manager benchmarks: bechamel micro-kernels for ite / compose /  *)
(* satcount plus single-shot end-to-end timings, emitted as JSON       *)
(* (BENCH_bdd.json, or $BENCH_BDD_OUT) so the perf trajectory is       *)
(* machine-readable across PRs. bench/check_regression.sh gates on it. *)
(* ------------------------------------------------------------------ *)

let run_bechamel tests =
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:20 ~quota:(Time.second 5.0) ~kde:None
      ~stabilize:false ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.sort compare
    (List.filter_map
       (fun (name, r) ->
         match Analyze.OLS.estimates r with
         | Some [ est ] -> Some (name, est)
         | Some _ | None -> None)
       rows)

(* All bench wall-clocks go through the one shared monotonic clock. *)
let wall f = snd (Obs.time f)

let bdd_bench () =
  let open Bechamel in
  let rca8 = Circuits.Adders.ripple_carry 8 in
  let net_rca8 = Network.of_aig ~k:6 rca8 in
  let c432 = Circuits.Suite.build "C432" in
  let net_c432 = Network.of_aig ~k:6 c432 in
  let tests =
    Test.make_grouped ~name:"bdd"
      [
        (* ite: the xor ladder keeps every recursion distinct, the
           conjunction layer adds non-trivial triples. *)
        Test.make ~name:"ite/xor-ladder-24"
          (Staged.stage (fun () ->
               let man = Bdd.create () in
               let acc = ref (Bdd.bfalse man) in
               for i = 0 to 23 do
                 acc := Bdd.bxor man !acc (Bdd.var man i)
               done;
               let f = ref (Bdd.btrue man) in
               for i = 0 to 22 do
                 f :=
                   Bdd.band man !f
                     (Bdd.bor man (Bdd.var man i)
                        (Bdd.bnot man (Bdd.var man (i + 1))))
               done;
               ignore (Bdd.band man !acc !f)));
        (* ite via apply_tt: global functions of the clustered adder. *)
        Test.make ~name:"ite/globals-adder8"
          (Staged.stage (fun () ->
               let man = Bdd.create () in
               ignore (Network.Globals.of_net man net_rca8)));
        Test.make ~name:"compose/carry-substitute"
          (Staged.stage (fun () ->
               let man = Bdd.create () in
               (* Ripple carry c16 over g/p vars, then substitute the
                  middle variable by a deep function. *)
               let c = ref (Bdd.var man 0) in
               for i = 0 to 15 do
                 let g = Bdd.var man (1 + (2 * i)) in
                 let p = Bdd.var man (2 + (2 * i)) in
                 c := Bdd.bor man g (Bdd.band man p !c)
               done;
               let deep =
                 Bdd.bxor man (Bdd.var man 33)
                   (Bdd.band man (Bdd.var man 34) (Bdd.var man 35))
               in
               ignore (Bdd.compose man !c 16 deep)));
        Test.make ~name:"satcount/adder8-globals"
          (Staged.stage (fun () ->
               let man = Bdd.create () in
               let globals = Network.Globals.of_net man net_rca8 in
               let nvars = Network.num_inputs net_rca8 in
               List.iter
                 (fun (o : Network.output) ->
                   ignore
                     (Bdd.satcount man ~nvars globals.(o.Network.node)))
                 (Network.outputs net_rca8)));
      ]
  in
  print_endline "== BDD micro-kernels (ns/run) ==";
  let micro = run_bechamel tests in
  List.iter
    (fun (name, est) ->
      Printf.printf "%-32s %12.0f ns  (%.3f s)\n" name est (est /. 1e9))
    micro;
  print_newline ();
  print_endline "== BDD end-to-end (wall-clock seconds) ==";
  let e2e =
    [
      ("globals-C432", wall (fun () -> Network.Globals.of_net (Bdd.create ()) net_c432));
      ("lookahead-adder8", wall (fun () -> Lookahead.optimize rca8));
      ("table1", wall table1);
    ]
  in
  List.iter (fun (name, s) -> Printf.printf "%-32s %10.3f s\n" name s) e2e;
  print_newline ();
  let out =
    match Sys.getenv_opt "BENCH_BDD_OUT" with
    | Some p -> p
    | None -> "BENCH_bdd.json"
  in
  let oc = open_out out in
  Printf.fprintf oc "{\n  \"schema\": \"bdd-bench/v1\",\n  \"micro\": [\n";
  let rec emit fmt = function
    | [] -> ()
    | [ x ] -> Printf.fprintf oc "%s\n" (fmt x)
    | x :: rest ->
      Printf.fprintf oc "%s,\n" (fmt x);
      emit fmt rest
  in
  emit
    (fun (name, est) ->
      Printf.sprintf "    {\"name\": \"%s\", \"ns_per_run\": %.1f}" name est)
    micro;
  Printf.fprintf oc "  ],\n  \"end_to_end\": [\n";
  emit
    (fun (name, s) ->
      Printf.sprintf "    {\"name\": \"%s\", \"seconds\": %.3f}" name s)
    e2e;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n\n" out

(* ------------------------------------------------------------------ *)
(* Parallel-runtime scaling: re-run table1 + the table2 fast subset at  *)
(* several domain-pool sizes, check the output is bit-identical to the  *)
(* -j 1 run, and emit the wall-clocks as JSON (BENCH_par.json, or       *)
(* $BENCH_PAR_OUT). bench/check_regression.sh gates on both properties. *)
(*                                                                      *)
(* The workload runs with the lookahead anytime deadline disabled and   *)
(* without C432 (see [tools_nolimit]): a deadline-cut result depends on *)
(* how much CPU the cell got before the wall-clock ran out, which is    *)
(* exactly the scheduling dependence the identity check exists to rule  *)
(* out of everything else.                                              *)
(* ------------------------------------------------------------------ *)

(* Capture everything printed by [f] so two runs can be compared
   byte-for-byte. The tables print through stdout directly, so swap the
   fd rather than threading a formatter through every table. *)
let with_captured_stdout f =
  let tmp = Filename.temp_file "bench_par" ".txt" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  (try
     f ();
     restore ()
   with e ->
     restore ();
     Sys.remove tmp;
     raise e);
  let ic = open_in_bin tmp in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  text

let par_bench () =
  let jobs_list =
    match Sys.getenv_opt "BENCH_PAR_JOBS" with
    | Some s ->
      let tokens =
        List.filter
          (fun t -> t <> "")
          (String.split_on_char ' '
             (String.map (function ',' -> ' ' | c -> c) s))
      in
      let js = List.filter_map int_of_string_opt tokens in
      (* A typo'd list must not silently fall back to the full (and
         expensive) default set. *)
      if List.length js <> List.length tokens || js = [] then begin
        Printf.eprintf
          "bench par: BENCH_PAR_JOBS='%s' is not a list of integers\n" s;
        exit 2
      end;
      js
    | None -> [ 1; 2; 4; 8 ]
  in
  Printf.printf
    "== Parallel runtime scaling (table1 + table2 fast subset sans \
     C432, no deadline), host domains: %d ==\n%!"
    (Domain.recommended_domain_count ());
  let names =
    List.filter (fun n -> not (String.equal n "C432")) fast_subset
  in
  let workload () =
    table1 ~tools:tools_nolimit ();
    table2 ~tools:tools_nolimit ~names ~full:false ()
  in
  let runs =
    List.map
      (fun j ->
        Par.set_default_jobs j;
        let text, dt = Obs.time (fun () -> with_captured_stdout workload) in
        Printf.printf "-j %-2d  %8.1f s\n%!" j dt;
        (j, dt, text))
      jobs_list
  in
  Par.set_default_jobs 0;
  let _, base_dt, base_text =
    match List.find_opt (fun (j, _, _) -> j = 1) runs with
    | Some r -> r
    | None -> List.hd runs
  in
  let rows =
    List.map
      (fun (j, dt, text) -> (j, dt, String.equal text base_text))
      runs
  in
  Printf.printf "\n%-6s %10s %9s %10s\n" "jobs" "seconds" "speedup"
    "identical";
  List.iter
    (fun (j, dt, same) ->
      Printf.printf "%-6d %10.1f %8.2fx %10s\n" j dt (base_dt /. dt)
        (if same then "yes" else "NO"))
    rows;
  print_newline ();
  let out =
    match Sys.getenv_opt "BENCH_PAR_OUT" with
    | Some p -> p
    | None -> "BENCH_par.json"
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"par-bench/v1\",\n\
    \  \"workload\": \"table1+table2-fast-sans-C432-nolimit\",\n\
    \  \"host_domains\": %d,\n\
    \  \"runs\": [\n"
    (Domain.recommended_domain_count ());
  let rec emit = function
    | [] -> ()
    | (j, dt, same) :: rest ->
      Printf.fprintf oc
        "    {\"jobs\": %d, \"seconds\": %.3f, \"identical\": %b}%s\n" j dt
        same
        (if rest = [] then "" else ",");
      emit rest
  in
  emit rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n\n" out;
  if not (List.for_all (fun (_, _, same) -> same) rows) then begin
    prerr_endline "par: output differs across -j values";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Incremental-analysis benchmark: per-phase timings of the dirty-      *)
(* region engines (cached cones, incremental levels, Globals.update,    *)
(* batched SPCF) against their from-scratch equivalents, on the Table 2 *)
(* fast subset, with identical-result checks. Emitted as JSON           *)
(* (BENCH_incr.json, or $BENCH_INCR_OUT); check_regression.sh gates on  *)
(* identity and on incremental being no slower in total.                *)
(* ------------------------------------------------------------------ *)

let incr_bench () =
  print_endline
    "== Incremental analyses vs from-scratch (Table 2 fast subset) ==";
  Printf.printf "%-24s %-8s %10s %10s %8s %10s\n" "circuit" "phase"
    "scratch(s)" "incr(s)" "speedup" "identical";
  (* The edit script models the driver's workload: repeated small
     function edits inside one output's cone, each followed by a level /
     globals query. Minterm set/clear edits keep the functions close to
     the originals (the shape a minimization pass produces), so the
     dirty region the incremental engines must repair is realistic. *)
  let num_edits = 12 and cone_repeats = 5 in
  let edit_script net =
    let internal =
      Array.of_list
        (List.filter
           (fun id -> not (Network.is_input net id))
           (Network.topo_order net))
    in
    List.init num_edits (fun i ->
        let id = internal.(i * Array.length internal / num_edits) in
        let nd = Network.node net id in
        let k = Array.length nd.Network.fanins in
        let m = Logic.Tt.of_minterms k [ id mod (1 lsl k) ] in
        let func =
          if i mod 2 = 0 then Logic.Tt.lor_ nd.Network.func m
          else Logic.Tt.land_ nd.Network.func (Logic.Tt.lnot m)
        in
        (id, func))
  in
  let all_rows = ref [] in
  List.iter
    (fun name ->
      let g = Circuits.Suite.build name in
      let net = Network.of_aig ~k:6 g in
      let outs = Network.outputs net in
      let levels0 = Network.Levels.compute net in
      let deepest =
        List.fold_left
          (fun (acc : Network.output) (o : Network.output) ->
            if levels0.(o.Network.node) > levels0.(acc.Network.node) then o
            else acc)
          (List.hd outs) outs
      in
      let row phase scratch_s incr_s identical =
        Printf.printf "%-24s %-8s %10.4f %10.4f %7.1fx %10s\n%!" name phase
          scratch_s incr_s
          (scratch_s /. Float.max 1e-9 incr_s)
          (if identical then "yes" else "NO");
        all_rows := (name, phase, scratch_s, incr_s, identical) :: !all_rows
      in
      (* --- cones: repeated per-output queries, raw walk vs cache. --- *)
      let t_scr =
        wall (fun () ->
            for _ = 1 to cone_repeats do
              List.iter
                (fun (o : Network.output) ->
                  ignore (Network.cone net o.Network.node))
                outs
            done)
      in
      let analysis = Network.Analysis.create net in
      let t_inc =
        wall (fun () ->
            for _ = 1 to cone_repeats do
              List.iter
                (fun (o : Network.output) ->
                  ignore (Network.Analysis.cone analysis o.Network.node))
                outs
            done)
      in
      let same =
        List.for_all
          (fun (o : Network.output) ->
            Network.Analysis.cone analysis o.Network.node
            = Network.cone net o.Network.node)
          outs
      in
      row "cone" t_scr t_inc same;
      (* --- levels: per-edit full recompute vs dirty-region repair. --- *)
      let net_lv = Network.copy net in
      let edits = edit_script net_lv in
      let inc = Network.Levels.Inc.create net_lv in
      ignore (Network.Levels.Inc.levels inc);
      let t_scr = ref 0.0 and t_inc = ref 0.0 and same = ref true in
      List.iter
        (fun (id, func) ->
          Network.set_func net_lv id func;
          let want = ref [||] in
          t_scr := !t_scr +. wall (fun () -> want := Network.Levels.compute net_lv);
          let got = ref [||] in
          t_inc :=
            !t_inc
            +. wall (fun () ->
                   Network.Levels.Inc.invalidate inc id;
                   got := Network.Levels.Inc.levels inc);
          if !got <> !want then same := false)
        edits;
      row "levels" !t_scr !t_inc !same;
      (* --- globals: per-edit of_net vs dirty-region update. Separate
         managers so neither run warms the other's caches; identity is
         checked by hash consing inside the incremental manager. --- *)
      let net_gl = Network.copy net in
      let edits = edit_script net_gl in
      let fanouts = Network.fanouts net_gl in
      let man_scr = Bdd.create () and man_inc = Bdd.create () in
      ignore (Network.Globals.of_net man_scr net_gl);
      let globals = ref (Network.Globals.of_net man_inc net_gl) in
      let t_scr = ref 0.0 and t_inc = ref 0.0 in
      List.iter
        (fun (id, func) ->
          Network.set_func net_gl id func;
          t_scr :=
            !t_scr
            +. wall (fun () -> ignore (Network.Globals.of_net man_scr net_gl));
          t_inc :=
            !t_inc
            +. wall (fun () ->
                   globals :=
                     Network.Globals.update man_inc !globals net_gl
                       ~dirty:[ id ] ~fanouts))
        edits;
      let same =
        Array.for_all2 Bdd.equal !globals
          (Network.Globals.of_net man_inc net_gl)
      in
      row "globals" !t_scr !t_inc same;
      (* --- SPCF: per-late-node boolean differences vs the batched
         backward-substitution pass. --- *)
      let delta = levels0.(deepest.Network.node) in
      let late =
        Timing.Spcf.late_nodes net ~levels:levels0 ~out:deepest ~delta
          ~max_nodes:24
      in
      let man_scr = Bdd.create () in
      let globals_scr = Network.Globals.of_net man_scr net in
      let t_scr =
        wall (fun () ->
            ignore
              (List.fold_left
                 (fun acc wrt ->
                   Bdd.bor man_scr acc
                     (Timing.Spcf.boolean_difference man_scr net globals_scr
                        ~wrt ~out:deepest))
                 (Bdd.bfalse man_scr) late))
      in
      let man_inc = Bdd.create () in
      let globals_inc = Network.Globals.of_net man_inc net in
      let spcf_inc = ref (Bdd.bfalse man_inc) in
      let t_inc =
        wall (fun () ->
            spcf_inc :=
              Timing.Spcf.approx man_inc net globals_inc ~levels:levels0
                ~out:deepest ~delta ~max_nodes:24 ~analysis ())
      in
      let spcf_ref =
        List.fold_left
          (fun acc wrt ->
            Bdd.bor man_inc acc
              (Timing.Spcf.boolean_difference man_inc net globals_inc ~wrt
                 ~out:deepest))
          (Bdd.bfalse man_inc) late
      in
      row "spcf" t_scr t_inc (Bdd.equal !spcf_inc spcf_ref))
    fast_subset;
  let rows = List.rev !all_rows in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let total_scr = total (fun (_, _, s, _, _) -> s) in
  let total_inc = total (fun (_, _, _, i, _) -> i) in
  let all_same = List.for_all (fun (_, _, _, _, same) -> same) rows in
  Printf.printf
    "\nTOTAL analysis time: from-scratch %.3f s, incremental %.3f s \
     (%.1fx), identical: %s\n\n"
    total_scr total_inc
    (total_scr /. Float.max 1e-9 total_inc)
    (if all_same then "yes" else "NO");
  let out =
    match Sys.getenv_opt "BENCH_INCR_OUT" with
    | Some p -> p
    | None -> "BENCH_incr.json"
  in
  let oc = open_out out in
  Printf.fprintf oc "{\n  \"schema\": \"incr-bench/v1\",\n  \"rows\": [\n";
  let rec emit = function
    | [] -> ()
    | (name, phase, s, i, same) :: rest ->
      Printf.fprintf oc
        "    {\"circuit\": \"%s\", \"phase\": \"%s\", \"scratch_s\": %.6f, \
         \"incr_s\": %.6f, \"identical\": %b}%s\n"
        name phase s i same
        (if rest = [] then "" else ",");
      emit rest
  in
  emit rows;
  Printf.fprintf oc
    "  ],\n\
    \  \"totals\": {\"scratch_s\": %.6f, \"incr_s\": %.6f, \"speedup\": \
     %.3f, \"all_identical\": %b}\n\
     }\n"
    total_scr total_inc
    (total_scr /. Float.max 1e-9 total_inc)
    all_same;
  close_out oc;
  Printf.printf "wrote %s\n\n" out;
  if not all_same then begin
    prerr_endline "incr: incremental result differs from from-scratch";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Partitioned parallel BDD engine (lib/bddpar): whole-circuit globals *)
(* + per-output SPCF, single-manager reference vs the partitioned      *)
(* engine at several -j, with value-identity checks via Bdd.transfer   *)
(* into one comparison manager. Emitted as JSON (BENCH_bddpar.json or  *)
(* $BENCH_BDDPAR_OUT); check_regression.sh gate 6 requires identity at *)
(* every -j and no slowdown at -j 1, and — on hosts with >= 4 domains  *)
(* — at least one circuit with >= 1.5x combined speedup at the top -j. *)
(* On single-core hosts the speedup clause is skipped (the partitioned *)
(* runs then serialize, duplicated shared-cone work and all, which is  *)
(* exactly what the partition balance figures in the JSON predict).    *)
(* ------------------------------------------------------------------ *)

let bddpar_bench () =
  let jobs_list =
    match Sys.getenv_opt "BENCH_BDDPAR_JOBS" with
    | Some s ->
      let tokens =
        List.filter
          (fun t -> t <> "")
          (String.split_on_char ' '
             (String.map (function ',' -> ' ' | c -> c) s))
      in
      let js = List.filter_map int_of_string_opt tokens in
      if List.length js <> List.length tokens || js = [] then begin
        Printf.eprintf
          "bench bddpar: BENCH_BDDPAR_JOBS='%s' is not a list of integers\n" s;
        exit 2
      end;
      js
    | None -> [ 1; 2; 4 ]
  in
  let circuits =
    match Sys.getenv_opt "BENCH_BDDPAR_CIRCUITS" with
    | Some s ->
      List.filter
        (fun t -> t <> "")
        (String.split_on_char ' '
           (String.map (function ',' -> ' ' | c -> c) s))
    | None -> fast_subset
  in
  (* Smaller late-node cap than the driver default: the workload runs
     every output's SPCF (the driver touches only critical ones), and
     the bench repeats it once per pool size. Identical across all runs
     of one invocation, so identity and speedup stay apples-to-apples. *)
  let max_nodes =
    match Sys.getenv_opt "BENCH_BDDPAR_MAX_NODES" with
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | _ ->
        Printf.eprintf
          "bench bddpar: BENCH_BDDPAR_MAX_NODES='%s' is not a positive int\n"
          s;
        exit 2)
    | None -> 8
  in
  Printf.printf
    "== Partitioned BDD engine: globals + SPCF, reference vs -j %s \
     (max_nodes %d), host domains: %d ==\n\
     %-24s %-6s %-5s %8s | %10s %10s %10s | %s\n%!"
    (String.concat "/" (List.map string_of_int jobs_list))
    max_nodes
    (Domain.recommended_domain_count ())
    "circuit" "outs" "parts" "balance" "ref-glob" "ref-spcf" "ref-total"
    "runs (jobs: s, speedup, identical)";
  let rows = ref [] in
  List.iter
    (fun name ->
      let g = Circuits.Suite.build name in
      let net = Network.of_aig ~k:6 g in
      let outs = Array.of_list (Network.outputs net) in
      let levels = Network.Levels.compute net in
      let delta (o : Network.output) = levels.(o.Network.node) in
      (* Partition shape, for the balance prediction in the JSON (the
         achievable speedup is bounded by total/max partition work). *)
      let parts = Network.Partition.compute net in
      let psizes =
        Array.map
          (fun (c : Network.Partition.cluster) ->
            List.length c.Network.Partition.nodes)
          parts
      in
      let psum = Array.fold_left ( + ) 0 psizes in
      let pmax = Array.fold_left max 1 psizes in
      let balance = float_of_int psum /. float_of_int pmax in
      (* Single-manager reference, phases timed separately. *)
      let man_ref = Bdd.create () in
      let ref_globals = ref [||] in
      (* Full majors before each timed region: the live heap grows run
         over run (reference manager, comparison manager, transferred
         copies), and letting earlier runs' garbage bleed into later
         runs' GC slices would skew the -j 1 vs reference comparison
         that gate 6 enforces. *)
      Gc.full_major ();
      let t_glob =
        wall (fun () -> ref_globals := Network.Globals.of_net man_ref net)
      in
      let analysis = Network.Analysis.create net in
      let ref_results = Array.make (Array.length outs) (Bdd.bfalse man_ref) in
      let t_spcf =
        wall (fun () ->
            Array.iteri
              (fun i (o : Network.output) ->
                ref_results.(i) <-
                  (if Network.is_input net o.Network.node then
                     Bdd.bfalse man_ref
                   else
                     Timing.Spcf.approx man_ref net !ref_globals ~levels
                       ~out:o ~delta:(delta o) ~max_nodes ~analysis ()))
              outs)
      in
      let t_ref = t_glob +. t_spcf in
      (* Comparison manager: reference results transferred once; each
         run's results transferred and compared — canonicity makes
         function equality an integer compare once both sides live in
         one manager. *)
      let cmp = Bdd.create () in
      let ref_in_cmp =
        Array.mapi
          (fun i (o : Network.output) ->
            ( Bdd.transfer ~src:man_ref ~dst:cmp
                !ref_globals.(o.Network.node),
              Bdd.transfer ~src:man_ref ~dst:cmp ref_results.(i) ))
          outs
      in
      let runs =
        List.map
          (fun j ->
            Par.set_default_jobs j;
            let dst = Bdd.create () in
            let results = ref [||] in
            Gc.full_major ();
            let secs =
              wall (fun () ->
                  results := Bddpar.analyze ~max_nodes ~delta ~dst net)
            in
            let identical =
              Array.for_all2
                (fun (rg, rs) (r : Bddpar.result) ->
                  Bdd.equal rg (Bdd.transfer ~src:dst ~dst:cmp r.Bddpar.global)
                  && Bdd.equal rs
                       (Bdd.transfer ~src:dst ~dst:cmp r.Bddpar.spcf))
                ref_in_cmp !results
            in
            (j, secs, t_ref /. Float.max 1e-9 secs, identical))
          jobs_list
      in
      Printf.printf "%-24s %-6d %-5d %7.2fx | %10.4f %10.4f %10.4f | %s\n%!"
        name (Array.length outs) (Array.length parts) balance t_glob t_spcf
        t_ref
        (String.concat "  "
           (List.map
              (fun (j, s, sp, id) ->
                Printf.sprintf "%d: %.3fs %.2fx %s" j s sp
                  (if id then "ok" else "DIFF"))
              runs));
      rows :=
        (name, Array.length outs, Array.length parts, psum, pmax, balance,
         t_glob, t_spcf, t_ref, runs)
        :: !rows)
    circuits;
  Par.set_default_jobs 0;
  let rows = List.rev !rows in
  let all_identical =
    List.for_all
      (fun (_, _, _, _, _, _, _, _, _, runs) ->
        List.for_all (fun (_, _, _, id) -> id) runs)
      rows
  in
  let top_j = List.fold_left max 1 jobs_list in
  let best_speedup =
    List.fold_left
      (fun acc (_, _, _, _, _, _, _, _, _, runs) ->
        List.fold_left
          (fun acc (j, _, sp, _) -> if j = top_j then Float.max acc sp else acc)
          acc runs)
      0.0 rows
  in
  let out =
    match Sys.getenv_opt "BENCH_BDDPAR_OUT" with
    | Some p -> p
    | None -> "BENCH_bddpar.json"
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"bddpar-bench/v1\",\n\
    \  \"host_domains\": %d,\n\
    \  \"max_nodes\": %d,\n\
    \  \"rows\": [\n"
    (Domain.recommended_domain_count ())
    max_nodes;
  let rec emit = function
    | [] -> ()
    | (name, nouts, nparts, psum, pmax, balance, tg, ts, tt, runs) :: rest ->
      Printf.fprintf oc
        "    {\"circuit\": \"%s\", \"outputs\": %d, \"partitions\": %d, \
         \"partition_nodes_sum\": %d, \"partition_nodes_max\": %d, \
         \"balance\": %.3f,\n\
        \     \"reference\": {\"globals_s\": %.6f, \"spcf_s\": %.6f, \
         \"total_s\": %.6f},\n\
        \     \"runs\": [\n%s]}%s\n"
        name nouts nparts psum pmax balance tg ts tt
        (* One run object per line: check_regression.sh's awk keys each
           run's fields off its own "jobs": N line. *)
        (String.concat ",\n"
           (List.map
              (fun (j, s, sp, id) ->
                Printf.sprintf
                  "       {\"jobs\": %d, \"seconds\": %.6f, \"speedup\": \
                   %.3f, \"identical\": %b}"
                  j s sp id)
              runs))
        (if rest = [] then "" else ",");
      emit rest
  in
  emit rows;
  Printf.fprintf oc
    "  ],\n\
    \  \"top_jobs\": %d,\n\
    \  \"best_speedup_at_top_jobs\": %.3f,\n\
    \  \"all_identical\": %b\n\
     }\n"
    top_j best_speedup all_identical;
  close_out oc;
  Printf.printf "wrote %s\n\n" out;
  if not all_identical then begin
    prerr_endline
      "bddpar: partitioned result differs from single-manager reference";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Incremental SAT bench (gate 8): the solver in both of its roles.    *)
(* ------------------------------------------------------------------ *)

(* Two workloads. The sweep rows repeat the production kernel — three
   rounds of [Sweep.sat_sweep] plus the final [Cec.check] — on the
   Table 2 fast subset; they pin the swept BLIF (machine-independent
   md5) and the full Det solver-stat vector, and they are where the
   database-reduction machinery must demonstrably fire. The miter rows
   are cross-architecture equivalence checks whose runtime is almost
   entirely SAT conflicts; they carry the before/after speedup claim.

   Seed baselines were measured at commit 0f72870 (the pre-arena
   solver) on the reference container with this exact workload. The
   md5s are portable; the seconds are indicative — gate 8 only
   requires the miter total to stay under the seed total, which leaves
   a multiple-fold margin for a slower host. *)
let sat_sweep_seed =
  [
    ("dalu", 0.0233, "6ebd418a26fff74d8d6635ae960001a8");
    ("C880", 0.0070, "4182a947200edcbcbfddac1532f4c3d9");
    ("C1355", 0.0108, "bce60baac0ecb1425c7b4a46d1696960");
    ("C1908", 0.0032, "b5efa926f8f7dcdd0027a9fef3c5a2de");
    ("sparc_tlu_intctl_flat", 0.0079, "bfe6a1ec67d45a911c961f1a4454648b");
    ("lsu_stb_ctl_flat", 0.0184, "324d833bf6d0548de1678bd2a6246c1d");
  ]

let sat_miter_seed =
  [
    ("add32_rca_cla", 0.049);
    ("add64_rca_csel", 0.040);
    ("mult6", 1.475);
    ("mult7", 14.857);
    ("mult8", 278.55);
  ]

let sat_miter_build = function
  | "add32_rca_cla" ->
    (Circuits.Adders.ripple_carry 32, Circuits.Adders.carry_lookahead 32)
  | "add64_rca_csel" ->
    (Circuits.Adders.ripple_carry 64, Circuits.Adders.carry_select 64)
  | "mult6" ->
    (Circuits.Arith.multiplier_array 6, Circuits.Arith.multiplier_wallace 6)
  | "mult7" ->
    (Circuits.Arith.multiplier_array 7, Circuits.Arith.multiplier_wallace 7)
  | "mult8" ->
    (Circuits.Arith.multiplier_array 8, Circuits.Arith.multiplier_wallace 8)
  | other -> invalid_arg ("bench sat: unknown miter " ^ other)

let sat_det_counters =
  [
    "sat.conflicts"; "sat.decisions"; "sat.propagations"; "sat.restarts";
    "sat.reductions"; "sat.learnts_deleted"; "sat.minimized_lits";
    "sat.vivified_lits";
  ]

let sat_bench () =
  (* Default miter list stops at mult7 (~2 s here, ~15 s at the seed);
     mult8 is reachable via the knob but far too slow for a gate. *)
  let miters =
    match Sys.getenv_opt "BENCH_SAT_MITERS" with
    | Some s ->
      List.filter
        (fun t -> t <> "")
        (String.split_on_char ' '
           (String.map (function ',' -> ' ' | c -> c) s))
    | None -> [ "add32_rca_cla"; "add64_rca_csel"; "mult6"; "mult7" ]
  in
  Obs.enable ();
  let counter_deltas before snap =
    List.map
      (fun n -> (n, Obs.counter_value snap n - List.assoc n before))
      sat_det_counters
  in
  let counters snap =
    List.map (fun n -> (n, Obs.counter_value snap n)) sat_det_counters
  in
  let gauge_of snap name =
    (* Gauges merge by max and have no snapshot accessor; read them out
       of the Det subtree of the report. *)
    match Obs.Json.member "deterministic" (Obs.report_json snap) with
    | Some d -> (
      match Obs.Json.member "gauges" d with
      | Some gs -> (
        match Obs.Json.member name gs with
        | Some (Obs.Json.Int n) -> n
        | _ -> 0)
      | None -> 0)
    | None -> 0
  in
  Printf.printf
    "== Incremental SAT: sweep kernel (3x sat_sweep + cec) and \
     cross-architecture miters ==\n\
     %-24s %-7s %9s %9s %8s | %9s %9s %6s %5s %s\n%!"
    "workload" "kind" "seconds" "seed-s" "speedup" "conflicts" "props"
    "reduc" "del" "blif";
  let failures = ref 0 in
  let sweep_rows =
    List.map
      (fun (name, base_s, base_md5) ->
        let g = Circuits.Suite.build name in
        let before = counters (Obs.snapshot ()) in
        let md5 = ref "" in
        Gc.full_major ();
        let (), secs =
          Obs.time (fun () ->
              for r = 1 to 3 do
                let swept = Aig.Sweep.sat_sweep g in
                (match Aig.Cec.check g swept with
                | Aig.Cec.Equivalent -> ()
                | Aig.Cec.Counterexample _ ->
                  Printf.eprintf "bench sat: %s: sweep not equivalent\n" name;
                  incr failures);
                if r = 1 then
                  md5 :=
                    Digest.to_hex
                      (Digest.string (Aig.Io.blif_to_string ~model:name swept))
              done)
        in
        let snap = Obs.snapshot () in
        let det = counter_deltas before snap in
        let arena_peak = gauge_of snap "sat.arena_peak_words" in
        let matches = String.equal !md5 base_md5 in
        if not matches then begin
          Printf.eprintf "bench sat: %s: swept BLIF md5 %s != seed %s\n" name
            !md5 base_md5;
          incr failures
        end;
        Printf.printf
          "%-24s %-7s %9.4f %9.4f %8s | %9d %9d %6d %5d %s\n%!" name "sweep3x"
          secs base_s "-"
          (List.assoc "sat.conflicts" det)
          (List.assoc "sat.propagations" det)
          (List.assoc "sat.reductions" det)
          (List.assoc "sat.learnts_deleted" det)
          (if matches then "=seed" else "DIFFERS");
        (name, secs, base_s, det, arena_peak, !md5, matches))
      sat_sweep_seed
  in
  let miter_rows =
    List.map
      (fun name ->
        let base_s =
          match List.assoc_opt name sat_miter_seed with
          | Some s -> s
          | None -> 0.0
        in
        let a, b = sat_miter_build name in
        let before = counters (Obs.snapshot ()) in
        Gc.full_major ();
        let v, secs = Obs.time (fun () -> Aig.Cec.check a b) in
        (match v with
        | Aig.Cec.Equivalent -> ()
        | Aig.Cec.Counterexample _ ->
          Printf.eprintf "bench sat: %s: miter refuted\n" name;
          incr failures);
        let det = counter_deltas before (Obs.snapshot ()) in
        let speedup = if secs > 0.0 then base_s /. secs else 0.0 in
        Printf.printf
          "%-24s %-7s %9.4f %9.4f %7.2fx | %9d %9d %6d %5d -\n%!" name
          "miter" secs base_s speedup
          (List.assoc "sat.conflicts" det)
          (List.assoc "sat.propagations" det)
          (List.assoc "sat.reductions" det)
          (List.assoc "sat.learnts_deleted" det);
        (name, secs, base_s, det, speedup))
      miters
  in
  let sum f rows = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let sumi f rows = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let sweep_s = sum (fun (_, s, _, _, _, _, _) -> s) sweep_rows in
  let sweep_base_s = sum (fun (_, _, b, _, _, _, _) -> b) sweep_rows in
  let miter_s = sum (fun (_, s, _, _, _) -> s) miter_rows in
  let miter_base_s = sum (fun (_, _, b, _, _) -> b) miter_rows in
  (* Totals span both workloads: the sweep kernel's per-query conflict
     counts sit below the first reduction point (that is the point of a
     300-conflict [reduce_base] on easy queries), so the database
     machinery shows up on the miter rows and in the driver reports
     (gate 8 checks a Table 2 report for nonzero reductions). *)
  let total_reductions =
    sumi (fun (_, _, _, det, _, _, _) -> List.assoc "sat.reductions" det)
      sweep_rows
    + sumi (fun (_, _, _, det, _) -> List.assoc "sat.reductions" det)
        miter_rows
  in
  let total_deleted =
    sumi
      (fun (_, _, _, det, _, _, _) -> List.assoc "sat.learnts_deleted" det)
      sweep_rows
    + sumi
        (fun (_, _, _, det, _) -> List.assoc "sat.learnts_deleted" det)
        miter_rows
  in
  let all_match =
    List.for_all (fun (_, _, _, _, _, _, m) -> m) sweep_rows
  in
  let miter_speedup = if miter_s > 0.0 then miter_base_s /. miter_s else 0.0 in
  Printf.printf
    "totals: sweep %.4fs (seed %.4fs), miters %.4fs (seed %.4fs, %.2fx), \
     reductions %d, learnts deleted %d\n\n%!"
    sweep_s sweep_base_s miter_s miter_base_s miter_speedup total_reductions
    total_deleted;
  let out =
    match Sys.getenv_opt "BENCH_SAT_OUT" with
    | Some p -> p
    | None -> "BENCH_sat.json"
  in
  let oc = open_out out in
  let det_json det arena_peak md5 =
    String.concat ", "
      (List.map
         (fun (n, v) -> Printf.sprintf "\"%s\": %d" n v)
         (det @ [ ("sat.arena_peak_words", arena_peak) ])
      @
      match md5 with
      | Some m -> [ Printf.sprintf "\"blif_md5\": \"%s\"" m ]
      | None -> [])
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"sat-bench/v1\",\n\
    \  \"rows\": [\n";
  let row_strings =
    List.map
      (fun (name, secs, base_s, det, arena_peak, md5, matches) ->
        (* One row per line, det fields inline: gate 8 greps the "det"
           lines of two -j runs and requires them byte-identical. *)
        Printf.sprintf
          "    {\"circuit\": \"%s\", \"kind\": \"sweep3x\", \"seconds\": \
           %.6f, \"baseline_seconds\": %.6f, \"blif_match_baseline\": %b, \
           \"det\": {%s}}"
          name secs base_s matches
          (det_json det arena_peak (Some md5)))
      sweep_rows
    @ List.map
        (fun (name, secs, base_s, det, speedup) ->
          Printf.sprintf
            "    {\"circuit\": \"%s\", \"kind\": \"miter\", \"seconds\": \
             %.6f, \"baseline_seconds\": %.6f, \"speedup\": %.3f, \"det\": \
             {%s}}"
            name secs base_s speedup
            (det_json det 0 None))
        miter_rows
  in
  output_string oc (String.concat ",\n" row_strings);
  Printf.fprintf oc
    "\n\
    \  ],\n\
    \  \"totals\": {\"sweep_s\": %.6f, \"baseline_sweep_s\": %.6f, \
     \"miter_s\": %.6f, \"baseline_miter_s\": %.6f, \"miter_speedup\": \
     %.3f, \"reductions\": %d, \"learnts_deleted\": %d, \
     \"all_blif_match\": %b}\n\
     }\n"
    sweep_s sweep_base_s miter_s miter_base_s miter_speedup total_reductions
    total_deleted all_match;
  close_out oc;
  Printf.printf "wrote %s\n\n" out;
  if !failures > 0 then begin
    Printf.eprintf "bench sat: %d failure(s)\n" !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test per table / kernel.             *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  let open Bechamel in
  let rca8 = Circuits.Adders.ripple_carry 8 in
  let c432 = Circuits.Suite.build "C432" in
  let c1908 = Circuits.Suite.build "C1908" in
  let tests =
    Test.make_grouped ~name:"tables"
      [
        (* Table 1 kernel: lookahead optimization of the adder. *)
        Test.make ~name:"table1/lookahead-adder8"
          (Staged.stage (fun () -> ignore (Lookahead.optimize rca8)));
        Test.make ~name:"table1/dc-adder8"
          (Staged.stage (fun () -> ignore (Baselines.dc_like rca8)));
        (* Table 2 kernels: one control and one ECC circuit. *)
        Test.make ~name:"table2/lookahead-C432"
          (Staged.stage (fun () -> ignore (Lookahead.optimize c432)));
        Test.make ~name:"table2/abc-C1908"
          (Staged.stage (fun () -> ignore (Baselines.abc_like c1908)));
        Test.make ~name:"table2/techmap-C432"
          (Staged.stage (fun () ->
               ignore (Techmap.Mapper.delay (Techmap.Mapper.map c432))));
        Test.make ~name:"table2/cec-C432"
          (Staged.stage (fun () -> ignore (Aig.Cec.equivalent c432 c432)));
      ]
  in
  let cfg =
    Benchmark.cfg ~limit:20 ~quota:(Time.second 10.0) ~kde:None
      ~stabilize:false ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "== Bechamel kernels (ns/run) ==";
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] ->
        Printf.printf "%-32s %12.0f ns  (%.3f s)\n" name est (est /. 1e9)
      | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name)
    (List.sort compare rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Per-phase wall-clock breakdown of the Table 2 fast subset: which of  *)
(* the four tools, the CEC checks, and the mapper dominate each row.    *)
(* ------------------------------------------------------------------ *)

let profile () =
  Printf.printf "== per-phase wall-clock (seconds), Table 2 fast subset ==\n";
  Printf.printf "%-24s %8s %8s %8s %8s %8s %8s\n%!" "circuit" "SIS" "ABC" "DC"
    "Lookahd" "cec" "map";
  let timed = Obs.time in
  let totals = Array.make 6 0.0 in
  List.iter
    (fun name ->
      let g = Circuits.Suite.build name in
      let outs =
        List.mapi
          (fun i (_, f) ->
            let o, t = timed (fun () -> f g) in
            totals.(i) <- totals.(i) +. t;
            (o, t))
          tools
      in
      let _, t_cec =
        timed (fun () ->
            List.iter (fun (o, _) -> assert (Aig.Cec.equivalent g o)) outs)
      in
      let _, t_map =
        timed (fun () -> List.iter (fun (o, _) -> ignore (measure o)) outs)
      in
      totals.(4) <- totals.(4) +. t_cec;
      totals.(5) <- totals.(5) +. t_map;
      Printf.printf "%-24s" name;
      List.iter (fun (_, t) -> Printf.printf " %8.1f" t) outs;
      Printf.printf " %8.1f %8.1f\n%!" t_cec t_map)
    fast_subset;
  Printf.printf "%-24s" "TOTAL";
  Array.iter (fun t -> Printf.printf " %8.1f" t) totals;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Observation-report validators: check_regression.sh gate 4 runs the  *)
(* optimizer with --report/--trace and then validates the files here,  *)
(* so a malformed export or a broken counter invariant fails CI.       *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 1)
    fmt

let parse_json_file what path =
  match Obs.Json.of_string (read_file path) with
  | Some j -> j
  | None -> fail "%s: %s does not parse as JSON" what path

let check_report path =
  let j = parse_json_file "check-report" path in
  (match Obs.Json.member "schema" j with
  | Some (Obs.Json.String "lookahead-obs-report/1") -> ()
  | _ -> fail "check-report: %s: bad or missing schema" path);
  let det = Obs.det_subtree j in
  (* The deterministic subtree must never leak wall-clock data. *)
  (match det with
  | Obs.Json.Obj kvs ->
    List.iter
      (fun (k, _) ->
        if not (List.mem k [ "counters"; "gauges"; "histograms" ]) then
          fail "check-report: %s: unexpected deterministic key %s" path k)
      kvs
  | _ -> fail "check-report: %s: missing deterministic subtree" path);
  let section subtree name =
    match Obs.Json.member name subtree with
    | Some (Obs.Json.Obj kvs) -> kvs
    | _ -> []
  in
  let check_int_section what kvs =
    List.iter
      (fun (name, v) ->
        match v with
        | Obs.Json.Int n when n >= 0 -> ()
        | _ ->
          fail "check-report: %s: %s %s is not a non-negative integer" path
            what name)
      kvs
  in
  let det_counters = section det "counters" in
  check_int_section "counter" det_counters;
  check_int_section "gauge" (section det "gauges");
  let runtime =
    match Obs.Json.member "runtime" j with
    | Some r -> r
    | None -> fail "check-report: %s: missing runtime subtree" path
  in
  check_int_section "counter" (section runtime "counters");
  List.iter
    (fun (name, v) ->
      match (Obs.Json.member "count" v, Obs.Json.member "total_ns" v) with
      | Some (Obs.Json.Int c), Some (Obs.Json.Int t) when c >= 0 && t >= 0 ->
        ()
      | _ -> fail "check-report: %s: malformed duration %s" path name)
    (section runtime "durations");
  (* Cross-counter invariants of the instrumented layers. *)
  let value name =
    match List.assoc_opt name det_counters with
    | Some (Obs.Json.Int n) -> Some n
    | _ -> None
  in
  List.iter
    (fun cache ->
      match
        ( value (Printf.sprintf "bdd.%s_lookups" cache),
          value (Printf.sprintf "bdd.%s_hits" cache),
          value (Printf.sprintf "bdd.%s_misses" cache) )
      with
      | Some l, Some h, Some m ->
        if h + m <> l then
          fail "check-report: %s: bdd.%s hits %d + misses %d <> lookups %d"
            path cache h m l
      | _ -> ())
    [ "ite"; "restrict"; "compose" ];
  (match (value "cec.sat_calls", value "cec.budget_exhausted") with
  | Some s, Some b when b > s ->
    fail "check-report: %s: cec.budget_exhausted %d > cec.sat_calls %d" path b
      s
  | _ -> ());
  (match (value "globals.updates", value "globals.recomputed") with
  | Some 0, Some r when r > 0 ->
    fail "check-report: %s: globals.recomputed %d with no updates" path r
  | _ -> ());
  Printf.printf "report OK: %s (%d deterministic counter(s))\n" path
    (List.length det_counters)

let check_trace path =
  let j = parse_json_file "check-trace" path in
  let events =
    match Obs.Json.member "traceEvents" j with
    | Some (Obs.Json.List es) -> es
    | _ -> fail "check-trace: %s: missing traceEvents list" path
  in
  let n_complete = ref 0 and tids = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let str k =
        match Obs.Json.member k e with
        | Some (Obs.Json.String s) -> Some s
        | _ -> None
      in
      let tid =
        match Obs.Json.member "tid" e with
        | Some (Obs.Json.Int t) -> t
        | _ -> fail "check-trace: %s: event without integer tid" path
      in
      match str "ph" with
      | Some "X" -> (
        n_complete := !n_complete + 1;
        match (Obs.Json.member "ts" e, Obs.Json.member "dur" e, str "name") with
        | Some (Obs.Json.Float ts), Some (Obs.Json.Float dur), Some _
          when ts >= 0.0 && dur >= 0.0 ->
          if not (Hashtbl.mem tids tid) then
            fail "check-trace: %s: track %d has no thread_name metadata" path
              tid
        | _ -> fail "check-trace: %s: malformed complete event" path)
      | Some "M" -> Hashtbl.replace tids tid ()
      | _ -> fail "check-trace: %s: unknown event phase" path)
    events;
  Printf.printf "trace OK: %s (%d span event(s) on %d track(s))\n" path
    !n_complete (Hashtbl.length tids)

(* First differing path between two JSON trees with identical shape
   expectations — a named mismatch beats a bare "differ" in CI logs. *)
let rec first_diff path a b =
  match (a, b) with
  | Obs.Json.Obj xs, Obs.Json.Obj ys when List.map fst xs = List.map fst ys ->
    List.fold_left2
      (fun acc (k, va) (_, vb) ->
        match acc with
        | Some _ -> acc
        | None -> first_diff (path ^ "." ^ k) va vb)
      None xs ys
  | _ -> if Obs.Json.equal a b then None else Some path

let compare_reports a b =
  let ja = parse_json_file "compare-reports" a in
  let jb = parse_json_file "compare-reports" b in
  let da = Obs.det_subtree ja and db = Obs.det_subtree jb in
  if da = Obs.Json.Null || db = Obs.Json.Null then
    fail "compare-reports: missing deterministic subtree";
  if Obs.Json.equal da db then
    print_endline "deterministic subtrees identical"
  else
    fail "compare-reports: deterministic subtrees differ (at %s)"
      (match first_diff "deterministic" da db with
      | Some p -> p
      | None -> "<structure>")

(* Validate a Prometheus-style text exposition (the [metrics] request):
   comment lines are # HELP / # TYPE, every sample belongs to a typed
   family, histogram bucket series are cumulative, monotone and end at
   le="+Inf" with a matching _count sample. *)
let check_exposition path =
  let text = read_file path in
  let types = Hashtbl.create 16 in
  (* (family, labels-without-le) -> (le, value) list, newest first *)
  let buckets : (string, (string * float) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let counts : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let n_samples = ref 0 in
  let name_ok n =
    n <> ""
    && (not (n.[0] >= '0' && n.[0] <= '9'))
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z')
           || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9')
           || c = '_' || c = ':')
         n
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      if line = "" then ()
      else if line.[0] = '#' then
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: name :: [ typ ] ->
          if not (List.mem typ [ "counter"; "gauge"; "histogram" ]) then
            fail "check-exposition: %s:%d: unknown type %s" path ln typ;
          Hashtbl.replace types name typ
        | "#" :: "HELP" :: name :: _ when name_ok name -> ()
        | _ -> fail "check-exposition: %s:%d: malformed comment" path ln
      else begin
        let sp =
          match String.rindex_opt line ' ' with
          | Some p -> p
          | None -> fail "check-exposition: %s:%d: no sample value" path ln
        in
        let name_part = String.sub line 0 sp in
        let value =
          match
            float_of_string_opt
              (String.sub line (sp + 1) (String.length line - sp - 1))
          with
          | Some v -> v
          | None -> fail "check-exposition: %s:%d: non-numeric value" path ln
        in
        let name, labels =
          match String.index_opt name_part '{' with
          | None -> (name_part, [])
          | Some b ->
            if name_part.[String.length name_part - 1] <> '}' then
              fail "check-exposition: %s:%d: unterminated labels" path ln;
            let body =
              String.sub name_part (b + 1) (String.length name_part - b - 2)
            in
            let labels =
              List.map
                (fun kv ->
                  match String.index_opt kv '=' with
                  | Some e
                    when String.length kv > e + 2
                         && kv.[e + 1] = '"'
                         && kv.[String.length kv - 1] = '"' ->
                    ( String.sub kv 0 e,
                      String.sub kv (e + 2) (String.length kv - e - 3) )
                  | _ ->
                    fail "check-exposition: %s:%d: malformed label %S" path
                      ln kv)
                (String.split_on_char ',' body)
            in
            (String.sub name_part 0 b, labels)
        in
        if not (name_ok name) then
          fail "check-exposition: %s:%d: bad metric name %S" path ln name;
        let strip suf =
          let ls = String.length suf and ln = String.length name in
          if ln > ls && String.sub name (ln - ls) ls = suf then
            Some (String.sub name 0 (ln - ls))
          else None
        in
        let histo base =
          match base with
          | Some b when Hashtbl.find_opt types b = Some "histogram" -> Some b
          | _ -> None
        in
        let series base =
          base ^ "|"
          ^ String.concat ","
              (List.filter_map
                 (fun (k, v) -> if k = "le" then None else Some (k ^ "=" ^ v))
                 labels)
        in
        (match
           ( histo (strip "_bucket"),
             histo (strip "_sum"),
             histo (strip "_count") )
         with
        | Some b, _, _ ->
          let le =
            match List.assoc_opt "le" labels with
            | Some le -> le
            | None ->
              fail "check-exposition: %s:%d: bucket without le label" path ln
          in
          let key = series b in
          Hashtbl.replace buckets key
            ((le, value)
            :: Option.value ~default:[] (Hashtbl.find_opt buckets key))
        | None, Some _, _ -> ()
        | None, None, Some b -> Hashtbl.replace counts (series b) value
        | None, None, None ->
          if not (Hashtbl.mem types name) then
            fail "check-exposition: %s:%d: sample %s has no # TYPE" path ln
              name);
        n_samples := !n_samples + 1
      end)
    lines;
  if !n_samples = 0 then fail "check-exposition: %s: no samples" path;
  Hashtbl.iter
    (fun key series ->
      let series = List.rev series in
      (match List.rev series with
      | ("+Inf", last) :: _ -> (
        match Hashtbl.find_opt counts key with
        | Some c when c = last -> ()
        | Some c ->
          fail "check-exposition: %s: %s _count %g <> +Inf bucket %g" path
            key c last
        | None -> fail "check-exposition: %s: %s has no _count" path key)
      | _ -> fail "check-exposition: %s: %s does not end at +Inf" path key);
      ignore
        (List.fold_left
           (fun prev (_, v) ->
             if v < prev then
               fail "check-exposition: %s: %s buckets not cumulative" path
                 key;
             v)
           0.0 series))
    buckets;
  Printf.printf "exposition OK: %s (%d sample(s), %d familie(s))\n" path
    !n_samples (Hashtbl.length types)

(* Validate a JSONL job journal (--journal / Obs.Journal file sink):
   every line parses, seq strictly increases, kinds are non-empty, and
   a served run contains at least one admission and one completion. *)
let check_journal path =
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then fail "check-journal: %s: empty journal" path;
  let last_seq = ref (-1) in
  let kinds = Hashtbl.create 16 in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      match Obs.Json.of_string line with
      | None -> fail "check-journal: %s:%d: not valid JSON" path ln
      | Some j ->
        (match Obs.Json.member "seq" j with
        | Some (Obs.Json.Int seq) ->
          if seq <= !last_seq then
            fail "check-journal: %s:%d: seq %d not increasing" path ln seq;
          last_seq := seq
        | _ -> fail "check-journal: %s:%d: missing integer seq" path ln);
        (match Obs.Json.member "ts_ns" j with
        | Some (Obs.Json.Int ts) when ts >= 0 -> ()
        | _ -> fail "check-journal: %s:%d: missing ts_ns" path ln);
        (match Obs.Json.member "kind" j with
        | Some (Obs.Json.String k) when k <> "" ->
          Hashtbl.replace kinds k
            (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k))
        | _ -> fail "check-journal: %s:%d: missing kind" path ln))
    lines;
  let count k = Option.value ~default:0 (Hashtbl.find_opt kinds k) in
  if count "job.admitted" = 0 then
    fail "check-journal: %s: no job.admitted event" path;
  if count "job.finished" = 0 then
    fail "check-journal: %s: no job.finished event" path;
  Printf.printf "journal OK: %s (%d event(s), %d kind(s))\n" path
    (List.length lines) (Hashtbl.length kinds)

(* ------------------------------------------------------------------- *)
(* serve: load-bench the persistent job server (lib/serve). An          *)
(* in-process server on a temp Unix socket receives a deterministic mix *)
(* of jobs — every BENCH_SERVE_FAULT_EVERY-th one with a tiny node      *)
(* budget and an armed injection, so degrading tenants share the queue  *)
(* with healthy ones — submitted over one connection with a bounded     *)
(* window of outstanding jobs. Per-job latency (submit sent → result    *)
(* received) feeds p50/p95/p99 per class; afterwards a warm-vs-cold     *)
(* identity sample reruns a few specs through Engine.run_cold and       *)
(* requires byte-identical BLIF and deterministic report subtrees.      *)
(* JSON to BENCH_serve.json (or $BENCH_SERVE_OUT); check_regression.sh  *)
(* gate 7 requires completion, identity, and bounded clean p95.         *)
(* ------------------------------------------------------------------- *)

let serve_bench () =
  let module Msg = Serve.Msg in
  let env_int name default =
    match Sys.getenv_opt name with
    | None -> default
    | Some s -> (
      match int_of_string_opt s with
      | Some v when v > 0 -> v
      | _ -> fail "bench serve: %s='%s' is not a positive int" name s)
  in
  let njobs = env_int "BENCH_SERVE_JOBS" 220 in
  let window = env_int "BENCH_SERVE_WINDOW" 16 in
  let fault_every = env_int "BENCH_SERVE_FAULT_EVERY" 10 in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lookahead_serve_bench_%d.sock" (Unix.getpid ()))
  in
  (* The job mix is a pure function of the index: seven size classes
     cycling through the adder generators, with every fault_every-th job
     running under a deliberately blown budget plus an armed injection. *)
  let faulted i = i mod fault_every = fault_every - 1 in
  let spec_of i =
    let kind, bits =
      match i mod 7 with
      | 0 -> ("ripple", 8)
      | 1 -> ("cla", 8)
      | 2 -> ("cla", 12)
      | 3 -> ("select", 8)
      | 4 -> ("cla", 16)
      | 5 -> ("select", 12)
      | _ -> ("select", 16)
    in
    let base =
      Msg.submit_defaults ~source:(Msg.Adder { kind; bits }) ~tool:"lookahead"
    in
    (* --time-limit 0: identity across runs must not depend on a
       wall-clock deadline cut. *)
    let base = { base with Msg.time_limit_s = Some 0.0 } in
    if faulted i then
      {
        base with
        Msg.inject = Some "bdd@200:r";
        budget = { Msg.default_budget with Msg.bdd_node_ceiling = 30_000 };
      }
    else base
  in
  let now () = Guard.Clock.now_s () in
  let listening = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Serve.Server.run
          ~ready:(fun () -> Atomic.set listening true)
          {
            (Serve.Server.default_config (`Unix sock)) with
            Serve.Server.queue_capacity = njobs + window;
          })
  in
  while not (Atomic.get listening) do
    Unix.sleepf 0.005
  done;
  let c = Serve.Client.connect (`Unix sock) in
  (* Windowed submission: keep [window] jobs in flight, match Submitted
     replies to sends in FIFO order (the server answers in order),
     stamp each result against its submit time. *)
  let lat_ms = Array.make njobs nan in
  let completed = Array.make njobs false in
  let pending : (int * float) Queue.t = Queue.create () in
  let id2job = Hashtbl.create 64 in
  let sent = ref 0 in
  let finished = ref 0 in
  let t0 = now () in
  let send_one () =
    Queue.add (!sent, now ()) pending;
    Serve.Client.send c (Msg.Submit (spec_of !sent));
    incr sent
  in
  while !finished < njobs do
    while !sent < njobs && !sent - !finished < window do
      send_one ()
    done;
    match Serve.Client.recv c with
    | Msg.Submitted { id; _ } -> Hashtbl.replace id2job id (Queue.pop pending)
    | Msg.Result r ->
      let i, t_send = Hashtbl.find id2job r.Msg.id in
      lat_ms.(i) <- (now () -. t_send) *. 1e3;
      completed.(i) <- r.Msg.state = Msg.Done;
      incr finished
    | Msg.Error_reply { code; message } ->
      fail "bench serve: server error (%s): %s" code message
    | _ -> ()
  done;
  let wall_s = now () -. t0 in
  let all_completed = Array.for_all Fun.id completed in
  (* Warm-vs-cold identity: the server is idle now, so Engine.run_cold
     (a fresh-build, fresh-manager, Obs.reset run — the library image of
     one bin/lookahead_opt invocation) may share the process. Each
     sample must match the warm server byte-for-byte: BLIF text, Table-2
     metrics, and the deterministic report subtree. *)
  let identity_samples = [ 0; 4; fault_every - 1 ] in
  let identical =
    List.for_all
      (fun i ->
        let spec =
          { (spec_of i) with Msg.want_blif = true; want_report = true }
        in
        let _, warm = Serve.Client.submit_wait c spec in
        let cold = Serve.Engine.run_cold spec in
        let det r =
          match r.Msg.report with
          | Some j -> Obs.det_subtree j
          | None -> Obs.Json.Null
        in
        let same =
          warm.Msg.state = Msg.Done
          && cold.Msg.state = Msg.Done
          && warm.Msg.blif = cold.Msg.blif
          && warm.Msg.metrics = cold.Msg.metrics
          && warm.Msg.degraded = cold.Msg.degraded
          && det warm <> Obs.Json.Null
          && Obs.Json.equal (det warm) (det cold)
        in
        if not same then
          Printf.eprintf
            "bench serve: warm/cold mismatch on job class %d (%s)\n" i
            (Msg.source_name (spec_of i).Msg.source);
        same)
      identity_samples
  in
  Serve.Client.shutdown c;
  Serve.Client.close c;
  Domain.join server;
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then nan else sorted.(min (n - 1) (p * n / 100))
  in
  let class_stats sel =
    let xs =
      Array.of_list
        (List.filter_map
           (fun i -> if sel i then Some lat_ms.(i) else None)
           (List.init njobs Fun.id))
    in
    Array.sort compare xs;
    Printf.sprintf
      "{ \"count\": %d, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": \
       %.3f, \"max_ms\": %.3f }"
      (Array.length xs) (percentile xs 50) (percentile xs 95)
      (percentile xs 99)
      (if Array.length xs = 0 then nan else xs.(Array.length xs - 1))
  in
  let out =
    match Sys.getenv_opt "BENCH_SERVE_OUT" with
    | Some p -> p
    | None -> "BENCH_serve.json"
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"lookahead-bench-serve/1\",\n\
    \  \"jobs\": %d,\n\
    \  \"window\": %d,\n\
    \  \"fault_every\": %d,\n\
    \  \"wall_s\": %.3f,\n\
    \  \"throughput_jobs_per_s\": %.2f,\n\
    \  \"all_completed\": %b,\n\
    \  \"clean\": %s,\n\
    \  \"faulted\": %s,\n\
    \  \"identity\": { \"samples\": %d, \"all_identical\": %b }\n\
     }\n"
    njobs window fault_every wall_s
    (float_of_int njobs /. wall_s)
    all_completed
    (class_stats (fun i -> not (faulted i)))
    (class_stats faulted)
    (List.length identity_samples)
    identical;
  close_out oc;
  Printf.printf "serve: %d jobs in %.2fs (%.1f jobs/s), window %d -> %s\n%!"
    njobs wall_s
    (float_of_int njobs /. wall_s)
    window out;
  if not all_completed then fail "bench serve: not every job completed";
  if not identical then
    fail "bench serve: warm server diverged from cold runs"

(* ------------------------------------------------------------------- *)
(* obs: telemetry cost + journal determinism. The same clean/faulted    *)
(* job mix as the serve bench runs through an in-process engine twice   *)
(* per rep — journaling off vs journaling to a file with periodic       *)
(* metrics scrapes — and the min-of-reps walls give the enabled         *)
(* overhead. Then the journal's Det digest (order-insensitive hash of   *)
(* every Det payload) is required to be identical warm -j1 / warm -j4 / *)
(* cold -j1. JSON to BENCH_obs.json (or $BENCH_OBS_OUT);                *)
(* check_regression.sh gate 9 bounds the overhead and requires the      *)
(* identity.                                                            *)
(* ------------------------------------------------------------------- *)

let obs_bench () =
  let module Msg = Serve.Msg in
  let env_int name default =
    match Sys.getenv_opt name with
    | None -> default
    | Some s -> (
      match int_of_string_opt s with
      | Some v when v > 0 -> v
      | _ -> fail "bench obs: %s='%s' is not a positive int" name s)
  in
  let njobs = env_int "BENCH_OBS_JOBS" 28 in
  let id_jobs = env_int "BENCH_OBS_ID_JOBS" 14 in
  let reps = env_int "BENCH_OBS_REPS" 2 in
  let fault_every = 10 in
  let faulted i = i mod fault_every = fault_every - 1 in
  let spec_of i =
    let kind, bits =
      match i mod 7 with
      | 0 -> ("ripple", 8)
      | 1 -> ("cla", 8)
      | 2 -> ("cla", 12)
      | 3 -> ("select", 8)
      | 4 -> ("cla", 16)
      | 5 -> ("select", 12)
      | _ -> ("select", 16)
    in
    let base =
      Msg.submit_defaults ~source:(Msg.Adder { kind; bits }) ~tool:"lookahead"
    in
    let base = { base with Msg.time_limit_s = Some 0.0 } in
    if faulted i then
      {
        base with
        Msg.inject = Some "bdd@200:r";
        budget = { Msg.default_budget with Msg.bdd_node_ceiling = 30_000 };
      }
    else base
  in
  let all_completed = ref true in
  (* One engine lifetime per measured run: submit [n] jobs, wait for the
     executor to drain, return the wall. [scrape] polls the Metrics
     endpoint from this domain while jobs run — the live-monitoring
     cost belongs in the enabled measurement. *)
  let run_engine ~scrape n =
    let ndone = Atomic.make 0 in
    let engine =
      Serve.Engine.create
        ~on_event:(fun ev ->
          match ev with
          | Serve.Engine.Job_done { result; _ } ->
            if result.Msg.state <> Msg.Done then all_completed := false;
            Atomic.incr ndone
          | Serve.Engine.Job_progress _ -> ())
        { Serve.Engine.queue_capacity = n + 4; reuse_managers = true }
    in
    Serve.Engine.start engine;
    let t0 = Guard.Clock.now_s () in
    for i = 0 to n - 1 do
      match Serve.Engine.submit engine ~tenant:0 (spec_of i) with
      | Ok _ -> ()
      | Error (code, msg) ->
        fail "bench obs: submit rejected (%s): %s" code msg
    done;
    let scraped = ref 0 in
    while Atomic.get ndone < n do
      Unix.sleepf 0.002;
      if scrape && Atomic.get ndone / 5 > !scraped then begin
        scraped := Atomic.get ndone / 5;
        ignore (Serve.Engine.metrics engine)
      end
    done;
    let wall = Guard.Clock.now_s () -. t0 in
    Serve.Engine.stop engine;
    wall
  in
  let journal_file =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lookahead_obs_bench_%d.jsonl" (Unix.getpid ()))
  in
  (* Warm the process (circuit generators, BDD pool, code paths) before
     timing anything. *)
  ignore (run_engine ~scrape:false njobs);
  let base_s = ref infinity and enab_s = ref infinity in
  let journal_events = ref 0 and journal_rotations = ref 0 in
  for _ = 1 to reps do
    Obs.Journal.disable ();
    base_s := Float.min !base_s (run_engine ~scrape:false njobs);
    Obs.Journal.enable ~file:journal_file ();
    enab_s := Float.min !enab_s (run_engine ~scrape:true njobs);
    journal_events := Obs.Journal.events_total ();
    journal_rotations := Obs.Journal.rotations ()
  done;
  Obs.Journal.disable ();
  (try check_journal journal_file
   with e ->
     Sys.remove journal_file;
     raise e);
  Sys.remove journal_file;
  let overhead_pct = (!enab_s -. !base_s) /. !base_s *. 100.0 in
  (* Det-payload identity: the digest folds (count, sum, xor) over the
     FNV-1a of every Det payload, so it is independent of event order —
     the only thing domain count or warm state may change. *)
  let digest_of ~jobs ~warm n =
    Par.set_default_jobs jobs;
    Obs.Journal.enable ();
    if warm then ignore (run_engine ~scrape:false n)
    else begin
      Obs.enable ();
      for i = 0 to n - 1 do
        let r = Serve.Engine.run_cold (spec_of i) in
        if r.Msg.state <> Msg.Done then
          fail "bench obs: cold job %d did not complete" i
      done
    end;
    let d = Obs.Journal.det_digest () in
    Obs.Journal.disable ();
    d
  in
  let d_warm1 = digest_of ~jobs:1 ~warm:true id_jobs in
  let d_warm4 = digest_of ~jobs:4 ~warm:true id_jobs in
  let d_cold1 = digest_of ~jobs:1 ~warm:false id_jobs in
  Par.set_default_jobs 0;
  let nonempty =
    match String.index_opt d_warm1 ':' with
    | Some i -> int_of_string (String.sub d_warm1 0 i) > 0
    | None -> false
  in
  let identical =
    nonempty && String.equal d_warm1 d_warm4 && String.equal d_warm1 d_cold1
  in
  let out =
    match Sys.getenv_opt "BENCH_OBS_OUT" with
    | Some p -> p
    | None -> "BENCH_obs.json"
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"lookahead-bench-obs/1\",\n\
    \  \"jobs\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"baseline_s\": %.4f,\n\
    \  \"enabled_s\": %.4f,\n\
    \  \"overhead_pct\": %.2f,\n\
    \  \"journal\": { \"events\": %d, \"rotations\": %d },\n\
    \  \"identity\": {\n\
    \    \"jobs\": %d,\n\
    \    \"warm_j1\": \"%s\",\n\
    \    \"warm_j4\": \"%s\",\n\
    \    \"cold_j1\": \"%s\",\n\
    \    \"identical\": %b\n\
    \  },\n\
    \  \"all_completed\": %b\n\
     }\n"
    njobs reps !base_s !enab_s overhead_pct !journal_events
    !journal_rotations id_jobs d_warm1 d_warm4 d_cold1 identical
    !all_completed;
  close_out oc;
  Printf.printf
    "obs: %d jobs x%d, journal off %.3fs / on %.3fs (%+.2f%%), digest %s \
     -> %s\n\
     %!"
    njobs reps !base_s !enab_s overhead_pct
    (if identical then "identical" else "DIVERGED")
    out;
  if not !all_completed then fail "bench obs: not every job completed";
  if not identical then
    fail "bench obs: journal Det digest diverged across -j / warm-cold"

(* ------------------------------------------------------------------ *)
(* E-graph bench: the portfolio against every fixed optimizer.         *)
(* ------------------------------------------------------------------ *)

(* Gate 10's workload. Every fixed arm and the portfolio run on the
   fast subset minus C432 (the one circuit whose lookahead run is only
   bounded by the anytime deadline — a deadline cut is a function of
   wall-clock scheduling, and this JSON must be byte-identical across
   -j). The portfolio must never lose to the best fixed arm — it runs
   the same arms and picks by measured cost — so losing is a selection
   bug and fails the bench directly; the JSON records per-arm costs and
   the winner-BLIF md5 for the checked-in baseline comparison. *)
let egraph_bench () =
  let names =
    List.filter (fun n -> not (String.equal n "C432")) fast_subset
  in
  let cost = Egraph.Cost.levels in
  let nolimit =
    { Lookahead.Driver.default with time_limit_s = infinity }
  in
  let fixed_arms : (string * (Aig.t -> Aig.t)) list =
    [
      ("sis", Baselines.sis_like);
      ("abc", Baselines.abc_like);
      ("dc", Baselines.dc_like);
      ("lookahead", fun g -> Lookahead.optimize ~options:nolimit g);
      ("egraph", fun g -> Egraph.optimize ~cost g);
    ]
  in
  Printf.printf "== E-graph portfolio vs fixed optimizers (cost: %s) ==\n"
    cost.Egraph.Cost.name;
  Printf.printf "%-24s | %s | %-10s %6s\n%!" "Name"
    (String.concat " "
       (List.map (fun (n, _) -> Printf.sprintf "%9s" n) fixed_arms))
    "winner" "cost";
  let rows =
    List.map
      (fun name ->
        let g = Circuits.Suite.build name in
        let t0 = Unix.gettimeofday () in
        let fixed =
          List.map
            (fun (an, f) ->
              let out = f g in
              if not (Aig.Cec.equivalent g out) then
                fail "bench egraph: %s: arm %s broke equivalence" name an;
              (an, cost.Egraph.Cost.measure out))
            fixed_arms
        in
        let t1 = Unix.gettimeofday () in
        let out, r = Egraph.Portfolio.run_ex ~options:nolimit ~cost g in
        let t2 = Unix.gettimeofday () in
        if not (Aig.Cec.equivalent g out) then
          fail "bench egraph: %s: portfolio output not equivalent" name;
        let best_fixed =
          List.fold_left (fun acc (_, c) -> Float.min acc c) infinity fixed
        in
        if r.Egraph.Portfolio.winner_cost > best_fixed then
          fail
            "bench egraph: %s: portfolio cost %.3f worse than best fixed arm \
             %.3f"
            name r.Egraph.Portfolio.winner_cost best_fixed;
        let md5 =
          Digest.to_hex (Digest.string (Aig.Io.blif_to_string ~model:name out))
        in
        Printf.printf "%-24s | %s | %-10s %6.0f   (arms %.2fs, portfolio %.2fs)\n%!"
          name
          (String.concat " "
             (List.map (fun (_, c) -> Printf.sprintf "%9.0f" c) fixed))
          r.Egraph.Portfolio.winner r.Egraph.Portfolio.winner_cost
          (t1 -. t0) (t2 -. t1);
        (name, fixed, r, md5))
      names
  in
  let out =
    match Sys.getenv_opt "BENCH_EGRAPH_OUT" with
    | Some p -> p
    | None -> "BENCH_egraph.json"
  in
  let oc = open_out out in
  (* Deterministic content only — gate 10 requires the whole file
     byte-identical across -j and against the checked-in baseline, so
     no wall-clock fields. *)
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"egraph-bench/v1\",\n\
    \  \"cost\": \"%s\",\n\
    \  \"rows\": [\n"
    cost.Egraph.Cost.name;
  let row_strings =
    List.map
      (fun (name, fixed, (r : Egraph.Portfolio.report), md5) ->
        Printf.sprintf
          "    { \"name\": \"%s\", \"winner\": \"%s\", \"winner_cost\": %.3f, \
           \"sequential\": %b, \"arms\": { %s }, \"blif_md5\": \"%s\" }"
          name r.Egraph.Portfolio.winner r.Egraph.Portfolio.winner_cost
          r.Egraph.Portfolio.sequential
          (String.concat ", "
             (List.map
                (fun (an, c) -> Printf.sprintf "\"%s\": %.3f" an c)
                (fixed @ [ ("portfolio", r.Egraph.Portfolio.winner_cost) ])))
          md5)
      rows
  in
  Printf.fprintf oc "%s\n  ]\n}\n" (String.concat ",\n" row_strings);
  close_out oc;
  Printf.printf "egraph: %d circuits -> %s\n%!" (List.length rows) out

let () =
  let args = match Array.to_list Sys.argv with _ :: rest -> rest | [] -> [] in
  (* Shared CLI dialect (Serve.Cli): -j N / --jobs N / -jN, the
     observation trio --stats / --report FILE / --trace FILE (same
     contract as bin/lookahead_opt: record while the targets run,
     export when they are done), and --inject SPEC for the guard-gate
     workloads that force the degradation ladder mid-run. *)
  let args = Serve.Cli.strip_jobs ~prog:"bench" args in
  let args, obs_flags = Serve.Cli.strip_obs ~prog:"bench" args in
  let args = Serve.Cli.strip_inject ~prog:"bench" args in
  Serve.Cli.setup_obs obs_flags;
  let finish_obs () = Serve.Cli.finish_obs obs_flags in
  match args with
  | [ "check-report"; path ] -> check_report path
  | [ "check-trace"; path ] -> check_trace path
  | [ "check-exposition"; path ] -> check_exposition path
  | [ "check-journal"; path ] -> check_journal path
  | [ "compare-reports"; a; b ] -> compare_reports a b
  | args ->
  let args = if args = [] then [ "all" ] else args in
  List.iter
    (fun arg ->
      match arg with
      | "table1" -> table1 ()
      | "table2" -> table2 ~full:false ()
      | "table2-full" -> table2 ~full:true ()
      | "table2-guard" ->
        (* Gate 5 workload: the fast subset minus C432 (the one circuit
           that needs the anytime deadline), deadline disabled, meant to
           run with --inject armed. Every governed blowup is then an
           injected one, firing on per-job tick counts, so the report's
           Det subtree — degradation rungs included — is comparable
           across -j. Each cell CEC-asserts against its input, so the
           target completing IS the completion + equivalence check. *)
        if not (Guard.Inject.armed ()) then
          prerr_endline
            "bench: table2-guard: note: no --inject spec armed, running \
             unfaulted";
        table2 ~tools:tools_nolimit
          ~names:
            (List.filter (fun n -> not (String.equal n "C432")) fast_subset)
          ~full:false ()
      | "ablation" -> ablation ()
      | "extension" -> extension ()
      | "bechamel" -> bechamel ()
      | "bdd" -> bdd_bench ()
      | "par" -> par_bench ()
      | "incr" -> incr_bench ()
      | "bddpar" -> bddpar_bench ()
      | "sat" -> sat_bench ()
      | "serve" -> serve_bench ()
      | "obs" -> obs_bench ()
      | "egraph" -> egraph_bench ()
      | "profile" -> profile ()
      | "all" ->
        table1 ();
        table2 ~full:false ();
        ablation ()
      | "all-full" ->
        table1 ();
        table2 ~full:true ();
        ablation ();
        extension ();
        bechamel ()
      | other -> Printf.eprintf "unknown target %s\n" other)
    args;
  finish_obs ()
