#!/bin/sh
# Perf regression gate for the BDD manager.
#
# Runs the bechamel BDD suite (`bench/main.exe bdd`), writes a fresh
# BENCH_bdd.json to a scratch path, and compares the end-to-end "table1"
# wall-clock against the baseline BENCH_bdd.json checked in at the repo
# root. Fails (exit 1) when the fresh run is more than 25% slower.
#
# Usage: bench/check_regression.sh [max_regression_percent]
set -eu

cd "$(dirname "$0")/.."

max_pct="${1:-25}"
baseline=BENCH_bdd.json
fresh="${TMPDIR:-/tmp}/BENCH_bdd.fresh.$$.json"

if [ ! -f "$baseline" ]; then
  echo "check_regression: no baseline $baseline (run: dune exec bench/main.exe bdd)" >&2
  exit 1
fi

dune build bench/main.exe
BENCH_BDD_OUT="$fresh" dune exec bench/main.exe -- bdd
trap 'rm -f "$fresh"' EXIT

extract() { # extract <file> <entry-name> -> seconds
  awk -v want="$2" '
    /"name":/ && /"seconds":/ {
      name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
      sec = $0; sub(/.*"seconds": /, "", sec); sub(/[,} ].*/, "", sec)
      if (name == want) { print sec; exit }
    }' "$1"
}

old=$(extract "$baseline" table1)
new=$(extract "$fresh" table1)

if [ -z "$old" ] || [ -z "$new" ]; then
  echo "check_regression: could not extract table1 seconds (old='$old' new='$new')" >&2
  exit 1
fi

echo "table1 wall-clock: baseline ${old}s, fresh ${new}s (limit +${max_pct}%)"
if awk -v o="$old" -v n="$new" -v p="$max_pct" \
     'BEGIN { exit !(n <= o * (1 + p / 100.0)) }'; then
  echo "check_regression: OK"
else
  echo "check_regression: FAIL — table1 regressed more than ${max_pct}% (${old}s -> ${new}s)" >&2
  exit 1
fi
