#!/bin/sh
# Perf regression gates.
#
# Gate 1 (BDD): runs the bechamel BDD suite (`bench/main.exe bdd`),
# writes a fresh BENCH_bdd.json to a scratch path, and compares the
# end-to-end "table1" wall-clock against the baseline BENCH_bdd.json
# checked in at the repo root. Fails (exit 1) when the fresh run is more
# than 25% slower.
#
# Gate 2 (par): runs `bench/main.exe par` (table1 + the table2 fast
# subset, minus C432 and with the anytime deadline disabled so results
# cannot depend on wall-clock scheduling, at several domain-pool sizes;
# BENCH_PAR_JOBS overrides the sizes, default here "1 4" to keep the
# gate affordable) and fails when
# either (a) any -j N output is not bit-identical to the -j 1 output —
# the lib/par determinism contract — or (b) the largest pool is more
# than max_regression_percent slower than -j 1, i.e. the parallel
# runtime's overhead regressed. Both checks are within-run, so the gate
# is meaningful on any machine, single-core hosts included.
#
# Gate 3 (incr): runs `bench/main.exe incr` (the dirty-region analysis
# engines vs their from-scratch equivalents on the Table 2 fast subset)
# and fails when either (a) any incremental result is not bit-identical
# to the from-scratch one, or (b) the incremental total is slower than
# the from-scratch total — the engines exist to be faster, so parity is
# the floor. Both checks are within-run.
#
# Gate 4 (obs): runs the optimizer on a fast-subset circuit with
# --stats/--report/--trace at -j 1 and -j 4 (deadline disabled), then
# validates both JSON exports with the bench validators (schema, types,
# counter invariants like bdd hits + misses = lookups, trace-event
# well-formedness) and requires the two reports' "deterministic"
# subtrees to be byte-identical — the lib/obs determinism contract.
# The -j 1 trace is left at $OBS_TRACE_OUT (default BENCH_obs_trace.json)
# for CI to archive.
#
# Gate 5 (guard): runs the table2 fast subset with a mid-run injected
# BDD blowup (`bench/main.exe table2-guard --inject ...`, deadline
# disabled) at -j 1 and -j 4. Every cell of that target CEC-checks its
# output against its input, so mere completion is the completion+CEC
# check; on top of that the gate requires (a) the injected-fault
# counter to actually be non-zero in the report — a silently unfired
# fault would make the gate vacuous — and (b) the two reports'
# deterministic subtrees to be byte-identical, i.e. degraded runs obey
# the same -j identity contract as healthy ones.
#
# Gate 6 (bddpar): runs `bench/main.exe bddpar` (partitioned parallel
# BDD engine vs the single-manager reference; BENCH_BDDPAR_CIRCUITS /
# BENCH_BDDPAR_JOBS override the workload, defaults here keep the gate
# affordable) and fails when (a) any partitioned result is not
# value-identical to the reference — checked by the bench itself via
# Bdd.transfer into one comparison manager — or (b) the -j 1 run is
# more than BDDPAR_GATE_PCT% (default 50) slower than the reference;
# -j 1 takes the very same single-manager code path, so headroom only
# absorbs scheduling/GC noise on shared hosts, not real regressions.
# On hosts with >= 4 domains it additionally requires at least one
# circuit to reach >= 1.5x combined speedup at the largest pool; on
# smaller hosts that clause is skipped (the within-run identity and
# -j 1 checks remain meaningful anywhere).
#
# Gate 7 (serve): the job-server contract, in two halves. (a) Warm ≡
# cold, end to end through the real binaries: at -j 1 and -j 4 it
# starts `lookahead_serve run` on a scratch Unix socket, submits a
# clean cla:16 job, a fault-injected one, and a clean one again (so a
# leaked fault arming would show), and requires every warm BLIF to be
# byte-identical (`cmp`) and every warm report's deterministic subtree
# identical (`compare-reports`) to the one-shot `lookahead_opt opt`
# run of the same spec. (b) Load/latency: runs the windowed load bench
# (`bench/main.exe serve`, which itself fails unless all jobs complete
# and its in-process warm-vs-cold identity samples agree) and compares
# the fresh clean-job p95 latency against the checked-in BENCH_serve
# baseline within SERVE_GATE_PCT (default 100 — latency under a full
# admission window is queueing-dominated, so the headroom absorbs host
# noise, not protocol regressions). The latency comparison is skipped
# with a note when BENCH_SERVE_JOBS shrinks the run below the
# baseline's job count, since the queue-wait profile then differs.
#
# Gate 8 (sat): the incremental CDCL core. Runs `bench/main.exe sat`
# (the sweep kernel on the Table 2 fast subset plus SAT-bound
# cross-architecture miters) at -j 1 and -j 4. The bench itself exits
# non-zero when a sweep loses equivalence or a swept BLIF's md5 differs
# from the seed solver's (the md5s are machine-independent, so this is
# the bit-identical-BLIF check against the pre-arena core). On top the
# gate requires (a) the "det" solver-stat objects of the two runs to be
# byte-identical — conflict counts, reductions, deletions and arena
# peaks are Det-class and must not depend on the pool size; (b) the
# fresh miter total to beat the recorded seed total within SAT_GATE_PCT
# (default 0 — the rewrite is ~5x faster, so even 0% slack leaves a
# several-fold margin for slow hosts); and (c) the database-reduction
# machinery to demonstrably fire: nonzero reduction totals in the bench
# and nonzero sat.reductions / sat.learnts_deleted in a full driver
# report on a Table 2 circuit (dalu).
#
# Gate 9 (obs-telem): the telemetry layer. Runs `bench/main.exe obs`
# (the serve-bench job mix through an in-process engine, journaling off
# vs journaling to a rotated JSONL file with periodic Metrics scrapes;
# the bench itself exits non-zero unless every job completes, the
# journal file validates, and the journal's Det digest is identical
# across warm -j 1, warm -j 4 and cold runs) and on top bounds the
# enabled-telemetry overhead at OBS_TELEM_GATE_PCT% (default 3) of the
# disabled baseline — production telemetry must be near-free.
#
# Gate 10 (egraph): the portfolio optimizer. Runs `bench/main.exe
# egraph` (the deadline-free fast subset through every fixed arm and
# the parallel portfolio; the bench itself exits non-zero when any arm
# or the portfolio loses equivalence, or when the portfolio's winning
# cost exceeds the best fixed arm's — "portfolio never worse" is the
# mode's whole contract) at -j 1 and -j 4 and requires the emitted
# JSON — winner names, costs to 3 decimals, per-arm cost maps and
# winner-BLIF md5s, no wall-clock fields — byte-identical across the
# two pool sizes and against the checked-in BENCH_egraph.json, so a
# schedule-dependent winner pick or an extraction drift shows up as a
# diff against the seed.
#
# Usage: bench/check_regression.sh [max_regression_percent]
# Skip a gate with SKIP_BDD_GATE=1 / SKIP_PAR_GATE=1 / SKIP_INCR_GATE=1
# / SKIP_OBS_GATE=1 / SKIP_GUARD_GATE=1 / SKIP_BDDPAR_GATE=1 /
# SKIP_SERVE_GATE=1 / SKIP_SAT_GATE=1 / SKIP_OBS_TELEM_GATE=1 /
# SKIP_EGRAPH_GATE=1.
set -eu

cd "$(dirname "$0")/.."

max_pct="${1:-25}"
fail=0

dune build bench/main.exe

# ------------------------------------------------------------------
# Gate 1: BDD manager (vs checked-in baseline)
# ------------------------------------------------------------------

bdd_fresh="${TMPDIR:-/tmp}/BENCH_bdd.fresh.$$.json"
par_fresh="${TMPDIR:-/tmp}/BENCH_par.fresh.$$.json"
incr_fresh="${TMPDIR:-/tmp}/BENCH_incr.fresh.$$.json"
obs_r1="${TMPDIR:-/tmp}/BENCH_obs.r1.$$.json"
obs_r4="${TMPDIR:-/tmp}/BENCH_obs.r4.$$.json"
guard_r1="${TMPDIR:-/tmp}/BENCH_guard.r1.$$.json"
guard_r4="${TMPDIR:-/tmp}/BENCH_guard.r4.$$.json"
bddpar_fresh="${TMPDIR:-/tmp}/BENCH_bddpar.fresh.$$.json"
serve_fresh="${TMPDIR:-/tmp}/BENCH_serve.fresh.$$.json"
serve_dir="${TMPDIR:-/tmp}/serve_gate.$$"
sat_r1="${TMPDIR:-/tmp}/BENCH_sat.r1.$$.json"
sat_r4="${TMPDIR:-/tmp}/BENCH_sat.r4.$$.json"
sat_report="${TMPDIR:-/tmp}/BENCH_sat.report.$$.json"
obs_telem_fresh="${TMPDIR:-/tmp}/BENCH_obs.fresh.$$.json"
egraph_r1="${TMPDIR:-/tmp}/BENCH_egraph.r1.$$.json"
egraph_r4="${TMPDIR:-/tmp}/BENCH_egraph.r4.$$.json"
trap 'rm -f "$bdd_fresh" "$par_fresh" "$incr_fresh" "$obs_r1" "$obs_r4" \
  "$guard_r1" "$guard_r4" "$bddpar_fresh" "$serve_fresh" \
  "$sat_r1" "$sat_r4" "$sat_report" "$sat_r1.det" "$sat_r4.det" \
  "$obs_telem_fresh" "$egraph_r1" "$egraph_r4"; \
  rm -rf "$serve_dir"' EXIT

extract() { # extract <file> <entry-name> -> seconds
  awk -v want="$2" '
    /"name":/ && /"seconds":/ {
      name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
      sec = $0; sub(/.*"seconds": /, "", sec); sub(/[,} ].*/, "", sec)
      if (name == want) { print sec; exit }
    }' "$1"
}

if [ "${SKIP_BDD_GATE:-0}" = 1 ]; then
  echo "check_regression: BDD gate skipped (SKIP_BDD_GATE=1)"
else
  baseline=BENCH_bdd.json
  if [ ! -f "$baseline" ]; then
    echo "check_regression: no baseline $baseline (run: dune exec bench/main.exe bdd)" >&2
    exit 1
  fi
  BENCH_BDD_OUT="$bdd_fresh" dune exec bench/main.exe -- bdd

  old=$(extract "$baseline" table1)
  new=$(extract "$bdd_fresh" table1)

  if [ -z "$old" ] || [ -z "$new" ]; then
    echo "check_regression: could not extract table1 seconds (old='$old' new='$new')" >&2
    exit 1
  fi

  echo "table1 wall-clock: baseline ${old}s, fresh ${new}s (limit +${max_pct}%)"
  if awk -v o="$old" -v n="$new" -v p="$max_pct" \
       'BEGIN { exit !(n <= o * (1 + p / 100.0)) }'; then
    echo "check_regression: BDD gate OK"
  else
    echo "check_regression: FAIL — table1 regressed more than ${max_pct}% (${old}s -> ${new}s)" >&2
    fail=1
  fi
fi

# ------------------------------------------------------------------
# Gate 2: parallel runtime (within-run: determinism + overhead)
# ------------------------------------------------------------------

if [ "${SKIP_PAR_GATE:-0}" = 1 ]; then
  echo "check_regression: par gate skipped (SKIP_PAR_GATE=1)"
else
  # `bench par` exits non-zero itself when outputs differ across -j.
  BENCH_PAR_OUT="$par_fresh" BENCH_PAR_JOBS="${BENCH_PAR_JOBS:-1 4}" \
    dune exec bench/main.exe -- par

  # Re-check identity from the JSON, and bound the parallel overhead:
  # the largest pool must not be more than max_pct% slower than -j 1.
  par_verdict=$(awk -v p="$max_pct" '
    /"jobs":/ {
      j = $0;  sub(/.*"jobs": /, "", j);       sub(/[,} ].*/, "", j)
      s = $0;  sub(/.*"seconds": /, "", s);    sub(/[,} ].*/, "", s)
      id = $0; sub(/.*"identical": /, "", id); sub(/[,} ].*/, "", id)
      if (id != "true") bad = 1
      if (j == 1) base = s
      last = s
    }
    END {
      if (bad) { print "nondeterministic"; exit }
      if (base == "" || last == "") { print "unparseable"; exit }
      if (last > base * (1 + p / 100.0)) { print "slow"; exit }
      print "ok"
    }' "$par_fresh")

  case "$par_verdict" in
    ok) echo "check_regression: par gate OK" ;;
    nondeterministic)
      echo "check_regression: FAIL — parallel output differs from -j 1" >&2
      fail=1 ;;
    slow)
      echo "check_regression: FAIL — parallel run more than ${max_pct}% slower than -j 1" >&2
      fail=1 ;;
    *)
      echo "check_regression: FAIL — could not parse $par_fresh" >&2
      fail=1 ;;
  esac
fi

# ------------------------------------------------------------------
# Gate 3: incremental analyses (within-run: identity + no slower)
# ------------------------------------------------------------------

if [ "${SKIP_INCR_GATE:-0}" = 1 ]; then
  echo "check_regression: incr gate skipped (SKIP_INCR_GATE=1)"
else
  # `bench incr` exits non-zero itself when any result differs.
  BENCH_INCR_OUT="$incr_fresh" dune exec bench/main.exe -- incr

  incr_verdict=$(awk '
    /"totals":/ {
      s = $0;  sub(/.*"scratch_s": /, "", s);      sub(/[,} ].*/, "", s)
      i = $0;  sub(/.*"incr_s": /, "", i);         sub(/[,} ].*/, "", i)
      id = $0; sub(/.*"all_identical": /, "", id); sub(/[,} ].*/, "", id)
      if (id != "true") { print "different"; exit }
      if (s == "" || i == "") { print "unparseable"; exit }
      if (i + 0 > s + 0) { print "slow"; exit }
      print "ok"; exit
    }' "$incr_fresh")

  case "$incr_verdict" in
    ok) echo "check_regression: incr gate OK" ;;
    different)
      echo "check_regression: FAIL — incremental analyses differ from from-scratch" >&2
      fail=1 ;;
    slow)
      echo "check_regression: FAIL — incremental analyses slower than from-scratch" >&2
      fail=1 ;;
    *)
      echo "check_regression: FAIL — could not parse $incr_fresh" >&2
      fail=1 ;;
  esac
fi

# ------------------------------------------------------------------
# Gate 4: observation exports (validity + cross -j determinism)
# ------------------------------------------------------------------

if [ "${SKIP_OBS_GATE:-0}" = 1 ]; then
  echo "check_regression: obs gate skipped (SKIP_OBS_GATE=1)"
else
  dune build bin/lookahead_opt.exe
  obs_circuit="${OBS_GATE_CIRCUIT:-lsu_stb_ctl_flat}"
  obs_trace="${OBS_TRACE_OUT:-BENCH_obs_trace.json}"

  # --time-limit 0: a deadline cut depends on wall-clock scheduling,
  # which is exactly what the identity check must rule out.
  dune exec bin/lookahead_opt.exe -- opt -c "$obs_circuit" --time-limit 0 \
    -j 1 --stats --report "$obs_r1" --trace "$obs_trace" >/dev/null
  dune exec bin/lookahead_opt.exe -- opt -c "$obs_circuit" --time-limit 0 \
    -j 4 --report "$obs_r4" >/dev/null

  obs_ok=1
  dune exec bench/main.exe -- check-report "$obs_r1" || obs_ok=0
  dune exec bench/main.exe -- check-report "$obs_r4" || obs_ok=0
  dune exec bench/main.exe -- check-trace "$obs_trace" || obs_ok=0
  dune exec bench/main.exe -- compare-reports "$obs_r1" "$obs_r4" || obs_ok=0

  if [ "$obs_ok" = 1 ]; then
    echo "check_regression: obs gate OK (trace at $obs_trace)"
  else
    echo "check_regression: FAIL — observation exports invalid or nondeterministic" >&2
    fail=1
  fi
fi

# ------------------------------------------------------------------
# Gate 5: degradation ladder (faulted completion + cross -j identity)
# ------------------------------------------------------------------

if [ "${SKIP_GUARD_GATE:-0}" = 1 ]; then
  echo "check_regression: guard gate skipped (SKIP_GUARD_GATE=1)"
else
  guard_inject="${GUARD_GATE_INJECT:-bdd@500:r}"

  # Each table2-guard cell asserts CEC-equivalence itself, so a clean
  # exit here IS the completion+CEC half of the gate.
  dune exec bench/main.exe -- table2-guard --inject "$guard_inject" \
    -j 1 --report "$guard_r1" >/dev/null
  dune exec bench/main.exe -- table2-guard --inject "$guard_inject" \
    -j 4 --report "$guard_r4" >/dev/null

  guard_ok=1
  dune exec bench/main.exe -- check-report "$guard_r1" || guard_ok=0
  dune exec bench/main.exe -- check-report "$guard_r4" || guard_ok=0
  dune exec bench/main.exe -- compare-reports "$guard_r1" "$guard_r4" \
    || guard_ok=0

  # The fault must actually have fired, or the gate checks nothing.
  if ! grep -q '"guard.injected.bdd_blowup":[1-9]' "$guard_r1"; then
    echo "check_regression: FAIL — injected fault ($guard_inject) never fired" >&2
    guard_ok=0
  fi

  if [ "$guard_ok" = 1 ]; then
    echo "check_regression: guard gate OK (inject $guard_inject)"
  else
    echo "check_regression: FAIL — faulted run broke, diverged across -j, or fault unfired" >&2
    fail=1
  fi
fi

# ------------------------------------------------------------------
# Gate 6: partitioned BDD engine (identity + -j 1 parity + scaling)
# ------------------------------------------------------------------

if [ "${SKIP_BDDPAR_GATE:-0}" = 1 ]; then
  echo "check_regression: bddpar gate skipped (SKIP_BDDPAR_GATE=1)"
else
  bddpar_pct="${BDDPAR_GATE_PCT:-50}"

  # `bench bddpar` exits non-zero itself when any partitioned result is
  # not value-identical to the single-manager reference.
  BENCH_BDDPAR_OUT="$bddpar_fresh" \
    BENCH_BDDPAR_JOBS="${BENCH_BDDPAR_JOBS:-1 4}" \
    BENCH_BDDPAR_CIRCUITS="${BENCH_BDDPAR_CIRCUITS:-C432 lsu_stb_ctl_flat}" \
    dune exec bench/main.exe -- bddpar

  bddpar_verdict=$(awk -v p="$bddpar_pct" '
    /"reference":/ {
      r = $0; sub(/.*"total_s": /, "", r); sub(/[,} ].*/, "", r)
      ref = r + 0
    }
    /"jobs": 1,/ {
      s = $0; sub(/.*"seconds": /, "", s); sub(/[,} ].*/, "", s)
      if (ref > 0 && s + 0 > ref * (1 + p / 100.0)) slow = 1
    }
    /"host_domains":/ {
      d = $0; sub(/.*"host_domains": /, "", d); sub(/[,} ].*/, "", d)
      domains = d + 0
    }
    /"best_speedup_at_top_jobs":/ {
      b = $0; sub(/.*"best_speedup_at_top_jobs": /, "", b)
      sub(/[,} ].*/, "", b); best = b + 0
    }
    /"all_identical":/ {
      id = $0; sub(/.*"all_identical": /, "", id); sub(/[,} ].*/, "", id)
      if (id != "true") bad = 1
    }
    END {
      if (bad) { print "nonidentical"; exit }
      if (slow) { print "slow"; exit }
      if (domains >= 4 && best < 1.5) { print "noscale"; exit }
      print "ok"
    }' "$bddpar_fresh")

  case "$bddpar_verdict" in
    ok) echo "check_regression: bddpar gate OK" ;;
    nonidentical)
      echo "check_regression: FAIL — partitioned BDD results differ from reference" >&2
      fail=1 ;;
    slow)
      echo "check_regression: FAIL — bddpar -j 1 more than ${bddpar_pct}% slower than reference" >&2
      fail=1 ;;
    noscale)
      echo "check_regression: FAIL — no circuit reached 1.5x at top -j on a >=4-domain host" >&2
      fail=1 ;;
    *)
      echo "check_regression: FAIL — could not parse $bddpar_fresh" >&2
      fail=1 ;;
  esac
fi

# ------------------------------------------------------------------
# Gate 7: job server (warm ≡ cold end-to-end + load/latency)
# ------------------------------------------------------------------

if [ "${SKIP_SERVE_GATE:-0}" = 1 ]; then
  echo "check_regression: serve gate skipped (SKIP_SERVE_GATE=1)"
else
  serve_pct="${SERVE_GATE_PCT:-100}"
  serve_inject="${SERVE_GATE_INJECT:-bdd@500:r}"
  dune build bin/lookahead_opt.exe bin/lookahead_serve.exe
  mkdir -p "$serve_dir"
  serve_ok=1

  # (a) Warm ≡ cold through the real binaries, clean and faulted, with
  # a clean job after the faulted one so leaked fault arming would show.
  for j in 1 4; do
    sock="$serve_dir/gate.$j.sock"
    dune exec bin/lookahead_serve.exe -- run -s "$sock" -j "$j" \
      >/dev/null 2>&1 &
    serve_pid=$!
    i=0
    while [ ! -S "$sock" ] && [ "$i" -lt 100 ]; do sleep 0.1; i=$((i+1)); done
    if [ ! -S "$sock" ]; then
      echo "check_regression: FAIL — serve gate: server did not start (-j $j)" >&2
      kill "$serve_pid" 2>/dev/null || true
      serve_ok=0
      continue
    fi

    dune exec bin/lookahead_opt.exe -- opt --adder cla:16 --time-limit 0 \
      -j "$j" --report "$serve_dir/cold.json" -o "$serve_dir/cold.blif" \
      >/dev/null
    dune exec bin/lookahead_opt.exe -- opt --adder cla:16 --time-limit 0 \
      -j "$j" --inject "$serve_inject" --report "$serve_dir/coldf.json" \
      -o "$serve_dir/coldf.blif" >/dev/null 2>&1

    dune exec bin/lookahead_serve.exe -- submit -s "$sock" --adder cla:16 \
      --time-limit 0 --report "$serve_dir/w1.json" -o "$serve_dir/w1.blif" \
      >/dev/null
    dune exec bin/lookahead_serve.exe -- submit -s "$sock" --adder cla:16 \
      --time-limit 0 --inject "$serve_inject" --report "$serve_dir/wf.json" \
      -o "$serve_dir/wf.blif" >/dev/null 2>&1
    dune exec bin/lookahead_serve.exe -- submit -s "$sock" --adder cla:16 \
      --time-limit 0 --report "$serve_dir/w2.json" -o "$serve_dir/w2.blif" \
      >/dev/null

    dune exec bin/lookahead_serve.exe -- shutdown -s "$sock" >/dev/null 2>&1 \
      || true
    wait "$serve_pid" || true

    for pair in "cold w1" "cold w2" "coldf wf"; do
      c=${pair% *}; w=${pair#* }
      if ! cmp -s "$serve_dir/$c.blif" "$serve_dir/$w.blif"; then
        echo "check_regression: FAIL — serve gate: warm $w BLIF differs from cold $c (-j $j)" >&2
        serve_ok=0
      fi
      if ! dune exec bench/main.exe -- compare-reports \
             "$serve_dir/$c.json" "$serve_dir/$w.json" >/dev/null; then
        echo "check_regression: FAIL — serve gate: warm $w report differs from cold $c (-j $j)" >&2
        serve_ok=0
      fi
    done
  done

  # (b) Load bench: completion + in-process identity are asserted by the
  # bench itself (non-zero exit); the latency gate compares clean p95
  # against the checked-in baseline.
  baseline=BENCH_serve.json
  if [ ! -f "$baseline" ]; then
    echo "check_regression: no baseline $baseline (run: dune exec bench/main.exe serve)" >&2
    serve_ok=0
  elif BENCH_SERVE_OUT="$serve_fresh" dune exec bench/main.exe -- serve -j 2
  then
    field() { # field <file> <key> -> value (first occurrence)
      awk -v k="\"$2\":" '
        index($0, k) {
          v = substr($0, index($0, k) + length(k))
          sub(/^[ ]*/, "", v); sub(/[,} ].*/, "", v)
          print v; exit
        }' "$1"
    }
    clean_p95() { # clean_p95 <file> -> p95_ms of the clean class
      awk '/"clean":/ {
        v = $0; sub(/.*"p95_ms": /, "", v); sub(/[,} ].*/, "", v)
        print v; exit
      }' "$1"
    }
    base_jobs=$(field "$baseline" jobs)
    fresh_jobs=$(field "$serve_fresh" jobs)
    base_p95=$(clean_p95 "$baseline")
    fresh_p95=$(clean_p95 "$serve_fresh")
    if [ "$(field "$serve_fresh" all_completed)" != true ] ||
       [ "$(field "$serve_fresh" all_identical)" != true ]; then
      echo "check_regression: FAIL — serve gate: load bench incomplete or nonidentical" >&2
      serve_ok=0
    elif [ "$fresh_jobs" != "$base_jobs" ]; then
      echo "serve latency comparison skipped: fresh run has $fresh_jobs jobs, baseline $base_jobs"
    elif [ -z "$base_p95" ] || [ -z "$fresh_p95" ]; then
      echo "check_regression: FAIL — serve gate: could not extract p95 (base='$base_p95' fresh='$fresh_p95')" >&2
      serve_ok=0
    else
      echo "serve clean p95: baseline ${base_p95}ms, fresh ${fresh_p95}ms (limit +${serve_pct}%)"
      if ! awk -v o="$base_p95" -v n="$fresh_p95" -v p="$serve_pct" \
           'BEGIN { exit !(n <= o * (1 + p / 100.0)) }'; then
        echo "check_regression: FAIL — serve gate: clean p95 regressed more than ${serve_pct}% (${base_p95}ms -> ${fresh_p95}ms)" >&2
        serve_ok=0
      fi
    fi
  else
    echo "check_regression: FAIL — serve gate: load bench failed" >&2
    serve_ok=0
  fi

  if [ "$serve_ok" = 1 ]; then
    echo "check_regression: serve gate OK"
  else
    fail=1
  fi
fi

# ------------------------------------------------------------------
# Gate 8: incremental SAT core (identity, -j det stats, speed, reduction)
# ------------------------------------------------------------------

if [ "${SKIP_SAT_GATE:-0}" = 1 ]; then
  echo "check_regression: sat gate skipped (SKIP_SAT_GATE=1)"
else
  sat_pct="${SAT_GATE_PCT:-0}"
  sat_ok=1

  # (a) The bench asserts sweep equivalence and seed-BLIF md5 identity
  # itself (non-zero exit on violation), at both pool sizes.
  if ! BENCH_SAT_OUT="$sat_r1" dune exec bench/main.exe -- sat -j 1; then
    echo "check_regression: FAIL — sat gate: bench failed at -j 1" >&2
    sat_ok=0
  fi
  if ! BENCH_SAT_OUT="$sat_r4" dune exec bench/main.exe -- sat -j 4 \
       >/dev/null; then
    echo "check_regression: FAIL — sat gate: bench failed at -j 4" >&2
    sat_ok=0
  fi

  if [ "$sat_ok" = 1 ]; then
    # (b) Det-class solver stats must be byte-identical across -j.
    grep -o '"det": {[^}]*}' "$sat_r1" > "$sat_r1.det"
    grep -o '"det": {[^}]*}' "$sat_r4" > "$sat_r4.det"
    if ! cmp -s "$sat_r1.det" "$sat_r4.det"; then
      echo "check_regression: FAIL — sat gate: det solver stats differ between -j 1 and -j 4" >&2
      sat_ok=0
    fi

    sat_field() { # sat_field <file> <key> -> value from the totals line
      awk -v k="\"$2\":" '
        /"totals":/ && index($0, k) {
          v = substr($0, index($0, k) + length(k))
          sub(/^[ ]*/, "", v); sub(/[,} ].*/, "", v)
          print v; exit
        }' "$1"
    }

    # (c) Miter total within bound of the recorded seed total.
    fresh_s=$(sat_field "$sat_r1" miter_s)
    seed_s=$(sat_field "$sat_r1" baseline_miter_s)
    if [ -z "$fresh_s" ] || [ -z "$seed_s" ]; then
      echo "check_regression: FAIL — sat gate: could not extract miter totals" >&2
      sat_ok=0
    else
      echo "sat miters: seed ${seed_s}s, fresh ${fresh_s}s (limit +${sat_pct}%)"
      if ! awk -v o="$seed_s" -v n="$fresh_s" -v p="$sat_pct" \
           'BEGIN { exit !(n <= o * (1 + p / 100.0)) }'; then
        echo "check_regression: FAIL — sat gate: miter total ${fresh_s}s exceeds seed ${seed_s}s (+${sat_pct}%)" >&2
        sat_ok=0
      fi
    fi

    # (d) Database reduction must actually fire — in the bench...
    if [ "$(sat_field "$sat_r1" reductions)" = 0 ]; then
      echo "check_regression: FAIL — sat gate: no clause-database reductions in the bench run" >&2
      sat_ok=0
    fi
    # ...and in a full driver flow on a Table 2 circuit.
    dune exec bin/lookahead_opt.exe -- opt -c dalu --time-limit 0 -j 1 \
      --report "$sat_report" >/dev/null
    red=$(grep -o '"sat.reductions":[0-9]*' "$sat_report" | head -1 | cut -d: -f2)
    del=$(grep -o '"sat.learnts_deleted":[0-9]*' "$sat_report" | head -1 | cut -d: -f2)
    if [ "${red:-0}" = 0 ] || [ "${del:-0}" = 0 ]; then
      echo "check_regression: FAIL — sat gate: dalu driver report shows reductions=${red:-?} deleted=${del:-?}" >&2
      sat_ok=0
    fi
  fi

  if [ "$sat_ok" = 1 ]; then
    echo "check_regression: sat gate OK"
  else
    fail=1
  fi
fi

# ------------------------------------------------------------------
# Gate 9: telemetry (overhead bound + journal Det-digest identity)
# ------------------------------------------------------------------

if [ "${SKIP_OBS_TELEM_GATE:-0}" = 1 ]; then
  echo "check_regression: obs-telem gate skipped (SKIP_OBS_TELEM_GATE=1)"
else
  obs_telem_pct="${OBS_TELEM_GATE_PCT:-3}"

  # `bench obs` exits non-zero itself on incompletion, an invalid
  # journal file, or a digest divergence across -j / warm-cold.
  if BENCH_OBS_OUT="$obs_telem_fresh" dune exec bench/main.exe -- obs; then
    overhead=$(awk '
      /"overhead_pct":/ {
        v = $0; sub(/.*"overhead_pct": /, "", v); sub(/[,} ].*/, "", v)
        print v; exit
      }' "$obs_telem_fresh")
    if [ -z "$overhead" ]; then
      echo "check_regression: FAIL — obs-telem gate: could not parse $obs_telem_fresh" >&2
      fail=1
    else
      echo "telemetry overhead: ${overhead}% (limit +${obs_telem_pct}%)"
      if awk -v o="$overhead" -v p="$obs_telem_pct" \
           'BEGIN { exit !(o <= p + 0.0) }'; then
        echo "check_regression: obs-telem gate OK"
      else
        echo "check_regression: FAIL — enabled telemetry costs ${overhead}% (> ${obs_telem_pct}%)" >&2
        fail=1
      fi
    fi
  else
    echo "check_regression: FAIL — obs-telem gate: bench obs failed" >&2
    fail=1
  fi
fi

# ------------------------------------------------------------------
# Gate 10: egraph portfolio (cost floor + cross-j / vs-seed identity)
# ------------------------------------------------------------------

if [ "${SKIP_EGRAPH_GATE:-0}" = 1 ]; then
  echo "check_regression: egraph gate skipped (SKIP_EGRAPH_GATE=1)"
else
  # `bench egraph` exits non-zero itself when any arm or the portfolio
  # breaks equivalence, or when the portfolio's winning cost exceeds
  # the best fixed arm on any circuit.
  egraph_ok=1
  if ! BENCH_EGRAPH_OUT="$egraph_r1" dune exec bench/main.exe -- egraph -j 1
  then
    echo "check_regression: FAIL — egraph gate: bench egraph -j 1 failed" >&2
    egraph_ok=0
  fi
  if ! BENCH_EGRAPH_OUT="$egraph_r4" dune exec bench/main.exe -- egraph -j 4
  then
    echo "check_regression: FAIL — egraph gate: bench egraph -j 4 failed" >&2
    egraph_ok=0
  fi

  if [ "$egraph_ok" = 1 ]; then
    # The JSON carries no wall-clock fields, so byte identity is the
    # determinism check: same winners, costs, arm maps and winner-BLIF
    # md5s no matter the pool size, and no drift against the seed.
    if ! cmp -s "$egraph_r1" "$egraph_r4"; then
      echo "check_regression: FAIL — egraph gate: -j 1 and -j 4 outputs differ" >&2
      egraph_ok=0
    fi
    if ! cmp -s "$egraph_r1" BENCH_egraph.json; then
      echo "check_regression: FAIL — egraph gate: output differs from checked-in BENCH_egraph.json" >&2
      egraph_ok=0
    fi
  fi

  if [ "$egraph_ok" = 1 ]; then
    echo "check_regression: egraph gate OK"
  else
    fail=1
  fi
fi

exit "$fail"
