#!/bin/sh
# Job-server smoke test: start `lookahead_serve run` (with a journal
# file and an SLO spec) on a scratch Unix socket, submit one small
# clean job and one fault-injected job, assert a well-formed success
# and a well-formed degradation response, scrape and validate the
# telemetry surfaces (metrics exposition, per-job trace, top, journal
# JSONL), then shut the server down and require it to exit cleanly.
#
# This is the cheap always-on CI check; the full warm-vs-cold identity
# and latency gates live in check_regression.sh (gates 7 and 9).
set -eu

cd "$(dirname "$0")/.."

sock="${TMPDIR:-/tmp}/serve_smoke.$$.sock"
out="${TMPDIR:-/tmp}/serve_smoke.$$"
mkdir -p "$out"
trap 'rm -rf "$out"; rm -f "$sock"' EXIT

dune build bin/lookahead_serve.exe bench/main.exe

dune exec bin/lookahead_serve.exe -- run -s "$sock" -j 2 \
  --journal "$out/journal.jsonl" --slo 'xs=60000,s=60000' \
  >/dev/null 2>&1 &
server_pid=$!
i=0
while [ ! -S "$sock" ] && [ "$i" -lt 100 ]; do sleep 0.1; i=$((i+1)); done
if [ ! -S "$sock" ]; then
  echo "smoke_serve: FAIL — server did not start listening" >&2
  kill "$server_pid" 2>/dev/null || true
  exit 1
fi

fail=0

# Clean job: must print the Table 2 metrics block and nothing on stderr
# about degradation.
if dune exec bin/lookahead_serve.exe -- submit -s "$sock" --adder cla:8 \
     --time-limit 0 -o "$out/clean.blif" \
     >"$out/clean.out" 2>"$out/clean.err"; then
  grep -q "delay" "$out/clean.out" || {
    echo "smoke_serve: FAIL — clean job printed no metrics" >&2; fail=1; }
  [ -s "$out/clean.blif" ] || {
    echo "smoke_serve: FAIL — clean job wrote no BLIF" >&2; fail=1; }
  grep -q "^\.model" "$out/clean.blif" || {
    echo "smoke_serve: FAIL — clean job BLIF is malformed" >&2; fail=1; }
  if grep -q "degraded" "$out/clean.err"; then
    echo "smoke_serve: FAIL — clean job reported degradation" >&2; fail=1
  fi
else
  echo "smoke_serve: FAIL — clean job did not succeed" >&2; fail=1
fi

# Faulted job: the injected BDD blowup must degrade the job through the
# guard ladder, yet the job still completes with metrics and a BLIF.
if dune exec bin/lookahead_serve.exe -- submit -s "$sock" --adder cla:8 \
     --time-limit 0 --inject 'bdd@500:r' --budget-nodes 30000 \
     -o "$out/faulted.blif" \
     >"$out/faulted.out" 2>"$out/faulted.err"; then
  grep -q "delay" "$out/faulted.out" || {
    echo "smoke_serve: FAIL — faulted job printed no metrics" >&2; fail=1; }
  [ -s "$out/faulted.blif" ] || {
    echo "smoke_serve: FAIL — faulted job wrote no BLIF" >&2; fail=1; }
  grep -q "degraded: yes" "$out/faulted.err" || {
    echo "smoke_serve: FAIL — faulted job did not report degradation" >&2
    fail=1; }
else
  echo "smoke_serve: FAIL — faulted job did not complete" >&2; fail=1
fi

# Server stats must show exactly the two jobs, both completed.
stats=$(dune exec bin/lookahead_serve.exe -- stats -s "$sock" 2>/dev/null)
echo "$stats" | grep -q "submitted *: *2" || {
  echo "smoke_serve: FAIL — stats do not show 2 submissions" >&2; fail=1; }
echo "$stats" | grep -q "completed *: *2" || {
  echo "smoke_serve: FAIL — stats do not show 2 completions" >&2; fail=1; }
echo "$stats" | grep -q "slo" || {
  echo "smoke_serve: FAIL — stats print no SLO table despite --slo" >&2
  fail=1; }

# Metrics endpoint: the text exposition must validate against the
# bench grammar checker and account for both jobs.
dune exec bin/lookahead_serve.exe -- metrics -s "$sock" \
  -o "$out/metrics.prom" 2>/dev/null || {
  echo "smoke_serve: FAIL — metrics scrape failed" >&2; fail=1; }
dune exec bench/main.exe -- check-exposition "$out/metrics.prom" \
  >/dev/null || {
  echo "smoke_serve: FAIL — metrics exposition is malformed" >&2; fail=1; }
grep -q 'lookahead_jobs_total{state="done"} 2' "$out/metrics.prom" || {
  echo "smoke_serve: FAIL — exposition does not count 2 completed jobs" >&2
  fail=1; }
dune exec bin/lookahead_serve.exe -- metrics -s "$sock" --json \
  2>/dev/null | grep -q '"schema": *"lookahead-metrics/1"' || {
  echo "smoke_serve: FAIL — metrics JSON mirror missing schema" >&2
  fail=1; }

# Per-job trace: job 1 finished moments ago, so its Chrome-trace slice
# must still be retained and well-formed.
dune exec bin/lookahead_serve.exe -- trace -s "$sock" 1 \
  -o "$out/trace1.json" 2>/dev/null || {
  echo "smoke_serve: FAIL — trace request for job 1 failed" >&2; fail=1; }
dune exec bench/main.exe -- check-trace "$out/trace1.json" >/dev/null || {
  echo "smoke_serve: FAIL — retained job trace is malformed" >&2; fail=1; }

# Live view, single CI iteration: plain output, must include the SLO
# table header.
dune exec bin/lookahead_serve.exe -- top -s "$sock" --iterations 1 \
  >"$out/top.out" 2>/dev/null || {
  echo "smoke_serve: FAIL — top failed" >&2; fail=1; }
grep -q "breaches" "$out/top.out" || {
  echo "smoke_serve: FAIL — top printed no SLO table" >&2; fail=1; }

# Graceful shutdown: the request must be acknowledged and the server
# process must exit on its own.
dune exec bin/lookahead_serve.exe -- shutdown -s "$sock" >/dev/null || {
  echo "smoke_serve: FAIL — shutdown request failed" >&2; fail=1; }
if ! wait "$server_pid"; then
  echo "smoke_serve: FAIL — server exited non-zero" >&2; fail=1
fi

# The journal must be valid JSONL with monotone seq and both lifecycle
# events; validated after shutdown so the file is complete and closed.
dune exec bench/main.exe -- check-journal "$out/journal.jsonl" \
  >/dev/null || {
  echo "smoke_serve: FAIL — job journal is missing or malformed" >&2
  fail=1; }

if [ "$fail" = 0 ]; then
  echo "smoke_serve: OK"
fi
exit "$fail"
