(** Cut-based structural technology mapping onto {!Library.cells}.

    Classic phase-aware covering: 4-feasible cuts are matched against a
    precomputed table of all permutation / input-phase / output-phase
    variants of every cell; dynamic programming picks the
    minimum-arrival match for each (node, phase); the cover is extracted
    from the outputs, inserting inverters where a phase is not produced
    natively. Delay is then re-evaluated with the load model
    (intrinsic + load_factor * fanout capacitance). *)

(** Reference to the value of AIG node [node], possibly inverted. *)
type signal = { node : int; inverted : bool }

type gate = {
  cell : Library.cell;
  fanins : signal array;  (** in cell-input order *)
  out : signal;
}

type netlist = {
  gates : gate list;  (** topological order *)
  primary_inputs : int list;  (** AIG node ids *)
  primary_outputs : (string * signal) list;
  source : Aig.t;
}

(** [map g] covers the AIG with library gates. *)
val map : Aig.t -> netlist

(** Number of gates (inverters included). *)
val num_gates : netlist -> int

(** Total cell area (INV = 1). *)
val area : netlist -> float

(** Critical-path delay in ps under the load model, with 2 fF of load on
    every primary output. *)
val delay : netlist -> float

(** [check netlist] verifies the mapped netlist against its source AIG by
    random simulation; used by the test suite. *)
val check : ?rounds:int -> netlist -> bool
