(** Static timing analysis on mapped netlists: arrival and required
    times under the load model, per-gate slack, and critical-path
    extraction for reporting. *)

type report = {
  delay : float;  (** critical-path delay, ps *)
  arrival : ((int * bool), float) Hashtbl.t;  (** per signal *)
  slack : ((int * bool), float) Hashtbl.t;
}

val analyze : Mapper.netlist -> report

(** Gates on one critical path, from inputs to the failing output. *)
val critical_path : Mapper.netlist -> report -> Mapper.gate list

(** Human-readable timing report (worst path, slack histogram). *)
val pp_report : Format.formatter -> Mapper.netlist * report -> unit
