(** Depth-oriented k-LUT covering (FPGA-style mapping), built on the same
    cut enumeration as the standard-cell mapper. Gives the LUT count /
    LUT depth view of a circuit, a common secondary quality metric for
    delay-oriented synthesis. *)

type lut = {
  func : Logic.Tt.t;  (** over the leaves *)
  leaves : int array;  (** AIG node ids *)
  root : int;
}

type netlist = {
  luts : lut list;  (** topological *)
  primary_outputs : (string * Aig.lit) list;
  source : Aig.t;
}

(** [map ~k g] covers the AIG with k-input LUTs, minimizing depth first
    (FlowMap-style arrival selection) with a light area tie-break. *)
val map : ?k:int -> Aig.t -> netlist

val num_luts : netlist -> int

(** LUT levels of the deepest output. *)
val depth : netlist -> int

(** Random-simulation check of the cover against the source AIG. *)
val check : ?rounds:int -> netlist -> bool
