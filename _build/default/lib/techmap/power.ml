let dynamic_mw ?(sim_rounds = 32) n =
  let g = n.Mapper.source in
  let ni = Aig.num_inputs g in
  let nn = Aig.num_nodes g in
  let ones = Array.make nn 0 in
  let st = Random.State.make [| 0x9043 land max_int; nn |] in
  for _ = 1 to sim_rounds do
    let words = Array.init ni (fun _ -> Random.State.int64 st Int64.max_int) in
    let values = Aig.sim g words in
    for id = 0 to nn - 1 do
      let rec popcount w acc =
        if w = 0L then acc
        else popcount (Int64.logand w (Int64.sub w 1L)) (acc + 1)
      in
      ones.(id) <- ones.(id) + popcount values.(id) 0
    done
  done;
  let total_bits = float_of_int (64 * sim_rounds) in
  let probability id = float_of_int ones.(id) /. total_bits in
  (* Load per produced signal, reusing the mapper's model: gate input pins
     plus 2 fF on each primary output. *)
  let load = Hashtbl.create 256 in
  let add (s : Mapper.signal) c =
    let key = (s.Mapper.node, s.Mapper.inverted) in
    let prev = try Hashtbl.find load key with Not_found -> 0.0 in
    Hashtbl.replace load key (prev +. c)
  in
  List.iter
    (fun (gate : Mapper.gate) ->
      Array.iter (fun s -> add s gate.Mapper.cell.Library.input_cap) gate.Mapper.fanins)
    n.Mapper.gates;
  List.iter (fun (_, s) -> add s 2.0) n.Mapper.primary_outputs;
  let vdd2 = Library.vdd *. Library.vdd in
  let watts =
    Hashtbl.fold
      (fun (node, _) cap acc ->
        let p = probability node in
        let activity = 2.0 *. p *. (1.0 -. p) in
        acc +. (0.5 *. activity *. (cap *. 1e-15) *. vdd2 *. Library.clock_hz))
      load 0.0
  in
  watts *. 1e3
