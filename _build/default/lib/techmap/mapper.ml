type signal = { node : int; inverted : bool }

type gate = {
  cell : Library.cell;
  fanins : signal array;
  out : signal;
}

type netlist = {
  gates : gate list;
  primary_inputs : int list;
  primary_outputs : (string * signal) list;
  source : Aig.t;
}

(* One way of realizing a cut function with a cell: cell input [i]
   connects to cut leaf [perm.(i)], inverted when bit [i] of [phases] is
   set. *)
type variant = { cell : Library.cell; perm : int array; phases : int }

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

(* Match table: truth table (over the cut leaves) -> variants realizing
   exactly that function. Built once. *)
let match_table =
  lazy
    (let table = Hashtbl.create 4096 in
     List.iter
       (fun (cell : Library.cell) ->
         let a = cell.Library.arity in
         let perms = permutations (List.init a Fun.id) in
         List.iter
           (fun perm ->
             let perm = Array.of_list perm in
             for phases = 0 to (1 lsl a) - 1 do
               (* Function over the leaves: leaf j feeds the cell inputs i
                  with perm.(i) = j, inverted per phase bit. *)
               let f =
                 Logic.Tt.of_fun a (fun m ->
                     let v = ref 0 in
                     for i = 0 to a - 1 do
                       let leaf_bit = (m lsr perm.(i)) land 1 = 1 in
                       let bit = leaf_bit <> ((phases lsr i) land 1 = 1) in
                       if bit then v := !v lor (1 lsl i)
                     done;
                     Logic.Tt.get_bit cell.Library.func !v)
               in
               let key = (a, Logic.Tt.to_hex f) in
               let prev = try Hashtbl.find table key with Not_found -> [] in
               Hashtbl.replace table key ({ cell; perm; phases } :: prev)
             done)
           perms)
       Library.cells;
     table)

let matches_for tt =
  let key = (Logic.Tt.num_vars tt, Logic.Tt.to_hex tt) in
  try Hashtbl.find (Lazy.force match_table) key with Not_found -> []

(* Chosen implementation of one (node, phase). *)
type choice =
  | Primary  (** primary input or constant, positive phase *)
  | Inverter  (** realized from the opposite phase through an INV *)
  | Match of variant * int array  (** variant + cut leaves *)

let inv_delay = Library.inverter.Library.intrinsic

let map g =
  let nn = Aig.num_nodes g in
  let cuts = Aig.Cuts.enumerate g ~k:4 ~per_node:6 in
  let arrival = Array.make (2 * nn) infinity in
  let choice = Array.make (2 * nn) Primary in
  let idx id inverted = (2 * id) + if inverted then 1 else 0 in
  arrival.(idx 0 false) <- 0.0;
  arrival.(idx 0 true) <- 0.0;
  choice.(idx 0 true) <- Inverter;
  List.iter
    (fun l ->
      let id = Aig.node_of_lit l in
      arrival.(idx id false) <- 0.0;
      arrival.(idx id true) <- inv_delay;
      choice.(idx id true) <- Inverter)
    (Aig.inputs g);
  for id = 1 to nn - 1 do
    if Aig.is_and g id then begin
      List.iter
        (fun (c : Aig.Cuts.cut) ->
          if Array.length c.leaves >= 1 && c.leaves <> [| id |] then begin
            let try_phase tt inverted =
              List.iter
                (fun (v : variant) ->
                  let worst = ref 0.0 in
                  Array.iteri
                    (fun i leaf_pos ->
                      let leaf = c.leaves.(leaf_pos) in
                      let inv = (v.phases lsr i) land 1 = 1 in
                      let a = arrival.(idx leaf inv) in
                      if a > !worst then worst := a)
                    v.perm;
                  let a = !worst +. v.cell.Library.intrinsic in
                  if a < arrival.(idx id inverted) then begin
                    arrival.(idx id inverted) <- a;
                    choice.(idx id inverted) <- Match (v, c.leaves)
                  end)
                (matches_for tt)
            in
            try_phase c.tt false;
            try_phase (Logic.Tt.lnot c.tt) true
          end)
        cuts.(id);
      (* Phase relaxation through inverters, both directions. *)
      let relax a b =
        if arrival.(a) +. inv_delay < arrival.(b) then begin
          arrival.(b) <- arrival.(a) +. inv_delay;
          choice.(b) <- Inverter
        end
      in
      relax (idx id false) (idx id true);
      relax (idx id true) (idx id false)
    end
  done;
  (* Extract the cover from the outputs. *)
  let gates = ref [] in
  let produced = Hashtbl.create 256 in
  let rec require id inverted =
    if not (Hashtbl.mem produced (id, inverted)) then begin
      Hashtbl.replace produced (id, inverted) ();
      match choice.(idx id inverted) with
      | Primary -> ()
      | Inverter ->
        require id (not inverted);
        gates :=
          {
            cell = Library.inverter;
            fanins = [| { node = id; inverted = not inverted } |];
            out = { node = id; inverted };
          }
          :: !gates
      | Match (v, leaves) ->
        let fanins =
          Array.map
            (fun i ->
              let leaf = leaves.(v.perm.(i)) in
              let inv = (v.phases lsr i) land 1 = 1 in
              require leaf inv;
              { node = leaf; inverted = inv })
            (Array.init v.cell.Library.arity Fun.id)
        in
        gates := { cell = v.cell; fanins; out = { node = id; inverted } } :: !gates
    end
  in
  let primary_outputs =
    List.map
      (fun (name, l) ->
        let id = Aig.node_of_lit l and inv = Aig.is_complemented l in
        if id <> 0 then require id inv;
        (name, { node = id; inverted = inv }))
      (Aig.outputs g)
  in
  {
    gates = List.rev !gates;
    primary_inputs = List.map Aig.node_of_lit (Aig.inputs g);
    primary_outputs;
    source = g;
  }

let num_gates n = List.length n.gates
let area n =
  List.fold_left (fun acc (g : gate) -> acc +. g.cell.Library.area) 0.0 n.gates

(* Capacitive load on each produced signal. *)
let loads n =
  let load = Hashtbl.create 256 in
  let add s c =
    let prev = try Hashtbl.find load (s.node, s.inverted) with Not_found -> 0.0 in
    Hashtbl.replace load (s.node, s.inverted) (prev +. c)
  in
  List.iter
    (fun (g : gate) ->
      Array.iter (fun s -> add s g.cell.Library.input_cap) g.fanins)
    n.gates;
  List.iter (fun (_, s) -> add s 2.0) n.primary_outputs;
  load

let delay n =
  let load = loads n in
  let arrival = Hashtbl.create 256 in
  let get s =
    try Hashtbl.find arrival (s.node, s.inverted) with Not_found -> 0.0
  in
  List.iter
    (fun (g : gate) ->
      let worst = Array.fold_left (fun acc s -> max acc (get s)) 0.0 g.fanins in
      let l =
        try Hashtbl.find load (g.out.node, g.out.inverted) with Not_found -> 0.0
      in
      let a =
        worst +. g.cell.Library.intrinsic +. (g.cell.Library.load_factor *. l)
      in
      Hashtbl.replace arrival (g.out.node, g.out.inverted) a)
    n.gates;
  List.fold_left (fun acc (_, s) -> max acc (get s)) 0.0 n.primary_outputs

let check ?(rounds = 16) n =
  let g = n.source in
  let ni = Aig.num_inputs g in
  let st = Random.State.make [| 0x7a9; ni |] in
  let ok = ref true in
  for _ = 1 to rounds do
    let words = Array.init ni (fun _ -> Random.State.int64 st Int64.max_int) in
    let values = Aig.sim g words in
    (* Evaluate the mapped netlist on the same vectors. *)
    let sig_values = Hashtbl.create 256 in
    let value_of s =
      match Hashtbl.find_opt sig_values (s.node, s.inverted) with
      | Some w -> w
      | None ->
        (* Only primary inputs and constants may be read directly; an
           internal signal missing here means the cover is incomplete. *)
        if not (s.node = 0 || Aig.is_input g s.node) then ok := false;
        let w = values.(s.node) in
        if s.inverted then Int64.lognot w else w
    in
    List.iter
      (fun (g' : gate) ->
        let a = g'.cell.Library.arity in
        let out = ref 0L in
        for bitpos = 0 to 63 do
          let v = ref 0 in
          for i = 0 to a - 1 do
            let w = value_of g'.fanins.(i) in
            if Int64.logand (Int64.shift_right_logical w bitpos) 1L = 1L then
              v := !v lor (1 lsl i)
          done;
          if Logic.Tt.get_bit g'.cell.Library.func !v then
            out := Int64.logor !out (Int64.shift_left 1L bitpos)
        done;
        Hashtbl.replace sig_values (g'.out.node, g'.out.inverted) !out)
      n.gates;
    List.iter
      (fun (_, s) ->
        let mapped = value_of s in
        let golden =
          let w = values.(s.node) in
          if s.inverted then Int64.lognot w else w
        in
        if mapped <> golden then ok := false)
      n.primary_outputs
  done;
  !ok
