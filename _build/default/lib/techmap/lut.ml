type lut = { func : Logic.Tt.t; leaves : int array; root : int }

type netlist = {
  luts : lut list;
  primary_outputs : (string * Aig.lit) list;
  source : Aig.t;
}

let map ?(k = 4) g =
  let cuts = Aig.Cuts.enumerate g ~k ~per_node:8 in
  let nn = Aig.num_nodes g in
  let arrival = Array.make nn 0 in
  let best : Aig.Cuts.cut option array = Array.make nn None in
  for id = 1 to nn - 1 do
    if Aig.is_and g id then begin
      let eval (c : Aig.Cuts.cut) =
        ( Array.fold_left (fun acc leaf -> max acc arrival.(leaf)) 0 c.leaves + 1,
          Array.length c.leaves )
      in
      let choice =
        List.fold_left
          (fun acc (c : Aig.Cuts.cut) ->
            if c.leaves = [| id |] then acc
            else
              match acc with
              | None -> Some (c, eval c)
              | Some (_, bcost) ->
                let cost = eval c in
                if cost < bcost then Some (c, cost) else acc)
          None cuts.(id)
      in
      match choice with
      | Some (c, (a, _)) ->
        arrival.(id) <- a;
        best.(id) <- Some c
      | None -> assert false
    end
  done;
  let luts = ref [] in
  let covered = Hashtbl.create 256 in
  let rec require id =
    if (not (Hashtbl.mem covered id)) && Aig.is_and g id then begin
      Hashtbl.replace covered id ();
      let c = match best.(id) with Some c -> c | None -> assert false in
      Array.iter require c.leaves;
      luts := { func = c.tt; leaves = c.leaves; root = id } :: !luts
    end
  in
  let primary_outputs = Aig.outputs g in
  List.iter (fun (_, l) -> require (Aig.node_of_lit l)) primary_outputs;
  (* The recursion pushes parents before children; restore topological
     order by sorting on node id (ids are topological in the AIG). *)
  let luts = List.sort (fun a b -> compare a.root b.root) !luts in
  { luts; primary_outputs; source = g }

let num_luts n = List.length n.luts

let depth n =
  let dep = Hashtbl.create 256 in
  List.iter
    (fun l ->
      let d =
        Array.fold_left
          (fun acc leaf ->
            max acc (try Hashtbl.find dep leaf with Not_found -> 0))
          0 l.leaves
      in
      Hashtbl.replace dep l.root (d + 1))
    n.luts;
  List.fold_left
    (fun acc (_, l) ->
      max acc
        (try Hashtbl.find dep (Aig.node_of_lit l) with Not_found -> 0))
    0 n.primary_outputs

let check ?(rounds = 8) n =
  let g = n.source in
  let ni = Aig.num_inputs g in
  let st = Random.State.make [| 0x107 land max_int; ni |] in
  let ok = ref true in
  for _ = 1 to rounds do
    let words = Array.init ni (fun _ -> Random.State.int64 st Int64.max_int) in
    let values = Aig.sim g words in
    let lut_values = Hashtbl.create 256 in
    let value_of id =
      match Hashtbl.find_opt lut_values id with
      | Some w -> w
      | None -> values.(id) (* primary input or constant *)
    in
    List.iter
      (fun l ->
        let out = ref 0L in
        for bit = 0 to 63 do
          let v = ref 0 in
          Array.iteri
            (fun i leaf ->
              if
                Int64.logand (Int64.shift_right_logical (value_of leaf) bit) 1L
                = 1L
              then v := !v lor (1 lsl i))
            l.leaves;
          if Logic.Tt.get_bit l.func !v then
            out := Int64.logor !out (Int64.shift_left 1L bit)
        done;
        Hashtbl.replace lut_values l.root !out)
      n.luts;
    List.iter
      (fun (_, ol) ->
        let got = value_of (Aig.node_of_lit ol) in
        if got <> values.(Aig.node_of_lit ol) then ok := false)
      n.primary_outputs
  done;
  !ok
