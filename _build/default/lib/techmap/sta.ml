type report = {
  delay : float;
  arrival : (int * bool, float) Hashtbl.t;
  slack : (int * bool, float) Hashtbl.t;
}

let key (s : Mapper.signal) = (s.Mapper.node, s.Mapper.inverted)

let loads n =
  let load = Hashtbl.create 256 in
  let add s c =
    let prev = try Hashtbl.find load (key s) with Not_found -> 0.0 in
    Hashtbl.replace load (key s) (prev +. c)
  in
  List.iter
    (fun (g : Mapper.gate) ->
      Array.iter (fun s -> add s g.Mapper.cell.Library.input_cap) g.Mapper.fanins)
    n.Mapper.gates;
  List.iter (fun (_, s) -> add s 2.0) n.Mapper.primary_outputs;
  load

let gate_delay load (g : Mapper.gate) =
  let l = try Hashtbl.find load (key g.Mapper.out) with Not_found -> 0.0 in
  g.Mapper.cell.Library.intrinsic +. (g.Mapper.cell.Library.load_factor *. l)

let analyze n =
  let load = loads n in
  let arrival = Hashtbl.create 256 in
  let get_arrival s = try Hashtbl.find arrival (key s) with Not_found -> 0.0 in
  List.iter
    (fun (g : Mapper.gate) ->
      let worst =
        Array.fold_left (fun acc s -> max acc (get_arrival s)) 0.0 g.Mapper.fanins
      in
      Hashtbl.replace arrival (key g.Mapper.out) (worst +. gate_delay load g))
    n.Mapper.gates;
  let delay =
    List.fold_left
      (fun acc (_, s) -> max acc (get_arrival s))
      0.0 n.Mapper.primary_outputs
  in
  (* Required times backwards: outputs must settle by [delay]. *)
  let required = Hashtbl.create 256 in
  let set_required k v =
    match Hashtbl.find_opt required k with
    | Some prev when prev <= v -> ()
    | _ -> Hashtbl.replace required k v
  in
  List.iter (fun (_, s) -> set_required (key s) delay) n.Mapper.primary_outputs;
  List.iter
    (fun (g : Mapper.gate) ->
      let r =
        match Hashtbl.find_opt required (key g.Mapper.out) with
        | Some r -> r
        | None -> delay
      in
      let d = gate_delay load g in
      Array.iter (fun s -> set_required (key s) (r -. d)) g.Mapper.fanins)
    (List.rev n.Mapper.gates);
  let slack = Hashtbl.create 256 in
  Hashtbl.iter
    (fun k a ->
      let r = match Hashtbl.find_opt required k with Some r -> r | None -> delay in
      Hashtbl.replace slack k (r -. a))
    arrival;
  { delay; arrival; slack }

let critical_path n r =
  let load = loads n in
  let producer = Hashtbl.create 256 in
  List.iter
    (fun (g : Mapper.gate) -> Hashtbl.replace producer (key g.Mapper.out) g)
    n.Mapper.gates;
  let get_arrival s = try Hashtbl.find r.arrival (key s) with Not_found -> 0.0 in
  (* Deepest output, then walk the worst fanin. *)
  let start =
    List.fold_left
      (fun acc (_, s) ->
        match acc with
        | Some best when get_arrival best >= get_arrival s -> acc
        | _ -> Some s)
      None n.Mapper.primary_outputs
  in
  ignore load;
  match start with
  | None -> []
  | Some s ->
    let rec walk s acc =
      match Hashtbl.find_opt producer (key s) with
      | None -> acc
      | Some g ->
        let worst =
          Array.fold_left
            (fun acc' f ->
              match acc' with
              | Some best when get_arrival best >= get_arrival f -> acc'
              | _ -> Some f)
            None g.Mapper.fanins
        in
        (match worst with
         | None -> g :: acc
         | Some f -> walk f (g :: acc))
    in
    walk s []

let pp_report ppf (n, r) =
  Format.fprintf ppf "critical path delay: %.1f ps@." r.delay;
  let path = critical_path n r in
  Format.fprintf ppf "worst path (%d gates):@." (List.length path);
  List.iter
    (fun (g : Mapper.gate) ->
      let a =
        try Hashtbl.find r.arrival (key g.Mapper.out) with Not_found -> 0.0
      in
      Format.fprintf ppf "  %-7s -> n%d%s  @@ %.1f ps@."
        g.Mapper.cell.Library.name g.Mapper.out.Mapper.node
        (if g.Mapper.out.Mapper.inverted then "'" else "")
        a)
    path;
  (* Coarse slack histogram. *)
  let buckets = Array.make 5 0 in
  Hashtbl.iter
    (fun _ s ->
      let b =
        if r.delay <= 0.0 then 0
        else
          let frac = s /. r.delay in
          if frac < 0.05 then 0
          else if frac < 0.25 then 1
          else if frac < 0.5 then 2
          else if frac < 0.75 then 3
          else 4
      in
      buckets.(b) <- buckets.(b) + 1)
    r.slack;
  Format.fprintf ppf "slack histogram (critical..relaxed): %d %d %d %d %d@."
    buckets.(0) buckets.(1) buckets.(2) buckets.(3) buckets.(4)
