(** Gate-level Verilog export of a mapped netlist: one cell instance per
    gate, cells emitted as behavioural modules alongside (so the file is
    self-contained and simulable). *)

val write : ?module_name:string -> Format.formatter -> Mapper.netlist -> unit

val to_string : ?module_name:string -> Mapper.netlist -> string
