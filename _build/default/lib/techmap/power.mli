(** Dynamic-power estimation for mapped netlists at the paper's operating
    point (1 GHz, Table 2).

    Signal probabilities come from random simulation of the source AIG;
    the switching activity of a net is [2 p (1-p)] (temporal
    independence), and the dynamic power is
    [sum over nets of 1/2 * activity * C_load * Vdd^2 * f]. *)

(** Power in mW at {!Library.clock_hz} and {!Library.vdd}. *)
val dynamic_mw : ?sim_rounds:int -> Mapper.netlist -> float
