(** A synthetic 70nm-class standard-cell library.

    The paper maps to a commercial 70nm library; that library is not
    redistributable, so this one provides cells of the usual CMOS menu
    with logical-effort-style timing: a gate's delay is
    [intrinsic + load_factor * fanout_caps]. Absolute numbers are
    representative (inverter FO4 around 25 ps); the evaluation only
    relies on ratios between optimizers, which survive any reasonable
    library (see DESIGN.md). *)

type cell = {
  name : string;
  arity : int;
  func : Logic.Tt.t;  (** over [arity] inputs *)
  area : float;  (** normalized to INV = 1 *)
  intrinsic : float;  (** ps *)
  load_factor : float;  (** ps per fF of output load *)
  input_cap : float;  (** fF per input pin *)
}

(** All cells of the library (INV, BUF, NAND2-4, NOR2-4, AND2, OR2,
    XOR2, XNOR2, MUX2, AOI21, OAI21, AOI22, OAI22). *)
val cells : cell list

val inverter : cell

(** Supply voltage (V) and the nominal clock (Hz) used for the power
    numbers of Table 2. *)
val vdd : float

val clock_hz : float

(** [find name] looks a cell up by name. *)
val find : string -> cell
