lib/techmap/library.ml: List Logic
