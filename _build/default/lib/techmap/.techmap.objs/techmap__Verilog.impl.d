lib/techmap/verilog.ml: Aig Array Buffer Format Fun Library List Logic Mapper Printf String
