lib/techmap/sta.ml: Array Format Hashtbl Library List Mapper
