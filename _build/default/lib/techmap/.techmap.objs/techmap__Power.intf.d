lib/techmap/power.mli: Mapper
