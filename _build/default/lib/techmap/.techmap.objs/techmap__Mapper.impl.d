lib/techmap/mapper.ml: Aig Array Fun Hashtbl Int64 Lazy Library List Logic Random
