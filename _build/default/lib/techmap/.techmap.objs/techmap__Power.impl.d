lib/techmap/power.ml: Aig Array Hashtbl Int64 Library List Mapper Random
