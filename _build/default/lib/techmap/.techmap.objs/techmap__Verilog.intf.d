lib/techmap/verilog.mli: Format Mapper
