lib/techmap/mapper.mli: Aig Library
