lib/techmap/sta.mli: Format Hashtbl Mapper
