lib/techmap/lut.ml: Aig Array Hashtbl Int64 List Logic Random
