lib/techmap/lut.mli: Aig Logic
