lib/techmap/library.mli: Logic
