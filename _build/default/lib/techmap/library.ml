type cell = {
  name : string;
  arity : int;
  func : Logic.Tt.t;
  area : float;
  intrinsic : float;
  load_factor : float;
  input_cap : float;
}

let tt n f = Logic.Tt.of_fun n f
let bit m i = (m lsr i) land 1 = 1

let mk name arity f area intrinsic load_factor input_cap =
  { name; arity; func = tt arity f; area; intrinsic; load_factor; input_cap }

let cells =
  [
    mk "INV" 1 (fun m -> not (bit m 0)) 1.0 8.0 3.2 1.0;
    mk "BUF" 1 (fun m -> bit m 0) 1.5 14.0 2.4 1.0;
    mk "NAND2" 2 (fun m -> not (bit m 0 && bit m 1)) 1.4 12.0 3.6 1.2;
    mk "NAND3" 3 (fun m -> not (bit m 0 && bit m 1 && bit m 2)) 1.9 17.0 4.2 1.4;
    mk "NAND4" 4
      (fun m -> not (bit m 0 && bit m 1 && bit m 2 && bit m 3))
      2.4 23.0 4.8 1.6;
    mk "NOR2" 2 (fun m -> not (bit m 0 || bit m 1)) 1.4 14.0 4.4 1.2;
    mk "NOR3" 3 (fun m -> not (bit m 0 || bit m 1 || bit m 2)) 1.9 21.0 5.4 1.4;
    mk "NOR4" 4
      (fun m -> not (bit m 0 || bit m 1 || bit m 2 || bit m 3))
      2.4 29.0 6.4 1.6;
    mk "AND2" 2 (fun m -> bit m 0 && bit m 1) 1.8 18.0 3.0 1.1;
    mk "OR2" 2 (fun m -> bit m 0 || bit m 1) 1.8 20.0 3.0 1.1;
    mk "XOR2" 2 (fun m -> bit m 0 <> bit m 1) 2.6 26.0 4.0 1.8;
    mk "XNOR2" 2 (fun m -> bit m 0 = bit m 1) 2.6 26.0 4.0 1.8;
    mk "MUX2" 3
      (fun m -> if bit m 2 then bit m 1 else bit m 0)
      2.8 24.0 3.6 1.5;
    mk "AOI21" 3 (fun m -> not ((bit m 0 && bit m 1) || bit m 2)) 1.9 16.0 4.4 1.3;
    mk "OAI21" 3 (fun m -> not ((bit m 0 || bit m 1) && bit m 2)) 1.9 16.0 4.4 1.3;
    mk "AOI22" 4
      (fun m -> not ((bit m 0 && bit m 1) || (bit m 2 && bit m 3)))
      2.4 20.0 5.0 1.4;
    mk "OAI22" 4
      (fun m -> not ((bit m 0 || bit m 1) && (bit m 2 || bit m 3)))
      2.4 20.0 5.0 1.4;
  ]

let find name =
  match List.find_opt (fun c -> c.name = name) cells with
  | Some c -> c
  | None -> raise Not_found

let inverter = find "INV"
let vdd = 1.0
let clock_hz = 1.0e9
