let sanitize name =
  let ok c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  let s = String.map (fun c -> if ok c then c else '_') name in
  if s = "" || (s.[0] >= '0' && s.[0] <= '9') then "s_" ^ s else s

let signal_name g (s : Mapper.signal) =
  let base =
    match Aig.input_name g s.Mapper.node with
    | Some n -> sanitize n
    | None ->
      if s.Mapper.node = 0 then "const0"
      else if Aig.is_input g s.Mapper.node then
        Printf.sprintf "pi%d" (Aig.input_index g s.Mapper.node)
      else Printf.sprintf "n%d" s.Mapper.node
  in
  if s.Mapper.inverted then base ^ "_bar" else base

(* Behavioural body of a cell, as a Verilog expression over i0..i(k-1). *)
let cell_expr (c : Library.cell) =
  let n = c.Library.arity in
  let minterms =
    List.filter (fun m -> Logic.Tt.get_bit c.Library.func m)
      (List.init (1 lsl n) Fun.id)
  in
  if minterms = [] then "1'b0"
  else if List.length minterms = 1 lsl n then "1'b1"
  else
    String.concat " | "
      (List.map
         (fun m ->
           let lits =
             List.init n (fun i ->
                 if (m lsr i) land 1 = 1 then Printf.sprintf "i%d" i
                 else Printf.sprintf "~i%d" i)
           in
           "(" ^ String.concat " & " lits ^ ")")
         minterms)

let used_cells n =
  List.sort_uniq compare
    (List.map (fun (g : Mapper.gate) -> g.Mapper.cell.Library.name) n.Mapper.gates)

let write ?(module_name = "mapped") ppf n =
  let open Format in
  let g = n.Mapper.source in
  (* Cell definitions. *)
  List.iter
    (fun name ->
      let c = Library.find name in
      let ports = List.init c.Library.arity (fun i -> Printf.sprintf "i%d" i) in
      fprintf ppf "module %s (%s, z);@." c.Library.name
        (String.concat ", " ports);
      List.iter (fun p -> fprintf ppf "  input %s;@." p) ports;
      fprintf ppf "  output z;@.";
      fprintf ppf "  assign z = %s;@." (cell_expr c);
      fprintf ppf "endmodule@.@.")
    (used_cells n);
  let inputs =
    List.map
      (fun id -> signal_name g { Mapper.node = id; inverted = false })
      n.Mapper.primary_inputs
  in
  let outputs = List.map (fun (name, _) -> sanitize name) n.Mapper.primary_outputs in
  fprintf ppf "module %s (@[%s@]);@." (sanitize module_name)
    (String.concat ", " (inputs @ outputs));
  List.iter (fun p -> fprintf ppf "  input %s;@." p) inputs;
  List.iter (fun p -> fprintf ppf "  output %s;@." p) outputs;
  fprintf ppf "  wire const0 = 1'b0;@.";
  List.iter
    (fun (gate : Mapper.gate) ->
      fprintf ppf "  wire %s;@." (signal_name g gate.Mapper.out))
    n.Mapper.gates;
  List.iteri
    (fun k (gate : Mapper.gate) ->
      let args =
        Array.to_list (Array.map (signal_name g) gate.Mapper.fanins)
        @ [ signal_name g gate.Mapper.out ]
      in
      fprintf ppf "  %s u%d (%s);@." gate.Mapper.cell.Library.name k
        (String.concat ", " args))
    n.Mapper.gates;
  List.iter
    (fun (name, s) ->
      fprintf ppf "  assign %s = %s;@." (sanitize name) (signal_name g s))
    n.Mapper.primary_outputs;
  fprintf ppf "endmodule@."

let to_string ?module_name n =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  write ?module_name ppf n;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
