lib/sat/solver.mli:
