(** Tseitin encoding of an AIG into a SAT solver. *)

(** [encode solver g] adds one solver variable per AIG node (every node,
    so internal equivalences can be queried during SAT sweeping) and the
    AND-gate consistency clauses. Returns a function translating an AIG
    literal into a solver literal. The constant node is encoded as a
    fixed-false variable. *)
val encode : Sat.Solver.t -> Graph.t -> Graph.lit -> int
