let encode solver g =
  let var_of = Hashtbl.create 256 in
  let sat_var id =
    match Hashtbl.find_opt var_of id with
    | Some v -> v
    | None ->
      let v = Sat.Solver.new_var solver in
      Hashtbl.add var_of id v;
      v
  in
  (* Constant node: variable forced false. *)
  let cvar = sat_var 0 in
  Sat.Solver.add_clause solver [ -cvar ];
  let sat_lit l =
    let v = sat_var (Graph.node_of_lit l) in
    if Graph.is_complemented l then -v else v
  in
  let visited = Hashtbl.create 256 in
  let rec visit id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      if Graph.is_and g id then begin
        let f0, f1 = Graph.fanins g id in
        visit (Graph.node_of_lit f0);
        visit (Graph.node_of_lit f1);
        let c = sat_var id and a = sat_lit f0 and b = sat_lit f1 in
        Sat.Solver.add_clause solver [ -c; a ];
        Sat.Solver.add_clause solver [ -c; b ];
        Sat.Solver.add_clause solver [ c; -a; -b ]
      end
    end
  in
  (* Encode every node, not just the output cones: SAT sweeping queries
     arbitrary internal nodes and an un-encoded node would be
     unconstrained. *)
  for id = 1 to Graph.num_nodes g - 1 do
    visit id
  done;
  sat_lit
