(** Lazy level tracking for a growing AIG.

    [level] is memoized per node; the graph may only grow between calls
    (nodes are never rewired), which every constructive pass here
    respects. *)

type t

val create : Graph.t -> t

(** Unit-delay level of the node under a literal (inputs at level 0). *)
val level : t -> Graph.lit -> int
