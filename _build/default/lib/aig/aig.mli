(** And-inverter graphs and the passes built on them.

    The core graph API ({!type:t}, {!band}, {!add_output}, {!levels}, …)
    lives at the top level of this module; see {!module:Graph} for the
    detailed documentation. Submodules bundle the classic synthesis
    passes: {!Balance} (delay-driven tree balancing), {!Rewrite}
    (cut-based resynthesis), {!Sweep} (redundancy elimination),
    {!Cec} (SAT equivalence checking), {!Cuts}, {!Synth}, {!Cnf},
    {!Lev}, and {!Io} (BLIF/BENCH). *)

include module type of struct
  include Graph
end

module Lev = Lev
module Cuts = Cuts
module Cnf = Cnf
module Cec = Cec
module Balance = Balance
module Synth = Synth
module Rewrite = Rewrite
module Sweep = Sweep
module Resub = Resub
module Io = Io
module Aiger = Aiger
module Verilog = Verilog
