let tree combine unit_lit g lev lits =
  match lits with
  | [] -> unit_lit
  | _ ->
    let insert x l =
      let rec go = function
        | [] -> [ x ]
        | y :: rest -> if fst x <= fst y then x :: y :: rest else y :: go rest
      in
      go l
    in
    let q = List.fold_left (fun q l -> insert (Lev.level lev l, l) q) [] lits in
    let rec reduce = function
      | [ (_, l) ] -> l
      | (_, a) :: (_, b) :: rest ->
        let c = combine g a b in
        reduce (insert (Lev.level lev c, c) rest)
      | [] -> unit_lit
    in
    reduce q

let and_tree g lev lits = tree Graph.band Graph.const_true g lev lits
let or_tree g lev lits = tree Graph.bor Graph.const_false g lev lits

let cube_lits ~leaf c =
  List.map (fun (i, b) -> if b then leaf i else Graph.bnot (leaf i)) (Logic.Cube.literals c)

(* Algebraic quick-factoring. Divides the cover by its most frequent
   literal; cubes not containing the literal form the remainder. *)
let rec factor g lev (sop : Logic.Sop.t) ~leaf =
  match sop.Logic.Sop.cubes with
  | [] -> Graph.const_false
  | [ c ] -> and_tree g lev (cube_lits ~leaf c)
  | cubes ->
    (* Count literal occurrences. *)
    let counts = Hashtbl.create 16 in
    List.iter
      (fun c ->
        List.iter
          (fun litp ->
            let n = try Hashtbl.find counts litp with Not_found -> 0 in
            Hashtbl.replace counts litp (n + 1))
          (Logic.Cube.literals c))
      cubes;
    let best = ref None in
    Hashtbl.iter
      (fun litp n ->
        match !best with
        | Some (_, bn) when bn >= n -> ()
        | _ -> if n >= 2 then best := Some (litp, n))
      counts;
    (match !best with
     | None ->
       (* No sharing: plain sum of cubes. *)
       or_tree g lev (List.map (fun c -> and_tree g lev (cube_lits ~leaf c)) cubes)
     | Some ((i, b), _) ->
       let quotient, remainder =
         List.partition_map
           (fun c ->
             let has =
               List.exists (fun (j, bj) -> j = i && bj = b) (Logic.Cube.literals c)
             in
             if has then
               Left
                 { Logic.Cube.mask = c.Logic.Cube.mask land lnot (1 lsl i);
                   bits = c.Logic.Cube.bits land lnot (1 lsl i) }
             else Right c)
           cubes
       in
       let n = sop.Logic.Sop.n in
       let q = factor g lev (Logic.Sop.make n quotient) ~leaf in
       let div_lit = if b then leaf i else Graph.bnot (leaf i) in
       let l = Graph.band g div_lit q in
       (match remainder with
        | [] -> l
        | _ -> Graph.bor g l (factor g lev (Logic.Sop.make n remainder) ~leaf)))

let of_sop g lev sop ~leaf = factor g lev sop ~leaf

let of_tt g lev tt ~leaf =
  if Logic.Tt.is_const_false tt then Graph.const_false
  else if Logic.Tt.is_const_true tt then Graph.const_true
  else begin
    (* Quine-McCluskey covers for narrow functions, espresso-style
       minimization beyond the width where prime enumeration is cheap. *)
    let on, off =
      if Logic.Tt.num_vars tt <= 8 then Logic.Minimize.min_sops tt
      else begin
        let dc = Logic.Tt.const_false (Logic.Tt.num_vars tt) in
        ( Logic.Espresso.minimize ~on:tt ~dc,
          Logic.Espresso.minimize ~on:(Logic.Tt.lnot tt) ~dc )
      end
    in
    let pos = of_sop g lev on ~leaf in
    let neg = Graph.bnot (of_sop g lev off ~leaf) in
    let lp = Lev.level lev pos and ln = Lev.level lev neg in
    if lp < ln then pos else if ln < lp then neg else pos
  end
