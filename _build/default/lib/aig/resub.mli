(** Simulation-guided resubstitution with SAT verification.

    For each deep node, the pass searches for an equivalent re-expression
    in terms of two existing shallower nodes (any AND/OR/XOR with input
    polarities): candidates are filtered by random-simulation signatures
    and proven with the SAT solver before the node is rewired. A classic
    delay-oriented cleanup that complements cut rewriting (it can jump
    across cut boundaries). *)

(** [run ?rounds ?max_checks g] returns an equivalent graph.
    [rounds] controls the signature width (64-bit words);
    [max_checks] bounds the number of SAT calls. *)
val run : ?rounds:int -> ?max_checks:int -> Graph.t -> Graph.t
