type cut = { leaves : int array; tt : Logic.Tt.t }

let cut_function g l leaves =
  let n = Array.length leaves in
  assert (n <= 16);
  let pos = Hashtbl.create 8 in
  Array.iteri (fun i id -> Hashtbl.replace pos id i) leaves;
  let memo = Hashtbl.create 32 in
  let rec go l =
    let id = Graph.node_of_lit l in
    let base =
      match Hashtbl.find_opt pos id with
      | Some i -> Logic.Tt.var n i
      | None -> (
        match Hashtbl.find_opt memo id with
        | Some t -> t
        | None ->
          let t =
            if id = 0 then Logic.Tt.const_false n
            else begin
              assert (Graph.is_and g id);
              let f0, f1 = Graph.fanins g id in
              Logic.Tt.land_ (go f0) (go f1)
            end
          in
          Hashtbl.add memo id t;
          t)
    in
    if Graph.is_complemented l then Logic.Tt.lnot base else base
  in
  go l

let merge_leaves k a b =
  (* Merge two sorted arrays; None when the union exceeds k. *)
  let la = Array.length a and lb = Array.length b in
  let out = Array.make k 0 in
  let rec go i j n =
    if i = la && j = lb then Some (Array.sub out 0 n)
    else if i = la then push b.(j) i (j + 1) n
    else if j = lb then push a.(i) (i + 1) j n
    else if a.(i) = b.(j) then push a.(i) (i + 1) (j + 1) n
    else if a.(i) < b.(j) then push a.(i) (i + 1) j n
    else push b.(j) i (j + 1) n
  and push v i j n =
    if n = k then None
    else begin
      out.(n) <- v;
      go i j (n + 1)
    end
  in
  go 0 0 0

let enumerate g ~k ~per_node =
  let nn = Graph.num_nodes g in
  let cuts = Array.make nn [] in
  let trivial id =
    { leaves = [| id |]; tt = Logic.Tt.var 1 0 }
  in
  let lv = Graph.levels g in
  let cut_cost c =
    (* Prefer small cuts with shallow leaves. *)
    let d = Array.fold_left (fun acc id -> max acc lv.(id)) 0 c.leaves in
    (d * 100) + Array.length c.leaves
  in
  for id = 1 to nn - 1 do
    if Graph.is_input g id then cuts.(id) <- [ trivial id ]
    else if Graph.is_and g id then begin
      let f0, f1 = Graph.fanins g id in
      let id0 = Graph.node_of_lit f0 and id1 = Graph.node_of_lit f1 in
      let c0s = if id0 = 0 then [ trivial 0 ] else cuts.(id0) in
      let c1s = if id1 = 0 then [ trivial 0 ] else cuts.(id1) in
      let merged = ref [] in
      List.iter
        (fun c0 ->
          List.iter
            (fun c1 ->
              match merge_leaves k c0.leaves c1.leaves with
              | None -> ()
              | Some leaves ->
                (* Avoid duplicates by leaf set. *)
                if
                  not
                    (List.exists (fun c -> c.leaves = leaves) !merged)
                then begin
                  let tt = cut_function g (Graph.lit_of_node id false) leaves in
                  merged := { leaves; tt } :: !merged
                end)
            c1s)
        c0s;
      let sorted = List.sort (fun a b -> compare (cut_cost a) (cut_cost b)) !merged in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      let kept = take per_node sorted in
      (* The direct two-leaf cut must always survive pruning: structural
         mapping relies on a NAND/AND match existing for every node. *)
      let direct_leaves =
        if id0 = id1 then [| id0 |]
        else if id0 < id1 then [| id0; id1 |]
        else [| id1; id0 |]
      in
      let kept =
        if List.exists (fun c -> c.leaves = direct_leaves) kept then kept
        else
          { leaves = direct_leaves;
            tt = cut_function g (Graph.lit_of_node id false) direct_leaves }
          :: kept
      in
      cuts.(id) <- trivial id :: kept
    end
  done;
  cuts
