(** K-feasible cut enumeration with priority pruning.

    A cut of node [n] is a set of node ids such that every path from the
    inputs to [n] passes through the set. Cuts feed the resynthesis pass
    ({!Rewrite}) and the clustering step that builds the
    technology-independent network (the paper's `renode`). *)

type cut = {
  leaves : int array;  (** node ids, sorted ascending *)
  tt : Logic.Tt.t;  (** function of the root in terms of the leaves *)
}

(** [enumerate g ~k ~per_node] computes for each node a list of cuts with
    at most [k] leaves, keeping at most [per_node] non-trivial cuts per
    node. Index of the result is the node id; the trivial cut
    [{n}] is always included. *)
val enumerate : Graph.t -> k:int -> per_node:int -> cut list array

(** Truth table of literal [l] expressed over the ordered [leaves]
    (positions in the cut order). All paths from [l] must stop at leaves. *)
val cut_function : Graph.t -> Graph.lit -> int array -> Logic.Tt.t
