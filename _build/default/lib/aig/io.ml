let node_name g id =
  match Graph.input_name g id with
  | Some s -> s
  | None -> if Graph.is_input g id then Printf.sprintf "pi%d" (Graph.input_index g id) else Printf.sprintf "n%d" id

let write_blif ?(model = "circuit") ppf g =
  let open Format in
  fprintf ppf ".model %s@." model;
  let input_names =
    List.map (fun l -> node_name g (Graph.node_of_lit l)) (Graph.inputs g)
  in
  fprintf ppf ".inputs %s@." (String.concat " " input_names);
  fprintf ppf ".outputs %s@."
    (String.concat " " (List.map fst (Graph.outputs g)));
  for id = 1 to Graph.num_nodes g - 1 do
    if Graph.is_and g id then begin
      let f0, f1 = Graph.fanins g id in
      (* Constant fanins cannot occur: [Graph.band] folds them away. *)
      assert (Graph.node_of_lit f0 <> 0 && Graph.node_of_lit f1 <> 0);
      let n0 = node_name g (Graph.node_of_lit f0) in
      let n1 = node_name g (Graph.node_of_lit f1) in
      let b0 = if Graph.is_complemented f0 then "0" else "1" in
      let b1 = if Graph.is_complemented f1 then "0" else "1" in
      fprintf ppf ".names %s %s %s@.%s%s 1@." n0 n1 (node_name g id) b0 b1
    end
  done;
  List.iter
    (fun (name, l) ->
      let src = node_name g (Graph.node_of_lit l) in
      if Graph.node_of_lit l = 0 then
        (* Constant output. *)
        if Graph.is_complemented l then fprintf ppf ".names %s@.1@." name
        else fprintf ppf ".names %s@." name
      else if Graph.is_complemented l then
        fprintf ppf ".names %s %s@.0 1@." src name
      else if src <> name then fprintf ppf ".names %s %s@.1 1@." src name)
    (Graph.outputs g);
  fprintf ppf ".end@."

let blif_to_string ?model g =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  write_blif ?model ppf g;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let tokenize line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

(* Join BLIF continuation lines ending in backslash; strip comments. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let strip_comment s =
    match String.index_opt s '#' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let rec join acc pending = function
    | [] -> List.rev (if pending = "" then acc else pending :: acc)
    | line :: rest ->
      let line = strip_comment line in
      let line = String.trim line in
      if line = "" then join acc pending rest
      else if String.length line > 0 && line.[String.length line - 1] = '\\'
      then
        join acc (pending ^ String.sub line 0 (String.length line - 1) ^ " ") rest
      else join ((pending ^ line) :: acc) "" rest
  in
  join [] "" raw

type blif_names = { inputs : string list; output : string; rows : (string * char) list }

let read_blif text =
  let lines = logical_lines text in
  let inputs = ref [] and outputs = ref [] in
  let tables = ref [] in
  let current = ref None in
  let finish () =
    match !current with
    | Some t -> tables := t :: !tables; current := None
    | None -> ()
  in
  List.iter
    (fun line ->
      let toks = tokenize line in
      match toks with
      | ".model" :: _ -> ()
      | ".inputs" :: names -> inputs := !inputs @ names
      | ".outputs" :: names -> outputs := !outputs @ names
      | ".names" :: signals ->
        finish ();
        (match List.rev signals with
         | out :: ins_rev ->
           current := Some { inputs = List.rev ins_rev; output = out; rows = [] }
         | [] -> failwith "blif: empty .names")
      | ".latch" :: _ -> failwith "blif: sequential elements unsupported"
      | [ ".end" ] -> finish ()
      | [] -> ()
      | tok :: _ when String.length tok > 0 && tok.[0] = '.' ->
        failwith (Printf.sprintf "blif: unsupported construct %s" tok)
      | [ pattern; out ] -> (
        match !current with
        | Some t when String.length out = 1 ->
          current := Some { t with rows = (pattern, out.[0]) :: t.rows }
        | _ -> failwith "blif: cube row outside .names")
      | [ single ] -> (
        (* Constant table row: "1" or "0" with no inputs. *)
        match !current with
        | Some t when t.inputs = [] ->
          current := Some { t with rows = ("", single.[0]) :: t.rows }
        | _ -> failwith "blif: malformed row")
      | _ -> failwith "blif: malformed line")
    lines;
  finish ();
  let g = Graph.create () in
  let env = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace env n (Graph.add_input ~name:n g)) !inputs;
  let tables = List.rev !tables in
  let by_output = Hashtbl.create 64 in
  List.iter (fun t -> Hashtbl.replace by_output t.output t) tables;
  let lev = Lev.create g in
  let rec build name =
    match Hashtbl.find_opt env name with
    | Some l -> l
    | None ->
      let t =
        match Hashtbl.find_opt by_output name with
        | Some t -> t
        | None -> failwith (Printf.sprintf "blif: undriven signal %s" name)
      in
      let fanin_lits = List.map build t.inputs in
      let n = List.length t.inputs in
      let cube_of pattern =
        let lits = ref [] in
        String.iteri
          (fun i c ->
            match c with
            | '1' -> lits := (i, true) :: !lits
            | '0' -> lits := (i, false) :: !lits
            | '-' -> ()
            | _ -> failwith "blif: bad cube char")
          pattern;
        Logic.Cube.of_literals !lits
      in
      let on_rows = List.filter (fun (_, v) -> v = '1') t.rows in
      let off_rows = List.filter (fun (_, v) -> v = '0') t.rows in
      let l =
        if on_rows <> [] && off_rows <> [] then
          failwith "blif: mixed on/off rows unsupported"
        else if t.rows = [] then Graph.const_false
        else begin
          let rows, polarity =
            if on_rows <> [] then (on_rows, true) else (off_rows, false)
          in
          let sop = Logic.Sop.make n (List.map (fun (p, _) -> cube_of p) rows) in
          let leaf i = List.nth fanin_lits i in
          let l = Synth.of_sop g lev sop ~leaf in
          if polarity then l else Graph.bnot l
        end
      in
      Hashtbl.replace env name l;
      l
  in
  List.iter (fun name -> Graph.add_output g name (build name)) !outputs;
  g

let write_bench ppf g =
  let open Format in
  List.iter
    (fun l -> fprintf ppf "INPUT(%s)@." (node_name g (Graph.node_of_lit l)))
    (Graph.inputs g);
  List.iter (fun (name, _) -> fprintf ppf "OUTPUT(%s)@." name) (Graph.outputs g);
  let emitted_inv = Hashtbl.create 16 in
  let ref_of l =
    let id = Graph.node_of_lit l in
    let base = node_name g id in
    if Graph.is_complemented l then begin
      let nm = base ^ "_bar" in
      if not (Hashtbl.mem emitted_inv nm) then Hashtbl.replace emitted_inv nm base;
      nm
    end
    else base
  in
  let pending = ref [] in
  for id = 1 to Graph.num_nodes g - 1 do
    if Graph.is_and g id then begin
      let f0, f1 = Graph.fanins g id in
      pending := (node_name g id, ref_of f0, ref_of f1) :: !pending
    end
  done;
  (* Resolve output references first so their inverters are recorded before
     the NOT lines are printed (readers do not require ordering, but the
     file should still be self-contained). *)
  let out_lines =
    List.filter_map
      (fun (name, l) ->
        if Graph.node_of_lit l = 0 then
          Some
            (Printf.sprintf "%s = %s" name
               (if Graph.is_complemented l then "VDD" else "GND"))
        else begin
          let src = ref_of l in
          if src <> name then Some (Printf.sprintf "%s = BUFF(%s)" name src)
          else None
        end)
      (Graph.outputs g)
  in
  Hashtbl.iter (fun inv base -> fprintf ppf "%s = NOT(%s)@." inv base) emitted_inv;
  List.iter (fun (n, a, b) -> fprintf ppf "%s = AND(%s, %s)@." n a b) (List.rev !pending);
  List.iter (fun line -> fprintf ppf "%s@." line) out_lines

let read_bench text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun s -> s <> "" && s.[0] <> '#')
  in
  let inputs = ref [] and outputs = ref [] and gates = Hashtbl.create 64 in
  let parse_call s =
    (* "name = OP(a, b, ...)" *)
    match String.index_opt s '=' with
    | None -> None
    | Some eq ->
      let name = String.trim (String.sub s 0 eq) in
      let rhs = String.trim (String.sub s (eq + 1) (String.length s - eq - 1)) in
      (match String.index_opt rhs '(' with
       | None -> Some (name, String.uppercase_ascii rhs, [])
       | Some p ->
         let op = String.uppercase_ascii (String.trim (String.sub rhs 0 p)) in
         let close = String.rindex rhs ')' in
         let args = String.sub rhs (p + 1) (close - p - 1) in
         let args =
           String.split_on_char ',' args |> List.map String.trim
           |> List.filter (fun s -> s <> "")
         in
         Some (name, op, args))
  in
  List.iter
    (fun line ->
      if String.length line >= 6 && String.sub line 0 6 = "INPUT(" then begin
        let close = String.rindex line ')' in
        inputs := String.trim (String.sub line 6 (close - 6)) :: !inputs
      end
      else if String.length line >= 7 && String.sub line 0 7 = "OUTPUT(" then begin
        let close = String.rindex line ')' in
        outputs := String.trim (String.sub line 7 (close - 7)) :: !outputs
      end
      else
        match parse_call line with
        | Some (name, op, args) -> Hashtbl.replace gates name (op, args)
        | None -> failwith (Printf.sprintf "bench: bad line %s" line))
    lines;
  let g = Graph.create () in
  let env = Hashtbl.create 64 in
  List.iter
    (fun n -> Hashtbl.replace env n (Graph.add_input ~name:n g))
    (List.rev !inputs);
  let rec build name =
    match Hashtbl.find_opt env name with
    | Some l -> l
    | None ->
      let op, args =
        match Hashtbl.find_opt gates name with
        | Some x -> x
        | None -> failwith (Printf.sprintf "bench: undriven signal %s" name)
      in
      let lits = List.map build args in
      let l =
        match (op, lits) with
        | "AND", ls -> Graph.band_list g ls
        | "NAND", ls -> Graph.bnot (Graph.band_list g ls)
        | "OR", ls -> Graph.bor_list g ls
        | "NOR", ls -> Graph.bnot (Graph.bor_list g ls)
        | "XOR", ls -> List.fold_left (Graph.bxor g) Graph.const_false ls
        | "XNOR", ls -> Graph.bnot (List.fold_left (Graph.bxor g) Graph.const_false ls)
        | "NOT", [ a ] -> Graph.bnot a
        | "BUFF", [ a ] | "BUF", [ a ] -> a
        | "VDD", [] -> Graph.const_true
        | "GND", [] -> Graph.const_false
        | _ -> failwith (Printf.sprintf "bench: unsupported gate %s/%d" op (List.length lits))
      in
      Hashtbl.replace env name l;
      l
  in
  List.iter (fun name -> Graph.add_output g name (build name)) (List.rev !outputs);
  g
