(** Reading and writing circuits (BLIF subset and ISCAS BENCH formats). *)

(** Write the graph as flat BLIF (two-input [.names] per AND gate,
    inverters as one-input [.names]). *)
val write_blif : ?model:string -> Format.formatter -> Graph.t -> unit

val blif_to_string : ?model:string -> Graph.t -> string

(** Parse a combinational BLIF subset: [.model], [.inputs], [.outputs],
    single-output [.names] with cube tables (on-set or off-set rows).
    Raises [Failure] on unsupported constructs ([.latch], multiple
    models). *)
val read_blif : string -> Graph.t

(** Write in ISCAS-89 BENCH style using AND/NOT gates. *)
val write_bench : Format.formatter -> Graph.t -> unit

(** Parse BENCH: [INPUT], [OUTPUT], and gates
    AND/OR/NAND/NOR/XOR/XNOR/NOT/BUFF with any number of operands
    (where sensible). Order-independent. *)
val read_bench : string -> Graph.t
