(** Cut-based resynthesis (the `rewrite`/`refactor` family).

    Every AND node is considered with its k-feasible cuts; the cut function
    is re-synthesized from a minimum cover ({!Synth.of_tt}) and the better
    structure — by level for [`Delay], by node count for [`Area] — replaces
    the plain copy. Graphs are rebuilt functionally, so the pass is safe to
    iterate. *)

type objective = [ `Delay | `Area ]

(** [run ?k ?per_node ~objective g] is an equivalent rewritten graph. *)
val run : ?k:int -> ?per_node:int -> objective:objective -> Graph.t -> Graph.t
