(** Combinational equivalence checking.

    The paper verifies every optimized circuit against the original
    ("an equivalence check is performed after optimization", Sec. 5); this
    module provides that check: random simulation for fast refutation
    followed by SAT on a miter. *)

type verdict =
  | Equivalent
  | Counterexample of bool array  (** input assignment where outputs differ *)

(** [check a b] compares two circuits with the same number of inputs and
    outputs (matched positionally). *)
val check : Graph.t -> Graph.t -> verdict

val equivalent : Graph.t -> Graph.t -> bool
