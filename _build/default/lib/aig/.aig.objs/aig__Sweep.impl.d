lib/aig/sweep.ml: Array Cnf Graph Hashtbl Int64 List Random Sat
