lib/aig/verilog.mli: Format Graph
