lib/aig/graph.mli: Format Hashtbl Logic
