lib/aig/aig.ml: Aiger Balance Cec Cnf Cuts Graph Io Lev Resub Rewrite Sweep Synth Verilog
