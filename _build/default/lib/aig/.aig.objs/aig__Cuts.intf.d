lib/aig/cuts.mli: Graph Logic
