lib/aig/resub.ml: Array Cnf Fun Graph Hashtbl Int64 List Random Sat
