lib/aig/aiger.mli: Buffer Format Graph
