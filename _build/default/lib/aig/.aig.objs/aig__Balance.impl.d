lib/aig/balance.ml: Array Graph Hashtbl Lev List
