lib/aig/resub.mli: Graph
