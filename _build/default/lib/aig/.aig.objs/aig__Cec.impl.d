lib/aig/cec.ml: Array Cnf Graph Hashtbl Int64 List Printf Random Sat
