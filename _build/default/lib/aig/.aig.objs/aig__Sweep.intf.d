lib/aig/sweep.mli: Graph
