lib/aig/synth.mli: Graph Lev Logic
