lib/aig/cnf.ml: Graph Hashtbl Sat
