lib/aig/aig.mli: Aiger Balance Cec Cnf Cuts Graph Io Lev Resub Rewrite Sweep Synth Verilog
