lib/aig/aiger.ml: Buffer Char Format Graph Hashtbl List Printf String
