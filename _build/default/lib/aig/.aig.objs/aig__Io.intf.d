lib/aig/io.mli: Format Graph
