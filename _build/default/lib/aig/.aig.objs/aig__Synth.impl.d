lib/aig/synth.ml: Graph Hashtbl Lev List Logic
