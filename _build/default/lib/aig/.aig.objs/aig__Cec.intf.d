lib/aig/cec.mli: Graph
