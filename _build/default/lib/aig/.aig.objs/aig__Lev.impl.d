lib/aig/lev.ml: Graph Hashtbl
