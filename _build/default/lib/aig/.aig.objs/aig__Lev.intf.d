lib/aig/lev.mli: Graph
