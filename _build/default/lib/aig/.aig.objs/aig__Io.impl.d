lib/aig/io.ml: Buffer Format Graph Hashtbl Lev List Logic Printf String Synth
