lib/aig/rewrite.ml: Array Cuts Graph Hashtbl Lev List Synth
