lib/aig/cuts.ml: Array Graph Hashtbl List Logic
