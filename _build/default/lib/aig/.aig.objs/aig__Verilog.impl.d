lib/aig/verilog.ml: Buffer Format Graph Hashtbl List Printf String
