(* Combine literals into an AND tree, always merging the two shallowest
   conjuncts. *)
let and_tree g lev lits =
  match lits with
  | [] -> Graph.const_true
  | _ ->
    let module PQ = struct
      (* Small sorted-list priority queue: sizes here are tiny. *)
      let insert x l =
        let key (lvl, _) = lvl in
        let rec go = function
          | [] -> [ x ]
          | y :: rest -> if key x <= key y then x :: y :: rest else y :: go rest
        in
        go l
    end in
    let q = List.fold_left (fun q l -> PQ.insert (Lev.level lev l, l) q) [] lits in
    let rec reduce = function
      | [ (_, l) ] -> l
      | (l1, a) :: (l2, b) :: rest ->
        let c = Graph.band g a b in
        ignore l1;
        ignore l2;
        reduce (PQ.insert (Lev.level lev c, c) rest)
      | [] -> Graph.const_true
    in
    reduce q

let run src =
  let dst = Graph.create () in
  let lev = Lev.create dst in
  let fanout = Graph.fanout_counts src in
  let map = Hashtbl.create 256 in
  List.iter
    (fun l ->
      let id = Graph.node_of_lit l in
      let l' = Graph.add_input ?name:(Graph.input_name src id) dst in
      Hashtbl.replace map id l')
    (Graph.inputs src);
  (* Collect the maximal conjunction rooted at a literal: expand through
     uncomplemented single-fanout AND nodes. Multi-fanout nodes stay shared
     (they are translated on their own), so balancing never duplicates
     logic. *)
  let rec conjuncts l acc ~root =
    let id = Graph.node_of_lit l in
    if
      Graph.is_and src id
      && (not (Graph.is_complemented l))
      && (root || fanout.(id) <= 1)
    then begin
      let f0, f1 = Graph.fanins src id in
      conjuncts f0 (conjuncts f1 acc ~root:false) ~root:false
    end
    else l :: acc
  in
  let translate_cache = Hashtbl.create 256 in
  let rec translate l =
    let id = Graph.node_of_lit l in
    let base =
      match Hashtbl.find_opt translate_cache id with
      | Some b -> b
      | None ->
        let b =
          if id = 0 then Graph.const_false
          else if Graph.is_input src id then Hashtbl.find map id
          else begin
            let leaves = conjuncts (Graph.lit_of_node id false) [] ~root:true in
            let leaves' = List.map translate leaves in
            and_tree dst lev leaves'
          end
        in
        Hashtbl.add translate_cache id b;
        b
    in
    if Graph.is_complemented l then Graph.bnot base else base
  in
  List.iter (fun (name, l) -> Graph.add_output dst name (translate l)) (Graph.outputs src);
  dst
