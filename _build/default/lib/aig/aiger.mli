(** AIGER format support (ASCII [aag] and binary [aig], combinational
    subset — no latches).

    The writer renumbers nodes into AIGER's canonical variable order
    (inputs first, then AND gates topologically); symbol-table entries
    carry input and output names. *)

(** Write ASCII AIGER ([aag]). *)
val write_aag : Format.formatter -> Graph.t -> unit

val aag_to_string : Graph.t -> string

(** Parse ASCII AIGER. Raises [Failure] on latches or malformed input. *)
val read_aag : string -> Graph.t

(** Write binary AIGER ([aig]) with delta-encoded AND gates. *)
val write_aig_binary : Buffer.t -> Graph.t -> unit

(** Parse binary AIGER. *)
val read_aig_binary : string -> Graph.t
