(** And-inverter graphs — the decomposed-circuit representation of the
    paper (Sec. 3, "Definitions").

    Nodes are two-input AND gates; edges carry an optional inversion.
    A {e literal} packs a node id and a complement bit as [2*id + c];
    node [0] is the constant false, so literal [0] is false and literal
    [1] is true. Node ids are assigned in topological order (fanins
    always precede a node), which every traversal below relies on.

    Structural hashing with constant folding is applied on construction,
    so building formulas through {!band} and friends already performs
    light optimization. *)

type t
type lit = int

val create : unit -> t

val const_false : lit
val const_true : lit

(** [add_input ?name g] appends a primary input and returns its literal. *)
val add_input : ?name:string -> t -> lit

(** Strashed AND of two literals (folds constants and idempotence). *)
val band : t -> lit -> lit -> lit

val bnot : lit -> lit
val bor : t -> lit -> lit -> lit
val bxor : t -> lit -> lit -> lit
val band_list : t -> lit list -> lit
val bor_list : t -> lit list -> lit

(** [mux g ~sel ~t ~f] is [if sel then t else f]. *)
val mux : t -> sel:lit -> t:lit -> f:lit -> lit

(** [add_output g name l] appends an output. *)
val add_output : t -> string -> lit -> unit

(** Replace the driver of output [i]. *)
val set_output : t -> int -> lit -> unit

val num_inputs : t -> int
val num_ands : t -> int

(** All node ids, [0] (constant) included. *)
val num_nodes : t -> int

val inputs : t -> lit list
val outputs : t -> (string * lit) list
val output_lits : t -> lit list

val lit_of_node : int -> bool -> lit
val node_of_lit : lit -> int
val is_complemented : lit -> bool

val is_input : t -> int -> bool
val is_and : t -> int -> bool

(** Position of an input node among the inputs. *)
val input_index : t -> int -> int

val input_name : t -> int -> string option

(** Fanins of an AND node, as literals. *)
val fanins : t -> int -> lit * lit

(** Unit-delay level of every node (inputs and constant at level 0). *)
val levels : t -> int array

(** Level of the deepest output. *)
val depth : t -> int

(** Number of AND nodes in the transitive fanin cones of the outputs
    (the "gates" column of the paper's Table 2). *)
val num_reachable_ands : t -> int

(** Fanout degree of every node, counting output drivers. *)
val fanout_counts : t -> int array

(** Primary-input support (input indices) of a literal's cone. *)
val support_of_lit : t -> lit -> int list

(** [copy_cone ~dst ~src ~map l] recursively copies the cone of literal
    [l] from [src] into [dst]. [map] takes a [src] input node id to a
    [dst] literal; intermediate AND nodes are strashed into [dst]. The
    [memo] table can be shared across calls to reuse copied structure. *)
val copy_cone :
  dst:t -> src:t -> map:(int -> lit) -> ?memo:(int, lit) Hashtbl.t -> lit -> lit

(** Rebuild the graph keeping only the logic reachable from the outputs;
    re-strashes, so structurally duplicate logic merges. Input count and
    order are preserved. *)
val cleanup : t -> t

(** Evaluate all outputs on a single input assignment (bit per input). *)
val eval : t -> bool array -> bool array

(** 64-way parallel simulation: [sim g words] takes one 64-bit word per
    input and returns the per-node words (index = node id). *)
val sim : t -> int64 array -> int64 array

(** Truth table of a literal as a function of all inputs (requires
    [num_inputs g <= 16]). *)
val tt_of_lit : t -> lit -> Logic.Tt.t

val pp_stats : Format.formatter -> t -> unit
