type objective = [ `Delay | `Area ]

let run ?(k = 5) ?(per_node = 6) ~objective src =
  let cuts = Cuts.enumerate src ~k ~per_node in
  let dst = Graph.create () in
  let lev = Lev.create dst in
  let map = Hashtbl.create 256 in
  (* map: src node id -> dst literal *)
  List.iter
    (fun l ->
      let id = Graph.node_of_lit l in
      Hashtbl.replace map id (Graph.add_input ?name:(Graph.input_name src id) dst))
    (Graph.inputs src);
  Hashtbl.replace map 0 Graph.const_false;
  let translate_lit l =
    let b = Hashtbl.find map (Graph.node_of_lit l) in
    if Graph.is_complemented l then Graph.bnot b else b
  in
  let nn = Graph.num_nodes src in
  for id = 1 to nn - 1 do
    if Graph.is_and src id then begin
      let f0, f1 = Graph.fanins src id in
      let default = Graph.band dst (translate_lit f0) (translate_lit f1) in
      let candidates =
        List.filter_map
          (fun (c : Cuts.cut) ->
            if Array.length c.leaves < 3 then None
            else if Array.exists (fun lid -> not (Hashtbl.mem map lid)) c.leaves
            then None
            else begin
              let before = Graph.num_nodes dst in
              let leaf i = Hashtbl.find map c.leaves.(i) in
              let cand = Synth.of_tt dst lev c.tt ~leaf in
              let added = Graph.num_nodes dst - before in
              Some (cand, Lev.level lev cand, added)
            end)
          cuts.(id)
      in
      let dl = Lev.level lev default in
      let better (cand, cl, added) (best, bl, bsize) =
        match objective with
        | `Delay ->
          if cl < bl || (cl = bl && added < bsize) then (cand, cl, added)
          else (best, bl, bsize)
        | `Area ->
          if (added < bsize && cl <= bl + 1) || (added = bsize && cl < bl) then
            (cand, cl, added)
          else (best, bl, bsize)
      in
      let chosen, _, _ =
        List.fold_left (fun acc c -> better c acc) (default, dl, 0) candidates
      in
      Hashtbl.replace map id chosen
    end
  done;
  List.iter
    (fun (name, l) -> Graph.add_output dst name (translate_lit l))
    (Graph.outputs src);
  Graph.cleanup dst
