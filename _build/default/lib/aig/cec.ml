type verdict = Equivalent | Counterexample of bool array

(* Build a miter graph: shared inputs, one XOR literal per output pair.
   Strashing makes structurally identical cones collapse, so many pairs
   reduce to constant false without any SAT work. *)
let miter a b =
  assert (Graph.num_inputs a = Graph.num_inputs b);
  let la = Graph.outputs a and lb = Graph.outputs b in
  assert (List.length la = List.length lb);
  let g = Graph.create () in
  let ins =
    Array.init (Graph.num_inputs a) (fun i ->
        Graph.add_input ~name:(Printf.sprintf "i%d" i) g)
  in
  let map_for src id = ins.(Graph.input_index src id) in
  let memo_a = Hashtbl.create 256 and memo_b = Hashtbl.create 256 in
  let diffs =
    List.map2
      (fun (_, oa) (_, ob) ->
        let ca = Graph.copy_cone ~dst:g ~src:a ~map:(map_for a) ~memo:memo_a oa in
        let cb = Graph.copy_cone ~dst:g ~src:b ~map:(map_for b) ~memo:memo_b ob in
        Graph.bxor g ca cb)
      la lb
  in
  (g, diffs)

(* Random simulation on the miter: any set bit of any diff word is a
   counterexample. *)
let random_counterexample g diffs rounds =
  let ni = Graph.num_inputs g in
  let st = Random.State.make [| 0x5eed; ni |] in
  let rec loop r =
    if r = 0 then None
    else begin
      let words = Array.init ni (fun _ -> Random.State.int64 st Int64.max_int) in
      let values = Graph.sim g words in
      let value_of l =
        let w = values.(Graph.node_of_lit l) in
        if Graph.is_complemented l then Int64.lognot w else w
      in
      let hit =
        List.fold_left (fun acc d -> Int64.logor acc (value_of d)) 0L diffs
      in
      if hit <> 0L then begin
        let rec bit i =
          if Int64.logand (Int64.shift_right_logical hit i) 1L = 1L then i
          else bit (i + 1)
        in
        let k = bit 0 in
        Some
          (Array.init ni (fun i ->
               Int64.logand (Int64.shift_right_logical words.(i) k) 1L = 1L))
      end
      else loop (r - 1)
    end
  in
  loop rounds

let check a b =
  let g, diffs = miter a b in
  let live = List.filter (fun d -> d <> Graph.const_false) diffs in
  if live = [] then Equivalent
  else
    match random_counterexample g live 16 with
    | Some cex -> Counterexample cex
    | None ->
      (* One shared solver; each remaining output pair is checked with a
         single-literal assumption so learned clauses carry across
         outputs. *)
      let solver = Sat.Solver.create () in
      let sat_lit = Cnf.encode solver g in
      let extract_cex () =
        let ni = Graph.num_inputs g in
        Array.init ni (fun i ->
            let l = List.nth (Graph.inputs g) i in
            let v = sat_lit l in
            if v > 0 then Sat.Solver.value solver v
            else not (Sat.Solver.value solver (-v)))
      in
      let rec go = function
        | [] -> Equivalent
        | d :: rest -> (
          match Sat.Solver.solve ~assumptions:[ sat_lit d ] solver with
          | Sat.Solver.Unsat -> go rest
          | Sat.Solver.Sat -> Counterexample (extract_cex ()))
      in
      go live

let equivalent a b =
  match check a b with Equivalent -> true | Counterexample _ -> false
