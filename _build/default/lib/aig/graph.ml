type lit = int

type t = {
  mutable fanin0 : int array; (* per node; -1 for inputs; -2 for const *)
  mutable fanin1 : int array;
  mutable n : int; (* number of nodes, constant node 0 included *)
  mutable input_ids : int list; (* reversed *)
  mutable num_inputs : int;
  mutable outputs : (string * lit) list; (* reversed *)
  mutable num_outputs : int;
  strash : (int, lit) Hashtbl.t; (* key = fanin0 * 2^30 + fanin1 *)
  names : (int, string) Hashtbl.t;
  input_pos : (int, int) Hashtbl.t;
}

let const_false = 0
let const_true = 1

let create () =
  let g =
    {
      fanin0 = Array.make 16 (-2);
      fanin1 = Array.make 16 (-2);
      n = 1;
      input_ids = [];
      num_inputs = 0;
      outputs = [];
      num_outputs = 0;
      strash = Hashtbl.create 1024;
      names = Hashtbl.create 64;
      input_pos = Hashtbl.create 64;
    }
  in
  g.fanin0.(0) <- -2;
  g.fanin1.(0) <- -2;
  g

let grow g =
  if g.n >= Array.length g.fanin0 then begin
    let size = 2 * Array.length g.fanin0 in
    let f0 = Array.make size (-2) and f1 = Array.make size (-2) in
    Array.blit g.fanin0 0 f0 0 g.n;
    Array.blit g.fanin1 0 f1 0 g.n;
    g.fanin0 <- f0;
    g.fanin1 <- f1
  end

let lit_of_node id c = (2 * id) + if c then 1 else 0
let node_of_lit l = l lsr 1
let is_complemented l = l land 1 = 1
let bnot l = l lxor 1

let add_input ?name g =
  grow g;
  let id = g.n in
  g.fanin0.(id) <- -1;
  g.fanin1.(id) <- -1;
  g.n <- g.n + 1;
  g.input_ids <- id :: g.input_ids;
  Hashtbl.replace g.input_pos id g.num_inputs;
  g.num_inputs <- g.num_inputs + 1;
  (match name with Some s -> Hashtbl.replace g.names id s | None -> ());
  lit_of_node id false

let band g a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = const_false then const_false
  else if a = const_true then b
  else if a = b then a
  else if a = bnot b then const_false
  else begin
    let key = (a lsl 30) lor b in
    match Hashtbl.find_opt g.strash key with
    | Some l -> l
    | None ->
      grow g;
      let id = g.n in
      g.fanin0.(id) <- a;
      g.fanin1.(id) <- b;
      g.n <- g.n + 1;
      let l = lit_of_node id false in
      Hashtbl.replace g.strash key l;
      l
  end

let bor g a b = bnot (band g (bnot a) (bnot b))

let bxor g a b =
  (* (a & ~b) | (~a & b) *)
  bor g (band g a (bnot b)) (band g (bnot a) b)

let band_list g = List.fold_left (band g) const_true
let bor_list g = List.fold_left (bor g) const_false

let mux g ~sel ~t ~f = bor g (band g sel t) (band g (bnot sel) f)

let add_output g name l =
  g.outputs <- (name, l) :: g.outputs;
  g.num_outputs <- g.num_outputs + 1

let set_output g i l =
  let arr = Array.of_list (List.rev g.outputs) in
  let name, _ = arr.(i) in
  arr.(i) <- (name, l);
  g.outputs <- List.rev (Array.to_list arr)

let num_inputs g = g.num_inputs
let num_nodes g = g.n
let num_ands g = g.n - 1 - g.num_inputs
let inputs g = List.rev_map (fun id -> lit_of_node id false) g.input_ids
let outputs g = List.rev g.outputs
let output_lits g = List.map snd (List.rev g.outputs)
let is_input g id = id > 0 && id < g.n && g.fanin0.(id) = -1
let is_and g id = id > 0 && id < g.n && g.fanin0.(id) >= 0
let input_index g id = Hashtbl.find g.input_pos id
let input_name g id = Hashtbl.find_opt g.names id
let fanins g id =
  assert (is_and g id);
  (g.fanin0.(id), g.fanin1.(id))

let levels g =
  let lv = Array.make g.n 0 in
  for id = 1 to g.n - 1 do
    if is_and g id then
      lv.(id) <-
        1 + max lv.(node_of_lit g.fanin0.(id)) lv.(node_of_lit g.fanin1.(id))
  done;
  lv

let depth g =
  let lv = levels g in
  List.fold_left (fun acc (_, l) -> max acc lv.(node_of_lit l)) 0 (outputs g)

let reachable g =
  let mark = Array.make g.n false in
  let rec visit id =
    if not mark.(id) then begin
      mark.(id) <- true;
      if is_and g id then begin
        visit (node_of_lit g.fanin0.(id));
        visit (node_of_lit g.fanin1.(id))
      end
    end
  in
  List.iter (fun (_, l) -> visit (node_of_lit l)) (outputs g);
  mark

let num_reachable_ands g =
  let mark = reachable g in
  let count = ref 0 in
  for id = 1 to g.n - 1 do
    if mark.(id) && is_and g id then incr count
  done;
  !count

let fanout_counts g =
  let fo = Array.make g.n 0 in
  for id = 1 to g.n - 1 do
    if is_and g id then begin
      fo.(node_of_lit g.fanin0.(id)) <- fo.(node_of_lit g.fanin0.(id)) + 1;
      fo.(node_of_lit g.fanin1.(id)) <- fo.(node_of_lit g.fanin1.(id)) + 1
    end
  done;
  List.iter
    (fun (_, l) -> fo.(node_of_lit l) <- fo.(node_of_lit l) + 1)
    (outputs g);
  fo

let support_of_lit g l =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      if is_input g id then acc := input_index g id :: !acc
      else if is_and g id then begin
        visit (node_of_lit g.fanin0.(id));
        visit (node_of_lit g.fanin1.(id))
      end
    end
  in
  visit (node_of_lit l);
  List.sort_uniq compare !acc

let copy_cone ~dst ~src ~map ?memo l =
  let memo = match memo with Some m -> m | None -> Hashtbl.create 256 in
  let rec go l =
    let id = node_of_lit l in
    let base =
      match Hashtbl.find_opt memo id with
      | Some b -> b
      | None ->
        let b =
          if id = 0 then const_false
          else if is_input src id then map id
          else begin
            let f0, f1 = fanins src id in
            band dst (go f0) (go f1)
          end
        in
        Hashtbl.add memo id b;
        b
    in
    if is_complemented l then bnot base else base
  in
  go l

let cleanup g =
  let dst = create () in
  let input_map = Hashtbl.create 64 in
  List.iteri
    (fun pos l ->
      let id = node_of_lit l in
      let name = input_name g id in
      let l' = add_input ?name dst in
      Hashtbl.replace input_map pos l')
    (inputs g);
  let map id = Hashtbl.find input_map (input_index g id) in
  let memo = Hashtbl.create 256 in
  List.iter
    (fun (name, l) -> add_output dst name (copy_cone ~dst ~src:g ~map ~memo l))
    (outputs g);
  dst

let sim g words =
  assert (Array.length words = g.num_inputs);
  let values = Array.make g.n 0L in
  List.iteri
    (fun pos l -> values.(node_of_lit l) <- words.(pos))
    (inputs g);
  for id = 1 to g.n - 1 do
    if is_and g id then begin
      let v l =
        let w = values.(node_of_lit l) in
        if is_complemented l then Int64.lognot w else w
      in
      values.(id) <- Int64.logand (v g.fanin0.(id)) (v g.fanin1.(id))
    end
  done;
  values

let eval g bits =
  let words = Array.map (fun b -> if b then -1L else 0L) bits in
  let values = sim g words in
  let out (_, l) =
    let w = values.(node_of_lit l) in
    let b = Int64.logand w 1L = 1L in
    if is_complemented l then not b else b
  in
  Array.of_list (List.map out (outputs g))

let var_patterns =
  [| 0xAAAAAAAAAAAAAAAAL; 0xCCCCCCCCCCCCCCCCL; 0xF0F0F0F0F0F0F0F0L;
     0xFF00FF00FF00FF00L; 0xFFFF0000FFFF0000L; 0xFFFFFFFF00000000L |]

let tt_of_lit g l =
  (* Simulate 64 minterms at a time: inputs 0..5 take the classic variable
     patterns, higher inputs are constant within each 64-minterm block. *)
  let ni = num_inputs g in
  assert (ni <= 16);
  let blocks = if ni <= 6 then 1 else 1 lsl (ni - 6) in
  let minterms = ref [] in
  for b = 0 to blocks - 1 do
    let words =
      Array.init ni (fun i ->
          if i < 6 then var_patterns.(i)
          else if (b lsr (i - 6)) land 1 = 1 then -1L
          else 0L)
    in
    let values = sim g words in
    let w = values.(node_of_lit l) in
    let w = if is_complemented l then Int64.lognot w else w in
    let upto = min 64 (1 lsl ni) in
    for bit = 0 to upto - 1 do
      if Int64.logand (Int64.shift_right_logical w bit) 1L = 1L then
        minterms := ((b * 64) + bit) :: !minterms
    done
  done;
  Logic.Tt.of_minterms ni !minterms

let pp_stats ppf g =
  Format.fprintf ppf "aig: i/o=%d/%d and=%d lev=%d" (num_inputs g)
    g.num_outputs (num_reachable_ands g) (depth g)
