let sanitize name =
  let ok c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' in
  let s = String.map (fun c -> if ok c then c else '_') name in
  if s = "" || (s.[0] >= '0' && s.[0] <= '9') then "s_" ^ s else s

let write ?(module_name = "circuit") ppf g =
  let open Format in
  let node_name id =
    match Graph.input_name g id with
    | Some s -> sanitize s
    | None ->
      if Graph.is_input g id then Printf.sprintf "pi%d" (Graph.input_index g id)
      else Printf.sprintf "n%d" id
  in
  let ref_of l =
    if Graph.node_of_lit l = 0 then
      if Graph.is_complemented l then "1'b1" else "1'b0"
    else begin
      let base = node_name (Graph.node_of_lit l) in
      if Graph.is_complemented l then "~" ^ base else base
    end
  in
  let inputs = List.map (fun l -> node_name (Graph.node_of_lit l)) (Graph.inputs g) in
  let outputs = List.map (fun (name, _) -> sanitize name) (Graph.outputs g) in
  fprintf ppf "module %s (@[%s@]);@." (sanitize module_name)
    (String.concat ", " (inputs @ outputs));
  List.iter (fun n -> fprintf ppf "  input %s;@." n) inputs;
  List.iter (fun n -> fprintf ppf "  output %s;@." n) outputs;
  let reachable = Hashtbl.create 256 in
  let rec mark id =
    if not (Hashtbl.mem reachable id) then begin
      Hashtbl.replace reachable id ();
      if Graph.is_and g id then begin
        let f0, f1 = Graph.fanins g id in
        mark (Graph.node_of_lit f0);
        mark (Graph.node_of_lit f1)
      end
    end
  in
  List.iter (fun (_, l) -> mark (Graph.node_of_lit l)) (Graph.outputs g);
  for id = 1 to Graph.num_nodes g - 1 do
    if Graph.is_and g id && Hashtbl.mem reachable id then
      fprintf ppf "  wire %s;@." (node_name id)
  done;
  for id = 1 to Graph.num_nodes g - 1 do
    if Graph.is_and g id && Hashtbl.mem reachable id then begin
      let f0, f1 = Graph.fanins g id in
      fprintf ppf "  assign %s = %s & %s;@." (node_name id) (ref_of f0)
        (ref_of f1)
    end
  done;
  List.iter
    (fun (name, l) -> fprintf ppf "  assign %s = %s;@." (sanitize name) (ref_of l))
    (Graph.outputs g);
  fprintf ppf "endmodule@."

let to_string ?module_name g =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  write ?module_name ppf g;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
