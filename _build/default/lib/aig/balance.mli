(** Delay-driven AND-tree balancing (the classic `balance` pass).

    Maximal conjunctions are collected by expanding uncomplemented AND
    fanins and rebuilt as minimum-height trees: the two lowest-level
    conjuncts are combined first (Huffman order), which is delay-optimal
    for a given multiset of leaf levels. *)

(** [run g] returns a balanced copy of [g]. Functionally equivalent. *)
val run : Graph.t -> Graph.t
