(** Structural Verilog export of an AIG (assign-based, synthesizable). *)

(** [write ?module_name ppf g] emits one [module] with an [assign] per
    AND gate. Signal names are sanitized to Verilog identifiers. *)
val write : ?module_name:string -> Format.formatter -> Graph.t -> unit

val to_string : ?module_name:string -> Graph.t -> string
