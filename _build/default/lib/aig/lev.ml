type t = { g : Graph.t; memo : (int, int) Hashtbl.t }

let create g = { g; memo = Hashtbl.create 256 }

let rec level t l =
  let id = Graph.node_of_lit l in
  if id = 0 || Graph.is_input t.g id then 0
  else
    match Hashtbl.find_opt t.memo id with
    | Some v -> v
    | None ->
      let f0, f1 = Graph.fanins t.g id in
      let v = 1 + max (level t f0) (level t f1) in
      Hashtbl.add t.memo id v;
      v
