(* Candidate binary re-expressions, as (name, signature combiner,
   builder). Polarity variants of AND cover OR through De Morgan; XOR is
   its own case. *)
type shape = { sa : bool; sb : bool; sout : bool; xor : bool }

let shapes =
  let bools = [ false; true ] in
  List.concat_map
    (fun sa ->
      List.concat_map
        (fun sb ->
          List.concat_map
            (fun sout ->
              [ { sa; sb; sout; xor = false } ]
              @ if sa || sb then [] else [ { sa; sb; sout; xor = true } ])
            bools)
        bools)
    bools

let apply_shape_words s a b =
  let a = if s.sa then Int64.lognot a else a in
  let b = if s.sb then Int64.lognot b else b in
  let v = if s.xor then Int64.logxor a b else Int64.logand a b in
  if s.sout then Int64.lognot v else v

let build_shape g s a b =
  let a = if s.sa then Graph.bnot a else a in
  let b = if s.sb then Graph.bnot b else b in
  let v = if s.xor then Graph.bxor g a b else Graph.band g a b in
  if s.sout then Graph.bnot v else v

let run ?(rounds = 8) ?(max_checks = 600) g =
  let nn = Graph.num_nodes g in
  let ni = Graph.num_inputs g in
  if ni = 0 || nn < 4 then Graph.cleanup g
  else begin
    let st = Random.State.make [| 0x2e5; nn |] in
    let sigs = Array.make nn [||] in
    let words_rounds =
      Array.init rounds (fun _ ->
          Array.init ni (fun _ -> Random.State.int64 st Int64.max_int))
    in
    let per_round = Array.map (Graph.sim g) words_rounds in
    for id = 0 to nn - 1 do
      sigs.(id) <- Array.map (fun values -> values.(id)) per_round
    done;
    let levels = Graph.levels g in
    let depth = Graph.depth g in
    (* Divisor pool: shallow nodes, bucketed by level. Using only ids
       smaller than the target keeps the rewiring acyclic. *)
    let solver = Sat.Solver.create () in
    let sat_lit = Cnf.encode solver g in
    let checks = ref 0 in
    let recipes : (int, shape * int * int) Hashtbl.t = Hashtbl.create 32 in
    (* Verify lit_a == f(shape) applied to original nodes via SAT. The
       shape is expressed with existing solver literals, so no new
       clauses are needed for AND; XOR needs an auxiliary definition. *)
    let verify_equal target s a b =
      incr checks;
      let ta = sat_lit (Graph.lit_of_node target false) in
      if not s.xor then begin
        let la = sat_lit (if s.sa then Graph.bnot a else a) in
        let lb = sat_lit (if s.sb then Graph.bnot b else b) in
        (* f = la & lb (then sout). target != f is SAT iff:
           (target=1,f=0) or (target=0,f=1). With f a conjunction, encode
           the two checks by assumptions. *)
        let t_pos = if s.sout then -ta else ta in
        (* t_pos should equal (la & lb) *)
        let case1 = Sat.Solver.solve ~assumptions:[ t_pos; -la ] solver in
        let case1b = Sat.Solver.solve ~assumptions:[ t_pos; -lb ] solver in
        let case2 = Sat.Solver.solve ~assumptions:[ -t_pos; la; lb ] solver in
        case1 = Sat.Solver.Unsat && case1b = Sat.Solver.Unsat
        && case2 = Sat.Solver.Unsat
      end
      else begin
        let la = sat_lit a and lb = sat_lit b in
        let t_pos = if s.sout then -ta else ta in
        (* t_pos == la xor lb: the four violating cases must be UNSAT. *)
        List.for_all
          (fun assumptions ->
            Sat.Solver.solve ~assumptions solver = Sat.Solver.Unsat)
          [ [ t_pos; la; lb ]; [ t_pos; -la; -lb ];
            [ -t_pos; la; -lb ]; [ -t_pos; -la; lb ] ]
      end
    in
    (* Targets: deep nodes first (they gate the critical path). *)
    let targets =
      List.filter
        (fun id -> Graph.is_and g id && levels.(id) >= max 2 (depth / 2))
        (List.init nn Fun.id)
      |> List.sort (fun a b -> compare (levels.(b), b) (levels.(a), a))
    in
    let divisors_for target =
      List.filter
        (fun id ->
          id < target
          && (id = 0 || Graph.is_input g id || Graph.is_and g id)
          && levels.(id) + 2 <= levels.(target))
        (List.init target Fun.id)
    in
    List.iter
      (fun target ->
        if (not (Hashtbl.mem recipes target)) && !checks < max_checks then begin
          let divisors = Array.of_list (divisors_for target) in
          let nd = Array.length divisors in
          let found = ref false in
          (* Signature-compatible pairs; scan bounded. *)
          let limit = min nd 64 in
          let i = ref 0 in
          while (not !found) && !i < limit do
            let a = divisors.(nd - 1 - !i) in
            let j = ref 0 in
            while (not !found) && !j < !i do
              let b = divisors.(nd - 1 - !j) in
              List.iter
                (fun s ->
                  if (not !found) && !checks < max_checks then begin
                    let matches =
                      Array.for_all Fun.id
                        (Array.mapi
                           (fun r sa ->
                             apply_shape_words s sa sigs.(b).(r)
                             = sigs.(target).(r))
                           sigs.(a))
                    in
                    if
                      matches
                      && verify_equal target s (Graph.lit_of_node a false)
                           (Graph.lit_of_node b false)
                    then begin
                      found := true;
                      Hashtbl.replace recipes target (s, a, b)
                    end
                  end)
                shapes;
              incr j
            done;
            incr i
          done
        end)
      targets;
    if Hashtbl.length recipes = 0 then Graph.cleanup g
    else begin
      let dst = Graph.create () in
      let map = Hashtbl.create 256 in
      List.iter
        (fun l ->
          let id = Graph.node_of_lit l in
          Hashtbl.replace map id
            (Graph.add_input ?name:(Graph.input_name g id) dst))
        (Graph.inputs g);
      Hashtbl.replace map 0 Graph.const_false;
      let rec build l =
        let id = Graph.node_of_lit l in
        let base =
          match Hashtbl.find_opt map id with
          | Some b -> b
          | None ->
            let b =
              match Hashtbl.find_opt recipes id with
              | Some (s, a, b') ->
                build_shape dst s
                  (build (Graph.lit_of_node a false))
                  (build (Graph.lit_of_node b' false))
              | None ->
                let f0, f1 = Graph.fanins g id in
                Graph.band dst (build f0) (build f1)
            in
            Hashtbl.replace map id b;
            b
        in
        if Graph.is_complemented l then Graph.bnot base else base
      in
      List.iter
        (fun (name, l) -> Graph.add_output dst name (build l))
        (Graph.outputs g);
      Graph.cleanup dst
    end
  end
