(** Building AIG structure from two-level and truth-table functions.

    Covers are factored algebraically (quick-factor style: common-literal
    extraction, then division by the most frequent literal) and emitted as
    level-balanced AND/OR trees. [of_tt] tries both output polarities and
    keeps the shallower structure; it is the back-end of cut resynthesis
    and of the network-to-AIG conversion. *)

(** [and_tree g lev lits] is the balanced conjunction of the literals. *)
val and_tree : Graph.t -> Lev.t -> Graph.lit list -> Graph.lit

(** [or_tree g lev lits] is the balanced disjunction. *)
val or_tree : Graph.t -> Lev.t -> Graph.lit list -> Graph.lit

(** [of_sop g lev sop ~leaf] emits the factored cover; [leaf i] gives the
    literal for SOP variable [i]. *)
val of_sop : Graph.t -> Lev.t -> Logic.Sop.t -> leaf:(int -> Graph.lit) -> Graph.lit

(** [of_tt g lev tt ~leaf] builds the function, choosing the cheaper of the
    on-set and off-set covers. *)
val of_tt : Graph.t -> Lev.t -> Logic.Tt.t -> leaf:(int -> Graph.lit) -> Graph.lit
