include Graph
module Lev = Lev
module Cuts = Cuts
module Cnf = Cnf
module Cec = Cec
module Balance = Balance
module Synth = Synth
module Rewrite = Rewrite
module Sweep = Sweep
module Resub = Resub
module Io = Io
module Aiger = Aiger
module Verilog = Verilog
