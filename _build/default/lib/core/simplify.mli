(** Node simplification guided by the SPCF — Fig. 1 of the paper.

    Given a node [j] of the technology-independent network, the procedure
    rebuilds a cheaper function [b~_j] for it, choosing which behaviour to
    preserve by cube weight: the fraction of SPCF minterms whose global
    image lands in the cube. Cubes are preserved in order of increasing
    weight (then increasing depth) while the node level stays strictly
    below its original level; the heavy, deep cubes fall outside the
    budget, so the timing-critical minterms they carry are routed to the
    residue circuit [y1] — exactly how the carry chain peels off a
    propagate stage in the paper's adder derivation (Eqn. 3). Three cases
    as in Fig. 1: when one polarity carries no SPCF weight the function
    defaults to that polarity's constant and re-covers the other side;
    otherwise cubes of both polarities are pinned and the remainder is
    completed by two-level minimization.

    The [window] of the result is the agreement region [b~_j == b_j] over
    the node's local inputs, universally quantified over the fanins the
    simplification eliminated, so the window logic never re-introduces the
    late signals. The conjunction of globalized windows of all simplified
    nodes is the window function [Σ1] of the decomposition (Fig. 2). *)

type result = {
  func : Logic.Tt.t;  (** simplified node function [b~_j] *)
  window : Logic.Tt.t;  (** agreement region over the node's fanins *)
  changed : bool;  (** false when no simplification was possible *)
}

(** [run man ~globals ~spcf ~spcf_count net ~levels id] simplifies node
    [id]. [globals] must be the global functions of the {e original}
    network (images of changed cubes must be computed against unmodified
    fanin behaviour for the decomposition to stay sound); [levels] are the
    current node levels of the working network. The working network is not
    modified — the caller applies [func] with {!Network.set_func}. *)
val run :
  Bdd.man ->
  globals:Bdd.t array ->
  spcf:Bdd.t ->
  spcf_count:float ->
  Network.t ->
  levels:int array ->
  int ->
  result
