type result = { func : Logic.Tt.t; window : Logic.Tt.t; changed : bool }

let unchanged b =
  { func = b; window = Logic.Tt.const_true (Logic.Tt.num_vars b); changed = false }

(* The agreement window of a simplified node, made independent of the
   fanins the simplification eliminated: [forall eliminated, b == b~].
   Quantifying is what keeps the window function shallow — in the adder
   case study it turns the raw agreement of [g + p*c -> g] (which still
   mentions the late carry [c]) into [~p + g], the paper's propagate-based
   window. A smaller window is always sound: it only shrinks the region
   where the fast circuit is used. *)
let quantified_window b func =
  let agree = Logic.Tt.equiv b func in
  let eliminated =
    List.filter
      (fun i -> not (Logic.Tt.depends_on func i))
      (Logic.Tt.support b)
  in
  List.fold_left
    (fun acc i -> Logic.Tt.lnot (Logic.Tt.exists (Logic.Tt.lnot acc) i))
    agree eliminated

let run man ~globals ~spcf ~spcf_count net ~levels id =
  let nd = Network.node net id in
  let b = nd.Network.func in
  let k = Array.length nd.Network.fanins in
  let nvars = Bdd.num_vars man in
  if k = 0 || Logic.Tt.is_const_false b || Logic.Tt.is_const_true b then unchanged b
  else begin
    let l_j = Network.Levels.node_level net ~levels id in
    if l_j = 0 then unchanged b
    else begin
      let fanin_level i = levels.(nd.Network.fanins.(i)) in
      let level_of tt =
        if Logic.Tt.is_const_false tt || Logic.Tt.is_const_true tt then 0
        else begin
          let on, off = Logic.Minimize.min_sops tt in
          min
            (Network.Levels.sop_depth on ~fanin_level)
            (Network.Levels.sop_depth off ~fanin_level)
        end
      in
      let weight cube =
        if spcf_count <= 0.0 then 0.0
        else begin
          let image = Network.Globals.cube_image man globals net id cube in
          Bdd.satcount man ~nvars (Bdd.band man spcf image) /. spcf_count
        end
      in
      let cube_depth c =
        Network.Levels.tree_depth
          (List.map (fun (i, _) -> fanin_level i) (Logic.Cube.literals c))
      in
      (* Fanins whose level reduction is necessary to speed the node up:
         a preserved cube must not mention them, otherwise neither the
         simplified node nor the window escapes the late signals. Cubes
         touching critical fanins are sacrificed wholesale; the minterms
         they carry route to the residue circuit. *)
      let crit = Network.Levels.critical_inputs net ~levels id in
      let avoids_crit c =
        List.for_all (fun (i, _) -> not (List.mem i crit)) (Logic.Cube.literals c)
      in
      let on_sop, off_sop = Logic.Minimize.min_sops b in
      let weigh sop =
        List.filter_map
          (fun c -> if avoids_crit c then Some (c, weight c) else None)
          sop.Logic.Sop.cubes
      in
      let on_w = weigh on_sop and off_w = weigh off_sop in
      let all_zero ws = List.for_all (fun (_, w) -> w = 0.0) ws in
      (* Preservation order: light (non-critical) and shallow cubes first.
         The heavy, deep cubes fall off the end of the level budget, so the
         speed paths they carry are routed to the residue y1. *)
      let preservation_order ws =
        List.sort
          (fun (c1, w1) (c2, w2) ->
            match compare w1 w2 with
            | 0 -> compare (cube_depth c1) (cube_depth c2)
            | c -> c)
          ws
      in
      (* Greedy accumulation: apply [extend base cube] and keep it whenever
         the node level stays strictly below the original. *)
      let accumulate base extend cubes =
        List.fold_left
          (fun acc (c, _) ->
            let cand = extend acc c in
            if level_of cand < l_j then cand else acc)
          base cubes
      in
      let func =
        if all_zero on_w && not (all_zero off_w) then
          (* SPCF never exercises the on-set: the on-set is safe to keep;
             default to constant 1 and carve the off-set back. *)
          accumulate (Logic.Tt.const_true k)
            (fun acc c -> Logic.Tt.land_ acc (Logic.Tt.lnot (Logic.Cube.to_tt k c)))
            (preservation_order off_w)
        else if all_zero off_w && not (all_zero on_w) then
          accumulate (Logic.Tt.const_false k)
            (fun acc c -> Logic.Tt.lor_ acc (Logic.Cube.to_tt k c))
            (preservation_order on_w)
        else begin
          (* Both polarities carry SPCF weight (or neither): pin cubes of
             either polarity in preservation order, completing the rest by
             two-level minimization, under the same level constraint. *)
          let tagged =
            List.map (fun (c, w) -> ((c, w), true)) on_w
            @ List.map (fun (c, w) -> ((c, w), false)) off_w
          in
          let sorted =
            List.sort
              (fun ((c1, w1), _) ((c2, w2), _) ->
                match compare w1 w2 with
                | 0 -> compare (cube_depth c1) (cube_depth c2)
                | c -> c)
              tagged
          in
          let completion pinned_on pinned_off =
            Logic.Sop.to_tt
              (Logic.Minimize.isop ~lower:pinned_on
                 ~upper:(Logic.Tt.lnot pinned_off))
          in
          let pinned_on, pinned_off =
            List.fold_left
              (fun (pon, poff) ((c, _), polarity) ->
                let ct = Logic.Cube.to_tt k c in
                let pon' = if polarity then Logic.Tt.lor_ pon ct else pon in
                let poff' = if polarity then poff else Logic.Tt.lor_ poff ct in
                if level_of (completion pon' poff') < l_j then (pon', poff')
                else (pon, poff))
              (Logic.Tt.const_false k, Logic.Tt.const_false k)
              sorted
          in
          completion pinned_on pinned_off
        end
      in
      if Logic.Tt.equal func b || level_of func >= l_j then unchanged b
      else begin
        let window = quantified_window b func in
        if Logic.Tt.is_const_false window then unchanged b
        else { func; window; changed = true }
      end
    end
  end
