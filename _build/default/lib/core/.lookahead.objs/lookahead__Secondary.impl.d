lib/core/secondary.ml: Array Bdd List Logic Network
