lib/core/mfs.mli: Aig Bdd Network
