lib/core/mfs.ml: Aig Array Bdd List Logic Network Timing
