lib/core/driver.mli: Aig
