lib/core/lookahead.ml: Driver Mfs Reconstruct Reduce Secondary Simplify
