lib/core/driver.ml: Aig Array Bdd Hashtbl List Logic Logs Network Reconstruct Reduce Secondary Timing Unix
