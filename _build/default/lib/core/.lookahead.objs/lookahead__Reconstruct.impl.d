lib/core/reconstruct.ml: Aig Array Bdd Hashtbl Lazy List Logic Network
