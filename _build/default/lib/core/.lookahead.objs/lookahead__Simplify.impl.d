lib/core/simplify.ml: Array Bdd List Logic Network
