lib/core/reduce.ml: Array Hashtbl List Logic Network Simplify
