lib/core/reduce.mli: Bdd Logic Network
