lib/core/reconstruct.mli: Aig Bdd Hashtbl Logic Network
