lib/core/lookahead.mli: Aig Driver Mfs Reconstruct Reduce Secondary Simplify
