lib/core/simplify.mli: Bdd Logic Network
