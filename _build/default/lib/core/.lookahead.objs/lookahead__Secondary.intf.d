lib/core/secondary.mli: Bdd Network
