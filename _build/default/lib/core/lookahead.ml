module Simplify = Simplify
module Reduce = Reduce
module Secondary = Secondary
module Reconstruct = Reconstruct
module Driver = Driver
module Mfs = Mfs

let optimize = Driver.optimize
let optimize_with_stats = Driver.optimize_with_stats
