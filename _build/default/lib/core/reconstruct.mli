(** Reconstruction of an output from its decomposition levels
    (Eqns. 2 and 4) with implication-based simplification.

    A multi-level decomposition
    [y = Σ1·y0_1 + ¬Σ1·(Σ2·y0_2 + ¬Σ2·( ... y_res))] is emitted in the
    {e flattened} sum-of-prefix-products form of Eqn. 2 with balanced
    AND/OR trees — this flattening is what turns the recursive peeling of
    a ripple-carry chain into the parallel-prefix (carry-lookahead)
    structure. For a single-level decomposition the paper's
    implication-rule simplifications are realized by enumerating
    candidate forms, validating each against the output's global BDD, and
    keeping the shallowest (losing candidates are strashed garbage,
    removed by cleanup). *)

(** One decomposition level. [residue] is the network that was decomposed
    (the windows' fanins live there); [residue_globals] its global
    functions; [primary] computes [y0] (valid where the windows all
    hold). *)
type level = {
  residue : Network.t;
  residue_globals : Bdd.t array;
  primary : Network.t;
  windows : (int * Logic.Tt.t) list;
}

type pieces = {
  levels : level list;  (** outermost decomposition first *)
  final_residue : Network.t;  (** computes the last [y_res] *)
  out : Network.output;
}

(** [emit_node dst lev cache net ~input_map id] synthesizes node [id] of
    [net] into AIG [dst]; [input_map] takes an input position to an AIG
    literal; [cache] memoizes per network. *)
val emit_node :
  Aig.t ->
  Aig.Lev.t ->
  (int, Aig.lit) Hashtbl.t ->
  Network.t ->
  input_map:(int -> Aig.lit) ->
  int ->
  Aig.lit

(** [build man ~y_bdd dst lev ~input_map pieces] returns the literal of
    the reconstructed output in [dst] (output polarity applied), or
    [None] when no candidate verified against [y_bdd] (the original
    output's global function). *)
val build :
  Bdd.man ->
  y_bdd:Bdd.t ->
  Aig.t ->
  Aig.Lev.t ->
  input_map:(int -> Aig.lit) ->
  pieces ->
  Aig.lit option
