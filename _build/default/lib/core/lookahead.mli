(** Lookahead logic circuits — the paper's primary contribution.

    [optimize] converts a circuit into a lookahead logic circuit:
    a timing-driven generalized Shannon decomposition
    [y = Σ1·y0 + ¬Σ1·y1] is discovered per critical output by
    simplifying the technology-independent network under SPCF guidance
    ({!Simplify}, {!Reduce}), deriving [y1] by don't-care minimization
    against the window complement ({!Secondary}), and reconstructing with
    implication-rule selection ({!Reconstruct}). Iterating the flow
    ({!Driver}) yields the multi-level decomposition of Eqn. 2. *)

module Simplify = Simplify
module Reduce = Reduce
module Secondary = Secondary
module Reconstruct = Reconstruct
module Driver = Driver
module Mfs = Mfs

(** [optimize ?options g] — see {!Driver.optimize}. *)
val optimize : ?options:Driver.options -> Aig.t -> Aig.t

val optimize_with_stats : ?options:Driver.options -> Aig.t -> Aig.t * Driver.stats
