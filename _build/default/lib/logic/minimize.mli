(** Two-level minimization: irredundant covers and prime-based minimum
    covers for node-local functions.

    The paper's level-quantification and [Simplify] steps operate on
    "minimum SOP" representations of the on-set and off-set of each node
    (Sec. 3.1). [isop] gives the classic Minato-Morreale irredundant
    sum-of-products between a lower and an upper bound; [minimum_cover]
    computes all primes (Quine-McCluskey style) and extracts an
    essential-plus-greedy cover, which is minimum or near-minimum for the
    small functions that appear as network nodes. *)

(** [isop ~lower ~upper] is an irredundant cover [c] with
    [lower <= c <= upper]. Requires [lower <= upper]. *)
val isop : lower:Tt.t -> upper:Tt.t -> Sop.t

(** [primes ~on ~dc] is the set of all prime implicants of the incompletely
    specified function with the given on-set and don't-care set. *)
val primes : on:Tt.t -> dc:Tt.t -> Cube.t list

(** [minimum_cover ~on ~dc] covers every on-set minterm with primes:
    essential primes first, then a greedy covering, then redundancy
    removal. *)
val minimum_cover : on:Tt.t -> dc:Tt.t -> Sop.t

(** [min_sops f] is the pair (cover of the on-set, cover of the off-set)
    using [minimum_cover] with empty don't-care sets — the paper's 1-SOP
    and 0-SOP of a node function. *)
val min_sops : Tt.t -> Sop.t * Sop.t
