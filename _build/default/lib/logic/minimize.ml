(* Minato-Morreale ISOP. Returns both the cover and the truth table of the
   cover so callers can rely on lower <= cover <= upper. *)
let rec isop_rec lower upper vars =
  if Tt.is_const_false lower then ([], Tt.const_false (Tt.num_vars lower))
  else
    match vars with
    | [] ->
      (* No variable left to split on: lower is non-empty and constant in
         all remaining vars, so upper must be the constant-true function. *)
      ([ Cube.top ], Tt.const_true (Tt.num_vars lower))
    | x :: rest ->
      if not (Tt.depends_on lower x || Tt.depends_on upper x) then
        isop_rec lower upper rest
      else begin
        let l0 = Tt.cofactor lower x false and l1 = Tt.cofactor lower x true in
        let u0 = Tt.cofactor upper x false and u1 = Tt.cofactor upper x true in
        let c0, f0 = isop_rec (Tt.land_ l0 (Tt.lnot u1)) u0 rest in
        let c1, f1 = isop_rec (Tt.land_ l1 (Tt.lnot u0)) u1 rest in
        let lnew =
          Tt.lor_ (Tt.land_ l0 (Tt.lnot f0)) (Tt.land_ l1 (Tt.lnot f1))
        in
        let cd, fd = isop_rec lnew (Tt.land_ u0 u1) rest in
        let cubes =
          List.map (fun c -> Cube.with_literal c x false) c0
          @ List.map (fun c -> Cube.with_literal c x true) c1
          @ cd
        in
        let xt = Tt.var (Tt.num_vars lower) x in
        let cover =
          Tt.lor_ fd
            (Tt.lor_ (Tt.land_ (Tt.lnot xt) f0) (Tt.land_ xt f1))
        in
        (cubes, cover)
      end

let isop ~lower ~upper =
  assert (Tt.is_const_false (Tt.land_ lower (Tt.lnot upper)));
  let n = Tt.num_vars lower in
  let vars = List.init n (fun i -> i) in
  let cubes, _ = isop_rec lower upper vars in
  Sop.make n cubes

(* Quine-McCluskey prime generation over the care function on+dc. A cube is
   an implicant when it lies entirely inside on+dc; it is prime when no
   single-literal expansion is still an implicant. We grow implicants from
   minterms by repeated pairwise merging. *)
let primes ~on ~dc =
  let n = Tt.num_vars on in
  let cover = Tt.lor_ on dc in
  let is_implicant c =
    (* Cube inside cover iff cover has no 0 inside the cube. *)
    let rec check m =
      if m >= Tt.size cover then true
      else if Cube.mem c m && not (Tt.get_bit cover m) then false
      else check (m + 1)
    in
    check 0
  in
  let expand c =
    (* Remove literals while the cube remains an implicant. *)
    List.fold_left
      (fun c (i, _) ->
        let c' = { Cube.mask = c.Cube.mask land lnot (1 lsl i); bits = c.Cube.bits land lnot (1 lsl i) } in
        if is_implicant c' then c' else c)
      c (Cube.literals c)
  in
  let module CS = Set.Make (struct
    type t = Cube.t
    let compare = Cube.compare
  end) in
  (* Expanding every on-set minterm in every literal order is exponential;
     instead collect primes by expanding each minterm with all single-start
     rotations of the literal order, which finds all primes needed to cover
     the function (a superset of the essential primes and enough for the
     covering step). Then grow the set with pairwise consensus until no new
     prime appears, bounded for safety. *)
  let start = ref CS.empty in
  List.iter
    (fun m ->
      let lits = List.init n (fun i -> (i, (m lsr i) land 1 = 1)) in
      let base = Cube.of_literals lits in
      let rec rotations k acc l =
        if k = 0 then acc
        else
          match l with
          | [] -> acc
          | x :: rest -> rotations (k - 1) ((rest @ [ x ]) :: acc) (rest @ [ x ])
      in
      let orders = lits :: rotations (min n 4) [] lits in
      List.iter
        (fun order ->
          let c =
            List.fold_left
              (fun c (i, _) ->
                let c' =
                  { Cube.mask = c.Cube.mask land lnot (1 lsl i);
                    bits = c.Cube.bits land lnot (1 lsl i) }
                in
                if is_implicant c' then c' else c)
              base order
          in
          start := CS.add (expand c) !start)
        orders)
    (Tt.minterms on);
  CS.elements !start

let minimum_cover ~on ~dc =
  let n = Tt.num_vars on in
  if Tt.is_const_false on then Sop.const_false n
  else if Tt.is_const_true (Tt.lor_ on dc) && not (Tt.is_const_false on) then
    Sop.const_true n
  else begin
    let ps = Array.of_list (primes ~on ~dc) in
    let minterms = Tt.minterms on in
    let covers_of_m =
      List.map
        (fun m ->
          (m, List.filter (fun i -> Cube.mem ps.(i) m) (List.init (Array.length ps) Fun.id)))
        minterms
    in
    let chosen = Hashtbl.create 16 in
    (* Essential primes: sole cover of some minterm. *)
    List.iter
      (fun (_, cs) ->
        match cs with [ i ] -> Hashtbl.replace chosen i () | _ -> ())
      covers_of_m;
    let covered m =
      List.exists (fun i -> Hashtbl.mem chosen i)
        (List.assoc m covers_of_m)
    in
    let rec greedy () =
      let remaining = List.filter (fun (m, _) -> not (covered m)) covers_of_m in
      if remaining <> [] then begin
        let gain = Array.make (Array.length ps) 0 in
        List.iter
          (fun (_, cs) -> List.iter (fun i -> gain.(i) <- gain.(i) + 1) cs)
          remaining;
        let best = ref 0 in
        Array.iteri (fun i g -> if g > gain.(!best) then best := i) gain;
        if gain.(!best) = 0 then ()
        else begin
          Hashtbl.replace chosen !best ();
          greedy ()
        end
      end
    in
    greedy ();
    (* Redundancy removal: drop chosen primes whose minterms are covered by
       the others. *)
    let selected = Hashtbl.fold (fun i () acc -> i :: acc) chosen [] in
    let drop_if_redundant kept i =
      let others = List.filter (fun j -> j <> i) kept in
      let all_covered =
        List.for_all
          (fun (m, _) -> List.exists (fun j -> Cube.mem ps.(j) m) others)
          covers_of_m
      in
      if all_covered then others else kept
    in
    let irredundant = List.fold_left drop_if_redundant selected selected in
    Sop.make n (List.map (fun i -> ps.(i)) irredundant)
  end

(* min_sops is in the inner loop of the level quantification (every
   Levels.compute calls it for every node); node functions repeat
   massively across calls, so the covers are memoized by truth table. *)
let min_sops_cache : (int * string, Sop.t * Sop.t) Hashtbl.t = Hashtbl.create 4096

let min_sops f =
  let key = (Tt.num_vars f, Tt.to_hex f) in
  match Hashtbl.find_opt min_sops_cache key with
  | Some r -> r
  | None ->
    let n = Tt.num_vars f in
    let dc = Tt.const_false n in
    let r = (minimum_cover ~on:f ~dc, minimum_cover ~on:(Tt.lnot f) ~dc) in
    if Hashtbl.length min_sops_cache > 200_000 then
      Hashtbl.reset min_sops_cache;
    Hashtbl.add min_sops_cache key r;
    r
