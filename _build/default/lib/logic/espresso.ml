let cube_tt n c = Cube.to_tt n c

(* Expand one cube to a prime implicant of on+dc: drop literals greedily
   (largest coverage gain first) while the cube stays inside on+dc. *)
let expand_cube n care c =
  let inside cube = Tt.is_const_false (Tt.land_ (cube_tt n cube) (Tt.lnot care)) in
  let rec loop c =
    let candidates =
      List.filter_map
        (fun (i, _) ->
          let c' =
            { Cube.mask = c.Cube.mask land lnot (1 lsl i);
              bits = c.Cube.bits land lnot (1 lsl i) }
          in
          if inside c' then Some c' else None)
        (Cube.literals c)
    in
    match candidates with
    | [] -> c
    | c' :: _ -> loop c'
  in
  loop c

let expand ~off (cover : Sop.t) =
  let n = cover.Sop.n in
  let care = Tt.lnot off in
  Sop.drop_contained
    (Sop.make n (List.map (expand_cube n care) cover.Sop.cubes))

let irredundant ~on ~dc (cover : Sop.t) =
  let n = cover.Sop.n in
  let keep kept c rest =
    (* c is redundant when its on-set minterms are covered by the other
       cubes plus the don't-care set. *)
    let others =
      List.fold_left
        (fun acc d -> Tt.lor_ acc (cube_tt n d))
        (Tt.const_false n) (kept @ rest)
    in
    let contribution = Tt.land_ (cube_tt n c) on in
    not (Tt.is_const_false (Tt.land_ contribution (Tt.lnot (Tt.lor_ others dc))))
  in
  let rec loop kept = function
    | [] -> List.rev kept
    | c :: rest -> if keep kept c rest then loop (c :: kept) rest else loop kept rest
  in
  Sop.make n (loop [] cover.Sop.cubes)

let reduce ~on ~dc (cover : Sop.t) =
  let n = cover.Sop.n in
  ignore dc;
  let reduce_cube others c =
    (* The smallest cube covering the on-set minterms that only this cube
       covers. Adding back literals one at a time while the unique
       contribution stays covered. *)
    let unique =
      Tt.land_ (Tt.land_ (cube_tt n c) on) (Tt.lnot others)
    in
    if Tt.is_const_false unique then c
    else begin
      (* Supercube of the unique part within c: for each free variable of
         c, bind it when the unique part is constant in it. *)
      List.fold_left
        (fun c i ->
          if c.Cube.mask land (1 lsl i) <> 0 then c
          else begin
            let u1 = Tt.land_ unique (Tt.var n i) in
            let u0 = Tt.land_ unique (Tt.lnot (Tt.var n i)) in
            if Tt.is_const_false u0 && not (Tt.is_const_false u1) then
              Cube.with_literal c i true
            else if Tt.is_const_false u1 && not (Tt.is_const_false u0) then
              Cube.with_literal c i false
            else c
          end)
        c
        (List.init n Fun.id)
    end
  in
  let arr = Array.of_list cover.Sop.cubes in
  let cubes =
    Array.to_list
      (Array.mapi
         (fun i c ->
           let others =
             Array.to_list arr
             |> List.filteri (fun j _ -> j <> i)
             |> List.fold_left
                  (fun acc d -> Tt.lor_ acc (cube_tt n d))
                  (Tt.const_false n)
           in
           reduce_cube others c)
         arr)
  in
  Sop.make n cubes

let cost (s : Sop.t) = (Sop.num_cubes s, Sop.num_literals s)

let minimize ~on ~dc =
  assert (Tt.is_const_false (Tt.land_ on dc));
  let n = Tt.num_vars on in
  if Tt.is_const_false on then Sop.const_false n
  else if Tt.is_const_true (Tt.lor_ on dc) then Sop.const_true n
  else begin
    let off = Tt.lnot (Tt.lor_ on dc) in
    (* Seed with the ISOP cover. *)
    let start = Minimize.isop ~lower:on ~upper:(Tt.lor_ on dc) in
    let step cover =
      irredundant ~on ~dc (expand ~off (reduce ~on ~dc cover))
    in
    let rec loop best i =
      if i = 0 then best
      else begin
        let next = step best in
        if cost next < cost best then loop next (i - 1) else best
      end
    in
    let first = irredundant ~on ~dc (expand ~off start) in
    loop first 6
  end
