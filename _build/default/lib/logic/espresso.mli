(** An espresso-style heuristic two-level minimizer.

    The classic loop over a cover of an incompletely specified function:

    - {b EXPAND} each cube against the off-set to a prime;
    - {b IRREDUNDANT} drops cubes covered by the rest of the cover;
    - {b REDUCE} shrinks each cube to the smallest cube still covering
      its share of the on-set, enabling a different expansion next
      iteration.

    The loop stops when the cost (cube count, then literal count) stops
    improving. Unlike {!Minimize.minimum_cover} (exact-ish
    Quine-McCluskey over all primes), this scales to wider node
    functions because it never enumerates the prime set; it is the
    engine used for node functions above the QM width threshold. *)

(** [minimize ~on ~dc] is an irredundant prime cover of the function.
    Requires [on] and [dc] disjoint. *)
val minimize : on:Tt.t -> dc:Tt.t -> Sop.t

(** One EXPAND pass: every cube of [cover] is expanded to a prime
    against [off]. Exposed for testing. *)
val expand : off:Tt.t -> Sop.t -> Sop.t

(** One IRREDUNDANT pass: drops cubes whose on-set contribution is
    covered by the remaining cubes and [dc]. Exposed for testing. *)
val irredundant : on:Tt.t -> dc:Tt.t -> Sop.t -> Sop.t

(** One REDUCE pass. Exposed for testing. *)
val reduce : on:Tt.t -> dc:Tt.t -> Sop.t -> Sop.t
