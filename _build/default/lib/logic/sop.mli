(** Sums of products (cube covers). *)

type t = { n : int; cubes : Cube.t list }

val make : int -> Cube.t list -> t
val const_false : int -> t
val const_true : int -> t

(** Number of cubes. *)
val num_cubes : t -> int

(** Total literal count, the classic SOP cost. *)
val num_literals : t -> int

val eval : t -> int -> bool
val to_tt : t -> Tt.t

(** Remove cubes contained in another cube of the cover. *)
val drop_contained : t -> t

(** Disjunction and conjunction of covers (conjunction distributes and can
    blow up; used only on small node-local functions). *)
val disj : t -> t -> t
val conj : t -> t -> t

val pp : Format.formatter -> t -> unit
