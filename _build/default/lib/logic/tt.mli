(** Bit-packed truth tables.

    A value of type {!t} represents a completely specified Boolean function
    of [num_vars] variables as a packed bit vector of [2^num_vars] bits.
    Variable [i] has period [2^i]: bit [m] of the table is the value of the
    function on the minterm whose [i]-th input is [(m lsr i) land 1].

    Truth tables are the working representation for node-local functions in
    the technology-independent network (typically 8 or fewer inputs). *)

type t

(** [create n] is the constant-false function of [n] variables
    (0 <= n <= 20). *)
val create : int -> t

val num_vars : t -> int

(** Number of minterms, [2^num_vars]. *)
val size : t -> int

val const_false : int -> t
val const_true : int -> t

(** [var n i] is the projection function of variable [i] among [n]. *)
val var : int -> int -> t

(** [get_bit f m] is the value of [f] on minterm [m]. *)
val get_bit : t -> int -> bool

(** [set_bit f m b] is [f] with minterm [m] set to [b] (functional). *)
val set_bit : t -> int -> bool -> t

val lnot : t -> t
val land_ : t -> t -> t
val lor_ : t -> t -> t
val lxor_ : t -> t -> t

(** [equiv f g] is the function that is true where [f = g]. *)
val equiv : t -> t -> t

val equal : t -> t -> bool
val is_const_false : t -> bool
val is_const_true : t -> bool

(** [cofactor f i b] fixes variable [i] to [b]; the result still has
    [num_vars] variables but no longer depends on [i]. *)
val cofactor : t -> int -> bool -> t

(** [depends_on f i] is true when [f] is not constant in variable [i]. *)
val depends_on : t -> int -> bool

(** Indices of the variables [f] actually depends on, ascending. *)
val support : t -> int list

(** Number of minterms on which the function is true. *)
val count_ones : t -> int

(** [exists f i] is the existential quantification of variable [i]. *)
val exists : t -> int -> t

(** [compose f i g] substitutes function [g] for variable [i] in [f]. *)
val compose : t -> int -> t -> t

(** [permute f perm] renames variable [i] to [perm.(i)]; [perm] must be a
    permutation of [0 .. num_vars - 1]. *)
val permute : t -> int array -> t

(** [of_minterms n ms] is the function of [n] variables true exactly on the
    listed minterms. *)
val of_minterms : int -> int list -> t

val minterms : t -> int list

(** [of_fun n f] tabulates [f] over the [2^n] minterms. *)
val of_fun : int -> (int -> bool) -> t

(** Random table over [n] variables using the given state. *)
val random : Random.State.t -> int -> t

(** Hex dump, most significant word first; for debugging and hashing. *)
val to_hex : t -> string

val pp : Format.formatter -> t -> unit
val hash : t -> int
val compare : t -> t -> int
