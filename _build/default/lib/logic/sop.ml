type t = { n : int; cubes : Cube.t list }

let make n cubes = { n; cubes }
let const_false n = { n; cubes = [] }
let const_true n = { n; cubes = [ Cube.top ] }
let num_cubes s = List.length s.cubes
let num_literals s = List.fold_left (fun acc c -> acc + Cube.num_literals c) 0 s.cubes
let eval s m = List.exists (fun c -> Cube.mem c m) s.cubes

let to_tt s =
  List.fold_left
    (fun acc c -> Tt.lor_ acc (Cube.to_tt s.n c))
    (Tt.const_false s.n) s.cubes

let drop_contained s =
  let keep c =
    not
      (List.exists
         (fun d -> (not (Cube.equal c d)) && Cube.contains d c)
         s.cubes)
  in
  let rec dedup seen = function
    | [] -> List.rev seen
    | c :: rest ->
      if List.exists (Cube.equal c) seen then dedup seen rest
      else dedup (c :: seen) rest
  in
  { s with cubes = dedup [] (List.filter keep s.cubes) }

let disj a b =
  assert (a.n = b.n);
  drop_contained { n = a.n; cubes = a.cubes @ b.cubes }

let conj a b =
  assert (a.n = b.n);
  let cubes =
    List.concat_map
      (fun c -> List.filter_map (fun d -> Cube.intersect c d) b.cubes)
      a.cubes
  in
  drop_contained { n = a.n; cubes }

let pp ppf s =
  if s.cubes = [] then Format.pp_print_string ppf "0"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
      Cube.pp ppf s.cubes
