(** Cubes (product terms) over up to 30 variables.

    A cube fixes a subset of the variables to constants and leaves the rest
    free. Cubes are the unit of manipulation in the paper's [Simplify]
    procedure (Fig. 1): node functions are covered by prime-implicant cubes
    whose weights against the speed-path characteristic function guide the
    simplification. *)

type t = {
  mask : int;  (** bit [i] set when variable [i] is bound *)
  bits : int;  (** value of variable [i] when bound; 0 elsewhere *)
}

(** The universal cube (no literal). *)
val top : t

(** [of_literals lits] builds a cube from [(var, value)] pairs. *)
val of_literals : (int * bool) list -> t

val literals : t -> (int * bool) list

(** Number of literals. *)
val num_literals : t -> int

(** [mem c m] is true when minterm [m] lies inside cube [c]. *)
val mem : t -> int -> bool

(** [contains c d] is true when cube [d] is a subset of cube [c]. *)
val contains : t -> t -> bool

(** [intersect c d] is the product of the two cubes, or [None] when they
    conflict on some variable. *)
val intersect : t -> t -> t option

(** [cofactor c i b] restricts the cube to the half-space [x_i = b]:
    [None] when the cube requires [x_i = not b], otherwise the cube with
    the literal on [i] removed. *)
val cofactor : t -> int -> bool -> t option

(** [with_literal c i b] adds the literal [x_i = b]. *)
val with_literal : t -> int -> bool -> t

(** Truth table of the cube over [n] variables. *)
val to_tt : int -> t -> Tt.t

(** Number of minterms of the cube in an [n]-variable space. *)
val minterm_count : int -> t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Print as a position string like "1-0-" over [n] variables (variable 0
    leftmost). *)
val to_string : int -> t -> string
