type t = { n : int; words : int64 array }

(* Precomputed single-word patterns for variables 0..5: variable [i] is the
   bit pattern with period [2^i]. *)
let var_masks =
  [| 0xAAAAAAAAAAAAAAAAL; 0xCCCCCCCCCCCCCCCCL; 0xF0F0F0F0F0F0F0F0L;
     0xFF00FF00FF00FF00L; 0xFFFF0000FFFF0000L; 0xFFFFFFFF00000000L |]

let words_for n = if n <= 6 then 1 else 1 lsl (n - 6)

(* Bits beyond [2^n] in the single-word case must stay zero so that
   [equal]/[count_ones] are exact. *)
let live_mask n =
  if n >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L

let normalize t =
  if t.n < 6 then t.words.(0) <- Int64.logand t.words.(0) (live_mask t.n);
  t

let create n =
  assert (n >= 0 && n <= 20);
  { n; words = Array.make (words_for n) 0L }

let num_vars t = t.n
let size t = 1 lsl t.n
let const_false = create

let const_true n =
  let t = { n; words = Array.make (words_for n) (-1L) } in
  normalize t

let var n i =
  assert (i >= 0 && i < n);
  let t = create n in
  if i < 6 then begin
    Array.fill t.words 0 (Array.length t.words) var_masks.(i);
    ignore (normalize t)
  end else begin
    let period = 1 lsl (i - 6) in
    for w = 0 to Array.length t.words - 1 do
      if w land period <> 0 then t.words.(w) <- -1L
    done
  end;
  t

let get_bit t m =
  assert (m >= 0 && m < size t);
  Int64.logand (Int64.shift_right_logical t.words.(m lsr 6) (m land 63)) 1L
  = 1L

let set_bit t m b =
  assert (m >= 0 && m < size t);
  let words = Array.copy t.words in
  let bit = Int64.shift_left 1L (m land 63) in
  let w = m lsr 6 in
  words.(w) <-
    (if b then Int64.logor words.(w) bit
     else Int64.logand words.(w) (Int64.lognot bit));
  { t with words }

let map2 f a b =
  assert (a.n = b.n);
  let words = Array.init (Array.length a.words) (fun i -> f a.words.(i) b.words.(i)) in
  normalize { n = a.n; words }

let map1 f a =
  let words = Array.map f a.words in
  normalize { n = a.n; words }

let lnot = map1 Int64.lognot
let land_ = map2 Int64.logand
let lor_ = map2 Int64.logor
let lxor_ = map2 Int64.logxor
let equiv a b = lnot (lxor_ a b)
let equal a b = a.n = b.n && a.words = b.words
let is_const_false t = Array.for_all (fun w -> w = 0L) t.words
let is_const_true t = equal t (const_true t.n)

let cofactor t i b =
  assert (i >= 0 && i < t.n);
  if i < 6 then begin
    let mask = if b then var_masks.(i) else Int64.lognot var_masks.(i) in
    let shift = 1 lsl i in
    let spread w =
      let kept = Int64.logand w mask in
      if b then Int64.logor kept (Int64.shift_right_logical kept shift)
      else Int64.logor kept (Int64.shift_left kept shift)
    in
    map1 spread t
  end else begin
    let period = 1 lsl (i - 6) in
    let words = Array.copy t.words in
    for w = 0 to Array.length words - 1 do
      let src = if b then w lor period else w land Stdlib.lnot period in
      words.(w) <- t.words.(src)
    done;
    normalize { n = t.n; words }
  end

let depends_on t i = not (equal (cofactor t i false) (cofactor t i true))

let support t =
  let rec loop i acc =
    if i < 0 then acc
    else loop (i - 1) (if depends_on t i then i :: acc else acc)
  in
  loop (t.n - 1) []

let count_ones t =
  let count_word w =
    let rec loop w acc =
      if w = 0L then acc
      else loop (Int64.logand w (Int64.sub w 1L)) (acc + 1)
    in
    loop w 0
  in
  Array.fold_left (fun acc w -> acc + count_word w) 0 t.words

let exists t i = lor_ (cofactor t i false) (cofactor t i true)

let compose t i g =
  let f0 = cofactor t i false and f1 = cofactor t i true in
  lor_ (land_ g f1) (land_ (lnot g) f0)

let of_fun n f =
  let t = create n in
  for m = 0 to (1 lsl n) - 1 do
    if f m then begin
      let w = m lsr 6 in
      t.words.(w) <- Int64.logor t.words.(w) (Int64.shift_left 1L (m land 63))
    end
  done;
  t

let permute t perm =
  assert (Array.length perm = t.n);
  of_fun t.n (fun m ->
      (* Build the source minterm by moving bit [i] of the result position
         back to original variable [i]. *)
      let src = ref 0 in
      for i = 0 to t.n - 1 do
        if (m lsr perm.(i)) land 1 = 1 then src := !src lor (1 lsl i)
      done;
      get_bit t !src)

let of_minterms n ms =
  let t = create n in
  List.iter
    (fun m ->
      assert (m >= 0 && m < 1 lsl n);
      let w = m lsr 6 in
      t.words.(w) <- Int64.logor t.words.(w) (Int64.shift_left 1L (m land 63)))
    ms;
  t

let minterms t =
  let rec loop m acc =
    if m < 0 then acc else loop (m - 1) (if get_bit t m then m :: acc else acc)
  in
  loop (size t - 1) []

let random st n =
  let t = create n in
  for w = 0 to Array.length t.words - 1 do
    t.words.(w) <- Random.State.int64 st Int64.max_int;
    if Random.State.bool st then t.words.(w) <- Int64.lognot t.words.(w)
  done;
  normalize t

let to_hex t =
  let buf = Buffer.create (Array.length t.words * 16) in
  for w = Array.length t.words - 1 downto 0 do
    Buffer.add_string buf (Printf.sprintf "%016Lx" t.words.(w))
  done;
  Buffer.contents buf

let pp ppf t = Format.fprintf ppf "tt<%d>:%s" t.n (to_hex t)
let hash t = Hashtbl.hash (t.n, t.words)

let compare a b =
  match Stdlib.compare a.n b.n with
  | 0 -> Stdlib.compare a.words b.words
  | c -> c
