type t = { mask : int; bits : int }

let top = { mask = 0; bits = 0 }

let of_literals lits =
  List.fold_left
    (fun c (i, b) ->
      assert (i >= 0 && i < 30);
      { mask = c.mask lor (1 lsl i);
        bits = (if b then c.bits lor (1 lsl i) else c.bits land lnot (1 lsl i)) })
    top lits

let literals c =
  let rec loop i acc =
    if i < 0 then acc
    else if c.mask land (1 lsl i) <> 0 then
      loop (i - 1) ((i, c.bits land (1 lsl i) <> 0) :: acc)
    else loop (i - 1) acc
  in
  loop 29 []

let num_literals c =
  let rec popcount x acc = if x = 0 then acc else popcount (x land (x - 1)) (acc + 1) in
  popcount c.mask 0

let mem c m = m land c.mask = c.bits
let contains c d = d.mask land c.mask = c.mask && d.bits land c.mask = c.bits

let intersect c d =
  let shared = c.mask land d.mask in
  if c.bits land shared <> d.bits land shared then None
  else Some { mask = c.mask lor d.mask; bits = c.bits lor d.bits }

let cofactor c i b =
  let bit = 1 lsl i in
  if c.mask land bit = 0 then Some c
  else if (c.bits land bit <> 0) = b then
    Some { mask = c.mask land lnot bit; bits = c.bits land lnot bit }
  else None

let with_literal c i b =
  let bit = 1 lsl i in
  { mask = c.mask lor bit; bits = (if b then c.bits lor bit else c.bits land lnot bit) }

let to_tt n c = Tt.of_fun n (fun m -> mem c m)
let minterm_count n c = 1 lsl (n - num_literals c)
let equal a b = a.mask = b.mask && a.bits = b.bits
let compare = Stdlib.compare

let to_string n c =
  String.init n (fun i ->
      if c.mask land (1 lsl i) = 0 then '-'
      else if c.bits land (1 lsl i) <> 0 then '1'
      else '0')

let pp ppf c =
  let lits = literals c in
  if lits = [] then Format.pp_print_string ppf "1"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "&")
      (fun ppf (i, b) -> Format.fprintf ppf "%sx%d" (if b then "" else "~") i)
      ppf lits
