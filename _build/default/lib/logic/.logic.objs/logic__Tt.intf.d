lib/logic/tt.mli: Format Random
