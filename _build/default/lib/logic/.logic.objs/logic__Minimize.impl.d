lib/logic/minimize.ml: Array Cube Fun Hashtbl List Set Sop Tt
