lib/logic/espresso.mli: Sop Tt
