lib/logic/tt.ml: Array Buffer Format Hashtbl Int64 List Printf Random Stdlib
