lib/logic/cube.ml: Format List Stdlib String Tt
