lib/logic/cube.mli: Format Tt
