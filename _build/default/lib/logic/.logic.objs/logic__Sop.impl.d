lib/logic/sop.ml: Cube Format List Tt
