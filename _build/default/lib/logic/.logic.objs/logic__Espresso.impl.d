lib/logic/espresso.ml: Array Cube Fun List Minimize Sop Tt
