lib/logic/minimize.mli: Cube Sop Tt
