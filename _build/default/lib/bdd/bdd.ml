type t =
  | Leaf of bool
  | Node of { id : int; v : int; lo : t; hi : t }

type man = {
  unique : (int * int * int, t) Hashtbl.t;
  ite_cache : (int * int * int, t) Hashtbl.t;
  compose_cache : (int * int * int, t) Hashtbl.t;
  mutable next_id : int;
  mutable nvars : int;
}

let create ?(cache_size = 1 lsl 14) () =
  {
    unique = Hashtbl.create cache_size;
    ite_cache = Hashtbl.create cache_size;
    compose_cache = Hashtbl.create 256;
    next_id = 2;
    nvars = 0;
  }

let bfalse _ = Leaf false
let btrue _ = Leaf true
let id = function Leaf false -> 0 | Leaf true -> 1 | Node n -> n.id
let topvar = function Leaf _ -> max_int | Node n -> n.v
let equal a b = id a = id b
let is_false _ f = id f = 0
let is_true _ f = id f = 1

let mk man v lo hi =
  if equal lo hi then lo
  else
    let key = (v, id lo, id hi) in
    match Hashtbl.find_opt man.unique key with
    | Some n -> n
    | None ->
      let n = Node { id = man.next_id; v; lo; hi } in
      man.next_id <- man.next_id + 1;
      Hashtbl.add man.unique key n;
      n

let var man i =
  assert (i >= 0);
  if i >= man.nvars then man.nvars <- i + 1;
  mk man i (Leaf false) (Leaf true)

let num_vars man = man.nvars
let allocated man = man.next_id

let cofactors v = function
  | Leaf _ as f -> (f, f)
  | Node n -> if n.v = v then (n.lo, n.hi) else (Node n, Node n)

let rec ite man f g h =
  match f with
  | Leaf true -> g
  | Leaf false -> h
  | Node _ ->
    if equal g h then g
    else if id g = 1 && id h = 0 then f
    else begin
      let key = (id f, id g, id h) in
      match Hashtbl.find_opt man.ite_cache key with
      | Some r -> r
      | None ->
        let v = min (topvar f) (min (topvar g) (topvar h)) in
        let f0, f1 = cofactors v f in
        let g0, g1 = cofactors v g in
        let h0, h1 = cofactors v h in
        let lo = ite man f0 g0 h0 and hi = ite man f1 g1 h1 in
        let r = mk man v lo hi in
        Hashtbl.replace man.ite_cache key r;
        r
    end

let bnot man f = ite man f (Leaf false) (Leaf true)
let band man f g = ite man f g (Leaf false)
let bor man f g = ite man f (Leaf true) g
let bxor man f g = ite man f (bnot man g) g
let bimp man f g = ite man f g (Leaf true)
let beq man f g = ite man f g (bnot man g)
let implies man f g = is_true man (bimp man f g)

let restrict man f i b =
  (* Implemented via compose with a constant to reuse one cache. *)
  let rec go f =
    match f with
    | Leaf _ -> f
    | Node n ->
      if n.v > i then f
      else if n.v = i then if b then n.hi else n.lo
      else begin
        let key = (id f, i, if b then 1 else 0) in
        match Hashtbl.find_opt man.compose_cache key with
        | Some r -> r
        | None ->
          let r = mk man n.v (go n.lo) (go n.hi) in
          Hashtbl.replace man.compose_cache key r;
          r
      end
  in
  go f

let compose man f i g =
  let rec go f =
    match f with
    | Leaf _ -> f
    | Node n ->
      if n.v > i then f
      else if n.v = i then ite man g n.hi n.lo
      else begin
        let key = (id f, i, id g + 2) in
        match Hashtbl.find_opt man.compose_cache key with
        | Some r -> r
        | None ->
          let lo = go n.lo and hi = go n.hi in
          (* The substituted variable may rise above n.v in the order, so
             rebuild with ite on the branch variable. *)
          let xv = mk man n.v (Leaf false) (Leaf true) in
          let r = ite man xv hi lo in
          Hashtbl.replace man.compose_cache key r;
          r
      end
  in
  go f

let exists man vars f =
  List.fold_left
    (fun f i -> bor man (restrict man f i false) (restrict man f i true))
    f vars

let apply_tt man tt args =
  assert (Array.length args = Logic.Tt.num_vars tt);
  (* Shannon-expand the truth table over its variables, binding each
     variable to the corresponding argument BDD. Memoized on the
     (sub-)table so shared subfunctions are built once. *)
  let cache = Hashtbl.create 64 in
  let rec go tt i =
    if Logic.Tt.is_const_false tt then Leaf false
    else if Logic.Tt.is_const_true tt then Leaf true
    else begin
      let key = (Logic.Tt.to_hex tt, i) in
      match Hashtbl.find_opt cache key with
      | Some r -> r
      | None ->
        let r =
          if not (Logic.Tt.depends_on tt i) then go tt (i + 1)
          else
            let f0 = go (Logic.Tt.cofactor tt i false) (i + 1) in
            let f1 = go (Logic.Tt.cofactor tt i true) (i + 1) in
            ite man args.(i) f1 f0
        in
        Hashtbl.replace cache key r;
        r
    end
  in
  go tt 0

let satcount _man ~nvars f =
  let cache = Hashtbl.create 64 in
  (* count f = satisfying fraction of the full space below variable v. *)
  let rec frac f =
    match f with
    | Leaf false -> 0.0
    | Leaf true -> 1.0
    | Node n -> (
      match Hashtbl.find_opt cache n.id with
      | Some r -> r
      | None ->
        let r = 0.5 *. (frac n.lo +. frac n.hi) in
        Hashtbl.replace cache n.id r;
        r)
  in
  frac f *. (2.0 ** float_of_int nvars)

let any_sat _man f =
  let rec go f acc =
    match f with
    | Leaf true -> Some (List.rev acc)
    | Leaf false -> None
    | Node n -> (
      match go n.hi ((n.v, true) :: acc) with
      | Some r -> Some r
      | None -> go n.lo ((n.v, false) :: acc))
  in
  go f []

let support f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go = function
    | Leaf _ -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.id) then begin
        Hashtbl.add seen n.id ();
        Hashtbl.replace vars n.v ();
        go n.lo;
        go n.hi
      end
  in
  go f;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let size f =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Leaf _ -> 0
    | Node n ->
      if Hashtbl.mem seen n.id then 0
      else begin
        Hashtbl.add seen n.id ();
        1 + go n.lo + go n.hi
      end
  in
  go f

let pp ppf f =
  match f with
  | Leaf b -> Format.fprintf ppf "bdd:%b" b
  | Node n -> Format.fprintf ppf "bdd:node(id=%d,var=%d,size=%d)" n.id n.v (size f)
