(** Additional arithmetic generators used by the extension experiments
    (beyond the paper's adder case study): multipliers, whose partial
    product reduction contains many interacting carry chains, and
    comparators, whose less-than chain is another serial prefix. *)

(** [multiplier_array n] : n x n array multiplier (ripple-carry rows).
    Inputs a0..a(n-1), b0..b(n-1); outputs p0..p(2n-1). *)
val multiplier_array : int -> Aig.t

(** [multiplier_wallace n] : Wallace-tree reduction with 3:2 compressors
    and a final ripple adder — the conventional fast reference. *)
val multiplier_wallace : int -> Aig.t

(** [comparator n] : outputs [lt], [eq], [gt] for two n-bit operands
    (serial MSB-first chain, the slow reference the optimizers attack). *)
val comparator : int -> Aig.t

(** [parity n] : single XOR-parity output over n inputs, built as a
    linear chain (depth n-1). *)
val parity_chain : int -> Aig.t
