let log2_ceil n =
  let rec go k v = if v >= n then k else go (k + 1) (2 * v) in
  go 0 1

let rotator ~data ~extra =
  let g = Aig.create () in
  let bits = Array.init data (fun i -> Aig.add_input ~name:(Printf.sprintf "d%d" i) g) in
  let nshift = log2_ceil data in
  let shift = Array.init nshift (fun i -> Aig.add_input ~name:(Printf.sprintf "sh%d" i) g) in
  let mask = Array.init extra (fun i -> Aig.add_input ~name:(Printf.sprintf "m%d" i) g) in
  (* Logarithmic rotate stages. *)
  let cur = ref (Array.copy bits) in
  for s = 0 to nshift - 1 do
    let amount = 1 lsl s in
    let next =
      Array.init data (fun i ->
          Aig.mux g ~sel:shift.(s) ~t:!cur.((i + amount) mod data) ~f:!cur.(i))
    in
    cur := next
  done;
  for i = 0 to data - 1 do
    let v =
      if extra = 0 then !cur.(i) else Aig.bxor g !cur.(i) mask.(i mod extra)
    in
    Aig.add_output g (Printf.sprintf "q%d" i) v
  done;
  g

let alu ~width ~control =
  let g = Aig.create () in
  let a = Array.init width (fun i -> Aig.add_input ~name:(Printf.sprintf "a%d" i) g) in
  let b = Array.init width (fun i -> Aig.add_input ~name:(Printf.sprintf "b%d" i) g) in
  let ctl = Array.init control (fun i -> Aig.add_input ~name:(Printf.sprintf "c%d" i) g) in
  let op0 = ctl.(0 mod control) and op1 = ctl.(1 mod control) in
  let cin = ctl.(2 mod control) in
  (* Invert b for subtraction under op1. *)
  let bx = Array.map (fun l -> Aig.bxor g l op1) b in
  let sums = Array.make width Aig.const_false in
  let carry = ref (Aig.bor g cin op1) in
  for i = 0 to width - 1 do
    let x = a.(i) and y = bx.(i) in
    let xy = Aig.bxor g x y in
    sums.(i) <- Aig.bxor g xy !carry;
    carry := Aig.bor g (Aig.band g x y) (Aig.band g xy !carry)
  done;
  let logic_and = Array.init width (fun i -> Aig.band g a.(i) b.(i)) in
  let logic_or = Array.init width (fun i -> Aig.bor g a.(i) b.(i)) in
  let logic_xor = Array.init width (fun i -> Aig.bxor g a.(i) b.(i)) in
  (* Fold remaining control bits in as an enable mask. *)
  let enable =
    let rest = Array.to_list (Array.sub ctl (min 3 control) (max 0 (control - 3))) in
    match rest with [] -> Aig.const_true | _ -> Aig.bnot (Aig.band_list g rest)
  in
  for i = 0 to width - 1 do
    let logic_sel = Aig.mux g ~sel:op1 ~t:logic_xor.(i) ~f:(Aig.mux g ~sel:cin ~t:logic_or.(i) ~f:logic_and.(i)) in
    let v = Aig.mux g ~sel:op0 ~t:sums.(i) ~f:logic_sel in
    Aig.add_output g (Printf.sprintf "y%d" i) (Aig.band g enable v)
  done;
  g

let ecc ?(extra = 0) ~data () =
  let g = Aig.create () in
  let d = Array.init data (fun i -> Aig.add_input ~name:(Printf.sprintf "d%d" i) g) in
  let ns = log2_ceil (data + 1) in
  let syn_in = Array.init ns (fun i -> Aig.add_input ~name:(Printf.sprintf "p%d" i) g) in
  let lane = Array.init extra (fun i -> Aig.add_input ~name:(Printf.sprintf "x%d" i) g) in
  (* Hamming parity groups: parity bit j covers data positions whose
     (1-based) index has bit j set. *)
  let parity j =
    let members =
      List.filter_map
        (fun i -> if ((i + 1) lsr j) land 1 = 1 then Some d.(i) else None)
        (List.init data Fun.id)
    in
    List.fold_left (Aig.bxor g) Aig.const_false members
  in
  let syndrome = Array.init ns (fun j -> Aig.bxor g (parity j) syn_in.(j)) in
  (* Correct: flip data bit i when the syndrome equals i+1. *)
  for i = 0 to data - 1 do
    let matches =
      List.init ns (fun j ->
          let bit = ((i + 1) lsr j) land 1 = 1 in
          if bit then syndrome.(j) else Aig.bnot syndrome.(j))
    in
    let flip = Aig.band_list g matches in
    let v = Aig.bxor g d.(i) flip in
    let v = if extra = 0 then v else Aig.bxor g v lane.(i mod extra) in
    Aig.add_output g (Printf.sprintf "q%d" i) v
  done;
  g

let priority_controller ~channels ~po =
  let g = Aig.create () in
  let req = Array.init channels (fun i -> Aig.add_input ~name:(Printf.sprintf "r%d" i) g) in
  let en = Array.init channels (fun i -> Aig.add_input ~name:(Printf.sprintf "e%d" i) g) in
  let master = Aig.add_input ~name:"master_en" g in
  let mode = Aig.add_input ~name:"mode" g in
  let active = Array.init channels (fun i -> Aig.band g req.(i) en.(i)) in
  (* Priority chain: channel i wins when active and no lower channel is. *)
  let grant = Array.make channels Aig.const_false in
  let blocked = ref Aig.const_false in
  for i = 0 to channels - 1 do
    grant.(i) <- Aig.band g active.(i) (Aig.bnot !blocked);
    blocked := Aig.bor g !blocked active.(i)
  done;
  let any = !blocked in
  (* Encoded grant index. *)
  let nbits = log2_ceil channels in
  let outputs = ref [] in
  for j = 0 to nbits - 1 do
    let members =
      List.filter_map
        (fun i -> if (i lsr j) land 1 = 1 then Some grant.(i) else None)
        (List.init channels Fun.id)
    in
    outputs := Aig.bor_list g members :: !outputs
  done;
  outputs := Aig.band g any master :: !outputs;
  outputs := Aig.mux g ~sel:mode ~t:any ~f:(Aig.bnot any) :: !outputs;
  (* Pad or trim to [po] outputs with parity combinations. *)
  let base = List.rev !outputs in
  let rec extend acc k prev =
    if List.length acc >= po then acc
    else begin
      let v = Aig.bxor g prev grant.(k mod channels) in
      extend (acc @ [ v ]) (k + 1) v
    end
  in
  let all = extend base 0 any in
  List.iteri
    (fun i v -> if i < po then Aig.add_output g (Printf.sprintf "o%d" i) v)
    all;
  g

let control ~seed ~pi ~po ~block_inputs ~levels =
  let g = Aig.create () in
  let st = Random.State.make [| seed; pi; po |] in
  let ins = Array.init pi (fun i -> Aig.add_input ~name:(Printf.sprintf "i%d" i) g) in
  (* Outputs grouped into blocks that read a bounded window of inputs. *)
  let num_blocks = max 1 ((po + 7) / 8) in
  let outputs = ref [] in
  for b = 0 to num_blocks - 1 do
    (* Choose a contiguous-ish input window plus a few random taps. *)
    let base = if pi <= block_inputs then 0 else Random.State.int st (pi - block_inputs) in
    let window =
      Array.init (min block_inputs pi) (fun i -> ins.((base + i) mod pi))
    in
    let pool = ref (Array.to_list window) in
    let pick () =
      let l = List.nth !pool (Random.State.int st (List.length !pool)) in
      if Random.State.bool st then Aig.bnot l else l
    in
    (* Priority chain through the window for a deep path. *)
    let chain = ref (pick ()) in
    Array.iter
      (fun w ->
        let gate = Random.State.int st 3 in
        chain :=
          (match gate with
           | 0 -> Aig.bor g (Aig.band g w (pick ())) (Aig.band g (Aig.bnot w) !chain)
           | 1 -> Aig.band g !chain (Aig.bor g w (pick ()))
           | _ -> Aig.bor g !chain (Aig.band g w (pick ()))))
      window;
    pool := !chain :: !pool;
    (* Random layers. *)
    for _ = 1 to levels do
      let layer =
        List.init
          (4 + Random.State.int st 4)
          (fun _ ->
            match Random.State.int st 4 with
            | 0 -> Aig.band g (pick ()) (pick ())
            | 1 -> Aig.bor g (pick ()) (pick ())
            | 2 -> Aig.bxor g (pick ()) (pick ())
            | _ -> Aig.mux g ~sel:(pick ()) ~t:(pick ()) ~f:(pick ()))
      in
      pool := layer @ !pool
    done;
    let block_pos = min 8 (po - (b * 8)) in
    for i = 0 to block_pos - 1 do
      outputs := (Printf.sprintf "o%d" ((b * 8) + i), pick ()) :: !outputs
    done
  done;
  List.iter (fun (name, l) -> Aig.add_output g name l) (List.rev !outputs);
  g
