(** Adder generators for the paper's case study (Sec. 4) and Table 1.

    Inputs are interleaved [a0 b0 a1 b1 ... cin] so that BDD orderings
    derived from input positions stay compact. Outputs are
    [s0 .. s(n-1) cout]. *)

(** Linear cascade of full adders — the paper's starting point; carry
    chain of O(n) levels. *)
val ripple_carry : int -> Aig.t

(** Parallel-prefix (Kogge-Stone) carry computation — the theoretical
    optimum reference of Table 1. *)
val carry_lookahead : int -> Aig.t

(** [carry_select ~block n]: blocks computed for both carry values and
    selected by the incoming carry. *)
val carry_select : ?block:int -> int -> Aig.t

(** [carry_skip ~block n]: ripple blocks with a propagate-controlled
    bypass mux. *)
val carry_skip : ?block:int -> int -> Aig.t

(** AIG depth of the Kogge-Stone reference, the "Optimum" column of
    Table 1. *)
val optimum_levels : int -> int
