type info = {
  name : string;
  pi : int;
  po : int;
  po_estimated : bool;
  family : string;
  description : string;
}

let mk ?(po_estimated = false) name pi po family description =
  { name; pi; po; po_estimated; family; description }

let all =
  [
    mk "rot" 135 107 "MCNC" "barrel rotator with mask lanes";
    mk "dalu" 75 16 "MCNC" "dedicated 16-bit ALU";
    mk "i10" 257 224 "MCNC" "large irregular control logic";
    mk "C432" 36 7 "ISCAS" "27-channel interrupt controller class";
    mk "C880" 60 26 "ISCAS" "8-bit ALU class control";
    mk "C1355" 41 32 "ISCAS" "32-bit single-error-correcting network";
    mk "C1908" 33 25 "ISCAS" "25-bit SEC class network";
    mk ~po_estimated:true "sparc_exu_ecl_flat" 572 320 "OpenSPARC" "execution-unit control";
    mk ~po_estimated:true "lsu_stb_ctl_flat" 182 90 "OpenSPARC" "store-buffer control";
    mk ~po_estimated:true "sparc_ifu_dcl_flat" 136 70 "OpenSPARC" "fetch data-cache control";
    mk ~po_estimated:true "sparc_ifu_dec_flat" 131 95 "OpenSPARC" "instruction decode";
    mk ~po_estimated:true "lsu_excpctl_flat" 251 110 "OpenSPARC" "exception control";
    mk ~po_estimated:true "sparc_tlu_intctl_flat" 82 40 "OpenSPARC" "trap-unit interrupt control";
    mk ~po_estimated:true "sparc_ifu_fcl_flat" 465 210 "OpenSPARC" "fetch control";
    mk ~po_estimated:true "tlu_hyperv_flat" 449 180 "OpenSPARC" "hypervisor trap control";
  ]

let find name =
  match List.find_opt (fun i -> String.trim i.name = String.trim name) all with
  | Some i -> i
  | None -> raise Not_found

let seed_of_name name =
  (* Stable small hash so stand-ins are reproducible run to run. *)
  String.fold_left (fun acc c -> (acc * 131) + Char.code c) 7 name land 0xFFFFFF

let build name =
  let info = find name in
  match String.trim info.name with
  | "rot" -> Gen.rotator ~data:107 ~extra:21
  | "dalu" -> Gen.alu ~width:16 ~control:43
  | "i10" ->
    Gen.control ~seed:(seed_of_name "i10") ~pi:257 ~po:224 ~block_inputs:18
      ~levels:5
  | "C432" -> Gen.priority_controller ~channels:17 ~po:7
  | "C880" ->
    Gen.control ~seed:(seed_of_name "C880") ~pi:60 ~po:26 ~block_inputs:16
      ~levels:6
  | "C1355" -> Gen.ecc ~extra:3 ~data:32 ()
  | "C1908" -> Gen.ecc ~extra:3 ~data:25 ()
  | name ->
    (* OpenSPARC control blocks: block-structured control logic. *)
    Gen.control ~seed:(seed_of_name name) ~pi:info.pi ~po:info.po
      ~block_inputs:16 ~levels:5
