let operand g prefix n =
  Array.init n (fun i -> Aig.add_input ~name:(Printf.sprintf "%s%d" prefix i) g)

let full_adder g x y c =
  let xy = Aig.bxor g x y in
  (Aig.bxor g xy c, Aig.bor g (Aig.band g x y) (Aig.band g xy c))

let multiplier_array n =
  let g = Aig.create () in
  let a = operand g "a" n and b = operand g "b" n in
  let pp i j = Aig.band g a.(i) b.(j) in
  (* Row-by-row accumulation. Invariant entering row [row]: [acc.(k)]
     carries the partial-sum bit of weight [row + k]. *)
  let outputs = Array.make (2 * n) Aig.const_false in
  outputs.(0) <- pp 0 0;
  let acc =
    ref (Array.init n (fun k -> if k + 1 < n then pp (k + 1) 0 else Aig.const_false))
  in
  for row = 1 to n - 1 do
    let row_bits = Array.init n (fun i -> pp i row) in
    let next = Array.make n Aig.const_false in
    let carry = ref Aig.const_false in
    for k = 0 to n - 1 do
      let s, c = full_adder g row_bits.(k) !acc.(k) !carry in
      next.(k) <- s;
      carry := c
    done;
    outputs.(row) <- next.(0);
    (* Re-base for the next row: weights row+1 .. row+n. *)
    acc := Array.init n (fun k -> if k + 1 < n then next.(k + 1) else !carry)
  done;
  for k = 0 to n - 1 do
    outputs.(n + k) <- !acc.(k)
  done;
  Array.iteri (fun i o -> Aig.add_output g (Printf.sprintf "p%d" i) o) outputs;
  g

let multiplier_wallace n =
  let g = Aig.create () in
  let a = operand g "a" n and b = operand g "b" n in
  (* Columns of partial products by weight. *)
  let columns = Array.make (2 * n) [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      columns.(i + j) <- Aig.band g a.(i) b.(j) :: columns.(i + j)
    done
  done;
  (* Reduce with 3:2 compressors until every column has <= 2 bits. *)
  let reduced = ref false in
  while not !reduced do
    reduced := true;
    let next = Array.make (2 * n) [] in
    Array.iteri
      (fun w bits ->
        let rec chunk = function
          | x :: y :: z :: rest ->
            reduced := false;
            let s, c = full_adder g x y z in
            next.(w) <- s :: next.(w);
            if w + 1 < 2 * n then next.(w + 1) <- c :: next.(w + 1);
            chunk rest
          | leftover -> next.(w) <- leftover @ next.(w)
        in
        chunk bits)
      columns;
    Array.blit next 0 columns 0 (2 * n)
  done;
  (* Final carry-propagate adder over the two remaining rows. *)
  let carry = ref Aig.const_false in
  for w = 0 to (2 * n) - 1 do
    let x, y =
      match columns.(w) with
      | [] -> (Aig.const_false, Aig.const_false)
      | [ x ] -> (x, Aig.const_false)
      | [ x; y ] -> (x, y)
      | x :: y :: _ -> (x, y)
    in
    let s, c = full_adder g x y !carry in
    Aig.add_output g (Printf.sprintf "p%d" w) s;
    carry := c
  done;
  g

let comparator n =
  let g = Aig.create () in
  let a = operand g "a" n and b = operand g "b" n in
  (* MSB-first serial chain: lt/gt latch on the first differing bit. *)
  let lt = ref Aig.const_false and gt = ref Aig.const_false in
  for i = n - 1 downto 0 do
    let eq_so_far = Aig.bnot (Aig.bor g !lt !gt) in
    let ai_lt = Aig.band g (Aig.bnot a.(i)) b.(i) in
    let ai_gt = Aig.band g a.(i) (Aig.bnot b.(i)) in
    lt := Aig.bor g !lt (Aig.band g eq_so_far ai_lt);
    gt := Aig.bor g !gt (Aig.band g eq_so_far ai_gt)
  done;
  Aig.add_output g "lt" !lt;
  Aig.add_output g "eq" (Aig.bnot (Aig.bor g !lt !gt));
  Aig.add_output g "gt" !gt;
  g

let parity_chain n =
  let g = Aig.create () in
  let xs = operand g "x" n in
  let p = Array.fold_left (fun acc x -> Aig.bxor g acc x) Aig.const_false xs in
  Aig.add_output g "parity" p;
  g
