type operands = { a : Aig.lit array; b : Aig.lit array; cin : Aig.lit }

let make_operands g n =
  let a = Array.make n Aig.const_false and b = Array.make n Aig.const_false in
  for i = 0 to n - 1 do
    a.(i) <- Aig.add_input ~name:(Printf.sprintf "a%d" i) g;
    b.(i) <- Aig.add_input ~name:(Printf.sprintf "b%d" i) g
  done;
  let cin = Aig.add_input ~name:"cin" g in
  { a; b; cin }

let full_adder g x y c =
  let xy = Aig.bxor g x y in
  let sum = Aig.bxor g xy c in
  let carry = Aig.bor g (Aig.band g x y) (Aig.band g xy c) in
  (sum, carry)

let add_sum_outputs g sums cout =
  Array.iteri (fun i s -> Aig.add_output g (Printf.sprintf "s%d" i) s) sums;
  Aig.add_output g "cout" cout

let ripple_carry n =
  let g = Aig.create () in
  let ops = make_operands g n in
  let sums = Array.make n Aig.const_false in
  let carry = ref ops.cin in
  for i = 0 to n - 1 do
    let s, c = full_adder g ops.a.(i) ops.b.(i) !carry in
    sums.(i) <- s;
    carry := c
  done;
  add_sum_outputs g sums !carry;
  g

let carry_lookahead n =
  let g = Aig.create () in
  let ops = make_operands g n in
  (* Kogge-Stone prefix tree over (generate, propagate). *)
  let gen = Array.init n (fun i -> Aig.band g ops.a.(i) ops.b.(i)) in
  let prop = Array.init n (fun i -> Aig.bxor g ops.a.(i) ops.b.(i)) in
  let gcur = ref (Array.copy gen) and pcur = ref (Array.copy prop) in
  let d = ref 1 in
  while !d < n do
    let gnext = Array.copy !gcur and pnext = Array.copy !pcur in
    for i = !d to n - 1 do
      gnext.(i) <- Aig.bor g !gcur.(i) (Aig.band g !pcur.(i) !gcur.(i - !d));
      pnext.(i) <- Aig.band g !pcur.(i) !pcur.(i - !d)
    done;
    gcur := gnext;
    pcur := pnext;
    d := !d * 2
  done;
  (* carry into position i: G(i-1:0) + P(i-1:0) cin *)
  let carry_into i =
    if i = 0 then ops.cin
    else Aig.bor g !gcur.(i - 1) (Aig.band g !pcur.(i - 1) ops.cin)
  in
  let sums = Array.init n (fun i -> Aig.bxor g prop.(i) (carry_into i)) in
  add_sum_outputs g sums (carry_into n);
  g

let ripple_block g a b cin lo hi =
  (* Returns (sums, carry-out) for bit range [lo, hi). *)
  let sums = ref [] in
  let carry = ref cin in
  for i = lo to hi - 1 do
    let s, c = full_adder g a.(i) b.(i) !carry in
    sums := s :: !sums;
    carry := c
  done;
  (List.rev !sums, !carry)

let carry_select ?(block = 4) n =
  let g = Aig.create () in
  let ops = make_operands g n in
  let sums = Array.make n Aig.const_false in
  let carry = ref ops.cin in
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + block) in
    let s0, c0 = ripple_block g ops.a ops.b Aig.const_false !lo hi in
    let s1, c1 = ripple_block g ops.a ops.b Aig.const_true !lo hi in
    List.iteri
      (fun off (z, o) ->
        sums.(!lo + off) <- Aig.mux g ~sel:!carry ~t:o ~f:z)
      (List.combine s0 s1);
    carry := Aig.mux g ~sel:!carry ~t:c1 ~f:c0;
    lo := hi
  done;
  add_sum_outputs g sums !carry;
  g

let carry_skip ?(block = 4) n =
  let g = Aig.create () in
  let ops = make_operands g n in
  let sums = Array.make n Aig.const_false in
  let carry = ref ops.cin in
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + block) in
    let s, c = ripple_block g ops.a ops.b !carry !lo hi in
    List.iteri (fun off z -> sums.(!lo + off) <- z) s;
    let props =
      List.init (hi - !lo) (fun off -> Aig.bxor g ops.a.(!lo + off) ops.b.(!lo + off))
    in
    let all_prop = Aig.band_list g props in
    carry := Aig.mux g ~sel:all_prop ~t:!carry ~f:c;
    lo := hi
  done;
  add_sum_outputs g sums !carry;
  g

let optimum_levels n = Aig.depth (carry_lookahead n)
