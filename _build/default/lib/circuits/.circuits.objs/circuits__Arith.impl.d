lib/circuits/arith.ml: Aig Array Printf
