lib/circuits/gen.mli: Aig
