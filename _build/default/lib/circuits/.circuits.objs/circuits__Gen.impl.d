lib/circuits/gen.ml: Aig Array Fun List Printf Random
