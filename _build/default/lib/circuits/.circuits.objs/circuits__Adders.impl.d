lib/circuits/adders.ml: Aig Array List Printf
