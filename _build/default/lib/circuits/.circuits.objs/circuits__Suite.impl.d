lib/circuits/suite.ml: Char Gen List String
