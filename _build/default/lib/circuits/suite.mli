(** The 15-circuit benchmark suite of the paper's Table 2.

    Each entry is a deterministic stand-in of the same structural class
    and the same primary-input count as the original MCNC / ISCAS /
    OpenSPARC T1 circuit (see DESIGN.md for the substitution rationale).
    Primary-output counts for the OpenSPARC blocks were not preserved in
    the paper text available to this reproduction; representative values
    are used and flagged in [po_estimated]. *)

type info = {
  name : string;
  pi : int;  (** primary inputs, as in the paper's Table 2 *)
  po : int;
  po_estimated : bool;
  family : string;  (** MCNC / ISCAS / OpenSPARC *)
  description : string;
}

val all : info list

(** Build the stand-in circuit; raises [Not_found] for unknown names. *)
val build : string -> Aig.t

val find : string -> info
