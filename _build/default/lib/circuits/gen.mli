(** Parameterized circuit generators used by the benchmark stand-ins.

    Real MCNC/ISCAS/OpenSPARC netlists are not redistributable in this
    environment; these generators produce deterministic circuits of the
    same structural classes (see DESIGN.md, "Substitutions"): barrel
    rotators, ALUs, error-correcting XOR trees, priority/interrupt logic
    and block-structured random control logic whose per-output cones have
    bounded input support. *)

(** [rotator ~data ~extra] : barrel rotator over [data] bits with
    [ceil(log2 data)] shift inputs and [extra] mask inputs XOR-folded
    into the result. PI = data + log2(data) + extra, PO = data. *)
val rotator : data:int -> extra:int -> Aig.t

(** [alu ~width ~ops] : two [width]-bit operands plus control; computes
    add/sub/and/or/xor selected by a decoded opcode, plus compare
    flags folded in. PO = width. *)
val alu : width:int -> control:int -> Aig.t

(** [ecc ?extra ~data ()] : Hamming-style check / correct pipeline over
    [data] bits with explicit syndrome logic (XOR-tree dominated, the
    C1355/C1908 class). [extra] lane inputs are XOR-folded into the
    corrected outputs. PI = data + syndrome width + extra, PO = data. *)
val ecc : ?extra:int -> data:int -> unit -> Aig.t

(** [priority_controller ~channels ~po] : interrupt-style priority encode
    with enable masking and acknowledge logic (the C432 class).
    PI = 2*channels + 2, PO = po. *)
val priority_controller : channels:int -> po:int -> Aig.t

(** [control ~seed ~pi ~po ~block_inputs ~levels] : block-structured
    random control logic. Outputs are grouped into blocks; each block
    reads at most [block_inputs] primary inputs and mixes them through
    [levels] layers of AND/OR/XOR/MUX idioms with deep priority chains,
    so critical paths are long but every output cone has bounded
    support. Deterministic in [seed]. *)
val control :
  seed:int -> pi:int -> po:int -> block_inputs:int -> levels:int -> Aig.t
